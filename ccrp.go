// Package ccrp is a full reproduction of the Compressed Code RISC
// Processor of Wolfe & Chanin, "Executing Compressed Programs on An
// Embedded RISC Architecture" (MICRO-25, 1992).
//
// A CCRP is a standard RISC core whose instruction cache refill engine
// decompresses code on the fly: programs are compiled normally, each
// 32-byte cache line is Huffman-compressed by a host tool, a Line Address
// Table (LAT) maps program line addresses to compressed block locations,
// and a TLB-like CLB caches LAT entries so the translation is free on the
// common path. Everything above the refill engine — the pipeline, the
// programmer's model, every code address — is unchanged.
//
// This package is the stable facade over the full system:
//
//   - a MIPS R2000 assembler and functional simulator (the paper's
//     compiler/pixie substrate) — Assemble, NewMachine;
//   - the Huffman machinery, including package-merge length-limited codes
//     and the corpus-wide Preselected Bounded Huffman code — HistogramOf,
//     BuildBoundedCode, PreselectedCode;
//   - the compression tool and ROM image model — BuildROM;
//   - the trace-driven system simulator comparing a standard processor
//     with a CCRP over EPROM, burst EPROM, and static-column DRAM
//     instruction memories — Compare;
//   - the benchmark corpus mirroring the paper's programs — Workloads;
//   - every table and figure of the paper's evaluation — Figure5,
//     Tables1to8, Tables9and10, Figure9, Tables11to13, and RenderAll.
//
// The type names below are aliases for the implementation packages, so
// values returned here interoperate with the whole module.
package ccrp

import (
	"io"

	"ccrp/internal/asm"
	"ccrp/internal/codepack"
	"ccrp/internal/core"
	"ccrp/internal/experiments"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/pagedvm"
	"ccrp/internal/sim"
	"ccrp/internal/trace"
	"ccrp/internal/workload"
)

// Core system types.
type (
	// Program is a linked R2000 image (text at address 0, data at 1 MB).
	Program = asm.Program
	// Machine is a functional R2000 simulator instance.
	Machine = sim.Machine
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult summarizes a completed run (instructions, stalls, trace).
	SimResult = sim.Result
	// Trace is an instruction-address trace (the pixie substitute).
	Trace = trace.Trace
	// Histogram is a byte frequency-of-occurrence histogram.
	Histogram = huffman.Histogram
	// Code is a canonical (optionally length-limited) Huffman code.
	Code = huffman.Code
	// ROM is a compressed program image: blocks plus Line Address Table.
	ROM = core.ROM
	// ROMOptions configures ROM compression (codes, alignment).
	ROMOptions = core.Options
	// SystemConfig describes one simulated system (cache, CLB, memory).
	SystemConfig = core.Config
	// Comparison is the standard-vs-CCRP outcome for one trace.
	Comparison = core.Comparison
	// SystemStats are one system's execution costs.
	SystemStats = core.Stats
	// MemoryModel is an instruction-memory timing model.
	MemoryModel = memory.Model
	// Workload is one corpus benchmark.
	Workload = workload.Workload
	// PerfPoint is one row/point of the paper's performance tables.
	PerfPoint = experiments.PerfPoint
	// Figure5Row is one bar group of the Figure 5 comparison.
	Figure5Row = experiments.Figure5Row
	// PagingDevice is a backing-store timing model for compressed
	// demand paging (the paper's §5 future-work direction).
	PagingDevice = pagedvm.Device
	// PagingResult compares compressed against standard paging.
	PagingResult = pagedvm.Result
	// PageStore is a page-compressed program image.
	PageStore = pagedvm.Store
	// LineCodec abstracts the per-line compression scheme, letting
	// downstream users plug their own coder into the CCRP pipeline.
	LineCodec = core.LineCodec
	// CodePackCoder is the CodePack-style halfword-dictionary coder.
	CodePackCoder = codepack.Coder
)

// LineSize is the cache line / compression block size (32 bytes).
const LineSize = core.LineSize

// HuffmanBound is the paper's 16-bit codeword cap.
const HuffmanBound = experiments.HuffmanBound

// Assemble builds a Program from MIPS assembly source. The name is used
// in diagnostics only.
func Assemble(name, source string) (*Program, error) { return asm.Assemble(name, source) }

// NewMachine loads prog into a fresh functional simulator.
func NewMachine(prog *Program, cfg SimConfig) *Machine { return sim.New(prog, cfg) }

// RunProgram assembles, loads, and executes source with tracing enabled,
// writing console output (if any) to stdout. It is the quickest path from
// assembly source to an instruction trace.
func RunProgram(name, source string, stdout io.Writer) (*SimResult, error) {
	prog, err := Assemble(name, source)
	if err != nil {
		return nil, err
	}
	m := NewMachine(prog, SimConfig{Stdout: stdout, CollectTrace: true})
	return m.Run()
}

// HistogramOf builds a byte histogram over the given buffers.
func HistogramOf(bufs ...[]byte) *Histogram { return huffman.HistogramOf(bufs...) }

// BuildBoundedCode builds an optimal length-limited Huffman code
// (package-merge) with no codeword longer than maxLen bits.
func BuildBoundedCode(h *Histogram, maxLen int) (*Code, error) {
	return huffman.BuildBounded(h, maxLen)
}

// BuildTraditionalCode builds an optimal unbounded Huffman code.
func BuildTraditionalCode(h *Histogram) (*Code, error) { return huffman.BuildTraditional(h) }

// PreselectedCode returns the paper's Preselected Bounded Huffman code:
// one fixed 16-bit-bounded code trained on the ten-program corpus and
// hardwired in the decoder.
func PreselectedCode() (*Code, error) { return experiments.PreselectedCode() }

// BuildROM compresses a text image line by line into a CCRP ROM.
func BuildROM(text []byte, opts ROMOptions) (*ROM, error) { return core.BuildROM(text, opts) }

// Compare runs a trace through the standard and CCRP system models.
func Compare(tr *Trace, text []byte, cfg SystemConfig) (*Comparison, error) {
	return core.Compare(tr, text, cfg)
}

// Memory models of the paper's §4.2.1.
func EPROM() MemoryModel      { return memory.EPROM{} }
func BurstEPROM() MemoryModel { return memory.BurstEPROM{} }
func SCDRAM() MemoryModel     { return memory.SCDRAM{} }

// MemoryModels returns all three models in presentation order.
func MemoryModels() []MemoryModel { return memory.Models() }

// Workloads returns the benchmark corpus.
func Workloads() []*Workload { return workload.All() }

// WorkloadByName finds one corpus program.
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// Figure5Workloads returns the ten Figure 5 programs in the paper's order.
func Figure5Workloads() []*Workload { return workload.Figure5Set() }

// Experiment entry points (see DESIGN.md's experiment index).
func Figure5() ([]Figure5Row, error)                { return experiments.Figure5() }
func Tables1to8() (map[string][]PerfPoint, error)   { return experiments.Tables1to8() }
func Tables9and10() (map[string][]PerfPoint, error) { return experiments.Tables9and10() }
func Figure9() ([]PerfPoint, error)                 { return experiments.Figure9() }
func Tables11to13() (map[string][]PerfPoint, error) { return experiments.Tables11to13() }

// NewHuffmanCodec wraps a byte-Huffman code as a LineCodec.
func NewHuffmanCodec(code *Code) LineCodec { return core.NewHuffmanCodec(code) }

// TrainCodePack builds a CodePack-style coder from instruction images
// (the §5 "more sophisticated encoding" successor scheme). The result
// satisfies LineCodec and plugs into BuildROM and Compare via
// ROMOptions.Codec / SystemConfig.Codec.
func TrainCodePack(images ...[]byte) (*CodePackCoder, error) {
	return codepack.Train(images...)
}

// Compressed demand paging (§5 future work; see internal/pagedvm).
func FlashDevice() PagingDevice { return pagedvm.Flash() }
func DiskDevice() PagingDevice  { return pagedvm.Disk() }

// BuildPageStore compresses image into pageBytes pages under code.
func BuildPageStore(image []byte, code *Code, pageBytes int) (*PageStore, error) {
	return pagedvm.BuildStore(image, code, pageBytes)
}

// SimulatePaging pages a program's code through a frames-page LRU pool
// driven by its instruction trace, comparing compressed against standard
// backing stores.
func SimulatePaging(tr *Trace, image []byte, code *Code, pageBytes, frames int, dev PagingDevice) (*PagingResult, error) {
	return pagedvm.Simulate(tr, image, code, pageBytes, frames, dev)
}

// RenderAll writes every reproduced table and figure, plus the ablation
// studies, to w in the paper's layout.
func RenderAll(w io.Writer) error {
	steps := []func(io.Writer) error{
		experiments.RenderFigure5,
		experiments.RenderFigure1,
		func(w io.Writer) error { return experiments.RenderFigure2(w, "eightq", 14) },
		experiments.RenderTables1to8,
		experiments.RenderTables9and10,
		experiments.RenderFigure9,
		experiments.RenderTables11to13,
		experiments.RenderAblations,
		experiments.RenderExtensions,
		experiments.RenderPaging,
		experiments.RenderCodePack,
	}
	for _, f := range steps {
		if err := f(w); err != nil {
			return err
		}
	}
	return nil
}
