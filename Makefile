GO ?= go
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1

.PHONY: all build test race vet fmt staticcheck check bench trajectory \
	serve-smoke serve-bench decode-smoke decode-bench trace-smoke \
	persist-smoke fleet-smoke isa-smoke fuzz

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Pinned lint pass, run via `go run` so nothing is installed into the
# module. Requires network/module-cache access for the first run.
staticcheck:
	$(GO) run $(STATICCHECK) ./...

# The full hygiene gate: build + vet + gofmt + staticcheck + race tests.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# Record a BENCH_<LABEL>.json sweep trajectory (wall times + datapoints).
LABEL ?= dev
trajectory:
	sh scripts/bench.sh $(LABEL)

# ccrpd end-to-end smoke: healthz, train/compress/decompress round trip
# byte-compared against ccpack, metrics scrape, SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Serving benchmark: mixed load against a local ccrpd -> BENCH_<LABEL>.json.
serve-bench:
	sh scripts/serve_bench.sh $(LABEL)

# Decode-equivalence smoke: multi vs fast vs canonical decode cmp on a
# corpus program, a short decode benchmark, and the multi-beats-fast
# throughput gate.
decode-smoke:
	sh scripts/decode_smoke.sh

# Decode-kernel benchmark: canonical vs fast vs multi MB/s plus the
# per-chunk-width table-size sweep, as Go benchmarks.
decode-bench:
	$(GO) test -run=^$$ -bench='BenchmarkDecode(Canonical|Fast|Multi)$$' -benchmem ./internal/huffman

# Tracing end-to-end smoke: ccrpd -trace under a ccrp-load burst, then
# ccrp-spans must decompose every instrumented request stage.
trace-smoke:
	sh scripts/trace_smoke.sh

# Restart-survival gate: train with -store, SIGTERM-drain, reboot on the
# same store, assert zero retrains and byte-identical served output.
persist-smoke:
	sh scripts/persist_smoke.sh

# Fleet serving gate: 3 shared-store backends behind ccrp-router,
# SLO-gated load through the hop, kill -9 one backend mid-run with zero
# client-visible 5xx, then ring re-stabilization and cross-hop traces.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# ISA-backend smoke: assemble + simulate the same program on every
# registered backend (mips, rv32), RVC expansion vector and
# differential gates, and the cross-backend disassembly round trip.
isa-smoke:
	sh scripts/isa_smoke.sh

# Short fuzz pass over the decode hardening targets.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeLine -fuzztime=$(FUZZTIME) ./internal/codepack
	$(GO) test -run=^$$ -fuzz=FuzzDecode$$ -fuzztime=$(FUZZTIME) ./internal/huffman
	$(GO) test -run=^$$ -fuzz=FuzzFastDecoderDifferential -fuzztime=$(FUZZTIME) ./internal/huffman
	$(GO) test -run=^$$ -fuzz=FuzzMultiDecoderDifferential -fuzztime=$(FUZZTIME) ./internal/huffman
	$(GO) test -run=^$$ -fuzz=FuzzFSMDecode -fuzztime=$(FUZZTIME) ./internal/decoder
	$(GO) test -run=^$$ -fuzz=FuzzCAMDecode -fuzztime=$(FUZZTIME) ./internal/decoder
	$(GO) test -run=^$$ -fuzz=FuzzROMDecode -fuzztime=$(FUZZTIME) ./internal/decoder
	$(GO) test -run=^$$ -fuzz=FuzzFastVsHardwareModels -fuzztime=$(FUZZTIME) ./internal/decoder
