GO ?= go

.PHONY: all build test race vet fmt check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# The full hygiene gate: build + vet + gofmt + race-enabled tests.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$
