module ccrp

go 1.22
