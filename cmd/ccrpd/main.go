// Command ccrpd is the compression-and-simulation daemon: the paper's
// host-side toolchain (train a coder, compress a program, predict
// execution cost) served over HTTP/JSON by internal/server.
//
// Usage:
//
//	ccrpd [-addr :8642] [-store DIR] [-sim-workers N] [-decode-workers N]
//	      [-max-body 16777216]
//	      [-train-timeout 60s] [-compress-timeout 30s] [-sim-timeout 120s]
//	      [-access-log access.jsonl] [-trace spans.jsonl] [-trace-tail 16]
//	      [-drain 15s] [-version]
//
// -decode-workers bounds the per-request worker pool that fans
// /v1/decompress line expansion across CPUs (0 = GOMAXPROCS; 1 forces
// sequential decode).
//
// With -store, trained coders and compressed ROM images persist in a
// disk-backed content-addressed artifact store under DIR, and the daemon
// warm-starts on boot: every stored coder is verified, re-registered,
// and served without retraining — the serving analogue of the paper's
// ROMs surviving power cycles.
//
// The daemon drains gracefully on SIGINT/SIGTERM: /readyz flips to 503
// (so a fronting ccrp-router takes the node out of rotation), the
// listener stops accepting, in-flight requests get -drain to finish,
// then the process exits 0. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccrp/internal/cliutil"
	"ccrp/internal/metrics"
	"ccrp/internal/server"
	"ccrp/internal/sweep"
	"ccrp/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	storeDir := flag.String("store", "", "persist artifacts (trained coders, ROM images) under this directory and warm-start from it on boot")
	simWorkers := flag.Int("sim-workers", 0, "concurrent simulate runs (0 = NumCPU)")
	decodeWorkers := flag.Int("decode-workers", 0, "per-request line-decode workers (0 = GOMAXPROCS, 1 = sequential)")
	maxBody := flag.Int64("max-body", 0, "request body limit in bytes (0 = 16 MiB)")
	trainTimeout := flag.Duration("train-timeout", 0, "POST /v1/coders deadline (0 = 60s)")
	compressTimeout := flag.Duration("compress-timeout", 0, "compress/decompress deadline (0 = 30s)")
	simTimeout := flag.Duration("sim-timeout", 0, "POST /v1/simulate deadline (0 = 120s)")
	accessLog := flag.String("access-log", "", "append JSONL access logs to this file (- for stderr)")
	traceOut := flag.String("trace", "", "append JSONL span records to this file (- for stderr)")
	traceTail := flag.Int("trace-tail", tracing.DefaultTailSlow, "slowest request trees retained for GET /debug/traces")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrpd", version)

	cfg := server.Config{
		MaxBodyBytes:    *maxBody,
		SimWorkers:      *simWorkers,
		DecodeWorkers:   *decodeWorkers,
		TrainTimeout:    *trainTimeout,
		CompressTimeout: *compressTimeout,
		SimulateTimeout: *simTimeout,
		Version:         cliutil.Version(),
	}
	if *accessLog != "" {
		sink, closeSink, err := openAccessLog(*accessLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrpd: %v\n", err)
			os.Exit(1)
		}
		defer closeSink()
		cfg.AccessLog = sink
	}

	// Tracing is always on: the tail capture behind GET /debug/traces
	// costs only the slowest-N span trees. -trace additionally streams
	// every finished span as JSONL for offline analysis (ccrp-spans).
	tcfg := tracing.Config{TailSlow: *traceTail}
	if *traceOut != "" {
		sink, closeSink, err := openTraceSink(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrpd: %v\n", err)
			os.Exit(1)
		}
		defer closeSink()
		tcfg.Sink = sink
	}
	tracer := tracing.New(tcfg)
	defer tracer.Close()
	cfg.Tracer = tracer

	if *storeDir != "" {
		store, err := sweep.OpenDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrpd: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = store
	}

	svc := server.New(cfg)
	if cfg.Store != nil {
		// Warm start before the listener opens: the first request already
		// sees every stored coder. A failed enumeration is fatal — an
		// operator who asked for persistence should not silently run cold.
		n, err := svc.WarmStart(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrpd: warm start: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccrpd: warm start: %d coders from %s\n", n, *storeDir)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// First signal: drain. Second signal (after stop()): default handling,
	// i.e. immediate termination.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ccrpd %s listening on %s\n", cliutil.Version(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ccrpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		// Readiness goes first: a fronting router sees /readyz flip to
		// 503 and routes around this node while the drain window runs.
		svc.BeginDrain()
		fmt.Fprintf(os.Stderr, "ccrpd: signal received, draining for up to %s\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "ccrpd: drain incomplete: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ccrpd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ccrpd: drained, exiting")
	}
}

// openAccessLog builds the JSONL event sink for -access-log.
func openAccessLog(path string) (metrics.EventSink, func(), error) {
	if path == "-" {
		sink := metrics.NewJSONLSink(os.Stderr)
		return sink, func() { sink.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	sink := metrics.NewJSONLSink(f)
	return sink, func() { sink.Close(); f.Close() }, nil
}

// openTraceSink builds the JSONL span sink for -trace.
func openTraceSink(path string) (tracing.SpanSink, func(), error) {
	if path == "-" {
		sink := tracing.NewJSONLSink(os.Stderr)
		return sink, func() { sink.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("trace sink: %w", err)
	}
	sink := tracing.NewJSONLSink(f)
	return sink, func() { sink.Close(); f.Close() }, nil
}
