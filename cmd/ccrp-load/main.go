// Command ccrp-load drives a running ccrpd with a mixed workload and
// reports latency percentiles and throughput, the serving twin of
// cmd/ccrp-bench's engine benchmarks.
//
// Usage:
//
//	ccrp-load [-url http://localhost:8642] [-clients 4] [-requests 200]
//	          [-mix compress=4,roundtrip=2,simulate=1] [-batch 1] [-timeout 2m]
//	          [-slo p99=500ms,error-rate=0,min-rps=20]
//	          [-o BENCH_PR3.json] [-version]
//
// Traffic classes:
//
//	compress   POST /v1/compress of a corpus workload under a trained coder
//	roundtrip  compress + decompress with byte-identity verification
//	simulate   POST /v1/simulate of one cache/CLB point
//
// With -batch N (N > 1) the compress and roundtrip classes switch to the
// /v1/compress:batch and /v1/decompress:batch endpoints, carrying N
// blocks per HTTP request. -requests still counts blocks, and every
// latency is recorded per block (the batch's wall time divided by its
// item count), so a -batch run and a single-request run of the same
// -requests compare percentiles at equal block counts — the measured
// quantity is exactly the amortization the batch endpoints buy. Any
// per-item error in a batch fails the whole operation: the generator
// only sends well-formed items, so an item error is a server defect.
//
// The run fails (exit 1) on any 5xx response, any transport error, or any
// round trip that is not byte-identical. -slo adds service-level gates
// evaluated over the whole run: duration clauses (p50/p95/p99/max, any
// time.ParseDuration value) bound overall latency, error-rate bounds the
// failed fraction, and min-rps sets a throughput floor. The first
// violated clause is named on stderr and fails the run, which is what
// the CI load gate keys off.
//
// Every response's X-Ccrp-Trace-Id is captured, and the report records
// the trace ids of the slowest request per class, so a -trace'd daemon's
// span file can be cross-examined with ccrp-spans.
//
// When -url points at a ccrp-router gateway, the X-Ccrp-Backend header
// of every response is tallied and the report gains a "backends" map:
// the observed per-node distribution of the run's traffic across the
// fleet (scripts/fleet_smoke.sh asserts on it).
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccrp/internal/cliutil"
	"ccrp/internal/cluster"
	"ccrp/internal/hostinfo"
	"ccrp/internal/workload"
)

// backendCounts tallies X-Ccrp-Backend response headers across the run.
// ccrp-router stamps the header with the node that answered, so a run
// driven through the gateway reports how the ring spread the traffic;
// driving a ccrpd directly leaves the tally empty.
var (
	backendMu     sync.Mutex
	backendCounts = map[string]int{}
)

// opResult is one completed operation (possibly several HTTP requests)
// with the server trace ids it touched. items is the block count the
// operation carried: 1 for single-request classes, the batch size for
// batched compress/roundtrip.
type opResult struct {
	class  string
	status int
	dur    time.Duration
	err    error
	traces []string
	items  int
}

// classStats aggregates one traffic class for the report.
type classStats struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	MeanMS     float64 `json:"mean_ms"`
	Throughput float64 `json:"throughput_rps"`
	// SlowTraces holds the X-Ccrp-Trace-Id values of the class's slowest
	// operation, the handles ccrp-spans resolves into span trees.
	SlowTraces []string `json:"slow_traces,omitempty"`
}

// sloResult is one evaluated -slo clause in the report.
type sloResult struct {
	Clause string `json:"clause"`
	Actual string `json:"actual"`
	OK     bool   `json:"ok"`
}

// report is the BENCH_PR3.json document.
type report struct {
	Schema     int                   `json:"schema"`
	Tool       string                `json:"tool"`
	Version    string                `json:"version"`
	URL        string                `json:"url"`
	Clients    int                   `json:"clients"`
	Requests   int                   `json:"requests"`
	Batch      int                   `json:"batch,omitempty"`
	Mix        string                `json:"mix"`
	WallMS     float64               `json:"wall_ms"`
	Throughput float64               `json:"throughput_rps"`
	Status5xx  int                   `json:"status_5xx"`
	RoundTrips int                   `json:"round_trips_verified"`
	Overall    classStats            `json:"overall"`
	Classes    map[string]classStats `json:"classes"`
	// Backends counts responses per X-Ccrp-Backend node — the observed
	// per-node distribution when the run goes through ccrp-router.
	Backends map[string]int `json:"backends,omitempty"`
	SLO      []sloResult    `json:"slo,omitempty"`
	Host     hostinfo.Info  `json:"host"`
}

func main() {
	url := flag.String("url", "http://localhost:8642", "ccrpd base URL")
	clients := flag.Int("clients", 4, "concurrent clients")
	requests := flag.Int("requests", 200, "total requests across all clients")
	mix := flag.String("mix", "compress=4,roundtrip=2,simulate=1", "traffic mix as class=weight pairs")
	batch := flag.Int("batch", 1, "blocks per compress/roundtrip request (>1 uses the :batch endpoints; latencies are per block)")
	slo := flag.String("slo", "", "fail the run unless these clauses hold (e.g. p99=500ms,error-rate=0,min-rps=20)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	seed := flag.Int64("seed", 1, "traffic-shuffle seed")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrp-load", version)

	classes, err := parseMix(*mix)
	if err != nil {
		fatal("%v", err)
	}
	sloClauses, err := parseSLO(*slo)
	if err != nil {
		fatal("%v", err)
	}
	if *clients < 1 || *requests < 1 {
		fatal("clients and requests must be positive")
	}
	if *batch < 1 {
		fatal("batch must be positive")
	}

	client := &http.Client{Timeout: *timeout}

	// One coder for the whole run: the server's cache makes this a single
	// build no matter how many clients race on startup.
	coderID, err := trainCoder(client, *url)
	if err != nil {
		fatal("training coder: %v", err)
	}

	// Pre-plan the traffic so every run with the same flags issues the
	// same request sequence. With -batch N one planned operation covers up
	// to N blocks, so the plan shrinks to keep -requests counting blocks.
	numOps := *requests
	if *batch > 1 {
		numOps = (*requests + *batch - 1) / *batch
	}
	rng := rand.New(rand.NewSource(*seed))
	plan := make([]string, numOps)
	for i := range plan {
		plan[i] = pickClass(rng, classes)
	}
	names := workload.Names()

	jobs := make(chan int)
	results := make(chan opResult, numOps)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range jobs {
				results <- runOp(client, *url, plan[i], coderID, names, i, *batch, *requests)
			}
		}(c)
	}
	for i := 0; i < numOps; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	close(results)

	rep := report{
		Schema:  1,
		Tool:    "ccrp-load",
		Version: cliutil.Version(),
		URL:     *url,
		Clients: *clients,
		Mix:     *mix,
		Batch:   *batch,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Classes: map[string]classStats{},
		Host:    hostinfo.Collect(),
	}
	perClass := map[string][]opResult{}
	var all []time.Duration
	failures := 0
	for r := range results {
		if r.items < 1 {
			r.items = 1
		}
		// Per-block accounting: a batch of N contributes N requests at its
		// amortized latency, so batch and single runs share a unit.
		r.dur /= time.Duration(r.items)
		rep.Requests += r.items
		if r.status >= 500 {
			rep.Status5xx++
		}
		if r.err != nil {
			failures += r.items
			fmt.Fprintf(os.Stderr, "ccrp-load: %s: %v\n", r.class, r.err)
			cs := rep.Classes[r.class]
			cs.Errors += r.items
			rep.Classes[r.class] = cs
			continue
		}
		if r.class == "roundtrip" {
			rep.RoundTrips += r.items
		}
		for j := 0; j < r.items; j++ {
			perClass[r.class] = append(perClass[r.class], r)
			all = append(all, r.dur)
		}
	}
	for class, ops := range perClass {
		cs := rep.Classes[class]
		cs.Requests = len(ops) + cs.Errors
		sort.Slice(ops, func(i, j int) bool { return ops[i].dur < ops[j].dur })
		durs := make([]time.Duration, len(ops))
		for i, op := range ops {
			durs[i] = op.dur
		}
		cs.P50MS = percentile(durs, 0.50)
		cs.P95MS = percentile(durs, 0.95)
		cs.P99MS = percentile(durs, 0.99)
		cs.MaxMS = ms(durs[len(durs)-1])
		cs.SlowTraces = ops[len(ops)-1].traces
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		cs.MeanMS = ms(sum) / float64(len(durs))
		cs.Throughput = float64(len(durs)) / wall.Seconds()
		rep.Classes[class] = cs
	}
	rep.Throughput = float64(rep.Requests-failures) / wall.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Overall = classStats{
		Requests:   rep.Requests,
		Errors:     failures,
		Throughput: rep.Throughput,
	}
	if len(all) > 0 {
		rep.Overall.P50MS = percentile(all, 0.50)
		rep.Overall.P95MS = percentile(all, 0.95)
		rep.Overall.P99MS = percentile(all, 0.99)
		rep.Overall.MaxMS = ms(all[len(all)-1])
	}

	if len(backendCounts) > 0 {
		rep.Backends = backendCounts
	}

	sloViolation := evalSLO(sloClauses, &rep, failures)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal("%v", err)
		}
	} else {
		os.Stdout.Write(blob)
	}

	fmt.Fprintf(os.Stderr, "ccrp-load: %d requests, %d clients, %.1f req/s, %d 5xx, %d failures\n",
		rep.Requests, *clients, rep.Throughput, rep.Status5xx, failures)
	if len(rep.Backends) > 0 {
		nodes := make([]string, 0, len(rep.Backends))
		for n := range rep.Backends {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		parts := make([]string, len(nodes))
		for i, n := range nodes {
			parts[i] = fmt.Sprintf("%s=%d", n, rep.Backends[n])
		}
		fmt.Fprintf(os.Stderr, "ccrp-load: backend distribution: %s\n", strings.Join(parts, " "))
	}
	if sloViolation != "" {
		fmt.Fprintf(os.Stderr, "ccrp-load: SLO violated: %s\n", sloViolation)
		os.Exit(1)
	}
	if rep.Status5xx > 0 || failures > 0 {
		os.Exit(1)
	}
}

// sloClause is one parsed -slo term.
type sloClause struct {
	key string
	// dur is set for latency clauses (p50/p95/p99/max), rate for
	// error-rate, rps for min-rps.
	dur  time.Duration
	rate float64
	rps  float64
	text string
}

// parseSLO parses "key=value,..." into clauses. Latency keys take any
// time.ParseDuration value; error-rate takes a fraction in [0, 1];
// min-rps takes a float.
func parseSLO(s string) ([]sloClause, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var clauses []sloClause
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("slo clause %q is not key=value", pair)
		}
		c := sloClause{key: key, text: pair}
		switch key {
		case "p50", "p95", "p99", "max":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo clause %q needs a positive duration", pair)
			}
			c.dur = d
		case "error-rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("slo clause %q needs a fraction in [0, 1]", pair)
			}
			c.rate = f
		case "min-rps":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("slo clause %q needs a positive rate", pair)
			}
			c.rps = f
		default:
			return nil, fmt.Errorf("unknown slo key %q (have p50, p95, p99, max, error-rate, min-rps)", key)
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// evalSLO checks every clause against the finished report, records the
// verdicts in rep.SLO, and returns a description of the first violated
// clause ("" when all hold).
func evalSLO(clauses []sloClause, rep *report, failures int) string {
	violation := ""
	for _, c := range clauses {
		var actualMS float64
		var actual string
		ok := true
		switch c.key {
		case "p50", "p95", "p99", "max":
			switch c.key {
			case "p50":
				actualMS = rep.Overall.P50MS
			case "p95":
				actualMS = rep.Overall.P95MS
			case "p99":
				actualMS = rep.Overall.P99MS
			case "max":
				actualMS = rep.Overall.MaxMS
			}
			actual = fmt.Sprintf("%.1fms", actualMS)
			ok = actualMS <= float64(c.dur.Microseconds())/1000
		case "error-rate":
			rate := 0.0
			if rep.Requests > 0 {
				rate = float64(failures) / float64(rep.Requests)
			}
			actual = fmt.Sprintf("%.4f", rate)
			ok = rate <= c.rate
		case "min-rps":
			actual = fmt.Sprintf("%.1f", rep.Throughput)
			ok = rep.Throughput >= c.rps
		}
		rep.SLO = append(rep.SLO, sloResult{Clause: c.text, Actual: actual, OK: ok})
		if !ok && violation == "" {
			violation = fmt.Sprintf("%s (actual %s)", c.text, actual)
		}
	}
	return violation
}

// parseMix parses "class=weight,..." into an ordered weight table.
func parseMix(s string) ([]struct {
	name   string
	weight int
}, error) {
	var classes []struct {
		name   string
		weight int
	}
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not class=weight", pair)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("mix entry %q has a bad weight", pair)
		}
		switch name {
		case "compress", "roundtrip", "simulate":
		default:
			return nil, fmt.Errorf("unknown traffic class %q", name)
		}
		classes = append(classes, struct {
			name   string
			weight int
		}{name, weight})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty traffic mix")
	}
	return classes, nil
}

// pickClass samples the mix by weight.
func pickClass(rng *rand.Rand, classes []struct {
	name   string
	weight int
}) string {
	total := 0
	for _, c := range classes {
		total += c.weight
	}
	n := rng.Intn(total)
	for _, c := range classes {
		if n < c.weight {
			return c.name
		}
		n -= c.weight
	}
	return classes[len(classes)-1].name
}

// runOp issues one operation of the given class and times it. With
// batch > 1 the compress and roundtrip classes carry a block list (up to
// batch blocks, clipped so the run covers exactly total blocks) through
// the :batch endpoints; simulate is inherently single-request.
func runOp(client *http.Client, base, class, coderID string, names []string, i, batch, total int) opResult {
	// The block index space is contiguous across operations, so workload
	// selection is identical whether the run is batched or not.
	wls := []string{names[(i*batch)%len(names)]}
	if batch > 1 && class != "simulate" {
		n := batch
		if rem := total - i*batch; rem < n {
			n = rem
		}
		wls = make([]string, n)
		for j := range wls {
			wls[j] = names[(i*batch+j)%len(names)]
		}
	}

	start := time.Now()
	var err error
	var status int
	var traces []string
	switch class {
	case "compress":
		var tid string
		if len(wls) > 1 {
			status, tid, _, err = compressBatch(client, base, coderID, wls)
		} else {
			status, tid, _, err = compress(client, base, coderID, wls[0])
		}
		traces = appendTrace(traces, tid)
	case "roundtrip":
		if len(wls) > 1 {
			status, traces, err = roundTripBatch(client, base, coderID, wls)
		} else {
			status, traces, err = roundTrip(client, base, coderID, wls[0])
		}
	case "simulate":
		var tid string
		status, tid, err = simulate(client, base, wls[0], 256<<(i%4))
		traces = appendTrace(traces, tid)
	}
	return opResult{class: class, status: status, dur: time.Since(start), err: err, traces: traces, items: len(wls)}
}

// appendTrace collects non-empty trace ids.
func appendTrace(traces []string, tid string) []string {
	if tid == "" {
		return traces
	}
	return append(traces, tid)
}

// post round-trips one JSON request, decoding the response into out and
// returning the response's X-Ccrp-Trace-Id for span correlation.
func post(client *http.Client, url string, in, out any) (int, string, error) {
	blob, err := json.Marshal(in)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	tid := resp.Header.Get("X-Ccrp-Trace-Id")
	if node := resp.Header.Get(cluster.BackendHeader); node != "" {
		backendMu.Lock()
		backendCounts[node]++
		backendMu.Unlock()
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, tid, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, tid, fmt.Errorf("%s: %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, tid, fmt.Errorf("%s: bad response: %v", url, err)
		}
	}
	return resp.StatusCode, tid, nil
}

// trainCoder trains the run's shared preselected coder.
func trainCoder(client *http.Client, base string) (string, error) {
	var info struct {
		ID string `json:"id"`
	}
	if _, _, err := post(client, base+"/v1/coders",
		map[string]any{"kind": "preselected"}, &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

// compressOut is the subset of the compress response the generator uses.
type compressOut struct {
	OriginalBytes int    `json:"original_bytes"`
	ROMB64        string `json:"rom_b64"`
	BlocksB64     string `json:"blocks_b64"`
	Lines         []struct {
		Len int  `json:"len"`
		Raw bool `json:"raw,omitempty"`
	} `json:"lines"`
}

func compress(client *http.Client, base, coderID, wl string) (int, string, *compressOut, error) {
	var out compressOut
	status, tid, err := post(client, base+"/v1/compress",
		map[string]any{"coder_id": coderID, "workload": wl}, &out)
	return status, tid, &out, err
}

// roundTrip compresses a workload, decompresses the result, and verifies
// byte identity against the workload's own text image. Decompression
// goes through the coder_id+blocks+lines path so repeated round trips
// of the same workload exercise ccrpd's decoded-line cache (the rom_b64
// path is self-describing and bypasses it).
func roundTrip(client *http.Client, base, coderID, wl string) (int, []string, error) {
	status, tid, comp, err := compress(client, base, coderID, wl)
	traces := appendTrace(nil, tid)
	if err != nil {
		return status, traces, err
	}
	var dec struct {
		TextB64 string `json:"text_b64"`
	}
	status, tid, err = post(client, base+"/v1/decompress",
		map[string]any{
			"coder_id":   coderID,
			"blocks_b64": comp.BlocksB64,
			"lines":      comp.Lines,
		}, &dec)
	traces = appendTrace(traces, tid)
	if err != nil {
		return status, traces, err
	}
	return status, traces, verifyText(wl, comp.OriginalBytes, dec.TextB64)
}

// verifyText checks a decompressed image against the workload's own text
// (zero-padded to the compressed original size, which is line-aligned).
func verifyText(wl string, originalBytes int, textB64 string) error {
	got, err := base64.StdEncoding.DecodeString(textB64)
	if err != nil {
		return err
	}
	w, ok := workload.ByName(wl)
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	text, err := w.Text()
	if err != nil {
		return err
	}
	want := make([]byte, originalBytes)
	copy(want, text)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("round trip of %q is not byte-identical", wl)
	}
	return nil
}

// batchItem is the generic per-item wire shape of both :batch responses.
type batchItem[T any] struct {
	Result *T `json:"result"`
	Error  *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// unpackBatch validates a :batch response — right item count, zero item
// errors — and strips the per-item envelopes.
func unpackBatch[T any](endpoint string, items []batchItem[T], errors, want int) ([]*T, error) {
	if errors != 0 {
		for i, it := range items {
			if it.Error != nil {
				return nil, fmt.Errorf("%s item %d: %s: %s", endpoint, i, it.Error.Code, it.Error.Message)
			}
		}
		return nil, fmt.Errorf("%s: %d item errors", endpoint, errors)
	}
	if len(items) != want {
		return nil, fmt.Errorf("%s returned %d items, want %d", endpoint, len(items), want)
	}
	out := make([]*T, len(items))
	for i, it := range items {
		if it.Result == nil {
			return nil, fmt.Errorf("%s item %d has neither result nor error", endpoint, i)
		}
		out[i] = it.Result
	}
	return out, nil
}

// compressBatch compresses len(wls) workloads in one :batch request.
func compressBatch(client *http.Client, base, coderID string, wls []string) (int, string, []*compressOut, error) {
	items := make([]map[string]any, len(wls))
	for i, wl := range wls {
		items[i] = map[string]any{"workload": wl}
	}
	var resp struct {
		Items  []batchItem[compressOut] `json:"items"`
		Errors int                      `json:"errors"`
	}
	status, tid, err := post(client, base+"/v1/compress:batch",
		map[string]any{"coder_id": coderID, "items": items}, &resp)
	if err != nil {
		return status, tid, nil, err
	}
	outs, err := unpackBatch("compress:batch", resp.Items, resp.Errors, len(wls))
	return status, tid, outs, err
}

// roundTripBatch is roundTrip over the :batch endpoints: one compress
// batch, one decompress batch, byte-identity verified per item.
func roundTripBatch(client *http.Client, base, coderID string, wls []string) (int, []string, error) {
	status, tid, comps, err := compressBatch(client, base, coderID, wls)
	traces := appendTrace(nil, tid)
	if err != nil {
		return status, traces, err
	}
	items := make([]map[string]any, len(comps))
	for i, comp := range comps {
		items[i] = map[string]any{
			"coder_id":   coderID,
			"blocks_b64": comp.BlocksB64,
			"lines":      comp.Lines,
		}
	}
	var resp struct {
		Items []batchItem[struct {
			TextB64 string `json:"text_b64"`
		}] `json:"items"`
		Errors int `json:"errors"`
	}
	status, tid, err = post(client, base+"/v1/decompress:batch",
		map[string]any{"items": items}, &resp)
	traces = appendTrace(traces, tid)
	if err != nil {
		return status, traces, err
	}
	decs, err := unpackBatch("decompress:batch", resp.Items, resp.Errors, len(wls))
	if err != nil {
		return status, traces, err
	}
	for i, dec := range decs {
		if err := verifyText(wls[i], comps[i].OriginalBytes, dec.TextB64); err != nil {
			return status, traces, fmt.Errorf("item %d: %w", i, err)
		}
	}
	return status, traces, nil
}

func simulate(client *http.Client, base, wl string, cacheBytes int) (int, string, error) {
	var out struct {
		RelativePerformance float64 `json:"relative_performance"`
	}
	status, tid, err := post(client, base+"/v1/simulate",
		map[string]any{"workload": wl, "cache_bytes": cacheBytes}, &out)
	if err != nil {
		return status, tid, err
	}
	if out.RelativePerformance <= 0 {
		return status, tid, fmt.Errorf("simulate %q: nonpositive relative performance", wl)
	}
	return status, tid, nil
}

// percentile reads the p-th percentile from sorted durations.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return ms(sorted[idx])
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccrp-load: "+format+"\n", args...)
	os.Exit(1)
}
