// Command ccrp-load drives a running ccrpd with a mixed workload and
// reports latency percentiles and throughput, the serving twin of
// cmd/ccrp-bench's engine benchmarks.
//
// Usage:
//
//	ccrp-load [-url http://localhost:8642] [-clients 4] [-requests 200]
//	          [-mix compress=4,roundtrip=2,simulate=1] [-timeout 2m]
//	          [-o BENCH_PR3.json] [-version]
//
// Traffic classes:
//
//	compress   POST /v1/compress of a corpus workload under a trained coder
//	roundtrip  compress + decompress with byte-identity verification
//	simulate   POST /v1/simulate of one cache/CLB point
//
// The run fails (exit 1) on any 5xx response, any transport error, or any
// round trip that is not byte-identical.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccrp/internal/cliutil"
	"ccrp/internal/hostinfo"
	"ccrp/internal/workload"
)

// opResult is one completed request.
type opResult struct {
	class  string
	status int
	dur    time.Duration
	err    error
}

// classStats aggregates one traffic class for the report.
type classStats struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	MeanMS     float64 `json:"mean_ms"`
	Throughput float64 `json:"throughput_rps"`
}

// report is the BENCH_PR3.json document.
type report struct {
	Schema     int                   `json:"schema"`
	Tool       string                `json:"tool"`
	Version    string                `json:"version"`
	URL        string                `json:"url"`
	Clients    int                   `json:"clients"`
	Requests   int                   `json:"requests"`
	Mix        string                `json:"mix"`
	WallMS     float64               `json:"wall_ms"`
	Throughput float64               `json:"throughput_rps"`
	Status5xx  int                   `json:"status_5xx"`
	RoundTrips int                   `json:"round_trips_verified"`
	Classes    map[string]classStats `json:"classes"`
	Host       hostinfo.Info         `json:"host"`
}

func main() {
	url := flag.String("url", "http://localhost:8642", "ccrpd base URL")
	clients := flag.Int("clients", 4, "concurrent clients")
	requests := flag.Int("requests", 200, "total requests across all clients")
	mix := flag.String("mix", "compress=4,roundtrip=2,simulate=1", "traffic mix as class=weight pairs")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	seed := flag.Int64("seed", 1, "traffic-shuffle seed")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrp-load", version)

	classes, err := parseMix(*mix)
	if err != nil {
		fatal("%v", err)
	}
	if *clients < 1 || *requests < 1 {
		fatal("clients and requests must be positive")
	}

	client := &http.Client{Timeout: *timeout}

	// One coder for the whole run: the server's cache makes this a single
	// build no matter how many clients race on startup.
	coderID, err := trainCoder(client, *url)
	if err != nil {
		fatal("training coder: %v", err)
	}

	// Pre-plan the traffic so every run with the same flags issues the
	// same request sequence.
	rng := rand.New(rand.NewSource(*seed))
	plan := make([]string, *requests)
	for i := range plan {
		plan[i] = pickClass(rng, classes)
	}
	names := workload.Names()

	jobs := make(chan int)
	results := make(chan opResult, *requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range jobs {
				wl := names[i%len(names)]
				results <- runOp(client, *url, plan[i], coderID, wl, i)
			}
		}(c)
	}
	for i := 0; i < *requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	close(results)

	rep := report{
		Schema:  1,
		Tool:    "ccrp-load",
		Version: cliutil.Version(),
		URL:     *url,
		Clients: *clients,
		Mix:     *mix,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Classes: map[string]classStats{},
		Host:    hostinfo.Collect(),
	}
	perClass := map[string][]time.Duration{}
	failures := 0
	for r := range results {
		rep.Requests++
		if r.status >= 500 {
			rep.Status5xx++
		}
		if r.err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "ccrp-load: %s: %v\n", r.class, r.err)
			cs := rep.Classes[r.class]
			cs.Errors++
			rep.Classes[r.class] = cs
			continue
		}
		if r.class == "roundtrip" {
			rep.RoundTrips++
		}
		perClass[r.class] = append(perClass[r.class], r.dur)
	}
	for class, durs := range perClass {
		cs := rep.Classes[class]
		cs.Requests = len(durs) + cs.Errors
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		cs.P50MS = percentile(durs, 0.50)
		cs.P95MS = percentile(durs, 0.95)
		cs.P99MS = percentile(durs, 0.99)
		cs.MaxMS = ms(durs[len(durs)-1])
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		cs.MeanMS = ms(sum) / float64(len(durs))
		cs.Throughput = float64(len(durs)) / wall.Seconds()
		rep.Classes[class] = cs
	}
	rep.Throughput = float64(rep.Requests-failures) / wall.Seconds()

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal("%v", err)
		}
	} else {
		os.Stdout.Write(blob)
	}

	fmt.Fprintf(os.Stderr, "ccrp-load: %d requests, %d clients, %.1f req/s, %d 5xx, %d failures\n",
		rep.Requests, *clients, rep.Throughput, rep.Status5xx, failures)
	if rep.Status5xx > 0 || failures > 0 {
		os.Exit(1)
	}
}

// parseMix parses "class=weight,..." into an ordered weight table.
func parseMix(s string) ([]struct {
	name   string
	weight int
}, error) {
	var classes []struct {
		name   string
		weight int
	}
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not class=weight", pair)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("mix entry %q has a bad weight", pair)
		}
		switch name {
		case "compress", "roundtrip", "simulate":
		default:
			return nil, fmt.Errorf("unknown traffic class %q", name)
		}
		classes = append(classes, struct {
			name   string
			weight int
		}{name, weight})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty traffic mix")
	}
	return classes, nil
}

// pickClass samples the mix by weight.
func pickClass(rng *rand.Rand, classes []struct {
	name   string
	weight int
}) string {
	total := 0
	for _, c := range classes {
		total += c.weight
	}
	n := rng.Intn(total)
	for _, c := range classes {
		if n < c.weight {
			return c.name
		}
		n -= c.weight
	}
	return classes[len(classes)-1].name
}

// runOp issues one request of the given class and times it.
func runOp(client *http.Client, base, class, coderID, wl string, i int) opResult {
	start := time.Now()
	var err error
	var status int
	switch class {
	case "compress":
		status, _, err = compress(client, base, coderID, wl)
	case "roundtrip":
		status, err = roundTrip(client, base, coderID, wl)
	case "simulate":
		status, err = simulate(client, base, wl, 256<<(i%4))
	}
	return opResult{class: class, status: status, dur: time.Since(start), err: err}
}

// post round-trips one JSON request, decoding the response into out.
func post(client *http.Client, url string, in, out any) (int, error) {
	blob, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: bad response: %v", url, err)
		}
	}
	return resp.StatusCode, nil
}

// trainCoder trains the run's shared preselected coder.
func trainCoder(client *http.Client, base string) (string, error) {
	var info struct {
		ID string `json:"id"`
	}
	if _, err := post(client, base+"/v1/coders",
		map[string]any{"kind": "preselected"}, &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

// compressOut is the subset of the compress response the generator uses.
type compressOut struct {
	OriginalBytes int    `json:"original_bytes"`
	ROMB64        string `json:"rom_b64"`
	BlocksB64     string `json:"blocks_b64"`
	Lines         []struct {
		Len int  `json:"len"`
		Raw bool `json:"raw,omitempty"`
	} `json:"lines"`
}

func compress(client *http.Client, base, coderID, wl string) (int, *compressOut, error) {
	var out compressOut
	status, err := post(client, base+"/v1/compress",
		map[string]any{"coder_id": coderID, "workload": wl}, &out)
	return status, &out, err
}

// roundTrip compresses a workload, decompresses the result, and verifies
// byte identity against the workload's own text image. Decompression
// goes through the coder_id+blocks+lines path so repeated round trips
// of the same workload exercise ccrpd's decoded-line cache (the rom_b64
// path is self-describing and bypasses it).
func roundTrip(client *http.Client, base, coderID, wl string) (int, error) {
	status, comp, err := compress(client, base, coderID, wl)
	if err != nil {
		return status, err
	}
	var dec struct {
		TextB64 string `json:"text_b64"`
	}
	status, err = post(client, base+"/v1/decompress",
		map[string]any{
			"coder_id":   coderID,
			"blocks_b64": comp.BlocksB64,
			"lines":      comp.Lines,
		}, &dec)
	if err != nil {
		return status, err
	}
	got, err := base64.StdEncoding.DecodeString(dec.TextB64)
	if err != nil {
		return status, err
	}
	w, ok := workload.ByName(wl)
	if !ok {
		return status, fmt.Errorf("unknown workload %q", wl)
	}
	text, err := w.Text()
	if err != nil {
		return status, err
	}
	want := make([]byte, comp.OriginalBytes)
	copy(want, text)
	if !bytes.Equal(got, want) {
		return status, fmt.Errorf("round trip of %q is not byte-identical", wl)
	}
	return status, nil
}

func simulate(client *http.Client, base, wl string, cacheBytes int) (int, error) {
	var out struct {
		RelativePerformance float64 `json:"relative_performance"`
	}
	status, err := post(client, base+"/v1/simulate",
		map[string]any{"workload": wl, "cache_bytes": cacheBytes}, &out)
	if err != nil {
		return status, err
	}
	if out.RelativePerformance <= 0 {
		return status, fmt.Errorf("simulate %q: nonpositive relative performance", wl)
	}
	return status, nil
}

// percentile reads the p-th percentile from sorted durations.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return ms(sorted[idx])
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccrp-load: "+format+"\n", args...)
	os.Exit(1)
}
