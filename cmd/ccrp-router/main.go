// Command ccrp-router is the fleet gateway: it fronts a set of ccrpd
// nodes and routes every /v1/* request to the node that owns the
// request's coder id on a consistent-hash ring, failing over along the
// ring's successor order when a node is down.
//
// Usage:
//
//	ccrp-router -fleet host:8642,host:8643,host:8644 [-addr :8640]
//	            [-probe-interval 500ms] [-probe-timeout 2s]
//	            [-fail-threshold 3] [-recover-threshold 2]
//	            [-forward-timeout 30s] [-max-attempts 3] [-backoff 25ms]
//	            [-max-body 16777216] [-access-log access.jsonl]
//	            [-trace spans.jsonl] [-trace-tail 16] [-drain 15s]
//	            [-version]
//
// The ring is the serving analogue of the paper's LAT: an indirection
// table in front of the real storage that turns "which node holds this
// coder" into a pure function of the id, so no directory service is
// needed and every router instance computes the same answer. Health
// checking probes each node's /readyz — a draining ccrpd (SIGTERM
// received, /readyz 503) leaves the rotation before its listener
// closes, and a kill -9'd node is ejected after a few failed forwards.
//
// Every response carries X-Ccrp-Trace-Id (generated here, adopted by
// the backend, so router and backend spans form one trace) and
// X-Ccrp-Backend (the node that answered, so clients can observe the
// placement the ring computed). The router's own /healthz reports the
// fleet snapshot; /metrics exports per-node request, error, and
// failover counters plus node-health gauges and forward latency.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ccrp/internal/cliutil"
	"ccrp/internal/cluster"
	"ccrp/internal/metrics"
	"ccrp/internal/server"
	"ccrp/internal/tracing"
)

// Router span stages, the gateway's addition to the request-path
// vocabulary: one request root per proxied call, one forward child
// covering the retry loop.
const (
	stageRequest = "request"
	stageForward = "forward"
)

// router is the gateway state shared by the proxy and its own
// observability endpoints.
type router struct {
	ring    *cluster.Ring
	health  *cluster.Checker
	fwd     *cluster.Forwarder
	tracer  *tracing.Tracer
	maxBody int64
	start   time.Time

	mu   sync.Mutex // serializes instrument updates and /metrics scrapes
	reg  *metrics.Registry
	inst routerMetrics

	accessMu sync.Mutex
	access   metrics.EventSink
	seq      atomic.Uint64
	draining atomic.Bool
}

type routerMetrics struct {
	requests  *metrics.CounterVec // answered requests by backend node
	errors    *metrics.CounterVec // failed attempts (connect error or 5xx) by node
	failovers *metrics.CounterVec // requests rerouted away, by the node that failed
	routeKeys *metrics.CounterVec // route-key derivations by kind (coder | hash)
	nodeUp    *metrics.GaugeVec   // 1 when the health checker holds the node up
	latency   *metrics.Histogram  // forward wall time, seconds, incl. retries
	uptime    *metrics.Gauge
}

func newRouter(ring *cluster.Ring, health *cluster.Checker, fwd *cluster.Forwarder, tracer *tracing.Tracer, maxBody int64) *router {
	rt := &router{
		ring: ring, health: health, fwd: fwd, tracer: tracer,
		maxBody: maxBody, start: time.Now(), reg: metrics.New(),
	}
	rt.inst = routerMetrics{
		requests:  rt.reg.CounterVec("ccrp_router_requests_total", "requests answered per backend node", "node"),
		errors:    rt.reg.CounterVec("ccrp_router_node_errors_total", "failed forward attempts per node", "node"),
		failovers: rt.reg.CounterVec("ccrp_router_failovers_total", "requests rerouted away from a failing node", "node"),
		routeKeys: rt.reg.CounterVec("ccrp_router_route_keys_total", "route-key derivations by kind", "kind"),
		nodeUp:    rt.reg.GaugeVec("ccrp_router_node_up", "1 when the node is in rotation", "node"),
		latency: rt.reg.Histogram("ccrp_router_forward_seconds", "forward wall time including retries",
			metrics.ExpBuckets(0.0001, 4, 10)),
		uptime: rt.reg.Gauge("ccrp_router_uptime_seconds", "seconds since router start"),
	}
	return rt
}

// inboundTraceID mirrors the backend's header validation: adopt only
// the well-formed 128-bit form, never the zero id.
func inboundTraceID(r *http.Request) tracing.TraceID {
	tid, err := tracing.ParseTraceID(r.Header.Get(server.TraceHeader))
	if err != nil {
		return tracing.TraceID{}
	}
	return tid
}

// hopHeaders are stripped before forwarding (RFC 9110 connection-
// scoped fields; the forwarder manages its own connections).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// proxy is the /v1/* handler: derive the route key, forward along the
// ring, relay the backend's response bytes and status untouched.
func (rt *router) proxy(w http.ResponseWriter, r *http.Request) {
	seq := rt.seq.Add(1)
	start := time.Now()

	tid := inboundTraceID(r)
	if tid.IsZero() {
		tid = tracing.NewTraceID()
	}
	w.Header().Set(server.TraceHeader, tid.String())
	span := rt.tracer.StartTrace(tid, stageRequest)
	span.SetAttr("route", r.URL.Path)
	span.SetAttr("method", r.Method)

	status, node, errCode := rt.forward(w, r, tid, span)

	dur := time.Since(start)
	span.SetAttrInt("status", int64(status))
	span.End()
	rt.mu.Lock()
	rt.inst.latency.Observe(dur.Seconds())
	rt.mu.Unlock()
	rt.logAccess(seq, r, status, dur, tid, node, errCode)
}

// forward runs the routed hop and writes the response. It returns the
// client-visible status, the answering node ("" when no node answered),
// and the router-generated error code ("" when the backend's own
// response was relayed).
func (rt *router) forward(w http.ResponseWriter, r *http.Request, tid tracing.TraceID, span *tracing.Span) (status int, node, errCode string) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return rt.fail(w, span, err)
	}

	key, kind := server.RouteKey(r.Method, r.URL.Path, body)
	span.SetAttr("route_key", kind)
	rt.mu.Lock()
	rt.inst.routeKeys.With(kind).Inc()
	rt.mu.Unlock()

	hdr := r.Header.Clone()
	for _, h := range hopHeaders {
		hdr.Del(h)
	}
	hdr.Set(server.TraceHeader, tid.String())

	fsp := span.Child(stageForward)
	fsp.SetAttr("owner", rt.ring.Owner(key))
	res, err := rt.fwd.Do(r.Context(), key, r.Method, r.URL.RequestURI(), hdr, body)
	rt.recordAttempts(res, fsp)
	if err != nil {
		fsp.SetError(err)
		fsp.End()
		return rt.fail(w, span, err)
	}
	fsp.SetAttr("node", res.Node)
	fsp.End()

	resp := res.Resp
	defer resp.Body.Close()
	out := w.Header()
	for k, vs := range resp.Header {
		if k == server.TraceHeader {
			continue // already stamped; the backend echoes the same id
		}
		out[k] = vs
	}
	out.Set(cluster.BackendHeader, res.Node)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)

	rt.mu.Lock()
	rt.inst.requests.With(res.Node).Inc()
	rt.mu.Unlock()
	return resp.StatusCode, res.Node, ""
}

// recordAttempts attributes every failed try to its node — in metrics
// and on the forward span — whether or not the request recovered.
func (rt *router) recordAttempts(res *cluster.Result, fsp *tracing.Span) {
	if res == nil {
		return
	}
	fsp.SetAttrInt("attempts", int64(len(res.Attempts)))
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, a := range res.Attempts {
		failed := a.Err != nil || a.Status >= 500
		if failed {
			rt.inst.errors.With(a.Node).Inc()
		}
		// A failover is a request that left a failing node for a later
		// candidate; the last attempt (successful or not) stays put.
		if failed && i < len(res.Attempts)-1 {
			rt.inst.failovers.With(a.Node).Inc()
		}
	}
}

// fail writes a router-generated error (the backend never answered) in
// the service's own taxonomy shape, so clients parse one error format
// fleet-wide.
func (rt *router) fail(w http.ResponseWriter, span *tracing.Span, err error) (int, string, string) {
	span.SetError(err)
	status, code := http.StatusBadGateway, "bad_gateway"
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		status, code = http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge
	} else if errors.Is(err, context.DeadlineExceeded) {
		status, code = http.StatusGatewayTimeout, "gateway_timeout"
	}
	api := server.Errf(status, code, "%v", err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": {\n    \"code\": %q,\n    \"message\": %q\n  }\n}\n", api.Code, api.Message)
	return status, "", code
}

func (rt *router) logAccess(seq uint64, r *http.Request, status int, dur time.Duration, tid tracing.TraceID, node, errCode string) {
	if rt.access == nil {
		return
	}
	rt.accessMu.Lock()
	rt.access.Emit(metrics.Event{
		Type: metrics.EvHTTP, Seq: seq, Line: -1, Set: -1,
		Method: r.Method, Path: r.URL.Path, Status: status,
		DurUS: uint64(dur.Microseconds()), Err: errCode,
		Trace: tid.String(), Node: node,
	})
	rt.accessMu.Unlock()
}

// healthzBody is the router's /healthz shape: its own liveness plus the
// fleet picture its routing decisions are based on.
type healthzBody struct {
	Status        string               `json:"status"`
	Version       string               `json:"version"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	RingNodes     int                  `json:"ring_nodes"`
	NodesUp       int                  `json:"nodes_up"`
	Fleet         []cluster.NodeStatus `json:"fleet"`
}

func (rt *router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzBody{
		Status:        "ok",
		Version:       cliutil.Version(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
		RingNodes:     rt.ring.Len(),
		NodesUp:       rt.health.UpCount(),
		Fleet:         rt.health.Snapshot(),
	})
}

// handleReadyz: the router is ready while it can route somewhere — at
// least one node up and drain not begun.
func (rt *router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if rt.health.UpCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (rt *router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, st := range rt.health.Snapshot() {
		up := 0.0
		if st.Up {
			up = 1.0
		}
		rt.inst.nodeUp.With(st.Node).Set(up)
	}
	rt.inst.uptime.Set(time.Since(rt.start).Seconds())
	_ = rt.reg.WritePrometheus(w)
}

func (rt *router) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.tracer.TailSnapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", rt.proxy)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /debug/traces", rt.handleTraces)
	return mux
}

func main() {
	addr := flag.String("addr", ":8640", "listen address")
	fleet := flag.String("fleet", "", "comma-separated backend host:port list (required)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active health-probe interval")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that mark a node down")
	recoverThreshold := flag.Int("recover-threshold", 2, "consecutive probe successes that mark a node up")
	forwardTimeout := flag.Duration("forward-timeout", 30*time.Second, "per-attempt forward deadline")
	maxAttempts := flag.Int("max-attempts", 3, "total forward attempts per request across nodes")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "initial retry backoff (doubles per attempt)")
	maxBody := flag.Int64("max-body", 16<<20, "request body limit in bytes")
	accessLog := flag.String("access-log", "", "append JSONL access logs to this file (- for stderr)")
	traceOut := flag.String("trace", "", "append JSONL span records to this file (- for stderr)")
	traceTail := flag.Int("trace-tail", tracing.DefaultTailSlow, "slowest request trees retained for GET /debug/traces")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrp-router", version)

	var nodes []string
	for _, n := range strings.Split(*fleet, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "ccrp-router: -fleet requires at least one host:port")
		os.Exit(2)
	}

	ring := cluster.New(cluster.DefaultReplicas, nodes...)
	health := cluster.NewChecker(cluster.CheckerConfig{
		Nodes:            nodes,
		Interval:         *probeInterval,
		Timeout:          *probeTimeout,
		FailThreshold:    *failThreshold,
		RecoverThreshold: *recoverThreshold,
		OnTransition: func(node string, up bool) {
			state := "down"
			if up {
				state = "up"
			}
			fmt.Fprintf(os.Stderr, "ccrp-router: node %s is %s\n", node, state)
		},
	})
	fwd := cluster.NewForwarder(cluster.ForwarderConfig{
		Ring:        ring,
		Health:      health,
		Timeout:     *forwardTimeout,
		MaxAttempts: *maxAttempts,
		Backoff:     *backoff,
		Client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
		}},
	})

	tcfg := tracing.Config{TailSlow: *traceTail}
	if *traceOut != "" {
		sink, closeSink, err := openTraceSink(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrp-router: %v\n", err)
			os.Exit(1)
		}
		defer closeSink()
		tcfg.Sink = sink
	}
	tracer := tracing.New(tcfg)
	defer tracer.Close()

	rt := newRouter(ring, health, fwd, tracer, *maxBody)
	if *accessLog != "" {
		sink, closeSink, err := openAccessLog(*accessLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrp-router: %v\n", err)
			os.Exit(1)
		}
		defer closeSink()
		rt.access = sink
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// One synchronous probe round before the listener opens: a fleet
	// member that is already dead at boot never takes the first request.
	health.ProbeRound(ctx)
	go health.Run(ctx)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ccrp-router %s listening on %s, fleet %s (%d/%d up)\n",
			cliutil.Version(), *addr, strings.Join(nodes, ","), health.UpCount(), len(nodes))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ccrp-router: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		rt.draining.Store(true)
		fmt.Fprintf(os.Stderr, "ccrp-router: signal received, draining for up to %s\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "ccrp-router: drain incomplete: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ccrp-router: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ccrp-router: drained, exiting")
	}
}

// openAccessLog builds the JSONL event sink for -access-log.
func openAccessLog(path string) (metrics.EventSink, func(), error) {
	if path == "-" {
		sink := metrics.NewJSONLSink(os.Stderr)
		return sink, func() { sink.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	sink := metrics.NewJSONLSink(f)
	return sink, func() { sink.Close(); f.Close() }, nil
}

// openTraceSink builds the JSONL span sink for -trace.
func openTraceSink(path string) (tracing.SpanSink, func(), error) {
	if path == "-" {
		sink := tracing.NewJSONLSink(os.Stderr)
		return sink, func() { sink.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("trace sink: %w", err)
	}
	sink := tracing.NewJSONLSink(f)
	return sink, func() { sink.Close(); f.Close() }, nil
}
