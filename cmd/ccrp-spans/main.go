// Command ccrp-spans analyzes the JSONL span streams written by ccrpd
// -trace and the -spans flag of the batch CLIs: it reconstructs span
// trees, aggregates per-stage latency percentiles, self time, and
// critical-path attribution, and reports how much of each request's
// end-to-end time the instrumented stages explain.
//
// Usage:
//
//	ccrp-spans [-json] [-top 5] [-stage request] [spans.jsonl ...]
//
// With no files (or "-") it reads stdin, so it composes with a live
// daemon: ccrpd -trace - 2>&1 | ccrp-spans. Multiple files concatenate;
// ids are unique per tracer run, so mixing runs is safe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ccrp/internal/cliutil"
	"ccrp/internal/tablefmt"
	"ccrp/internal/tracing"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the analysis as JSON instead of tables")
	top := flag.Int("top", 5, "number of slowest traces to break down (0 disables)")
	stage := flag.String("stage", "", "only report this stage in the stage table")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrp-spans", version)

	recs, err := readAll(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no span records (is tracing enabled? start ccrpd with -trace spans.jsonl)"))
	}
	a := tracing.Analyze(recs, *top)

	if *stage != "" {
		kept := a.Stages[:0]
		for _, s := range a.Stages {
			if s.Stage == *stage {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("no spans with stage %q", *stage))
		}
		a.Stages = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fatal(err)
		}
		return
	}
	render(os.Stdout, a)
}

// readAll concatenates the span records of every named file, with "-"
// (or an empty list) meaning stdin.
func readAll(paths []string) ([]tracing.Record, error) {
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	var recs []tracing.Record
	for _, path := range paths {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		part, err := tracing.ReadRecords(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, part...)
	}
	return recs, nil
}

// render writes the human-readable report.
func render(w io.Writer, a *tracing.Analysis) {
	fmt.Fprintf(w, "%d spans, %d traces, %d roots\n", a.Spans, a.Traces, a.Roots)
	if a.Coverage.Roots > 0 {
		fmt.Fprintf(w, "stage coverage: mean %.1f%% of root time, min %.1f%% (over %d decomposed roots)\n",
			100*a.Coverage.MeanFrac, 100*a.Coverage.MinFrac, a.Coverage.Roots)
	}
	fmt.Fprintln(w)

	t := &tablefmt.Table{
		Title: "Per-stage latency (critical-path order)",
		Headers: []string{"stage", "count", "p50 ms", "p95 ms", "p99 ms",
			"max ms", "total ms", "self ms", "crit ms", "errors"},
	}
	for _, s := range a.Stages {
		t.AddRow(s.Stage, fmt.Sprintf("%d", s.Count),
			ms(s.P50MS), ms(s.P95MS), ms(s.P99MS), ms(s.MaxMS),
			ms(s.TotalMS), ms(s.SelfMS), ms(s.CritMS),
			fmt.Sprintf("%d", s.Errors))
	}
	t.Render(w)

	if len(a.Slowest) == 0 {
		return
	}
	fmt.Fprintln(w)
	st := &tablefmt.Table{
		Title:   "Slowest traces",
		Headers: []string{"trace", "root", "dur ms", "breakdown"},
	}
	for _, s := range a.Slowest {
		breakdown := ""
		for i, c := range s.Stages {
			if i > 0 {
				breakdown += " "
			}
			breakdown += fmt.Sprintf("%s=%s", c.Stage, ms(c.DurMS))
		}
		if s.Err != "" {
			breakdown += " [err]"
		}
		st.AddRow(s.Trace, s.Stage, ms(s.DurMS), breakdown)
	}
	st.Render(w)
}

// ms formats a millisecond value with enough precision for sub-ms stages.
func ms(v float64) string { return fmt.Sprintf("%.3f", v) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ccrp-spans: %v\n", err)
	os.Exit(1)
}
