// Command ccrp-bench regenerates the paper's tables and figures from the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
// Usage:
//
//	ccrp-bench [-exp all|fig1|fig2|fig5|fig9|tables1-8|tables9-10|tables11-13|ablations|extensions|paging|codepack]
//	           [-json out.json] [-metrics table|json|prom] [-events ev.jsonl] [-sample N]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -json writes every datapoint of the selected experiments as one
// machine-readable JSON document ("-" for stdout) instead of the rendered
// tables — the source format for BENCH_*.json performance trajectories.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccrp/internal/cliutil"
	"ccrp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	jsonOut := flag.String("json", "", `write experiment datapoints as JSON to this file ("-" for stdout)`)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	obs, err := obsFlags.Begin()
	if err != nil {
		fatal(err)
	}
	experiments.SetObserver(obs.Registry, obs.Sink)

	var names []string
	if *exp != "all" {
		names = []string{*exp}
	}

	if *jsonOut != "" {
		w := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := experiments.WriteBenchJSON(w, names); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		finish(obs)
		return
	}

	runners := map[string]func(io.Writer) error{
		"fig1":        experiments.RenderFigure1,
		"fig2":        func(w io.Writer) error { return experiments.RenderFigure2(w, "eightq", 14) },
		"fig5":        experiments.RenderFigure5,
		"fig9":        experiments.RenderFigure9,
		"tables1-8":   experiments.RenderTables1to8,
		"tables9-10":  experiments.RenderTables9and10,
		"tables11-13": experiments.RenderTables11to13,
		"ablations":   experiments.RenderAblations,
		"extensions":  experiments.RenderExtensions,
		"paging":      experiments.RenderPaging,
		"codepack":    experiments.RenderCodePack,
	}

	if *exp == "all" {
		for _, name := range experiments.Experiments {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		finish(obs)
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "ccrp-bench: unknown experiment %q; have all %v\n", *exp, experiments.Experiments)
		os.Exit(2)
	}
	if err := run(os.Stdout); err != nil {
		fatal(err)
	}
	finish(obs)
}

func finish(obs *cliutil.Obs) {
	experiments.SetObserver(nil, nil)
	if err := obs.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrp-bench:", err)
	os.Exit(1)
}
