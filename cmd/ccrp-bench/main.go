// Command ccrp-bench regenerates the paper's tables and figures from the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
// Usage:
//
//	ccrp-bench [-exp all|fig1|fig2|fig5|fig9|tables1-8|tables9-10|tables11-13|ablations|extensions|paging|codepack]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccrp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	flag.Parse()

	runners := map[string]func(io.Writer) error{
		"fig1":        experiments.RenderFigure1,
		"fig2":        func(w io.Writer) error { return experiments.RenderFigure2(w, "eightq", 14) },
		"fig5":        experiments.RenderFigure5,
		"fig9":        experiments.RenderFigure9,
		"tables1-8":   experiments.RenderTables1to8,
		"tables9-10":  experiments.RenderTables9and10,
		"tables11-13": experiments.RenderTables11to13,
		"ablations":   experiments.RenderAblations,
		"extensions":  experiments.RenderExtensions,
		"paging":      experiments.RenderPaging,
		"codepack":    experiments.RenderCodePack,
	}
	order := []string{"fig5", "fig1", "fig2", "tables1-8", "tables9-10", "fig9", "tables11-13", "ablations", "extensions", "paging", "codepack"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "ccrp-bench: unknown experiment %q; have all %v\n", *exp, order)
		os.Exit(2)
	}
	if err := run(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrp-bench:", err)
	os.Exit(1)
}
