// Command ccrp-bench regenerates the paper's tables and figures from the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
// Usage:
//
//	ccrp-bench [-exp all|fig1|fig2|fig5|fig9|tables1-8|tables9-10|tables11-13|ablations|extensions|paging|codepack|rvc[,...]]
//	           [-j N] [-decoder multi|fast|canonical] [-json out.json]
//	           [-trajectory out.json] [-label NAME]
//	           [-metrics table|json|prom] [-events ev.jsonl] [-sample N]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -decoder selects the software decode path used when building and
// verifying compressed images: the multi-symbol kernel (default), the
// single-symbol table-driven fast decoder, or the canonical bit-serial
// one. All are byte-identical and produce identical cycle counts; the
// flag exists to keep every kernel benchmarkable.
//
// -j fans the performance sweeps out across N workers (default: all
// CPUs; -j 1 preserves the sequential order of execution). Results are
// merged by point index, so the output is byte-identical at any -j.
//
// -json writes every datapoint of the selected experiments as one
// machine-readable JSON document ("-" for stdout) instead of the rendered
// tables — the source format for BENCH_*.json performance trajectories.
//
// -trajectory runs the selected experiments at -j 1 and -j N, checks the
// outputs are byte-identical, and writes the timed trajectory document
// (wall times, speedup, and every datapoint) to the given file; this is
// what scripts/bench.sh records as BENCH_<label>.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"ccrp/internal/cliutil"
	"ccrp/internal/core"
	"ccrp/internal/experiments"
	"ccrp/internal/sweep"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run")
	workers := flag.Int("j", runtime.NumCPU(), "parallel sweep workers (1 = sequential)")
	decoder := flag.String("decoder", "multi", "software decode path: "+strings.Join(core.DecoderChoices(), "|"))
	jsonOut := flag.String("json", "", `write experiment datapoints as JSON to this file ("-" for stdout)`)
	trajOut := flag.String("trajectory", "", "write a timed -j1-vs-jN benchmark trajectory JSON to this file")
	label := flag.String("label", "dev", "trajectory label recorded in -trajectory output")
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccrp-bench", version)

	kind, err := core.ParseDecoder(*decoder)
	if err != nil {
		fatal(err)
	}
	experiments.SetDecoder(kind)

	obs, err := obsFlags.Begin()
	if err != nil {
		fatal(err)
	}
	experiments.SetEngine(&sweep.Engine{
		Workers:  *workers,
		Registry: obs.Registry,
		Sink:     obs.Sink,
		Tracer:   obs.Tracer,
	})

	var names []string
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}

	if *trajOut != "" {
		f, err := os.Create(*trajOut)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteTrajectory(f, names, *workers, *label); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *trajOut)
		finish(obs)
		return
	}

	if *jsonOut != "" {
		w := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := experiments.WriteBenchJSON(w, names); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		finish(obs)
		return
	}

	runners := map[string]func(io.Writer) error{
		"fig1":        experiments.RenderFigure1,
		"fig2":        func(w io.Writer) error { return experiments.RenderFigure2(w, "eightq", 14) },
		"fig5":        experiments.RenderFigure5,
		"fig9":        experiments.RenderFigure9,
		"tables1-8":   experiments.RenderTables1to8,
		"tables9-10":  experiments.RenderTables9and10,
		"tables11-13": experiments.RenderTables11to13,
		"ablations":   experiments.RenderAblations,
		"extensions":  experiments.RenderExtensions,
		"paging":      experiments.RenderPaging,
		"codepack":    experiments.RenderCodePack,
		"rvc":         experiments.RenderRVC,
	}

	if names == nil {
		names = experiments.Experiments
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ccrp-bench: unknown experiment %q; have all %v\n", name, experiments.Experiments)
			os.Exit(2)
		}
		if len(names) > 1 {
			fmt.Printf("==== %s ====\n", name)
		}
		if err := run(os.Stdout); err != nil {
			fatal(err)
		}
		if len(names) > 1 {
			fmt.Println()
		}
	}
	finish(obs)
}

func finish(obs *cliutil.Obs) {
	experiments.SetEngine(nil)
	if err := obs.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrp-bench:", err)
	os.Exit(1)
}
