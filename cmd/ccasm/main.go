// Command ccasm assembles RISC assembly source into a loadable image —
// the "traditional RISC compiler and linker" stage of the CCRP tool
// flow. The default backend is the paper's MIPS R2000; -isa selects any
// registered backend (e.g. rv32).
//
// Usage:
//
//	ccasm [-isa mips|rv32] [-o prog.img] [-l] prog.s
//
// With -l a listing (addresses, words, disassembly) is printed instead of
// writing an image.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/cliutil"
	"ccrp/internal/isa"
	_ "ccrp/internal/mips"  // register backend
	_ "ccrp/internal/riscv" // register backend
)

func main() {
	out := flag.String("o", "a.img", "output image path")
	listing := flag.Bool("l", false, "print a listing instead of writing the image")
	isaName := flag.String("isa", "", "ISA backend ("+strings.Join(isa.Names(), "|")+"; default "+isa.DefaultName+")")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccasm", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccasm [-isa name] [-o out.img] [-l] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleFor(*isaName, flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	if *listing {
		printListing(prog)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := prog.WriteImage(f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s text %d bytes, data %d bytes, entry %#08x\n",
		*out, isa.MustLookup(prog.ISA).Name(), len(prog.Text), len(prog.Data), prog.Entry)
}

func printListing(p *asm.Program) {
	arch := isa.MustLookup(p.ISA)
	syms := map[uint32][]string{}
	for _, name := range p.SymbolsSorted() {
		addr := p.Symbols[name]
		syms[addr] = append(syms[addr], name)
	}
	for off := 0; off+4 <= len(p.Text); off += 4 {
		addr := asm.TextBase + uint32(off)
		for _, s := range syms[addr] {
			fmt.Printf("%s:\n", s)
		}
		w := isa.Word(binary.LittleEndian.Uint32(p.Text[off:]))
		fmt.Printf("  %08x  %08x  %s\n", addr, uint32(w), arch.Disassemble(w, addr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccasm:", err)
	os.Exit(1)
}
