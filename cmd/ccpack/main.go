// Command ccpack is the host-side CCRP compression tool: it compresses a
// program's text section line by line, builds the Line Address Table, and
// writes the ROM image the embedded system stores — the step the paper
// likens to the Unix compress utility, run once at development time.
//
// Usage:
//
//	ccpack [-o prog.rom] [-word] [-own] [-decoder multi|fast|canonical]
//	       (-workload name | prog.img)
//
// By default the Preselected Bounded Huffman code (trained on the
// ten-program corpus, hardwired in the decoder) is used; -own adds the
// program's own bounded code as a second candidate with per-block tags.
// -decoder selects the software decode path used to verify the image
// (multi-symbol kernel by default; every path is byte-identical).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/cliutil"
	"ccrp/internal/core"
)

func main() {
	out := flag.String("o", "", "output ROM path (omit for stats only)")
	word := flag.Bool("word", false, "word-align compressed blocks")
	own := flag.Bool("own", false, "add the program's own bounded code as a second candidate")
	wl := flag.String("workload", "", "compress a corpus workload instead of an image file")
	decoder := flag.String("decoder", "multi", "verification decode path: "+strings.Join(core.DecoderChoices(), "|"))
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccpack", version)
	kind, err := core.ParseDecoder(*decoder)
	if err != nil {
		fatal(err)
	}

	var text []byte
	var name string
	switch {
	case *wl != "":
		w, err := cliutil.ResolveWorkload(*wl)
		if err != nil {
			fatal(err)
		}
		t, err := w.Text()
		if err != nil {
			fatal(err)
		}
		text, name = t, *wl
	case flag.NArg() == 1:
		prog, err := cliutil.LoadProgram(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		text, name = prog.Text, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: ccpack [-o out.rom] [-word] [-own] (-workload name | prog.img)")
		os.Exit(2)
	}

	ownText := []byte(nil)
	if *own {
		ownText = text
	}
	codes, err := cliutil.Codes(ownText)
	if err != nil {
		fatal(err)
	}
	rom, err := core.BuildROM(text, core.Options{Codes: codes, WordAligned: *word, Decoder: kind})
	if err != nil {
		fatal(err)
	}
	if err := rom.Verify(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes -> %d (blocks %d + LAT %d), ratio %.1f%%, %d/%d raw lines\n",
		name, rom.OriginalSize, rom.CompressedSize(), rom.BlocksSize(), rom.TableSize(),
		100*rom.Ratio(), rom.RawLines(), len(rom.Lines))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rom.WriteFile(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccpack:", err)
	os.Exit(1)
}
