// Command ccsim is the trace-driven system simulator of the paper's §4.1:
// it executes a program functionally to obtain its instruction trace and
// pipeline stalls, then runs the trace through both the standard R2000
// system model and the CCRP model, reporting relative performance, miss
// rate, and memory traffic.
//
// Usage:
//
//	ccsim [-cache 1024] [-clb 16] [-mem "Burst EPROM"] [-dmiss 1.0]
//	      [-json] [-metrics table|json|prom] [-events ev.jsonl] [-sample N]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	      (-workload name | prog.img | prog.s)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ccrp/internal/cliutil"
	"ccrp/internal/core"
	"ccrp/internal/sim"
	"ccrp/internal/trace"
)

// comparisonJSON is the -json output shape: config echo, both systems'
// stats, and the paper's three headline ratios.
type comparisonJSON struct {
	Program        string     `json:"program"`
	Memory         string     `json:"memory"`
	CacheBytes     int        `json:"cache_bytes"`
	CLBEntries     int        `json:"clb_entries"`
	DCacheMissRate float64    `json:"dcache_miss_rate"`
	Instructions   int        `json:"instructions"`
	Stalls         uint64     `json:"stalls"`
	ROMOriginal    int        `json:"rom_original_bytes"`
	ROMCompressed  int        `json:"rom_compressed_bytes"`
	ROMRatio       float64    `json:"rom_ratio"`
	Standard       core.Stats `json:"standard"`
	CCRP           core.Stats `json:"ccrp"`
	RelPerf        float64    `json:"relative_performance"`
	MissRate       float64    `json:"miss_rate"`
	TrafficRatio   float64    `json:"traffic_ratio"`
}

func main() {
	cacheBytes := flag.Int("cache", 1024, "instruction cache size in bytes")
	clbEntries := flag.Int("clb", 16, "CLB entries")
	memName := flag.String("mem", "Burst EPROM", `memory model: "EPROM", "Burst EPROM", or "DRAM"`)
	dmiss := flag.Float64("dmiss", 1.0, "data cache miss rate (1.0 = no data cache)")
	quiet := flag.Bool("q", false, "suppress the program's console output")
	wl := flag.String("workload", "", "simulate a corpus workload")
	saveTrace := flag.String("savetrace", "", "write the instruction trace to this file")
	loadTrace := flag.String("trace", "", "drive the comparison from a saved trace (with prog.img for the text)")
	asJSON := flag.Bool("json", false, "emit the comparison as a single JSON object on stdout")
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccsim", version)

	mem, err := cliutil.MemoryModel(*memName)
	if err != nil {
		fatal(err)
	}
	obs, err := obsFlags.Begin()
	if err != nil {
		fatal(err)
	}

	var tr *trace.Trace
	var text []byte
	var name string
	switch {
	case *loadTrace != "":
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-trace needs the program image for the text section"))
		}
		loaded, err := cliutil.LoadTrace(*loadTrace)
		if err != nil {
			fatal(err)
		}
		prog, err := cliutil.LoadProgram(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		report(*asJSON, "loaded trace: %d instructions, %d stalls\n", loaded.Instructions(), loaded.Stalls)
		tr, text, name = loaded, prog.Text, *loadTrace
	case *wl != "":
		w, err := cliutil.ResolveWorkload(*wl)
		if err != nil {
			fatal(err)
		}
		t, err := w.Trace()
		if err != nil {
			fatal(err)
		}
		txt, err := w.Text()
		if err != nil {
			fatal(err)
		}
		res, out, _ := w.Run()
		if !*quiet && !*asJSON {
			fmt.Print(out)
		}
		report(*asJSON, "executed %d instructions, %d stalls\n", res.Instructions, res.Stalls)
		tr, text, name = t, txt, *wl
	case flag.NArg() == 1:
		prog, err := cliutil.LoadProgram(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		stdout := os.Stdout
		if *quiet || *asJSON {
			stdout = nil
		}
		m := sim.New(prog, sim.Config{Stdout: stdout, CollectTrace: true, Metrics: obs.Registry})
		res, err := m.Run()
		if err != nil {
			fatal(err)
		}
		report(*asJSON, "executed %d instructions, %d stalls\n", res.Instructions, res.Stalls)
		tr, text, name = res.Trace, prog.Text, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: ccsim [flags] (-workload name | prog.img | prog.s)")
		os.Exit(2)
	}

	codes, err := cliutil.Codes(nil)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		CacheBytes: *cacheBytes,
		CLBEntries: *clbEntries,
		Mem:        mem,
		Codes:      codes,
		Metrics:    obs.Registry,
		Events:     obs.Sink,
	}
	if *dmiss < 1.0 {
		cfg.DataCache = true
		cfg.DCacheMissRate = *dmiss
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		report(*asJSON, "wrote trace to %s\n", *saveTrace)
	}
	cmp, err := core.Compare(tr, text, cfg)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		out := comparisonJSON{
			Program:        name,
			Memory:         mem.Name(),
			CacheBytes:     *cacheBytes,
			CLBEntries:     *clbEntries,
			DCacheMissRate: *dmiss,
			Instructions:   tr.Instructions(),
			Stalls:         tr.Stalls,
			ROMOriginal:    cmp.ROM.OriginalSize,
			ROMCompressed:  cmp.ROM.CompressedSize(),
			ROMRatio:       cmp.ROM.Ratio(),
			Standard:       cmp.Standard,
			CCRP:           cmp.CCRP,
			RelPerf:        cmp.RelativePerformance(),
			MissRate:       cmp.MissRate(),
			TrafficRatio:   cmp.TrafficRatio(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("\n%s on %s, %dB cache, %d-entry CLB:\n", name, mem.Name(), *cacheBytes, *clbEntries)
		fmt.Printf("  compressed ROM:        %d -> %d bytes (%.1f%%)\n",
			cmp.ROM.OriginalSize, cmp.ROM.CompressedSize(), 100*cmp.ROM.Ratio())
		fmt.Printf("  cache miss rate:       %.2f%%\n", 100*cmp.MissRate())
		fmt.Printf("  standard cycles:       %d\n", cmp.Standard.Cycles)
		fmt.Printf("  CCRP cycles:           %d (CLB misses: %d)\n", cmp.CCRP.Cycles, cmp.CCRP.CLBMisses)
		fmt.Printf("  relative performance:  %.3f (CCRP/standard; <1 means CCRP faster)\n", cmp.RelativePerformance())
		fmt.Printf("  memory traffic:        %.1f%%\n", 100*cmp.TrafficRatio())
	}
	if err := obs.Finish(); err != nil {
		fatal(err)
	}
}

// report prints progress lines, rerouting them to stderr in -json mode so
// stdout stays a single parseable object.
func report(asJSON bool, format string, args ...any) {
	w := os.Stdout
	if asJSON {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
