// Command ccsim is the trace-driven system simulator of the paper's §4.1:
// it executes a program functionally to obtain its instruction trace and
// pipeline stalls, then runs the trace through both the standard R2000
// system model and the CCRP model, reporting relative performance, miss
// rate, and memory traffic.
//
// Usage:
//
//	ccsim [-cache 1024] [-clb 16] [-mem "Burst EPROM"] [-dmiss 1.0]
//	      (-workload name | prog.img | prog.s)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/core"
	"ccrp/internal/experiments"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/sim"
	"ccrp/internal/trace"
	"ccrp/internal/workload"
)

func main() {
	cacheBytes := flag.Int("cache", 1024, "instruction cache size in bytes")
	clbEntries := flag.Int("clb", 16, "CLB entries")
	memName := flag.String("mem", "Burst EPROM", `memory model: "EPROM", "Burst EPROM", or "DRAM"`)
	dmiss := flag.Float64("dmiss", 1.0, "data cache miss rate (1.0 = no data cache)")
	quiet := flag.Bool("q", false, "suppress the program's console output")
	wl := flag.String("workload", "", "simulate a corpus workload")
	saveTrace := flag.String("savetrace", "", "write the instruction trace to this file")
	loadTrace := flag.String("trace", "", "drive the comparison from a saved trace (with prog.img for the text)")
	flag.Parse()

	mem, ok := memory.ByName(*memName)
	if !ok {
		fatal(fmt.Errorf("unknown memory model %q", *memName))
	}

	var tr *trace.Trace
	var text []byte
	var name string
	switch {
	case *loadTrace != "":
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-trace needs the program image for the text section"))
		}
		f, err := os.Open(*loadTrace)
		if err != nil {
			fatal(err)
		}
		loaded, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		prog := loadProgram(flag.Arg(0))
		fmt.Printf("loaded trace: %d instructions, %d stalls\n", loaded.Instructions(), loaded.Stalls)
		tr, text, name = loaded, prog.Text, *loadTrace
	case *wl != "":
		w, ok := workload.ByName(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (have %v)", *wl, workload.Names()))
		}
		t, err := w.Trace()
		if err != nil {
			fatal(err)
		}
		txt, err := w.Text()
		if err != nil {
			fatal(err)
		}
		res, out, _ := w.Run()
		if !*quiet {
			fmt.Print(out)
		}
		fmt.Printf("executed %d instructions, %d stalls\n", res.Instructions, res.Stalls)
		tr, text, name = t, txt, *wl
	case flag.NArg() == 1:
		prog := loadProgram(flag.Arg(0))
		stdout := os.Stdout
		if *quiet {
			stdout = nil
		}
		m := sim.New(prog, sim.Config{Stdout: stdout, CollectTrace: true})
		res, err := m.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions, %d stalls\n", res.Instructions, res.Stalls)
		tr, text, name = res.Trace, prog.Text, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: ccsim [flags] (-workload name | prog.img | prog.s)")
		os.Exit(2)
	}

	code, err := experiments.PreselectedCode()
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		CacheBytes: *cacheBytes,
		CLBEntries: *clbEntries,
		Mem:        mem,
		Codes:      []*huffman.Code{code},
	}
	if *dmiss < 1.0 {
		cfg.DataCache = true
		cfg.DCacheMissRate = *dmiss
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *saveTrace)
	}
	cmp, err := core.Compare(tr, text, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s on %s, %dB cache, %d-entry CLB:\n", name, mem.Name(), *cacheBytes, *clbEntries)
	fmt.Printf("  compressed ROM:        %d -> %d bytes (%.1f%%)\n",
		cmp.ROM.OriginalSize, cmp.ROM.CompressedSize(), 100*cmp.ROM.Ratio())
	fmt.Printf("  cache miss rate:       %.2f%%\n", 100*cmp.MissRate())
	fmt.Printf("  standard cycles:       %d\n", cmp.Standard.Cycles)
	fmt.Printf("  CCRP cycles:           %d (CLB misses: %d)\n", cmp.CCRP.Cycles, cmp.CCRP.CLBMisses)
	fmt.Printf("  relative performance:  %.3f (CCRP/standard; <1 means CCRP faster)\n", cmp.RelativePerformance())
	fmt.Printf("  memory traffic:        %.1f%%\n", 100*cmp.TrafficRatio())
}

func loadProgram(path string) *asm.Program {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		prog, err := asm.Assemble(path, string(raw))
		if err != nil {
			fatal(err)
		}
		return prog
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prog, err := asm.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
