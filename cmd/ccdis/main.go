// Command ccdis disassembles the text section of an image produced by
// ccasm, or of a compressed CROM image produced by ccpack. Images carry
// their ISA name, so the right backend is picked automatically; CROM
// files hold raw text bytes, so -rom mode accepts -isa (default: the
// MIPS backend).
//
// Usage:
//
//	ccdis [-version] prog.img
//	ccdis -rom [-isa mips|rv32] [-decoder multi|fast|canonical] [-raw out.bin] prog.rom
//
// With -rom the input is a CROM file: every block is decompressed (with
// the selected software decode path) and the recovered text is
// disassembled. -raw additionally writes the decompressed text bytes to
// a file, which is what the CI decode-equivalence smoke cmp's between
// the multi, fast, and canonical decoders.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/cliutil"
	"ccrp/internal/core"
	"ccrp/internal/isa"
	_ "ccrp/internal/mips"  // register backend
	_ "ccrp/internal/riscv" // register backend
)

func main() {
	romMode := flag.Bool("rom", false, "input is a compressed CROM image (ccpack output)")
	decoder := flag.String("decoder", "multi", "decode path for -rom: "+strings.Join(core.DecoderChoices(), "|"))
	rawOut := flag.String("raw", "", "with -rom, also write the decompressed text bytes to this file")
	isaName := flag.String("isa", "", "ISA backend for -rom text ("+strings.Join(isa.Names(), "|")+"; default "+isa.DefaultName+")")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccdis", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccdis [-rom [-isa name] [-decoder multi|fast|canonical] [-raw out.bin]] prog.img")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var text []byte
	arch, err := isa.Lookup(*isaName)
	if err != nil {
		fatal(err)
	}
	if *romMode {
		kind, derr := core.ParseDecoder(*decoder)
		if derr != nil {
			fatal(derr)
		}
		rom, rerr := core.ReadROMFileDecoder(f, kind)
		if rerr != nil {
			fatal(rerr)
		}
		text = rom.Text()
		if *rawOut != "" {
			if err := os.WriteFile(*rawOut, text, 0o644); err != nil {
				fatal(err)
			}
		}
	} else {
		prog, rerr := asm.ReadImage(f)
		if rerr != nil {
			fatal(rerr)
		}
		text = prog.Text
		if *isaName == "" {
			arch = isa.MustLookup(prog.ISA)
		}
	}
	for off := 0; off+4 <= len(text); off += 4 {
		addr := asm.TextBase + uint32(off)
		w := isa.Word(binary.LittleEndian.Uint32(text[off:]))
		fmt.Printf("%08x  %08x  %s\n", addr, uint32(w), arch.Disassemble(w, addr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdis:", err)
	os.Exit(1)
}
