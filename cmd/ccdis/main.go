// Command ccdis disassembles the text section of an image produced by
// ccasm, or of a compressed CROM image produced by ccpack.
//
// Usage:
//
//	ccdis [-version] prog.img
//	ccdis -rom [-decoder multi|fast|canonical] [-raw out.bin] prog.rom
//
// With -rom the input is a CROM file: every block is decompressed (with
// the selected software decode path) and the recovered text is
// disassembled. -raw additionally writes the decompressed text bytes to
// a file, which is what the CI decode-equivalence smoke cmp's between
// the multi, fast, and canonical decoders.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/cliutil"
	"ccrp/internal/core"
	"ccrp/internal/mips"
)

func main() {
	romMode := flag.Bool("rom", false, "input is a compressed CROM image (ccpack output)")
	decoder := flag.String("decoder", "multi", "decode path for -rom: "+strings.Join(core.DecoderChoices(), "|"))
	rawOut := flag.String("raw", "", "with -rom, also write the decompressed text bytes to this file")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccdis", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccdis [-rom [-decoder multi|fast|canonical] [-raw out.bin]] prog.img")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var text []byte
	if *romMode {
		kind, err := core.ParseDecoder(*decoder)
		if err != nil {
			fatal(err)
		}
		rom, err := core.ReadROMFileDecoder(f, kind)
		if err != nil {
			fatal(err)
		}
		text = rom.Text()
		if *rawOut != "" {
			if err := os.WriteFile(*rawOut, text, 0o644); err != nil {
				fatal(err)
			}
		}
	} else {
		prog, err := asm.ReadImage(f)
		if err != nil {
			fatal(err)
		}
		text = prog.Text
	}
	for off := 0; off+4 <= len(text); off += 4 {
		addr := asm.TextBase + uint32(off)
		w := mips.Word(binary.LittleEndian.Uint32(text[off:]))
		fmt.Printf("%08x  %08x  %s\n", addr, uint32(w), mips.Disassemble(w, addr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdis:", err)
	os.Exit(1)
}
