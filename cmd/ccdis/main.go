// Command ccdis disassembles the text section of an image produced by
// ccasm.
//
// Usage:
//
//	ccdis [-version] prog.img
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"ccrp/internal/asm"
	"ccrp/internal/cliutil"
	"ccrp/internal/mips"
)

func main() {
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccdis", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccdis prog.img")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prog, err := asm.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	for off := 0; off+4 <= len(prog.Text); off += 4 {
		addr := asm.TextBase + uint32(off)
		w := mips.Word(binary.LittleEndian.Uint32(prog.Text[off:]))
		fmt.Printf("%08x  %08x  %s\n", addr, uint32(w), mips.Disassemble(w, addr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdis:", err)
	os.Exit(1)
}
