// Command ccdis disassembles the text section of an image produced by
// ccasm.
//
// Usage:
//
//	ccdis prog.img
package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"ccrp/internal/asm"
	"ccrp/internal/mips"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ccdis prog.img")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prog, err := asm.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	for off := 0; off+4 <= len(prog.Text); off += 4 {
		addr := asm.TextBase + uint32(off)
		w := mips.Word(binary.LittleEndian.Uint32(prog.Text[off:]))
		fmt.Printf("%08x  %08x  %s\n", addr, uint32(w), mips.Disassemble(w, addr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdis:", err)
	os.Exit(1)
}
