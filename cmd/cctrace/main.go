// Command cctrace analyzes an instruction trace: dynamic mix, working
// set, per-cache-size miss rates, and the hottest code regions — the
// numbers a CCRP designer needs when choosing cache parameters for a
// program at development time (§4.3).
//
// Usage:
//
//	cctrace (-workload name | trace.trc)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ccrp/internal/cache"
	"ccrp/internal/trace"
	"ccrp/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "analyze a corpus workload's trace")
	top := flag.Int("top", 8, "number of hot regions to list")
	flag.Parse()

	var tr *trace.Trace
	var name string
	switch {
	case *wl != "":
		w, ok := workload.ByName(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (have %v)", *wl, workload.Names()))
		}
		t, err := w.Trace()
		if err != nil {
			fatal(err)
		}
		tr, name = t, *wl
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		t, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tr, name = t, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: cctrace (-workload name | trace.trc)")
		os.Exit(2)
	}

	fmt.Printf("%s: %d instructions, %d pipeline stalls\n", name, tr.Instructions(), tr.Stalls)
	var loads, stores uint64
	lines := map[uint32]uint64{}
	for _, ev := range tr.Events {
		if ev.IsLoad() {
			loads++
		}
		if ev.IsStore() {
			stores++
		}
		lines[ev.PC>>5]++
	}
	total := float64(tr.Instructions())
	fmt.Printf("  loads  %9d (%.1f%%)\n", loads, 100*float64(loads)/total)
	fmt.Printf("  stores %9d (%.1f%%)\n", stores, 100*float64(stores)/total)
	fmt.Printf("  code working set: %d lines (%d bytes)\n", len(lines), len(lines)*32)

	fmt.Println("\n  direct-mapped i-cache miss rates (32B lines):")
	for _, size := range []int{256, 512, 1024, 2048, 4096, 8192} {
		c := cache.MustNew(size, 32)
		for _, ev := range tr.Events {
			c.Access(ev.PC)
		}
		s := c.Stats()
		fmt.Printf("    %5dB  %6.2f%%\n", size, 100*s.MissRate())
	}

	type region struct {
		base  uint32
		count uint64
	}
	regions := map[uint32]uint64{}
	for line, n := range lines {
		regions[line>>3] += n // 256-byte regions
	}
	var hot []region
	for base, n := range regions {
		hot = append(hot, region{base, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		return hot[i].base < hot[j].base
	})
	if *top > len(hot) {
		*top = len(hot)
	}
	fmt.Printf("\n  hottest %d regions (256B granularity):\n", *top)
	for _, r := range hot[:*top] {
		fmt.Printf("    %08x  %9d fetches (%.1f%%)\n", r.base<<8, r.count, 100*float64(r.count)/total)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
