// Command cctrace analyzes an instruction trace: dynamic mix, working
// set, per-cache-size miss rates, and the hottest code regions — the
// numbers a CCRP designer needs when choosing cache parameters for a
// program at development time (§4.3).
//
// Usage:
//
//	cctrace [-top 8] [-cache 1024] [-metrics table|json|prom]
//	        [-events ev.jsonl] [-sample N]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	        (-workload name | trace.trc)
//
// With -metrics or -events, a cache pass at the -cache geometry is
// instrumented: per-set miss counters and the fetch/miss event stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ccrp/internal/cache"
	"ccrp/internal/cliutil"
	"ccrp/internal/metrics"
	"ccrp/internal/trace"
)

func main() {
	wl := flag.String("workload", "", "analyze a corpus workload's trace")
	top := flag.Int("top", 8, "number of hot regions to list")
	cacheBytes := flag.Int("cache", 1024, "cache size for the instrumented pass (-metrics/-events)")
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("cctrace", version)

	obs, err := obsFlags.Begin()
	if err != nil {
		fatal(err)
	}

	var tr *trace.Trace
	var name string
	switch {
	case *wl != "":
		w, err := cliutil.ResolveWorkload(*wl)
		if err != nil {
			fatal(err)
		}
		t, err := w.Trace()
		if err != nil {
			fatal(err)
		}
		tr, name = t, *wl
	case flag.NArg() == 1:
		t, err := cliutil.LoadTrace(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		tr, name = t, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: cctrace [flags] (-workload name | trace.trc)")
		os.Exit(2)
	}

	fmt.Printf("%s: %d instructions, %d pipeline stalls\n", name, tr.Instructions(), tr.Stalls)
	var loads, stores uint64
	lines := map[uint32]uint64{}
	for _, ev := range tr.Events {
		if ev.IsLoad() {
			loads++
		}
		if ev.IsStore() {
			stores++
		}
		lines[ev.PC>>5]++
	}
	total := float64(tr.Instructions())
	fmt.Printf("  loads  %9d (%.1f%%)\n", loads, 100*float64(loads)/total)
	fmt.Printf("  stores %9d (%.1f%%)\n", stores, 100*float64(stores)/total)
	fmt.Printf("  code working set: %d lines (%d bytes)\n", len(lines), len(lines)*32)

	fmt.Println("\n  direct-mapped i-cache miss rates (32B lines):")
	for _, size := range []int{256, 512, 1024, 2048, 4096, 8192} {
		c := cache.MustNew(size, 32)
		for _, ev := range tr.Events {
			c.Access(ev.PC)
		}
		s := c.Stats()
		fmt.Printf("    %5dB  %6.2f%%\n", size, 100*s.MissRate())
	}

	// Instrumented pass at the chosen geometry, separate from the sweep
	// above so per-set counters describe exactly one cache.
	if obs.Registry != nil || obs.Sink != nil {
		c := cache.MustNew(*cacheBytes, 32)
		c.Instrument(obs.Registry)
		for i, ev := range tr.Events {
			if obs.Sink != nil {
				obs.Sink.Emit(metrics.Event{
					Type: metrics.EvFetch, Seq: uint64(i), PC: ev.PC, Line: int(ev.PC >> 5), Set: -1,
				})
			}
			if !c.Access(ev.PC) && obs.Sink != nil {
				obs.Sink.Emit(metrics.Event{
					Type: metrics.EvICacheMiss, Seq: uint64(i), PC: ev.PC,
					Line: int(ev.PC >> 5), Set: c.Set(ev.PC),
				})
			}
		}
	}

	type region struct {
		base  uint32
		count uint64
	}
	regions := map[uint32]uint64{}
	for line, n := range lines {
		regions[line>>3] += n // 256-byte regions
	}
	var hot []region
	for base, n := range regions {
		hot = append(hot, region{base, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		return hot[i].base < hot[j].base
	})
	if *top > len(hot) {
		*top = len(hot)
	}
	fmt.Printf("\n  hottest %d regions (256B granularity):\n", *top)
	for _, r := range hot[:*top] {
		fmt.Printf("    %08x  %9d fetches (%.1f%%)\n", r.base<<8, r.count, 100*float64(r.count)/total)
	}
	if err := obs.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
