// Command ccdb is a small interactive debugger on the functional
// simulator: single-stepping, breakpoints, register and memory
// inspection, and inline disassembly. Images carry their ISA name;
// assembling a source file uses -isa (default: the MIPS backend).
//
// Usage:
//
//	ccdb [-isa mips|rv32] [-version] (prog.s | prog.img)
//
// Commands:
//
//	s [n]      step one (or n) instructions
//	c          continue to exit or breakpoint
//	b [addr]   toggle a breakpoint (hex); no addr lists them
//	r          print the general registers, HI/LO, and PC
//	f          print the FP registers that are nonzero
//	d [addr]   disassemble 8 words (default: at PC)
//	x addr [n] dump n bytes of memory (default 64)
//	i          print run counters (instructions, stalls, loads, stores)
//	q          quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/cliutil"
	"ccrp/internal/isa"
	_ "ccrp/internal/mips"  // register backend
	_ "ccrp/internal/riscv" // register backend
	"ccrp/internal/sim"
)

func main() {
	isaName := flag.String("isa", "", "ISA backend for .s input ("+strings.Join(isa.Names(), "|")+"; default "+isa.DefaultName+")")
	version := cliutil.RegisterVersionFlag(flag.CommandLine)
	flag.Parse()
	cliutil.HandleVersionFlag("ccdb", version)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccdb [-isa name] (prog.s | prog.img)")
		os.Exit(2)
	}
	prog := load(flag.Arg(0), *isaName)
	m := sim.New(prog, sim.Config{Stdout: os.Stdout, CollectTrace: false})
	dbg := &debugger{m: m, prog: prog, arch: isa.MustLookup(prog.ISA), breaks: map[uint32]bool{}}
	dbg.repl(os.Stdin)
}

func load(path, isaName string) *asm.Program {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		p, err := asm.AssembleFor(isaName, path, string(raw))
		if err != nil {
			fatal(err)
		}
		return p
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := asm.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	return p
}

type debugger struct {
	m      *sim.Machine
	prog   *asm.Program
	arch   isa.ISA
	breaks map[uint32]bool
}

func (d *debugger) repl(in *os.File) {
	fmt.Printf("ccdb: %s, %d text bytes, entry %#08x. Type 'q' to quit.\n",
		d.prog.Name, len(d.prog.Text), d.prog.Entry)
	d.showPC()
	sc := bufio.NewScanner(in)
	fmt.Print("(ccdb) ")
	for sc.Scan() {
		line := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(line) == 0 {
			fmt.Print("(ccdb) ")
			continue
		}
		switch line[0] {
		case "q", "quit":
			return
		case "s", "step":
			n := 1
			if len(line) > 1 {
				n, _ = strconv.Atoi(line[1])
			}
			d.stepN(n)
		case "c", "continue":
			d.cont()
		case "b", "break":
			d.breakCmd(line[1:])
		case "r", "regs":
			d.regs()
		case "f", "fregs":
			d.fregs()
		case "d", "disasm":
			d.disasm(line[1:])
		case "x", "examine":
			d.examine(line[1:])
		case "i", "info":
			r := d.m.Snapshot()
			fmt.Printf("instructions=%d stalls=%d loads=%d stores=%d done=%v\n",
				r.Instructions, r.Stalls, r.Loads, r.Stores, d.m.Done())
		default:
			fmt.Println("commands: s [n], c, b [addr], r, f, d [addr], x addr [n], i, q")
		}
		fmt.Print("(ccdb) ")
	}
}

func (d *debugger) stepN(n int) {
	for i := 0; i < n && !d.m.Done(); i++ {
		if err := d.m.Step(); err != nil {
			fmt.Printf("fault: %v\n", err)
			return
		}
	}
	d.showPC()
}

func (d *debugger) cont() {
	for !d.m.Done() {
		if err := d.m.Step(); err != nil {
			fmt.Printf("fault: %v\n", err)
			return
		}
		if d.breaks[d.m.PC()] {
			fmt.Printf("breakpoint at %#08x after %d instructions\n", d.m.PC(), d.m.Instructions())
			break
		}
	}
	d.showPC()
}

func (d *debugger) breakCmd(args []string) {
	if len(args) == 0 {
		if len(d.breaks) == 0 {
			fmt.Println("no breakpoints")
		}
		for a := range d.breaks {
			fmt.Printf("  %#08x\n", a)
		}
		return
	}
	addr, err := parseAddr(args[0], d.prog)
	if err != nil {
		fmt.Println(err)
		return
	}
	if d.breaks[addr] {
		delete(d.breaks, addr)
		fmt.Printf("cleared %#08x\n", addr)
	} else {
		d.breaks[addr] = true
		fmt.Printf("set %#08x\n", addr)
	}
}

func (d *debugger) showPC() {
	if d.m.Done() {
		fmt.Printf("program exited after %d instructions\n", d.m.Instructions())
		return
	}
	pc := d.m.PC()
	w, err := d.m.ReadWord(pc)
	if err != nil {
		fmt.Printf("pc=%#08x <unreadable>\n", pc)
		return
	}
	fmt.Printf("%08x  %08x  %s\n", pc, w, d.arch.Disassemble(isa.Word(w), pc))
}

func (d *debugger) regs() {
	for i := 0; i < 32; i += 4 {
		for j := i; j < i+4; j++ {
			fmt.Printf("%-5s %08x  ", d.arch.RegName(uint8(j)), d.m.Reg(uint8(j)))
		}
		fmt.Println()
	}
	fmt.Printf("hi    %08x  lo    %08x  pc    %08x\n", d.m.HI(), d.m.LO(), d.m.PC())
}

func (d *debugger) fregs() {
	any := false
	for i := 0; i < 32; i += 2 {
		bits := uint64(d.m.FPR(uint8(i+1)))<<32 | uint64(d.m.FPR(uint8(i)))
		if bits == 0 {
			continue
		}
		any = true
		fmt.Printf("%-5s %016x  %g\n", d.arch.FPRegName(uint8(i)), bits, math.Float64frombits(bits))
	}
	if !any {
		fmt.Println("all FP registers zero")
	}
}

func (d *debugger) disasm(args []string) {
	addr := d.m.PC()
	if len(args) > 0 {
		a, err := parseAddr(args[0], d.prog)
		if err != nil {
			fmt.Println(err)
			return
		}
		addr = a
	}
	for i := 0; i < 8; i++ {
		a := addr + uint32(i*4)
		w, err := d.m.ReadWord(a)
		if err != nil {
			return
		}
		marker := "  "
		if a == d.m.PC() {
			marker = "=>"
		}
		fmt.Printf("%s %08x  %08x  %s\n", marker, a, w, d.arch.Disassemble(isa.Word(w), a))
	}
}

func (d *debugger) examine(args []string) {
	if len(args) == 0 {
		fmt.Println("usage: x addr [bytes]")
		return
	}
	addr, err := parseAddr(args[0], d.prog)
	if err != nil {
		fmt.Println(err)
		return
	}
	n := 64
	if len(args) > 1 {
		n, _ = strconv.Atoi(args[1])
	}
	for off := 0; off < n; off += 16 {
		fmt.Printf("%08x ", addr+uint32(off))
		var ascii [16]byte
		for j := 0; j < 16 && off+j < n; j++ {
			b, err := d.m.PeekByte(addr + uint32(off+j))
			if err != nil {
				fmt.Println()
				return
			}
			fmt.Printf(" %02x", b)
			if b >= 0x20 && b < 0x7F {
				ascii[j] = b
			} else {
				ascii[j] = '.'
			}
		}
		fmt.Printf("  |%s|\n", strings.TrimRight(string(ascii[:]), "\x00"))
	}
}

// parseAddr accepts hex (with or without 0x) or a program symbol.
func parseAddr(s string, p *asm.Program) (uint32, error) {
	if v, ok := p.Symbols[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q (hex or symbol)", s)
	}
	return uint32(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdb:", err)
	os.Exit(1)
}
