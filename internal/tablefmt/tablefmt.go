// Package tablefmt renders fixed-width text tables in the layout of the
// paper's result tables.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		rule := make([]string, cols)
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	// Numbers read better right-aligned; detect by first rune.
	if len(s) > 0 && (s[0] >= '0' && s[0] <= '9' || s[0] == '-' || s[0] == '+') {
		return strings.Repeat(" ", w-len(s)) + s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats a relative value the way the paper prints it (3 decimals).
func Ratio(f float64) string { return fmt.Sprintf("%.3f", f) }

// Pct formats a fraction as a percentage with 2 decimals.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// Bytes formats a byte count.
func Bytes(n int) string { return fmt.Sprintf("%d", n) }
