package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tb.AddRow("alpha", "1.000")
	tb.AddRow("b", "10.125")
	out := tb.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Numeric cells right-align.
	if !strings.HasSuffix(lines[3], " 1.000") {
		t.Errorf("numeric cell not right-aligned: %q", lines[3])
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header line wrong: %q", lines[1])
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"A"}}
	tb.AddRow("x", "extra", "cells")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Errorf("ragged row dropped cells: %q", out)
	}
}

func TestRenderNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("only", "row")
	out := tb.String()
	if strings.Contains(out, "--") {
		t.Errorf("rule emitted without headers: %q", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("row missing: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(1.2345) != "1.234" && Ratio(1.2345) != "1.235" {
		t.Errorf("Ratio = %q", Ratio(1.2345))
	}
	if Pct(0.03125) != "3.12%" { // %.2f rounds half to even
		t.Errorf("Pct = %q", Pct(0.03125))
	}
	if Bytes(703752) != "703752" {
		t.Errorf("Bytes = %q", Bytes(703752))
	}
}
