// Persistence: the durable-artifact side of ccrpd. In the paper the
// expensive step — training the code and building the compressed ROM
// image — happens once, offline, and the results persist in ROM. This
// file gives the daemon the same property: trained coders and compressed
// images written through sweep's content-addressed disk store, verified
// on the way back in, and re-registered on boot so a restarted daemon
// serves its whole coder catalogue without a single retrain.
package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"ccrp/internal/codepack"
	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/sweep"
)

// Artifact classes recorded in every stored header; warm start filters
// on them and the codecs refuse a class mismatch.
const (
	artifactClassCoder = "coder"
	artifactClassROM   = "rom"
)

// coderEntryWire is the gob shape of a persisted coderEntry. The
// in-memory entry holds live *huffman.Code and core.LineCodec values;
// on disk those travel in their own binary forms and are rebuilt on
// decode, so a restored coder is byte-identical in behavior.
type coderEntryWire struct {
	ID          string
	Kind        string
	Bound       int
	CorpusBytes int
	Codes       [][]byte // huffman.Code.MarshalBinary, in order
	CodePack    []byte   // codepack.Coder.MarshalBinary, when Kind == codepack
}

// coderCodec serializes trained coders for the artifact store.
var coderCodec = sweep.Codec[*coderEntry]{
	Name:   artifactClassCoder,
	Encode: encodeCoderEntry,
	Decode: decodeCoderEntry,
}

func encodeCoderEntry(e *coderEntry) ([]byte, error) {
	wire := coderEntryWire{
		ID: e.ID, Kind: e.Kind, Bound: e.Bound, CorpusBytes: e.CorpusBytes,
	}
	for _, code := range e.codes {
		blob, err := code.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("coder %s: %w", e.ID, err)
		}
		wire.Codes = append(wire.Codes, blob)
	}
	if e.codec != nil {
		cp, ok := e.codec.(*codepack.Coder)
		if !ok {
			return nil, fmt.Errorf("coder %s: codec %T is not persistable", e.ID, e.codec)
		}
		blob, err := cp.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("coder %s: %w", e.ID, err)
		}
		wire.CodePack = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("coder %s: %w", e.ID, err)
	}
	return buf.Bytes(), nil
}

func decodeCoderEntry(blob []byte) (*coderEntry, error) {
	var wire coderEntryWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("stored coder: %w", err)
	}
	if wire.ID == "" || wire.Kind == "" {
		return nil, fmt.Errorf("stored coder: missing id or kind")
	}
	e := &coderEntry{
		ID: wire.ID, Kind: wire.Kind,
		Bound: wire.Bound, CorpusBytes: wire.CorpusBytes,
	}
	for i, blob := range wire.Codes {
		code, err := huffman.UnmarshalCode(blob)
		if err != nil {
			return nil, fmt.Errorf("stored coder %s: code %d: %w", wire.ID, i, err)
		}
		e.codes = append(e.codes, code)
	}
	if wire.CodePack != nil {
		cp, err := codepack.UnmarshalCoder(wire.CodePack)
		if err != nil {
			return nil, fmt.Errorf("stored coder %s: %w", wire.ID, err)
		}
		e.codec = cp
	}
	if len(e.codes) == 0 && e.codec == nil {
		return nil, fmt.Errorf("stored coder %s: no codes and no codec", wire.ID)
	}
	return e, nil
}

// romCodec serializes compressed ROM images as CROM files — the exact
// on-disk format cmd/ccpack writes, so a stored artifact is readable by
// every existing tool. Reading re-decompresses every block, which is the
// integrity check: a damaged image fails to decode instead of serving
// wrong bytes. Only serializable (non-codec) ROMs use this codec; see
// Server.buildROM.
var romCodec = sweep.Codec[*core.ROM]{
	Name: artifactClassROM,
	Encode: func(rom *core.ROM) ([]byte, error) {
		var buf bytes.Buffer
		if err := rom.WriteFile(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	},
	Decode: func(blob []byte) (*core.ROM, error) {
		return core.ReadROMFile(bytes.NewReader(blob))
	},
}

// storeObserver folds the cache's store traffic into the server's
// metrics registry. Instruments are single-threaded by design, so every
// update goes under metricsMu like the handler-side metrics; calls
// arrive from whichever goroutine is building an artifact.
type storeObserver struct{ s *Server }

func (o storeObserver) StoreHit(string) { o.inc(o.s.inst.storeHits) }

func (o storeObserver) StoreMiss(string) { o.inc(o.s.inst.storeMisses) }

func (o storeObserver) StoreWrite(string) { o.inc(o.s.inst.storeWrites) }

func (o storeObserver) StoreCorrupt(string, error) { o.inc(o.s.inst.storeCorrupt) }

func (o storeObserver) inc(c interface{ Inc() }) {
	o.s.metricsMu.Lock()
	c.Inc()
	o.s.metricsMu.Unlock()
}

// coderFromStore restores a coder by its public id from the disk
// store, registering it on success. This is the fleet-sharing path: in
// a multi-node deployment whose members share a store (or inherit one
// from a dead peer), a node can be asked for a coder id some *other*
// node trained after this node's warm start. The id is the SHA-256 of
// the cache key, which is also the artifact's file name, so the lookup
// enumerates headers and matches on hash — one directory scan on the
// miss path only, never on the hot path.
func (s *Server) coderFromStore(id string) (*coderEntry, bool) {
	st := s.cache.Store()
	if st == nil {
		return nil, false
	}
	arts, err := st.List()
	if err != nil {
		return nil, false
	}
	obs := storeObserver{s}
	for _, a := range arts {
		if a.Class != artifactClassCoder || sweep.HashBytes([]byte(a.Key)) != id {
			continue
		}
		class, blob, err := st.Load(a.Key)
		if err != nil || class != artifactClassCoder {
			obs.StoreCorrupt(a.Key, err)
			return nil, false
		}
		entry, err := decodeCoderEntry(blob)
		if err != nil || entry.ID != id {
			obs.StoreCorrupt(a.Key, err)
			return nil, false
		}
		obs.StoreHit(a.Key)
		s.cache.Seed(a.Key, entry)
		s.codersMu.Lock()
		s.coders[id] = entry
		s.codersMu.Unlock()
		return entry, true
	}
	return nil, false
}

// WarmStart loads every stored coder into the registry and the in-memory
// cache, the boot-time analogue of the paper's "the ROM is already
// written": after it returns, a request for any previously trained coder
// id resolves without a build, and POST /v1/coders of the same corpus is
// a pure cache hit. Damaged artifacts are skipped (and counted as
// corrupt); they will be rebuilt on first demand. Returns the number of
// coders registered.
//
// The pass runs under a store_load span so boot cost shows up in the
// same stage vocabulary as request cost.
func (s *Server) WarmStart(ctx context.Context) (int, error) {
	st := s.cache.Store()
	if st == nil {
		return 0, nil
	}
	sp := s.tracer.Start(StageStoreLoad)
	defer sp.End()
	arts, err := st.List()
	if err != nil {
		sp.SetError(err)
		return 0, err
	}
	obs := storeObserver{s}
	loaded := 0
	for _, a := range arts {
		if a.Class != artifactClassCoder {
			continue
		}
		if err := ctx.Err(); err != nil {
			sp.SetError(err)
			return loaded, err
		}
		class, blob, err := st.Load(a.Key)
		if err != nil || class != artifactClassCoder {
			obs.StoreCorrupt(a.Key, err)
			continue
		}
		entry, err := decodeCoderEntry(blob)
		if err != nil {
			obs.StoreCorrupt(a.Key, err)
			continue
		}
		obs.StoreHit(a.Key)
		s.cache.Seed(a.Key, entry)
		s.codersMu.Lock()
		s.coders[entry.ID] = entry
		s.codersMu.Unlock()
		loaded++
	}
	sp.SetAttrInt("coders", int64(loaded))
	s.metricsMu.Lock()
	s.inst.storeWarmCoders.Set(float64(loaded))
	s.metricsMu.Unlock()
	return loaded, nil
}
