package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"net/http"

	"ccrp/internal/core"
	"ccrp/internal/parallel"
	"ccrp/internal/sweep"
	"ccrp/internal/tracing"
	"ccrp/internal/workload"
)

// compressRequest is the POST /v1/compress body. Exactly one text source
// must be set: an inline base64 image or a named corpus workload.
type compressRequest struct {
	CoderID     string `json:"coder_id"`
	TextB64     string `json:"text_b64,omitempty"`
	Workload    string `json:"workload,omitempty"`
	WordAligned bool   `json:"word_aligned,omitempty"`
}

// lineInfo is one LAT-ready per-line record: the stored length in bytes
// and the raw-bypass flag, exactly what a Line Address Table encodes.
type lineInfo struct {
	Len int  `json:"len"`
	Raw bool `json:"raw,omitempty"`
}

// compressResponse reports the compressed image. ROMB64 is the CROM file
// (cmd/ccpack's on-disk format, byte-identical) for serializable coders;
// BlocksB64 plus Lines always suffice for /v1/decompress.
type compressResponse struct {
	CoderID         string     `json:"coder_id"`
	OriginalBytes   int        `json:"original_bytes"`
	CompressedBytes int        `json:"compressed_bytes"`
	BlocksBytes     int        `json:"blocks_bytes"`
	LATBytes        int        `json:"lat_bytes"`
	Ratio           float64    `json:"ratio"`
	RawLines        int        `json:"raw_lines"`
	Lines           []lineInfo `json:"lines"`
	BlocksB64       string     `json:"blocks_b64"`
	ROMB64          string     `json:"rom_b64,omitempty"`
}

// resolveText produces the program text image of a request under a
// text_resolve span: the first touch of a named workload assembles and
// runs it to build the image (later touches hit the sync.Once cache),
// a cost that would otherwise be invisible root time.
func (s *Server) resolveText(ctx context.Context, textB64, workloadName string) ([]byte, error) {
	sp := tracing.FromContext(ctx).Child(StageText)
	defer sp.End()
	text, err := s.resolveTextImage(textB64, workloadName)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttrInt("text_bytes", int64(len(text)))
	return text, nil
}

func (s *Server) resolveTextImage(textB64, workloadName string) ([]byte, error) {
	switch {
	case textB64 != "" && workloadName != "":
		return nil, errBadRequest("text_b64 and workload are mutually exclusive")
	case textB64 != "":
		text, err := base64.StdEncoding.DecodeString(textB64)
		if err != nil {
			return nil, errBadRequest("text_b64: invalid base64: %v", err)
		}
		if len(text) == 0 {
			return nil, errBadRequest("text_b64 decodes to an empty image")
		}
		return text, nil
	case workloadName != "":
		w, ok := workload.ByName(workloadName)
		if !ok {
			return nil, Errf(http.StatusNotFound, CodeNotFound,
				"unknown workload %q (have %v)", workloadName, workload.Names())
		}
		text, err := w.Text()
		if err != nil {
			return nil, errUnprocessable("workload %q failed to build: %v", workloadName, err)
		}
		return text, nil
	default:
		return nil, errBadRequest("one of text_b64 or workload is required")
	}
}

// buildROM compresses text under the coder through the artifact cache:
// concurrent identical requests (same coder, same image, same alignment)
// share one build, and simulate reuses compress's ROMs. Built ROMs are
// immutable, which is what makes the sharing sound. The whole step —
// cache probe included, since a hit is the latency the client sees — runs
// under a compress span.
func (s *Server) buildROM(ctx context.Context, entry *coderEntry, text []byte, wordAligned bool) (*core.ROM, error) {
	sp := tracing.FromContext(ctx).Child(StageCompress)
	sp.SetAttrInt("text_bytes", int64(len(text)))
	defer sp.End()
	key := sweep.Key("rom", entry.ID, wordAligned, text)
	build := func() (*core.ROM, error) {
		sp.SetAttrInt("built", 1) // a cache miss: this request paid the build
		rom, err := core.BuildROM(text, entry.romOptions(wordAligned))
		if err != nil {
			return nil, errUnprocessable("compression failed: %v", err)
		}
		if err := rom.Verify(); err != nil {
			return nil, Errf(http.StatusInternalServerError, CodeInternal,
				"compressed image fails verification: %v", err)
		}
		return rom, nil
	}
	// Serializable (pure-Huffman) images persist as CROM artifacts;
	// codec-backed images have tables outside the ROM format and stay
	// memory-only.
	var rom *core.ROM
	var err error
	if entry.serializable() {
		rom, err = sweep.GetStored(s.cache, key, romCodec, build)
	} else {
		rom, err = sweep.Get(s.cache, key, build)
	}
	if err != nil {
		sp.SetError(err)
	}
	return rom, err
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) error {
	var req compressRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	if req.CoderID == "" {
		return errBadRequest("missing coder_id (train one with POST /v1/coders)")
	}
	entry, err := s.resolveCoder(r.Context(), req.CoderID)
	if err != nil {
		return err
	}
	text, err := s.resolveText(r.Context(), req.TextB64, req.Workload)
	if err != nil {
		return err
	}
	rom, err := s.buildROM(r.Context(), entry, text, req.WordAligned)
	if err != nil {
		return err
	}

	// The encode span opens before response construction: base64-packing
	// the blocks and serializing the CROM image dominate the write path
	// for large programs, and unattributed time here would show up as a
	// coverage gap in ccrp-spans.
	sp := tracing.FromContext(r.Context()).Child(StageEncode)
	defer sp.End()
	resp, err := compressResult(entry, req.CoderID, rom)
	if err != nil {
		sp.SetError(err)
		return err
	}

	s.metricsMu.Lock()
	s.inst.bytesIn.Add(uint64(len(text)))
	s.metricsMu.Unlock()

	writeJSON(w, http.StatusOK, resp)
	return nil
}

// compressResult packs a built ROM into the wire shape, including the
// base64 block image and (for serializable coders) the CROM file.
func compressResult(entry *coderEntry, coderID string, rom *core.ROM) (*compressResponse, error) {
	resp := &compressResponse{
		CoderID:         coderID,
		OriginalBytes:   rom.OriginalSize,
		CompressedBytes: rom.CompressedSize(),
		BlocksBytes:     rom.BlocksSize(),
		LATBytes:        rom.TableSize(),
		Ratio:           rom.Ratio(),
		RawLines:        rom.RawLines(),
		BlocksB64:       base64.StdEncoding.EncodeToString(rom.Blocks),
	}
	for _, l := range rom.Lines {
		resp.Lines = append(resp.Lines, lineInfo{Len: len(l.Stored), Raw: l.Raw})
	}
	if entry.serializable() {
		var buf bytes.Buffer
		if err := rom.WriteFile(&buf); err != nil {
			return nil, err
		}
		resp.ROMB64 = base64.StdEncoding.EncodeToString(buf.Bytes())
	}
	return resp, nil
}

// decompressRequest is the POST /v1/decompress body. Either a serialized
// CROM image (self-describing: code tables travel in the file) or the
// coder id plus the packed blocks and per-line records from a compress
// response.
type decompressRequest struct {
	ROMB64    string     `json:"rom_b64,omitempty"`
	CoderID   string     `json:"coder_id,omitempty"`
	BlocksB64 string     `json:"blocks_b64,omitempty"`
	Lines     []lineInfo `json:"lines,omitempty"`
}

type decompressResponse struct {
	TextB64       string `json:"text_b64"`
	OriginalBytes int    `json:"original_bytes"`
}

// decompressOne recovers the text image of one decompress payload —
// either a self-describing CROM file or coder_id+blocks+lines — the unit
// shared by the single and :batch endpoints.
func (s *Server) decompressOne(ctx context.Context, req *decompressRequest) ([]byte, error) {
	switch {
	case req.ROMB64 != "":
		sp := tracing.FromContext(ctx).Child(StageDecompress)
		defer sp.End()
		blob, err := base64.StdEncoding.DecodeString(req.ROMB64)
		if err != nil {
			return nil, errBadRequest("rom_b64: invalid base64: %v", err)
		}
		rom, err := core.ReadROMFile(bytes.NewReader(blob))
		if err != nil {
			sp.SetError(err)
			return nil, errUnprocessable("malformed ROM image: %v", err)
		}
		text := rom.Text()
		sp.SetAttrInt("text_bytes", int64(len(text)))
		return text, nil
	case req.CoderID != "":
		return s.decompressLines(ctx, req)
	default:
		return nil, errBadRequest("one of rom_b64 or coder_id+blocks_b64+lines is required")
	}
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) error {
	var req decompressRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	text, err := s.decompressOne(r.Context(), &req)
	if err != nil {
		return err
	}

	s.metricsMu.Lock()
	s.inst.bytesOut.Add(uint64(len(text)))
	s.metricsMu.Unlock()

	// As in handleCompress, the encode span covers the base64 packing of
	// the recovered text, not just the JSON write.
	sp := tracing.FromContext(r.Context()).Child(StageEncode)
	writeJSON(w, http.StatusOK, decompressResponse{
		TextB64:       base64.StdEncoding.EncodeToString(text),
		OriginalBytes: len(text),
	})
	sp.End()
	return nil
}

// parallelLineMin is the line count below which /v1/decompress stays
// sequential: below it the worker handoff costs more than the decode.
const parallelLineMin = 32

// decompressLines expands a blocks+lines payload under a registered
// coder, the path for codec-based (non-serializable) images. Offsets are
// validated up front, then the independent lines decode into a single
// preallocated text image — fanned across the DecodeWorkers pool for
// large payloads (every 32-byte block is self-contained, so the only
// shared state is the atomic index counter and the line cache), walked
// sequentially for small ones. The context bounds either walk so a
// hostile line list cannot outlive the route deadline. The work runs
// under a decompress span annotated with the line-cache hit/miss split
// and the parallel fan-out, so a cold cache or a sequential fallback is
// visible as latency attribution, not just aggregate counters.
func (s *Server) decompressLines(ctx context.Context, req *decompressRequest) ([]byte, error) {
	entry, err := s.resolveCoder(ctx, req.CoderID)
	if err != nil {
		return nil, err
	}
	sp := tracing.FromContext(ctx).Child(StageDecompress)
	defer sp.End()
	blocks, err := base64.StdEncoding.DecodeString(req.BlocksB64)
	if err != nil {
		return nil, errBadRequest("blocks_b64: invalid base64: %v", err)
	}
	if len(req.Lines) == 0 {
		return nil, errBadRequest("lines is required with coder_id")
	}
	offs := make([]int, len(req.Lines))
	off := 0
	for i, l := range req.Lines {
		if l.Len < 0 || off+l.Len > len(blocks) {
			return nil, errUnprocessable("line %d: stored length %d overruns the block region", i, l.Len)
		}
		offs[i] = off
		off += l.Len
	}

	out := make([]byte, len(req.Lines)*core.LineSize)
	var st lineCacheStats
	expand := func(i int) error {
		l := req.Lines[i]
		stored := blocks[offs[i] : offs[i]+l.Len]
		dst := out[i*core.LineSize : (i+1)*core.LineSize]
		if l.Raw {
			// Raw bypass: copying is cheaper than a cache probe.
			copy(dst, stored)
			return nil
		}
		key := lineKey(entry.ID, i, stored)
		if s.lines.get(key, dst, &st) {
			return nil
		}
		if err := entry.decodeLineInto(dst, stored); err != nil {
			return errUnprocessable("line %d: %v", i, err)
		}
		s.lines.put(key, dst, &st)
		return nil
	}

	useParallel := len(req.Lines) >= parallelLineMin && s.cfg.DecodeWorkers > 1
	if useParallel {
		err = parallel.ForEach(ctx, len(req.Lines), s.cfg.DecodeWorkers, expand)
	} else {
		for i := 0; err == nil && i < len(req.Lines); i++ {
			if ctx.Err() != nil {
				err = ctx.Err()
				break
			}
			err = expand(i)
		}
	}
	s.applyLineCacheStats(&st, useParallel)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			err = Errf(http.StatusRequestTimeout, CodeDeadlineExceeded,
				"decompress deadline exceeded after %d lines", len(req.Lines))
		}
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttrInt("lines", int64(len(req.Lines)))
	sp.SetAttrInt("linecache_hits", int64(st.hits.Load()))
	sp.SetAttrInt("linecache_misses", int64(st.misses.Load()))
	if useParallel {
		sp.SetAttrInt("decode_workers", int64(s.cfg.DecodeWorkers))
	}
	return out, nil
}

// applyLineCacheStats folds one request's cache deltas into the
// registry; instruments are single-threaded so updates go under
// metricsMu like every other handler-side metric.
func (s *Server) applyLineCacheStats(st *lineCacheStats, parallel bool) {
	s.metricsMu.Lock()
	s.inst.lineHits.Add(st.hits.Load())
	s.inst.lineMisses.Add(st.misses.Load())
	s.inst.lineEvictions.Add(st.evictions.Load())
	s.inst.lineResident.Set(float64(s.lines.len()))
	if parallel {
		s.inst.decodeParallel.Add(1)
	}
	s.metricsMu.Unlock()
}

// decodeLineInto expands one stored block into a full cache line held by
// the caller — the zero-allocation unit of the decompress path.
func (e *coderEntry) decodeLineInto(dst, stored []byte) error {
	if e.codec != nil {
		if d, ok := e.codec.(core.LineIntoDecoder); ok {
			return d.DecodeLineInto(dst, stored)
		}
		line, err := e.codec.DecodeLine(stored, core.LineSize)
		if err != nil {
			return err
		}
		copy(dst, line)
		return nil
	}
	// Single-code byte-Huffman; multi-code images need per-line tags and
	// travel as CROM files instead. Decode runs through the multi-symbol
	// table-driven kernel (byte-identical to the canonical decoder).
	return e.codes[0].Multi().DecodeInto(dst, stored)
}
