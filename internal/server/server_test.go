package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ccrp/internal/core"
	"ccrp/internal/experiments"
	"ccrp/internal/huffman"
	"ccrp/internal/metrics"
	"ccrp/internal/workload"
)

// newTestServer builds a server and its httptest harness.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON round-trips one JSON request.
func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeAs unmarshals a response body, failing the test on mismatch.
func decodeAs[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response %s does not parse: %v", body, err)
	}
	return v
}

// wantError asserts a response carries the given taxonomy code.
func wantError(t *testing.T, resp *http.Response, body []byte, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	eb := decodeAs[errorBody](t, body)
	if eb.Error == nil || eb.Error.Code != code {
		t.Errorf("error body = %s, want code %q", body, code)
	}
}

// trainPreselected trains the default coder and returns its id.
func trainPreselected(t *testing.T, url string) string {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/coders", trainRequest{Kind: KindPreselected})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train preselected: %d %s", resp.StatusCode, body)
	}
	return decodeAs[coderInfo](t, body).ID
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "test-1"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	h := decodeAs[healthzBody](t, body)
	if h.Status != "ok" || h.Version != "test-1" || h.Host.GoVersion == "" {
		t.Errorf("healthz body = %+v", h)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})

	t.Run("unknown route is typed 404", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/nonesuch")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		wantError(t, resp, body, http.StatusNotFound, CodeNotFound)
	})

	t.Run("wrong method is typed 405", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/compress")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		wantError(t, resp, body, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	})

	t.Run("malformed JSON is typed 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		wantError(t, resp, body, http.StatusBadRequest, CodeBadRequest)
	})

	t.Run("oversized body is typed 413", func(t *testing.T) {
		big := fmt.Sprintf(`{"kind":"bounded","corpus_b64":[%q]}`,
			base64.StdEncoding.EncodeToString(make([]byte, 4096)))
		resp, err := http.Post(ts.URL+"/v1/coders", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		wantError(t, resp, body, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)
	})

	t.Run("unknown workload is typed 404", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Workload: "nonesuch"})
		wantError(t, resp, body, http.StatusNotFound, CodeNotFound)
	})

	t.Run("unknown coder id is typed 404", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/compress",
			compressRequest{CoderID: "deadbeef", Workload: "eightq"})
		wantError(t, resp, body, http.StatusNotFound, CodeNotFound)
	})

	t.Run("unknown coder kind is typed 400", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/coders", trainRequest{Kind: "lzw"})
		wantError(t, resp, body, http.StatusBadRequest, CodeBadRequest)
	})
}

func TestTrainCoderCachedAndSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/coders",
		trainRequest{Kind: KindBounded, Workloads: []string{"eightq"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, body)
	}
	first := decodeAs[coderInfo](t, body)
	if first.Cached {
		t.Error("first training reported cached=true")
	}
	if first.MaxCodeLen == 0 || first.MaxCodeLen > 16 {
		t.Errorf("bounded code MaxCodeLen = %d, want 1..16", first.MaxCodeLen)
	}

	// Same corpus via the other spelling (identical workload text) must
	// hit the cache and return the same id.
	resp, body = postJSON(t, ts.URL+"/v1/coders",
		trainRequest{Kind: KindBounded, Workloads: []string{"eightq"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain: %d %s", resp.StatusCode, body)
	}
	second := decodeAs[coderInfo](t, body)
	if second.ID != first.ID {
		t.Errorf("retraining changed the id: %q vs %q", second.ID, first.ID)
	}
	if !second.Cached {
		t.Error("identical retrain reported cached=false")
	}

	// Concurrent identical requests share one single-flight build: the
	// build counter must not exceed the distinct-coder count.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/coders",
				trainRequest{Kind: KindCodePack, Workloads: []string{"eightq"}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent train: %d %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()

	s.metricsMu.Lock()
	builds := s.inst.builds.Value()
	s.metricsMu.Unlock()
	if builds > 2 { // bounded + codepack, one build each
		t.Errorf("coder builds = %d, want <= 2 (single-flight broken)", builds)
	}

	// GET /v1/coders/{id} resolves the trained coder.
	resp2, err := http.Get(ts.URL + "/v1/coders/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("get coder: %d %s", resp2.StatusCode, got)
	}
	if decodeAs[coderInfo](t, got).ID != first.ID {
		t.Errorf("get coder returned wrong id: %s", got)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)

	text := []byte("the service must round-trip arbitrary text images, not just corpus programs. ")
	text = bytes.Repeat(text, 8)

	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{
		CoderID: id, TextB64: base64.StdEncoding.EncodeToString(text)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)
	if comp.Ratio <= 0 || comp.Ratio >= 1.2 {
		t.Errorf("ratio = %g, want (0, 1.2)", comp.Ratio)
	}
	if len(comp.Lines) != comp.OriginalBytes/core.LineSize {
		t.Errorf("lines = %d, want %d", len(comp.Lines), comp.OriginalBytes/core.LineSize)
	}
	sum := 0
	for _, l := range comp.Lines {
		sum += l.Len
	}
	if sum != comp.BlocksBytes {
		t.Errorf("per-line lengths sum to %d, want blocks_bytes %d", sum, comp.BlocksBytes)
	}
	if comp.ROMB64 == "" {
		t.Fatal("preselected coder produced no serialized ROM")
	}

	// Round trip via the self-describing CROM image.
	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{ROMB64: comp.ROMB64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, body)
	}
	dec := decodeAs[decompressResponse](t, body)
	got, err := base64.StdEncoding.DecodeString(dec.TextB64)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, comp.OriginalBytes) // padded to the line size
	copy(want, text)
	if !bytes.Equal(got, want) {
		t.Fatal("ROM round trip is not byte-identical")
	}

	// Round trip via blocks + per-line records (the codec path's shape).
	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
		CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress by lines: %d %s", resp.StatusCode, body)
	}
	dec = decodeAs[decompressResponse](t, body)
	got, err = base64.StdEncoding.DecodeString(dec.TextB64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("blocks round trip is not byte-identical")
	}
}

func TestCompressCodePackRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/coders",
		trainRequest{Kind: KindCodePack, Workloads: []string{"eightq"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train codepack: %d %s", resp.StatusCode, body)
	}
	info := decodeAs[coderInfo](t, body)
	if info.DictBytes == 0 {
		t.Error("codepack coder reports no dictionary cost")
	}

	resp, body = postJSON(t, ts.URL+"/v1/compress",
		compressRequest{CoderID: info.ID, Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)
	if comp.ROMB64 != "" {
		t.Error("codec ROM unexpectedly claims CROM serializability")
	}

	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
		CoderID: info.ID, BlocksB64: comp.BlocksB64, Lines: comp.Lines})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, body)
	}
	dec := decodeAs[decompressResponse](t, body)
	if dec.OriginalBytes != comp.OriginalBytes {
		t.Errorf("round trip size %d, want %d", dec.OriginalBytes, comp.OriginalBytes)
	}
}

func TestDecompressHostileInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)

	t.Run("garbage ROM blob", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
			ROMB64: base64.StdEncoding.EncodeToString([]byte("not a rom at all"))})
		wantError(t, resp, body, http.StatusUnprocessableEntity, CodeUnprocessable)
	})

	t.Run("line lengths overrun blocks", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
			CoderID:   id,
			BlocksB64: base64.StdEncoding.EncodeToString([]byte{0xFF}),
			Lines:     []lineInfo{{Len: 1000}}})
		wantError(t, resp, body, http.StatusUnprocessableEntity, CodeUnprocessable)
	})

	t.Run("negative line length", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
			CoderID:   id,
			BlocksB64: base64.StdEncoding.EncodeToString([]byte{0xFF}),
			Lines:     []lineInfo{{Len: -5}}})
		wantError(t, resp, body, http.StatusUnprocessableEntity, CodeUnprocessable)
	})
}

func TestSimulatePoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
		Workload: "eightq", CacheBytes: 1024, CLBEntries: 16, Memory: "Burst EPROM"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	sim := decodeAs[simulateResponse](t, body)
	if sim.RelativePerformance <= 0 {
		t.Errorf("relative performance = %g, want > 0", sim.RelativePerformance)
	}
	if sim.CCRP.Cycles == 0 || sim.Standard.Cycles == 0 {
		t.Errorf("cycle counts missing: %+v", sim)
	}
	if sim.ROMRatio <= 0 || sim.ROMRatio >= 1 {
		t.Errorf("rom ratio = %g, want (0, 1)", sim.ROMRatio)
	}

	// The same point through the library must agree exactly — the
	// service is a transport, not a different model.
	want, err := pointViaLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if sim.CCRP.Cycles != want.CCRP.Cycles || sim.Standard.Cycles != want.Standard.Cycles {
		t.Errorf("service cycles (%d/%d) differ from library (%d/%d)",
			sim.CCRP.Cycles, sim.Standard.Cycles, want.CCRP.Cycles, want.Standard.Cycles)
	}
}

// TestSimulateAfterTrainSharesCacheSlot pins a fixed bug: training the
// preselected coder and then simulating with the default coder must share
// one cache slot (same key, same entry type), not collide on it.
func TestSimulateAfterTrainSharesCacheSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	trainPreselected(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate after train: %d %s", resp.StatusCode, body)
	}

	s.metricsMu.Lock()
	builds := s.inst.builds.Value()
	s.metricsMu.Unlock()
	if builds != 1 {
		t.Errorf("coder builds = %d, want 1 (train and default simulate should share)", builds)
	}
}

func TestSimulateConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{SimWorkers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(cache int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{
				Workload: "eightq", CacheBytes: cache})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent simulate: %d %s", resp.StatusCode, body)
			}
		}(256 << (i % 3))
	}
	wg.Wait()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate some traffic first.
	postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Workload: "eightq"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE ccrpd_requests_total counter",
		`ccrpd_requests_total{route="/v1/simulate"}`,
		"# TYPE ccrpd_request_seconds histogram",
		"ccrpd_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}

func TestAccessLogEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := metrics.NewJSONLSink(&buf)
	_, ts := newTestServer(t, Config{AccessLog: sink})

	postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Workload: "nonesuch"})
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2: %q", len(lines), buf.String())
	}
	var ev metrics.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != metrics.EvHTTP || ev.Path != "/v1/simulate" || ev.Status != http.StatusNotFound {
		t.Errorf("first access event = %+v", ev)
	}
	if ev.Err != CodeNotFound {
		t.Errorf("error code in access log = %q, want %q", ev.Err, CodeNotFound)
	}
}

func TestPanicConfinement(t *testing.T) {
	s := New(Config{})
	s.route("POST /v1/boom", time.Second, func(w http.ResponseWriter, r *http.Request) error {
		panic("kaboom")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/boom", struct{}{})
	wantError(t, resp, body, http.StatusInternalServerError, CodeInternal)
}

// pointViaLibrary computes the reference simulate point directly through
// the library, bypassing the service.
func pointViaLibrary() (*core.Comparison, error) {
	wl, _ := workload.ByName("eightq")
	text, err := wl.Text()
	if err != nil {
		return nil, err
	}
	tr, err := wl.Trace()
	if err != nil {
		return nil, err
	}
	code, err := experiments.PreselectedCode()
	if err != nil {
		return nil, err
	}
	rom, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}})
	if err != nil {
		return nil, err
	}
	return core.Compare(tr, text, core.Config{
		CacheBytes: 1024, CLBEntries: 16, ROM: rom,
	})
}
