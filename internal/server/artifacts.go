// Artifact observability: GET /v1/artifacts lists what the node's disk
// store holds — which coders and ROM images this fleet member owns —
// and the ccrpd_store_bytes gauge tracks the store's resident payload
// size. Together they make per-node placement observable, the input a
// fleet rebalancer (or an operator wondering why one node is hot)
// needs: the router decides where a coder id *should* live, this
// endpoint reports where its artifacts actually are.
package server

import (
	"net/http"
	"sort"
	"time"

	"ccrp/internal/sweep"
)

// artifactInfo is the wire shape of one stored artifact. ID is the
// public content-addressed identifier — for coder artifacts it equals
// the coder id clients use against /v1/compress.
type artifactInfo struct {
	ID    string    `json:"id"`
	Kind  string    `json:"kind"` // "coder" | "rom"
	Size  int       `json:"size_bytes"`
	MTime time.Time `json:"mtime,omitempty"`
}

// artifactsResponse is the GET /v1/artifacts body.
type artifactsResponse struct {
	Artifacts  []artifactInfo `json:"artifacts"`
	TotalBytes int64          `json:"total_bytes"`
	// Store reports whether a disk store is configured at all, so an
	// empty list is distinguishable from a memory-only node.
	Store bool `json:"store"`
}

// listArtifacts enumerates the store, newest first (ties broken by id
// for a deterministic listing).
func (s *Server) listArtifacts() (*artifactsResponse, error) {
	resp := &artifactsResponse{Artifacts: []artifactInfo{}}
	st := s.cache.Store()
	if st == nil {
		return resp, nil
	}
	resp.Store = true
	arts, err := st.List()
	if err != nil {
		return nil, err
	}
	for _, a := range arts {
		resp.Artifacts = append(resp.Artifacts, artifactInfo{
			ID:    sweep.HashBytes([]byte(a.Key)),
			Kind:  a.Class,
			Size:  a.Size,
			MTime: a.ModTime,
		})
		resp.TotalBytes += int64(a.Size)
	}
	sort.Slice(resp.Artifacts, func(i, j int) bool {
		if !resp.Artifacts[i].MTime.Equal(resp.Artifacts[j].MTime) {
			return resp.Artifacts[i].MTime.After(resp.Artifacts[j].MTime)
		}
		return resp.Artifacts[i].ID < resp.Artifacts[j].ID
	})
	return resp, nil
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) error {
	resp, err := s.listArtifacts()
	if err != nil {
		return err
	}
	s.metricsMu.Lock()
	s.inst.storeBytes.Set(float64(resp.TotalBytes))
	s.metricsMu.Unlock()
	traceJSON(w, r, resp)
	return nil
}

// refreshStoreBytes recomputes the store-size gauge for a /metrics
// scrape; a node with no store keeps the gauge at zero. Enumeration
// reads one header line per artifact — cheap at catalogue scale, and
// scrapes are seconds apart.
func (s *Server) refreshStoreBytes() {
	if s.cache.Store() == nil {
		return
	}
	resp, err := s.listArtifacts()
	if err != nil {
		return
	}
	s.metricsMu.Lock()
	s.inst.storeBytes.Set(float64(resp.TotalBytes))
	s.metricsMu.Unlock()
}
