package server

import (
	"context"
	"net/http"
	"time"

	"ccrp/internal/cliutil"
	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/sweep"
	"ccrp/internal/tracing"
	"ccrp/internal/workload"
)

// simulateRequest is the POST /v1/simulate body: one core.Config point.
// Zero-valued knobs take the paper's base parameters (1 KB cache,
// 16-entry CLB, Burst EPROM, no data cache). CoderID defaults to the
// preselected code, matching the paper's tables.
type simulateRequest struct {
	Workload       string   `json:"workload"`
	CacheBytes     int      `json:"cache_bytes,omitempty"`
	CacheWays      int      `json:"cache_ways,omitempty"`
	CLBEntries     int      `json:"clb_entries,omitempty"`
	Memory         string   `json:"memory,omitempty"`
	DCacheMissRate *float64 `json:"dcache_miss_rate,omitempty"` // nil = no data cache (rate 1.0); 0 is a real value
	CoderID        string   `json:"coder_id,omitempty"`
	WordAligned    bool     `json:"word_aligned,omitempty"`
	OverlapCycles  uint64   `json:"overlap_cycles,omitempty"`
}

// simulateResponse is one PerfPoint plus cost accounting, the service
// twin of ccsim -json.
type simulateResponse struct {
	Workload            string     `json:"workload"`
	Memory              string     `json:"memory"`
	CacheBytes          int        `json:"cache_bytes"`
	CLBEntries          int        `json:"clb_entries"`
	DCacheMissRate      float64    `json:"dcache_miss_rate"`
	RelativePerformance float64    `json:"relative_performance"`
	MissRate            float64    `json:"miss_rate"`
	TrafficRatio        float64    `json:"traffic_ratio"`
	CLBMissRate         float64    `json:"clb_miss_rate"`
	ROMRatio            float64    `json:"rom_ratio"`
	Standard            core.Stats `json:"standard"`
	CCRP                core.Stats `json:"ccrp"`
	QueueMS             float64    `json:"queue_ms"` // time waiting for a worker slot
	SimMS               float64    `json:"sim_ms"`   // time inside the simulator
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	var req simulateRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	if req.Workload == "" {
		return errBadRequest("missing workload")
	}
	wl, ok := workload.ByName(req.Workload)
	if !ok {
		return Errf(http.StatusNotFound, CodeNotFound,
			"unknown workload %q (have %v)", req.Workload, workload.Names())
	}
	if req.Memory == "" {
		req.Memory = "Burst EPROM"
	}
	mem, err := memoryModel(req.Memory)
	if err != nil {
		return err
	}
	dmiss := 1.0
	if req.DCacheMissRate != nil {
		dmiss = *req.DCacheMissRate
	}
	if dmiss < 0 || dmiss > 1 {
		return errBadRequest("dcache_miss_rate %g outside [0, 1]", dmiss)
	}
	// Echo the engine's defaults so the response states the actual
	// configuration simulated, not the zero-valued request knobs.
	if req.CacheBytes == 0 {
		req.CacheBytes = 1024
	}
	if req.CLBEntries == 0 {
		req.CLBEntries = 16
	}

	// The coder resolves before queuing so typed errors beat the wait.
	ctx := r.Context()
	codes, codec, romRatio, rom, err := s.simulateROM(ctx, &req, wl)
	if err != nil {
		return err
	}

	// Bounded worker pool: block for a slot, but never past the route
	// deadline. Saturation past the deadline is a client-visible 429,
	// not a 5xx — the service is healthy, just full.
	qspan := tracing.FromContext(ctx).Child(StageSimQueue)
	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		err := Errf(http.StatusTooManyRequests, CodeOverloaded,
			"no simulate worker within the deadline (%d workers busy)", s.cfg.SimWorkers)
		qspan.SetError(err)
		qspan.End()
		return err
	}
	queued := time.Since(queueStart)
	qspan.End()

	type simOut struct {
		cmp *core.Comparison
		dur time.Duration
		err error
	}
	done := make(chan simOut, 1)
	rspan := tracing.FromContext(ctx).Child(StageSimRun)
	rspan.SetAttr("workload", req.Workload)
	go func() {
		defer func() { <-s.sem }()
		defer rspan.End()
		tr, err := wl.Trace()
		if err != nil {
			err = errUnprocessable("workload %q failed to build: %v", req.Workload, err)
			rspan.SetError(err)
			done <- simOut{err: err}
			return
		}
		text, err := wl.Text()
		if err != nil {
			err = errUnprocessable("workload %q failed to build: %v", req.Workload, err)
			rspan.SetError(err)
			done <- simOut{err: err}
			return
		}
		cfg := core.Config{
			CacheBytes:    req.CacheBytes,
			CacheWays:     req.CacheWays,
			CLBEntries:    req.CLBEntries,
			Mem:           mem,
			Codes:         codes,
			Codec:         codec,
			WordAligned:   req.WordAligned,
			OverlapCycles: req.OverlapCycles,
			ROM:           rom,
		}
		if dmiss < 1 {
			cfg.DataCache = true
			cfg.DCacheMissRate = dmiss
		}
		start := time.Now()
		cmp, err := core.Compare(tr, text, cfg)
		if err != nil {
			err = errUnprocessable("simulation failed: %v", err)
			rspan.SetError(err)
			done <- simOut{err: err}
			return
		}
		done <- simOut{cmp: cmp, dur: time.Since(start)}
	}()

	select {
	case out := <-done:
		if out.err != nil {
			return out.err
		}
		s.metricsMu.Lock()
		s.inst.simWait.Observe(queued.Seconds())
		s.metricsMu.Unlock()

		cmp := out.cmp
		resp := simulateResponse{
			Workload:            req.Workload,
			Memory:              mem.Name(),
			CacheBytes:          req.CacheBytes,
			CLBEntries:          req.CLBEntries,
			DCacheMissRate:      dmiss,
			RelativePerformance: cmp.RelativePerformance(),
			MissRate:            cmp.MissRate(),
			TrafficRatio:        cmp.TrafficRatio(),
			ROMRatio:            romRatio,
			Standard:            cmp.Standard,
			CCRP:                cmp.CCRP,
			QueueMS:             float64(queued.Microseconds()) / 1000,
			SimMS:               float64(out.dur.Microseconds()) / 1000,
		}
		if cmp.CCRP.Misses > 0 {
			resp.CLBMissRate = float64(cmp.CCRP.CLBMisses) / float64(cmp.CCRP.Misses)
		}
		traceJSON(w, r, resp)
		return nil
	case <-ctx.Done():
		// The simulator is not interruptible mid-trace; the goroutine
		// keeps its pool slot until it finishes, which is exactly the
		// resource bound the pool exists to enforce.
		return Errf(http.StatusRequestTimeout, CodeDeadlineExceeded,
			"simulation exceeded the per-request deadline")
	}
}

// simulateROM resolves the coder of a simulate request and prebuilds the
// compressed image through the artifact cache, so every point over the
// same (coder, program) pair shares one ROM — the same sharing the sweep
// engine relies on.
func (s *Server) simulateROM(ctx context.Context, req *simulateRequest, wl *workload.Workload) ([]*huffman.Code, core.LineCodec, float64, *core.ROM, error) {
	tsp := tracing.FromContext(ctx).Child(StageText)
	text, err := wl.Text()
	if err != nil {
		err = errUnprocessable("workload %q failed to build: %v", req.Workload, err)
		tsp.SetError(err)
		tsp.End()
		return nil, nil, 0, nil, err
	}
	tsp.SetAttrInt("text_bytes", int64(len(text)))
	tsp.End()
	var entry *coderEntry
	if req.CoderID != "" {
		entry, err = s.resolveCoder(ctx, req.CoderID)
		if err != nil {
			return nil, nil, 0, nil, err
		}
	} else {
		// Default coder: the paper's preselected code, built through the
		// same key (and so the same cache slot and store artifact) as an
		// explicit POST /v1/coders {"kind":"preselected"} train request.
		key := coderKey(KindPreselected, 0, nil)
		id := sweep.HashBytes([]byte(key))
		entry, err = s.trainCoderCached(nil, key, id, KindPreselected, 0, nil)
		if err != nil {
			return nil, nil, 0, nil, err
		}
	}
	rom, err := s.buildROM(ctx, entry, text, req.WordAligned)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return entry.codes, entry.codec, rom.Ratio(), rom, nil
}

// memoryModel maps the request's memory name through the shared resolver
// onto the error taxonomy.
func memoryModel(name string) (memory.Model, error) {
	mem, err := cliutil.MemoryModel(name)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	return mem, nil
}
