// Route-key derivation for the cluster layer: given a request the
// gateway is about to forward, which consistent-hash key should pick
// the backend? The answer is the coder id whenever the request names or
// produces one — that is the whole point of the fleet, requests follow
// the trained artifacts — and a stable content hash otherwise. The
// logic lives in this package, next to the API shapes it parses, so the
// router cannot drift from the backend's own id derivation.
package server

import (
	"encoding/json"
	"strings"

	"ccrp/internal/sweep"
)

// Route-key kinds reported by RouteKey, for router metrics and logs.
const (
	RouteKeyCoder = "coder" // key is a coder id (explicit or derived)
	RouteKeyHash  = "hash"  // no coder affinity; key is a body hash
)

// routeKeyBody is the loose superset of request shapes RouteKey peeks
// at: a top-level coder_id (compress, decompress, compress:batch) or a
// per-item one (decompress:batch).
type routeKeyBody struct {
	CoderID string `json:"coder_id"`
	Items   []struct {
		CoderID string `json:"coder_id"`
	} `json:"items"`
}

// RouteKey derives the cluster routing key for one API request. body
// may be nil for bodyless requests.
//
//   - POST /v1/coders: the key is the coder id the request will train —
//     computed with the exact normalization the train handler applies —
//     so a coder is built on the node that will later serve it.
//   - GET /v1/coders/{id}: the id from the path.
//   - compress / decompress and their :batch variants: the coder_id
//     named in the body (first item's for decompress:batch, whose items
//     in practice share one coder).
//   - Everything else (simulate, self-describing rom_b64 decompression,
//     malformed bodies): a hash of path+body, spreading keyless traffic
//     across the fleet while keeping identical requests on one node so
//     per-node caches still help.
//
// RouteKey never fails: a request the backend will reject still routes
// somewhere, and the backend's own validation produces the client's
// error.
func RouteKey(method, path string, body []byte) (key, kind string) {
	if id, ok := strings.CutPrefix(path, "/v1/coders/"); ok && id != "" && !strings.Contains(id, "/") {
		return id, RouteKeyCoder
	}
	switch path {
	case "/v1/coders":
		var req trainRequest
		if err := json.Unmarshal(body, &req); err == nil {
			if _, id, _, err := normalizeTrain(&req); err == nil {
				return id, RouteKeyCoder
			}
		}
	case "/v1/compress", "/v1/decompress", "/v1/compress:batch", "/v1/decompress:batch":
		var req routeKeyBody
		if err := json.Unmarshal(body, &req); err == nil {
			if req.CoderID != "" {
				return req.CoderID, RouteKeyCoder
			}
			if len(req.Items) > 0 && req.Items[0].CoderID != "" {
				return req.Items[0].CoderID, RouteKeyCoder
			}
		}
	}
	return sweep.HashBytes(append([]byte(path+"\x00"), body...)), RouteKeyHash
}
