package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ccrp/internal/metrics"
	"ccrp/internal/tracing"
)

// memSink collects span records in memory.
type memSink struct {
	mu   sync.Mutex
	recs []tracing.Record
}

func (s *memSink) Emit(rec tracing.Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

func (s *memSink) Close() error { return nil }

func (s *memSink) records() []tracing.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]tracing.Record(nil), s.recs...)
}

// TestResponsesCarryTraceIDs pins the serving contract: every 2xx and
// 4xx response carries an X-Ccrp-Trace-Id header, and the same id
// appears in the request's access-log record. This holds with no tracer
// configured — trace correlation is part of serving, span recording is
// the optional half.
func TestResponsesCarryTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	sink := metrics.NewJSONLSink(&buf)
	_, ts := newTestServer(t, Config{AccessLog: sink})

	id := trainPreselected(t, ts.URL)
	seen := map[string]bool{}
	record := func(resp *http.Response, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		tid := resp.Header.Get(TraceHeader)
		if tid == "" {
			t.Fatalf("%s response has no %s header", resp.Request.URL.Path, TraceHeader)
		}
		if _, err := tracing.ParseTraceID(tid); err != nil {
			t.Fatalf("%s: bad trace id %q: %v", resp.Request.URL.Path, tid, err)
		}
		if seen[tid] {
			t.Fatalf("trace id %s reused across requests", tid)
		}
		seen[tid] = true
	}

	// 2xx: compress; 4xx: unknown coder, malformed JSON.
	resp, _ := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	record(resp, http.StatusOK)
	resp, _ = postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: "nope", Workload: "eightq"})
	record(resp, http.StatusNotFound)
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	record(resp, http.StatusBadRequest)

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	logged := map[string]bool{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev metrics.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Trace != "" {
			logged[ev.Trace] = true
		}
	}
	for tid := range seen {
		if !logged[tid] {
			t.Errorf("trace id %s from a response header never reached the access log", tid)
		}
	}
}

// TestInboundTraceAdoption pins the gateway-hop contract: a well-formed
// inbound X-Ccrp-Trace-Id is adopted — the response carries the same id
// and the recorded spans join that trace, so router and backend stages
// stitch into one tree — while malformed ids are rejected and replaced
// with a fresh one, so broken clients cannot poison correlation.
func TestInboundTraceAdoption(t *testing.T) {
	sink := &memSink{}
	tracer := tracing.New(tracing.Config{Sink: sink})
	_, ts := newTestServer(t, Config{Tracer: tracer})

	send := func(tid string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tid != "" {
			req.Header.Set(TraceHeader, tid)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	t.Run("adopts a valid inbound id", func(t *testing.T) {
		want := "00112233445566778899aabbccddeeff"
		resp := send(want)
		if got := resp.Header.Get(TraceHeader); got != want {
			t.Fatalf("response trace id = %q, want the inbound %q adopted", got, want)
		}
		found := false
		for _, rec := range sink.records() {
			if rec.Trace == want && rec.Stage == StageRequest {
				found = true
			}
		}
		if !found {
			t.Fatalf("no request span recorded under the adopted trace id %s", want)
		}
	})

	t.Run("rejects malformed ids", func(t *testing.T) {
		for _, bad := range []string{
			"xyz",                                 // not hex
			"0011223344",                          // too short
			"00112233445566778899aabbccddeeff00",  // too long
			"zz112233445566778899aabbccddeeff",    // hex-length, non-hex
			"00000000000000000000000000000000",    // the invalid zero id
			"00112233-4455-6677-8899-aabbccddeef", // uuid punctuation
		} {
			resp := send(bad)
			got := resp.Header.Get(TraceHeader)
			if got == bad {
				t.Errorf("malformed inbound id %q was adopted", bad)
			}
			if _, err := tracing.ParseTraceID(got); err != nil {
				t.Errorf("response to malformed id %q carries unparseable id %q", bad, got)
			}
		}
	})
}

// TestRequestSpansCoverStages boots a traced server, drives one of each
// request kind, and asserts the span stream decomposes them into the
// documented stage names with the request root first in each tree.
func TestRequestSpansCoverStages(t *testing.T) {
	sink := &memSink{}
	tracer := tracing.New(tracing.Config{Sink: sink})
	_, ts := newTestServer(t, Config{Tracer: tracer})

	id := trainPreselected(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)
	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
		CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}

	recs := sink.records()
	byStage := map[string]int{}
	roots := map[string]tracing.Record{}
	for _, rec := range recs {
		byStage[rec.Stage]++
		if rec.Parent == "" {
			roots[rec.Trace] = rec
		}
	}
	for _, stage := range []string{
		StageRequest, StageDecodeBody, StageText, StageCoderGet, StageCoderTrain,
		StageCompress, StageDecompress, StageSimQueue, StageSimRun, StageEncode,
	} {
		if byStage[stage] == 0 {
			t.Errorf("no %s spans in the stream (stages: %v)", stage, byStage)
		}
	}
	// Every trace has exactly one root, and it is the request span.
	if len(roots) != 4 {
		t.Errorf("got %d rooted traces, want 4 (train, compress, decompress, simulate)", len(roots))
	}
	for tid, root := range roots {
		if root.Stage != StageRequest {
			t.Errorf("trace %s rooted at %q, want %q", tid, root.Stage, StageRequest)
		}
		if root.DurNS <= 0 {
			t.Errorf("trace %s root has non-positive duration %d", tid, root.DurNS)
		}
	}
	// Child spans must nest inside their trace's root duration.
	for _, rec := range recs {
		if rec.Parent == "" {
			continue
		}
		root, ok := roots[rec.Trace]
		if !ok {
			t.Errorf("span %s (stage %s) has no root for trace %s", rec.Span, rec.Stage, rec.Trace)
			continue
		}
		if rec.DurNS > root.DurNS {
			t.Errorf("stage %s span (%d ns) outlasts its request root (%d ns)", rec.Stage, rec.DurNS, root.DurNS)
		}
	}

	// The line-cache attribution rides on the decompress span.
	found := false
	for _, rec := range recs {
		if rec.Stage != StageDecompress {
			continue
		}
		if _, ok := rec.Attrs["linecache_hits"]; ok {
			found = true
		}
	}
	if !found {
		t.Error("no decompress span carries linecache_hits attribution")
	}

	// Tail capture retains the request trees for /debug/traces.
	snap := tracer.TailSnapshot()
	if len(snap.Slow) == 0 {
		t.Error("tail capture holds no slow traces after four requests")
	}
}
