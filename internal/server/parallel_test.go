package server

import (
	"bytes"
	"encoding/base64"
	"io"
	"net/http"
	"testing"

	"ccrp/internal/core"
)

// TestDecompressParallelPath drives a decompress request large enough
// to cross parallelLineMin with a multi-worker pool and checks that the
// output is byte-identical to the sequential path and that the
// ccrpd_decode_parallel_total counter records the parallel run.
func TestDecompressParallelPath(t *testing.T) {
	_, ts := newTestServer(t, Config{DecodeWorkers: 4})
	id := trainPreselected(t, ts.URL)

	// Well over parallelLineMin lines of compressible text.
	text := bytes.Repeat([]byte("parallel decode across the worker pool! "), 8*parallelLineMin)
	text = text[:core.LineSize*2*parallelLineMin]
	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{
		CoderID: id, TextB64: base64.StdEncoding.EncodeToString(text)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)
	if len(comp.Lines) < parallelLineMin {
		t.Fatalf("test payload has %d lines, need >= %d", len(comp.Lines), parallelLineMin)
	}

	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
		CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, body)
	}
	got := decodeAs[decompressResponse](t, body)
	dec, err := base64.StdEncoding.DecodeString(got.TextB64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, text) {
		t.Fatal("parallel decompress is not byte-identical to the original text")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := promValue(t, string(prom), "ccrpd_decode_parallel_total"); v < 1 {
		t.Errorf("ccrpd_decode_parallel_total = %v, want >= 1", v)
	}
}

// TestDecompressSequentialWhenSingleWorker pins the opt-out: with
// DecodeWorkers=1 even a large request must stay on the sequential
// path, leaving the parallel counter untouched.
func TestDecompressSequentialWhenSingleWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{DecodeWorkers: 1})
	id := trainPreselected(t, ts.URL)

	text := bytes.Repeat([]byte("sequential decode on one worker. "), 4*parallelLineMin)
	text = text[:core.LineSize*2*parallelLineMin]
	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{
		CoderID: id, TextB64: base64.StdEncoding.EncodeToString(text)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)

	resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
		CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := promValue(t, string(prom), "ccrpd_decode_parallel_total"); v != 0 {
		t.Errorf("ccrpd_decode_parallel_total = %v, want 0 with a single worker", v)
	}
}
