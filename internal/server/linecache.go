package server

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"ccrp/internal/core"
)

// defaultLineCacheLines bounds the decoded-line cache when the Config
// leaves it unset: 4096 lines × 32 decoded bytes = 128 KiB of payload,
// a few multiples of that with keys and list overhead.
const defaultLineCacheLines = 4096

// lineBufPool recycles the fixed-size line payloads the cache stores.
// Pooling pointers to arrays (not slices) keeps Put itself
// allocation-free, and eviction feeds buffers straight back to the next
// insert, so a full cache under steady load stops allocating entirely.
var lineBufPool = sync.Pool{
	New: func() any { return new([core.LineSize]byte) },
}

// lineCacheKey identifies one decoded line. The coder id pins the code
// tables, the block address distinguishes identical stored bytes at
// different image positions (cheap invalidation when images diverge),
// and the FNV-64a content hash plus stored length tie the entry to the
// exact compressed bytes so a stale client resubmitting edited blocks
// can never receive another block's expansion.
type lineCacheKey struct {
	coderID string
	addr    int
	hash    uint64
	n       int
}

// lineCacheStats is a per-request delta, folded into the metrics
// registry by the caller once the request's decode completes. The fields
// are atomics because parallel decode workers share one stats value; the
// final read happens after the worker pool joins.
type lineCacheStats struct {
	hits, misses, evictions atomic.Uint64
}

// lineCache is a bounded LRU of decoded cache lines — the daemon-side
// twin of the simulator's instruction cache: hot lines skip Huffman
// decode entirely, mirroring how CCRP only pays the decompression
// latency on cache misses.
type lineCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *lineCacheEnt
	entries map[lineCacheKey]*list.Element
}

type lineCacheEnt struct {
	key  lineCacheKey
	line *[core.LineSize]byte // pooled; recycled on eviction
}

// newLineCache returns a cache bounded to capLines entries, or nil when
// capLines < 0 (caching disabled); nil receivers are safe no-ops.
func newLineCache(capLines int) *lineCache {
	if capLines < 0 {
		return nil
	}
	if capLines == 0 {
		capLines = defaultLineCacheLines
	}
	return &lineCache{
		cap:     capLines,
		order:   list.New(),
		entries: make(map[lineCacheKey]*list.Element),
	}
}

// lineKey hashes one stored block into its cache key.
func lineKey(coderID string, addr int, stored []byte) lineCacheKey {
	h := fnv.New64a()
	h.Write(stored)
	return lineCacheKey{coderID: coderID, addr: addr, hash: h.Sum64(), n: len(stored)}
}

// get copies the cached decoded line into dst (LineSize bytes),
// promoting it to most recent. Copying under the lock — rather than
// returning the shared payload — is what lets put recycle evicted
// buffers through the pool without use-after-recycle races.
func (c *lineCache) get(key lineCacheKey, dst []byte, st *lineCacheStats) bool {
	if c == nil {
		st.misses.Add(1)
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		st.misses.Add(1)
		return false
	}
	c.order.MoveToFront(el)
	copy(dst, el.Value.(*lineCacheEnt).line[:])
	st.hits.Add(1)
	return true
}

// put inserts a decoded line, copying it into a pooled buffer and
// evicting from the LRU tail when full (evicted buffers return to the
// pool). The caller keeps ownership of line.
func (c *lineCache) put(key lineCacheKey, line []byte, st *lineCacheStats) {
	if c == nil || c.cap == 0 {
		return
	}
	buf := lineBufPool.Get().(*[core.LineSize]byte)
	copy(buf[:], line)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key decodes to the same bytes (the key covers the coder and
		// the stored content); just refresh recency.
		c.order.MoveToFront(el)
		lineBufPool.Put(buf)
		return
	}
	for c.order.Len() >= c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		ent := tail.Value.(*lineCacheEnt)
		delete(c.entries, ent.key)
		lineBufPool.Put(ent.line)
		st.evictions.Add(1)
	}
	c.entries[key] = c.order.PushFront(&lineCacheEnt{key: key, line: buf})
}

// len reports the resident entry count (tests and healthz).
func (c *lineCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
