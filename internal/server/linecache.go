package server

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// defaultLineCacheLines bounds the decoded-line cache when the Config
// leaves it unset: 4096 lines × 32 decoded bytes = 128 KiB of payload,
// a few multiples of that with keys and list overhead.
const defaultLineCacheLines = 4096

// lineCacheKey identifies one decoded line. The coder id pins the code
// tables, the block address distinguishes identical stored bytes at
// different image positions (cheap invalidation when images diverge),
// and the FNV-64a content hash plus stored length tie the entry to the
// exact compressed bytes so a stale client resubmitting edited blocks
// can never receive another block's expansion.
type lineCacheKey struct {
	coderID string
	addr    int
	hash    uint64
	n       int
}

// lineCacheStats is a per-request delta, applied to the metrics registry
// under metricsMu by the caller (registry instruments are
// single-threaded by design).
type lineCacheStats struct {
	hits, misses, evictions uint64
}

// lineCache is a bounded LRU of decoded cache lines — the daemon-side
// twin of the simulator's instruction cache: hot lines skip Huffman
// decode entirely, mirroring how CCRP only pays the decompression
// latency on cache misses.
type lineCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *lineCacheEnt
	entries map[lineCacheKey]*list.Element
}

type lineCacheEnt struct {
	key  lineCacheKey
	line []byte
}

// newLineCache returns a cache bounded to capLines entries, or nil when
// capLines < 0 (caching disabled); nil receivers are safe no-ops.
func newLineCache(capLines int) *lineCache {
	if capLines < 0 {
		return nil
	}
	if capLines == 0 {
		capLines = defaultLineCacheLines
	}
	return &lineCache{
		cap:     capLines,
		order:   list.New(),
		entries: make(map[lineCacheKey]*list.Element),
	}
}

// lineKey hashes one stored block into its cache key.
func lineKey(coderID string, addr int, stored []byte) lineCacheKey {
	h := fnv.New64a()
	h.Write(stored)
	return lineCacheKey{coderID: coderID, addr: addr, hash: h.Sum64(), n: len(stored)}
}

// get returns the cached decoded line, promoting it to most recent. The
// returned slice is shared — callers must not mutate it.
func (c *lineCache) get(key lineCacheKey, st *lineCacheStats) ([]byte, bool) {
	if c == nil {
		st.misses++
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		st.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	st.hits++
	return el.Value.(*lineCacheEnt).line, true
}

// put inserts a decoded line, evicting from the LRU tail when full. The
// cache takes ownership of line.
func (c *lineCache) put(key lineCacheKey, line []byte, st *lineCacheStats) {
	if c == nil || c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key decodes to the same bytes (the key covers the coder and
		// the stored content); just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*lineCacheEnt).key)
		st.evictions++
	}
	c.entries[key] = c.order.PushFront(&lineCacheEnt{key: key, line: line})
}

// len reports the resident entry count (tests and healthz).
func (c *lineCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
