package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"sort"

	"ccrp/internal/codepack"
	"ccrp/internal/core"
	"ccrp/internal/experiments"
	"ccrp/internal/huffman"
	"ccrp/internal/sweep"
	"ccrp/internal/tracing"
	"ccrp/internal/workload"
)

// Coder kinds accepted by POST /v1/coders.
const (
	KindHuffman     = "huffman"     // traditional (unbounded) byte-Huffman code
	KindBounded     = "bounded"     // length-limited byte-Huffman code (package-merge)
	KindPreselected = "preselected" // the paper's corpus-trained 16-bit-bounded code
	KindCodePack    = "codepack"    // halfword-dictionary coder (IBM CodePack lineage)
)

// coderEntry is one trained coder held by the registry. Entries are
// immutable after construction, so concurrent requests share them freely.
type coderEntry struct {
	ID          string
	Kind        string
	Bound       int
	CorpusBytes int
	codes       []*huffman.Code // byte-Huffman kinds
	codec       core.LineCodec  // codepack
}

// coderInfo is the wire shape describing a coder.
type coderInfo struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Bound       int    `json:"bound,omitempty"`
	CorpusBytes int    `json:"corpus_bytes"`
	MaxCodeLen  int    `json:"max_code_len,omitempty"` // longest codeword, bits
	TableBits   int    `json:"table_bits,omitempty"`   // serialized code-table cost
	DictBytes   int    `json:"dict_bytes,omitempty"`   // codepack dictionary cost
	Cached      bool   `json:"cached"`                 // true when this request hit the cache
}

func (e *coderEntry) info(cached bool) coderInfo {
	info := coderInfo{
		ID: e.ID, Kind: e.Kind, Bound: e.Bound,
		CorpusBytes: e.CorpusBytes, Cached: cached,
	}
	if len(e.codes) > 0 {
		info.MaxCodeLen = e.codes[0].MaxLen()
		info.TableBits = e.codes[0].TableBits()
	}
	if cp, ok := e.codec.(*codepack.Coder); ok {
		info.DictBytes = cp.DictionaryBytes()
	}
	return info
}

// trainRequest is the POST /v1/coders body. The corpus is the union of
// inline base64 images and named corpus workloads; "preselected" needs
// neither (its corpus is fixed by the paper).
type trainRequest struct {
	Kind      string   `json:"kind"`
	Bound     int      `json:"bound,omitempty"`      // bounded only; default 16
	CorpusB64 []string `json:"corpus_b64,omitempty"` // raw text images, base64
	Workloads []string `json:"workloads,omitempty"`  // corpus programs by name
}

// decodeRequest parses a JSON body into v with unknown-field rejection,
// mapping failures onto the error taxonomy. The parse runs under a
// decode_body span so JSON cost is attributable per request.
func decodeRequest(r *http.Request, v any) error {
	sp := tracing.FromContext(r.Context()).Child(StageDecodeBody)
	defer sp.End()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		sp.SetError(err)
		if _, ok := err.(*http.MaxBytesError); ok {
			return err // let asAPIError map it to 413
		}
		if err == io.EOF {
			return errBadRequest("empty request body")
		}
		return errBadRequest("invalid JSON body: %v", err)
	}
	return nil
}

// gatherCorpus resolves the training corpus of a request.
func gatherCorpus(req *trainRequest) ([][]byte, error) {
	var corpus [][]byte
	for i, enc := range req.CorpusB64 {
		img, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return nil, errBadRequest("corpus_b64[%d]: invalid base64: %v", i, err)
		}
		corpus = append(corpus, img)
	}
	for _, name := range req.Workloads {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, Errf(http.StatusNotFound, CodeNotFound,
				"unknown workload %q (have %v)", name, workload.Names())
		}
		text, err := w.Text()
		if err != nil {
			return nil, errUnprocessable("workload %q failed to build: %v", name, err)
		}
		corpus = append(corpus, text)
	}
	return corpus, nil
}

// coderKey derives the content-addressed cache key (and id) of a train
// request: kind, bound, and the corpus content. Identical corpora train
// once no matter how they were supplied.
func coderKey(kind string, bound int, corpus [][]byte) string {
	parts := []any{"coder", kind, bound}
	hashes := make([]string, len(corpus))
	for i, img := range corpus {
		hashes[i] = sweep.HashBytes(img)
	}
	// Corpus order does not change the trained histograms' union, but it
	// does change multi-image hashing; sort so semantically identical
	// requests share a key.
	sort.Strings(hashes)
	for _, h := range hashes {
		parts = append(parts, h)
	}
	return sweep.Key(parts...)
}

// buildCoder trains the coder for a validated request.
func buildCoder(id, kind string, bound int, corpus [][]byte) (*coderEntry, error) {
	total := 0
	for _, img := range corpus {
		total += len(img)
	}
	e := &coderEntry{ID: id, Kind: kind, Bound: bound, CorpusBytes: total}
	switch kind {
	case KindPreselected:
		code, err := experiments.PreselectedCode()
		if err != nil {
			return nil, err
		}
		e.codes = []*huffman.Code{code}
	case KindHuffman, KindBounded:
		h := huffman.HistogramOf(corpus...)
		// Smooth so every byte value stays encodable: a service coder
		// must compress images beyond its training corpus without
		// falling back to raw storage on unseen bytes.
		h = h.Smooth()
		var code *huffman.Code
		var err error
		if kind == KindBounded {
			code, err = huffman.BuildBounded(h, bound)
		} else {
			code, err = huffman.BuildTraditional(h)
		}
		if err != nil {
			return nil, errUnprocessable("training %s code: %v", kind, err)
		}
		e.codes = []*huffman.Code{code}
	case KindCodePack:
		coder, err := codepack.Train(corpus...)
		if err != nil {
			return nil, errUnprocessable("training codepack coder: %v", err)
		}
		e.codec = coder
	default:
		return nil, errBadRequest("unknown coder kind %q (have %s, %s, %s, %s)",
			kind, KindHuffman, KindBounded, KindPreselected, KindCodePack)
	}
	return e, nil
}

// normalizeTrain validates a train request, resolves its corpus, and
// derives the content-addressed cache key and public coder id. Shared
// by the train handler and the router's route-key derivation, so the
// gateway and the backend agree byte-for-byte on which node owns the
// coder a train request will produce.
func normalizeTrain(req *trainRequest) (key, id string, corpus [][]byte, err error) {
	if req.Kind == "" {
		return "", "", nil, errBadRequest("missing coder kind")
	}
	if req.Bound == 0 {
		req.Bound = experiments.HuffmanBound
	}
	if req.Bound < 1 || req.Bound > 64 {
		return "", "", nil, errBadRequest("bound %d outside [1, 64]", req.Bound)
	}
	if req.Kind != KindBounded {
		req.Bound = 0 // bound is a bounded-only knob; normalize the key
	}
	corpus, err = gatherCorpus(req)
	if err != nil {
		return "", "", nil, err
	}
	if len(corpus) == 0 && req.Kind != KindPreselected {
		return "", "", nil, errBadRequest("training a %q coder requires corpus_b64 or workloads", req.Kind)
	}
	key = coderKey(req.Kind, req.Bound, corpus)
	return key, sweep.HashBytes([]byte(key)), corpus, nil
}

func (s *Server) handleTrainCoder(w http.ResponseWriter, r *http.Request) error {
	var req trainRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	key, id, corpus, err := normalizeTrain(&req)
	if err != nil {
		return err
	}

	s.codersMu.Lock()
	_, cached := s.coders[id]
	s.codersMu.Unlock()

	sp := tracing.FromContext(r.Context()).Child(StageCoderTrain)
	sp.SetAttr("kind", req.Kind)
	sp.SetAttr("coder", id)
	entry, err := s.trainCoderCached(sp, key, id, req.Kind, req.Bound, corpus)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return err
	}
	sp.End()

	traceJSON(w, r, entry.info(cached))
	return nil
}

// trainCoderCached resolves (or builds) a trained coder through the
// artifact cache's persisted path: memory first, then the disk store,
// then a real build that is written through. Either way the entry is
// registered under its id for later requests. sp may be the nil span.
func (s *Server) trainCoderCached(sp *tracing.Span, key, id, kind string, bound int, corpus [][]byte) (*coderEntry, error) {
	entry, err := sweep.GetStored(s.cache, key, coderCodec, func() (*coderEntry, error) {
		s.metricsMu.Lock()
		s.inst.builds.Inc()
		s.metricsMu.Unlock()
		sp.SetAttrInt("built", 1) // this request ran the build, not a cache/store hit
		return buildCoder(id, kind, bound, corpus)
	})
	if err != nil {
		return nil, err
	}
	s.codersMu.Lock()
	s.coders[id] = entry
	s.codersMu.Unlock()
	return entry, nil
}

func (s *Server) handleGetCoder(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	entry, err := s.resolveCoder(r.Context(), id)
	if err != nil {
		return err
	}
	traceJSON(w, r, entry.info(true))
	return nil
}

// coderByID resolves a coder id registered earlier in this process.
func (s *Server) coderByID(id string) (*coderEntry, error) {
	s.codersMu.Lock()
	entry, ok := s.coders[id]
	s.codersMu.Unlock()
	if !ok {
		return nil, Errf(http.StatusNotFound, CodeNotFound,
			"unknown coder id %q (train it with POST /v1/coders)", id)
	}
	return entry, nil
}

// resolveCoder is coderByID under a coder_resolve span, the instrumented
// path the request handlers share. A registry miss falls back to the
// disk store before 404ing: when fleet members share a store, a coder
// trained through one node resolves on any peer — which is what lets a
// router fail a coder's traffic over to the ring successor without the
// client ever seeing "unknown coder".
func (s *Server) resolveCoder(ctx context.Context, id string) (*coderEntry, error) {
	sp := tracing.FromContext(ctx).Child(StageCoderGet)
	defer sp.End()
	entry, err := s.coderByID(id)
	if err != nil {
		if restored, ok := s.coderFromStore(id); ok {
			sp.SetAttrInt("store_restored", 1)
			return restored, nil
		}
		sp.SetError(err)
	}
	return entry, err
}

// romOptions builds the core compression options for a coder.
func (e *coderEntry) romOptions(wordAligned bool) core.Options {
	return core.Options{Codes: e.codes, Codec: e.codec, WordAligned: wordAligned}
}

// serializable reports whether the coder's ROMs can be written as CROM
// files (codec tables live outside the ROM format).
func (e *coderEntry) serializable() bool { return e.codec == nil }
