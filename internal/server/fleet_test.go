// Tests for the fleet-facing half of the server: readiness vs
// liveness across a drain, the /v1/artifacts catalogue, route-key
// derivation, and shared-store coder resolution across nodes.
package server

import (
	"io"
	"net/http"
	"testing"

	"ccrp/internal/sweep"
)

// TestReadyzDrainTransition pins the probe split the router's health
// checker depends on: before drain both probes answer 200; after
// BeginDrain, /readyz is 503 (out of rotation) while /healthz stays 200
// (the process is alive, finishing in-flight work) and the API still
// serves.
func TestReadyzDrainTransition(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d %s, want 200", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", code)
	}

	s.BeginDrain()

	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after BeginDrain: %d %s, want 503", code, body)
	}
	rb := decodeAs[readyzBody](t, body)
	if rb.Status != "draining" {
		t.Errorf("readyz body status = %q, want draining", rb.Status)
	}
	// Liveness and the API itself are unaffected by the readiness flip.
	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after BeginDrain: %d, want 200 for the whole drain window", code)
	}
	if hb := decodeAs[healthzBody](t, body); !hb.Draining {
		t.Error("healthz body does not report draining")
	}
	id := trainPreselected(t, ts.URL)
	if resp, b := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compress during drain: %d %s, want in-flight work to keep serving", resp.StatusCode, b)
	}
	if !s.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
}

// TestArtifactsEndpoint: a store-backed node lists its artifacts with
// ids, kinds, sizes, and mtimes, updates the ccrpd_store_bytes gauge,
// and a storeless node answers an empty catalogue rather than erroring.
func TestArtifactsEndpoint(t *testing.T) {
	store, err := sweep.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: store})
	id := trainPreselected(t, ts.URL)
	if resp, b := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, b)
	}

	resp, body := getURL(t, ts.URL+"/v1/artifacts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifacts: %d %s", resp.StatusCode, body)
	}
	out := decodeAs[artifactsResponse](t, body)
	if !out.Store {
		t.Error("store-backed node reports store=false")
	}
	// One coder + one ROM artifact from the compress.
	kinds := map[string]int{}
	var coderID string
	for _, a := range out.Artifacts {
		kinds[a.Kind]++
		if a.Size <= 0 {
			t.Errorf("artifact %s has size %d, want > 0", a.ID, a.Size)
		}
		if a.MTime.IsZero() {
			t.Errorf("artifact %s has no mtime", a.ID)
		}
		if a.Kind == artifactClassCoder {
			coderID = a.ID
		}
	}
	if kinds[artifactClassCoder] != 1 || kinds[artifactClassROM] != 1 {
		t.Fatalf("artifact kinds = %v, want 1 coder + 1 rom", kinds)
	}
	// The coder artifact's public id IS the coder id clients hold.
	if coderID != id {
		t.Errorf("coder artifact id = %s, want the trained coder id %s", coderID, id)
	}
	if out.TotalBytes <= 0 {
		t.Errorf("total_bytes = %d, want > 0", out.TotalBytes)
	}
	if got := counterValue(t, s, "ccrpd_store_bytes"); got == "0" {
		t.Error("ccrpd_store_bytes gauge is 0 after listing a populated store")
	}

	// Storeless node: empty catalogue, not an error.
	_, ts2 := newTestServer(t, Config{})
	resp, body = getURL(t, ts2.URL+"/v1/artifacts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("storeless artifacts: %d %s", resp.StatusCode, body)
	}
	out2 := decodeAs[artifactsResponse](t, body)
	if out2.Store || len(out2.Artifacts) != 0 {
		t.Errorf("storeless catalogue = %+v, want empty with store=false", out2)
	}
}

// getURL GETs and reads one URL.
func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSharedStoreCoderResolution is the failover contract: two nodes
// over one artifact store, a coder trained through node A, and node B —
// which has never seen the id — resolves it lazily from the store
// instead of 404ing, without retraining. This is what lets a router
// send a dead node's coder traffic to the ring successor mid-run.
func TestSharedStoreCoderResolution(t *testing.T) {
	dir := t.TempDir()
	storeA, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, tsA := newTestServer(t, Config{Store: storeA})
	sB, tsB := newTestServer(t, Config{Store: storeB})

	// Train through A only.
	id := trainPreselected(t, tsA.URL)
	respA, bodyA := postJSON(t, tsA.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("compress via A: %d %s", respA.StatusCode, bodyA)
	}

	// B never trained it; resolution falls through to the shared store.
	respB, bodyB := postJSON(t, tsB.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("compress via B: %d %s, want the coder restored from the shared store", respB.StatusCode, bodyB)
	}
	outA := decodeAs[compressResponse](t, bodyA)
	outB := decodeAs[compressResponse](t, bodyB)
	if outA.BlocksB64 != outB.BlocksB64 || outA.ROMB64 != outB.ROMB64 {
		t.Fatal("node B's output differs from node A's for the same coder id")
	}
	if got := counterValue(t, sB, "ccrpd_coder_builds_total"); got != "0" {
		t.Errorf("node B ran %s builds, want 0 (store restore, not retrain)", got)
	}
	if got := counterValue(t, sB, "ccrpd_store_hits_total"); got == "0" {
		t.Error("node B recorded no store hit for the restored coder")
	}

	// A genuinely unknown id still 404s after the store fallback.
	resp, body := postJSON(t, tsB.URL+"/v1/compress", compressRequest{
		CoderID: "00000000deadbeef00000000deadbeef00000000deadbeef00000000deadbeef", Workload: "eightq"})
	wantError(t, resp, body, http.StatusNotFound, CodeNotFound)
}

// TestRouteKey pins the gateway's key derivation against the backend's
// own id logic for every routed shape.
func TestRouteKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)

	t.Run("train routes to the coder it will produce", func(t *testing.T) {
		key, kind := RouteKey(http.MethodPost, "/v1/coders", []byte(`{"kind":"preselected"}`))
		if kind != RouteKeyCoder || key != id {
			t.Fatalf("RouteKey(train) = (%s, %s), want the trained id (%s, coder)", key, kind, id)
		}
	})

	t.Run("coder_id bodies route by coder id", func(t *testing.T) {
		for _, path := range []string{"/v1/compress", "/v1/decompress", "/v1/compress:batch"} {
			key, kind := RouteKey(http.MethodPost, path, []byte(`{"coder_id":"abc123"}`))
			if kind != RouteKeyCoder || key != "abc123" {
				t.Errorf("RouteKey(%s) = (%s, %s), want (abc123, coder)", path, key, kind)
			}
		}
		key, kind := RouteKey(http.MethodPost, "/v1/decompress:batch",
			[]byte(`{"items":[{"coder_id":"abc123"},{"coder_id":"other"}]}`))
		if kind != RouteKeyCoder || key != "abc123" {
			t.Errorf("RouteKey(decompress:batch) = (%s, %s), want the first item's coder", key, kind)
		}
	})

	t.Run("coder path routes by path id", func(t *testing.T) {
		key, kind := RouteKey(http.MethodGet, "/v1/coders/deadbeef", nil)
		if kind != RouteKeyCoder || key != "deadbeef" {
			t.Errorf("RouteKey(GET coder) = (%s, %s)", key, kind)
		}
	})

	t.Run("keyless traffic hashes stably", func(t *testing.T) {
		k1, kind1 := RouteKey(http.MethodPost, "/v1/simulate", []byte(`{"workload":"eightq"}`))
		k2, _ := RouteKey(http.MethodPost, "/v1/simulate", []byte(`{"workload":"eightq"}`))
		k3, _ := RouteKey(http.MethodPost, "/v1/simulate", []byte(`{"workload":"towers"}`))
		if kind1 != RouteKeyHash {
			t.Errorf("simulate kind = %s, want hash", kind1)
		}
		if k1 != k2 {
			t.Error("identical keyless requests derived different keys")
		}
		if k1 == k3 {
			t.Error("different keyless requests collided")
		}
		// Malformed bodies still route.
		if k, _ := RouteKey(http.MethodPost, "/v1/compress", []byte(`{`)); k == "" {
			t.Error("malformed body produced an empty key")
		}
	})
}
