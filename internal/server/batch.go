// Batch endpoints: POST /v1/compress:batch and /v1/decompress:batch
// process N blocks in one HTTP round trip. BENCH_PR3 measured a 327 ms
// roundtrip p95 against 46 ms for the compress work itself — per-request
// HTTP+JSON overhead — so batching is the serving-side analogue of
// CRAM-style amortization: pay the fixed cost once, stream the items.
//
// Batch semantics: request-level problems (bad JSON, unknown coder, too
// many items) fail the whole request through the normal error taxonomy;
// item-level problems are reported per item, and the items around a
// failed one still succeed. Each item runs under a batch_item span with
// the same stage children as its single-request twin, so ccrp-spans
// decomposes batched traffic with the same vocabulary.
package server

import (
	"context"
	"encoding/base64"
	"net/http"

	"ccrp/internal/tracing"
)

// compressBatchRequest is the POST /v1/compress:batch body: one coder,
// N text sources.
type compressBatchRequest struct {
	CoderID     string              `json:"coder_id"`
	WordAligned bool                `json:"word_aligned,omitempty"`
	Items       []compressBatchItem `json:"items"`
}

// compressBatchItem is one text source, same rules as /v1/compress.
type compressBatchItem struct {
	TextB64  string `json:"text_b64,omitempty"`
	Workload string `json:"workload,omitempty"`
}

// batchCompressed is one item's outcome: exactly one of Result or Error
// is set.
type batchCompressed struct {
	Result *compressResponse `json:"result,omitempty"`
	Error  *APIError         `json:"error,omitempty"`
}

// compressBatchResponse reports every item in request order.
type compressBatchResponse struct {
	Items  []batchCompressed `json:"items"`
	Errors int               `json:"errors"`
}

// checkBatchSize validates an item count against the configured bound.
func (s *Server) checkBatchSize(n int) error {
	if n == 0 {
		return errBadRequest("items is required and must not be empty")
	}
	if n > s.cfg.MaxBatchItems {
		return errBadRequest("batch of %d items exceeds the %d-item limit", n, s.cfg.MaxBatchItems)
	}
	return nil
}

// batchItemCtx opens the per-item span and rebinds the context so the
// item's stage children hang off it. Callers must End the span.
func batchItemCtx(ctx context.Context, i int) (context.Context, *tracing.Span) {
	sp := tracing.FromContext(ctx).Child(StageBatchItem)
	sp.SetAttrInt("item", int64(i))
	return tracing.ContextWith(ctx, sp), sp
}

// batchItemErr normalizes an item failure, mapping an expired request
// deadline onto the 408 taxonomy entry so trailing items of a slow batch
// are reported as such rather than as opaque internals.
func batchItemErr(ctx context.Context, i int, err error) *APIError {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return Errf(http.StatusRequestTimeout, CodeDeadlineExceeded,
			"batch deadline exceeded at item %d", i)
	}
	return asAPIError(err)
}

func (s *Server) handleCompressBatch(w http.ResponseWriter, r *http.Request) error {
	var req compressBatchRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	if err := s.checkBatchSize(len(req.Items)); err != nil {
		return err
	}
	if req.CoderID == "" {
		return errBadRequest("missing coder_id (train one with POST /v1/coders)")
	}
	// The coder is shared by every item: an unknown id fails the batch,
	// not N items individually.
	entry, err := s.resolveCoder(r.Context(), req.CoderID)
	if err != nil {
		return err
	}

	ctx := r.Context()
	resp := compressBatchResponse{Items: make([]batchCompressed, len(req.Items))}
	var textBytes uint64
	for i, item := range req.Items {
		ictx, sp := batchItemCtx(ctx, i)
		out, err := s.compressBatchItem(ictx, entry, req.CoderID, item, req.WordAligned)
		if err != nil {
			api := batchItemErr(ctx, i, err)
			sp.SetError(api)
			resp.Items[i] = batchCompressed{Error: api}
			resp.Errors++
		} else {
			resp.Items[i] = batchCompressed{Result: out}
			textBytes += uint64(out.OriginalBytes)
		}
		sp.End()
	}

	s.metricsMu.Lock()
	s.inst.bytesIn.Add(textBytes)
	s.inst.batchItems.Add(uint64(len(req.Items)))
	s.inst.batchItemErrors.Add(uint64(resp.Errors))
	s.metricsMu.Unlock()

	traceJSON(w, r, resp)
	return nil
}

// compressBatchItem runs one item through the same resolve/build path as
// the single endpoint.
func (s *Server) compressBatchItem(ctx context.Context, entry *coderEntry, coderID string, item compressBatchItem, wordAligned bool) (*compressResponse, error) {
	text, err := s.resolveText(ctx, item.TextB64, item.Workload)
	if err != nil {
		return nil, err
	}
	rom, err := s.buildROM(ctx, entry, text, wordAligned)
	if err != nil {
		return nil, err
	}
	return compressResult(entry, coderID, rom)
}

// decompressBatchRequest is the POST /v1/decompress:batch body: N
// independent decompress payloads (each a CROM image or
// coder_id+blocks+lines, same rules as /v1/decompress).
type decompressBatchRequest struct {
	Items []decompressRequest `json:"items"`
}

// batchDecompressed is one item's outcome.
type batchDecompressed struct {
	Result *decompressResponse `json:"result,omitempty"`
	Error  *APIError           `json:"error,omitempty"`
}

type decompressBatchResponse struct {
	Items  []batchDecompressed `json:"items"`
	Errors int                 `json:"errors"`
}

func (s *Server) handleDecompressBatch(w http.ResponseWriter, r *http.Request) error {
	var req decompressBatchRequest
	if err := decodeRequest(r, &req); err != nil {
		return err
	}
	if err := s.checkBatchSize(len(req.Items)); err != nil {
		return err
	}

	ctx := r.Context()
	resp := decompressBatchResponse{Items: make([]batchDecompressed, len(req.Items))}
	var bytesOut uint64
	for i := range req.Items {
		ictx, sp := batchItemCtx(ctx, i)
		text, err := s.decompressOne(ictx, &req.Items[i])
		if err != nil {
			api := batchItemErr(ctx, i, err)
			sp.SetError(api)
			resp.Items[i] = batchDecompressed{Error: api}
			resp.Errors++
		} else {
			resp.Items[i] = batchDecompressed{Result: &decompressResponse{
				TextB64:       base64.StdEncoding.EncodeToString(text),
				OriginalBytes: len(text),
			}}
			bytesOut += uint64(len(text))
		}
		sp.End()
	}

	s.metricsMu.Lock()
	s.inst.bytesOut.Add(bytesOut)
	s.inst.batchItems.Add(uint64(len(req.Items)))
	s.inst.batchItemErrors.Add(uint64(resp.Errors))
	s.metricsMu.Unlock()

	traceJSON(w, r, resp)
	return nil
}
