package server

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccrp/internal/codepack"
	"ccrp/internal/core"
	"ccrp/internal/sweep"
)

// counterValue reads one named counter from the registry's Prometheus
// exposition — the same surface scripts/persist_smoke.sh asserts on.
func counterValue(t *testing.T, s *Server, name string) string {
	t.Helper()
	var buf bytes.Buffer
	s.metricsMu.Lock()
	err := s.registry.WritePrometheus(&buf)
	s.metricsMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s not exported", name)
	return ""
}

// TestCoderEntryCodecRoundTrip: every coder kind survives the store
// codec with behavior intact.
func TestCoderEntryCodecRoundTrip(t *testing.T) {
	corpus := [][]byte{[]byte(strings.Repeat("the quick brown fox eats compressed instructions ", 40))}
	line := make([]byte, 32)
	copy(line, corpus[0])
	for _, kind := range []string{KindHuffman, KindBounded, KindPreselected, KindCodePack} {
		t.Run(kind, func(t *testing.T) {
			bound := 0
			if kind == KindBounded {
				bound = 14
			}
			c := corpus
			if kind == KindPreselected {
				c = nil
			}
			key := coderKey(kind, bound, c)
			orig, err := buildCoder(sweep.HashBytes([]byte(key)), kind, bound, c)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := encodeCoderEntry(orig)
			if err != nil {
				t.Fatal(err)
			}
			back, err := decodeCoderEntry(blob)
			if err != nil {
				t.Fatal(err)
			}
			if back.ID != orig.ID || back.Kind != orig.Kind ||
				back.Bound != orig.Bound || back.CorpusBytes != orig.CorpusBytes {
				t.Fatalf("restored entry metadata differs: %+v vs %+v", back, orig)
			}
			if kind == KindCodePack {
				if _, ok := back.codec.(*codepack.Coder); !ok {
					t.Fatalf("restored codec is %T", back.codec)
				}
				enc, err := orig.codec.EncodeLine(line)
				if err != nil {
					t.Fatal(err)
				}
				dec := make([]byte, core.LineSize)
				if err := back.decodeLineInto(dec, enc); err != nil || !bytes.Equal(dec, line) {
					t.Fatalf("restored codepack decode = (%x, %v), want original line", dec, err)
				}
				return
			}
			if orig.codes[0].Lengths() != back.codes[0].Lengths() {
				t.Fatal("restored code lengths differ")
			}
		})
	}

	t.Run("garbage", func(t *testing.T) {
		if _, err := decodeCoderEntry([]byte("not gob")); err == nil {
			t.Fatal("decodeCoderEntry accepted garbage")
		}
	})
}

// TestWarmStartServesWithoutRetraining is the restart-survival property
// end to end: train on daemon A with a store, boot daemon B on the same
// store, and B must serve the coder id — and identical compressed bytes
// — with zero coder builds.
func TestWarmStartServesWithoutRetraining(t *testing.T) {
	dir := t.TempDir()
	store, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First life: train two coders and compress a workload.
	s1, ts1 := newTestServer(t, Config{Store: store})
	id := trainPreselected(t, ts1.URL)
	resp, body := postJSON(t, ts1.URL+"/v1/coders", trainRequest{Kind: KindCodePack, Workloads: []string{"eightq"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train codepack: %d %s", resp.StatusCode, body)
	}
	cpID := decodeAs[coderInfo](t, body).ID
	resp, body = postJSON(t, ts1.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	first := decodeAs[compressResponse](t, body)
	if got := counterValue(t, s1, "ccrpd_coder_builds_total"); got != "2" {
		t.Fatalf("first life built %s coders, want 2", got)
	}
	if counterValue(t, s1, "ccrpd_store_writes_total") == "0" {
		t.Fatal("first life persisted nothing")
	}
	ts1.Close()

	// Second life: same store, fresh process.
	store2, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Store: store2})
	n, err := s2.WarmStart(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("warm start registered %d coders, want 2", n)
	}

	// The ids resolve without retraining.
	for _, cid := range []string{id, cpID} {
		resp, body := postJSON(t, ts2.URL+"/v1/compress", compressRequest{CoderID: cid, Workload: "eightq"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm compress with %s: %d %s", cid, resp.StatusCode, body)
		}
	}
	// Retraining the same corpus is a store/cache hit, not a build.
	if got := trainPreselected(t, ts2.URL); got != id {
		t.Fatalf("retrained coder id %s, want %s", got, id)
	}
	resp, body = postJSON(t, ts2.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm compress: %d %s", resp.StatusCode, body)
	}
	second := decodeAs[compressResponse](t, body)
	if first.ROMB64 != second.ROMB64 || first.BlocksB64 != second.BlocksB64 {
		t.Fatal("compressed bytes differ across a restart")
	}
	if got := counterValue(t, s2, "ccrpd_coder_builds_total"); got != "0" {
		t.Fatalf("second life built %s coders, want 0", got)
	}
	if got := counterValue(t, s2, "ccrpd_store_warm_coders"); got != "2" {
		t.Fatalf("warm gauge = %s, want 2", got)
	}
}

// TestWarmStartSkipsCorruptArtifacts: a damaged store entry is counted,
// skipped, and rebuilt on demand — never served.
func TestWarmStartSkipsCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	store, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: store})
	id := trainPreselected(t, ts1.URL)
	ts1.Close()

	// Flip one byte in every stored artifact.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, ent := range ents {
		path := filepath.Join(dir, ent.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("store is empty; nothing was persisted")
	}

	store2, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Store: store2})
	if n, err := s2.WarmStart(context.Background()); err != nil || n != 0 {
		t.Fatalf("warm start over a corrupt store = (%d, %v), want (0, nil)", n, err)
	}
	if got := counterValue(t, s2, "ccrpd_store_corrupt_total"); got == "0" {
		t.Fatal("corruption was not counted")
	}
	// Training again rebuilds (build counter moves) and repairs the store.
	if got := trainPreselected(t, ts2.URL); got != id {
		t.Fatalf("rebuilt coder id %s, want %s", got, id)
	}
	if got := counterValue(t, s2, "ccrpd_coder_builds_total"); got != "1" {
		t.Fatalf("rebuild count = %s, want 1", got)
	}
}
