package server

import (
	"bytes"
	"encoding/base64"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestLineCacheLRU(t *testing.T) {
	c := newLineCache(2)
	var st lineCacheStats
	k1 := lineKey("c", 0, []byte{1})
	k2 := lineKey("c", 1, []byte{2})
	k3 := lineKey("c", 2, []byte{3})

	dst := make([]byte, 1)
	if ok := c.get(k1, dst, &st); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(k1, []byte("a"), &st)
	c.put(k2, []byte("b"), &st)
	if ok := c.get(k1, dst, &st); !ok || string(dst) != "a" {
		t.Fatalf("get k1 = %q, %v", dst, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.put(k3, []byte("c"), &st)
	if ok := c.get(k2, dst, &st); ok {
		t.Fatal("k2 survived eviction from a size-2 LRU")
	}
	if ok := c.get(k1, dst, &st); !ok {
		t.Fatal("most-recent k1 was evicted")
	}
	if got := st.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if st.hits.Load() != 2 || st.misses.Load() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.hits.Load(), st.misses.Load())
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLineCacheKeyDiscriminates(t *testing.T) {
	base := lineKey("coder-a", 3, []byte{1, 2, 3})
	for name, other := range map[string]lineCacheKey{
		"coder":   lineKey("coder-b", 3, []byte{1, 2, 3}),
		"address": lineKey("coder-a", 4, []byte{1, 2, 3}),
		"content": lineKey("coder-a", 3, []byte{1, 2, 4}),
		"length":  lineKey("coder-a", 3, []byte{1, 2, 3, 0}),
	} {
		if other == base {
			t.Errorf("key ignores the %s component", name)
		}
	}
}

func TestLineCacheDisabledAndNil(t *testing.T) {
	var st lineCacheStats
	c := newLineCache(-1)
	if c != nil {
		t.Fatal("negative capacity should disable the cache")
	}
	c.put(lineKey("c", 0, nil), []byte("x"), &st)
	if ok := c.get(lineKey("c", 0, nil), make([]byte, 1), &st); ok {
		t.Fatal("nil cache reported a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache reports residents")
	}
}

// TestDecompressLineCacheMetrics drives /v1/decompress twice with the
// same payload and reads the hit counters back through /metrics — the
// acceptance path ccrp-load exercises against a live daemon.
func TestDecompressLineCacheMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)

	text := bytes.Repeat([]byte("line cache payload: compressible text. "), 16)
	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{
		CoderID: id, TextB64: base64.StdEncoding.EncodeToString(text)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)

	var first, second decompressResponse
	for i, out := range []*decompressResponse{&first, &second} {
		resp, body = postJSON(t, ts.URL+"/v1/decompress", decompressRequest{
			CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decompress %d: %d %s", i, resp.StatusCode, body)
		}
		*out = decodeAs[decompressResponse](t, body)
	}
	if first.TextB64 != second.TextB64 {
		t.Fatal("cached decompression is not byte-identical to the cold one")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(prom)
	for _, want := range []string{
		"ccrpd_linecache_hits_total",
		"ccrpd_linecache_misses_total",
		"ccrpd_linecache_evictions_total",
		"ccrpd_linecache_resident_lines",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
	// The second request must have hit for every compressed line.
	compressed := 0
	for _, l := range comp.Lines {
		if !l.Raw {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatal("test payload compressed no lines; cache path untested")
	}
	hits := promValue(t, metricsText, "ccrpd_linecache_hits_total")
	misses := promValue(t, metricsText, "ccrpd_linecache_misses_total")
	if hits < float64(compressed) {
		t.Errorf("hits = %v, want >= %d (one per compressed line on the warm pass)", hits, compressed)
	}
	if misses < float64(compressed) {
		t.Errorf("misses = %v, want >= %d (one per compressed line on the cold pass)", misses, compressed)
	}
}

// promValue extracts a sample value from Prometheus text exposition.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("/metrics lacks a sample for %s", name)
	return 0
}
