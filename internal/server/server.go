// Package server implements ccrpd, the compression-and-simulation
// service: the paper's host-side toolchain (train a coder, compress a
// program line by line, predict execution cost) exposed as a long-running
// HTTP/JSON daemon instead of one-shot CLIs.
//
// The service layers directly over the existing engine:
//
//   - POST /v1/coders trains or fetches a coder (huffman | bounded |
//     preselected | codepack) from an uploaded corpus. Coders are built
//     through the content-addressed single-flight artifact cache from
//     internal/sweep, so concurrent identical requests share one build
//     and a retrained coder is byte-for-byte the CLI's.
//   - POST /v1/compress and /v1/decompress run block-bounded line
//     compression of whole text images, returning LAT-ready per-line
//     lengths, the compression ratio, and (for Huffman coders) the
//     serialized CROM image — byte-identical to cmd/ccpack's output.
//   - POST /v1/simulate runs one core.Config point through the
//     trace-driven system simulator under a bounded worker pool with a
//     per-request deadline.
//   - GET /healthz, GET /metrics (Prometheus text format via
//     internal/metrics), and /debug/pprof/* provide the operational
//     surface.
//
// Production shape: request-size limits, per-route timeouts, a typed
// JSON error taxonomy (errors.go), panic confinement per request, and
// structured access logs through the internal/metrics event-sink
// machinery. Graceful drain on SIGTERM lives in cmd/ccrpd.
package server

import (
	"context"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccrp/internal/hostinfo"
	"ccrp/internal/metrics"
	"ccrp/internal/sweep"
	"ccrp/internal/tracing"
)

// TraceHeader carries the request's trace id on every response, 2xx and
// error alike, so clients (ccrp-load) can correlate their latency
// outliers with server-side span trees and access-log records.
const TraceHeader = "X-Ccrp-Trace-Id"

// Stage names of the served request path, the per-request analogue of
// the paper's per-fetch cost decomposition: every span ccrpd emits uses
// one of these, and scripts/trace_smoke.sh asserts the full set appears
// under load.
const (
	StageRequest    = "request"         // root span, one per request
	StageDecodeBody = "decode_body"     // JSON body parse
	StageText       = "text_resolve"    // program-image resolution (first touch builds the workload)
	StageCoderGet   = "coder_resolve"   // coder-id lookup
	StageCoderTrain = "coder_train"     // coder build (or artifact-cache hit)
	StageCompress   = "compress"        // block-bounded ROM build
	StageDecompress = "decompress"      // per-line expansion incl. line cache
	StageSimQueue   = "sim_queue"       // waiting for a simulate worker slot
	StageSimRun     = "sim_run"         // trace-driven simulation
	StageEncode     = "encode_response" // response JSON marshalling
	StageStoreLoad  = "store_load"      // boot-time warm start from the artifact store
	StageBatchItem  = "batch_item"      // one item of a :batch request
)

// Config tunes the service. The zero value selects production defaults.
type Config struct {
	// MaxBodyBytes bounds every request body; 0 selects 16 MiB.
	MaxBodyBytes int64
	// SimWorkers bounds concurrent simulation runs; 0 selects NumCPU.
	SimWorkers int
	// DecodeWorkers bounds the per-request parallel line-decode pool used
	// by /v1/decompress and the :batch variant (block-bounded compression
	// makes every 32-byte line independent, so they fan out freely). 0
	// selects GOMAXPROCS; 1 forces sequential decode.
	DecodeWorkers int
	// TrainTimeout, CompressTimeout, and SimulateTimeout are the
	// per-route deadlines; 0 selects 60s / 30s / 120s.
	TrainTimeout    time.Duration
	CompressTimeout time.Duration
	SimulateTimeout time.Duration
	// LineCacheLines bounds the decoded-line LRU cache used by
	// /v1/decompress (entries, each one 32-byte cache line). 0 selects
	// 4096; negative disables caching.
	LineCacheLines int
	// Version is reported by /healthz (cliutil.Version in cmd/ccrpd).
	Version string
	// AccessLog, when set, receives one metrics.EvHTTP event per
	// completed request. The server serializes Emit calls, so a plain
	// JSONLSink is safe.
	AccessLog metrics.EventSink
	// Tracer, when set, records request-scoped spans: a root span per
	// request plus the stage children the handlers emit, with tail
	// capture served on /debug/traces. nil disables span recording; the
	// trace id in responses and access logs is independent of it.
	Tracer *tracing.Tracer
	// Store, when set, persists trained coders and compressed ROM images
	// across restarts: the artifact cache checks it before building and
	// writes through after, and WarmStart re-registers every stored
	// coder on boot (cmd/ccrpd's -store flag). nil keeps the cache
	// memory-only.
	Store sweep.Store
	// MaxBatchItems bounds the item count of one :batch request; 0
	// selects 256.
	MaxBatchItems int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.NumCPU()
	}
	if c.DecodeWorkers <= 0 {
		c.DecodeWorkers = runtime.GOMAXPROCS(0)
	}
	if c.TrainTimeout == 0 {
		c.TrainTimeout = 60 * time.Second
	}
	if c.CompressTimeout == 0 {
		c.CompressTimeout = 30 * time.Second
	}
	if c.SimulateTimeout == 0 {
		c.SimulateTimeout = 120 * time.Second
	}
	if c.Version == "" {
		c.Version = "devel"
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	return c
}

// Server is the ccrpd service state. Create with New; serve s.Handler().
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *sweep.Cache // single-flight artifacts: coders and compressed ROMs
	lines *lineCache   // decoded-line LRU for /v1/decompress
	start time.Time

	// coders indexes trained coders by content-addressed id. The cache
	// deduplicates builds; this map only resolves ids for later requests.
	codersMu sync.Mutex
	coders   map[string]*coderEntry

	sem chan struct{} // simulate worker pool

	// Registry instruments are single-threaded by design; metricsMu
	// serializes handler-side updates and the /metrics scrape.
	metricsMu sync.Mutex
	registry  *metrics.Registry
	inst      serverMetrics
	runtime   *metrics.RuntimeStats
	tracer    *tracing.Tracer

	accessMu sync.Mutex // serializes AccessLog.Emit
	reqSeq   atomic.Uint64
	inflight atomic.Int64
	draining atomic.Bool // set by BeginDrain; flips /readyz to 503
}

// serverMetrics caches the instrument handles so the hot path does one
// registry lookup per instrument per process, not per request.
type serverMetrics struct {
	requests  *metrics.CounterVec // by route
	responses *metrics.CounterVec // by status code
	errors    *metrics.CounterVec // by taxonomy code
	latency   *metrics.Histogram  // seconds, all routes
	simWait   *metrics.Histogram  // seconds queued for a worker slot
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	builds    *metrics.Counter // coder builds that actually ran
	uptime    *metrics.Gauge
	inflight  *metrics.Gauge

	lineHits      *metrics.Counter // decoded-line cache hits
	lineMisses    *metrics.Counter // decoded-line cache misses
	lineEvictions *metrics.Counter // decoded-line cache evictions
	lineResident  *metrics.Gauge   // decoded lines currently cached

	decodeParallel *metrics.Counter // decompress requests decoded by the parallel pool

	storeHits       *metrics.Counter // artifacts served from the disk store
	storeMisses     *metrics.Counter // store probes that fell through to a build
	storeWrites     *metrics.Counter // freshly built artifacts persisted
	storeCorrupt    *metrics.Counter // stored artifacts rejected by verification
	storeWarmCoders *metrics.Gauge   // coders registered by the boot warm start
	storeBytes      *metrics.Gauge   // payload bytes resident in the disk store

	batchItems      *metrics.Counter // items processed across :batch requests
	batchItemErrors *metrics.Counter // items that failed inside a :batch request
}

// New builds a Server with its routes registered.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		cache:    sweep.NewCache(),
		lines:    newLineCache(cfg.LineCacheLines),
		coders:   make(map[string]*coderEntry),
		sem:      make(chan struct{}, cfg.SimWorkers),
		registry: metrics.New(),
		tracer:   cfg.Tracer,
		start:    time.Now(),
	}
	s.runtime = metrics.NewRuntimeStats(s.registry)
	s.inst = serverMetrics{
		requests:  s.registry.CounterVec("ccrpd_requests_total", "requests received", "route"),
		responses: s.registry.CounterVec("ccrpd_responses_total", "responses sent", "status"),
		errors:    s.registry.CounterVec("ccrpd_errors_total", "error responses", "code"),
		latency: s.registry.Histogram("ccrpd_request_seconds", "request wall time",
			metrics.ExpBuckets(0.0001, 4, 10)),
		simWait: s.registry.Histogram("ccrpd_sim_queue_seconds", "time queued for a simulate slot",
			metrics.ExpBuckets(0.0001, 4, 10)),
		bytesIn:  s.registry.Counter("ccrpd_text_bytes_in_total", "program text bytes received"),
		bytesOut: s.registry.Counter("ccrpd_text_bytes_out_total", "program text bytes returned"),
		builds:   s.registry.Counter("ccrpd_coder_builds_total", "coder builds executed (cache misses)"),
		uptime:   s.registry.Gauge("ccrpd_uptime_seconds", "seconds since server start"),
		inflight: s.registry.Gauge("ccrpd_inflight_requests", "requests currently being served"),

		lineHits:      s.registry.Counter("ccrpd_linecache_hits_total", "decoded-line cache hits"),
		lineMisses:    s.registry.Counter("ccrpd_linecache_misses_total", "decoded-line cache misses"),
		lineEvictions: s.registry.Counter("ccrpd_linecache_evictions_total", "decoded-line cache evictions"),
		lineResident:  s.registry.Gauge("ccrpd_linecache_resident_lines", "decoded lines currently cached"),

		decodeParallel: s.registry.Counter("ccrpd_decode_parallel_total",
			"decompress requests whose lines were decoded by the parallel worker pool"),

		storeHits:       s.registry.Counter("ccrpd_store_hits_total", "artifacts served from the disk store"),
		storeMisses:     s.registry.Counter("ccrpd_store_misses_total", "store probes that fell through to a build"),
		storeWrites:     s.registry.Counter("ccrpd_store_writes_total", "freshly built artifacts persisted to the store"),
		storeCorrupt:    s.registry.Counter("ccrpd_store_corrupt_total", "stored artifacts rejected by verification"),
		storeWarmCoders: s.registry.Gauge("ccrpd_store_warm_coders", "coders registered by the boot warm start"),
		storeBytes:      s.registry.Gauge("ccrpd_store_bytes", "artifact payload bytes resident in the disk store"),

		batchItems:      s.registry.Counter("ccrpd_batch_items_total", "items processed across batch requests"),
		batchItemErrors: s.registry.Counter("ccrpd_batch_item_errors_total", "batch items that failed"),
	}
	if cfg.Store != nil {
		s.cache.SetStore(cfg.Store, storeObserver{s})
	}

	s.route("POST /v1/coders", cfg.TrainTimeout, s.handleTrainCoder)
	s.route("GET /v1/coders/{id}", 5*time.Second, s.handleGetCoder)
	s.route("POST /v1/compress", cfg.CompressTimeout, s.handleCompress)
	s.route("POST /v1/decompress", cfg.CompressTimeout, s.handleDecompress)
	s.route("POST /v1/compress:batch", cfg.CompressTimeout, s.handleCompressBatch)
	s.route("POST /v1/decompress:batch", cfg.CompressTimeout, s.handleDecompressBatch)
	s.route("POST /v1/simulate", cfg.SimulateTimeout, s.handleSimulate)
	s.route("GET /v1/artifacts", 5*time.Second, s.handleArtifacts)
	s.route("GET /healthz", 5*time.Second, s.handleHealthz)
	s.route("GET /readyz", 5*time.Second, s.handleReadyz)
	s.route("GET /metrics", 5*time.Second, s.handleMetrics)
	s.route("GET /debug/traces", 5*time.Second, s.handleTraces)

	// pprof must bypass the JSON middleware (it streams its own formats
	// and profile durations exceed route timeouts by design).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// Everything else: typed 404/405 instead of the mux's plain text.
	s.mux.Handle("/", s.middleware("fallback", 5*time.Second,
		func(w http.ResponseWriter, r *http.Request) error {
			return Errf(http.StatusNotFound, CodeNotFound, "no route %s %s", r.Method, r.URL.Path)
		}))
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (tests and embedding).
func (s *Server) Registry() *metrics.Registry { return s.registry }

// handlerFunc is a route handler that reports failures as errors; the
// middleware owns serialization, logging, and instrumentation.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// route registers pattern with the standard middleware stack. The
// pattern's method is enforced by the mux; a bare-path duplicate maps
// wrong verbs onto the 405 taxonomy entry.
func (s *Server) route(pattern string, timeout time.Duration, h handlerFunc) {
	method, path, _ := cutPattern(pattern)
	s.mux.Handle(pattern, s.middleware(path, timeout, h))
	// Same path, any other method -> typed 405. The mux prefers the
	// more specific method pattern, so this only fires on mismatches.
	s.mux.Handle(path, s.middleware(path, timeout,
		func(w http.ResponseWriter, r *http.Request) error {
			w.Header().Set("Allow", method)
			return Errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				"%s requires %s, got %s", path, method, r.Method)
		}))
}

// cutPattern splits "METHOD /path" registration patterns.
func cutPattern(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// statusWriter captures the response status for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status, w.wrote = status, true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(p)
}

// middleware wraps h with the production stack: panic confinement, the
// request-size limit, the per-route deadline, trace propagation, metrics,
// and the access log. Order matters: the recover must be outermost so
// even logging bugs produce a typed 500 rather than a dropped connection.
//
// Every request gets a trace id — stamped on the response header and the
// access-log record whether or not a tracer is configured, so client-side
// outliers are always correlatable. Span recording (the root span here
// plus the stage children the handlers start) happens only when
// Config.Tracer is set; with a nil tracer every span call below is an
// allocation-free no-op.
func (s *Server) middleware(routeName string, timeout time.Duration, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.reqSeq.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Add(1)

		// Adopt a well-formed inbound trace id (the ccrp-router hop) so
		// gateway and backend stages stitch into one trace; anything
		// malformed — wrong length, non-hex, the invalid zero id — is
		// ignored and a fresh id generated, so a hostile or buggy client
		// cannot poison trace correlation.
		tid := inboundTraceID(r)
		if tid.IsZero() {
			tid = tracing.NewTraceID()
		}
		// Set before the handler runs: headers freeze at WriteHeader.
		sw.Header().Set(TraceHeader, tid.String())
		span := s.tracer.StartTrace(tid, StageRequest)
		span.SetAttr("route", routeName)
		span.SetAttr("method", r.Method)

		var handlerErr error
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					handlerErr = Errf(http.StatusInternalServerError, CodeInternal,
						"handler panicked: %v", rec)
				}
			}()
			ctx, cancel := r.Context(), context.CancelFunc(func() {})
			if timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, timeout)
			}
			defer cancel()
			ctx = tracing.ContextWith(ctx, span)
			r = r.WithContext(ctx)
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			handlerErr = h(sw, r)
		}()
		if handlerErr != nil && !sw.wrote {
			writeError(sw, handlerErr)
		}

		dur := time.Since(start)
		inflight := s.inflight.Add(-1)
		errCode := ""
		if handlerErr != nil {
			errCode = asAPIError(handlerErr).Code
		}

		span.SetAttrInt("status", int64(sw.status))
		if handlerErr != nil {
			span.SetError(handlerErr)
		}
		span.End()

		s.metricsMu.Lock()
		s.inst.requests.With(routeName).Inc()
		s.inst.responses.WithInt(sw.status).Inc()
		if errCode != "" {
			s.inst.errors.With(errCode).Inc()
		}
		s.inst.latency.Observe(dur.Seconds())
		s.inst.inflight.Set(float64(inflight))
		s.metricsMu.Unlock()

		if s.cfg.AccessLog != nil {
			s.accessMu.Lock()
			s.cfg.AccessLog.Emit(metrics.Event{
				Type: metrics.EvHTTP, Seq: seq, Line: -1, Set: -1,
				Method: r.Method, Path: r.URL.Path, Status: sw.status,
				DurUS: uint64(dur.Microseconds()), Err: errCode,
				Trace: tid.String(),
			})
			s.accessMu.Unlock()
		}
	})
}

// inboundTraceID extracts a valid trace id from the request header, or
// the zero id when the header is absent or malformed. Only the
// 32-hex-digit 128-bit form the stack itself emits is accepted.
func inboundTraceID(r *http.Request) tracing.TraceID {
	raw := r.Header.Get(TraceHeader)
	if raw == "" {
		return tracing.TraceID{}
	}
	tid, err := tracing.ParseTraceID(raw)
	if err != nil {
		return tracing.TraceID{}
	}
	return tid
}

// healthzBody is the /healthz response shape.
type healthzBody struct {
	Status        string        `json:"status"`
	Version       string        `json:"version"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Host          hostinfo.Info `json:"host"`
	Coders        int           `json:"coders"`
	SimWorkers    int           `json:"sim_workers"`
	DecodeWorkers int           `json:"decode_workers"`
	Inflight      int64         `json:"inflight"`
	Draining      bool          `json:"draining,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	s.codersMu.Lock()
	n := len(s.coders)
	s.codersMu.Unlock()
	writeJSON(w, http.StatusOK, healthzBody{
		Status:        "ok",
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Host:          hostinfo.Collect(),
		Coders:        n,
		SimWorkers:    s.cfg.SimWorkers,
		DecodeWorkers: s.cfg.DecodeWorkers,
		Inflight:      s.inflight.Load(),
		Draining:      s.draining.Load(),
	})
	return nil
}

// BeginDrain flips /readyz to 503. cmd/ccrpd calls it on the first
// SIGTERM/SIGINT, before http.Server.Shutdown: a router's health
// checker sees the node leave the rotation while in-flight requests
// (and /healthz, which stays 200 for the whole drain window) keep
// being served.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// readyzBody is the /readyz response shape.
type readyzBody struct {
	Status string `json:"status"` // "ready" | "draining"
}

// handleReadyz is the routing-eligibility probe: 200 while the node
// should take new traffic, 503 from the moment drain begins. Liveness
// (/healthz) and readiness split exactly as in any fleet-scheduled
// service — a draining process is alive but must not receive new work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, readyzBody{Status: "draining"})
		return nil
	}
	writeJSON(w, http.StatusOK, readyzBody{Status: "ready"})
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.refreshStoreBytes()
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	s.inst.uptime.Set(time.Since(s.start).Seconds())
	s.runtime.Collect()
	return s.registry.WritePrometheus(w)
}

// handleTraces serves tail capture: full span trees of the slowest and
// errored requests since boot. With no tracer configured the snapshot is
// empty rather than an error, so dashboards can poll unconditionally.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, s.tracer.TailSnapshot())
	return nil
}

// traceJSON writes a 200 JSON response under an encode_response span, the
// last stage of every successful request.
func traceJSON(w http.ResponseWriter, r *http.Request, v any) {
	sp := tracing.FromContext(r.Context()).Child(StageEncode)
	writeJSON(w, http.StatusOK, v)
	sp.End()
}
