package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Error codes of the service's JSON error taxonomy. Every non-2xx
// response carries exactly one of these, so clients and the load
// generator can classify failures without parsing prose.
const (
	CodeBadRequest       = "bad_request"        // 400: malformed JSON, bad base64, invalid field
	CodeNotFound         = "not_found"          // 404: unknown route, coder id, or workload
	CodeMethodNotAllowed = "method_not_allowed" // 405: wrong verb on a known route
	CodePayloadTooLarge  = "payload_too_large"  // 413: body over the configured limit
	CodeUnprocessable    = "unprocessable"      // 422: well-formed input the pipeline rejects
	CodeDeadlineExceeded = "deadline_exceeded"  // 408: per-request deadline expired
	CodeOverloaded       = "overloaded"         // 429: worker pool saturated past the queue deadline
	CodeInternal         = "internal"           // 500: bug — the handler panicked or an invariant broke
)

// APIError is a typed service error: an HTTP status, a machine-readable
// code, and a human-readable message. Handlers return it up to the
// middleware, which owns serialization.
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errf builds an APIError with a formatted message.
func Errf(status int, code, format string, args ...any) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// errBadRequest wraps a client-input failure.
func errBadRequest(format string, args ...any) *APIError {
	return Errf(http.StatusBadRequest, CodeBadRequest, format, args...)
}

// errUnprocessable wraps a domain-level rejection of well-formed input.
func errUnprocessable(format string, args ...any) *APIError {
	return Errf(http.StatusUnprocessableEntity, CodeUnprocessable, format, args...)
}

// errorBody is the wire shape of every error response.
type errorBody struct {
	Error *APIError `json:"error"`
}

// asAPIError normalizes any handler error into an APIError: typed errors
// pass through, an oversized body maps to the 413 taxonomy entry, and
// anything else is an internal error (the message is preserved — this is
// a development tool's service, not a secrecy boundary).
func asAPIError(err error) *APIError {
	var api *APIError
	if errors.As(err, &api) {
		return api
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return Errf(http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			"request body exceeds the %d-byte limit", tooLarge.Limit)
	}
	return Errf(http.StatusInternalServerError, CodeInternal, "%v", err)
}

// writeJSON serializes v with the given status. Encoding failures after
// the header is out can only be logged by the caller's access log.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError serializes err through the taxonomy.
func writeError(w http.ResponseWriter, err error) {
	api := asAPIError(err)
	writeJSON(w, api.Status, errorBody{Error: api})
}
