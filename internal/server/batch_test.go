package server

import (
	"bytes"
	"encoding/base64"
	"net/http"
	"testing"

	"ccrp/internal/tracing"
)

// TestCompressBatchIsolatesItemFailures is the batch contract: one bad
// item fails alone, its neighbors on both sides still compress.
func TestCompressBatchIsolatesItemFailures(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)

	req := compressBatchRequest{
		CoderID: id,
		Items: []compressBatchItem{
			{Workload: "eightq"},
			{Workload: "no-such-workload"}, // item 1 fails
			{Workload: "eightq"},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/compress:batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one bad item: %d %s (want 200: item errors must not fail the batch)", resp.StatusCode, body)
	}
	out := decodeAs[compressBatchResponse](t, body)
	if len(out.Items) != 3 || out.Errors != 1 {
		t.Fatalf("batch = %d items, %d errors; want 3 items, 1 error", len(out.Items), out.Errors)
	}
	for _, i := range []int{0, 2} {
		it := out.Items[i]
		if it.Error != nil || it.Result == nil {
			t.Fatalf("item %d = %+v, want success", i, it)
		}
		if it.Result.CompressedBytes <= 0 || it.Result.CompressedBytes >= it.Result.OriginalBytes {
			t.Errorf("item %d did not compress: %d of %d bytes", i, it.Result.CompressedBytes, it.Result.OriginalBytes)
		}
	}
	bad := out.Items[1]
	if bad.Result != nil || bad.Error == nil {
		t.Fatalf("item 1 = %+v, want a per-item error", bad)
	}
	if bad.Error.Code != CodeNotFound {
		t.Errorf("item 1 error code = %q, want %q", bad.Error.Code, CodeNotFound)
	}

	// The surviving items match the single-request endpoint byte for byte.
	sResp, sBody := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if sResp.StatusCode != http.StatusOK {
		t.Fatalf("single compress: %d %s", sResp.StatusCode, sBody)
	}
	single := decodeAs[compressResponse](t, sBody)
	if out.Items[0].Result.BlocksB64 != single.BlocksB64 {
		t.Error("batch item blocks differ from the single-request blocks")
	}

	if got := counterValue(t, s, "ccrpd_batch_items_total"); got != "3" {
		t.Errorf("batch items counter = %s, want 3", got)
	}
	if got := counterValue(t, s, "ccrpd_batch_item_errors_total"); got != "1" {
		t.Errorf("batch item errors counter = %s, want 1", got)
	}
}

// TestDecompressBatchRoundTrip: a mixed batch — a CROM image item, a
// coder_id+blocks+lines item, and a malformed item — recovers the
// original text on the good items and reports the bad one in place.
func TestDecompressBatchRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := trainPreselected(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/compress", compressRequest{CoderID: id, Workload: "eightq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, body)
	}
	comp := decodeAs[compressResponse](t, body)
	if comp.ROMB64 == "" {
		t.Fatal("preselected coder produced no CROM image")
	}

	req := decompressBatchRequest{Items: []decompressRequest{
		{ROMB64: comp.ROMB64},
		{ROMB64: "!!! not base64 !!!"}, // item 1 fails
		{CoderID: id, BlocksB64: comp.BlocksB64, Lines: comp.Lines},
	}}
	resp, body = postJSON(t, ts.URL+"/v1/decompress:batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch decompress: %d %s", resp.StatusCode, body)
	}
	out := decodeAs[decompressBatchResponse](t, body)
	if len(out.Items) != 3 || out.Errors != 1 {
		t.Fatalf("batch = %d items, %d errors; want 3 items, 1 error", len(out.Items), out.Errors)
	}
	if e := out.Items[1].Error; e == nil || e.Code != CodeBadRequest {
		t.Fatalf("item 1 = %+v, want a bad_request error", out.Items[1])
	}

	var want []byte
	for _, i := range []int{0, 2} {
		it := out.Items[i]
		if it.Error != nil || it.Result == nil {
			t.Fatalf("item %d = %+v, want success", i, it)
		}
		text, err := base64.StdEncoding.DecodeString(it.Result.TextB64)
		if err != nil {
			t.Fatalf("item %d text does not decode: %v", i, err)
		}
		if want == nil {
			want = text
		} else if !bytes.Equal(text, want) {
			t.Errorf("item %d decompressed differently from item 0", i)
		}
		if it.Result.OriginalBytes != len(text) || len(text) == 0 {
			t.Errorf("item %d original_bytes = %d for %d text bytes", i, it.Result.OriginalBytes, len(text))
		}
	}
}

// TestBatchRequestLevelErrors: problems with the batch itself — not any
// one item — fail the whole request through the error taxonomy.
func TestBatchRequestLevelErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 4})
	id := trainPreselected(t, ts.URL)

	t.Run("empty batch", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/compress:batch", compressBatchRequest{CoderID: id})
		wantError(t, resp, body, http.StatusBadRequest, CodeBadRequest)
	})

	t.Run("oversized batch", func(t *testing.T) {
		items := make([]compressBatchItem, 5)
		for i := range items {
			items[i] = compressBatchItem{Workload: "eightq"}
		}
		resp, body := postJSON(t, ts.URL+"/v1/compress:batch", compressBatchRequest{CoderID: id, Items: items})
		wantError(t, resp, body, http.StatusBadRequest, CodeBadRequest)
	})

	t.Run("unknown coder fails the batch", func(t *testing.T) {
		req := compressBatchRequest{CoderID: "deadbeef", Items: []compressBatchItem{{Workload: "eightq"}}}
		resp, body := postJSON(t, ts.URL+"/v1/compress:batch", req)
		wantError(t, resp, body, http.StatusNotFound, CodeNotFound)
	})

	t.Run("oversized decompress batch", func(t *testing.T) {
		req := decompressBatchRequest{Items: make([]decompressRequest, 5)}
		resp, body := postJSON(t, ts.URL+"/v1/decompress:batch", req)
		wantError(t, resp, body, http.StatusBadRequest, CodeBadRequest)
	})
}

// TestBatchItemSpans pins the per-item tracing contract: a mixed batch
// emits one batch_item span per item under the request root, each
// carrying its item index, with the failed item's span errored and the
// survivors' spans clean — so ccrp-spans can attribute cost and blame
// inside a batch, not just per request.
func TestBatchItemSpans(t *testing.T) {
	sink := &memSink{}
	tracer := tracing.New(tracing.Config{Sink: sink})
	_, ts := newTestServer(t, Config{Tracer: tracer})
	id := trainPreselected(t, ts.URL)

	req := compressBatchRequest{
		CoderID: id,
		Items: []compressBatchItem{
			{Workload: "eightq"},
			{Workload: "no-such-workload"}, // item 1 fails
			{Workload: "eightq"},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/compress:batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	out := decodeAs[compressBatchResponse](t, body)
	if out.Errors != 1 {
		t.Fatalf("batch errors = %d, want 1", out.Errors)
	}
	tid := resp.Header.Get(TraceHeader)
	if tid == "" {
		t.Fatal("batch response carries no trace id")
	}

	var root tracing.Record
	items := map[int64]tracing.Record{}
	children := map[string]int{} // stage children hung off batch_item spans
	recs := sink.records()
	spans := map[string]tracing.Record{}
	for _, rec := range recs {
		spans[rec.Span] = rec
	}
	for _, rec := range recs {
		if rec.Trace != tid {
			continue
		}
		switch rec.Stage {
		case StageRequest:
			root = rec
		case StageBatchItem:
			idx, ok := rec.Attrs["item"]
			if !ok {
				t.Fatalf("batch_item span %s has no item attr: %+v", rec.Span, rec.Attrs)
			}
			// JSON-decoded attrs arrive as float64; in-memory as int64.
			switch v := idx.(type) {
			case int64:
				items[v] = rec
			case float64:
				items[int64(v)] = rec
			default:
				t.Fatalf("item attr has type %T", idx)
			}
		default:
			if p, ok := spans[rec.Parent]; ok && p.Stage == StageBatchItem {
				children[rec.Stage]++
			}
		}
	}
	if root.Span == "" {
		t.Fatalf("no request root span in trace %s", tid)
	}
	if len(items) != 3 {
		t.Fatalf("got %d batch_item spans, want one per item (3)", len(items))
	}
	for i := int64(0); i < 3; i++ {
		rec, ok := items[i]
		if !ok {
			t.Fatalf("no batch_item span for item %d", i)
		}
		if rec.Parent != root.Span {
			t.Errorf("item %d span hangs off %q, want the request root %q", i, rec.Parent, root.Span)
		}
		if i == 1 {
			if rec.Err == "" {
				t.Error("failed item's span carries no error")
			}
		} else if rec.Err != "" {
			t.Errorf("item %d span unexpectedly errored: %s", i, rec.Err)
		}
	}
	// The successful items decompose into the same stage vocabulary as
	// single requests — text resolution and compression under the item.
	for _, stage := range []string{StageText, StageCompress} {
		if children[stage] == 0 {
			t.Errorf("no %s child spans under batch_item spans (children: %v)", stage, children)
		}
	}
}
