// Package huffman implements the byte-oriented Huffman coders used by the
// Compressed Code RISC Processor (Wolfe & Chanin, MICRO 1992):
//
//   - traditional (unbounded) Huffman codes built from a byte
//     frequency-of-occurrence histogram [Huffman52];
//   - Bounded Huffman codes whose codeword length is capped (the paper
//     uses 16 bits) built with the package-merge algorithm, so that the
//     decode hardware stays practical;
//   - canonical code assignment, a bit-serial decoder, and compact code
//     table serialization (the table must ship with the program for
//     non-preselected codes).
//
// The Preselected Bounded Huffman code of the paper is simply a bounded
// code built from the pooled histogram of a program corpus and then reused
// for every program; see BuildBounded plus Histogram smoothing.
package huffman

// Histogram counts byte frequency of occurrence.
type Histogram [256]uint64

// HistogramOf builds a histogram over all the given buffers.
func HistogramOf(bufs ...[]byte) *Histogram {
	var h Histogram
	for _, b := range bufs {
		h.Add(b)
	}
	return &h
}

// Add accumulates the bytes of data into the histogram.
func (h *Histogram) Add(data []byte) {
	for _, b := range data {
		h[b]++
	}
}

// Merge adds every count of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o {
		h[i] += c
	}
}

// Smooth adds one count to every symbol so that each of the 256 byte
// values receives a codeword. A preselected code must be smoothed: it is
// hardwired in the decoder and has to handle bytes that never occurred in
// the corpus it was trained on.
func (h *Histogram) Smooth() *Histogram {
	out := *h
	for i := range out {
		out[i]++
	}
	return &out
}

// Total returns the sum of all counts.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h {
		t += c
	}
	return t
}

// Distinct returns the number of symbols with nonzero count.
func (h *Histogram) Distinct() int {
	n := 0
	for _, c := range h {
		if c > 0 {
			n++
		}
	}
	return n
}
