package huffman

import (
	"encoding/binary"
	"fmt"

	"ccrp/internal/bitio"
)

// MultiDecoder is the multi-symbol table-driven decoder: the zstd/FSE
// generation of the paper's §3.4 mapping-ROM idea. Where FastDecoder's
// root table maps a bit window to one (symbol, length) pair, a
// MultiDecoder entry carries *every* complete codeword that fits in the
// window — up to MaxPack symbols — so one table lookup emits one, two,
// or three decoded bytes at once. With the corpus-shaped codes this
// repository trains (≈5–6 bits per byte of machine code), a 12-bit
// window packs two symbols on average, halving the lookups per line.
//
// The bit refill is word-at-a-time: instead of assembling windows a byte
// at a time (extractPad's loop in earlier revisions), the decoder loads
// 64 bits from the stream in one 8-byte read per table step (peek64),
// which is what makes the bigger entries pay off.
//
// MultiDecoder is API-compatible with Code.Decode/DecodeBytes/
// DecodeSymbol and decodes byte-identically: same symbols, same bit
// positions, and matching error classes (bitio.ErrShortStream on
// truncation inside a codeword, ErrBadCode on unreachable codespace) —
// properties pinned by the same differential/fuzz harness that proves
// FastDecoder.
type MultiDecoder struct {
	// table is the flattened arena: the root table occupies
	// [0, 1<<rootBits); overflow sub-tables for codewords longer than
	// the root window are appended behind it, exactly as in FastDecoder.
	table    []uint64
	rootBits uint
	maxLen   uint8
}

// MultiChunkBits is the default root window width. 12 keeps the root
// table at 4096 eight-byte entries — 32 KiB, cache-resident — while
// packing ~2 symbols per lookup on corpus-shaped codes.
const MultiChunkBits = 12

// MaxPack is the most symbols one root-table entry can carry.
const MaxPack = 3

// Entry encoding (uint64):
//
//	bits 62..63  kind: 0 invalid, 1 leaf, 2 sub-table pointer
//	leaf:        bits 59..60 = symbol count k (1..MaxPack)
//	             bits 48..53 = total bits consumed by the whole pack
//	             bits 24..29 = bits consumed by the first symbol alone
//	             bits 8j..8j+7 = symbol j
//	pointer:     bits 56..61 = sub-table index width, bits 0..31 = arena offset
//
// The duplicated first-symbol length (bits 24..29) is what lets the
// single-symbol slow path (decodeOne, DecodeSymbol, stream tails) peel
// exactly one codeword off a packed entry; the hot loop reads only the
// count and the total. Sub-table leaves carry exactly one symbol, so
// both length fields coincide there.
const (
	mEntInvalid = 0
	mEntLeaf    = 1
	mEntPtr     = 2
)

// NewMultiDecoder compiles code into its multi-symbol form with the
// default root window.
func NewMultiDecoder(code *Code) *MultiDecoder {
	return NewMultiDecoderChunk(code, MultiChunkBits)
}

// NewMultiDecoderChunk compiles code with an explicit root window width
// in [1, 16]. Wider windows pack more symbols per entry at 2^width
// eight-byte entries of table cost; 16 is the multi-symbol analogue of
// the paper's full 64K-entry mapping ROM.
func NewMultiDecoderChunk(code *Code, chunk int) *MultiDecoder {
	if chunk < 1 || chunk > 16 {
		panic(fmt.Sprintf("huffman: multi-decoder chunk %d outside [1,16]", chunk))
	}
	m := &MultiDecoder{rootBits: uint(chunk), maxLen: code.maxLen}
	m.table = make([]uint64, 1<<uint(chunk))

	// Root leaves: for every possible window, greedily decode complete
	// codewords from its bits until the window runs dry or the entry is
	// full. This enumerates short-codeword *sequences* at build time so
	// the hot loop gets them in one lookup.
	for w := range m.table {
		var e uint64
		pos, k := uint(0), 0
		for k < MaxPack {
			sym, l, ok := code.decodeWindow(uint64(w), uint(chunk), pos)
			if !ok {
				break
			}
			pos += l
			if k == 0 {
				e |= uint64(pos) << 24 // first symbol's own length
			}
			e |= uint64(sym) << (8 * k)
			k++
		}
		if k > 0 {
			m.table[w] = mEntLeaf<<62 | uint64(k)<<59 | uint64(pos)<<48 | e
		}
	}

	// Overflow: codewords longer than the root window chain through
	// compact single-symbol sub-tables, grouped by their first chunk
	// bits (whose root entries are necessarily non-leaf: a complete
	// shorter codeword inside a longer one would break the prefix
	// property).
	overflow := map[uint64][]fastCodeword{}
	for s := 0; s < 256; s++ {
		bits, n := code.Codeword(byte(s))
		if n == 0 || uint(n) <= uint(chunk) {
			continue
		}
		prefix := bits >> (uint(n) - uint(chunk))
		overflow[prefix] = append(overflow[prefix],
			fastCodeword{bits: bits, len: uint8(n), sym: byte(s)})
	}
	for prefix, group := range overflow {
		subOff, subBits := m.buildSub(group, uint(chunk), uint(chunk))
		m.table[prefix] = mEntPtr<<62 | uint64(subBits)<<56 | uint64(subOff)
	}
	return m
}

// decodeWindow canonically decodes one symbol from the width-bit window
// w starting at bit offset pos (MSB-first), reporting false when no
// codeword completes within the window.
func (c *Code) decodeWindow(w uint64, width, pos uint) (byte, uint, bool) {
	var code uint64
	for l := uint(1); l <= uint(c.maxLen) && pos+l <= width; l++ {
		code = code<<1 | (w>>(width-pos-l))&1
		if d := code - c.firstCode[l]; code >= c.firstCode[l] && d < uint64(c.count[l]) {
			return c.symOrder[c.firstIndex[l]+int(d)], l, true
		}
	}
	return 0, 0, false
}

// buildSub lays out one overflow sub-table for the codewords in cws (all
// sharing their first `consumed` bits), returning its arena offset and
// index width — FastDecoder.buildTable with 64-bit single-symbol entries.
func (m *MultiDecoder) buildSub(cws []fastCodeword, consumed, chunk uint) (int, uint) {
	maxRem := uint(0)
	for _, w := range cws {
		if rem := uint(w.len) - consumed; rem > maxRem {
			maxRem = rem
		}
	}
	tblBits := maxRem
	if tblBits > chunk {
		tblBits = chunk
	}
	off := len(m.table)
	m.table = append(m.table, make([]uint64, 1<<tblBits)...)
	if off > 0xFFFFFFFF {
		// Unreachable for byte alphabets; guard the 32-bit offset field.
		panic("huffman: multi-decoder table arena overflow")
	}

	overflow := map[uint64][]fastCodeword{}
	for _, w := range cws {
		rem := uint(w.len) - consumed
		suffix := w.bits & (1<<rem - 1)
		if rem <= tblBits {
			e := mEntLeaf<<62 | uint64(1)<<59 | uint64(rem)<<24 | uint64(w.sym)
			base := suffix << (tblBits - rem)
			for i := uint64(0); i < 1<<(tblBits-rem); i++ {
				m.table[off+int(base+i)] = e
			}
			continue
		}
		prefix := suffix >> (rem - tblBits)
		overflow[prefix] = append(overflow[prefix], w)
	}
	for prefix, group := range overflow {
		subOff, subBits := m.buildSub(group, consumed+tblBits, chunk)
		m.table[off+int(prefix)] = mEntPtr<<62 | uint64(subBits)<<56 | uint64(subOff)
	}
	return off, tblBits
}

// RootBits returns the index width of the first-level table.
func (m *MultiDecoder) RootBits() int { return int(m.rootBits) }

// TableEntries returns the total arena size across all levels.
func (m *MultiDecoder) TableEntries() int { return len(m.table) }

// SizeBits returns the table storage in bits (64-bit entries), for
// comparison against FastDecoder's 32-bit tables and decoder.ROM's
// hardware cost figures.
func (m *MultiDecoder) SizeBits() int { return 64 * len(m.table) }

// PackCounts reports how many root-table entries decode k symbols per
// lookup (index k in 1..MaxPack); index 0 counts pointer and invalid
// entries. The k≥2 fractions are the build-time packing win the
// decode_bench experiment records.
func (m *MultiDecoder) PackCounts() [MaxPack + 1]int {
	var counts [MaxPack + 1]int
	for _, e := range m.table[:1<<m.rootBits] {
		if e>>62 == mEntLeaf {
			counts[int(e>>59)&3]++
		} else {
			counts[0]++
		}
	}
	return counts
}

// peek64 returns the 64 bits starting at bit position pos, left-aligned
// and zero-padded past the end of buf: the word-at-a-time refill. In the
// stream interior this is a single 8-byte load plus a shift; only the
// last seven bytes of a stream fall back to byte assembly.
func peek64(buf []byte, pos int) uint64 {
	b := pos >> 3
	if b+8 <= len(buf) {
		return binary.BigEndian.Uint64(buf[b:]) << uint(pos&7)
	}
	var w uint64
	s := uint(56)
	for ; b < len(buf); b++ {
		w |= uint64(buf[b]) << s
		s -= 8
	}
	return w << uint(pos&7)
}

// decodeOne decodes one symbol from buf starting at bit position pos —
// the single-symbol slow path used for overflow chains, stream tails,
// and DecodeSymbol. total is len(buf)*8. It returns the symbol and the
// bits consumed, with error classes identical to the canonical decoder.
func (m *MultiDecoder) decodeOne(buf []byte, pos, total int) (byte, int, error) {
	off := uint64(0)
	bits := m.rootBits
	consumed := 0
	for {
		rem := total - (pos + consumed)
		e := m.table[off+peek64(buf, pos+consumed)>>(64-bits)]
		switch e >> 62 {
		case mEntLeaf:
			l := int(e>>24) & 63 // first symbol's bits at this step
			if l > rem {
				// The stream ends inside this codeword: the canonical
				// bit-serial decoder runs out of bits here too.
				return 0, 0, bitio.ErrShortStream
			}
			return byte(e), consumed + l, nil
		case mEntPtr:
			if rem <= int(bits) {
				// Every codeword reachable through this pointer needs
				// more bits than the stream has left.
				return 0, 0, bitio.ErrShortStream
			}
			consumed += int(bits)
			off = e & 0xFFFFFFFF
			bits = uint(e>>56) & 63
		default:
			if rem == 0 {
				return 0, 0, bitio.ErrShortStream
			}
			// Unreachable codespace — only possible for the degenerate
			// one-symbol code, where the canonical decoder also rejects.
			return 0, 0, ErrBadCode
		}
	}
}

// decode fills out with symbols decoded from buf starting at bit
// position pos, returning the final bit position. The hot loop takes one
// word-sized load and one table lookup per *entry* — up to MaxPack
// symbols — and stores all three pack bytes unconditionally while
// advancing by the real count, so a 1- or 2-symbol entry's junk bytes
// are overwritten on the next iteration. Stream and output tails (where
// the over-store or a padded window could misbehave) drop to the
// single-symbol slow path, which carries the canonical error semantics.
func (m *MultiDecoder) decode(buf []byte, pos int, out []byte) (int, error) {
	total := len(buf) * 8
	shift := 64 - m.rootBits
	chunk := int(m.rootBits)
	// Full slice expression: len(root) is a power of two, so the mask
	// below proves the index in range and eliminates the bounds check.
	root := m.table[: 1<<m.rootBits : 1<<m.rootBits]
	i := 0
	for i+MaxPack <= len(out) && pos+chunk <= total {
		// Word-at-a-time refill, inlined: one 8-byte big-endian load in
		// the stream interior (peek64's loop only for the last 7 bytes).
		b := pos >> 3
		var w uint64
		if b+8 <= len(buf) {
			w = binary.BigEndian.Uint64(buf[b:]) << uint(pos&7)
		} else {
			w = peek64(buf, pos)
		}
		e := root[(w>>shift)&uint64(len(root)-1)]
		if e>>62 != mEntLeaf {
			// Overflow chain (or unreachable codespace): one symbol the
			// slow way. The window is all real bits here, so any error is
			// genuine, not an artifact of padding.
			sym, adv, err := m.decodeOne(buf, pos, total)
			if err != nil {
				return pos, fmt.Errorf("huffman: decoding symbol %d: %w", i, err)
			}
			out[i] = sym
			i++
			pos += adv
			continue
		}
		out[i] = byte(e)
		out[i+1] = byte(e >> 8)
		out[i+2] = byte(e >> 16)
		i += int(e>>59) & 3
		pos += int(e>>48) & 63
	}
	// Tail: fewer than MaxPack output slots left, or within one window of
	// the stream end. One codeword at a time, canonical error classes.
	for i < len(out) {
		sym, adv, err := m.decodeOne(buf, pos, total)
		if err != nil {
			return pos, fmt.Errorf("huffman: decoding symbol %d: %w", i, err)
		}
		out[i] = sym
		i++
		pos += adv
	}
	return pos, nil
}

// DecodeSymbol decodes one symbol from r — Code.DecodeSymbol's
// multi-kernel twin. It always consumes exactly one codeword, so it
// interleaves with raw ReadBits exactly like the canonical decoder.
func (m *MultiDecoder) DecodeSymbol(r *bitio.Reader) (byte, error) {
	buf := r.Data()
	sym, adv, err := m.decodeOne(buf, r.Pos(), len(buf)*8)
	if err != nil {
		return 0, err
	}
	if err := r.Skip(uint(adv)); err != nil {
		return 0, err
	}
	return sym, nil
}

// Decode fills out with len(out) decoded symbols read from r, leaving r
// at exactly the bit position the canonical decoder would.
func (m *MultiDecoder) Decode(r *bitio.Reader, out []byte) error {
	buf := r.Data()
	end, err := m.decode(buf, r.Pos(), out)
	if skipErr := r.Skip(uint(end - r.Pos())); skipErr != nil {
		return skipErr
	}
	return err
}

// DecodeInto decodes exactly len(dst) symbols from the (zero-padded)
// buffer p into dst. This is the zero-allocation hot path: no reader, no
// output buffer, nothing escapes — pinned by TestDecodeIntoZeroAlloc.
func (m *MultiDecoder) DecodeInto(dst, p []byte) error {
	_, err := m.decode(p, 0, dst)
	return err
}

// DecodeBytes decodes exactly n symbols from the (zero-padded) buffer p.
func (m *MultiDecoder) DecodeBytes(p []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative output length %d", ErrBadCode, n)
	}
	out := make([]byte, n)
	if _, err := m.decode(p, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Multi returns the memoized multi-symbol decoder for this code, built
// on first use. Codes are immutable, so the decoder is shared freely
// across goroutines.
func (c *Code) Multi() *MultiDecoder {
	c.multiOnce.Do(func() { c.multi = NewMultiDecoder(c) })
	return c.multi
}
