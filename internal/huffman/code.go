package huffman

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ccrp/internal/bitio"
)

// Errors returned by code construction and decoding.
var (
	ErrEmptyHistogram = errors.New("huffman: histogram has no symbols")
	ErrOverlongCode   = errors.New("huffman: codeword exceeds 64 bits")
	ErrBadCode        = errors.New("huffman: invalid or incomplete code")
	ErrNoCodeword     = errors.New("huffman: symbol has no codeword in this code")
)

// Code is a canonical Huffman code over byte symbols. Symbols with
// Len[s] == 0 have no codeword and cannot be encoded.
type Code struct {
	lens   [256]uint8
	bits   [256]uint64
	maxLen uint8

	// Canonical decode tables, indexed by code length 1..maxLen.
	firstCode  [65]uint64 // canonical code value of the first symbol of each length
	firstIndex [65]int    // index into symOrder of that symbol
	count      [65]int    // number of symbols of each length
	symOrder   []byte     // symbols sorted by (length, value)

	// Memoized table-driven decoders (see Fast and Multi); codes are
	// immutable after NewCode, so one decoder serves every consumer.
	fastOnce  sync.Once
	fast      *FastDecoder
	multiOnce sync.Once
	multi     *MultiDecoder
}

// NewCode canonicalizes a set of code lengths into a usable Code. The
// lengths must satisfy the Kraft inequality exactly (a complete prefix
// code) unless only one symbol is present, in which case it gets the
// single codeword "0".
func NewCode(lengths [256]uint8) (*Code, error) {
	c := &Code{lens: lengths}
	var kraft uint64 // in units of 2^-64; a complete code wraps to 0 exactly once
	wraps := 0
	n := 0
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if l > 64 {
			return nil, ErrOverlongCode
		}
		n++
		add := uint64(1) << (64 - l)
		if kraft+add < kraft {
			wraps++
		}
		kraft += add
		if c.maxLen < l {
			c.maxLen = l
		}
	}
	if n == 0 {
		return nil, ErrEmptyHistogram
	}
	if n == 1 {
		// Degenerate: one symbol, one-bit code "0".
		for s, l := range lengths {
			if l != 0 {
				c.lens[s] = 1
			}
		}
		c.maxLen = 1
	} else if wraps != 1 || kraft != 0 {
		return nil, fmt.Errorf("%w: Kraft sum != 1", ErrBadCode)
	}

	// Canonical assignment: symbols ordered by (length, value).
	c.symOrder = make([]byte, 0, n)
	for s := 0; s < 256; s++ {
		if c.lens[s] > 0 {
			c.symOrder = append(c.symOrder, byte(s))
		}
	}
	sort.Slice(c.symOrder, func(i, j int) bool {
		si, sj := c.symOrder[i], c.symOrder[j]
		if c.lens[si] != c.lens[sj] {
			return c.lens[si] < c.lens[sj]
		}
		return si < sj
	})
	for _, s := range c.symOrder {
		c.count[c.lens[s]]++
	}
	var code uint64
	idx := 0
	for l := uint8(1); l <= c.maxLen; l++ {
		code <<= 1
		c.firstCode[l] = code
		c.firstIndex[l] = idx
		code += uint64(c.count[l])
		idx += c.count[l]
	}
	// Materialize per-symbol codewords.
	next := c.firstCode
	for _, s := range c.symOrder {
		l := c.lens[s]
		c.bits[s] = next[l]
		next[l]++
	}
	return c, nil
}

// MaxLen returns the longest codeword length in bits.
func (c *Code) MaxLen() int { return int(c.maxLen) }

// Len returns the codeword length of symbol s (0 if none).
func (c *Code) Len(s byte) int { return int(c.lens[s]) }

// Codeword returns the canonical codeword of s and its length in bits.
func (c *Code) Codeword(s byte) (bits uint64, n int) {
	return c.bits[s], int(c.lens[s])
}

// EncodedBits returns the exact number of bits data occupies under c, or
// an error if some byte has no codeword.
func (c *Code) EncodedBits(data []byte) (int, error) {
	total := 0
	for _, b := range data {
		l := int(c.lens[b])
		if l == 0 {
			return 0, fmt.Errorf("%w: byte %#02x", ErrNoCodeword, b)
		}
		total += l
	}
	return total, nil
}

// Encode appends the codewords for data to w.
func (c *Code) Encode(w *bitio.Writer, data []byte) error {
	for _, b := range data {
		l := c.lens[b]
		if l == 0 {
			return fmt.Errorf("%w: byte %#02x", ErrNoCodeword, b)
		}
		w.WriteBits(c.bits[b], uint(l))
	}
	return nil
}

// EncodeToBytes encodes data and returns the zero-padded byte buffer.
func (c *Code) EncodeToBytes(data []byte) ([]byte, error) {
	var w bitio.Writer
	if err := c.Encode(&w, data); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// DecodeSymbol decodes one symbol from r using bit-serial canonical
// decoding — the software twin of the paper's shift-register decoder.
func (c *Code) DecodeSymbol(r *bitio.Reader) (byte, error) {
	var code uint64
	for l := uint8(1); l <= c.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		if d := code - c.firstCode[l]; code >= c.firstCode[l] && d < uint64(c.count[l]) {
			return c.symOrder[c.firstIndex[l]+int(d)], nil
		}
	}
	return 0, ErrBadCode
}

// Decode fills out with len(out) decoded symbols read from r.
func (c *Code) Decode(r *bitio.Reader, out []byte) error {
	for i := range out {
		s, err := c.DecodeSymbol(r)
		if err != nil {
			return fmt.Errorf("huffman: decoding symbol %d: %w", i, err)
		}
		out[i] = s
	}
	return nil
}

// DecodeBytes decodes exactly n symbols from the (zero-padded) buffer p.
func (c *Code) DecodeBytes(p []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative output length %d", ErrBadCode, n)
	}
	out := make([]byte, n)
	if err := c.Decode(bitio.NewReader(p), out); err != nil {
		return nil, err
	}
	return out, nil
}

// Lengths returns a copy of the 256 code lengths.
func (c *Code) Lengths() [256]uint8 { return c.lens }

// TableBits returns the size in bits of the serialized code table that a
// program using this code must carry (MarshalBinary's output). A
// preselected code is hardwired in the decoder, so its table costs nothing
// at run time; callers account for that distinction.
func (c *Code) TableBits() int { return 256 * tableEntryBits(c.maxLen) }

func tableEntryBits(maxLen uint8) int {
	// Lengths 0..maxLen need enough bits to store maxLen distinct values
	// plus "absent". 16-bit-bounded codes fit in 5 bits per entry;
	// traditional codes may need up to 7 (or 8 for the pathological case).
	bits := 1
	for (1 << bits) <= int(maxLen) {
		bits++
	}
	return bits
}

// MarshalBinary serializes the code as 256 fixed-width length fields.
func (c *Code) MarshalBinary() ([]byte, error) {
	var w bitio.Writer
	width := uint(tableEntryBits(c.maxLen))
	w.WriteBits(uint64(c.maxLen), 8)
	for _, l := range c.lens {
		w.WriteBits(uint64(l), width)
	}
	return w.Bytes(), nil
}

// UnmarshalCode reconstructs a Code serialized by MarshalBinary.
func UnmarshalCode(p []byte) (*Code, error) {
	r := bitio.NewReader(p)
	maxLen, err := r.ReadBits(8)
	if err != nil {
		return nil, err
	}
	if maxLen == 0 || maxLen > 64 {
		return nil, ErrBadCode
	}
	width := uint(tableEntryBits(uint8(maxLen)))
	var lens [256]uint8
	for i := range lens {
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		lens[i] = uint8(v)
	}
	return NewCode(lens)
}
