package huffman

import (
	"bytes"
	"errors"
	"testing"

	"ccrp/internal/bitio"
)

// fuzzBoundedCode builds one fixed 16-bit-bounded code over a skewed
// histogram, the same shape as the preselected corpus code the decoder
// hardware would hardwire.
func fuzzBoundedCode(tb testing.TB) *Code {
	var h Histogram
	for i := 0; i < 256; i++ {
		h[i] = uint64(1 + (i*i)%97)
	}
	code, err := BuildBounded(&h, 16)
	if err != nil {
		tb.Fatal(err)
	}
	return code
}

// FuzzDecode hardens bounded-Huffman decoding against hostile compressed
// streams: any byte soup must either decode (it is a complete code, so
// most streams do) or fail with an error — never panic.
func FuzzDecode(f *testing.F) {
	code := fuzzBoundedCode(f)
	sample := []byte("the quick brown fox jumps over the lazy dog")
	enc, err := code.EncodeToBytes(sample)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc, len(sample))
	f.Add([]byte{}, 1)
	f.Add(enc[:len(enc)/2], len(sample))
	f.Add(enc, -1)
	f.Add([]byte{0xFF}, 64)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n > 4096 {
			n %= 4096 // cap the output allocation only
		}
		out, err := code.DecodeBytes(data, n)
		if err != nil {
			return
		}
		if len(out) != n {
			t.Fatalf("DecodeBytes returned %d symbols, want %d", len(out), n)
		}
		// A successful decode must round-trip: re-encoding the output
		// reproduces the consumed prefix of the input stream.
		re, err := code.EncodeToBytes(out)
		if err != nil {
			t.Fatalf("re-encoding decoded output: %v", err)
		}
		back, err := code.DecodeBytes(re, n)
		if err != nil || !bytes.Equal(back, out) {
			t.Fatalf("decoded output does not round-trip (err=%v)", err)
		}
	})
}

// FuzzUnmarshalCode hardens the serialized code-table parser: arbitrary
// blobs must never panic, and every accepted table must produce a code
// whose own serialization parses back.
func FuzzUnmarshalCode(f *testing.F) {
	code := fuzzBoundedCode(f)
	blob, err := code.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:8])

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCode(data)
		if err != nil {
			return
		}
		blob, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted code fails MarshalBinary: %v", err)
		}
		if _, err := UnmarshalCode(blob); err != nil {
			t.Fatalf("accepted code fails re-parse: %v", err)
		}
	})
}

// TestDecodeBytesNegativeLength pins the hardened error path.
func TestDecodeBytesNegativeLength(t *testing.T) {
	code := fuzzBoundedCode(t)
	if _, err := code.DecodeBytes([]byte{0x00}, -1); !errors.Is(err, ErrBadCode) {
		t.Fatalf("DecodeBytes(p, -1) error = %v, want ErrBadCode", err)
	}
}

// TestDecodeShortStream pins the underrun error: a truncated stream
// reports bitio.ErrShortStream through Decode's wrapping.
func TestDecodeShortStream(t *testing.T) {
	code := fuzzBoundedCode(t)
	out := make([]byte, 64)
	err := code.Decode(bitio.NewReader([]byte{0x00}), out)
	if err == nil {
		t.Fatal("Decode of a 1-byte stream into 64 symbols succeeded")
	}
}
