//go:build !race

package huffman

// raceEnabled reports whether the race detector is active; timing
// assertions are skipped under it.
const raceEnabled = false
