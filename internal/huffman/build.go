package huffman

import (
	"container/heap"
	"fmt"
	"sort"
)

// BuildTraditional constructs an optimal (unbounded) Huffman code from the
// histogram. Ties are broken deterministically so that the same histogram
// always yields the same code. Symbols with zero count get no codeword.
//
// Unbounded codes can in principle need up to 255 bits per symbol (the
// paper's worst-case analysis); codewords longer than 64 bits are rejected
// with ErrOverlongCode, which no realistic program histogram approaches.
func BuildTraditional(h *Histogram) (*Code, error) {
	lens, err := traditionalLengths(h)
	if err != nil {
		return nil, err
	}
	return NewCode(lens)
}

type treeNode struct {
	weight uint64
	order  int // tie-break: creation order (leaves first, by symbol)
	depth  int // max depth below, to prefer shallow merges on ties
	left   *treeNode
	right  *treeNode
	sym    int // leaf symbol, -1 for internal
}

type nodeHeap []*treeNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	if h[i].depth != h[j].depth {
		return h[i].depth < h[j].depth
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)     { *h = append(*h, x.(*treeNode)) }
func (h *nodeHeap) Pop() (top any) { old := *h; n := len(old); top = old[n-1]; *h = old[:n-1]; return }

func traditionalLengths(h *Histogram) ([256]uint8, error) {
	var lens [256]uint8
	var hp nodeHeap
	order := 0
	for s, c := range h {
		if c > 0 {
			hp = append(hp, &treeNode{weight: c, order: order, sym: s})
			order++
		}
	}
	if len(hp) == 0 {
		return lens, ErrEmptyHistogram
	}
	if len(hp) == 1 {
		lens[hp[0].sym] = 1
		return lens, nil
	}
	heap.Init(&hp)
	for hp.Len() > 1 {
		a := heap.Pop(&hp).(*treeNode)
		b := heap.Pop(&hp).(*treeNode)
		d := a.depth
		if b.depth > d {
			d = b.depth
		}
		heap.Push(&hp, &treeNode{weight: a.weight + b.weight, order: order, depth: d + 1, left: a, right: b, sym: -1})
		order++
	}
	root := hp[0]
	var walk func(n *treeNode, depth int) error
	walk = func(n *treeNode, depth int) error {
		if n.sym >= 0 {
			if depth > 64 {
				return ErrOverlongCode
			}
			if depth == 0 {
				depth = 1
			}
			lens[n.sym] = uint8(depth)
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return lens, err
	}
	return lens, nil
}

// BuildBounded constructs an optimal length-limited Huffman code with no
// codeword longer than maxLen bits, using the package-merge algorithm.
// The paper's Bounded Huffman code is BuildBounded(h, 16); the Preselected
// Bounded Huffman code is BuildBounded(corpus.Smooth(), 16).
func BuildBounded(h *Histogram, maxLen int) (*Code, error) {
	if maxLen < 1 || maxLen > 64 {
		return nil, fmt.Errorf("huffman: bound %d out of range [1,64]", maxLen)
	}
	type coin struct {
		weight uint64
		syms   []int16 // symbols contained in this package
	}
	var leaves []coin
	for s, c := range h {
		if c > 0 {
			leaves = append(leaves, coin{weight: c, syms: []int16{int16(s)}})
		}
	}
	n := len(leaves)
	if n == 0 {
		return nil, ErrEmptyHistogram
	}
	var lens [256]uint8
	if n == 1 {
		lens[leaves[0].syms[0]] = 1
		return NewCode(lens)
	}
	// A prefix code over n symbols needs ceil(log2 n) bits of depth.
	if 1<<maxLen < n {
		return nil, fmt.Errorf("huffman: bound %d too small for %d symbols", maxLen, n)
	}
	sort.SliceStable(leaves, func(i, j int) bool {
		if leaves[i].weight != leaves[j].weight {
			return leaves[i].weight < leaves[j].weight
		}
		return leaves[i].syms[0] < leaves[j].syms[0]
	})

	// Package-merge: list at level maxLen is the sorted leaves; moving up
	// one level packages adjacent pairs and merges fresh leaves back in.
	list := append([]coin(nil), leaves...)
	for level := maxLen - 1; level >= 1; level-- {
		var packages []coin
		for i := 0; i+1 < len(list); i += 2 {
			syms := make([]int16, 0, len(list[i].syms)+len(list[i+1].syms))
			syms = append(syms, list[i].syms...)
			syms = append(syms, list[i+1].syms...)
			packages = append(packages, coin{weight: list[i].weight + list[i+1].weight, syms: syms})
		}
		merged := make([]coin, 0, len(leaves)+len(packages))
		li, pi := 0, 0
		for li < len(leaves) || pi < len(packages) {
			switch {
			case pi == len(packages):
				merged = append(merged, leaves[li])
				li++
			case li == len(leaves):
				merged = append(merged, packages[pi])
				pi++
			case leaves[li].weight <= packages[pi].weight:
				merged = append(merged, leaves[li])
				li++
			default:
				merged = append(merged, packages[pi])
				pi++
			}
		}
		list = merged
	}
	// The first 2n-2 items of the level-1 list define the solution: each
	// appearance of a symbol adds one to its code length.
	take := 2*n - 2
	if take > len(list) {
		return nil, fmt.Errorf("huffman: package-merge produced short list (%d < %d)", len(list), take)
	}
	for _, c := range list[:take] {
		for _, s := range c.syms {
			lens[s]++
		}
	}
	return NewCode(lens)
}

// DepthBound returns the maximum codeword length any Huffman code built
// from a histogram with the given total count can have. This is the
// paper's §2.2 worst-case analysis ("encoded bit strings may require up
// to 255 bits to represent one byte"): a depth-d codeword requires
// Fibonacci-like counts, so total >= Fib(d+2)-1, and for byte symbols the
// depth can never exceed 255 regardless of total.
func DepthBound(total uint64) int {
	// Find the largest d with Fib(d+2)-1 <= total.
	a, b := uint64(1), uint64(1) // Fib(1), Fib(2)
	d := 0
	for d < 255 {
		next := a + b
		if next < b { // overflow: counts this large allow the full 255
			return 255
		}
		a, b = b, next
		if b-1 > total {
			return d
		}
		d++
	}
	return 255
}
