package huffman

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ccrp/internal/bitio"
)

// testCodes builds a spread of code shapes: skewed bounded (the
// preselected-code shape), flat, unbounded traditional with long tails,
// and the degenerate single-symbol code.
func testCodes(tb testing.TB) map[string]*Code {
	tb.Helper()
	codes := map[string]*Code{}

	var skew Histogram
	for i := 0; i < 256; i++ {
		skew[i] = uint64(1 + (i*i)%97)
	}
	skew[0] = 1 << 20
	c, err := BuildBounded(&skew, 16)
	if err != nil {
		tb.Fatal(err)
	}
	codes["bounded16-skewed"] = c

	var flat Histogram
	for i := 0; i < 256; i++ {
		flat[i] = 1
	}
	if c, err = BuildBounded(&flat, 16); err != nil {
		tb.Fatal(err)
	}
	codes["bounded16-flat"] = c

	var steep Histogram
	for i := 0; i < 64; i++ {
		steep[i] = 1 << uint(i%40) // forces very long traditional codewords
	}
	if c, err = BuildTraditional(&steep); err != nil {
		tb.Fatal(err)
	}
	codes["traditional-steep"] = c

	var one Histogram
	one[42] = 7
	if c, err = BuildTraditional(&one); err != nil {
		tb.Fatal(err)
	}
	codes["degenerate-one-symbol"] = c

	return codes
}

// encodable returns bytes that have codewords under c.
func encodable(c *Code, rng *rand.Rand, n int) []byte {
	var syms []byte
	for s := 0; s < 256; s++ {
		if c.Len(byte(s)) > 0 {
			syms = append(syms, byte(s))
		}
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = syms[rng.Intn(len(syms))]
	}
	return out
}

// TestFastDecoderMatchesCanonical is the core differential guarantee:
// identical symbols and identical final bit positions on valid streams,
// for every code shape and for every chunk width.
func TestFastDecoderMatchesCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, code := range testCodes(t) {
		for _, chunk := range []int{1, 3, 8, FastChunkBits, 16} {
			fd := NewFastDecoderChunk(code, chunk)
			for trial := 0; trial < 50; trial++ {
				data := encodable(code, rng, 1+rng.Intn(200))
				enc, err := code.EncodeToBytes(data)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want := make([]byte, len(data))
				wr := bitio.NewReader(enc)
				if err := code.Decode(wr, want); err != nil {
					t.Fatalf("%s: canonical decode: %v", name, err)
				}
				got := make([]byte, len(data))
				gr := bitio.NewReader(enc)
				if err := fd.Decode(gr, got); err != nil {
					t.Fatalf("%s chunk %d: fast decode: %v", name, chunk, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s chunk %d: decoded bytes differ", name, chunk)
				}
				if gr.Pos() != wr.Pos() {
					t.Fatalf("%s chunk %d: bit position %d != canonical %d",
						name, chunk, gr.Pos(), wr.Pos())
				}
			}
		}
	}
}

// TestFastDecodeBytesMatches pins the DecodeBytes entry point against the
// canonical one, including the zero-padded tail.
func TestFastDecodeBytesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, code := range testCodes(t) {
		fd := NewFastDecoder(code)
		for trial := 0; trial < 50; trial++ {
			data := encodable(code, rng, 1+rng.Intn(300))
			enc, err := code.EncodeToBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			want, err := code.DecodeBytes(enc, len(data))
			if err != nil {
				t.Fatalf("%s: canonical: %v", name, err)
			}
			got, err := fd.DecodeBytes(enc, len(data))
			if err != nil {
				t.Fatalf("%s: fast: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: DecodeBytes output differs", name)
			}
		}
	}
}

// TestFastDecoderErrorParity checks that truncated and garbage streams
// fail (or succeed) in lockstep with the canonical decoder, with the
// positions still agreeing on success.
func TestFastDecoderErrorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, code := range testCodes(t) {
		fd := NewFastDecoder(code)
		for trial := 0; trial < 400; trial++ {
			buf := make([]byte, rng.Intn(12))
			rng.Read(buf)
			n := rng.Intn(3 * (len(buf) + 1))

			want, wantErr := code.DecodeBytes(buf, n)
			got, gotErr := fd.DecodeBytes(buf, n)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error parity: canonical err=%v, fast err=%v (buf=%x n=%d)",
					name, wantErr, gotErr, buf, n)
			}
			if wantErr == nil && !bytes.Equal(got, want) {
				t.Fatalf("%s: outputs differ on %x", name, buf)
			}
		}
	}
}

// TestFastDecoderShortStream pins the truncation error class.
func TestFastDecoderShortStream(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	fd := NewFastDecoder(code)
	if _, err := fd.DecodeBytes(nil, 1); !errors.Is(err, bitio.ErrShortStream) {
		t.Fatalf("empty stream error = %v, want ErrShortStream", err)
	}
	if _, err := fd.DecodeBytes([]byte{0xFF}, -1); !errors.Is(err, ErrBadCode) {
		t.Fatalf("negative length error = %v, want ErrBadCode", err)
	}
}

// TestFastMemoized: Code.Fast returns one shared decoder.
func TestFastMemoized(t *testing.T) {
	code := testCodes(t)["bounded16-flat"]
	if code.Fast() != code.Fast() {
		t.Fatal("Code.Fast is not memoized")
	}
	if code.Fast().RootBits() > FastChunkBits {
		t.Fatalf("root bits %d exceed chunk %d", code.Fast().RootBits(), FastChunkBits)
	}
	if code.Fast().TableEntries() < 1 {
		t.Fatal("empty fast-decoder table")
	}
}

// TestFastDecoderInterleaved mirrors codepack's usage: DecodeSymbol
// interleaved with raw ReadBits on the same reader must stay in sync
// with the canonical decoder doing the same dance.
func TestFastDecoderInterleaved(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	fd := NewFastDecoder(code)
	rng := rand.New(rand.NewSource(3))

	var w bitio.Writer
	var syms []byte
	var lits []uint64
	for i := 0; i < 64; i++ {
		s := encodable(code, rng, 1)[0]
		syms = append(syms, s)
		bits, n := code.Codeword(s)
		w.WriteBits(bits, uint(n))
		lit := uint64(rng.Intn(1 << 16))
		lits = append(lits, lit)
		w.WriteBits(lit, 16)
	}
	enc := w.Bytes()

	r := bitio.NewReader(enc)
	for i := range syms {
		s, err := fd.DecodeSymbol(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if s != syms[i] {
			t.Fatalf("symbol %d = %#x, want %#x", i, s, syms[i])
		}
		lit, err := r.ReadBits(16)
		if err != nil {
			t.Fatalf("literal %d: %v", i, err)
		}
		if lit != lits[i] {
			t.Fatalf("literal %d = %#x, want %#x", i, lit, lits[i])
		}
	}
}

// TestFastDecoderSpeedup is the CI guard behind the ≥2x tentpole claim:
// the LUT path must beat the canonical bit-serial decoder by a safe
// margin on a realistic corpus-shaped stream. The threshold is well
// below the typical speedup (5-10x) so scheduler noise cannot flake it;
// a fast path that regresses to parity still fails loudly.
func TestFastDecoderSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	code := testCodes(t)["bounded16-skewed"]
	fd := NewFastDecoder(code)
	rng := rand.New(rand.NewSource(9))
	data := encodable(code, rng, 1<<16)
	enc, err := code.EncodeToBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(decode func() error) float64 {
		// Best of 3 to shed scheduler noise.
		best := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := decode(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	canonical := measure(func() error {
		_, err := code.DecodeBytes(enc, len(data))
		return err
	})
	fast := measure(func() error {
		_, err := fd.DecodeBytes(enc, len(data))
		return err
	})
	if speedup := canonical / fast; speedup < 1.5 {
		t.Fatalf("fast decoder speedup %.2fx < 1.5x (canonical %.3fms, fast %.3fms)",
			speedup, canonical*1e3, fast*1e3)
	}
}

// FuzzFastDecoderDifferential feeds arbitrary byte soup to both decoders
// and requires identical outcomes: same success/failure, same symbols,
// same consumed bit count.
func FuzzFastDecoderDifferential(f *testing.F) {
	code := fuzzBoundedCode(f)
	fd := NewFastDecoder(code)
	sample, err := code.EncodeToBytes([]byte("differential fuzz seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sample, 22)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0x00}, 64)
	f.Add(sample[:len(sample)/2], 22)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 4096
		want := make([]byte, n)
		wr := bitio.NewReader(data)
		wantErr := code.Decode(wr, want)
		got := make([]byte, n)
		gr := bitio.NewReader(data)
		gotErr := fd.Decode(gr, got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error parity: canonical=%v fast=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatal("decoded symbols differ")
		}
		if gr.Pos() != wr.Pos() {
			t.Fatalf("bit position %d != canonical %d", gr.Pos(), wr.Pos())
		}
	})
}

// corpus-shaped benchmark stream shared by the Decode benchmarks: a
// zero-heavy stream (like real machine code) encoded under a bounded
// code trained on its own histogram — the production shape, where the
// coder is always trained on the corpus it later decodes.
func benchStream(tb testing.TB) (*Code, []byte, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 32*1024)
	for i := range data {
		// Zero-heavy, like real machine code.
		if rng.Intn(4) != 0 {
			data[i] = 0
		} else {
			data[i] = byte(rng.Intn(256))
		}
	}
	var h Histogram
	for _, s := range data {
		h[s]++
	}
	code, err := BuildBounded(&h, 16)
	if err != nil {
		tb.Fatal(err)
	}
	enc, err := code.EncodeToBytes(data)
	if err != nil {
		tb.Fatal(err)
	}
	return code, enc, len(data)
}

func BenchmarkDecodeCanonical(b *testing.B) {
	code, enc, n := benchStream(b)
	out := make([]byte, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Decode(bitio.NewReader(enc), out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFast(b *testing.B) {
	code, enc, n := benchStream(b)
	fd := NewFastDecoder(code)
	out := make([]byte, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fd.Decode(bitio.NewReader(enc), out); err != nil {
			b.Fatal(err)
		}
	}
}
