package huffman

import (
	"fmt"

	"ccrp/internal/bitio"
)

// FastDecoder is the table-driven decoder for a canonical Huffman code:
// the software realization of the paper's §3.4 mapping-ROM option. Where
// the hardware proposal indexes a 64K-entry ROM with the next 16 input
// bits and reads (symbol, length) in one access, FastDecoder compiles
// the code into chunked lookup tables of FastChunkBits bits per step —
// one lookup decodes any codeword of up to FastChunkBits bits, and the
// rare longer codewords chain through compact overflow sub-tables, one
// further lookup per chunk. The chunking trades the ROM's single wide
// access for tables small enough to stay cache-resident, which is what
// makes the software path fast in practice.
//
// FastDecoder is API-compatible with Code.Decode/DecodeBytes/DecodeSymbol
// and decodes byte-identically: same symbols, same bit positions, and
// matching error classes (bitio.ErrShortStream on truncation inside a
// codeword, ErrBadCode on unreachable codespace) — properties pinned by
// differential tests and fuzzing against the canonical decoder and the
// hardware models in internal/decoder.
type FastDecoder struct {
	// table is the flattened arena: the root table occupies
	// [0, 1<<rootBits); overflow sub-tables are appended behind it and
	// addressed by entry-encoded offsets.
	table    []uint32
	rootBits uint
	maxLen   uint8
}

// FastChunkBits is the default bits consumed per table step. 12 covers
// the common case in one lookup (a 16-bit-bounded code rarely assigns
// more than 12 bits to bytes that actually occur) while keeping the root
// table at 4K entries — 16 KiB, resident in L1/L2 — instead of the
// hardware's full 64K-entry mapping ROM.
const FastChunkBits = 12

// Entry encoding (uint32):
//
//	bits 30..31  kind: 0 invalid, 1 leaf, 2 sub-table pointer
//	leaf:        bits 8..15 = bits consumed at this step, bits 0..7 = symbol
//	pointer:     bits 24..29 = sub-table index width, bits 0..23 = arena offset
const (
	entInvalid = 0
	entLeaf    = 1
	entPtr     = 2
)

type fastCodeword struct {
	bits uint64
	len  uint8
	sym  byte
}

// NewFastDecoder compiles code into its chunked-LUT form with the
// default chunk width.
func NewFastDecoder(code *Code) *FastDecoder {
	return NewFastDecoderChunk(code, FastChunkBits)
}

// NewFastDecoderChunk compiles code with an explicit chunk width in
// [1, 16] — chunk 16 with a 16-bit-bounded code is exactly the paper's
// one-lookup 64K-entry mapping ROM; smaller chunks add overflow levels.
func NewFastDecoderChunk(code *Code, chunk int) *FastDecoder {
	if chunk < 1 || chunk > 16 {
		panic(fmt.Sprintf("huffman: fast-decoder chunk %d outside [1,16]", chunk))
	}
	var cws []fastCodeword
	for s := 0; s < 256; s++ {
		bits, n := code.Codeword(byte(s))
		if n == 0 {
			continue
		}
		cws = append(cws, fastCodeword{bits: bits, len: uint8(n), sym: byte(s)})
	}
	f := &FastDecoder{maxLen: code.maxLen}
	_, f.rootBits = f.buildTable(cws, 0, uint(chunk))
	return f
}

// buildTable lays out one table for the codewords in cws (all sharing
// their first `consumed` bits), returning its arena offset and index
// width. The table is appended to the arena; sub-tables recurse behind
// it (so a table's offset is captured on entry, not derived from the
// arena length after recursion).
func (f *FastDecoder) buildTable(cws []fastCodeword, consumed, chunk uint) (int, uint) {
	maxRem := uint(0)
	for _, w := range cws {
		if rem := uint(w.len) - consumed; rem > maxRem {
			maxRem = rem
		}
	}
	tblBits := maxRem
	if tblBits > chunk {
		tblBits = chunk
	}
	off := len(f.table)
	f.table = append(f.table, make([]uint32, 1<<tblBits)...)
	if off > 0xFFFFFF {
		// Unreachable for byte alphabets (≤256 codewords, ≤64-bit codes
		// keep the arena far below 16M entries); guard the encoding anyway.
		panic("huffman: fast-decoder table arena overflow")
	}

	// Longer-than-chunk codewords grouped by their next tblBits bits.
	overflow := map[uint64][]fastCodeword{}
	for _, w := range cws {
		rem := uint(w.len) - consumed
		// The codeword's bits after the consumed prefix, left-aligned in rem bits.
		suffix := w.bits & (1<<rem - 1)
		if rem <= tblBits {
			e := uint32(entLeaf)<<30 | uint32(rem)<<8 | uint32(w.sym)
			base := suffix << (tblBits - rem)
			for i := uint64(0); i < 1<<(tblBits-rem); i++ {
				f.table[off+int(base+i)] = e
			}
			continue
		}
		prefix := suffix >> (rem - tblBits)
		overflow[prefix] = append(overflow[prefix], w)
	}
	for prefix, group := range overflow {
		subOff, subBits := f.buildTable(group, consumed+tblBits, chunk)
		f.table[off+int(prefix)] = uint32(entPtr)<<30 | uint32(subBits)<<24 | uint32(subOff)
	}
	return off, tblBits
}

// RootBits returns the index width of the first-level table.
func (f *FastDecoder) RootBits() int { return int(f.rootBits) }

// TableEntries returns the total arena size across all levels — the
// software analogue of the mapping ROM's entry count.
func (f *FastDecoder) TableEntries() int { return len(f.table) }

// SizeBits returns the table storage in bits (32-bit entries), for
// comparison against decoder.ROM's hardware cost figures.
func (f *FastDecoder) SizeBits() int { return 32 * len(f.table) }

// decodeOne decodes one symbol from buf starting at bit position pos.
// total is len(buf)*8. It returns the symbol and the bits consumed.
func (f *FastDecoder) decodeOne(buf []byte, pos, total int) (byte, int, error) {
	off := uint32(0)
	bits := f.rootBits
	consumed := 0
	for {
		rem := uint(total - (pos + consumed))
		e := f.table[off+uint32(peek64(buf, pos+consumed)>>(64-bits))]
		switch e >> 30 {
		case entLeaf:
			l := uint(e>>8) & 0xFF
			if l > rem {
				// The stream ends inside this codeword: the canonical
				// bit-serial decoder runs out of bits here too.
				return 0, 0, bitio.ErrShortStream
			}
			return byte(e), consumed + int(l), nil
		case entPtr:
			if rem <= bits {
				// Every codeword reachable through this pointer needs
				// more bits than the stream has left.
				return 0, 0, bitio.ErrShortStream
			}
			consumed += int(bits)
			off = e & 0xFFFFFF
			bits = uint(e>>24) & 0x3F
		default:
			if rem == 0 {
				return 0, 0, bitio.ErrShortStream
			}
			// Unreachable codespace — only possible for the degenerate
			// one-symbol code, where the canonical decoder also rejects.
			return 0, 0, ErrBadCode
		}
	}
}

// decode fills out with symbols decoded from buf starting at bit
// position pos, returning the final bit position.
func (f *FastDecoder) decode(buf []byte, pos int, out []byte) (int, error) {
	total := len(buf) * 8
	for i := range out {
		sym, adv, err := f.decodeOne(buf, pos, total)
		if err != nil {
			return pos, fmt.Errorf("huffman: decoding symbol %d: %w", i, err)
		}
		out[i] = sym
		pos += adv
	}
	return pos, nil
}

// DecodeSymbol decodes one symbol from r — Code.DecodeSymbol's fast twin.
func (f *FastDecoder) DecodeSymbol(r *bitio.Reader) (byte, error) {
	buf := r.Data()
	sym, adv, err := f.decodeOne(buf, r.Pos(), len(buf)*8)
	if err != nil {
		return 0, err
	}
	if err := r.Skip(uint(adv)); err != nil {
		return 0, err
	}
	return sym, nil
}

// Decode fills out with len(out) decoded symbols read from r, leaving r
// at exactly the bit position the canonical decoder would.
func (f *FastDecoder) Decode(r *bitio.Reader, out []byte) error {
	buf := r.Data()
	end, err := f.decode(buf, r.Pos(), out)
	if skipErr := r.Skip(uint(end - r.Pos())); skipErr != nil {
		return skipErr
	}
	return err
}

// DecodeInto decodes exactly len(dst) symbols from the (zero-padded)
// buffer p into dst without allocating.
func (f *FastDecoder) DecodeInto(dst, p []byte) error {
	_, err := f.decode(p, 0, dst)
	return err
}

// DecodeBytes decodes exactly n symbols from the (zero-padded) buffer p.
func (f *FastDecoder) DecodeBytes(p []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative output length %d", ErrBadCode, n)
	}
	out := make([]byte, n)
	if _, err := f.decode(p, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Fast returns the memoized table-driven decoder for this code, built on
// first use. Codes are immutable, so the decoder is shared freely across
// goroutines.
func (c *Code) Fast() *FastDecoder {
	c.fastOnce.Do(func() { c.fast = NewFastDecoder(c) })
	return c.fast
}
