package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ccrp/internal/bitio"
)

func TestHistogramBasics(t *testing.T) {
	h := HistogramOf([]byte("aabbbc"), []byte("c"))
	if h['a'] != 2 || h['b'] != 3 || h['c'] != 2 {
		t.Fatalf("counts a=%d b=%d c=%d", h['a'], h['b'], h['c'])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Distinct() != 3 {
		t.Fatalf("distinct = %d", h.Distinct())
	}
	s := h.Smooth()
	if s.Total() != 7+256 || s[0] != 1 {
		t.Fatalf("smooth total=%d zero=%d", s.Total(), s[0])
	}
	var m Histogram
	m.Merge(h)
	m.Merge(h)
	if m['b'] != 6 {
		t.Fatalf("merge b=%d", m['b'])
	}
}

func TestTraditionalKnownCode(t *testing.T) {
	// Frequencies 1,1,2,4: optimal lengths 3,3,2,1.
	var h Histogram
	h['a'], h['b'], h['c'], h['d'] = 1, 1, 2, 4
	c, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	want := map[byte]int{'a': 3, 'b': 3, 'c': 2, 'd': 1}
	for s, l := range want {
		if c.Len(s) != l {
			t.Errorf("len(%c) = %d, want %d", s, c.Len(s), l)
		}
	}
	if c.MaxLen() != 3 {
		t.Errorf("maxlen = %d", c.MaxLen())
	}
}

func TestSingleSymbol(t *testing.T) {
	var h Histogram
	h[42] = 100
	for _, build := range []func(*Histogram) (*Code, error){
		BuildTraditional,
		func(h *Histogram) (*Code, error) { return BuildBounded(h, 16) },
	} {
		c, err := build(&h)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len(42) != 1 {
			t.Fatalf("single-symbol len = %d", c.Len(42))
		}
		enc, err := c.EncodeToBytes(bytes.Repeat([]byte{42}, 9))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.DecodeBytes(enc, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, bytes.Repeat([]byte{42}, 9)) {
			t.Fatal("single-symbol round trip failed")
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if _, err := BuildTraditional(&h); err != ErrEmptyHistogram {
		t.Errorf("traditional err = %v", err)
	}
	if _, err := BuildBounded(&h, 16); err != ErrEmptyHistogram {
		t.Errorf("bounded err = %v", err)
	}
}

func TestBoundedRespectsBound(t *testing.T) {
	// Fibonacci-ish weights force long codes in unbounded Huffman.
	var h Histogram
	w := uint64(1)
	prev := uint64(1)
	for s := 0; s < 40; s++ {
		h[s] = w
		w, prev = w+prev, w
	}
	unbounded, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.MaxLen() <= 16 {
		t.Fatalf("test premise broken: unbounded maxlen = %d", unbounded.MaxLen())
	}
	for _, bound := range []int{6, 8, 16} {
		c, err := BuildBounded(&h, bound)
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		if c.MaxLen() > bound {
			t.Errorf("bound %d violated: maxlen = %d", bound, c.MaxLen())
		}
	}
}

func TestBoundedOptimalWhenBoundLoose(t *testing.T) {
	// With a generous bound, package-merge must match Huffman's cost.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for s := 0; s < 256; s++ {
		h[s] = uint64(rng.Intn(10000) + 1)
	}
	trad, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := BuildBounded(&h, 32)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(c *Code) uint64 {
		var total uint64
		for s := 0; s < 256; s++ {
			total += h[s] * uint64(c.Len(byte(s)))
		}
		return total
	}
	if ct, cb := cost(trad), cost(bounded); ct != cb {
		t.Errorf("package-merge cost %d != huffman cost %d", cb, ct)
	}
}

func TestBoundedCostMonotoneInBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	for s := 0; s < 200; s++ {
		h[s] = uint64(rng.Intn(1<<uint(rng.Intn(20)))) + 1
	}
	cost := func(c *Code) uint64 {
		var total uint64
		for s := 0; s < 256; s++ {
			total += h[s] * uint64(c.Len(byte(s)))
		}
		return total
	}
	var prev uint64
	for i, bound := range []int{8, 10, 12, 16, 24} {
		c, err := BuildBounded(&h, bound)
		if err != nil {
			t.Fatal(err)
		}
		ct := cost(c)
		if i > 0 && ct > prev {
			t.Errorf("cost increased when bound loosened to %d: %d > %d", bound, ct, prev)
		}
		prev = ct
	}
}

func TestBoundTooSmall(t *testing.T) {
	var h Histogram
	for s := 0; s < 256; s++ {
		h[s] = 1
	}
	if _, err := BuildBounded(&h, 7); err == nil {
		t.Error("bound 7 for 256 symbols must fail")
	}
	if c, err := BuildBounded(&h, 8); err != nil || c.MaxLen() != 8 {
		t.Errorf("uniform 256 symbols: c=%v err=%v", c, err)
	}
	if _, err := BuildBounded(&h, 0); err == nil {
		t.Error("bound 0 accepted")
	}
	if _, err := BuildBounded(&h, 65); err == nil {
		t.Error("bound 65 accepted")
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	var h Histogram
	h['x'], h['y'] = 5, 3
	c, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncodeToBytes([]byte("xyz")); err == nil {
		t.Error("encoding symbol without codeword must fail")
	}
	if _, err := c.EncodedBits([]byte("xyz")); err == nil {
		t.Error("EncodedBits of unknown symbol must fail")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	h := HistogramOf([]byte("the quick brown fox jumps over the lazy dog"))
	c, err := BuildTraditional(h)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeToBytes([]byte("the fox"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeBytes(enc[:1], 7); err == nil {
		t.Error("decoding truncated stream must fail")
	}
}

func TestNewCodeRejectsBadLengths(t *testing.T) {
	var lens [256]uint8
	lens['a'], lens['b'] = 1, 2 // incomplete (Kraft sum 3/4)
	if _, err := NewCode(lens); err == nil {
		t.Error("incomplete code accepted")
	}
	lens['a'], lens['b'], lens['c'] = 1, 1, 1 // overfull
	if _, err := NewCode(lens); err == nil {
		t.Error("overfull code accepted")
	}
	var quad [256]uint8
	quad['a'], quad['b'], quad['c'], quad['d'] = 1, 1, 1, 1 // doubly complete
	if _, err := NewCode(quad); err == nil {
		t.Error("doubly-complete code accepted")
	}
	var over [256]uint8
	over['a'] = 65
	if _, err := NewCode(over); err == nil {
		t.Error("overlong length accepted")
	}
}

func TestTableRoundTrip(t *testing.T) {
	h := HistogramOf([]byte("abracadabra banana cabana")).Smooth()
	c, err := BuildBounded(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(blob)*8, c.TableBits()+8; got < want {
		t.Errorf("marshaled size %d bits < TableBits %d", got, want)
	}
	c2, err := UnmarshalCode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Lengths() != c.Lengths() {
		t.Error("lengths changed after marshal round trip")
	}
	for s := 0; s < 256; s++ {
		w1, l1 := c.Codeword(byte(s))
		w2, l2 := c2.Codeword(byte(s))
		if w1 != w2 || l1 != l2 {
			t.Fatalf("codeword %d differs: %x/%d vs %x/%d", s, w1, l1, w2, l2)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := UnmarshalCode(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := UnmarshalCode([]byte{0}); err == nil {
		t.Error("zero maxlen accepted")
	}
	if _, err := UnmarshalCode([]byte{16, 1, 2}); err == nil {
		t.Error("truncated table accepted")
	}
}

// Property: encode→decode is the identity for any data, under both
// builders, using the data's own histogram.
func TestRoundTripQuick(t *testing.T) {
	f := func(data []byte, bounded bool) bool {
		if len(data) == 0 {
			return true
		}
		h := HistogramOf(data)
		var c *Code
		var err error
		if bounded {
			c, err = BuildBounded(h, 16)
		} else {
			c, err = BuildTraditional(h)
		}
		if err != nil {
			return false
		}
		enc, err := c.EncodeToBytes(data)
		if err != nil {
			return false
		}
		dec, err := c.DecodeBytes(enc, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a smoothed bounded code encodes arbitrary data (every byte has
// a codeword) and round-trips — this is the preselected-code situation.
func TestSmoothedCodeEncodesAnything(t *testing.T) {
	corpus := HistogramOf([]byte("instruction bytes from some other program entirely"))
	c, err := BuildBounded(corpus.Smooth(), 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		enc, err := c.EncodeToBytes(data)
		if err != nil {
			return false
		}
		dec, err := c.DecodeBytes(enc, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodedBits equals the exact bit length produced by Encode.
func TestEncodedBitsMatchesEncoder(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		c, err := BuildBounded(HistogramOf(data), 16)
		if err != nil {
			return false
		}
		want, err := c.EncodedBits(data)
		if err != nil {
			return false
		}
		var w bitio.Writer
		if err := c.Encode(&w, data); err != nil {
			return false
		}
		return w.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: canonical codewords form a prefix code (no codeword is a
// prefix of another).
func TestPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for s := 0; s < 256; s++ {
		h[s] = uint64(rng.Intn(1000) + 1)
	}
	c, err := BuildBounded(&h, 16)
	if err != nil {
		t.Fatal(err)
	}
	type cw struct {
		bits uint64
		n    int
	}
	var words []cw
	for s := 0; s < 256; s++ {
		b, n := c.Codeword(byte(s))
		if n > 0 {
			words = append(words, cw{b, n})
		}
	}
	for i, a := range words {
		for j, b := range words {
			if i == j {
				continue
			}
			if a.n <= b.n && b.bits>>(uint(b.n-a.n)) == a.bits {
				t.Fatalf("codeword %x/%d is a prefix of %x/%d", a.bits, a.n, b.bits, b.n)
			}
		}
	}
}

// Deterministic construction: same histogram, same code, across calls.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var h Histogram
	for s := 0; s < 256; s++ {
		h[s] = uint64(rng.Intn(500))
	}
	a, err := BuildBounded(&h, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBounded(&h, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lengths() != b.Lengths() {
		t.Error("bounded build is nondeterministic")
	}
	at, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	if at.Lengths() != bt.Lengths() {
		t.Error("traditional build is nondeterministic")
	}
}

func BenchmarkBuildBounded16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	for s := 0; s < 256; s++ {
		h[s] = uint64(rng.Intn(100000) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildBounded(&h, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(rng.Intn(64)) // skewed: only low bytes
	}
	c, err := BuildBounded(HistogramOf(data).Smooth(), 16)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := c.EncodeToBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, 32)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decode(bitio.NewReader(enc), out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDepthBound(t *testing.T) {
	// A Fibonacci-weighted histogram achieves the worst case, so the
	// bound must be tight there and an upper bound everywhere.
	var h Histogram
	a, b := uint64(1), uint64(1)
	for s := 0; s < 40; s++ {
		h[s] = a
		a, b = b, a+b
	}
	c, err := BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	bound := DepthBound(h.Total())
	if c.MaxLen() > bound {
		t.Errorf("actual depth %d exceeds bound %d", c.MaxLen(), bound)
	}
	if bound-c.MaxLen() > 2 {
		t.Errorf("bound %d far from achieved depth %d on Fibonacci weights", bound, c.MaxLen())
	}
	// Small totals give small bounds; huge totals saturate at 255.
	if DepthBound(2) > 2 || DepthBound(10) > 5 {
		t.Errorf("small-total bounds too large: %d %d", DepthBound(2), DepthBound(10))
	}
	if DepthBound(1<<63) != 255 && DepthBound(1<<63) < 90 {
		t.Errorf("huge-total bound = %d", DepthBound(1<<63))
	}
	// Random histograms never exceed the bound.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		var rh Histogram
		for s := 0; s < 256; s++ {
			rh[s] = uint64(rng.Intn(1 << uint(rng.Intn(24))))
		}
		if rh.Distinct() < 2 {
			continue
		}
		c, err := BuildTraditional(&rh)
		if err != nil {
			continue
		}
		if c.MaxLen() > DepthBound(rh.Total()) {
			t.Fatalf("depth %d exceeds bound %d for total %d", c.MaxLen(), DepthBound(rh.Total()), rh.Total())
		}
	}
}
