package huffman

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ccrp/internal/bitio"
)

// TestMultiDecoderMatchesCanonical is the core differential guarantee for
// the multi-symbol kernel: identical symbols and identical final bit
// positions on valid streams, for every code shape and chunk width, with
// the FastDecoder cross-checked in the same pass.
func TestMultiDecoderMatchesCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, code := range testCodes(t) {
		for _, chunk := range []int{1, 3, 8, MultiChunkBits, 16} {
			md := NewMultiDecoderChunk(code, chunk)
			fd := NewFastDecoderChunk(code, chunk)
			for trial := 0; trial < 50; trial++ {
				data := encodable(code, rng, 1+rng.Intn(200))
				enc, err := code.EncodeToBytes(data)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want := make([]byte, len(data))
				wr := bitio.NewReader(enc)
				if err := code.Decode(wr, want); err != nil {
					t.Fatalf("%s: canonical decode: %v", name, err)
				}
				got := make([]byte, len(data))
				gr := bitio.NewReader(enc)
				if err := md.Decode(gr, got); err != nil {
					t.Fatalf("%s chunk %d: multi decode: %v", name, chunk, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s chunk %d: decoded bytes differ", name, chunk)
				}
				if gr.Pos() != wr.Pos() {
					t.Fatalf("%s chunk %d: bit position %d != canonical %d",
						name, chunk, gr.Pos(), wr.Pos())
				}
				fast, err := fd.DecodeBytes(enc, len(data))
				if err != nil {
					t.Fatalf("%s chunk %d: fast decode: %v", name, chunk, err)
				}
				if !bytes.Equal(fast, want) {
					t.Fatalf("%s chunk %d: fast decode differs from canonical", name, chunk)
				}
			}
		}
	}
}

// TestMultiDecoderPacking: on a skewed bounded code the 12-bit root must
// actually pack multiple symbols into entries — otherwise the kernel
// degenerates to FastDecoder with bigger tables.
func TestMultiDecoderPacking(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	md := NewMultiDecoder(code)
	counts := md.PackCounts()
	multi := 0
	for k := 2; k <= MaxPack; k++ {
		multi += counts[k]
	}
	if multi == 0 {
		t.Fatalf("no multi-symbol entries in root table (counts %v)", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1<<md.RootBits() {
		t.Fatalf("pack counts sum %d != root entries %d", total, 1<<md.RootBits())
	}
}

// TestMultiDecoderErrorParity checks that truncated and garbage streams
// fail (or succeed) in lockstep with the canonical decoder.
func TestMultiDecoderErrorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for name, code := range testCodes(t) {
		md := NewMultiDecoder(code)
		for trial := 0; trial < 400; trial++ {
			buf := make([]byte, rng.Intn(12))
			rng.Read(buf)
			n := rng.Intn(3 * (len(buf) + 1))

			want, wantErr := code.DecodeBytes(buf, n)
			got, gotErr := md.DecodeBytes(buf, n)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error parity: canonical err=%v, multi err=%v (buf=%x n=%d)",
					name, wantErr, gotErr, buf, n)
			}
			if wantErr == nil && !bytes.Equal(got, want) {
				t.Fatalf("%s: outputs differ on %x", name, buf)
			}
		}
	}
}

// TestMultiDecoderShortStream pins the truncation and bad-length error
// classes on the multi kernel's entry points.
func TestMultiDecoderShortStream(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	md := NewMultiDecoder(code)
	if _, err := md.DecodeBytes(nil, 1); !errors.Is(err, bitio.ErrShortStream) {
		t.Fatalf("empty stream error = %v, want ErrShortStream", err)
	}
	if _, err := md.DecodeBytes([]byte{0xFF}, -1); !errors.Is(err, ErrBadCode) {
		t.Fatalf("negative length error = %v, want ErrBadCode", err)
	}
	out := make([]byte, 1)
	if err := md.DecodeInto(out, nil); !errors.Is(err, bitio.ErrShortStream) {
		t.Fatalf("DecodeInto empty stream error = %v, want ErrShortStream", err)
	}
}

// TestMultiMemoized: Code.Multi returns one shared decoder.
func TestMultiMemoized(t *testing.T) {
	code := testCodes(t)["bounded16-flat"]
	if code.Multi() != code.Multi() {
		t.Fatal("Code.Multi is not memoized")
	}
	if code.Multi().RootBits() > MultiChunkBits {
		t.Fatalf("root bits %d exceed chunk %d", code.Multi().RootBits(), MultiChunkBits)
	}
	if code.Multi().TableEntries() < 1 {
		t.Fatal("empty multi-decoder table")
	}
	if code.Multi().SizeBits() != 64*code.Multi().TableEntries() {
		t.Fatal("SizeBits does not reflect 64-bit entries")
	}
}

// TestMultiDecoderInterleaved mirrors codepack's usage: DecodeSymbol
// interleaved with raw ReadBits on the same reader must consume exactly
// one codeword per call and stay in sync with the canonical decoder.
func TestMultiDecoderInterleaved(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	md := NewMultiDecoder(code)
	rng := rand.New(rand.NewSource(7))

	var w bitio.Writer
	var syms []byte
	var lits []uint64
	for i := 0; i < 64; i++ {
		s := encodable(code, rng, 1)[0]
		syms = append(syms, s)
		bits, n := code.Codeword(s)
		w.WriteBits(bits, uint(n))
		lit := uint64(rng.Intn(1 << 16))
		lits = append(lits, lit)
		w.WriteBits(lit, 16)
	}
	enc := w.Bytes()

	r := bitio.NewReader(enc)
	cr := bitio.NewReader(enc)
	for i := range syms {
		s, err := md.DecodeSymbol(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if s != syms[i] {
			t.Fatalf("symbol %d = %#x, want %#x", i, s, syms[i])
		}
		if _, err := code.DecodeSymbol(cr); err != nil {
			t.Fatalf("canonical symbol %d: %v", i, err)
		}
		if r.Pos() != cr.Pos() {
			t.Fatalf("after symbol %d: pos %d != canonical %d", i, r.Pos(), cr.Pos())
		}
		lit, err := r.ReadBits(16)
		if err != nil {
			t.Fatalf("literal %d: %v", i, err)
		}
		if lit != lits[i] {
			t.Fatalf("literal %d = %#x, want %#x", i, lit, lits[i])
		}
		cr.Skip(16)
	}
}

// TestDecodeIntoZeroAlloc pins the line-decode hot path at 0 allocs/op
// for both table-driven kernels: a pre-built decoder filling a
// caller-supplied buffer must not touch the heap.
func TestDecodeIntoZeroAlloc(t *testing.T) {
	code := testCodes(t)["bounded16-skewed"]
	rng := rand.New(rand.NewSource(13))
	data := encodable(code, rng, 32)
	enc, err := code.EncodeToBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	md := code.Multi()
	fd := code.Fast()
	dst := make([]byte, len(data))

	if n := testing.AllocsPerRun(200, func() {
		if err := md.DecodeInto(dst, enc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("MultiDecoder.DecodeInto allocates %.1f/op, want 0", n)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("DecodeInto round-trip mismatch")
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := fd.DecodeInto(dst, enc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("FastDecoder.DecodeInto allocates %.1f/op, want 0", n)
	}
}

// TestMultiDecoderSpeedup is the CI guard behind the multi-symbol kernel:
// it must beat the canonical bit-serial decoder by a wide margin and not
// regress below FastDecoder on a corpus-shaped stream. Thresholds sit
// well under the typical ratios so scheduler noise cannot flake them.
func TestMultiDecoderSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	code, enc, n := benchStream(t)
	md := NewMultiDecoder(code)
	fd := NewFastDecoder(code)
	out := make([]byte, n)

	measure := func(decode func() error) float64 {
		best := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := decode(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	canonical := measure(func() error {
		_, err := code.DecodeBytes(enc, n)
		return err
	})
	fast := measure(func() error { return fd.DecodeInto(out, enc) })
	multi := measure(func() error { return md.DecodeInto(out, enc) })
	if speedup := canonical / multi; speedup < 3 {
		t.Fatalf("multi decoder speedup %.2fx < 3x over canonical (canonical %.3fms, multi %.3fms)",
			speedup, canonical*1e3, multi*1e3)
	}
	if ratio := fast / multi; ratio < 0.8 {
		t.Fatalf("multi decoder is %.2fx of fast — regressed below FastDecoder (fast %.3fms, multi %.3fms)",
			ratio, fast*1e3, multi*1e3)
	}
}

// FuzzMultiDecoderDifferential feeds arbitrary byte soup to the
// canonical, fast, and multi-symbol decoders and requires identical
// outcomes: same success/failure, same symbols, same consumed bit count.
func FuzzMultiDecoderDifferential(f *testing.F) {
	code := fuzzBoundedCode(f)
	md := NewMultiDecoder(code)
	fd := NewFastDecoder(code)
	sample, err := code.EncodeToBytes([]byte("multi differential fuzz seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sample, 28)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0x00}, 64)
	f.Add(sample[:len(sample)/2], 28)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 4096
		want := make([]byte, n)
		wr := bitio.NewReader(data)
		wantErr := code.Decode(wr, want)

		got := make([]byte, n)
		gr := bitio.NewReader(data)
		gotErr := md.Decode(gr, got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error parity: canonical=%v multi=%v", wantErr, gotErr)
		}
		fgot := make([]byte, n)
		fr := bitio.NewReader(data)
		fErr := fd.Decode(fr, fgot)
		if (wantErr == nil) != (fErr == nil) {
			t.Fatalf("error parity: canonical=%v fast=%v", wantErr, fErr)
		}
		if wantErr != nil {
			return
		}
		if !bytes.Equal(got, want) || !bytes.Equal(fgot, want) {
			t.Fatal("decoded symbols differ")
		}
		if gr.Pos() != wr.Pos() || fr.Pos() != wr.Pos() {
			t.Fatalf("bit positions multi=%d fast=%d canonical=%d", gr.Pos(), fr.Pos(), wr.Pos())
		}
	})
}

func BenchmarkDecodeMulti(b *testing.B) {
	code, enc, n := benchStream(b)
	md := NewMultiDecoder(code)
	out := make([]byte, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := md.DecodeInto(out, enc); err != nil {
			b.Fatal(err)
		}
	}
}
