package memory

import "testing"

func TestEPROMTiming(t *testing.T) {
	m := EPROM{}
	if m.WordArrival(0) != 3 || m.WordArrival(7) != 24 {
		t.Errorf("arrivals: %d %d", m.WordArrival(0), m.WordArrival(7))
	}
	if m.BurstCycles(8) != 24 {
		t.Errorf("burst(8) = %d", m.BurstCycles(8))
	}
	if m.RandomCycles() != 3 || m.PostBurstCycles() != 0 {
		t.Error("random/post wrong")
	}
}

func TestBurstEPROMTiming(t *testing.T) {
	m := BurstEPROM{}
	if m.WordArrival(0) != 3 || m.WordArrival(1) != 4 || m.WordArrival(7) != 10 {
		t.Error("arrivals wrong")
	}
	if m.BurstCycles(8) != 10 || m.BurstCycles(1) != 3 || m.BurstCycles(0) != 0 {
		t.Error("burst wrong")
	}
}

func TestSCDRAMTiming(t *testing.T) {
	m := SCDRAM{}
	if m.WordArrival(0) != 4 || m.WordArrival(7) != 11 {
		t.Error("arrivals wrong")
	}
	if m.BurstCycles(8) != 11 || m.PostBurstCycles() != 2 {
		t.Error("burst/precharge wrong")
	}
	if m.RandomCycles() != 4 {
		t.Error("random wrong")
	}
}

// The defining relationship: a full 8-word line refill is much cheaper on
// burst memories, but a single random word costs about the same.
func TestRelativeOrdering(t *testing.T) {
	e, b, d := EPROM{}, BurstEPROM{}, SCDRAM{}
	if !(e.BurstCycles(8) > d.BurstCycles(8) && d.BurstCycles(8) > b.BurstCycles(8)) {
		t.Errorf("burst ordering: e=%d d=%d b=%d",
			e.BurstCycles(8), d.BurstCycles(8), b.BurstCycles(8))
	}
}

// Arrival times must be consistent with burst completion and
// monotonically increasing.
func TestArrivalConsistency(t *testing.T) {
	for _, m := range Models() {
		prev := uint64(0)
		for i := 0; i < 16; i++ {
			a := m.WordArrival(i)
			if a <= prev {
				t.Errorf("%s: arrival(%d)=%d not increasing", m.Name(), i, a)
			}
			prev = a
			if got := m.BurstCycles(i + 1); got != a {
				t.Errorf("%s: burst(%d)=%d != arrival(%d)=%d", m.Name(), i+1, got, i, a)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"EPROM", "Burst EPROM", "DRAM"} {
		m, ok := ByName(want)
		if !ok || m.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", want, m, ok)
		}
	}
	if _, ok := ByName("SRAM"); ok {
		t.Error("unknown model resolved")
	}
}
