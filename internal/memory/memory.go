// Package memory provides the instruction-memory timing models of the
// paper's §4.2.1, in processor cycles (40 ns at 25 MHz):
//
//   - EPROM: standard EPROMs, ~100 ns access; every word read takes 3
//     cycles, with no burst capability.
//   - Burst EPROM: 3 cycles for the first word of a sequential burst,
//     then 1 cycle per subsequent word.
//   - Static-column DRAM: 4 cycles for the first word, 1 per subsequent
//     word, and the array cannot be accessed for 2 cycles after a burst
//     (precharge).
//
// Models expose per-word arrival times so the CCRP refill engine can
// overlap Huffman decoding with the incoming compressed word stream.
package memory

// Model is an instruction-memory timing model.
type Model interface {
	// Name identifies the model in experiment tables.
	Name() string
	// WordArrival returns the cycle, counted from the start of a
	// sequential burst, at which word i (0-based) has been read.
	WordArrival(i int) uint64
	// BurstCycles returns the completion time of an n-word sequential
	// read, excluding any post-burst penalty.
	BurstCycles(n int) uint64
	// RandomCycles returns the cost of one isolated word read.
	RandomCycles() uint64
	// PostBurstCycles returns the recovery time after a burst before the
	// next access can start (DRAM precharge).
	PostBurstCycles() uint64
}

// EPROM is the standard-EPROM model: 3 cycles per word, no burst mode.
type EPROM struct{}

func (EPROM) Name() string             { return "EPROM" }
func (EPROM) WordArrival(i int) uint64 { return 3 * uint64(i+1) }
func (EPROM) BurstCycles(n int) uint64 { return 3 * uint64(n) }
func (EPROM) RandomCycles() uint64     { return 3 }
func (EPROM) PostBurstCycles() uint64  { return 0 }

// BurstEPROM is the burst-mode EPROM model: 3 cycles for the first word,
// 1 for each subsequent word of a sequential read.
type BurstEPROM struct{}

func (BurstEPROM) Name() string             { return "Burst EPROM" }
func (BurstEPROM) WordArrival(i int) uint64 { return 3 + uint64(i) }
func (BurstEPROM) BurstCycles(n int) uint64 {
	if n == 0 {
		return 0
	}
	return 2 + uint64(n)
}
func (BurstEPROM) RandomCycles() uint64    { return 3 }
func (BurstEPROM) PostBurstCycles() uint64 { return 0 }

// SCDRAM is the static-column DRAM model (70 ns 4M-bit parts): 4 cycles
// for the first word, 1 per subsequent word, 2 cycles of precharge after
// each burst.
type SCDRAM struct{}

func (SCDRAM) Name() string             { return "DRAM" }
func (SCDRAM) WordArrival(i int) uint64 { return 4 + uint64(i) }
func (SCDRAM) BurstCycles(n int) uint64 {
	if n == 0 {
		return 0
	}
	return 3 + uint64(n)
}
func (SCDRAM) RandomCycles() uint64    { return 4 }
func (SCDRAM) PostBurstCycles() uint64 { return 2 }

// Models returns the three paper configurations in presentation order.
func Models() []Model { return []Model{EPROM{}, BurstEPROM{}, SCDRAM{}} }

// ByName returns the model with the given Name.
func ByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}
