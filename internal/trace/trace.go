// Package trace defines the instruction-address trace format shared by
// the functional simulator (producer) and the cache/system simulators
// (consumers). It plays the role pixie's address traces played in the
// paper's experimental method.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Flags classify one executed instruction.
const (
	FlagLoad  uint8 = 1 << iota // instruction read data memory
	FlagStore                   // instruction wrote data memory
)

// Event records one executed instruction: its fetch address, the data
// address it touched (if any), and load/store flags.
type Event struct {
	PC    uint32
	Addr  uint32 // data address for loads/stores, else 0
	Flags uint8
}

// IsLoad reports whether the event performed a data read.
func (e Event) IsLoad() bool { return e.Flags&FlagLoad != 0 }

// IsStore reports whether the event performed a data write.
func (e Event) IsStore() bool { return e.Flags&FlagStore != 0 }

// IsMemOp reports whether the event accessed data memory.
func (e Event) IsMemOp() bool { return e.Flags&(FlagLoad|FlagStore) != 0 }

// Trace is a complete execution trace plus the summary counters the
// performance model needs.
type Trace struct {
	Events []Event
	Stalls uint64 // pipeline stall cycles attributed by the simulator
}

// Instructions returns the dynamic instruction count.
func (t *Trace) Instructions() int { return len(t.Events) }

// DataAccesses counts load/store events.
func (t *Trace) DataAccesses() int {
	n := 0
	for _, e := range t.Events {
		if e.IsMemOp() {
			n++
		}
	}
	return n
}

const (
	magic   = 0x43435254 // "CCRT"
	version = 1
)

// ErrBadTrace is returned when a serialized trace is malformed.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteTo serializes the trace in a compact binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.Events)))
	binary.LittleEndian.PutUint64(hdr[16:], t.Stalls)
	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 0, 9*4096)
	var rec [9]byte
	for i, e := range t.Events {
		binary.LittleEndian.PutUint32(rec[0:], e.PC)
		binary.LittleEndian.PutUint32(rec[4:], e.Addr)
		rec[8] = e.Flags
		buf = append(buf, rec[:]...)
		if len(buf) == cap(buf) || i == len(t.Events)-1 {
			n, err := w.Write(buf)
			total += int64(n)
			if err != nil {
				return total, err
			}
			buf = buf[:0]
		}
	}
	return total, nil
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<32 {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadTrace, n)
	}
	t := &Trace{
		Events: make([]Event, n),
		Stalls: binary.LittleEndian.Uint64(hdr[16:]),
	}
	var rec [9]byte
	for i := range t.Events {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadTrace, i, err)
		}
		t.Events[i] = Event{
			PC:    binary.LittleEndian.Uint32(rec[0:]),
			Addr:  binary.LittleEndian.Uint32(rec[4:]),
			Flags: rec[8],
		}
	}
	return t, nil
}
