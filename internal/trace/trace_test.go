package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFlags(t *testing.T) {
	e := Event{PC: 0x100, Addr: 0x2000, Flags: FlagLoad}
	if !e.IsLoad() || e.IsStore() || !e.IsMemOp() {
		t.Errorf("load flags wrong: %+v", e)
	}
	e.Flags = FlagStore
	if e.IsLoad() || !e.IsStore() || !e.IsMemOp() {
		t.Errorf("store flags wrong: %+v", e)
	}
	e.Flags = 0
	if e.IsMemOp() {
		t.Error("plain event classified as memop")
	}
}

func TestCounters(t *testing.T) {
	tr := &Trace{Events: []Event{
		{PC: 0}, {PC: 4, Flags: FlagLoad}, {PC: 8, Flags: FlagStore}, {PC: 12},
	}, Stalls: 7}
	if tr.Instructions() != 4 {
		t.Errorf("instructions = %d", tr.Instructions())
	}
	if tr.DataAccesses() != 2 {
		t.Errorf("data accesses = %d", tr.DataAccesses())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(pcs []uint32, addrs []uint32, stalls uint64) bool {
		tr := &Trace{Stalls: stalls}
		for i, pc := range pcs {
			var addr uint32
			var flags uint8
			if i < len(addrs) {
				addr = addrs[i]
				flags = FlagLoad
			}
			tr.Events = append(tr.Events, Event{PC: pc &^ 3, Addr: addr, Flags: flags})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Stalls != tr.Stalls {
			return false
		}
		if len(got.Events) == 0 && len(tr.Events) == 0 {
			return true
		}
		return reflect.DeepEqual(got.Events, tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero magic accepted")
	}
	var buf bytes.Buffer
	tr := &Trace{Events: []Event{{PC: 4}, {PC: 8}}}
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func BenchmarkWriteTo(b *testing.B) {
	tr := &Trace{Events: make([]Event, 100000)}
	for i := range tr.Events {
		tr.Events[i] = Event{PC: uint32(i * 4), Flags: uint8(i & 1)}
	}
	b.SetBytes(int64(len(tr.Events) * 9))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
