// Package bitio provides MSB-first bit-level readers and writers.
//
// All variable-length coders in this repository (Huffman, LZW, the LAT
// length fields) serialize through this package so that bit order is
// defined in exactly one place: within a byte, bits are produced and
// consumed most-significant first, matching the left-to-right order in
// which a hardware shift-register decoder would see a compressed
// instruction stream.
package bitio

import (
	"errors"
	"fmt"
)

// ErrShortStream is returned when a read requires bits beyond the end of
// the underlying buffer.
var ErrShortStream = errors.New("bitio: read past end of stream")

// Writer accumulates bits MSB-first into an in-memory buffer.
//
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of valid bits in cur (0..7)
}

// WriteBits appends the low n bits of v, most significant of those n first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	for i := n; i > 0; i-- {
		bit := byte(v>>(i-1)) & 1
		w.cur = w.cur<<1 | bit
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b byte) {
	if b != 0 {
		b = 1
	}
	w.WriteBits(uint64(b), 1)
}

// WriteBytes appends whole bytes, bit-aligned or not.
func (w *Writer) WriteBytes(p []byte) {
	if w.nCur == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes the partial byte (zero-padded on the right) and returns the
// accumulated buffer. The writer remains usable; further writes continue
// from the unpadded bit position, so call Bytes only when finished.
func (w *Writer) Bytes() []byte {
	if w.nCur == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	return append(out, w.cur<<(8-w.nCur))
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position from the start of buf
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// ReadBits reads n bits (n in [0,64]) and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d out of range", n))
	}
	if r.pos+int(n) > len(r.buf)*8 {
		return 0, ErrShortStream
	}
	v := extract(r.buf, r.pos, n)
	r.pos += int(n)
	return v, nil
}

// extract reads n in-bounds bits starting at bit position pos, whole
// bytes at a time (the MSB-first twin of a shift-register's parallel
// load). Callers guarantee pos+n <= len(buf)*8.
func extract(buf []byte, pos int, n uint) uint64 {
	var v uint64
	for n > 0 {
		b := buf[pos>>3]
		off := uint(pos & 7)
		avail := 8 - off
		take := avail
		if take > n {
			take = n
		}
		v = v<<take | uint64(b>>(avail-take))&(1<<take-1)
		pos += int(take)
		n -= take
	}
	return v
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (byte, error) {
	v, err := r.ReadBits(1)
	return byte(v), err
}

// PeekBits returns the next n bits without consuming them. If fewer than n
// bits remain, the missing low-order bits read as zero and ok reports how
// many real bits were available.
func (r *Reader) PeekBits(n uint) (v uint64, avail uint) {
	rem := uint(len(r.buf)*8 - r.pos)
	take := n
	if rem < take {
		take = rem
	}
	return extract(r.buf, r.pos, take) << (n - take), take
}

// Skip advances the read position by n bits.
func (r *Reader) Skip(n uint) error {
	if r.pos+int(n) > len(r.buf)*8 {
		return ErrShortStream
	}
	r.pos += int(n)
	return nil
}

// Pos returns the current bit offset from the start of the stream.
func (r *Reader) Pos() int { return r.pos }

// Reset points the Reader at p with the position rewound to bit 0,
// reusing the Reader value. Hot paths that decode many small streams
// (e.g. per-line codec decodes) keep one stack Reader and Reset it
// instead of allocating with NewReader.
func (r *Reader) Reset(p []byte) {
	r.buf = p
	r.pos = 0
}

// Data returns the underlying buffer (not a copy). Together with Pos and
// Skip it lets table-driven decoders run their hot loop directly over
// the bytes while keeping the Reader's position authoritative.
func (r *Reader) Data() []byte { return r.buf }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// AlignByte advances to the next byte boundary (a no-op if already aligned).
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}
