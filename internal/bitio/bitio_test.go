package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	var w Writer
	pattern := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.Len(); got != len(pattern) {
		t.Fatalf("Len = %d, want %d", got, len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsKnownLayout(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0b01, 2)
	w.WriteBits(0b110, 3)
	// 10101110 -> 0xAE
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xAE}) {
		t.Fatalf("Bytes = %x, want ae", got)
	}
}

func TestBytesPadsWithoutMutating(t *testing.T) {
	var w Writer
	w.WriteBits(0b1, 1)
	first := w.Bytes()
	if !bytes.Equal(first, []byte{0x80}) {
		t.Fatalf("Bytes = %x, want 80", first)
	}
	// Writer must still be usable: continue from bit 1, not from padding.
	w.WriteBits(0b1111111, 7)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xFF}) {
		t.Fatalf("after continuation Bytes = %x, want ff", got)
	}
}

func TestWriteBytesAligned(t *testing.T) {
	var w Writer
	w.WriteBytes([]byte{0xDE, 0xAD})
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xDE, 0xAD}) {
		t.Fatalf("aligned WriteBytes = %x", got)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	var w Writer
	w.WriteBits(0b1111, 4)
	w.WriteBytes([]byte{0x00})
	w.WriteBits(0b0000, 4)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xF0, 0x00}) {
		t.Fatalf("unaligned WriteBytes = %x, want f000", got)
	}
}

func TestReadBitsMultiWidth(t *testing.T) {
	var w Writer
	w.WriteBits(0xDEADBEEFCAFE, 48)
	r := NewReader(w.Bytes())
	hi, err := r.ReadBits(24)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := r.ReadBits(24)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 0xDEADBE || lo != 0xEFCAFE {
		t.Fatalf("got %06x %06x", hi, lo)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrShortStream {
		t.Fatalf("err = %v, want ErrShortStream", err)
	}
	// Failed read must not consume anything.
	if v, err := r.ReadBits(8); err != nil || v != 0xFF {
		t.Fatalf("after failed read got %x, %v", v, err)
	}
	if _, err := r.ReadBits(1); err != ErrShortStream {
		t.Fatalf("err = %v, want ErrShortStream", err)
	}
}

func TestPeekBits(t *testing.T) {
	r := NewReader([]byte{0b10110011})
	v, avail := r.PeekBits(4)
	if v != 0b1011 || avail != 4 {
		t.Fatalf("peek = %04b avail %d", v, avail)
	}
	if r.Pos() != 0 {
		t.Fatalf("peek consumed bits: pos=%d", r.Pos())
	}
	if err := r.Skip(6); err != nil {
		t.Fatal(err)
	}
	// Only 2 bits remain; peek of 4 must zero-fill and report avail=2.
	v, avail = r.PeekBits(4)
	if avail != 2 || v != 0b1100 {
		t.Fatalf("tail peek = %04b avail %d, want 1100 avail 2", v, avail)
	}
}

func TestSkipAndAlign(t *testing.T) {
	r := NewReader([]byte{0x00, 0xAB})
	if err := r.Skip(3); err != nil {
		t.Fatal(err)
	}
	r.AlignByte()
	if r.Pos() != 8 {
		t.Fatalf("pos after align = %d, want 8", r.Pos())
	}
	r.AlignByte() // idempotent on boundary
	if r.Pos() != 8 {
		t.Fatalf("pos after second align = %d, want 8", r.Pos())
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 0xAB {
		t.Fatalf("got %x, %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	if err := r.Skip(1); err != ErrShortStream {
		t.Fatalf("skip past end err = %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0x1, 3)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after reset = %d", w.Len())
	}
	w.WriteBits(0xA5, 8)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xA5}) {
		t.Fatalf("after reset Bytes = %x", got)
	}
}

func TestZeroWidthOps(t *testing.T) {
	var w Writer
	w.WriteBits(0, 0)
	if w.Len() != 0 {
		t.Fatalf("zero-width write changed length")
	}
	r := NewReader(nil)
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Fatalf("zero-width read = %v, %v", v, err)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripQuick(t *testing.T) {
	f := func(fields []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var w Writer
		type rec struct {
			v uint64
			n uint
		}
		var recs []rec
		for _, f := range fields {
			n := uint(rng.Intn(65))
			v := uint64(f) * uint64(rng.Int63())
			if n < 64 {
				v &= (1 << n) - 1
			}
			w.WriteBits(v, n)
			recs = append(recs, rec{v, n})
		}
		r := NewReader(w.Bytes())
		for _, rc := range recs {
			got, err := r.ReadBits(rc.n)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: writing whole random byte slices through the bit writer is
// identity, aligned or shifted.
func TestBytesRoundTripQuick(t *testing.T) {
	f := func(p []byte, shift uint8) bool {
		s := uint(shift % 8)
		var w Writer
		w.WriteBits(0, s)
		w.WriteBytes(p)
		r := NewReader(w.Bytes())
		if err := r.Skip(s); err != nil {
			return len(p) == 0 && s == 0
		}
		for _, want := range p {
			got, err := r.ReadBits(8)
			if err != nil || byte(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriterWriteBits(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), uint(i%17))
	}
}

func BenchmarkReaderReadBits(b *testing.B) {
	var w Writer
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 13)
	}
	buf := w.Bytes()
	b.ResetTimer()
	r := NewReader(buf)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 13 {
			r = NewReader(buf)
		}
		if _, err := r.ReadBits(13); err != nil {
			b.Fatal(err)
		}
	}
}
