package experiments

import (
	"fmt"
	"io"

	"ccrp/internal/huffman"
	"ccrp/internal/lzw"
	"ccrp/internal/riscv"
	"ccrp/internal/tablefmt"
	"ccrp/internal/workload"
)

// RVCRow compares CCRP's block-bounded Huffman compression against the
// RISC-V "C" extension on one RV32 program. The two attack the same
// redundancy from opposite ends: RVC re-encodes each frequent
// instruction into a fixed 16-bit form chosen at ISA-design time, while
// CCRP Huffman-codes the instruction bytes per program. The decode-cost
// columns capture the hardware asymmetry — an RVC expander is a
// fixed-function single-cycle circuit, whereas the CCRP refill engine
// shifts a variable number of code bits per byte.
type RVCRow struct {
	Program       string
	OriginalBytes int
	RVC           float64 // native RVC size / original (2 bytes per compressible word)
	Compressible  float64 // fraction of words with a 16-bit RVC form
	Bounded       float64 // CCRP 16-bit bounded Huffman + its code table
	Compress      float64 // Unix compress (LZW) reference
	DecodeBits    float64 // CCRP serial decode: average code bits per 32-bit instruction
}

// RVCComparison computes the row for every RV32 corpus program plus the
// size-weighted average row (Program == "Weighted Average").
func RVCComparison() ([]RVCRow, error) {
	var rows []RVCRow
	var totOrig int
	var totR, totF, totB, totC, totD float64
	for _, w := range workload.RISCV() {
		row, err := rvcRow(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		n := float64(row.OriginalBytes)
		totOrig += row.OriginalBytes
		totR += row.RVC * n
		totF += row.Compressible * n
		totB += row.Bounded * n
		totC += row.Compress * n
		totD += row.DecodeBits * n
	}
	n := float64(totOrig)
	rows = append(rows, RVCRow{
		Program:       "Weighted Average",
		OriginalBytes: totOrig,
		RVC:           totR / n,
		Compressible:  totF / n,
		Bounded:       totB / n,
		Compress:      totC / n,
		DecodeBits:    totD / n,
	})
	return rows, nil
}

func rvcRow(w *workload.Workload) (RVCRow, error) {
	text, err := w.Text()
	if err != nil {
		return RVCRow{}, err
	}
	row := RVCRow{Program: w.Name, OriginalBytes: len(text)}

	rvcBytes := riscv.CompressedSize(text)
	row.RVC = float64(rvcBytes) / float64(len(text))
	// 2 bytes saved per compressible 4-byte word.
	row.Compressible = float64(len(text)-rvcBytes) / float64(len(text)) * 2

	hist := huffman.HistogramOf(text)
	bounded, err := boundedCode(hist, HuffmanBound)
	if err != nil {
		return RVCRow{}, err
	}
	row.Bounded, err = blockRatio(text, bounded, true)
	if err != nil {
		return RVCRow{}, err
	}
	bits, err := bounded.EncodedBits(text)
	if err != nil {
		return RVCRow{}, err
	}
	row.DecodeBits = float64(bits) / (float64(len(text)) / 4)

	row.Compress, err = lzw.Ratio(text, lzw.MaxBitsDefault)
	if err != nil {
		return RVCRow{}, err
	}
	return row, nil
}

// RenderRVC prints the CCRP-vs-RVC comparison over the RV32 corpus.
func RenderRVC(w io.Writer) error {
	rows, err := RVCComparison()
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title: "CCRP vs. RISC-V \"C\" Extension (compressed size, % of original)",
		Headers: []string{"Program", "Bytes", "RVC", "16-bit Forms",
			"Bounded Huffman", "Unix compress", "Decode bits/inst"},
	}
	for _, r := range rows {
		t.AddRow(r.Program, tablefmt.Bytes(r.OriginalBytes), tablefmt.Pct(r.RVC),
			tablefmt.Pct(r.Compressible), tablefmt.Pct(r.Bounded),
			tablefmt.Pct(r.Compress), fmt.Sprintf("%.1f", r.DecodeBits))
	}
	t.Render(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "RVC expansion is a fixed-function, single-cycle decode; the CCRP")
	fmt.Fprintln(w, "refill engine serially consumes the bit counts shown per instruction")
	fmt.Fprintln(w, "but compresses every word, not only those with 16-bit forms.")
	return nil
}
