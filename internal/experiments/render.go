package experiments

import (
	"fmt"
	"io"
	"sort"

	"ccrp/internal/tablefmt"
)

// RenderFigure5 prints the Figure 5 compression comparison.
func RenderFigure5(w io.Writer) error {
	rows, err := Figure5()
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title: "Figure 5 - Four Compression Methods (compressed size, % of original)",
		Headers: []string{"Program", "Bytes", "Unix compress", "Traditional Huffman",
			"Bounded Huffman", "Preselected Bounded"},
	}
	for _, r := range rows {
		t.AddRow(r.Program, tablefmt.Bytes(r.OriginalBytes), tablefmt.Pct(r.Compress),
			tablefmt.Pct(r.Traditional), tablefmt.Pct(r.Bounded), tablefmt.Pct(r.Preselected))
	}
	t.Render(w)
	return nil
}

// RenderTables1to8 prints the per-program cache sweeps in the paper's
// Table 1-8 layout.
func RenderTables1to8(w io.Writer) error {
	res, err := Tables1to8()
	if err != nil {
		return err
	}
	for i, prog := range PerfPrograms {
		t := &tablefmt.Table{
			Title: fmt.Sprintf("Table %d: %s - 16 entry CLB, 100%% Data Cache Miss Rate", i+1, prog),
			Headers: []string{"Memory", "Cache Size", "Relative Performance",
				"Cache Miss Rate", "Memory Traffic"},
		}
		for _, p := range res[prog] {
			t.AddRow(p.Memory, fmt.Sprintf("%d byte", p.CacheBytes),
				tablefmt.Ratio(p.RelPerf), tablefmt.Pct(p.MissRate), tablefmt.Pct(p.Traffic))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RenderTables9and10 prints the CLB-size sweeps.
func RenderTables9and10(w io.Writer) error {
	res, err := Tables9and10()
	if err != nil {
		return err
	}
	for i, prog := range []string{"nasa7", "espresso"} {
		t := &tablefmt.Table{
			Title: fmt.Sprintf("Table %d: %s - 100%% Data Cache Miss Rate (relative performance)", 9+i, prog),
			Headers: []string{"Memory", "Cache Size",
				"16 CLB Entries", "8 CLB Entries", "4 CLB Entries"},
		}
		type key struct {
			mem string
			cs  int
		}
		cells := map[key]map[int]float64{}
		var order []key
		for _, p := range res[prog] {
			k := key{p.Memory, p.CacheBytes}
			if cells[k] == nil {
				cells[k] = map[int]float64{}
				order = append(order, k)
			}
			cells[k][p.CLBEntries] = p.RelPerf
		}
		for _, k := range order {
			t.AddRow(k.mem, fmt.Sprintf("%d byte", k.cs),
				tablefmt.Ratio(cells[k][16]), tablefmt.Ratio(cells[k][8]), tablefmt.Ratio(cells[k][4]))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RenderFigure9 prints the scatter as sorted (miss rate, relative
// performance) series, one block per memory model.
func RenderFigure9(w io.Writer) error {
	pts, err := Figure9()
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title:   "Figure 9 - Performance vs. Instruction Cache Miss Rate",
		Headers: []string{"Memory", "Program", "Cache", "Miss Rate", "Relative Performance"},
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Memory != pts[j].Memory {
			return pts[i].Memory < pts[j].Memory
		}
		return pts[i].MissRate < pts[j].MissRate
	})
	for _, p := range pts {
		t.AddRow(p.Memory, p.Program, fmt.Sprintf("%d", p.CacheBytes),
			tablefmt.Pct(p.MissRate), tablefmt.Ratio(p.RelPerf))
	}
	t.Render(w)
	return nil
}

// RenderTables11to13 prints the data-cache effect tables.
func RenderTables11to13(w io.Writer) error {
	res, err := Tables11to13()
	if err != nil {
		return err
	}
	for i, prog := range []string{"nasa7", "espresso", "fpppp"} {
		t := &tablefmt.Table{
			Title: fmt.Sprintf("Table %d: %s - Effect of Data Cache Miss Rate (1KB I-cache, 16 entry CLB)",
				11+i, prog),
			Headers: []string{"Memory", "Dcache Miss Rate", "Relative Performance"},
		}
		for _, p := range res[prog] {
			t.AddRow(p.Memory, tablefmt.Pct(p.DCacheMissRate), tablefmt.Ratio(p.RelPerf))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// RenderFigure1 prints the block-alignment ablation.
func RenderFigure1(w io.Writer) error {
	rows, err := Figure1Alignment()
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title:   "Figure 1 - Block-Bounded Compression: byte vs word alignment (blocks only)",
		Headers: []string{"Program", "Byte Aligned", "Word Aligned"},
	}
	for _, r := range rows {
		t.AddRow(r.Program, tablefmt.Pct(r.ByteAligned), tablefmt.Pct(r.WordAligned))
	}
	t.Render(w)
	return nil
}

// RenderFigure2 prints the line-address randomization illustration.
func RenderFigure2(w io.Writer, program string, n int) error {
	orig, comp, err := Figure2Addresses(program, n)
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title:   fmt.Sprintf("Figure 2 - Randomization of Line Addresses (%s)", program),
		Headers: []string{"Program Address", "Compressed Address", "Delta"},
	}
	for i := range orig {
		t.AddRow(fmt.Sprintf("%08x", orig[i]), fmt.Sprintf("%08x", comp[i]),
			fmt.Sprintf("%d", int64(orig[i])-int64(comp[i])))
	}
	t.Render(w)
	return nil
}

// RenderAblations prints the extension/ablation studies promised in
// DESIGN.md §9.
func RenderAblations(w io.Writer) error {
	latRows, err := LATAblation()
	if err != nil {
		return err
	}
	t := &tablefmt.Table{
		Title:   "Ablation: LAT encoding (overhead as % of original program)",
		Headers: []string{"Program", "Grouped 8B entries", "Naive 4B pointers"},
	}
	for _, r := range latRows {
		t.AddRow(r.Program, tablefmt.Pct(r.GroupedOverhead), tablefmt.Pct(r.NaiveOverhead))
	}
	t.Render(w)
	fmt.Fprintln(w)

	mcRows, err := MultiCodeAblation()
	if err != nil {
		return err
	}
	t = &tablefmt.Table{
		Title:   "Ablation: multiple preselected codes (total image ratio)",
		Headers: []string{"Program", "Single code", "Two codes (+tags)"},
	}
	for _, r := range mcRows {
		t.AddRow(r.Program, tablefmt.Pct(r.SingleCode), tablefmt.Pct(r.TwoCodes))
	}
	t.Render(w)
	fmt.Fprintln(w)

	ovRows, err := OverlapAblation("espresso")
	if err != nil {
		return err
	}
	t = &tablefmt.Table{
		Title:   "Ablation: pipeline overlap during refill (espresso, 256B, Burst EPROM)",
		Headers: []string{"Overlap Cycles", "Std Cycles", "CCRP Cycles", "Relative Performance"},
	}
	for _, r := range ovRows {
		t.AddRow(fmt.Sprintf("%d", r.OverlapCycles),
			fmt.Sprintf("%d", r.CyclesStd), fmt.Sprintf("%d", r.CyclesCCRP),
			tablefmt.Ratio(r.RelPerf))
	}
	t.Render(w)
	fmt.Fprintln(w)

	isaRows, err := ISAAblation()
	if err != nil {
		return err
	}
	t = &tablefmt.Table{
		Title:   "Ablation: preselected code on non-R2000 byte streams",
		Headers: []string{"Stream", "R2000 Preselected", "Stream-tuned Bounded"},
	}
	for _, r := range isaRows {
		t.AddRow(r.Stream, tablefmt.Pct(r.Preselected), tablefmt.Pct(r.StreamTuned))
	}
	t.Render(w)
	return nil
}
