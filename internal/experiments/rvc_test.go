package experiments

import (
	"strings"
	"testing"
)

func TestRVCComparison(t *testing.T) {
	rows, err := RVCComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 { // >= 2 programs plus the weighted average
		t.Fatalf("rows = %d, want at least 2 programs + average", len(rows))
	}
	if rows[len(rows)-1].Program != "Weighted Average" {
		t.Fatalf("last row = %q, want the weighted average", rows[len(rows)-1].Program)
	}
	for _, r := range rows {
		// RVC halves only the words with 16-bit forms, so its ratio is
		// pinned to [50%, 100%) and tied to the compressible fraction.
		if r.RVC < 0.5 || r.RVC >= 1.0 {
			t.Errorf("%s: RVC ratio %.3f out of range", r.Program, r.RVC)
		}
		if got := 1 - r.Compressible/2; !approxEq(got, r.RVC) {
			t.Errorf("%s: RVC %.4f inconsistent with compressible fraction %.4f",
				r.Program, r.RVC, r.Compressible)
		}
		// The paper's core claim carried over: per-program bounded
		// Huffman over full words out-compresses the fixed 16-bit forms.
		if r.Bounded >= r.RVC {
			t.Errorf("%s: bounded %.3f not better than RVC %.3f",
				r.Program, r.Bounded, r.RVC)
		}
		// The cost of that ratio: a serial decode of more than 16 bits
		// per instruction vs. RVC's single-cycle expansion.
		if r.DecodeBits <= 16 || r.DecodeBits > 32 {
			t.Errorf("%s: decode bits/inst %.1f implausible", r.Program, r.DecodeBits)
		}
	}
}

func approxEq(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestRenderRVC(t *testing.T) {
	var b strings.Builder
	if err := RenderRVC(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rv-matrix", "rv-sieve", "Weighted Average", "RVC"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
