package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccrp/internal/sweep"
)

// TestSweepDeterminism is the parallelism contract: the -json document of
// a point sweep is byte-identical at -j 1 and -j 8, because results merge
// by point index and every point is a pure function of its spec. The
// artifact cache is reset before the parallel run so the race detector
// also exercises concurrent cold-cache training (single-flight dedup).
func TestSweepDeterminism(t *testing.T) {
	names := []string{"tables9-10", "tables11-13"}
	prev := currentEngine()
	defer SetEngine(prev)

	render := func(workers int) []byte {
		SetEngine(&sweep.Engine{Workers: workers})
		var b bytes.Buffer
		if err := WriteBenchJSON(&b, names); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return b.Bytes()
	}
	seq := render(1)
	resetArtifacts()
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("-j 1 and -j 8 outputs differ (%d vs %d bytes)", len(seq), len(par))
	}
}

// TestPerfPointCycleCounts: every sweep point carries its absolute cycle
// counts — the values BENCH_*.json trajectories diff across PRs — and
// they are consistent with the reported ratio.
func TestPerfPointCycleCounts(t *testing.T) {
	res, err := Tables11to13()
	if err != nil {
		t.Fatal(err)
	}
	for prog, pts := range res {
		for _, p := range pts {
			if p.CyclesCCRP == 0 || p.CyclesStd == 0 {
				t.Fatalf("%s: zero cycle counts: %+v", prog, p)
			}
			ratio := float64(p.CyclesCCRP) / float64(p.CyclesStd)
			if diff := ratio - p.RelPerf; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s: cycles ratio %.6f != relperf %.6f", prog, ratio, p.RelPerf)
			}
		}
	}
}

// TestBuildTrajectory: the trajectory document self-checks determinism
// and records both wall times and the embedded datapoints.
func TestBuildTrajectory(t *testing.T) {
	tr, err := BuildTrajectory([]string{"tables11-13"}, 4, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ByteIdentical {
		t.Error("trajectory reports non-identical -j1/-jN output")
	}
	if tr.SeqWallSeconds <= 0 || tr.ParWallSeconds <= 0 {
		t.Errorf("wall times not recorded: %g/%g", tr.SeqWallSeconds, tr.ParWallSeconds)
	}
	if tr.Workers != 4 || tr.Label != "test" {
		t.Errorf("metadata wrong: %+v", tr)
	}
	if tr.Host.GoVersion == "" || tr.Host.NumCPU < 1 || tr.Host.GOMAXPROCS < 1 {
		t.Errorf("host metadata not recorded: %+v", tr.Host)
	}
	var doc struct {
		Experiments map[string]json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(tr.Points, &doc); err != nil {
		t.Fatalf("embedded points do not parse: %v", err)
	}
	if _, ok := doc.Experiments["tables11-13"]; !ok {
		t.Error("embedded points missing the requested experiment")
	}
	if tr.PointsSHA256 != sweep.HashBytes(tr.Points) {
		t.Error("points hash does not match embedded points")
	}
}
