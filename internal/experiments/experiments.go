// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) from the reproduction's own corpus, simulator, and CCRP
// core. Each experiment function returns structured rows; the render
// functions (render.go) print them in the paper's layout. DESIGN.md maps
// experiment ids to these functions, and EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"sync"

	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/metrics"
	"ccrp/internal/workload"
)

// CacheSizes is the paper's instruction cache sweep (§4.2.1).
var CacheSizes = []int{256, 512, 1024, 2048, 4096}

// CLBSizes is the paper's CLB sweep (§4.2.2).
var CLBSizes = []int{4, 8, 16}

// DCacheMissRates is the paper's §4.2.4 sweep.
var DCacheMissRates = []float64{0, 0.02, 0.10, 0.25, 1.00}

// PerfPrograms are the eight programs of Tables 1-8, in table order.
var PerfPrograms = []string{
	"nasa7", "matrix25a", "fpppp", "espresso",
	"nasa1", "eightq", "tomcatv", "lloop01",
}

// HuffmanBound is the paper's 16-bit codeword cap.
const HuffmanBound = 16

var (
	preselOnce sync.Once
	preselCode *huffman.Code
	preselErr  error
)

// CorpusHistogram pools the byte histograms of the ten Figure 5 programs,
// the data the paper built its preselected code from.
func CorpusHistogram() (*huffman.Histogram, error) {
	var h huffman.Histogram
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		h.Add(text)
	}
	return &h, nil
}

// PreselectedCode returns the Preselected Bounded Huffman code: a 16-bit
// bounded code over the smoothed corpus histogram, fixed for every
// program and hardwired in the decoder.
func PreselectedCode() (*huffman.Code, error) {
	preselOnce.Do(func() {
		h, err := CorpusHistogram()
		if err != nil {
			preselErr = err
			return
		}
		preselCode, preselErr = huffman.BuildBounded(h.Smooth(), HuffmanBound)
	})
	return preselCode, preselErr
}

// Observer state: when set via SetObserver, every comparison the
// experiment harness runs is instrumented, so ccrp-bench -metrics and
// -events aggregate across the whole sweep (counters with the same name
// accumulate in one registry).
var (
	obsMu   sync.Mutex
	obsReg  *metrics.Registry
	obsSink metrics.EventSink
)

// SetObserver attaches a metrics registry and/or event sink to every
// subsequent comparison. Pass nils to detach.
func SetObserver(reg *metrics.Registry, sink metrics.EventSink) {
	obsMu.Lock()
	obsReg, obsSink = reg, sink
	obsMu.Unlock()
}

// observer returns the current observer pair.
func observer() (*metrics.Registry, metrics.EventSink) {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsReg, obsSink
}

// compareConfig runs one workload through core.Compare with the
// preselected code and the given knobs.
func compareConfig(name string, cacheBytes, clbEntries int, mem memory.Model, dmiss float64) (*core.Comparison, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		CacheBytes: cacheBytes,
		CLBEntries: clbEntries,
		Mem:        mem,
		Codes:      []*huffman.Code{code},
	}
	cfg.Metrics, cfg.Events = observer()
	if dmiss < 1 {
		cfg.DataCache = true
		cfg.DCacheMissRate = dmiss
	}
	return core.Compare(tr, text, cfg)
}

// PerfPoint is one row of Tables 1-10 and one point of Figure 9.
type PerfPoint struct {
	Program        string
	Memory         string
	CacheBytes     int
	CLBEntries     int
	DCacheMissRate float64
	RelPerf        float64 // CCRP cycles / standard cycles (paper convention)
	MissRate       float64 // shared i-cache miss rate
	Traffic        float64 // CCRP / standard instruction memory traffic
	CLBMissRate    float64 // CLB misses / i-cache misses
}

// Point computes one performance point (exported for the benchmark harness).
func Point(name string, cacheBytes, clbEntries int, mem memory.Model, dmiss float64) (PerfPoint, error) {
	cmp, err := compareConfig(name, cacheBytes, clbEntries, mem, dmiss)
	if err != nil {
		return PerfPoint{}, err
	}
	p := PerfPoint{
		Program:        name,
		Memory:         mem.Name(),
		CacheBytes:     cacheBytes,
		CLBEntries:     clbEntries,
		DCacheMissRate: dmiss,
		RelPerf:        cmp.RelativePerformance(),
		MissRate:       cmp.MissRate(),
		Traffic:        cmp.TrafficRatio(),
	}
	if cmp.CCRP.Misses > 0 {
		p.CLBMissRate = float64(cmp.CCRP.CLBMisses) / float64(cmp.CCRP.Misses)
	}
	return p, nil
}

// Tables1to8 reproduces the cache-size sweeps of Tables 1-8: relative
// performance, miss rate, and memory traffic at 256B-4KB under EPROM and
// Burst EPROM, with a 16-entry CLB and no data cache. As in the paper,
// the DRAM model (whose results track Burst EPROM closely) is included
// for one program only.
func Tables1to8() (map[string][]PerfPoint, error) {
	out := make(map[string][]PerfPoint, len(PerfPrograms))
	for _, prog := range PerfPrograms {
		models := []memory.Model{memory.EPROM{}, memory.BurstEPROM{}}
		if prog == "matrix25a" {
			models = append(models, memory.SCDRAM{})
		}
		for _, mem := range models {
			for _, cs := range CacheSizes {
				p, err := Point(prog, cs, 16, mem, 1.0)
				if err != nil {
					return nil, err
				}
				out[prog] = append(out[prog], p)
			}
		}
	}
	return out, nil
}

// Tables9and10 reproduces the CLB size sweep for nasa7 (Table 9) and
// espresso (Table 10): relative performance vs cache size for 4-, 8-,
// and 16-entry CLBs.
func Tables9and10() (map[string][]PerfPoint, error) {
	out := make(map[string][]PerfPoint, 2)
	for _, prog := range []string{"nasa7", "espresso"} {
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			for _, cs := range CacheSizes {
				for _, clb := range CLBSizes {
					p, err := Point(prog, cs, clb, mem, 1.0)
					if err != nil {
						return nil, err
					}
					out[prog] = append(out[prog], p)
				}
			}
		}
	}
	return out, nil
}

// Figure9 reproduces the performance-vs-miss-rate scatter: every program
// and cache size under all three memory models.
func Figure9() ([]PerfPoint, error) {
	var pts []PerfPoint
	for _, prog := range PerfPrograms {
		for _, mem := range memory.Models() {
			for _, cs := range CacheSizes {
				p, err := Point(prog, cs, 16, mem, 1.0)
				if err != nil {
					return nil, err
				}
				pts = append(pts, p)
			}
		}
	}
	return pts, nil
}

// Tables11to13 reproduces the data-cache effect study (§4.2.4): a 1 KB
// instruction cache with the analytical data cache model swept over the
// paper's miss rates, for nasa7, espresso, and fpppp.
func Tables11to13() (map[string][]PerfPoint, error) {
	out := make(map[string][]PerfPoint, 3)
	for _, prog := range []string{"nasa7", "espresso", "fpppp"} {
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			for _, dm := range DCacheMissRates {
				p, err := Point(prog, 1024, 16, mem, dm)
				if err != nil {
					return nil, err
				}
				out[prog] = append(out[prog], p)
			}
		}
	}
	return out, nil
}
