// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) from the reproduction's own corpus, simulator, and CCRP
// core. Each experiment function returns structured rows; the render
// functions (render.go) print them in the paper's layout. DESIGN.md maps
// experiment ids to these functions, and EXPERIMENTS.md records
// paper-vs-measured values.
//
// The performance sweeps (Tables 1-10, Figure 9, Tables 11-13) run on the
// internal/sweep engine: points fan out across a bounded worker pool with
// results merged by index, and every trained artifact — the preselected
// code, per-program codes, the CodePack dictionaries, and each program's
// compressed ROM image — is built once per unique configuration through a
// content-addressed single-flight cache, no matter how many points or
// workers need it.
package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/sweep"
	"ccrp/internal/workload"
)

// CacheSizes is the paper's instruction cache sweep (§4.2.1).
var CacheSizes = []int{256, 512, 1024, 2048, 4096}

// CLBSizes is the paper's CLB sweep (§4.2.2).
var CLBSizes = []int{4, 8, 16}

// DCacheMissRates is the paper's §4.2.4 sweep.
var DCacheMissRates = []float64{0, 0.02, 0.10, 0.25, 1.00}

// PerfPrograms are the eight programs of Tables 1-8, in table order.
var PerfPrograms = []string{
	"nasa7", "matrix25a", "fpppp", "espresso",
	"nasa1", "eightq", "tomcatv", "lloop01",
}

// HuffmanBound is the paper's 16-bit codeword cap.
const HuffmanBound = 16

// Artifact cache: trained coders and compressed ROM images, addressed by
// content (corpus hash + coder type + configuration). Swapped wholesale
// by resetArtifacts for cold-cache timing runs.
var (
	artMu sync.Mutex
	arts  = sweep.NewCache()
)

func artifacts() *sweep.Cache {
	artMu.Lock()
	defer artMu.Unlock()
	return arts
}

// resetArtifacts discards every cached artifact, forcing the next sweep
// to retrain coders and rebuild ROMs. Used by trajectory timing (both
// timed runs must pay the same training cost) and by tests; not safe
// concurrently with a running sweep.
func resetArtifacts() {
	artMu.Lock()
	arts = sweep.NewCache()
	artMu.Unlock()
}

// CorpusHistogram pools the byte histograms of the ten Figure 5 programs,
// the data the paper built its preselected code from.
func CorpusHistogram() (*huffman.Histogram, error) {
	var h huffman.Histogram
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		h.Add(text)
	}
	return &h, nil
}

// Corpus content address, computed once: the corpus registry is immutable
// for the life of the process, so the key — unlike the artifacts built
// from it — never needs invalidation.
var (
	corpusKeyOnce sync.Once
	corpusKeyVal  string
	corpusKeyErr  error
)

func corpusKey() (string, error) {
	corpusKeyOnce.Do(func() {
		var parts []any
		for _, w := range workload.Figure5Set() {
			text, err := w.Text()
			if err != nil {
				corpusKeyErr = err
				return
			}
			parts = append(parts, text)
		}
		corpusKeyVal = sweep.Key(parts...)
	})
	return corpusKeyVal, corpusKeyErr
}

// histogramBytes serializes a histogram for content addressing.
func histogramBytes(h *huffman.Histogram) []byte {
	out := make([]byte, 8*len(h))
	for i, c := range h {
		binary.LittleEndian.PutUint64(out[8*i:], c)
	}
	return out
}

// PreselectedCode returns the Preselected Bounded Huffman code: a 16-bit
// bounded code over the smoothed corpus histogram, fixed for every
// program and hardwired in the decoder. Trained once per corpus through
// the artifact cache.
func PreselectedCode() (*huffman.Code, error) {
	ck, err := corpusKey()
	if err != nil {
		return nil, err
	}
	return sweep.Get(artifacts(), sweep.Key("huffman/preselected", HuffmanBound, ck),
		func() (*huffman.Code, error) {
			h, err := CorpusHistogram()
			if err != nil {
				return nil, err
			}
			return huffman.BuildBounded(h.Smooth(), HuffmanBound)
		})
}

// boundedCode trains (or fetches) the bound-limited code for a histogram,
// content-addressed so identical histograms share one training run across
// experiments, workers, and CLI invocations in the same process.
func boundedCode(h *huffman.Histogram, bound int) (*huffman.Code, error) {
	return sweep.Get(artifacts(), sweep.Key("huffman/bounded", bound, histogramBytes(h)),
		func() (*huffman.Code, error) { return huffman.BuildBounded(h, bound) })
}

// traditionalCode is boundedCode's unbounded sibling.
func traditionalCode(h *huffman.Histogram) (*huffman.Code, error) {
	return sweep.Get(artifacts(), sweep.Key("huffman/traditional", histogramBytes(h)),
		func() (*huffman.Code, error) { return huffman.BuildTraditional(h) })
}

// OwnCode returns the bound-limited code trained on one program's own
// bytes (the ccpack -own / §2.2 multi-code scheme), cached by content.
func OwnCode(text []byte) (*huffman.Code, error) {
	return boundedCode(huffman.HistogramOf(text), HuffmanBound)
}

// Decoder state: which software decode path (fast table-driven vs
// canonical bit-serial) ROMs built by this package use. Set once at CLI
// startup (ccrp-bench -decoder); the kind participates in the artifact
// cache key so both variants can coexist in one process. The choice
// never changes simulated cycle counts — the cycle model charges the
// paper's fixed decoder rate — only host-side decode throughput.
var (
	decMu  sync.Mutex
	decCur core.DecoderKind
)

// SetDecoder selects the decode path for subsequently built ROMs.
func SetDecoder(k core.DecoderKind) {
	decMu.Lock()
	decCur = k
	decMu.Unlock()
}

// CurrentDecoder returns the decode path SetDecoder last selected.
func CurrentDecoder() core.DecoderKind {
	decMu.Lock()
	defer decMu.Unlock()
	return decCur
}

// preselROM returns the program's compressed image under the preselected
// code — the ROM every performance point of Tables 1-13 and Figure 9
// shares. Built ROMs are read-only, so one instance serves concurrent
// workers.
func preselROM(text []byte) (*core.ROM, error) {
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	ck, err := corpusKey()
	if err != nil {
		return nil, err
	}
	dec := CurrentDecoder()
	return sweep.Get(artifacts(), sweep.Key("rom/preselected", HuffmanBound, int(dec), ck, text),
		func() (*core.ROM, error) {
			return core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}, Decoder: dec})
		})
}

// Engine state: the sweep engine every point sweep runs on. Set once at
// CLI startup (ccrp-bench -j) and read per sweep; the engine itself owns
// all cross-worker observability, so there is no shared mutable registry
// between points — the race the old package-global SetObserver had.
var (
	engMu  sync.Mutex
	engCur *sweep.Engine
)

// SetEngine attaches a sweep engine to every subsequent point sweep
// (Tables1to8, Tables9and10, Figure9, Tables11to13, and the -json
// export). A nil engine restores the default: sequential execution with
// no instrumentation. It replaces the former SetObserver: metrics and
// event sinks now travel inside the engine, which hands each worker a
// private registry and merges them after the sweep.
func SetEngine(e *sweep.Engine) {
	engMu.Lock()
	engCur = e
	engMu.Unlock()
}

func currentEngine() *sweep.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	return engCur
}

// compareConfig runs one workload through core.Compare with the
// preselected code and the given knobs, reusing the cached ROM. The
// train/build/run stages hang off obs.Span (no-ops when tracing is off),
// so a traced sweep decomposes each point's cost the same way the paper
// splits coder selection, compression, and execution.
func compareConfig(name string, cacheBytes, clbEntries int, mem memory.Model, dmiss float64, obs sweep.Obs) (*core.Comparison, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	obs.Span.SetAttr("workload", name)
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	tsp := obs.Span.Child(sweep.StageTrain)
	_, err = PreselectedCode()
	if err != nil {
		tsp.SetError(err)
		tsp.End()
		return nil, err
	}
	tsp.End()
	bsp := obs.Span.Child(sweep.StageBuild)
	rom, err := preselROM(text)
	if err != nil {
		bsp.SetError(err)
		bsp.End()
		return nil, err
	}
	bsp.End()
	cfg := core.Config{
		CacheBytes: cacheBytes,
		CLBEntries: clbEntries,
		Mem:        mem,
		ROM:        rom,
		Metrics:    obs.Registry,
		Events:     obs.Sink,
	}
	if dmiss < 1 {
		cfg.DataCache = true
		cfg.DCacheMissRate = dmiss
	}
	rsp := obs.Span.Child(sweep.StageRun)
	cmp, err := core.Compare(tr, text, cfg)
	if err != nil {
		rsp.SetError(err)
	}
	rsp.End()
	return cmp, err
}

// PerfPoint is one row of Tables 1-10 and one point of Figure 9.
type PerfPoint struct {
	Program        string
	Memory         string
	CacheBytes     int
	CLBEntries     int
	DCacheMissRate float64
	RelPerf        float64 // CCRP cycles / standard cycles (paper convention)
	MissRate       float64 // shared i-cache miss rate
	Traffic        float64 // CCRP / standard instruction memory traffic
	CLBMissRate    float64 // CLB misses / i-cache misses
	CyclesCCRP     uint64  // total CCRP execution cycles
	CyclesStd      uint64  // total standard-system execution cycles
}

// pointSpec identifies one sweep point; sweeps build their full spec list
// up front so the engine can fan it out with index-stable results.
type pointSpec struct {
	prog       string
	cacheBytes int
	clb        int
	mem        memory.Model
	dmiss      float64
}

// pointObs computes one performance point with the given observer pair.
func pointObs(s pointSpec, obs sweep.Obs) (PerfPoint, error) {
	cmp, err := compareConfig(s.prog, s.cacheBytes, s.clb, s.mem, s.dmiss, obs)
	if err != nil {
		return PerfPoint{}, err
	}
	p := PerfPoint{
		Program:        s.prog,
		Memory:         s.mem.Name(),
		CacheBytes:     s.cacheBytes,
		CLBEntries:     s.clb,
		DCacheMissRate: s.dmiss,
		RelPerf:        cmp.RelativePerformance(),
		MissRate:       cmp.MissRate(),
		Traffic:        cmp.TrafficRatio(),
		CyclesCCRP:     cmp.CCRP.Cycles,
		CyclesStd:      cmp.Standard.Cycles,
	}
	if cmp.CCRP.Misses > 0 {
		p.CLBMissRate = float64(cmp.CCRP.CLBMisses) / float64(cmp.CCRP.Misses)
	}
	return p, nil
}

// Point computes one performance point (exported for the benchmark
// harness and examples). Standalone points run uninstrumented; sweeps
// attach per-worker observers through the engine instead.
func Point(name string, cacheBytes, clbEntries int, mem memory.Model, dmiss float64) (PerfPoint, error) {
	return pointObs(pointSpec{name, cacheBytes, clbEntries, mem, dmiss}, sweep.Obs{})
}

// sweepPoints fans the specs across the current engine's worker pool.
// Results come back in spec order whatever the worker count, which is
// what makes -j 1 and -j N output byte-identical.
func sweepPoints(specs []pointSpec) ([]PerfPoint, error) {
	return sweep.Map(context.Background(), currentEngine(), len(specs),
		func(_ context.Context, i int, obs sweep.Obs) (PerfPoint, error) {
			return pointObs(specs[i], obs)
		})
}

// groupByProgram folds index-ordered sweep results back into the
// per-program table layout.
func groupByProgram(specs []pointSpec, pts []PerfPoint) map[string][]PerfPoint {
	out := make(map[string][]PerfPoint)
	for i, s := range specs {
		out[s.prog] = append(out[s.prog], pts[i])
	}
	return out
}

// Tables1to8 reproduces the cache-size sweeps of Tables 1-8: relative
// performance, miss rate, and memory traffic at 256B-4KB under EPROM and
// Burst EPROM, with a 16-entry CLB and no data cache. As in the paper,
// the DRAM model (whose results track Burst EPROM closely) is included
// for one program only.
func Tables1to8() (map[string][]PerfPoint, error) {
	var specs []pointSpec
	for _, prog := range PerfPrograms {
		models := []memory.Model{memory.EPROM{}, memory.BurstEPROM{}}
		if prog == "matrix25a" {
			models = append(models, memory.SCDRAM{})
		}
		for _, mem := range models {
			for _, cs := range CacheSizes {
				specs = append(specs, pointSpec{prog, cs, 16, mem, 1.0})
			}
		}
	}
	pts, err := sweepPoints(specs)
	if err != nil {
		return nil, err
	}
	return groupByProgram(specs, pts), nil
}

// Tables9and10 reproduces the CLB size sweep for nasa7 (Table 9) and
// espresso (Table 10): relative performance vs cache size for 4-, 8-,
// and 16-entry CLBs.
func Tables9and10() (map[string][]PerfPoint, error) {
	var specs []pointSpec
	for _, prog := range []string{"nasa7", "espresso"} {
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			for _, cs := range CacheSizes {
				for _, clb := range CLBSizes {
					specs = append(specs, pointSpec{prog, cs, clb, mem, 1.0})
				}
			}
		}
	}
	pts, err := sweepPoints(specs)
	if err != nil {
		return nil, err
	}
	return groupByProgram(specs, pts), nil
}

// Figure9 reproduces the performance-vs-miss-rate scatter: every program
// and cache size under all three memory models.
func Figure9() ([]PerfPoint, error) {
	var specs []pointSpec
	for _, prog := range PerfPrograms {
		for _, mem := range memory.Models() {
			for _, cs := range CacheSizes {
				specs = append(specs, pointSpec{prog, cs, 16, mem, 1.0})
			}
		}
	}
	return sweepPoints(specs)
}

// Tables11to13 reproduces the data-cache effect study (§4.2.4): a 1 KB
// instruction cache with the analytical data cache model swept over the
// paper's miss rates, for nasa7, espresso, and fpppp.
func Tables11to13() (map[string][]PerfPoint, error) {
	var specs []pointSpec
	for _, prog := range []string{"nasa7", "espresso", "fpppp"} {
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			for _, dm := range DCacheMissRates {
				specs = append(specs, pointSpec{prog, 1024, 16, mem, dm})
			}
		}
	}
	pts, err := sweepPoints(specs)
	if err != nil {
		return nil, err
	}
	return groupByProgram(specs, pts), nil
}
