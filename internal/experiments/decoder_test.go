package experiments

import (
	"testing"

	"ccrp/internal/core"
	"ccrp/internal/memory"
)

// TestDecoderChoiceCycleIdentical is the ccrp-bench -decoder contract:
// the multi, fast, and canonical software decode paths must produce
// identical PerfPoint cycle counts. The refill cycle model charges the
// paper's fixed decoder rate regardless of how the host expands bytes,
// so any divergence here means a decode path corrupted a decompressed
// line (a corrupt line would fail Compare's execution check or shift
// traffic).
func TestDecoderChoiceCycleIdentical(t *testing.T) {
	run := func(kind core.DecoderKind) PerfPoint {
		t.Helper()
		SetDecoder(kind)
		defer SetDecoder(core.DecoderMulti)
		// Separate artifact-cache keys per decoder kind mean each run
		// builds (or reuses) its own ROM instance.
		p, err := Point("eightq", 1024, 16, memory.EPROM{}, 1.0)
		if err != nil {
			t.Fatalf("decoder %v: %v", kind, err)
		}
		return p
	}
	multi := run(core.DecoderMulti)
	fast := run(core.DecoderFast)
	canonical := run(core.DecoderCanonical)

	if multi.CyclesCCRP != canonical.CyclesCCRP || multi.CyclesStd != canonical.CyclesStd {
		t.Errorf("cycle counts diverge: multi = %d/%d, canonical = %d/%d",
			multi.CyclesCCRP, multi.CyclesStd, canonical.CyclesCCRP, canonical.CyclesStd)
	}
	if multi != canonical || fast != canonical {
		t.Errorf("perf points diverge:\nmulti     = %+v\nfast      = %+v\ncanonical = %+v",
			multi, fast, canonical)
	}
}

func TestParseDecoder(t *testing.T) {
	for s, want := range map[string]core.DecoderKind{
		"multi":     core.DecoderMulti,
		"":          core.DecoderMulti,
		"fast":      core.DecoderFast,
		"canonical": core.DecoderCanonical,
	} {
		got, err := core.ParseDecoder(s)
		if err != nil || got != want {
			t.Errorf("ParseDecoder(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := core.ParseDecoder("simd"); err == nil {
		t.Error("ParseDecoder accepted an unknown kind")
	}
}
