package experiments

import (
	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/lat"
	"ccrp/internal/memory"
	"ccrp/internal/workload"
)

// AlignmentRow compares byte-aligned against word-aligned compressed
// blocks for one program (the Figure 1 design choice: byte alignment
// compresses slightly better, word alignment simplifies the fetch path).
type AlignmentRow struct {
	Program     string
	ByteAligned float64 // compressed blocks / original, byte boundaries
	WordAligned float64 // compressed blocks / original, word boundaries
}

// Figure1Alignment computes the alignment ablation over the Figure 5 set.
func Figure1Alignment() ([]AlignmentRow, error) {
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	var rows []AlignmentRow
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		br, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}})
		if err != nil {
			return nil, err
		}
		wr, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}, WordAligned: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AlignmentRow{
			Program:     w.Name,
			ByteAligned: float64(br.BlocksSize()) / float64(br.OriginalSize),
			WordAligned: float64(wr.BlocksSize()) / float64(wr.OriginalSize),
		})
	}
	return rows, nil
}

// Figure2Addresses returns the physical start address of each of the
// first n compressed blocks of a program, illustrating the
// randomization of line addresses that motivates the LAT (Figure 2).
func Figure2Addresses(program string, n int) (orig []uint32, compressed []uint32, err error) {
	w, ok := workload.ByName(program)
	if !ok {
		return nil, nil, errUnknown(program)
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, nil, err
	}
	rom, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}})
	if err != nil {
		return nil, nil, err
	}
	if n > len(rom.Lines) {
		n = len(rom.Lines)
	}
	addr := uint32(0)
	for i := 0; i < n; i++ {
		orig = append(orig, uint32(i*core.LineSize))
		compressed = append(compressed, addr)
		addr += uint32(len(rom.Lines[i].Stored))
	}
	return orig, compressed, nil
}

type unknownErr string

func (e unknownErr) Error() string { return "experiments: unknown workload " + string(e) }
func errUnknown(p string) error    { return unknownErr(p) }

// LATRow compares the paper's grouped 8-byte LAT entries against the
// rejected one-pointer-per-block design (§3.2).
type LATRow struct {
	Program         string
	GroupedOverhead float64 // 8 bytes per 8 blocks = 3.125%
	NaiveOverhead   float64 // 4-byte pointer per block = 12.5%
}

// LATAblation computes the LAT encoding ablation.
func LATAblation() ([]LATRow, error) {
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	var rows []LATRow
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		rom, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LATRow{
			Program:         w.Name,
			GroupedOverhead: float64(rom.TableSize()) / float64(rom.OriginalSize),
			NaiveOverhead:   float64(lat.NaiveTableSize(len(rom.Lines))) / float64(rom.OriginalSize),
		})
	}
	return rows, nil
}

// MultiCodeRow measures the §2.2 multiple-preselected-codes extension:
// adding the program's own bounded code as a second candidate (with its
// per-block tag cost) against the single preselected code.
type MultiCodeRow struct {
	Program    string
	SingleCode float64 // blocks+LAT under the preselected code alone
	TwoCodes   float64 // blocks+LAT+tags with {preselected, per-program}
}

// MultiCodeAblation computes the multi-code extension over the corpus.
func MultiCodeAblation() ([]MultiCodeRow, error) {
	presel, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	var rows []MultiCodeRow
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		own, err := OwnCode(text)
		if err != nil {
			return nil, err
		}
		single, err := preselROM(text)
		if err != nil {
			return nil, err
		}
		double, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{presel, own}})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MultiCodeRow{
			Program:    w.Name,
			SingleCode: single.Ratio(),
			TwoCodes:   double.Ratio(),
		})
	}
	return rows, nil
}

// OverlapRow measures the paper's §5 suggestion of letting the pipeline
// continue during refill. Both systems get the same absolute overlap
// window, so both speed up; note that because the CCRP's refills are the
// longer ones (on fast memory), hiding a fixed number of cycles from both
// systems widens the *ratio* even as both absolute times drop.
type OverlapRow struct {
	Program       string
	OverlapCycles uint64
	RelPerf       float64
	CyclesStd     uint64
	CyclesCCRP    uint64
}

// OverlapAblation sweeps the refill overlap window on the burst-EPROM
// model at 256 bytes (where refills dominate).
func OverlapAblation(program string) ([]OverlapRow, error) {
	w, ok := workload.ByName(program)
	if !ok {
		return nil, errUnknown(program)
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	var rows []OverlapRow
	for _, ov := range []uint64{0, 2, 4, 8} {
		cmp, err := core.Compare(tr, text, core.Config{
			CacheBytes:    256,
			Mem:           memory.BurstEPROM{},
			Codes:         []*huffman.Code{code},
			OverlapCycles: ov,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverlapRow{
			Program:       program,
			OverlapCycles: ov,
			RelPerf:       cmp.RelativePerformance(),
			CyclesStd:     cmp.Standard.Cycles,
			CyclesCCRP:    cmp.CCRP.Cycles,
		})
	}
	return rows, nil
}

// ISARow supports the §5 "other instruction sets" discussion: the
// byte-oriented pipeline applied to non-R2000 byte streams — each
// program's initialized data section and a synthetic dense (high-entropy)
// encoding — compressed with the R2000-trained preselected code versus a
// stream-specific bounded code.
type ISARow struct {
	Stream      string
	Preselected float64 // compressed/original under the R2000 corpus code
	StreamTuned float64 // compressed/original under the stream's own code
}

// ISAAblation demonstrates that the preselected code is ISA-specific:
// it does far worse than a tuned code on non-instruction bytes.
func ISAAblation() ([]ISARow, error) {
	presel, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	streams := []struct {
		name string
		data []byte
	}{}
	for _, name := range []string{"matrix25a", "spim"} {
		w, _ := workload.ByName(name)
		p, err := w.Program()
		if err != nil {
			return nil, err
		}
		if len(p.Data) >= 256 {
			streams = append(streams, struct {
				name string
				data []byte
			}{name + ".data", p.Data})
		}
	}
	dense := make([]byte, 16384)
	rng := lcg{s: 0xDEC0DE}
	for i := range dense {
		dense[i] = byte(rng.next())
	}
	streams = append(streams, struct {
		name string
		data []byte
	}{"dense-ISA", dense})

	var rows []ISARow
	for _, s := range streams {
		own, err := boundedCode(huffman.HistogramOf(s.data).Smooth(), HuffmanBound)
		if err != nil {
			return nil, err
		}
		pr, err := blockRatio(s.data, presel, false)
		if err != nil {
			return nil, err
		}
		or, err := blockRatio(s.data, own, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ISARow{Stream: s.name, Preselected: pr, StreamTuned: or})
	}
	return rows, nil
}

// lcg mirrors the workload package's deterministic generator.
type lcg struct{ s uint64 }

func (r *lcg) next() uint32 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return uint32(r.s >> 33)
}
