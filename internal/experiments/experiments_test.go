package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// Shared expensive results, computed once per test binary.
var (
	t18Once sync.Once
	t18     map[string][]PerfPoint
	t18Err  error
)

func tables1to8(t *testing.T) map[string][]PerfPoint {
	t.Helper()
	t18Once.Do(func() { t18, t18Err = Tables1to8() })
	if t18Err != nil {
		t.Fatal(t18Err)
	}
	return t18
}

func TestPreselectedCode(t *testing.T) {
	code, err := PreselectedCode()
	if err != nil {
		t.Fatal(err)
	}
	if code.MaxLen() > HuffmanBound {
		t.Errorf("preselected code exceeds bound: %d bits", code.MaxLen())
	}
	for s := 0; s < 256; s++ {
		if code.Len(byte(s)) == 0 {
			t.Fatalf("preselected code missing codeword for byte %#02x", s)
		}
	}
	// Zero bytes dominate R2000 code; the preselected code must give
	// them one of its shortest codewords.
	if code.Len(0x00) > 4 {
		t.Errorf("byte 0x00 coded in %d bits", code.Len(0x00))
	}
}

func TestFigure5Claims(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 || rows[10].Program != "Weighted Average" {
		t.Fatalf("rows = %d, last = %q", len(rows), rows[len(rows)-1].Program)
	}
	avg := rows[10]
	// "often achieving more than 40% compression" for compress —
	// compressed size well below 70%.
	if avg.Compress > 0.70 {
		t.Errorf("weighted compress ratio = %.3f", avg.Compress)
	}
	// The paper's key claim: a single preselected code still provides a
	// significant reduction (stored size around 70-75% of original).
	if avg.Preselected > 0.80 || avg.Preselected < 0.55 {
		t.Errorf("weighted preselected ratio = %.3f outside the paper's regime", avg.Preselected)
	}
	for _, r := range rows {
		// Every method always shrinks every program.
		for name, v := range map[string]float64{
			"compress": r.Compress, "traditional": r.Traditional,
			"bounded": r.Bounded, "preselected": r.Preselected,
		} {
			if v >= 1.0 || v <= 0 {
				t.Errorf("%s/%s ratio = %.3f", r.Program, name, v)
			}
		}
		// Bounding the code can never beat the optimal unbounded code on
		// the blocks themselves; with the identical table accounting the
		// bounded column can never be smaller.
		if r.Bounded < r.Traditional-1e-9 {
			t.Errorf("%s: bounded %.4f beats traditional %.4f", r.Program, r.Bounded, r.Traditional)
		}
	}
	// On big programs whole-file LZW beats block-bounded Huffman (the
	// reason compress is the reference, and unusable, §2.1).
	for _, r := range rows[:10] {
		if r.OriginalBytes > 100000 && r.Compress >= r.Preselected {
			t.Errorf("%s: compress %.3f not better than preselected %.3f",
				r.Program, r.Compress, r.Preselected)
		}
	}
}

func TestLATOverhead(t *testing.T) {
	out, err := LATOverhead()
	if err != nil {
		t.Fatal(err)
	}
	for prog, ov := range out {
		if math.Abs(ov-0.03125) > 0.002 {
			t.Errorf("%s: LAT overhead %.4f, want ~3.125%%", prog, ov)
		}
	}
}

func TestTables1to8Claims(t *testing.T) {
	res := tables1to8(t)
	if len(res) != len(PerfPrograms) {
		t.Fatalf("programs = %d", len(res))
	}
	for prog, pts := range res {
		perModel := map[string][]PerfPoint{}
		for _, p := range pts {
			perModel[p.Memory] = append(perModel[p.Memory], p)
			// §4.3: instruction memory traffic is reduced in all cases.
			if p.Traffic >= 1.0 {
				t.Errorf("%s/%s/%d: traffic ratio %.3f >= 1", prog, p.Memory, p.CacheBytes, p.Traffic)
			}
			if p.MissRate < 0 || p.MissRate > 0.5 {
				t.Errorf("%s: implausible miss rate %.4f", prog, p.MissRate)
			}
		}
		// EPROM always favors the CCRP more than burst EPROM does.
		for i, pe := range perModel["EPROM"] {
			pb := perModel["Burst EPROM"][i]
			if pe.RelPerf > pb.RelPerf+1e-9 {
				t.Errorf("%s @%d: EPROM relperf %.3f worse than burst %.3f",
					prog, pe.CacheBytes, pe.RelPerf, pb.RelPerf)
			}
			// Both systems share one cache: identical miss rates.
			if pe.MissRate != pb.MissRate {
				t.Errorf("%s @%d: miss rates differ across memory models", prog, pe.CacheBytes)
			}
		}
		// Miss rate is non-increasing in cache size.
		eprom := perModel["EPROM"]
		for i := 1; i < len(eprom); i++ {
			if eprom[i].MissRate > eprom[i-1].MissRate+1e-9 {
				t.Errorf("%s: miss rate rose from %d to %d bytes",
					prog, eprom[i-1].CacheBytes, eprom[i].CacheBytes)
			}
		}
	}
	// The fpppp cliff: high flat miss rate through 1KB, tiny from 2KB.
	var fp []PerfPoint
	for _, p := range res["fpppp"] {
		if p.Memory == "EPROM" {
			fp = append(fp, p)
		}
	}
	if fp[2].MissRate < 0.05 {
		t.Errorf("fpppp @1KB miss = %.4f, want the paper's >5%% plateau", fp[2].MissRate)
	}
	if fp[3].MissRate > 0.03 {
		t.Errorf("fpppp @2KB miss = %.4f, want the post-cliff drop", fp[3].MissRate)
	}
	// DRAM rows exist for matrix25a only and track burst EPROM.
	if len(res["matrix25a"]) != 15 {
		t.Errorf("matrix25a rows = %d, want 15 (3 models)", len(res["matrix25a"]))
	}
	for _, p := range res["nasa7"] {
		if p.Memory == "DRAM" {
			t.Error("nasa7 has DRAM rows; the paper includes DRAM for one program only")
		}
	}
	// espresso under EPROM: the CCRP wins (paper: 0.905-0.957).
	for _, p := range res["espresso"] {
		if p.Memory == "EPROM" && p.RelPerf >= 1.0 {
			t.Errorf("espresso/EPROM@%d relperf = %.3f, want < 1", p.CacheBytes, p.RelPerf)
		}
		if p.Memory == "Burst EPROM" && p.RelPerf <= 1.0 {
			t.Errorf("espresso/Burst@%d relperf = %.3f, want > 1", p.CacheBytes, p.RelPerf)
		}
	}
}

func TestTables9and10Claims(t *testing.T) {
	res, err := Tables9and10()
	if err != nil {
		t.Fatal(err)
	}
	for prog, pts := range res {
		type key struct {
			mem string
			cs  int
		}
		byCfg := map[key]map[int]float64{}
		for _, p := range pts {
			k := key{p.Memory, p.CacheBytes}
			if byCfg[k] == nil {
				byCfg[k] = map[int]float64{}
			}
			byCfg[k][p.CLBEntries] = p.RelPerf
		}
		for k, m := range byCfg {
			// A larger CLB can only help the CCRP.
			if m[16] > m[8]+1e-9 || m[8] > m[4]+1e-9 {
				t.Errorf("%s %v: relperf not monotone in CLB size: 16=%.4f 8=%.4f 4=%.4f",
					prog, k, m[16], m[8], m[4])
			}
			// The paper: variations with CLB size are minor.
			if m[4]-m[16] > 0.15 {
				t.Errorf("%s %v: CLB effect implausibly large: %.4f", prog, k, m[4]-m[16])
			}
		}
	}
}

func TestFigure9Claims(t *testing.T) {
	pts, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(PerfPrograms)*3*len(CacheSizes) {
		t.Fatalf("points = %d", len(pts))
	}
	// The paper's correlation: for slow EPROM, higher miss rate means the
	// compressed model wins by more (relperf falls); for fast memory the
	// opposite. Check via covariance sign on each model's point cloud.
	cov := func(model string) float64 {
		var xs, ys []float64
		for _, p := range pts {
			if p.Memory == model {
				xs = append(xs, p.MissRate)
				ys = append(ys, p.RelPerf)
			}
		}
		var mx, my float64
		for i := range xs {
			mx += xs[i]
			my += ys[i]
		}
		mx /= float64(len(xs))
		my /= float64(len(ys))
		var c float64
		for i := range xs {
			c += (xs[i] - mx) * (ys[i] - my)
		}
		return c
	}
	if c := cov("EPROM"); c >= 0 {
		t.Errorf("EPROM miss-rate/relperf covariance = %g, want negative", c)
	}
	if c := cov("Burst EPROM"); c <= 0 {
		t.Errorf("Burst EPROM covariance = %g, want positive", c)
	}
	if c := cov("DRAM"); c <= 0 {
		t.Errorf("DRAM covariance = %g, want positive", c)
	}
}

func TestTables11to13Claims(t *testing.T) {
	res, err := Tables11to13()
	if err != nil {
		t.Fatal(err)
	}
	for prog, pts := range res {
		perModel := map[string][]PerfPoint{}
		for _, p := range pts {
			perModel[p.Memory] = append(perModel[p.Memory], p)
		}
		for model, series := range perModel {
			// §4.2.4: as the data cache miss rate increases, the CCRP's
			// effect on performance is diluted toward 1.0.
			for i := 1; i < len(series); i++ {
				prev := math.Abs(1 - series[i-1].RelPerf)
				cur := math.Abs(1 - series[i].RelPerf)
				if cur > prev+1e-9 {
					t.Errorf("%s/%s: |1-relperf| grew from dmiss %.0f%% to %.0f%%",
						prog, model, 100*series[i-1].DCacheMissRate, 100*series[i].DCacheMissRate)
				}
			}
		}
	}
}

func TestAblations(t *testing.T) {
	al, err := Figure1Alignment()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range al {
		if r.WordAligned < r.ByteAligned-1e-9 {
			t.Errorf("%s: word alignment %.4f beats byte alignment %.4f",
				r.Program, r.WordAligned, r.ByteAligned)
		}
	}
	lr, err := LATAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lr {
		if r.NaiveOverhead <= r.GroupedOverhead {
			t.Errorf("%s: naive LAT %.4f not worse than grouped %.4f",
				r.Program, r.NaiveOverhead, r.GroupedOverhead)
		}
		if math.Abs(r.NaiveOverhead-0.125) > 0.01 {
			t.Errorf("%s: naive overhead %.4f, want ~12.5%%", r.Program, r.NaiveOverhead)
		}
	}
	mc, err := MultiCodeAblation()
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for _, r := range mc {
		if r.TwoCodes < r.SingleCode {
			better++
		}
	}
	if better == 0 {
		t.Error("two-code scheme never beat the single code on any program")
	}
	ov, err := OverlapAblation("espresso")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ov); i++ {
		// Overlap hides refill cycles from both systems.
		if ov[i].CyclesCCRP >= ov[i-1].CyclesCCRP || ov[i].CyclesStd >= ov[i-1].CyclesStd {
			t.Errorf("overlap %d did not reduce cycles: ccrp %d->%d std %d->%d",
				ov[i].OverlapCycles, ov[i-1].CyclesCCRP, ov[i].CyclesCCRP,
				ov[i-1].CyclesStd, ov[i].CyclesStd)
		}
	}
	isa, err := ISAAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range isa {
		if r.Stream == "dense-ISA" && r.Preselected < 0.95 {
			t.Errorf("dense stream compressed to %.3f under the R2000 code; it should not", r.Preselected)
		}
		if r.Preselected < r.StreamTuned-1e-9 {
			t.Errorf("%s: R2000 code %.4f beats the stream-tuned code %.4f",
				r.Stream, r.Preselected, r.StreamTuned)
		}
	}
	if _, err := OverlapAblation("nonexistent"); err == nil {
		t.Error("OverlapAblation accepted unknown workload")
	}
	if _, _, err := Figure2Addresses("nonexistent", 5); err == nil {
		t.Error("Figure2Addresses accepted unknown workload")
	}
}

func TestFigure2Addresses(t *testing.T) {
	orig, comp, err := Figure2Addresses("eightq", 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 12 || len(comp) != 12 {
		t.Fatalf("lengths %d/%d", len(orig), len(comp))
	}
	for i := 1; i < len(comp); i++ {
		if comp[i] <= comp[i-1] {
			t.Error("compressed addresses not strictly increasing")
		}
		if comp[i] > orig[i] {
			t.Error("compressed image larger than original prefix")
		}
	}
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	if err := RenderFigure5(&b); err != nil {
		t.Fatal(err)
	}
	if err := RenderFigure1(&b); err != nil {
		t.Fatal(err)
	}
	if err := RenderFigure2(&b, "eightq", 10); err != nil {
		t.Fatal(err)
	}
	if err := RenderTables9and10(&b); err != nil {
		t.Fatal(err)
	}
	if err := RenderTables11to13(&b); err != nil {
		t.Fatal(err)
	}
	if err := RenderAblations(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 5", "Weighted Average", "Table 9", "Table 10", "Table 11",
		"Preselected", "CLB", "Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestExtensionAblations(t *testing.T) {
	// Decoder rate: §3.4's "decode speed is a major limiting factor" —
	// relative performance improves monotonically with decoder rate, and
	// a wide decoder turns the burst-EPROM penalty into a win.
	rates, err := DecodeRateAblation("espresso")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i].RelPerf >= rates[i-1].RelPerf {
			t.Errorf("rate %d did not improve relperf: %.3f vs %.3f",
				rates[i].Rate, rates[i].RelPerf, rates[i-1].RelPerf)
		}
	}
	if rates[0].Rate != 1 || rates[0].RelPerf < 1.5 {
		t.Errorf("1 B/cycle decoder should be crippling, got %.3f", rates[0].RelPerf)
	}
	if last := rates[len(rates)-1]; last.RelPerf > 1.05 {
		t.Errorf("8 B/cycle decoder still penalized: %.3f", last.RelPerf)
	}

	// Block size: compression improves monotonically with block size
	// (§2.1), with diminishing returns past 32 bytes.
	blocks, err := BlockSizeAblation()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Ratio > blocks[i-1].Ratio+1e-9 {
			t.Errorf("ratio rose from %dB to %dB blocks", blocks[i-1].BlockBytes, blocks[i].BlockBytes)
		}
	}
	if blocks[0].Ratio-blocks[len(blocks)-1].Ratio < 0.02 {
		t.Error("block size made no difference; §2.1 tradeoff not visible")
	}

	// Associativity: espresso's misses are capacity misses, so extra
	// ways move the needle very little at small sizes (refining §4.3's
	// remark: what espresso needs is a larger cache).
	assoc, err := AssociativityAblation("espresso")
	if err != nil {
		t.Fatal(err)
	}
	if len(assoc) != 9 {
		t.Fatalf("assoc rows = %d", len(assoc))
	}
	for _, r := range assoc {
		if r.MissRate <= 0 || r.MissRate > 0.25 || r.RelPerf >= 1.0 {
			t.Errorf("implausible assoc row: %+v", r)
		}
	}

	// Decoder hardware cost (§3.4): a complete byte code always has 255
	// internal FSM states and 256 CAM entries; the mapping ROM is
	// 2^maxlen entries.
	cost, err := DecoderCost()
	if err != nil {
		t.Fatal(err)
	}
	if cost.FSMStates != 255 || cost.CAMEntries != 256 {
		t.Errorf("decoder cost = %+v", cost)
	}
	code, _ := PreselectedCode()
	if wantEntries := 1 << uint(code.MaxLen()); cost.ROMBits%wantEntries != 0 {
		t.Errorf("ROM bits %d not a multiple of entries %d", cost.ROMBits, wantEntries)
	}

	if _, err := AssociativityAblation("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := DecodeRateAblation("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPagingStudy(t *testing.T) {
	rows, err := PagingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CycleRatio >= 1 {
			t.Errorf("%s/%d frames: paging cycle ratio %.3f, want < 1", r.Device, r.Frames, r.CycleRatio)
		}
		if r.StoreRatio >= 1 || r.StoreRatio < 0.5 {
			t.Errorf("store ratio %.3f implausible", r.StoreRatio)
		}
		if r.Faults == 0 {
			t.Errorf("%s/%d frames: no faults recorded", r.Device, r.Frames)
		}
	}
	// Thrashing with 4 frames must fault far more than a fitting pool.
	if rows[0].Faults <= rows[1].Faults {
		t.Errorf("4-frame faults %d not above 8-frame %d", rows[0].Faults, rows[1].Faults)
	}
}

func TestCodePackStudy(t *testing.T) {
	rows, err := CodePackStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The halfword-dictionary scheme must beat byte Huffman on every
		// program (that superiority is why CodePack displaced it).
		if r.CodePack >= r.ByteHuffman {
			t.Errorf("%s: codepack %.3f not better than byte huffman %.3f",
				r.Program, r.CodePack, r.ByteHuffman)
		}
		if r.CodePack < 0.4 || r.CodePack > 0.8 {
			t.Errorf("%s: codepack ratio %.3f implausible", r.Program, r.CodePack)
		}
		// In the decode-bound burst regime both schemes sit at the
		// 16-cycle + first-word floor; CodePack gains compression for free.
		if r.CPRefill > r.ByteRefill+1.0 {
			t.Errorf("%s: codepack refill %.1f much worse than byte %.1f",
				r.Program, r.CPRefill, r.ByteRefill)
		}
	}
}

func TestCodePackPerf(t *testing.T) {
	rows, err := CodePackPerf()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The better-compressing scheme always moves fewer bytes.
		if r.CPTraffic >= r.ByteTraffic {
			t.Errorf("%s/%s: codepack traffic %.3f not below byte %.3f",
				r.Program, r.Memory, r.CPTraffic, r.ByteTraffic)
		}
		// On fetch-bound EPROM, less traffic means faster refills.
		if r.Memory == "EPROM" && r.CPRelPerf >= r.ByteRelPerf {
			t.Errorf("%s/EPROM: codepack relperf %.3f not better than byte %.3f",
				r.Program, r.CPRelPerf, r.ByteRelPerf)
		}
	}
}
