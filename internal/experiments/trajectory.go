package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ccrp/internal/hostinfo"
	"ccrp/internal/sweep"
)

// Trajectory is the benchmark trajectory document (BENCH_*.json): one
// full sweep timed sequentially and in parallel, with the complete
// per-point datapoints (including per-point cycle counts) embedded so
// future PRs can diff both wall-time and every individual result.
type Trajectory struct {
	Schema         int             `json:"schema"`
	Label          string          `json:"label"` // e.g. "PR2"
	GoVersion      string          `json:"go_version"`
	NumCPU         int             `json:"num_cpu"`
	Host           hostinfo.Info   `json:"host"`    // toolchain + CPU metadata for cross-machine diffs
	Workers        int             `json:"workers"` // worker count of the parallel run
	Experiments    []string        `json:"experiments"`
	SeqWallSeconds float64         `json:"seq_wall_seconds"` // -j 1, cold artifact cache
	ParWallSeconds float64         `json:"par_wall_seconds"` // -j workers, cold artifact cache
	Speedup        float64         `json:"speedup"`          // seq / par
	ByteIdentical  bool            `json:"byte_identical"`   // -j 1 vs -j N JSON outputs
	PointsSHA256   string          `json:"points_sha256"`    // content address of Points
	Points         json.RawMessage `json:"points"`           // the parallel run's BenchJSON
	// DecodeBench compares the canonical and table-driven software
	// decode paths (additive in schema 2; absent in pre-PR5 documents).
	DecodeBench *DecodeBench `json:"decode_bench,omitempty"`
}

// BuildTrajectory runs the named experiments (all when names is empty)
// twice — sequentially and at the given worker count, each from a cold
// artifact cache so the runs are comparable — and returns the timed,
// cross-checked document. The engine installed by SetEngine is restored
// afterwards.
func BuildTrajectory(names []string, workers int, label string) (*Trajectory, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	prev := currentEngine()
	defer SetEngine(prev)

	run := func(w int) ([]byte, float64, error) {
		resetArtifacts()
		SetEngine(&sweep.Engine{Workers: w})
		var buf bytes.Buffer
		start := time.Now()
		err := WriteBenchJSON(&buf, names)
		return buf.Bytes(), time.Since(start).Seconds(), err
	}
	seqJSON, seqSec, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("experiments: sequential trajectory run: %w", err)
	}
	parJSON, parSec, err := run(workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: parallel trajectory run: %w", err)
	}

	if len(names) == 0 {
		names = Experiments
	}
	t := &Trajectory{
		Schema:         2,
		Label:          label,
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Host:           hostinfo.Collect(),
		Workers:        workers,
		Experiments:    append([]string(nil), names...),
		SeqWallSeconds: seqSec,
		ParWallSeconds: parSec,
		ByteIdentical:  bytes.Equal(seqJSON, parJSON),
		PointsSHA256:   sweep.HashBytes(parJSON),
		Points:         json.RawMessage(parJSON),
	}
	if parSec > 0 {
		t.Speedup = seqSec / parSec
	}
	if t.DecodeBench, err = MeasureDecodeBench("espresso"); err != nil {
		return nil, fmt.Errorf("experiments: decode benchmark: %w", err)
	}
	if !t.ByteIdentical {
		return t, fmt.Errorf("experiments: -j 1 and -j %d outputs differ — sweep is not deterministic", workers)
	}
	return t, nil
}

// WriteTrajectory writes BuildTrajectory's document as indented JSON.
func WriteTrajectory(w io.Writer, names []string, workers int, label string) error {
	t, err := BuildTrajectory(names, workers, label)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
