package experiments

import "testing"

func TestMeasureDecodeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement skipped with -short")
	}
	b, err := MeasureDecodeBench("eightq")
	if err != nil {
		t.Fatal(err)
	}
	if b.TextBytes == 0 || b.EncodedBytes == 0 || b.EncodedBytes >= b.TextBytes {
		t.Errorf("implausible sizes: %+v", b)
	}
	if b.CanonicalMBps <= 0 || b.FastMBps <= 0 {
		t.Errorf("nonpositive throughput: %+v", b)
	}
	if b.FastRootBits < 1 || b.FastTableEnt < 1<<b.FastRootBits {
		t.Errorf("implausible table shape: %+v", b)
	}
	// No hard speedup floor here (timing under the race detector or a
	// loaded CI box is noisy); the huffman package's speedup test and the
	// committed BENCH_PR5.json carry the >=2x claim.
	if b.Speedup <= 0 {
		t.Errorf("speedup not computed: %+v", b)
	}
}

func TestMeasureDecodeBenchUnknownWorkload(t *testing.T) {
	if _, err := MeasureDecodeBench("no-such-program"); err == nil {
		t.Error("unknown workload accepted")
	}
}
