package experiments

import "testing"

func TestMeasureDecodeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement skipped with -short")
	}
	b, err := MeasureDecodeBench("eightq")
	if err != nil {
		t.Fatal(err)
	}
	if b.TextBytes == 0 || b.EncodedBytes == 0 || b.EncodedBytes >= b.TextBytes {
		t.Errorf("implausible sizes: %+v", b)
	}
	if b.CanonicalMBps <= 0 || b.FastMBps <= 0 || b.MultiMBps <= 0 {
		t.Errorf("nonpositive throughput: %+v", b)
	}
	if b.FastRootBits < 1 || b.FastTableEnt < 1<<b.FastRootBits {
		t.Errorf("implausible fast table shape: %+v", b)
	}
	if b.MultiRootBits < 1 || b.MultiTableEnt < 1<<b.MultiRootBits {
		t.Errorf("implausible multi table shape: %+v", b)
	}
	// No hard speedup floor here (timing under the race detector or a
	// loaded CI box is noisy); the huffman package's speedup test and the
	// committed BENCH_PR9.json carry the throughput claims.
	if b.Speedup <= 0 || b.MultiSpeedup <= 0 {
		t.Errorf("speedup not computed: %+v", b)
	}
	// Two kernels per sweep width, each with a sane table shape.
	if len(b.Kernels) != 2*len(kernelSweepChunks) {
		t.Fatalf("kernel sweep has %d points, want %d", len(b.Kernels), 2*len(kernelSweepChunks))
	}
	for _, k := range b.Kernels {
		if k.Kernel != "fast" && k.Kernel != "multi" {
			t.Errorf("unknown kernel %q", k.Kernel)
		}
		// The root is clamped to the code's longest codeword, so wide
		// chunk requests may build fewer than 1<<ChunkBits entries.
		if k.MBps <= 0 || k.TableEntries <= 0 || k.SizeBits <= 0 {
			t.Errorf("implausible kernel point: %+v", k)
		}
	}
}

// TestDecodeBenchMultiBeatsFast is the PR9 acceptance gate run by
// scripts/decode_smoke.sh: on the paper's largest corpus program the
// multi-symbol kernel must out-run the single-symbol FastDecoder.
// Timing under the race detector is meaningless, so the assertion is
// skipped there and with -short.
func TestDecodeBenchMultiBeatsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing assertion skipped under the race detector")
	}
	b, err := MeasureDecodeBenchQuick("espresso")
	if err != nil {
		t.Fatal(err)
	}
	if b.MultiMBps <= b.FastMBps {
		t.Errorf("multi kernel (%.1f MB/s) does not beat fast (%.1f MB/s)", b.MultiMBps, b.FastMBps)
	}
	if b.MultiSpeedup < 2 {
		t.Errorf("multi speedup vs canonical = %.2fx, want >= 2x", b.MultiSpeedup)
	}
}

func TestMeasureDecodeBenchUnknownWorkload(t *testing.T) {
	if _, err := MeasureDecodeBench("no-such-program"); err == nil {
		t.Error("unknown workload accepted")
	}
}
