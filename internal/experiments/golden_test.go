package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFigure5 pins the exact Figure 5 output: the corpus, the
// assembler, the compressors, and the preselected code are all
// deterministic, so any drift in this table is an unintended behaviour
// change somewhere in the pipeline. Refresh intentionally with
// go test ./internal/experiments -run Golden -update.
func TestGoldenFigure5(t *testing.T) {
	var b strings.Builder
	if err := RenderFigure5(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5.golden", b.String())
}

// TestGoldenFigure2 pins the compressed line addresses of eightq.
func TestGoldenFigure2(t *testing.T) {
	var b strings.Builder
	if err := RenderFigure2(&b, "eightq", 14); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2.golden", b.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
