package experiments

import (
	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/lzw"
	"ccrp/internal/workload"
)

// Figure5Row is one bar group of Figure 5: the compressed size of one
// program under each method, as a fraction of original size.
//
// Accounting follows the paper's Figure 5 discussion: the Huffman methods
// compress 32-byte blocks onto addressable (byte) boundaries with the raw
// bypass; per-program codes (traditional and bounded) additionally carry
// their serialized code table, while the preselected code's table is
// hardwired in the decoder and costs nothing. Unix compress is whole-file
// LZW. The LAT is a separate, method-independent 3.125% and is reported
// by LATOverhead.
type Figure5Row struct {
	Program       string
	OriginalBytes int
	Compress      float64 // Unix compress (LZW) reference
	Traditional   float64 // per-program unbounded Huffman + its table
	Bounded       float64 // per-program 16-bit bounded Huffman + its table
	Preselected   float64 // corpus-wide preselected bounded Huffman
}

// Figure5 computes the row for every Figure 5 program plus the
// size-weighted average row (Program == "Weighted Average").
func Figure5() ([]Figure5Row, error) {
	var rows []Figure5Row
	var totOrig int
	var totC, totT, totB, totP float64
	for _, w := range workload.Figure5Set() {
		row, err := figure5Row(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		totOrig += row.OriginalBytes
		totC += row.Compress * float64(row.OriginalBytes)
		totT += row.Traditional * float64(row.OriginalBytes)
		totB += row.Bounded * float64(row.OriginalBytes)
		totP += row.Preselected * float64(row.OriginalBytes)
	}
	rows = append(rows, Figure5Row{
		Program:       "Weighted Average",
		OriginalBytes: totOrig,
		Compress:      totC / float64(totOrig),
		Traditional:   totT / float64(totOrig),
		Bounded:       totB / float64(totOrig),
		Preselected:   totP / float64(totOrig),
	})
	return rows, nil
}

func figure5Row(w *workload.Workload) (Figure5Row, error) {
	text, err := w.Text()
	if err != nil {
		return Figure5Row{}, err
	}
	row := Figure5Row{Program: w.Name, OriginalBytes: len(text)}

	row.Compress, err = lzw.Ratio(text, lzw.MaxBitsDefault)
	if err != nil {
		return Figure5Row{}, err
	}

	hist := huffman.HistogramOf(text)
	trad, err := traditionalCode(hist)
	if err != nil {
		return Figure5Row{}, err
	}
	row.Traditional, err = blockRatio(text, trad, true)
	if err != nil {
		return Figure5Row{}, err
	}

	bounded, err := boundedCode(hist, HuffmanBound)
	if err != nil {
		return Figure5Row{}, err
	}
	row.Bounded, err = blockRatio(text, bounded, true)
	if err != nil {
		return Figure5Row{}, err
	}

	// The preselected ROM is the same image every performance sweep
	// simulates; the artifact cache hands all of them one build.
	rom, err := preselROM(text)
	if err != nil {
		return Figure5Row{}, err
	}
	row.Preselected = float64(rom.BlocksSize()) / float64(rom.OriginalSize)
	return row, nil
}

// blockRatio compresses text block-by-block under code and returns
// compressed/original, adding the serialized code table when the code
// must ship with the program.
func blockRatio(text []byte, code *huffman.Code, withTable bool) (float64, error) {
	rom, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{code}})
	if err != nil {
		return 0, err
	}
	size := rom.BlocksSize()
	if withTable {
		size += (code.TableBits() + 7) / 8
	}
	return float64(size) / float64(rom.OriginalSize), nil
}

// LATOverhead returns the Line Address Table cost as a fraction of
// original program size for each Figure 5 program (the paper's ~3.125%).
func LATOverhead() (map[string]float64, error) {
	out := make(map[string]float64)
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		rom, err := preselROM(text)
		if err != nil {
			return nil, err
		}
		out[w.Name] = float64(rom.TableSize()) / float64(rom.OriginalSize)
	}
	return out, nil
}
