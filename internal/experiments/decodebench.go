package experiments

import (
	"bytes"
	"fmt"
	"time"

	"ccrp/internal/huffman"
	"ccrp/internal/workload"
)

// DecodeBench is the decode-throughput comparison embedded in benchmark
// trajectories: the canonical bit-serial decoder vs the table-driven
// FastDecoder vs the multi-symbol MultiDecoder on one corpus program
// encoded under the preselected code. Speedup figures are relative to
// the canonical path; the table fields record the mapping-ROM cost
// actually paid (compare decoder.ROM's 64K-entry hardware figure), and
// Kernels sweeps that cost/throughput trade across chunk widths.
type DecodeBench struct {
	Program         string        `json:"program"`
	TextBytes       int           `json:"text_bytes"`
	EncodedBytes    int           `json:"encoded_bytes"`
	Repeats         int           `json:"repeats"`
	CanonicalMBps   float64       `json:"canonical_mb_per_s"`
	FastMBps        float64       `json:"fast_mb_per_s"`
	MultiMBps       float64       `json:"multi_mb_per_s"`
	Speedup         float64       `json:"speedup"`       // fast vs canonical (historical field)
	MultiSpeedup    float64       `json:"multi_speedup"` // multi vs canonical
	FastRootBits    int           `json:"fast_root_bits"`
	FastTableEnt    int           `json:"fast_table_entries"`
	FastTableBytes  int           `json:"fast_table_bytes"`
	MultiRootBits   int           `json:"multi_root_bits"`
	MultiTableEnt   int           `json:"multi_table_entries"`
	MultiTableBytes int           `json:"multi_table_bytes"`
	Kernels         []KernelBench `json:"kernels,omitempty"`
}

// KernelBench is one (kernel, chunk width) point in the table-size vs
// throughput sweep: the software analogue of sizing the paper's decode
// mapping ROM.
type KernelBench struct {
	Kernel             string  `json:"kernel"`
	ChunkBits          int     `json:"chunk_bits"`
	MBps               float64 `json:"mb_per_s"`
	SpeedupVsCanonical float64 `json:"speedup_vs_canonical"`
	TableEntries       int     `json:"table_entries"`
	SizeBits           int     `json:"size_bits"`
}

// decodeBenchRepeats is sized so each timed side runs long enough (tens
// of milliseconds) to shed scheduler noise without slowing bench runs.
const decodeBenchRepeats = 8

// kernelSweepChunks are the root-table widths the Kernels sweep prices.
var kernelSweepChunks = []int{8, 10, 12, 14, 16}

// MeasureDecodeBench times all three software decode paths over one
// corpus program. The decoded outputs are verified against the original
// text, so a diverging decoder fails the measurement rather than
// reporting a meaningless throughput.
func MeasureDecodeBench(prog string) (*DecodeBench, error) {
	return measureDecodeBench(prog, true)
}

// MeasureDecodeBenchQuick skips the per-chunk-width kernel sweep,
// timing only the three default-configuration decoders.
func MeasureDecodeBenchQuick(prog string) (*DecodeBench, error) {
	return measureDecodeBench(prog, false)
}

func measureDecodeBench(prog string, sweepKernels bool) (*DecodeBench, error) {
	w, ok := workload.ByName(prog)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", prog)
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	// Encode only the bytes the preselected code covers; the smoothed
	// corpus histogram gives every byte a codeword, so in practice this
	// is the whole text.
	enc, err := code.EncodeToBytes(text)
	if err != nil {
		return nil, err
	}
	fast := code.Fast()
	multi := code.Multi()

	dst := make([]byte, len(text))
	measure := func(decode func() error) (float64, error) {
		// Warm once (builds tables, faults pages), then time the repeats.
		if err := decode(); err != nil {
			return 0, err
		}
		if !bytes.Equal(dst, text) {
			return 0, fmt.Errorf("experiments: decode of %q is not byte-identical", prog)
		}
		start := time.Now()
		for i := 0; i < decodeBenchRepeats; i++ {
			if err := decode(); err != nil {
				return 0, err
			}
		}
		sec := time.Since(start).Seconds()
		return float64(decodeBenchRepeats) * float64(len(text)) / 1e6 / sec, nil
	}

	b := &DecodeBench{
		Program:         prog,
		TextBytes:       len(text),
		EncodedBytes:    len(enc),
		Repeats:         decodeBenchRepeats,
		FastRootBits:    fast.RootBits(),
		FastTableEnt:    fast.TableEntries(),
		FastTableBytes:  fast.SizeBits() / 8,
		MultiRootBits:   multi.RootBits(),
		MultiTableEnt:   multi.TableEntries(),
		MultiTableBytes: multi.SizeBits() / 8,
	}
	if b.CanonicalMBps, err = measure(func() error {
		got, err := code.DecodeBytes(enc, len(text))
		copy(dst, got)
		return err
	}); err != nil {
		return nil, err
	}
	if b.FastMBps, err = measure(func() error {
		return fast.DecodeInto(dst, enc)
	}); err != nil {
		return nil, err
	}
	if b.MultiMBps, err = measure(func() error {
		return multi.DecodeInto(dst, enc)
	}); err != nil {
		return nil, err
	}
	if b.CanonicalMBps > 0 {
		b.Speedup = b.FastMBps / b.CanonicalMBps
		b.MultiSpeedup = b.MultiMBps / b.CanonicalMBps
	}
	if !sweepKernels {
		return b, nil
	}
	for _, chunk := range kernelSweepChunks {
		f := huffman.NewFastDecoderChunk(code, chunk)
		mbps, err := measure(func() error { return f.DecodeInto(dst, enc) })
		if err != nil {
			return nil, err
		}
		b.Kernels = append(b.Kernels, kernelPoint("fast", chunk, mbps, b.CanonicalMBps,
			f.TableEntries(), f.SizeBits()))
		m := huffman.NewMultiDecoderChunk(code, chunk)
		mbps, err = measure(func() error { return m.DecodeInto(dst, enc) })
		if err != nil {
			return nil, err
		}
		b.Kernels = append(b.Kernels, kernelPoint("multi", chunk, mbps, b.CanonicalMBps,
			m.TableEntries(), m.SizeBits()))
	}
	return b, nil
}

func kernelPoint(kernel string, chunk int, mbps, canonical float64, entries, sizeBits int) KernelBench {
	k := KernelBench{
		Kernel:       kernel,
		ChunkBits:    chunk,
		MBps:         mbps,
		TableEntries: entries,
		SizeBits:     sizeBits,
	}
	if canonical > 0 {
		k.SpeedupVsCanonical = mbps / canonical
	}
	return k
}
