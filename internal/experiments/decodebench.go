package experiments

import (
	"bytes"
	"fmt"
	"time"

	"ccrp/internal/workload"
)

// DecodeBench is the decode-throughput comparison embedded in benchmark
// trajectories: the canonical bit-serial decoder vs the table-driven
// FastDecoder on one corpus program encoded under the preselected code.
// Speedup is the before/after figure the fast-decode tentpole claims;
// the table fields record the mapping-ROM cost actually paid (compare
// decoder.ROM's 64K-entry hardware figure).
type DecodeBench struct {
	Program        string  `json:"program"`
	TextBytes      int     `json:"text_bytes"`
	EncodedBytes   int     `json:"encoded_bytes"`
	Repeats        int     `json:"repeats"`
	CanonicalMBps  float64 `json:"canonical_mb_per_s"`
	FastMBps       float64 `json:"fast_mb_per_s"`
	Speedup        float64 `json:"speedup"`
	FastRootBits   int     `json:"fast_root_bits"`
	FastTableEnt   int     `json:"fast_table_entries"`
	FastTableBytes int     `json:"fast_table_bytes"`
}

// decodeBenchRepeats is sized so each timed side runs long enough (tens
// of milliseconds) to shed scheduler noise without slowing bench runs.
const decodeBenchRepeats = 8

// MeasureDecodeBench times both software decode paths over one corpus
// program. The decoded outputs are verified against the original text,
// so a diverging fast path fails the measurement rather than reporting
// a meaningless throughput.
func MeasureDecodeBench(prog string) (*DecodeBench, error) {
	w, ok := workload.ByName(prog)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", prog)
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	// Encode only the bytes the preselected code covers; the smoothed
	// corpus histogram gives every byte a codeword, so in practice this
	// is the whole text.
	enc, err := code.EncodeToBytes(text)
	if err != nil {
		return nil, err
	}
	fast := code.Fast()

	measure := func(decode func() ([]byte, error)) (float64, error) {
		// Warm once (builds tables, faults pages), then time the repeats.
		got, err := decode()
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(got, text) {
			return 0, fmt.Errorf("experiments: decode of %q is not byte-identical", prog)
		}
		start := time.Now()
		for i := 0; i < decodeBenchRepeats; i++ {
			if _, err := decode(); err != nil {
				return 0, err
			}
		}
		sec := time.Since(start).Seconds()
		return float64(decodeBenchRepeats) * float64(len(text)) / 1e6 / sec, nil
	}

	b := &DecodeBench{
		Program:        prog,
		TextBytes:      len(text),
		EncodedBytes:   len(enc),
		Repeats:        decodeBenchRepeats,
		FastRootBits:   fast.RootBits(),
		FastTableEnt:   fast.TableEntries(),
		FastTableBytes: fast.SizeBits() / 8,
	}
	if b.CanonicalMBps, err = measure(func() ([]byte, error) {
		return code.DecodeBytes(enc, len(text))
	}); err != nil {
		return nil, err
	}
	if b.FastMBps, err = measure(func() ([]byte, error) {
		return fast.DecodeBytes(enc, len(text))
	}); err != nil {
		return nil, err
	}
	if b.CanonicalMBps > 0 {
		b.Speedup = b.FastMBps / b.CanonicalMBps
	}
	return b, nil
}
