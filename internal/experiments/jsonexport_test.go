package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccrp/internal/metrics"
	"ccrp/internal/sweep"
)

// TestBenchJSONRoundTrip is the ccrp-bench -json contract: the document
// must parse back through encoding/json with its datapoints intact.
func TestBenchJSONRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteBenchJSON(&b, []string{"fig5"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      int            `json:"schema"`
		Paper       string         `json:"paper"`
		Experiments map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Schema != 1 {
		t.Errorf("schema = %d, want 1", doc.Schema)
	}
	rows, ok := doc.Experiments["fig5"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("fig5 datapoints = %#v, want a non-empty list", doc.Experiments["fig5"])
	}
	row, ok := rows[0].(map[string]any)
	if !ok {
		t.Fatalf("fig5 row = %#v, want an object", rows[0])
	}
	if _, ok := row["Program"]; !ok {
		t.Errorf("fig5 row missing Program field: %v", row)
	}
}

func TestBenchDataUnknownExperiment(t *testing.T) {
	if _, err := BenchData([]string{"fig99"}); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestEngineObserver: a registry attached through the sweep engine must
// see the simulation traffic of experiment runs — merged identically
// whatever the worker count — and detaching the engine must stop it.
func TestEngineObserver(t *testing.T) {
	reg := metrics.New()
	SetEngine(&sweep.Engine{Workers: 1, Registry: reg})
	defer SetEngine(nil)
	if _, err := Figure9(); err != nil {
		t.Fatal(err)
	}
	accesses := reg.Counter("ccrp_cache_accesses_total", "").Value()
	if accesses == 0 {
		t.Fatal("engine registry saw no cache accesses")
	}

	// The same sweep across 8 workers merges to the same counter totals.
	par := metrics.New()
	SetEngine(&sweep.Engine{Workers: 8, Registry: par})
	if _, err := Figure9(); err != nil {
		t.Fatal(err)
	}
	if got := par.Counter("ccrp_cache_accesses_total", "").Value(); got != accesses {
		t.Errorf("parallel merge lost counts: %d, want %d", got, accesses)
	}

	SetEngine(nil)
	if _, err := Figure9(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ccrp_cache_accesses_total", "").Value(); got != accesses {
		t.Errorf("detached engine still accumulating: %d -> %d", accesses, got)
	}
}
