package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccrp/internal/metrics"
)

// TestBenchJSONRoundTrip is the ccrp-bench -json contract: the document
// must parse back through encoding/json with its datapoints intact.
func TestBenchJSONRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteBenchJSON(&b, []string{"fig5"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      int            `json:"schema"`
		Paper       string         `json:"paper"`
		Experiments map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Schema != 1 {
		t.Errorf("schema = %d, want 1", doc.Schema)
	}
	rows, ok := doc.Experiments["fig5"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("fig5 datapoints = %#v, want a non-empty list", doc.Experiments["fig5"])
	}
	row, ok := rows[0].(map[string]any)
	if !ok {
		t.Fatalf("fig5 row = %#v, want an object", rows[0])
	}
	if _, ok := row["Program"]; !ok {
		t.Errorf("fig5 row missing Program field: %v", row)
	}
}

func TestBenchDataUnknownExperiment(t *testing.T) {
	if _, err := BenchData([]string{"fig99"}); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestObserverHook: a registry attached via SetObserver must see the
// simulation traffic of experiment runs, and detaching must stop it.
func TestObserverHook(t *testing.T) {
	reg := metrics.New()
	SetObserver(reg, nil)
	defer SetObserver(nil, nil)
	if _, err := Figure9(); err != nil {
		t.Fatal(err)
	}
	accesses := reg.Counter("ccrp_cache_accesses_total", "").Value()
	if accesses == 0 {
		t.Fatal("observer registry saw no cache accesses")
	}
	SetObserver(nil, nil)
	if _, err := Figure9(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ccrp_cache_accesses_total", "").Value(); got != accesses {
		t.Errorf("detached observer still accumulating: %d -> %d", accesses, got)
	}
}
