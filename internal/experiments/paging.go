package experiments

import (
	"fmt"
	"io"

	"ccrp/internal/pagedvm"
	"ccrp/internal/workload"
)

// PagingRow is one configuration of the §5 compressed-demand-paging
// study: a workload's code paged through a small frame pool from a
// compressed backing store.
type PagingRow struct {
	Program    string
	Device     string
	Frames     int
	Faults     uint64
	StoreRatio float64 // compressed store / original store
	CycleRatio float64 // compressed fault cycles / standard fault cycles
}

// PagingStudy runs the compressed-paging future-work experiment: espresso
// (the largest code footprint) paged through 4 and 8 frames of 4 KB on
// flash-like and disk-like devices.
func PagingStudy() ([]PagingRow, error) {
	w, ok := workload.ByName("espresso")
	if !ok {
		return nil, errUnknown("espresso")
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	var rows []PagingRow
	for _, dev := range []pagedvm.Device{pagedvm.Flash(), pagedvm.Disk()} {
		for _, frames := range []int{4, 8, 16} {
			res, err := pagedvm.Simulate(tr, text, code, 4096, frames, dev)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PagingRow{
				Program:    w.Name,
				Device:     dev.Name,
				Frames:     frames,
				Faults:     res.Compressed.Faults,
				StoreRatio: res.StoreRatio,
				CycleRatio: res.CycleRatio(),
			})
		}
	}
	return rows, nil
}

// RenderPaging prints the compressed demand paging study.
func RenderPaging(w io.Writer) error {
	rows, err := PagingStudy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension (§5): compressed demand paging (espresso code, 4KB pages)")
	fmt.Fprintln(w, "  Device  Frames  Faults  Store Ratio  Fault-Cycle Ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s  %6d  %6d  %10.1f%%  %17.3f\n",
			r.Device, r.Frames, r.Faults, 100*r.StoreRatio, r.CycleRatio)
	}
	return nil
}
