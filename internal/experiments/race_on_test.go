//go:build race

package experiments

// raceEnabled reports whether the race detector is active; timing
// assertions are skipped under it.
const raceEnabled = true
