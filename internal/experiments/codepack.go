package experiments

import (
	"fmt"
	"io"

	"ccrp/internal/codepack"
	"ccrp/internal/core"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/sweep"
	"ccrp/internal/workload"
)

// CodePackRow compares the paper's byte-Huffman scheme against the
// CodePack-style halfword-dictionary coder (§5's "more sophisticated
// encoding techniques", and where this research line actually went).
// Ratios include the LAT; refill figures are the mean compressed-line
// refill time under burst EPROM (the decode-bound regime).
type CodePackRow struct {
	Program     string
	ByteHuffman float64
	CodePack    float64
	ByteRefill  float64
	CPRefill    float64
}

// CodePackCoder returns the corpus-trained CodePack coder (the analogue
// of the preselected byte code: fixed, hardwired dictionaries). Trained
// once per corpus through the artifact cache.
func CodePackCoder() (*codepack.Coder, error) {
	ck, err := corpusKey()
	if err != nil {
		return nil, err
	}
	return sweep.Get(artifacts(), sweep.Key("codepack/corpus", ck),
		func() (*codepack.Coder, error) {
			var images [][]byte
			for _, w := range workload.Figure5Set() {
				text, err := w.Text()
				if err != nil {
					return nil, err
				}
				images = append(images, text)
			}
			return codepack.Train(images...)
		})
}

// CodePackStudy compresses each Figure 5 program under both schemes,
// with the identical block-bounded pipeline (raw bypass, LAT).
func CodePackStudy() ([]CodePackRow, error) {
	byteCode, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	cp, err := CodePackCoder()
	if err != nil {
		return nil, err
	}
	engine := core.RefillEngine{Mem: memory.BurstEPROM{}}

	var rows []CodePackRow
	for _, w := range workload.Figure5Set() {
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		row := CodePackRow{Program: w.Name}

		byteROM, err := core.BuildROM(text, core.Options{Codes: []*huffman.Code{byteCode}})
		if err != nil {
			return nil, err
		}
		row.ByteHuffman = byteROM.Ratio()
		row.ByteRefill = meanRefill(engine, byteROM)

		cpROM, err := core.BuildROM(text, core.Options{Codec: cp})
		if err != nil {
			return nil, err
		}
		if err := cpROM.Verify(); err != nil {
			return nil, err
		}
		row.CodePack = cpROM.Ratio()
		row.CPRefill = meanRefill(engine, cpROM)

		rows = append(rows, row)
	}
	return rows, nil
}

func meanRefill(engine core.RefillEngine, rom *core.ROM) float64 {
	var cycles uint64
	for i := range rom.Lines {
		cycles += engine.LineCycles(rom, i)
	}
	return float64(cycles) / float64(len(rom.Lines))
}

// CodePackPerfRow is a trace-driven system comparison of the two schemes.
type CodePackPerfRow struct {
	Program     string
	Memory      string
	ByteRelPerf float64
	CPRelPerf   float64
	ByteTraffic float64
	CPTraffic   float64
}

// CodePackPerf runs the full trace-driven comparison for the two most
// refill-sensitive programs under both memory models.
func CodePackPerf() ([]CodePackPerfRow, error) {
	byteCode, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	cp, err := CodePackCoder()
	if err != nil {
		return nil, err
	}
	var rows []CodePackPerfRow
	for _, prog := range []string{"espresso", "fpppp"} {
		w, ok := workload.ByName(prog)
		if !ok {
			return nil, errUnknown(prog)
		}
		tr, err := w.Trace()
		if err != nil {
			return nil, err
		}
		text, err := w.Text()
		if err != nil {
			return nil, err
		}
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			bc, err := core.Compare(tr, text, core.Config{
				CacheBytes: 256, Mem: mem, Codes: []*huffman.Code{byteCode},
			})
			if err != nil {
				return nil, err
			}
			cc, err := core.Compare(tr, text, core.Config{
				CacheBytes: 256, Mem: mem, Codec: cp,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, CodePackPerfRow{
				Program:     prog,
				Memory:      mem.Name(),
				ByteRelPerf: bc.RelativePerformance(),
				CPRelPerf:   cc.RelativePerformance(),
				ByteTraffic: bc.TrafficRatio(),
				CPTraffic:   cc.TrafficRatio(),
			})
		}
	}
	return rows, nil
}

// RenderCodePack prints the encoding-scheme comparison.
func RenderCodePack(w io.Writer) error {
	rows, err := CodePackStudy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension (§5): byte-Huffman vs CodePack-style halfword dictionaries")
	fmt.Fprintln(w, "  Program    Byte ratio  CodePack ratio  Byte refill  CodePack refill (burst EPROM cycles/line)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s  %9.1f%%  %13.1f%%  %11.1f  %15.1f\n",
			r.Program, 100*r.ByteHuffman, 100*r.CodePack, r.ByteRefill, r.CPRefill)
	}
	fmt.Fprintln(w)
	perf, err := CodePackPerf()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Trace-driven (256B cache): relative performance and traffic by scheme")
	fmt.Fprintln(w, "  Program   Memory       Byte rel  CP rel  Byte traffic  CP traffic")
	for _, r := range perf {
		fmt.Fprintf(w, "  %-8s  %-11s  %8.3f  %6.3f  %11.1f%%  %9.1f%%\n",
			r.Program, r.Memory, r.ByteRelPerf, r.CPRelPerf, 100*r.ByteTraffic, 100*r.CPTraffic)
	}
	return nil
}
