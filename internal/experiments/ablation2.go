package experiments

import (
	"fmt"
	"io"

	"ccrp/internal/core"
	"ccrp/internal/decoder"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/workload"
)

// AssocRow measures cache associativity for one configuration — the §4.3
// remark that espresso's access patterns "are not well suited to a small
// direct mapped cache and ... different parameters [could be] chosen for
// this program", made concrete.
type AssocRow struct {
	CacheBytes int
	Ways       int
	MissRate   float64
	RelPerf    float64 // under EPROM
}

// AssociativityAblation sweeps 1/2/4-way caches for a program on EPROM.
func AssociativityAblation(program string) ([]AssocRow, error) {
	w, ok := workload.ByName(program)
	if !ok {
		return nil, errUnknown(program)
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	var rows []AssocRow
	for _, cs := range []int{256, 512, 1024} {
		for _, ways := range []int{1, 2, 4} {
			cmp, err := core.Compare(tr, text, core.Config{
				CacheBytes: cs,
				CacheWays:  ways,
				Mem:        memory.EPROM{},
				Codes:      []*huffman.Code{code},
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AssocRow{
				CacheBytes: cs,
				Ways:       ways,
				MissRate:   cmp.MissRate(),
				RelPerf:    cmp.RelativePerformance(),
			})
		}
	}
	return rows, nil
}

// RateRow measures the decoder-speed sensitivity §3.4 flags as "a major
// limiting factor in the performance of a CCRP system".
type RateRow struct {
	Rate    int // decoded bytes per cycle
	RelPerf float64
}

// DecodeRateAblation sweeps the decoder rate on burst EPROM at 256 bytes,
// where the paper's 2-byte/cycle decoder is the bottleneck.
func DecodeRateAblation(program string) ([]RateRow, error) {
	w, ok := workload.ByName(program)
	if !ok {
		return nil, errUnknown(program)
	}
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace()
	if err != nil {
		return nil, err
	}
	text, err := w.Text()
	if err != nil {
		return nil, err
	}
	var rows []RateRow
	for _, rate := range []int{1, 2, 4, 8} {
		cmp, err := core.Compare(tr, text, core.Config{
			CacheBytes: 256,
			Mem:        memory.BurstEPROM{},
			DecodeRate: rate,
			Codes:      []*huffman.Code{code},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateRow{Rate: rate, RelPerf: cmp.RelativePerformance()})
	}
	return rows, nil
}

// BlockSizeRow measures compression granularity (§2.1: "the cache line
// size must be reasonably large, however, the need to maintain good
// overall performance limits the line length").
type BlockSizeRow struct {
	BlockBytes int
	Ratio      float64 // blocks only, weighted over the Figure 5 corpus
}

// BlockSizeAblation compresses the corpus at block sizes 8..128 bytes
// under the preselected code (with per-block raw fallback) and reports
// the weighted compressed fraction.
func BlockSizeAblation() ([]BlockSizeRow, error) {
	code, err := PreselectedCode()
	if err != nil {
		return nil, err
	}
	var rows []BlockSizeRow
	for _, bs := range []int{8, 16, 32, 64, 128} {
		var orig, comp int
		for _, w := range workload.Figure5Set() {
			text, err := w.Text()
			if err != nil {
				return nil, err
			}
			for off := 0; off < len(text); off += bs {
				end := off + bs
				if end > len(text) {
					end = len(text)
				}
				block := text[off:end]
				bits, err := code.EncodedBits(block)
				if err != nil {
					return nil, err
				}
				stored := (bits + 7) / 8
				if stored >= len(block) {
					stored = len(block) // raw fallback
				}
				orig += len(block)
				comp += stored
			}
		}
		rows = append(rows, BlockSizeRow{BlockBytes: bs, Ratio: float64(comp) / float64(orig)})
	}
	return rows, nil
}

// DecoderCost reports the §3.4 hardware cost of the preselected code's
// decoder under the three implementation options.
func DecoderCost() (decoder.Cost, error) {
	code, err := PreselectedCode()
	if err != nil {
		return decoder.Cost{}, err
	}
	return decoder.CostOf(code)
}

// RenderExtensions prints the associativity, decoder-rate, block-size,
// and decoder-cost studies.
func RenderExtensions(w io.Writer) error {
	assoc, err := AssociativityAblation("espresso")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: cache associativity for espresso (EPROM, relative performance)")
	fmt.Fprintln(w, "  Cache  Ways  Miss Rate  Rel Perf")
	for _, r := range assoc {
		fmt.Fprintf(w, "  %5d  %4d  %8.2f%%  %8.3f\n", r.CacheBytes, r.Ways, 100*r.MissRate, r.RelPerf)
	}
	fmt.Fprintln(w)

	rates, err := DecodeRateAblation("espresso")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: decoder rate (espresso, 256B, Burst EPROM)")
	fmt.Fprintln(w, "  Bytes/cycle  Rel Perf")
	for _, r := range rates {
		fmt.Fprintf(w, "  %11d  %8.3f\n", r.Rate, r.RelPerf)
	}
	fmt.Fprintln(w)

	blocks, err := BlockSizeAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: compression vs block size (corpus weighted, blocks only)")
	fmt.Fprintln(w, "  Block  Ratio")
	for _, r := range blocks {
		fmt.Fprintf(w, "  %5d  %5.1f%%\n", r.BlockBytes, 100*r.Ratio)
	}
	fmt.Fprintln(w)

	cost, err := DecoderCost()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Decoder hardware cost for the preselected code (§3.4):\n"+
		"  FSM: %d states (%d-bit state register)\n"+
		"  CAM: %d entries x %d bits\n"+
		"  ROM: %d bits (%.0f KB)\n",
		cost.FSMStates, cost.FSMStateBits,
		cost.CAMEntries, cost.CAMWidthBits,
		cost.ROMBits, float64(cost.ROMBits)/8192)
	return nil
}
