package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Experiments lists the exportable experiment names in render order —
// the same names ccrp-bench accepts for -exp.
var Experiments = []string{
	"fig5", "fig1", "fig2", "tables1-8", "tables9-10", "fig9",
	"tables11-13", "ablations", "extensions", "paging", "codepack", "rvc",
}

// figure2JSON is the machine-readable Figure 2 address pairing.
type figure2JSON struct {
	Program    string   `json:"program"`
	Original   []uint32 `json:"original"`
	Compressed []uint32 `json:"compressed"`
}

// ablationsJSON bundles the DESIGN.md §9 ablation studies.
type ablationsJSON struct {
	LAT       []LATRow       `json:"lat"`
	MultiCode []MultiCodeRow `json:"multi_code"`
	Overlap   []OverlapRow   `json:"overlap"`
	ISA       []ISARow       `json:"isa"`
}

// extensionsJSON bundles the future-work extension studies.
type extensionsJSON struct {
	Associativity []AssocRow     `json:"associativity"`
	DecodeRate    []RateRow      `json:"decode_rate"`
	BlockSize     []BlockSizeRow `json:"block_size"`
}

// codepackJSON bundles the CodePack comparison.
type codepackJSON struct {
	Compression []CodePackRow     `json:"compression"`
	Performance []CodePackPerfRow `json:"performance"`
}

// datapoints computes the structured rows behind one rendered experiment.
func datapoints(name string) (any, error) {
	switch name {
	case "fig5":
		return Figure5()
	case "fig1":
		return Figure1Alignment()
	case "fig2":
		orig, comp, err := Figure2Addresses("eightq", 14)
		if err != nil {
			return nil, err
		}
		return figure2JSON{Program: "eightq", Original: orig, Compressed: comp}, nil
	case "tables1-8":
		return Tables1to8()
	case "tables9-10":
		return Tables9and10()
	case "fig9":
		return Figure9()
	case "tables11-13":
		return Tables11to13()
	case "ablations":
		out := ablationsJSON{}
		var err error
		if out.LAT, err = LATAblation(); err != nil {
			return nil, err
		}
		if out.MultiCode, err = MultiCodeAblation(); err != nil {
			return nil, err
		}
		if out.Overlap, err = OverlapAblation("espresso"); err != nil {
			return nil, err
		}
		if out.ISA, err = ISAAblation(); err != nil {
			return nil, err
		}
		return out, nil
	case "extensions":
		out := extensionsJSON{}
		var err error
		if out.Associativity, err = AssociativityAblation("espresso"); err != nil {
			return nil, err
		}
		if out.DecodeRate, err = DecodeRateAblation("espresso"); err != nil {
			return nil, err
		}
		if out.BlockSize, err = BlockSizeAblation(); err != nil {
			return nil, err
		}
		return out, nil
	case "paging":
		return PagingStudy()
	case "rvc":
		return RVCComparison()
	case "codepack":
		out := codepackJSON{}
		var err error
		if out.Compression, err = CodePackStudy(); err != nil {
			return nil, err
		}
		if out.Performance, err = CodePackPerf(); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Experiments)
	}
}

// BenchJSON is the machine-readable form of the benchmark run: every
// table and figure datapoint of the selected experiments, keyed by
// experiment name. It is the source format for BENCH_*.json performance
// trajectories tracked across PRs.
type BenchJSON struct {
	Schema      int            `json:"schema"`
	Paper       string         `json:"paper"`
	Experiments map[string]any `json:"experiments"`
}

// BenchData computes the datapoints for the named experiments (all of
// them when names is empty).
func BenchData(names []string) (*BenchJSON, error) {
	if len(names) == 0 {
		names = Experiments
	}
	out := &BenchJSON{
		Schema:      1,
		Paper:       "Wolfe & Chanin, MICRO-25 1992",
		Experiments: make(map[string]any, len(names)),
	}
	for _, name := range names {
		data, err := datapoints(name)
		if err != nil {
			return nil, err
		}
		out.Experiments[name] = data
	}
	return out, nil
}

// WriteBenchJSON writes BenchData as indented JSON.
func WriteBenchJSON(w io.Writer, names []string) error {
	data, err := BenchData(names)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(data)
}
