// Package pagedvm explores the paper's §5 suggestion that "the
// similarity of the CLB/LAT structure to the TLB/page table structure
// indicates that there may be some benefit to implementing similar
// methods for demand-paged virtual memory as well": program pages are
// stored compressed in the backing store and decompressed on page fault,
// trading decode time against transfer volume exactly the way cache
// refills trade decode time against EPROM reads.
//
// A Store compresses a program image page by page (whole-page Huffman
// coding with a raw fallback, since pages need no intra-page random
// access); a Pager simulates a small frame pool with LRU replacement over
// an instruction trace and costs each fault under a transfer-device
// model. The standard system pages the uncompressed image from the same
// device.
package pagedvm

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"ccrp/internal/huffman"
	"ccrp/internal/parallel"
	"ccrp/internal/trace"
)

// Device is a backing-store timing model: a fixed access latency plus a
// per-byte streaming transfer cost, in processor cycles.
type Device struct {
	Name          string
	LatencyCycles uint64
	CyclesPerByte float64
	DecodeRate    int // decompressor bytes/cycle during page-in; 0 = 2
}

// Flash is a fast NOR-flash-like device: cheap latency, 1 cycle/byte.
func Flash() Device { return Device{Name: "flash", LatencyCycles: 500, CyclesPerByte: 1} }

// Disk is a slow device where transfer volume dominates.
func Disk() Device { return Device{Name: "disk", LatencyCycles: 50000, CyclesPerByte: 4} }

func (d Device) rate() int {
	if d.DecodeRate <= 0 {
		return 2
	}
	return d.DecodeRate
}

// faultCycles costs paging in storedBytes that expand to pageBytes.
// Transfer and decode stream-overlap, as in the CCRP refill engine.
func (d Device) faultCycles(storedBytes, pageBytes int, compressed bool) uint64 {
	transfer := uint64(float64(storedBytes) * d.CyclesPerByte)
	if !compressed {
		return d.LatencyCycles + transfer
	}
	decode := uint64(pageBytes / d.rate())
	if decode > transfer {
		transfer = decode
	}
	return d.LatencyCycles + transfer
}

// Store is a compressed program image, one independently-compressed page
// at a time.
type Store struct {
	PageBytes int
	code      *huffman.Code
	pages     [][]byte // stored form
	raw       []bool
	origLen   int
}

// ErrBadPage is returned for out-of-range page indices.
var ErrBadPage = errors.New("pagedvm: page out of range")

// BuildStore compresses image into pageBytes pages under code.
func BuildStore(image []byte, code *huffman.Code, pageBytes int) (*Store, error) {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("pagedvm: page size %d not a power of two", pageBytes)
	}
	s := &Store{PageBytes: pageBytes, code: code, origLen: len(image)}
	for off := 0; off < len(image); off += pageBytes {
		end := off + pageBytes
		if end > len(image) {
			end = len(image)
		}
		page := make([]byte, pageBytes)
		copy(page, image[off:end])
		enc, err := code.EncodeToBytes(page)
		if err != nil {
			return nil, err
		}
		if len(enc) >= pageBytes {
			s.pages = append(s.pages, page) // raw fallback
			s.raw = append(s.raw, true)
		} else {
			s.pages = append(s.pages, enc)
			s.raw = append(s.raw, false)
		}
	}
	return s, nil
}

// Pages returns the page count.
func (s *Store) Pages() int { return len(s.pages) }

// StoredBytes returns the compressed size of page i.
func (s *Store) StoredBytes(i int) (int, error) {
	if i < 0 || i >= len(s.pages) {
		return 0, ErrBadPage
	}
	return len(s.pages[i]), nil
}

// TotalStored returns the whole store's size.
func (s *Store) TotalStored() int {
	n := 0
	for _, p := range s.pages {
		n += len(p)
	}
	return n
}

// Ratio returns stored size over original (page-padded) size.
func (s *Store) Ratio() float64 {
	return float64(s.TotalStored()) / float64(len(s.pages)*s.PageBytes)
}

// ReadPage decompresses page i.
func (s *Store) ReadPage(i int) ([]byte, error) {
	out := make([]byte, s.PageBytes)
	if err := s.ReadPageInto(i, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPageInto decompresses page i into dst, which must be exactly
// PageBytes long — the zero-allocation form of ReadPage, decoding
// through the multi-symbol kernel into a caller-owned frame.
func (s *Store) ReadPageInto(i int, dst []byte) error {
	if i < 0 || i >= len(s.pages) {
		return ErrBadPage
	}
	if len(dst) != s.PageBytes {
		return fmt.Errorf("pagedvm: page buffer is %d bytes, want %d", len(dst), s.PageBytes)
	}
	if s.raw[i] {
		n := copy(dst, s.pages[i])
		for j := n; j < len(dst); j++ {
			dst[j] = 0
		}
		return nil
	}
	if err := s.code.Multi().DecodeInto(dst, s.pages[i]); err != nil {
		return fmt.Errorf("pagedvm: page %d: %w", i, err)
	}
	return nil
}

// Expand decompresses the whole store back to its page-padded image,
// fanning the independent pages across a bounded worker pool (workers
// <= 0 selects GOMAXPROCS) — the paged twin of ccrpd's parallel
// per-line decompress path.
func (s *Store) Expand(workers int) ([]byte, error) {
	out := make([]byte, len(s.pages)*s.PageBytes)
	err := parallel.ForEach(context.Background(), len(s.pages), workers, func(i int) error {
		return s.ReadPageInto(i, out[i*s.PageBytes:(i+1)*s.PageBytes])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Verify round-trips every page against the original image, expanding
// pages in parallel.
func (s *Store) Verify(image []byte) error {
	return parallel.ForEach(context.Background(), len(s.pages), 0, func(i int) error {
		got := make([]byte, s.PageBytes)
		if err := s.ReadPageInto(i, got); err != nil {
			return err
		}
		off := i * s.PageBytes
		end := off + s.PageBytes
		if end > len(image) {
			end = len(image)
		}
		want := make([]byte, s.PageBytes)
		copy(want, image[off:end])
		if !bytes.Equal(got, want) {
			return fmt.Errorf("pagedvm: page %d corrupt", i)
		}
		return nil
	})
}

// Stats summarizes one pager run.
type Stats struct {
	Accesses      uint64
	Faults        uint64
	FaultCycles   uint64
	TransferBytes uint64
}

// Result compares compressed against standard paging for one trace.
type Result struct {
	Compressed Stats
	Standard   Stats
	StoreRatio float64
}

// CycleRatio is compressed fault cycles over standard fault cycles.
func (r Result) CycleRatio() float64 {
	if r.Standard.FaultCycles == 0 {
		return 1
	}
	return float64(r.Compressed.FaultCycles) / float64(r.Standard.FaultCycles)
}

// Simulate pages the image's code through a frames-page LRU pool, driven
// by the instruction trace, under dev. Both systems see the identical
// fault sequence (page residency does not depend on compression), so the
// comparison isolates fault cost, as core.Compare does for refills.
func Simulate(tr *trace.Trace, image []byte, code *huffman.Code, pageBytes, frames int, dev Device) (*Result, error) {
	if frames < 1 {
		return nil, fmt.Errorf("pagedvm: need at least one frame")
	}
	store, err := BuildStore(image, code, pageBytes)
	if err != nil {
		return nil, err
	}
	res := &Result{StoreRatio: store.Ratio()}

	type frame struct {
		page int
		used uint64
	}
	pool := make([]frame, 0, frames)
	var clock uint64
	for _, ev := range tr.Events {
		page := int(ev.PC) / pageBytes
		if page >= store.Pages() {
			return nil, fmt.Errorf("pagedvm: fetch %#x outside image", ev.PC)
		}
		clock++
		res.Compressed.Accesses++
		res.Standard.Accesses++
		hit := false
		for i := range pool {
			if pool[i].page == page {
				pool[i].used = clock
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		res.Compressed.Faults++
		res.Standard.Faults++
		stored, _ := store.StoredBytes(page)
		res.Compressed.FaultCycles += dev.faultCycles(stored, pageBytes, true)
		res.Compressed.TransferBytes += uint64(stored)
		res.Standard.FaultCycles += dev.faultCycles(pageBytes, pageBytes, false)
		res.Standard.TransferBytes += uint64(pageBytes)
		if len(pool) < frames {
			pool = append(pool, frame{page: page, used: clock})
		} else {
			victim := 0
			for i := range pool {
				if pool[i].used < pool[victim].used {
					victim = i
				}
			}
			pool[victim] = frame{page: page, used: clock}
		}
	}
	return res, nil
}
