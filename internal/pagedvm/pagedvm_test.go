package pagedvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccrp/internal/huffman"
	"ccrp/internal/trace"
)

// riscLike builds a compressible pseudo-program image.
func riscLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(3) == 0 {
			out[i] = 0
		} else {
			out[i] = byte(rng.Intn(48))
		}
	}
	return out
}

func testCode(t testing.TB, data []byte) *huffman.Code {
	t.Helper()
	c, err := huffman.BuildBounded(huffman.HistogramOf(data).Smooth(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStoreRoundTrip(t *testing.T) {
	image := riscLike(20000, 1) // not page aligned
	code := testCode(t, image)
	store, err := BuildStore(image, code, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if store.Pages() != 5 {
		t.Fatalf("pages = %d", store.Pages())
	}
	if err := store.Verify(image); err != nil {
		t.Fatal(err)
	}
	if store.Ratio() >= 1 {
		t.Errorf("store did not compress: %.3f", store.Ratio())
	}
	if _, err := store.ReadPage(5); err == nil {
		t.Error("out-of-range page read accepted")
	}
	if _, err := store.StoredBytes(-1); err == nil {
		t.Error("negative page accepted")
	}
}

func TestRawFallbackPages(t *testing.T) {
	// High-entropy image under a mismatched code: pages stay raw and the
	// store never grows.
	image := make([]byte, 8192)
	rng := rand.New(rand.NewSource(2))
	for i := range image {
		image[i] = byte(rng.Intn(256))
	}
	skew := make([]byte, 4096) // all zeros
	code := testCode(t, skew)
	store, err := BuildStore(image, code, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if store.TotalStored() > len(image) {
		t.Errorf("store grew: %d > %d", store.TotalStored(), len(image))
	}
	if err := store.Verify(image); err != nil {
		t.Fatal(err)
	}
}

func TestBadPageSize(t *testing.T) {
	code := testCode(t, []byte{1, 2, 3})
	for _, ps := range []int{0, -4, 100} {
		if _, err := BuildStore([]byte{1}, code, ps); err == nil {
			t.Errorf("page size %d accepted", ps)
		}
	}
}

// walkTrace touches pages in a loop larger than the frame pool.
func walkTrace(pages, touches, pageBytes int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < touches; i++ {
		page := i % pages
		tr.Events = append(tr.Events, trace.Event{PC: uint32(page*pageBytes + (i%32)*4)})
	}
	return tr
}

func TestSimulateBasics(t *testing.T) {
	image := riscLike(8*4096, 3)
	code := testCode(t, image)
	tr := walkTrace(8, 4000, 4096)
	res, err := Simulate(tr, image, code, 4096, 4, Disk())
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.Faults != res.Standard.Faults {
		t.Error("fault sequences differ between systems")
	}
	if res.Compressed.Faults == 0 {
		t.Fatal("no faults; test premise broken")
	}
	// Transfer volume shrinks with compression...
	if res.Compressed.TransferBytes >= res.Standard.TransferBytes {
		t.Error("compression did not reduce paging traffic")
	}
	// ...and on a transfer-dominated device so does fault time — the §5
	// conjecture holds.
	if res.CycleRatio() >= 1 {
		t.Errorf("disk cycle ratio = %.3f, want < 1", res.CycleRatio())
	}
}

func TestDeviceRegimes(t *testing.T) {
	image := riscLike(8*4096, 4)
	code := testCode(t, image)
	tr := walkTrace(8, 2000, 4096)
	disk, err := Simulate(tr, image, code, 4096, 4, Disk())
	if err != nil {
		t.Fatal(err)
	}
	flash, err := Simulate(tr, image, code, 4096, 4, Flash())
	if err != nil {
		t.Fatal(err)
	}
	// The transfer-dominated device (flash: low latency, pay per byte)
	// benefits most; the seek-dominated disk's fixed latency washes much
	// of the saving out. Both still win.
	if flash.CycleRatio() > disk.CycleRatio()+1e-9 {
		t.Errorf("flash ratio %.3f worse than disk %.3f", flash.CycleRatio(), disk.CycleRatio())
	}
	if disk.CycleRatio() >= 1 {
		t.Errorf("disk ratio = %.3f, want < 1", disk.CycleRatio())
	}
	// A slow 1 B/cycle decoder erodes the win on the fast device.
	slowDec := Flash()
	slowDec.DecodeRate = 1
	slow, err := Simulate(tr, image, code, 4096, 4, slowDec)
	if err != nil {
		t.Fatal(err)
	}
	if slow.CycleRatio() < flash.CycleRatio() {
		t.Errorf("slower decoder improved ratio: %.3f < %.3f", slow.CycleRatio(), flash.CycleRatio())
	}
}

func TestLRUResidency(t *testing.T) {
	image := riscLike(4*4096, 5)
	code := testCode(t, image)
	// Two pages, four frames: after the compulsory faults, no more.
	tr := walkTrace(2, 1000, 4096)
	res, err := Simulate(tr, image, code, 4096, 4, Flash())
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.Faults != 2 {
		t.Errorf("faults = %d, want 2 compulsory", res.Compressed.Faults)
	}
}

func TestSimulateErrors(t *testing.T) {
	image := riscLike(4096, 6)
	code := testCode(t, image)
	tr := &trace.Trace{Events: []trace.Event{{PC: 100000}}}
	if _, err := Simulate(tr, image, code, 4096, 2, Flash()); err == nil {
		t.Error("fetch outside image accepted")
	}
	tr2 := walkTrace(1, 10, 4096)
	if _, err := Simulate(tr2, image, code, 4096, 0, Flash()); err == nil {
		t.Error("zero frames accepted")
	}
}

// Property: Verify succeeds for any image and page size in range.
func TestStoreRoundTripQuick(t *testing.T) {
	base := riscLike(4096, 7)
	code := testCode(t, base)
	f := func(data []byte, big bool) bool {
		if len(data) == 0 {
			return true
		}
		ps := 512
		if big {
			ps = 2048
		}
		store, err := BuildStore(data, code, ps)
		if err != nil {
			return false
		}
		return store.Verify(data) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	image := riscLike(16*4096, 8)
	code := testCode(b, image)
	tr := walkTrace(16, 10000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, image, code, 4096, 8, Disk()); err != nil {
			b.Fatal(err)
		}
	}
}
