package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	bad := [][2]int{{0, 32}, {256, 0}, {300, 32}, {256, 33}, {16, 32}}
	for _, g := range bad {
		if _, err := New(g[0], g[1]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
	c, err := New(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lines() != 32 || c.LineBytes() != 32 {
		t.Errorf("lines=%d lineBytes=%d", c.Lines(), c.LineBytes())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestHitMissSequence(t *testing.T) {
	c := MustNew(256, 32) // 8 lines
	if c.Access(0x00) {
		t.Error("cold access hit")
	}
	if !c.Access(0x04) || !c.Access(0x1F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x20) {
		t.Error("next line hit cold")
	}
	// 0x100 conflicts with 0x000 in an 8-line direct-mapped cache.
	if c.Access(0x100) {
		t.Error("conflicting line hit")
	}
	if c.Access(0x00) {
		t.Error("evicted line still hit")
	}
	s := c.Stats()
	if s.Accesses != 6 || s.Misses != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 4.0/6.0 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestLineAddr(t *testing.T) {
	c := MustNew(256, 32)
	if c.LineAddr(0x47) != 0x40 {
		t.Errorf("LineAddr = %#x", c.LineAddr(0x47))
	}
}

func TestReset(t *testing.T) {
	c := MustNew(256, 32)
	c.Access(0)
	c.Reset()
	if c.Access(0) {
		t.Error("hit after reset")
	}
	if s := c.Stats(); s.Accesses != 1 || s.Misses != 1 {
		t.Errorf("stats after reset = %+v", s)
	}
}

// Property: a loop fitting entirely in the cache has only compulsory
// misses; a loop twice the cache size in a direct-mapped cache misses on
// every line access.
func TestLoopBehaviour(t *testing.T) {
	c := MustNew(1024, 32)
	for pass := 0; pass < 10; pass++ {
		for addr := uint32(0); addr < 1024; addr += 4 {
			c.Access(addr)
		}
	}
	if got := c.Stats().Misses; got != 32 {
		t.Errorf("fitting loop misses = %d, want 32 compulsory", got)
	}
	c.Reset()
	for pass := 0; pass < 4; pass++ {
		for addr := uint32(0); addr < 2048; addr += 32 {
			c.Access(addr)
		}
	}
	if got := c.Stats().Misses; got != 4*64 {
		t.Errorf("thrashing loop misses = %d, want %d", got, 4*64)
	}
}

// Property: miss count never exceeds access count, and replaying any
// trace twice back-to-back cannot increase the miss rate.
func TestMissesBounded(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(512, 32)
		for _, a := range addrs {
			c.Access(a % (1 << 24))
		}
		s1 := c.Stats()
		return s1.Misses <= s1.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := MustNew(4096, 32)
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*4) % (1 << 20))
	}
}

func TestAssocGeometry(t *testing.T) {
	bad := [][3]int{{256, 32, 0}, {256, 32, 16}, {256, 32, 3}, {64, 32, 4}}
	for _, g := range bad {
		if _, err := NewAssoc(g[0], g[1], g[2]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
	c, err := NewAssoc(1024, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ways() != 2 || c.Lines() != 32 {
		t.Errorf("ways=%d lines=%d", c.Ways(), c.Lines())
	}
	d := MustNew(1024, 32)
	if d.Ways() != 1 {
		t.Errorf("direct-mapped ways = %d", d.Ways())
	}
}

func TestTwoWayBeatsDirectMappedOnPingPong(t *testing.T) {
	// Two lines that conflict in a direct-mapped cache but coexist in a
	// 2-way cache.
	dm := MustNew(256, 32)
	tw, err := NewAssoc(256, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		dm.Access(0x000)
		dm.Access(0x100) // same index in 8-line direct-mapped
		tw.Access(0x000)
		tw.Access(0x100)
	}
	if dm.Stats().Misses != 200 {
		t.Errorf("direct-mapped misses = %d, want 200 (ping-pong)", dm.Stats().Misses)
	}
	if tw.Stats().Misses != 2 {
		t.Errorf("2-way misses = %d, want 2 compulsory", tw.Stats().Misses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c, err := NewAssoc(128, 32, 2) // 2 sets x 2 ways
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x000) // set 0
	c.Access(0x080) // set 0, second way
	c.Access(0x000) // refresh first
	c.Access(0x100) // set 0, evicts 0x080 (LRU)
	if !c.Access(0x000) {
		t.Error("MRU line evicted")
	}
	if c.Access(0x080) {
		t.Error("LRU line survived eviction")
	}
}

func TestFullyAssociative(t *testing.T) {
	c, err := NewAssoc(256, 32, 8) // one set, 8 ways
	if err != nil {
		t.Fatal(err)
	}
	for a := uint32(0); a < 8*32; a += 32 {
		c.Access(a)
	}
	for a := uint32(0); a < 8*32; a += 32 {
		if !c.Access(a) {
			t.Errorf("fully associative evicted %#x within capacity", a)
		}
	}
}

// Property: for the same trace, a 2-way cache of equal size never has a
// much worse miss count than direct mapped on looping patterns (LRU can
// lose on adversarial patterns, but compulsory misses always match).
func TestAssocCompulsoryMissesMatch(t *testing.T) {
	dm := MustNew(512, 32)
	tw, _ := NewAssoc(512, 32, 2)
	addrs := []uint32{0, 32, 64, 96, 128, 4096, 8192, 12288}
	for _, a := range addrs {
		dm.Access(a)
		tw.Access(a)
	}
	if dm.Stats().Misses != uint64(len(addrs)) || tw.Stats().Misses != uint64(len(addrs)) {
		t.Errorf("compulsory misses differ: dm=%d tw=%d", dm.Stats().Misses, tw.Stats().Misses)
	}
}
