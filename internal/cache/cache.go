// Package cache models the on-chip direct-mapped instruction cache of the
// paper's proposed implementation: 32-byte lines, 256 to 4096 bytes total,
// single-cycle hits. The same cache organization serves both the standard
// processor and the CCRP — in-cache instructions are identical in both, so
// the two systems see the same hit/miss sequence and differ only in
// refill cost.
package cache

import (
	"fmt"

	"ccrp/internal/metrics"
)

// Stats counts cache accesses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses / accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is an n-way set-associative instruction cache with LRU
// replacement; the paper's configuration is direct mapped (1 way), and
// higher associativities support the §4.3 remark that a program like
// espresso would simply be given different cache parameters at
// development time.
type Cache struct {
	tags      []uint32 // ways*sets entries, way-major within a set
	valid     []bool
	used      []uint64 // LRU clocks, parallel to tags
	clock     uint64
	ways      int
	lineShift uint
	idxMask   uint32
	lineBytes int
	stats     Stats
	im        *instruments // nil when metrics are disabled
}

// instruments are the optional per-geometry observability hooks; the
// single c.im nil test keeps the disabled hot path free of them.
type instruments struct {
	accesses *metrics.Counter
	hits     *metrics.Counter
	setMiss  []*metrics.Counter // one per set
	wayFill  []*metrics.Counter // one per way, counts victim installs
}

// Instrument registers this cache's counters on reg and enables
// per-access accounting: total accesses/hits, per-set miss counters, and
// per-way fill (victim install) counters. A nil registry disables
// instrumentation again.
func (c *Cache) Instrument(reg *metrics.Registry) {
	if reg == nil {
		c.im = nil
		return
	}
	sets := len(c.tags) / c.ways
	im := &instruments{
		accesses: reg.Counter("ccrp_cache_accesses_total", "instruction cache accesses"),
		hits:     reg.Counter("ccrp_cache_hits_total", "instruction cache hits"),
		setMiss:  make([]*metrics.Counter, sets),
		wayFill:  make([]*metrics.Counter, c.ways),
	}
	setVec := reg.CounterVec("ccrp_cache_set_misses_total", "instruction cache misses by set index", "set")
	for i := range im.setMiss {
		im.setMiss[i] = setVec.WithInt(i)
	}
	wayVec := reg.CounterVec("ccrp_cache_way_fills_total", "miss refill installs by victim way", "way")
	for i := range im.wayFill {
		im.wayFill[i] = wayVec.WithInt(i)
	}
	c.im = im
}

// New builds a direct-mapped cache of sizeBytes with lineBytes lines.
func New(sizeBytes, lineBytes int) (*Cache, error) {
	return NewAssoc(sizeBytes, lineBytes, 1)
}

// NewAssoc builds a ways-way set-associative cache. sizeBytes and
// lineBytes must be powers of two, and the geometry must yield at least
// one set.
func NewAssoc(sizeBytes, lineBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 ||
		sizeBytes&(sizeBytes-1) != 0 || lineBytes&(lineBytes-1) != 0 ||
		sizeBytes < lineBytes*ways || sizeBytes/lineBytes%ways != 0 {
		return nil, fmt.Errorf("cache: bad geometry size=%d line=%d ways=%d", sizeBytes, lineBytes, ways)
	}
	n := sizeBytes / lineBytes
	sets := n / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &Cache{
		tags:      make([]uint32, n),
		valid:     make([]bool, n),
		used:      make([]uint64, n),
		ways:      ways,
		idxMask:   uint32(sets - 1),
		lineBytes: lineBytes,
	}
	for 1<<c.lineShift != lineBytes {
		c.lineShift++
	}
	return c, nil
}

// MustNew is New for known-good static geometry.
func MustNew(sizeBytes, lineBytes int) *Cache {
	c, err := New(sizeBytes, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Lines returns the number of cache lines.
func (c *Cache) Lines() int { return len(c.tags) }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(c.lineBytes-1)
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Access simulates a fetch from addr: it returns true on a hit, and on a
// miss installs the line (the refill itself is costed by the caller).
func (c *Cache) Access(addr uint32) bool {
	c.stats.Accesses++
	c.clock++
	line := addr >> c.lineShift
	set := int(line&c.idxMask) * c.ways
	victim := set
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.valid[i] && c.tags[i] == line {
			c.used[i] = c.clock
			if c.im != nil {
				c.im.accesses.Inc()
				c.im.hits.Inc()
			}
			return true
		}
		if !c.valid[i] {
			victim = i
		} else if c.valid[victim] && c.used[i] < c.used[victim] {
			victim = i
		}
	}
	c.stats.Misses++
	if c.im != nil {
		c.im.accesses.Inc()
		c.im.setMiss[int(line&c.idxMask)].Inc()
		c.im.wayFill[victim-set].Inc()
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.used[victim] = c.clock
	return false
}

// Set returns the set index addr maps to (for event emission).
func (c *Cache) Set(addr uint32) int {
	return int((addr >> c.lineShift) & c.idxMask)
}

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates the cache and clears statistics, modeling cold start
// (the paper deliberately includes compulsory start-up misses).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.used[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}
