package codepack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzCoder trains one fixed coder for the fuzz targets from a small
// deterministic RISC-like corpus.
func fuzzCoder(tb testing.TB) *Coder {
	text := make([]byte, 4096)
	state := uint32(0x2bad_f00d)
	for off := 0; off+4 <= len(text); off += 4 {
		state = state*1664525 + 1013904223
		// Bias the halfword distribution the way real code does: few
		// distinct uppers (opcodes), a heavier lower tail (immediates).
		word := state&0x000f_ffff | uint32(off%64)<<22
		binary.LittleEndian.PutUint32(text[off:], word)
	}
	c, err := Train(text)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// FuzzDecodeLine hardens the server-facing decode path: arbitrary
// compressed bytes and output lengths must never panic — malformed input
// returns an error (ErrBadLine or a bit-stream underrun), nothing else.
func FuzzDecodeLine(f *testing.F) {
	coder := fuzzCoder(f)
	line := make([]byte, 32)
	for i := range line {
		line[i] = byte(i * 7)
	}
	enc, err := coder.EncodeLine(line)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc, 32)
	f.Add([]byte{}, 32)
	f.Add(enc[:len(enc)/2], 32)
	f.Add(enc, -4)
	f.Add(enc, 7)
	f.Add([]byte{0xff, 0xff, 0xff}, 8)

	f.Fuzz(func(t *testing.T, comp []byte, n int) {
		if n > 4096 {
			n %= 4096 // bound the output allocation, not the search space
		}
		out, err := coder.DecodeLine(comp, n)
		if err != nil {
			return
		}
		if len(out) != n {
			t.Fatalf("DecodeLine returned %d bytes, want %d", len(out), n)
		}
		// Anything that decodes must re-encode to a prefix-compatible
		// stream: decode(encode(out)) is out again.
		re, err := coder.EncodeLine(out)
		if err != nil {
			t.Fatalf("re-encoding accepted output: %v", err)
		}
		back, err := coder.DecodeLine(re, n)
		if err != nil {
			t.Fatalf("round trip of accepted output: %v", err)
		}
		if !bytes.Equal(back, out) {
			t.Fatal("accepted output does not round-trip")
		}
	})
}

// FuzzTrainEncodeDecode exercises the full train/encode/decode cycle on
// arbitrary corpora: training either fails cleanly or produces a coder
// whose round trip is the identity.
func FuzzTrainEncodeDecode(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xAA, 0x55}, 64))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, corpus []byte) {
		coder, err := Train(corpus)
		if err != nil {
			return
		}
		line := make([]byte, 32)
		copy(line, corpus)
		enc, err := coder.EncodeLine(line)
		if err != nil {
			t.Fatalf("EncodeLine on trained corpus line: %v", err)
		}
		dec, err := coder.DecodeLine(enc, len(line))
		if err != nil {
			t.Fatalf("DecodeLine of own encoding: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatal("encode/decode round trip mismatch")
		}
	})
}

// TestDecodeLineNegativeLength pins the hardened error path: a negative
// word-aligned length must return ErrBadLine, not panic in make.
func TestDecodeLineNegativeLength(t *testing.T) {
	coder := fuzzCoder(t)
	if _, err := coder.DecodeLine([]byte{0x00}, -4); !errors.Is(err, ErrBadLine) {
		t.Fatalf("DecodeLine(comp, -4) error = %v, want ErrBadLine", err)
	}
}
