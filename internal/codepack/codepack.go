// Package codepack implements a CodePack-style instruction coder — the
// "more sophisticated encoding technique" direction the paper's §5
// proposes, and the scheme its line of work grew into (IBM CodePack for
// PowerPC, 1998).
//
// Where the paper's base scheme Huffman-codes instruction *bytes*,
// CodePack splits each 32-bit instruction into its upper and lower
// 16-bit halves and codes each half against its own dictionary: the most
// frequent halfwords (opcodes/registers in the upper half, small
// immediates in the lower half) get short indices, and anything else
// escapes to a raw 16-bit literal. The index streams are entropy-coded
// with the same bounded Huffman machinery as the base scheme, so the
// decoder cost argument (§3.4) carries over.
//
// The coder plugs into the same block-bounded pipeline: EncodeLine and
// DecodeLine work on 32-byte cache lines, and BitLengths exposes the
// per-output-byte bit counts the refill engine's streaming model needs.
package codepack

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
)

// tableSize is the dictionary size per half; index 255 is the escape.
const tableSize = 255

const escape = tableSize // symbol meaning "16-bit literal follows"

// ErrBadLine is returned when decoding a malformed compressed line.
var ErrBadLine = errors.New("codepack: malformed compressed line")

// Coder holds the two dictionaries and their entropy codes.
type Coder struct {
	upper halfCoder // bits 31..16 of each instruction
	lower halfCoder // bits 15..0
}

type halfCoder struct {
	table []uint16         // index -> halfword
	index map[uint16]uint8 // halfword -> index
	code  *huffman.Code    // over the 256-symbol index alphabet
}

// Train builds a coder from a corpus of instruction text images (the
// CodePack analogue of the paper's preselected code: fixed at
// development time, hardwired in the decoder).
func Train(images ...[]byte) (*Coder, error) {
	upperCounts := map[uint16]uint64{}
	lowerCounts := map[uint16]uint64{}
	for _, text := range images {
		for off := 0; off+4 <= len(text); off += 4 {
			w := binary.LittleEndian.Uint32(text[off:])
			upperCounts[uint16(w>>16)]++
			lowerCounts[uint16(w)]++
		}
	}
	if len(upperCounts) == 0 {
		return nil, errors.New("codepack: empty training corpus")
	}
	c := &Coder{}
	var err error
	if c.upper, err = trainHalf(upperCounts); err != nil {
		return nil, err
	}
	if c.lower, err = trainHalf(lowerCounts); err != nil {
		return nil, err
	}
	return c, nil
}

func trainHalf(counts map[uint16]uint64) (halfCoder, error) {
	type entry struct {
		hw uint16
		n  uint64
	}
	entries := make([]entry, 0, len(counts))
	for hw, n := range counts {
		entries = append(entries, entry{hw, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].hw < entries[j].hw
	})
	if len(entries) > tableSize {
		entries = entries[:tableSize]
	}
	h := halfCoder{index: make(map[uint16]uint8, len(entries))}
	var hist huffman.Histogram
	var escaped uint64
	for i, e := range entries {
		h.table = append(h.table, e.hw)
		h.index[e.hw] = uint8(i)
		hist[i] = e.n
	}
	for hw, n := range counts {
		if _, ok := h.index[hw]; !ok {
			escaped += n
		}
	}
	hist[escape] = escaped + 1 // the escape must always have a codeword
	// Smooth the dictionary symbols so every index decodes even if its
	// training count was tiny.
	for i := 0; i < len(h.table); i++ {
		hist[i]++
	}
	code, err := huffman.BuildBounded(&hist, 16)
	if err != nil {
		return halfCoder{}, err
	}
	h.code = code
	return h, nil
}

// encodeHalf appends one halfword's codeword (and escape literal).
func (h *halfCoder) encodeHalf(w *bitio.Writer, hw uint16) error {
	if idx, ok := h.index[hw]; ok {
		bits, n := h.code.Codeword(idx)
		if n == 0 {
			return fmt.Errorf("codepack: dictionary index %d lost its codeword", idx)
		}
		w.WriteBits(bits, uint(n))
		return nil
	}
	bits, n := h.code.Codeword(escape)
	if n == 0 {
		return errors.New("codepack: escape symbol has no codeword")
	}
	w.WriteBits(bits, uint(n))
	w.WriteBits(uint64(hw), 16)
	return nil
}

// halfBits returns the encoded size of one halfword in bits.
func (h *halfCoder) halfBits(hw uint16) int {
	if idx, ok := h.index[hw]; ok {
		return h.code.Len(idx)
	}
	return h.code.Len(byte(escape)) + 16
}

// decodeHalf reads one halfword. The codeword lookup goes through the
// multi-symbol table-driven decoder; interleaving with the raw 16-bit
// escape literals is safe because MultiDecoder.DecodeSymbol consumes
// exactly one codeword and leaves the reader at the canonical bit
// position.
func (h *halfCoder) decodeHalf(r *bitio.Reader) (uint16, error) {
	sym, err := h.code.Multi().DecodeSymbol(r)
	if err != nil {
		return 0, err
	}
	if int(sym) == escape {
		v, err := r.ReadBits(16)
		if err != nil {
			return 0, err
		}
		return uint16(v), nil
	}
	if int(sym) >= len(h.table) {
		return 0, fmt.Errorf("%w: index %d beyond dictionary", ErrBadLine, sym)
	}
	return h.table[sym], nil
}

// EncodeLine compresses one 32-byte instruction line (8 words).
func (c *Coder) EncodeLine(line []byte) ([]byte, error) {
	if len(line)%4 != 0 {
		return nil, fmt.Errorf("codepack: line length %d not word aligned", len(line))
	}
	var w bitio.Writer
	for off := 0; off < len(line); off += 4 {
		word := binary.LittleEndian.Uint32(line[off:])
		if err := c.upper.encodeHalf(&w, uint16(word>>16)); err != nil {
			return nil, err
		}
		if err := c.lower.encodeHalf(&w, uint16(word)); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// DecodeLine expands a compressed line back to n bytes (n word aligned).
func (c *Coder) DecodeLine(comp []byte, n int) ([]byte, error) {
	if n < 0 || n%4 != 0 {
		return nil, fmt.Errorf("%w: output length %d not a non-negative word multiple", ErrBadLine, n)
	}
	out := make([]byte, n)
	if err := c.DecodeLineInto(out, comp); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeLineInto expands a compressed line into dst (core.LineIntoDecoder),
// the zero-allocation form of DecodeLine: the bit reader lives on the
// stack and the caller owns the output buffer.
func (c *Coder) DecodeLineInto(dst, comp []byte) error {
	if len(dst)%4 != 0 {
		return fmt.Errorf("%w: output length %d not a word multiple", ErrBadLine, len(dst))
	}
	var r bitio.Reader
	r.Reset(comp)
	for off := 0; off < len(dst); off += 4 {
		hi, err := c.upper.decodeHalf(&r)
		if err != nil {
			return fmt.Errorf("%w: word %d: %v", ErrBadLine, off/4, err)
		}
		lo, err := c.lower.decodeHalf(&r)
		if err != nil {
			return fmt.Errorf("%w: word %d: %v", ErrBadLine, off/4, err)
		}
		binary.LittleEndian.PutUint32(dst[off:], uint32(hi)<<16|uint32(lo))
	}
	return nil
}

// EncodedBits returns the exact compressed size of line in bits.
func (c *Coder) EncodedBits(line []byte) (int, error) {
	if len(line)%4 != 0 {
		return 0, fmt.Errorf("codepack: line length %d not word aligned", len(line))
	}
	total := 0
	for off := 0; off < len(line); off += 4 {
		word := binary.LittleEndian.Uint32(line[off:])
		total += c.upper.halfBits(uint16(word >> 16))
		total += c.lower.halfBits(uint16(word))
	}
	return total, nil
}

// BitLengths attributes encoded bits to output bytes for the refill
// engine's streaming model: each halfword's bits are charged to its two
// bytes.
func (c *Coder) BitLengths(line []byte) ([]int, error) {
	if len(line)%4 != 0 {
		return nil, fmt.Errorf("codepack: line length %d not word aligned", len(line))
	}
	lens := make([]int, len(line))
	for off := 0; off < len(line); off += 4 {
		word := binary.LittleEndian.Uint32(line[off:])
		hb := c.upper.halfBits(uint16(word >> 16))
		lb := c.lower.halfBits(uint16(word))
		// Little-endian layout: bytes 0,1 are the low half, 2,3 the high.
		lens[off] = lb / 2
		lens[off+1] = lb - lb/2
		lens[off+2] = hb / 2
		lens[off+3] = hb - hb/2
	}
	return lens, nil
}

// Name identifies the coder in reports (core.LineCodec).
func (c *Coder) Name() string { return "codepack" }

// DictionaryBytes is the decoder table cost: two 255-entry halfword
// dictionaries (hardwired alongside the Huffman index codes).
func (c *Coder) DictionaryBytes() int {
	return 2 * (len(c.upper.table) + len(c.lower.table))
}

// coderWire is the gob shape of a serialized Coder: the two dictionaries
// plus their entropy codes (via huffman.Code's own binary form). The
// index maps are derived state and are rebuilt on decode.
type coderWire struct {
	Upper, Lower halfWire
}

type halfWire struct {
	Table []uint16
	Code  []byte
}

// MarshalBinary serializes the coder so a trained dictionary can persist
// across processes (the artifact-store analogue of CodePack's
// development-time fixed tables).
func (c *Coder) MarshalBinary() ([]byte, error) {
	wire := coderWire{}
	var err error
	if wire.Upper, err = c.upper.wire(); err != nil {
		return nil, err
	}
	if wire.Lower, err = c.lower.wire(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("codepack: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

func (h *halfCoder) wire() (halfWire, error) {
	code, err := h.code.MarshalBinary()
	if err != nil {
		return halfWire{}, fmt.Errorf("codepack: marshal code: %w", err)
	}
	return halfWire{Table: h.table, Code: code}, nil
}

// UnmarshalCoder reconstructs a Coder serialized by MarshalBinary. The
// result encodes and decodes byte-identically to the original: the
// dictionaries, index maps, and canonical codes are fully determined by
// the wire form.
func UnmarshalCoder(p []byte) (*Coder, error) {
	var wire coderWire
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("codepack: unmarshal: %w", err)
	}
	c := &Coder{}
	var err error
	if c.upper, err = wire.Upper.coder(); err != nil {
		return nil, err
	}
	if c.lower, err = wire.Lower.coder(); err != nil {
		return nil, err
	}
	return c, nil
}

func (w halfWire) coder() (halfCoder, error) {
	if len(w.Table) > tableSize {
		return halfCoder{}, fmt.Errorf("codepack: unmarshal: dictionary of %d entries exceeds %d",
			len(w.Table), tableSize)
	}
	code, err := huffman.UnmarshalCode(w.Code)
	if err != nil {
		return halfCoder{}, fmt.Errorf("codepack: unmarshal code: %w", err)
	}
	h := halfCoder{table: w.Table, index: make(map[uint16]uint8, len(w.Table)), code: code}
	for i, hw := range w.Table {
		if prev, ok := h.index[hw]; ok {
			return halfCoder{}, fmt.Errorf("codepack: unmarshal: halfword %#x at indices %d and %d",
				hw, prev, i)
		}
		h.index[hw] = uint8(i)
	}
	return h, nil
}
