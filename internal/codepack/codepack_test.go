package codepack

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// riscWords synthesizes instruction-like words: skewed upper halves
// (opcodes/registers) and mostly-small lower halves (immediates).
func riscWords(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*4)
	uppers := []uint16{0x2508, 0x8D28, 0xADBF, 0x0109, 0x3C04, 0x1120, 0x0C00, 0x03E0}
	for i := 0; i < n; i++ {
		var w uint32
		switch rng.Intn(10) {
		case 0: // rare arbitrary word (forces escapes)
			w = rng.Uint32()
		default:
			up := uppers[rng.Intn(len(uppers))]
			lo := uint16(rng.Intn(64) * 4)
			w = uint32(up)<<16 | uint32(lo)
		}
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return out
}

func trained(t testing.TB) (*Coder, []byte) {
	t.Helper()
	corpus := riscWords(8192, 1)
	c, err := Train(corpus)
	if err != nil {
		t.Fatal(err)
	}
	return c, corpus
}

func TestRoundTripLine(t *testing.T) {
	c, corpus := trained(t)
	for off := 0; off+32 <= 2048; off += 32 {
		line := corpus[off : off+32]
		enc, err := c.EncodeLine(line)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.DecodeLine(enc, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("line at %#x corrupted", off)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	c, _ := trained(t)
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		line := make([]byte, len(words)*4)
		for i, w := range words {
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		enc, err := c.EncodeLine(line)
		if err != nil {
			return false
		}
		dec, err := c.DecodeLine(enc, len(line))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedBitsExact(t *testing.T) {
	c, corpus := trained(t)
	line := corpus[:32]
	bits, err := c.EncodedBits(line)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if want := (bits + 7) / 8; len(enc) != want {
		t.Errorf("EncodedBits says %d bytes, encoder produced %d", want, len(enc))
	}
	lens, err := c.BitLengths(line)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, l := range lens {
		sum += l
	}
	if sum != bits {
		t.Errorf("BitLengths sum %d != EncodedBits %d", sum, bits)
	}
}

func TestCompressesTypicalCode(t *testing.T) {
	c, corpus := trained(t)
	bits, err := c.EncodedBits(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bits) / float64(len(corpus)*8)
	if ratio >= 0.80 {
		t.Errorf("codepack ratio on its own corpus = %.3f, expected well under 0.80", ratio)
	}
}

func TestEscapesStillDecode(t *testing.T) {
	c, _ := trained(t)
	// A line of entirely unseen halfwords: every one escapes.
	line := make([]byte, 32)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0xF00D0000+uint32(i)*0x01010101)
	}
	enc, err := c.EncodeLine(line)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.DecodeLine(enc, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, line) {
		t.Fatal("escape-only line corrupted")
	}
	bits, _ := c.EncodedBits(line)
	if bits <= 16*16 {
		t.Errorf("escape-only line coded in %d bits; must exceed 256 raw bits", bits)
	}
}

func TestErrors(t *testing.T) {
	c, _ := trained(t)
	if _, err := c.EncodeLine(make([]byte, 30)); err == nil {
		t.Error("unaligned line accepted")
	}
	if _, err := c.DecodeLine(nil, 30); err == nil {
		t.Error("unaligned decode accepted")
	}
	if _, err := c.DecodeLine([]byte{0xFF}, 32); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := c.EncodedBits(make([]byte, 3)); err == nil {
		t.Error("unaligned EncodedBits accepted")
	}
	if _, err := c.BitLengths(make([]byte, 3)); err == nil {
		t.Error("unaligned BitLengths accepted")
	}
	if _, err := Train(); err == nil {
		t.Error("empty corpus accepted")
	}
	if c.DictionaryBytes() == 0 {
		t.Error("empty dictionaries")
	}
}

func BenchmarkEncodeLine(b *testing.B) {
	c, corpus := trained(b)
	line := corpus[:32]
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLine(b *testing.B) {
	c, corpus := trained(b)
	enc, err := c.EncodeLine(corpus[:32])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeLine(enc, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCoderMarshalRoundTrip: a serialized-and-restored coder encodes and
// decodes byte-identically to the original — the property the durable
// artifact store relies on.
func TestCoderMarshalRoundTrip(t *testing.T) {
	text := make([]byte, 0, 4096)
	for i := 0; i < 1024; i++ {
		w := uint32(i*2654435761) ^ uint32(i%7)<<16
		text = append(text, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	orig, err := Train(text)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off+32 <= len(text); off += 32 {
		line := text[off : off+32]
		a, err := orig.EncodeLine(line)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.EncodeLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line at %d: restored coder encodes differently", off)
		}
		dec, err := back.DecodeLine(a, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("line at %d: restored coder decodes wrong bytes", off)
		}
	}

	if _, err := UnmarshalCoder([]byte("not a gob stream")); err == nil {
		t.Fatal("UnmarshalCoder accepted garbage")
	}
}
