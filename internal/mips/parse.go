package mips

import (
	"fmt"
	"strconv"
	"strings"

	"ccrp/internal/isa"
)

// ParseInst implements isa.InstParser: parse one line of this package's
// own disassembly syntax at address pc, the inverse of Disassemble. It
// reuses the assembler backend with a constants-only evaluator (the
// disassembler prints targets as absolute hex, never as symbols).
func (b Backend) ParseInst(src string, pc uint32) (isa.Word, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return 0, fmt.Errorf("mips: empty instruction")
	}
	op := src
	rest := ""
	if i := strings.IndexAny(src, " \t"); i >= 0 {
		op, rest = src[:i], strings.TrimSpace(src[i+1:])
	}
	op = strings.ToLower(op)
	if op == ".word" {
		v, err := constEval(rest)
		if err != nil {
			return 0, err
		}
		return isa.Word(v), nil
	}
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	words, err := b.EncodeInst(op, args, pc, constEval)
	if err != nil {
		return 0, err
	}
	if len(words) != 1 {
		return 0, fmt.Errorf("mips: %q is a %d-word expansion, not one instruction", src, len(words))
	}
	return words[0], nil
}

// constEval evaluates the literal forms the disassembler emits: decimal
// (possibly negative) and 0x hex.
func constEval(expr string) (uint32, error) {
	s := strings.TrimSpace(expr)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = strings.TrimSpace(s[1:])
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad constant %q", expr)
	}
	if neg {
		return uint32(-int64(v)), nil
	}
	return uint32(v), nil
}

// ContractWords implements isa.WordEnumerator: a representative valid
// word for every operation (plus nop and negative-immediate variants),
// used by the ISA-level asm↔disasm round-trip contract test. All words
// round-trip at any pc whose surrounding 64KB-word window stays inside
// the text region; the contract test uses a small fixed pc.
func (Backend) ContractWords() []isa.Word {
	var out []isa.Word
	for _, i := range contractInsts() {
		out = append(out, isa.Word(Encode(i)))
	}
	// nop (sll $0,$0,0) and a raw BREAK with a non-zero code field.
	out = append(out, 0, isa.Word(uint32(0x7)<<6|fnBREAK))
	return out
}

// contractInsts returns one (or more) sample encodings per operation.
// A unit test asserts every valid Op appears.
func contractInsts() []Inst {
	return []Inst{
		{Op: OpSLL, Rd: 8, Rt: 9, Shamt: 4},
		{Op: OpSRL, Rd: 8, Rt: 9, Shamt: 1},
		{Op: OpSRA, Rd: 8, Rt: 9, Shamt: 31},
		{Op: OpSLLV, Rd: 8, Rt: 9, Rs: 10},
		{Op: OpSRLV, Rd: 8, Rt: 9, Rs: 10},
		{Op: OpSRAV, Rd: 8, Rt: 9, Rs: 10},
		{Op: OpJR, Rs: RegRA},
		{Op: OpJALR, Rd: RegRA, Rs: 8},
		{Op: OpJALR, Rd: 9, Rs: 10},
		{Op: OpSYSCALL},
		{Op: OpBREAK},
		{Op: OpMFHI, Rd: 8},
		{Op: OpMTHI, Rs: 8},
		{Op: OpMFLO, Rd: 8},
		{Op: OpMTLO, Rs: 8},
		{Op: OpMULT, Rs: 8, Rt: 9},
		{Op: OpMULTU, Rs: 8, Rt: 9},
		{Op: OpDIV, Rs: 8, Rt: 9},
		{Op: OpDIVU, Rs: 8, Rt: 9},
		{Op: OpADD, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpADDU, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpSUB, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpSUBU, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpAND, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpOR, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpXOR, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpNOR, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpSLT, Rd: 8, Rs: 9, Rt: 10},
		{Op: OpSLTU, Rd: 8, Rs: 9, Rt: 10},

		{Op: OpBLTZ, Rs: 8, Imm: 0x10},
		{Op: OpBGEZ, Rs: 8, Imm: 0xFFF0}, // backward branch
		{Op: OpBLTZAL, Rs: 8, Imm: 0x10},
		{Op: OpBGEZAL, Rs: 8, Imm: 0x10},

		{Op: OpJ, Target: 0x40},
		{Op: OpJAL, Target: 0x44},

		{Op: OpBEQ, Rs: 8, Rt: 9, Imm: 0x10},
		{Op: OpBNE, Rs: 8, Rt: 9, Imm: 0xFFF0},
		{Op: OpBLEZ, Rs: 8, Imm: 0x10},
		{Op: OpBGTZ, Rs: 8, Imm: 0x10},
		{Op: OpADDI, Rt: 8, Rs: 9, Imm: 0xFFFB}, // -5
		{Op: OpADDIU, Rt: 8, Rs: 9, Imm: 5},
		{Op: OpSLTI, Rt: 8, Rs: 9, Imm: 100},
		{Op: OpSLTIU, Rt: 8, Rs: 9, Imm: 100},
		{Op: OpANDI, Rt: 8, Rs: 9, Imm: 0x1234},
		{Op: OpORI, Rt: 8, Rs: 9, Imm: 0xFFFF},
		{Op: OpXORI, Rt: 8, Rs: 9, Imm: 0x00FF},
		{Op: OpLUI, Rt: 8, Imm: 0x1234},

		{Op: OpLB, Rt: 8, Rs: RegSP, Imm: 4},
		{Op: OpLH, Rt: 8, Rs: RegSP, Imm: 2},
		{Op: OpLWL, Rt: 8, Rs: RegSP, Imm: 3},
		{Op: OpLW, Rt: 8, Rs: RegSP, Imm: 0xFFFC}, // -4
		{Op: OpLBU, Rt: 8, Rs: RegGP, Imm: 1},
		{Op: OpLHU, Rt: 8, Rs: RegGP, Imm: 2},
		{Op: OpLWR, Rt: 8, Rs: RegSP, Imm: 0},
		{Op: OpSB, Rt: 8, Rs: RegSP, Imm: 1},
		{Op: OpSH, Rt: 8, Rs: RegSP, Imm: 2},
		{Op: OpSWL, Rt: 8, Rs: RegSP, Imm: 3},
		{Op: OpSW, Rt: 8, Rs: RegSP, Imm: 8},
		{Op: OpSWR, Rt: 8, Rs: RegSP, Imm: 0},
		{Op: OpLWC1, Rt: 2, Rs: RegSP, Imm: 8},
		{Op: OpSWC1, Rt: 2, Rs: RegSP, Imm: 12},

		{Op: OpMFC1, Rt: 8, Rd: 2},
		{Op: OpMTC1, Rt: 8, Rd: 2},
		{Op: OpBC1F, Imm: 0x10},
		{Op: OpBC1T, Imm: 0xFFF0},

		{Op: OpADDS, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpADDD, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpSUBS, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpSUBD, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpMULS, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpMULD, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpDIVS, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpDIVD, Shamt: 2, Rd: 4, Rt: 6},
		{Op: OpABSS, Shamt: 2, Rd: 4},
		{Op: OpABSD, Shamt: 2, Rd: 4},
		{Op: OpMOVS, Shamt: 2, Rd: 4},
		{Op: OpMOVD, Shamt: 2, Rd: 4},
		{Op: OpNEGS, Shamt: 2, Rd: 4},
		{Op: OpNEGD, Shamt: 2, Rd: 4},
		{Op: OpCVTSD, Shamt: 2, Rd: 4},
		{Op: OpCVTSW, Shamt: 2, Rd: 4},
		{Op: OpCVTDS, Shamt: 2, Rd: 4},
		{Op: OpCVTDW, Shamt: 2, Rd: 4},
		{Op: OpCVTWS, Shamt: 2, Rd: 4},
		{Op: OpCVTWD, Shamt: 2, Rd: 4},
		{Op: OpCEQS, Rd: 2, Rt: 4},
		{Op: OpCEQD, Rd: 2, Rt: 4},
		{Op: OpCLTS, Rd: 2, Rt: 4},
		{Op: OpCLTD, Rd: 2, Rt: 4},
		{Op: OpCLES, Rd: 2, Rt: 4},
		{Op: OpCLED, Rd: 2, Rt: 4},
	}
}
