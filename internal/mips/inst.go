package mips

import "fmt"

// Inst is a decoded instruction. The register fields hold the raw bit
// fields by position: Rs = bits 25..21, Rt = 20..16, Rd = 15..11,
// Shamt = 10..6. For COP1 arithmetic the convention is ft = Rt, fs = Rd,
// fd = Shamt (use the Ft/Fs/Fd accessors).
type Inst struct {
	Raw    Word
	Op     Op
	Rs     uint8
	Rt     uint8
	Rd     uint8
	Shamt  uint8
	Imm    uint16 // I-format immediate, raw
	Target uint32 // J-format 26-bit target field
}

// SImm returns the sign-extended immediate.
func (i Inst) SImm() int32 { return int32(int16(i.Imm)) }

// ZImm returns the zero-extended immediate.
func (i Inst) ZImm() uint32 { return uint32(i.Imm) }

// Ft, Fs, Fd are the COP1 register fields.
func (i Inst) Ft() uint8 { return i.Rt }
func (i Inst) Fs() uint8 { return i.Rd }
func (i Inst) Fd() uint8 { return i.Shamt }

// BranchTarget returns the branch destination given the address of the
// branch instruction (target is relative to the delay-slot instruction).
func (i Inst) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(i.SImm())<<2
}

// JumpTarget returns the absolute destination of a J/JAL at address pc.
func (i Inst) JumpTarget(pc uint32) uint32 {
	return (pc+4)&0xF0000000 | i.Target<<2
}

// IsBranch reports whether the instruction is a conditional branch
// (including FP condition branches).
func (i Inst) IsBranch() bool {
	c := i.Op.Class()
	return c == ClassBranch || c == ClassFPBr
}

// IsJump reports whether the instruction unconditionally transfers control.
func (i Inst) IsJump() bool { return i.Op.Class() == ClassJump }

// HasDelaySlot reports whether the following instruction executes in the
// branch delay slot (MIPS-I: all branches and jumps).
func (i Inst) HasDelaySlot() bool { return i.IsBranch() || i.IsJump() }

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Op.Class() == ClassLoad }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op.Class() == ClassStore }

// IsMemOp reports whether the instruction accesses data memory.
func (i Inst) IsMemOp() bool { return i.IsLoad() || i.IsStore() }

// Decode decodes a raw instruction word. Unrecognized encodings decode to
// Op == OpInvalid with the fields still split out.
func Decode(w Word) Inst {
	i := Inst{
		Raw:    w,
		Rs:     uint8(w >> 21 & 0x1F),
		Rt:     uint8(w >> 16 & 0x1F),
		Rd:     uint8(w >> 11 & 0x1F),
		Shamt:  uint8(w >> 6 & 0x1F),
		Imm:    uint16(w & 0xFFFF),
		Target: uint32(w & 0x03FFFFFF),
	}
	opc := uint8(w >> 26)
	switch opc {
	case opcSpecial:
		i.Op = specialOp(uint8(w & 0x3F))
	case opcRegimm:
		switch i.Rt {
		case riBLTZ:
			i.Op = OpBLTZ
		case riBGEZ:
			i.Op = OpBGEZ
		case riBLTZAL:
			i.Op = OpBLTZAL
		case riBGEZAL:
			i.Op = OpBGEZAL
		}
	case opcJ:
		i.Op = OpJ
	case opcJAL:
		i.Op = OpJAL
	case opcBEQ:
		i.Op = OpBEQ
	case opcBNE:
		i.Op = OpBNE
	case opcBLEZ:
		i.Op = OpBLEZ
	case opcBGTZ:
		i.Op = OpBGTZ
	case opcADDI:
		i.Op = OpADDI
	case opcADDIU:
		i.Op = OpADDIU
	case opcSLTI:
		i.Op = OpSLTI
	case opcSLTIU:
		i.Op = OpSLTIU
	case opcANDI:
		i.Op = OpANDI
	case opcORI:
		i.Op = OpORI
	case opcXORI:
		i.Op = OpXORI
	case opcLUI:
		i.Op = OpLUI
	case opcCOP1:
		i.Op = cop1Op(w)
	case opcLB:
		i.Op = OpLB
	case opcLH:
		i.Op = OpLH
	case opcLWL:
		i.Op = OpLWL
	case opcLW:
		i.Op = OpLW
	case opcLBU:
		i.Op = OpLBU
	case opcLHU:
		i.Op = OpLHU
	case opcLWR:
		i.Op = OpLWR
	case opcSB:
		i.Op = OpSB
	case opcSH:
		i.Op = OpSH
	case opcSWL:
		i.Op = OpSWL
	case opcSW:
		i.Op = OpSW
	case opcSWR:
		i.Op = OpSWR
	case opcLWC1:
		i.Op = OpLWC1
	case opcSWC1:
		i.Op = OpSWC1
	}
	return i
}

func specialOp(fn uint8) Op {
	switch fn {
	case fnSLL:
		return OpSLL
	case fnSRL:
		return OpSRL
	case fnSRA:
		return OpSRA
	case fnSLLV:
		return OpSLLV
	case fnSRLV:
		return OpSRLV
	case fnSRAV:
		return OpSRAV
	case fnJR:
		return OpJR
	case fnJALR:
		return OpJALR
	case fnSYSCALL:
		return OpSYSCALL
	case fnBREAK:
		return OpBREAK
	case fnMFHI:
		return OpMFHI
	case fnMTHI:
		return OpMTHI
	case fnMFLO:
		return OpMFLO
	case fnMTLO:
		return OpMTLO
	case fnMULT:
		return OpMULT
	case fnMULTU:
		return OpMULTU
	case fnDIV:
		return OpDIV
	case fnDIVU:
		return OpDIVU
	case fnADD:
		return OpADD
	case fnADDU:
		return OpADDU
	case fnSUB:
		return OpSUB
	case fnSUBU:
		return OpSUBU
	case fnAND:
		return OpAND
	case fnOR:
		return OpOR
	case fnXOR:
		return OpXOR
	case fnNOR:
		return OpNOR
	case fnSLT:
		return OpSLT
	case fnSLTU:
		return OpSLTU
	}
	return OpInvalid
}

func cop1Op(w Word) Op {
	rs := uint8(w >> 21 & 0x1F)
	switch rs {
	case copMF:
		return OpMFC1
	case copMT:
		return OpMTC1
	case copBC:
		if w>>16&1 == 1 {
			return OpBC1T
		}
		return OpBC1F
	case fmtS, fmtD, fmtW:
		return cop1FmtOp(rs, uint8(w&0x3F))
	}
	return OpInvalid
}

func cop1FmtOp(format, fn uint8) Op {
	type key struct{ f, fn uint8 }
	switch (key{format, fn}) {
	case key{fmtS, fnFADD}:
		return OpADDS
	case key{fmtD, fnFADD}:
		return OpADDD
	case key{fmtS, fnFSUB}:
		return OpSUBS
	case key{fmtD, fnFSUB}:
		return OpSUBD
	case key{fmtS, fnFMUL}:
		return OpMULS
	case key{fmtD, fnFMUL}:
		return OpMULD
	case key{fmtS, fnFDIV}:
		return OpDIVS
	case key{fmtD, fnFDIV}:
		return OpDIVD
	case key{fmtS, fnFABS}:
		return OpABSS
	case key{fmtD, fnFABS}:
		return OpABSD
	case key{fmtS, fnFMOV}:
		return OpMOVS
	case key{fmtD, fnFMOV}:
		return OpMOVD
	case key{fmtS, fnFNEG}:
		return OpNEGS
	case key{fmtD, fnFNEG}:
		return OpNEGD
	case key{fmtD, fnCVTS}:
		return OpCVTSD
	case key{fmtW, fnCVTS}:
		return OpCVTSW
	case key{fmtS, fnCVTD}:
		return OpCVTDS
	case key{fmtW, fnCVTD}:
		return OpCVTDW
	case key{fmtS, fnCVTW}:
		return OpCVTWS
	case key{fmtD, fnCVTW}:
		return OpCVTWD
	case key{fmtS, fnCEQ}:
		return OpCEQS
	case key{fmtD, fnCEQ}:
		return OpCEQD
	case key{fmtS, fnCLT}:
		return OpCLTS
	case key{fmtD, fnCLT}:
		return OpCLTD
	case key{fmtS, fnCLE}:
		return OpCLES
	case key{fmtD, fnCLE}:
		return OpCLED
	}
	return OpInvalid
}

// encSpec describes how an Op maps back to instruction word bits.
type encSpec struct {
	kind   uint8 // 0 special, 1 regimm, 2 opcode-only, 3 cop1-rs, 4 cop1-fmt, 5 cop1-bc
	opc    uint8
	funct  uint8
	rt     uint8 // regimm rt / bc1 tf bit
	format uint8 // cop1 fmt field
}

var encTable = map[Op]encSpec{
	OpSLL:     {0, opcSpecial, fnSLL, 0, 0},
	OpSRL:     {0, opcSpecial, fnSRL, 0, 0},
	OpSRA:     {0, opcSpecial, fnSRA, 0, 0},
	OpSLLV:    {0, opcSpecial, fnSLLV, 0, 0},
	OpSRLV:    {0, opcSpecial, fnSRLV, 0, 0},
	OpSRAV:    {0, opcSpecial, fnSRAV, 0, 0},
	OpJR:      {0, opcSpecial, fnJR, 0, 0},
	OpJALR:    {0, opcSpecial, fnJALR, 0, 0},
	OpSYSCALL: {0, opcSpecial, fnSYSCALL, 0, 0},
	OpBREAK:   {0, opcSpecial, fnBREAK, 0, 0},
	OpMFHI:    {0, opcSpecial, fnMFHI, 0, 0},
	OpMTHI:    {0, opcSpecial, fnMTHI, 0, 0},
	OpMFLO:    {0, opcSpecial, fnMFLO, 0, 0},
	OpMTLO:    {0, opcSpecial, fnMTLO, 0, 0},
	OpMULT:    {0, opcSpecial, fnMULT, 0, 0},
	OpMULTU:   {0, opcSpecial, fnMULTU, 0, 0},
	OpDIV:     {0, opcSpecial, fnDIV, 0, 0},
	OpDIVU:    {0, opcSpecial, fnDIVU, 0, 0},
	OpADD:     {0, opcSpecial, fnADD, 0, 0},
	OpADDU:    {0, opcSpecial, fnADDU, 0, 0},
	OpSUB:     {0, opcSpecial, fnSUB, 0, 0},
	OpSUBU:    {0, opcSpecial, fnSUBU, 0, 0},
	OpAND:     {0, opcSpecial, fnAND, 0, 0},
	OpOR:      {0, opcSpecial, fnOR, 0, 0},
	OpXOR:     {0, opcSpecial, fnXOR, 0, 0},
	OpNOR:     {0, opcSpecial, fnNOR, 0, 0},
	OpSLT:     {0, opcSpecial, fnSLT, 0, 0},
	OpSLTU:    {0, opcSpecial, fnSLTU, 0, 0},

	OpBLTZ:   {1, opcRegimm, 0, riBLTZ, 0},
	OpBGEZ:   {1, opcRegimm, 0, riBGEZ, 0},
	OpBLTZAL: {1, opcRegimm, 0, riBLTZAL, 0},
	OpBGEZAL: {1, opcRegimm, 0, riBGEZAL, 0},

	OpJ:   {2, opcJ, 0, 0, 0},
	OpJAL: {2, opcJAL, 0, 0, 0},

	OpBEQ:   {2, opcBEQ, 0, 0, 0},
	OpBNE:   {2, opcBNE, 0, 0, 0},
	OpBLEZ:  {2, opcBLEZ, 0, 0, 0},
	OpBGTZ:  {2, opcBGTZ, 0, 0, 0},
	OpADDI:  {2, opcADDI, 0, 0, 0},
	OpADDIU: {2, opcADDIU, 0, 0, 0},
	OpSLTI:  {2, opcSLTI, 0, 0, 0},
	OpSLTIU: {2, opcSLTIU, 0, 0, 0},
	OpANDI:  {2, opcANDI, 0, 0, 0},
	OpORI:   {2, opcORI, 0, 0, 0},
	OpXORI:  {2, opcXORI, 0, 0, 0},
	OpLUI:   {2, opcLUI, 0, 0, 0},

	OpLB:   {2, opcLB, 0, 0, 0},
	OpLH:   {2, opcLH, 0, 0, 0},
	OpLWL:  {2, opcLWL, 0, 0, 0},
	OpLW:   {2, opcLW, 0, 0, 0},
	OpLBU:  {2, opcLBU, 0, 0, 0},
	OpLHU:  {2, opcLHU, 0, 0, 0},
	OpLWR:  {2, opcLWR, 0, 0, 0},
	OpSB:   {2, opcSB, 0, 0, 0},
	OpSH:   {2, opcSH, 0, 0, 0},
	OpSWL:  {2, opcSWL, 0, 0, 0},
	OpSW:   {2, opcSW, 0, 0, 0},
	OpSWR:  {2, opcSWR, 0, 0, 0},
	OpLWC1: {2, opcLWC1, 0, 0, 0},
	OpSWC1: {2, opcSWC1, 0, 0, 0},

	OpMFC1: {3, opcCOP1, 0, 0, copMF},
	OpMTC1: {3, opcCOP1, 0, 0, copMT},
	OpBC1F: {5, opcCOP1, 0, 0, 0},
	OpBC1T: {5, opcCOP1, 0, 1, 0},

	OpADDS:  {4, opcCOP1, fnFADD, 0, fmtS},
	OpADDD:  {4, opcCOP1, fnFADD, 0, fmtD},
	OpSUBS:  {4, opcCOP1, fnFSUB, 0, fmtS},
	OpSUBD:  {4, opcCOP1, fnFSUB, 0, fmtD},
	OpMULS:  {4, opcCOP1, fnFMUL, 0, fmtS},
	OpMULD:  {4, opcCOP1, fnFMUL, 0, fmtD},
	OpDIVS:  {4, opcCOP1, fnFDIV, 0, fmtS},
	OpDIVD:  {4, opcCOP1, fnFDIV, 0, fmtD},
	OpABSS:  {4, opcCOP1, fnFABS, 0, fmtS},
	OpABSD:  {4, opcCOP1, fnFABS, 0, fmtD},
	OpMOVS:  {4, opcCOP1, fnFMOV, 0, fmtS},
	OpMOVD:  {4, opcCOP1, fnFMOV, 0, fmtD},
	OpNEGS:  {4, opcCOP1, fnFNEG, 0, fmtS},
	OpNEGD:  {4, opcCOP1, fnFNEG, 0, fmtD},
	OpCVTSD: {4, opcCOP1, fnCVTS, 0, fmtD},
	OpCVTSW: {4, opcCOP1, fnCVTS, 0, fmtW},
	OpCVTDS: {4, opcCOP1, fnCVTD, 0, fmtS},
	OpCVTDW: {4, opcCOP1, fnCVTD, 0, fmtW},
	OpCVTWS: {4, opcCOP1, fnCVTW, 0, fmtS},
	OpCVTWD: {4, opcCOP1, fnCVTW, 0, fmtD},
	OpCEQS:  {4, opcCOP1, fnCEQ, 0, fmtS},
	OpCEQD:  {4, opcCOP1, fnCEQ, 0, fmtD},
	OpCLTS:  {4, opcCOP1, fnCLT, 0, fmtS},
	OpCLTD:  {4, opcCOP1, fnCLT, 0, fmtD},
	OpCLES:  {4, opcCOP1, fnCLE, 0, fmtS},
	OpCLED:  {4, opcCOP1, fnCLE, 0, fmtD},
}

// Encode assembles the instruction fields of i into a machine word.
// The Raw field is ignored; the result is built from Op plus the register,
// immediate, and target fields. Encode panics on an invalid Op (programs
// should construct Insts from the assembler or Decode).
func Encode(i Inst) Word {
	spec, ok := encTable[i.Op]
	if !ok {
		panic(fmt.Sprintf("mips: Encode of invalid op %v", i.Op))
	}
	switch spec.kind {
	case 0: // SPECIAL
		return Word(uint32(spec.opc)<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 |
			uint32(i.Rd)<<11 | uint32(i.Shamt)<<6 | uint32(spec.funct))
	case 1: // REGIMM
		return Word(uint32(spec.opc)<<26 | uint32(i.Rs)<<21 | uint32(spec.rt)<<16 | uint32(i.Imm))
	case 2: // plain opcode: I or J format
		if i.Op == OpJ || i.Op == OpJAL {
			return Word(uint32(spec.opc)<<26 | i.Target&0x03FFFFFF)
		}
		return Word(uint32(spec.opc)<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Imm))
	case 3: // MFC1/MTC1: rt = GPR, rd = FPR
		return Word(uint32(spec.opc)<<26 | uint32(spec.format)<<21 | uint32(i.Rt)<<16 | uint32(i.Rd)<<11)
	case 4: // COP1 fmt arithmetic
		return Word(uint32(spec.opc)<<26 | uint32(spec.format)<<21 | uint32(i.Rt)<<16 |
			uint32(i.Rd)<<11 | uint32(i.Shamt)<<6 | uint32(spec.funct))
	case 5: // BC1F/BC1T
		return Word(uint32(spec.opc)<<26 | uint32(copBC)<<21 | uint32(spec.rt)<<16 | uint32(i.Imm))
	}
	panic("mips: unreachable encode kind")
}
