package mips

import "ccrp/internal/isa"

// Op identifies a decoded machine operation (mnemonic level).
type Op uint8

// All supported operations.
const (
	OpInvalid Op = iota

	// SPECIAL (R-format)
	OpSLL
	OpSRL
	OpSRA
	OpSLLV
	OpSRLV
	OpSRAV
	OpJR
	OpJALR
	OpSYSCALL
	OpBREAK
	OpMFHI
	OpMTHI
	OpMFLO
	OpMTLO
	OpMULT
	OpMULTU
	OpDIV
	OpDIVU
	OpADD
	OpADDU
	OpSUB
	OpSUBU
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU

	// REGIMM
	OpBLTZ
	OpBGEZ
	OpBLTZAL
	OpBGEZAL

	// J-format
	OpJ
	OpJAL

	// I-format
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpADDI
	OpADDIU
	OpSLTI
	OpSLTIU
	OpANDI
	OpORI
	OpXORI
	OpLUI

	// Loads and stores
	OpLB
	OpLH
	OpLWL
	OpLW
	OpLBU
	OpLHU
	OpLWR
	OpSB
	OpSH
	OpSWL
	OpSW
	OpSWR
	OpLWC1
	OpSWC1

	// COP1 moves and branches
	OpMFC1
	OpMTC1
	OpBC1F
	OpBC1T

	// COP1 arithmetic
	OpADDS
	OpADDD
	OpSUBS
	OpSUBD
	OpMULS
	OpMULD
	OpDIVS
	OpDIVD
	OpABSS
	OpABSD
	OpMOVS
	OpMOVD
	OpNEGS
	OpNEGD
	OpCVTSD
	OpCVTSW
	OpCVTDS
	OpCVTDW
	OpCVTWS
	OpCVTWD
	OpCEQS
	OpCEQD
	OpCLTS
	OpCLTD
	OpCLES
	OpCLED

	numOps
)

// Class groups operations by pipeline behaviour; the simulator's stall
// model and the trace generator key off it. The MIPS classes are exactly
// the shared isa.Class set, so the type is an alias.
type Class = isa.Class

const (
	ClassALU    = isa.ClassALU    // single-cycle integer
	ClassShift  = isa.ClassShift  // single-cycle shifts
	ClassMulDiv = isa.ClassMulDiv // multi-cycle HI/LO producers
	ClassHILO   = isa.ClassHILO   // HI/LO moves (interlock consumers)
	ClassLoad   = isa.ClassLoad   // memory read (has a load delay slot)
	ClassStore  = isa.ClassStore  // memory write
	ClassBranch = isa.ClassBranch // conditional PC-relative
	ClassJump   = isa.ClassJump   // unconditional jump / jump-and-link / register jump
	ClassSys    = isa.ClassSys    // SYSCALL, BREAK
	ClassFPU    = isa.ClassFPU    // COP1 arithmetic / moves
	ClassFPBr   = isa.ClassFPBr   // COP1 condition branch
)

type opInfo struct {
	name  string
	class Class
}

var opTable = [numOps]opInfo{
	OpInvalid: {"<invalid>", ClassSys},

	OpSLL:     {"sll", ClassShift},
	OpSRL:     {"srl", ClassShift},
	OpSRA:     {"sra", ClassShift},
	OpSLLV:    {"sllv", ClassShift},
	OpSRLV:    {"srlv", ClassShift},
	OpSRAV:    {"srav", ClassShift},
	OpJR:      {"jr", ClassJump},
	OpJALR:    {"jalr", ClassJump},
	OpSYSCALL: {"syscall", ClassSys},
	OpBREAK:   {"break", ClassSys},
	OpMFHI:    {"mfhi", ClassHILO},
	OpMTHI:    {"mthi", ClassHILO},
	OpMFLO:    {"mflo", ClassHILO},
	OpMTLO:    {"mtlo", ClassHILO},
	OpMULT:    {"mult", ClassMulDiv},
	OpMULTU:   {"multu", ClassMulDiv},
	OpDIV:     {"div", ClassMulDiv},
	OpDIVU:    {"divu", ClassMulDiv},
	OpADD:     {"add", ClassALU},
	OpADDU:    {"addu", ClassALU},
	OpSUB:     {"sub", ClassALU},
	OpSUBU:    {"subu", ClassALU},
	OpAND:     {"and", ClassALU},
	OpOR:      {"or", ClassALU},
	OpXOR:     {"xor", ClassALU},
	OpNOR:     {"nor", ClassALU},
	OpSLT:     {"slt", ClassALU},
	OpSLTU:    {"sltu", ClassALU},

	OpBLTZ:   {"bltz", ClassBranch},
	OpBGEZ:   {"bgez", ClassBranch},
	OpBLTZAL: {"bltzal", ClassBranch},
	OpBGEZAL: {"bgezal", ClassBranch},

	OpJ:   {"j", ClassJump},
	OpJAL: {"jal", ClassJump},

	OpBEQ:   {"beq", ClassBranch},
	OpBNE:   {"bne", ClassBranch},
	OpBLEZ:  {"blez", ClassBranch},
	OpBGTZ:  {"bgtz", ClassBranch},
	OpADDI:  {"addi", ClassALU},
	OpADDIU: {"addiu", ClassALU},
	OpSLTI:  {"slti", ClassALU},
	OpSLTIU: {"sltiu", ClassALU},
	OpANDI:  {"andi", ClassALU},
	OpORI:   {"ori", ClassALU},
	OpXORI:  {"xori", ClassALU},
	OpLUI:   {"lui", ClassALU},

	OpLB:   {"lb", ClassLoad},
	OpLH:   {"lh", ClassLoad},
	OpLWL:  {"lwl", ClassLoad},
	OpLW:   {"lw", ClassLoad},
	OpLBU:  {"lbu", ClassLoad},
	OpLHU:  {"lhu", ClassLoad},
	OpLWR:  {"lwr", ClassLoad},
	OpSB:   {"sb", ClassStore},
	OpSH:   {"sh", ClassStore},
	OpSWL:  {"swl", ClassStore},
	OpSW:   {"sw", ClassStore},
	OpSWR:  {"swr", ClassStore},
	OpLWC1: {"lwc1", ClassLoad},
	OpSWC1: {"swc1", ClassStore},

	OpMFC1: {"mfc1", ClassFPU},
	OpMTC1: {"mtc1", ClassFPU},
	OpBC1F: {"bc1f", ClassFPBr},
	OpBC1T: {"bc1t", ClassFPBr},

	OpADDS:  {"add.s", ClassFPU},
	OpADDD:  {"add.d", ClassFPU},
	OpSUBS:  {"sub.s", ClassFPU},
	OpSUBD:  {"sub.d", ClassFPU},
	OpMULS:  {"mul.s", ClassFPU},
	OpMULD:  {"mul.d", ClassFPU},
	OpDIVS:  {"div.s", ClassFPU},
	OpDIVD:  {"div.d", ClassFPU},
	OpABSS:  {"abs.s", ClassFPU},
	OpABSD:  {"abs.d", ClassFPU},
	OpMOVS:  {"mov.s", ClassFPU},
	OpMOVD:  {"mov.d", ClassFPU},
	OpNEGS:  {"neg.s", ClassFPU},
	OpNEGD:  {"neg.d", ClassFPU},
	OpCVTSD: {"cvt.s.d", ClassFPU},
	OpCVTSW: {"cvt.s.w", ClassFPU},
	OpCVTDS: {"cvt.d.s", ClassFPU},
	OpCVTDW: {"cvt.d.w", ClassFPU},
	OpCVTWS: {"cvt.w.s", ClassFPU},
	OpCVTWD: {"cvt.w.d", ClassFPU},
	OpCEQS:  {"c.eq.s", ClassFPU},
	OpCEQD:  {"c.eq.d", ClassFPU},
	OpCLTS:  {"c.lt.s", ClassFPU},
	OpCLTD:  {"c.lt.d", ClassFPU},
	OpCLES:  {"c.le.s", ClassFPU},
	OpCLED:  {"c.le.d", ClassFPU},
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op < numOps {
		return opTable[op].name
	}
	return "<bad-op>"
}

// Class reports the pipeline class of op.
func (op Op) Class() Class {
	if op < numOps {
		return opTable[op].class
	}
	return ClassSys
}

// Valid reports whether op names a real operation.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// OpByName resolves an assembler mnemonic to its Op. It recognizes every
// mnemonic in the table (machine instructions only, not pseudo-ops).
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// NumOps returns the count of defined operations (for exhaustive tests).
func NumOps() int { return int(numOps) }
