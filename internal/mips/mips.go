// Package mips implements the MIPS R2000 (MIPS-I) instruction set
// architecture: instruction word encoding and decoding, register naming,
// instruction classification, and a disassembler.
//
// The package is the single source of truth for the ISA; the assembler
// (internal/asm) and the functional simulator (internal/sim) are both built
// on its tables, which keeps encode and execute in agreement by
// construction.
//
// Coverage is the MIPS-I user-mode subset an embedded R2000 program uses:
// all integer ALU, shift, multiply/divide, load/store (including unaligned
// LWL/LWR/SWL/SWR), branches and jumps, SYSCALL/BREAK, and a COP1
// single/double-precision floating point subset (arithmetic, moves,
// conversions, compares, and FP branches).
package mips

import "fmt"

// Word is one 32-bit instruction or data word in memory order.
type Word uint32

// Register numbers for the 32 general-purpose registers.
const (
	RegZero = 0  // $zero: hardwired zero
	RegAT   = 1  // $at: assembler temporary
	RegV0   = 2  // $v0: result / syscall number
	RegV1   = 3  // $v1
	RegA0   = 4  // $a0: first argument
	RegA1   = 5  // $a1
	RegA2   = 6  // $a2
	RegA3   = 7  // $a3
	RegT0   = 8  // $t0
	RegT7   = 15 // $t7
	RegS0   = 16 // $s0
	RegS7   = 23 // $s7
	RegT8   = 24 // $t8
	RegT9   = 25 // $t9
	RegK0   = 26 // $k0: kernel reserved
	RegK1   = 27 // $k1
	RegGP   = 28 // $gp: global pointer
	RegSP   = 29 // $sp: stack pointer
	RegFP   = 30 // $fp / $s8
	RegRA   = 31 // $ra: return address
)

// regNames maps register number to conventional assembler name.
var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the conventional name ("$sp") for GPR r.
func RegName(r uint8) string {
	if r < 32 {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$?%d", r)
}

// RegNumber resolves a register name without the leading '$' — either a
// conventional name ("sp", "t3", "s8") or a plain number ("29").
func RegNumber(name string) (uint8, bool) {
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	if name == "s8" {
		return RegFP, true
	}
	var v int
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil && v >= 0 && v < 32 && fmt.Sprintf("%d", v) == name {
		return uint8(v), true
	}
	return 0, false
}

// FPRegName returns the name ("$f12") of FP register r. Out-of-range
// numbers render with the same "$?" marker RegName uses, so an invalid
// encoding can never disassemble to a plausible-looking register.
func FPRegName(r uint8) string {
	if r < 32 {
		return fmt.Sprintf("$f%d", r)
	}
	return fmt.Sprintf("$?f%d", r)
}

// Primary opcode field values (bits 31..26).
const (
	opcSpecial = 0x00
	opcRegimm  = 0x01
	opcJ       = 0x02
	opcJAL     = 0x03
	opcBEQ     = 0x04
	opcBNE     = 0x05
	opcBLEZ    = 0x06
	opcBGTZ    = 0x07
	opcADDI    = 0x08
	opcADDIU   = 0x09
	opcSLTI    = 0x0A
	opcSLTIU   = 0x0B
	opcANDI    = 0x0C
	opcORI     = 0x0D
	opcXORI    = 0x0E
	opcLUI     = 0x0F
	opcCOP1    = 0x11
	opcLB      = 0x20
	opcLH      = 0x21
	opcLWL     = 0x22
	opcLW      = 0x23
	opcLBU     = 0x24
	opcLHU     = 0x25
	opcLWR     = 0x26
	opcSB      = 0x28
	opcSH      = 0x29
	opcSWL     = 0x2A
	opcSW      = 0x2B
	opcSWR     = 0x2E
	opcLWC1    = 0x31
	opcSWC1    = 0x39
)

// SPECIAL funct field values (bits 5..0).
const (
	fnSLL     = 0x00
	fnSRL     = 0x02
	fnSRA     = 0x03
	fnSLLV    = 0x04
	fnSRLV    = 0x06
	fnSRAV    = 0x07
	fnJR      = 0x08
	fnJALR    = 0x09
	fnSYSCALL = 0x0C
	fnBREAK   = 0x0D
	fnMFHI    = 0x10
	fnMTHI    = 0x11
	fnMFLO    = 0x12
	fnMTLO    = 0x13
	fnMULT    = 0x18
	fnMULTU   = 0x19
	fnDIV     = 0x1A
	fnDIVU    = 0x1B
	fnADD     = 0x20
	fnADDU    = 0x21
	fnSUB     = 0x22
	fnSUBU    = 0x23
	fnAND     = 0x24
	fnOR      = 0x25
	fnXOR     = 0x26
	fnNOR     = 0x27
	fnSLT     = 0x2A
	fnSLTU    = 0x2B
)

// REGIMM rt field values.
const (
	riBLTZ   = 0x00
	riBGEZ   = 0x01
	riBLTZAL = 0x10
	riBGEZAL = 0x11
)

// COP1 rs (format) field values.
const (
	copMF  = 0x00 // MFC1
	copMT  = 0x04 // MTC1
	copBC  = 0x08 // BC1F/BC1T
	fmtS   = 0x10 // single precision
	fmtD   = 0x11 // double precision
	fmtW   = 0x14 // fixed-point word
	fnFADD = 0x00
	fnFSUB = 0x01
	fnFMUL = 0x02
	fnFDIV = 0x03
	fnFABS = 0x05
	fnFMOV = 0x06
	fnFNEG = 0x07
	fnCVTS = 0x20
	fnCVTD = 0x21
	fnCVTW = 0x24
	fnCEQ  = 0x32
	fnCLT  = 0x3C
	fnCLE  = 0x3E
)
