package mips

import "ccrp/internal/isa"

// Pseudo-instruction expansions for the assembler backend, matching the
// conventional SPIM set: move/not/neg, li/la through $at-free forms,
// compare-and-branch through $at, mul/rem through HI/LO, and double-word
// FP memory access.

// encodeMem handles loads and stores, in both the direct "rt, off(base)"
// form and the symbol form "rt, sym(+off)", which expands through $at.
func (e *encoder) encodeMem(op Op) ([]isa.Word, error) {
	if err := e.nargs(2); err != nil {
		return nil, err
	}
	isFP := op == OpLWC1 || op == OpSWC1
	var rt uint8
	var err error
	if isFP {
		rt, err = e.freg(0)
	} else {
		rt, err = e.reg(0)
	}
	if err != nil {
		return nil, err
	}
	off, base, direct, err := parseMem(e.args[1], e.eval)
	if err != nil {
		return nil, e.errf("%v", err)
	}
	if direct {
		if !fitsInt16(off) {
			return nil, e.errf("offset %#x out of 16-bit range", off)
		}
		return []isa.Word{word(Inst{Op: op, Rt: rt, Rs: base, Imm: uint16(off)})}, nil
	}
	// Symbol form: lui $at, adjusted-hi(addr); op rt, lo(addr)($at).
	// The load offset is sign-extended, so the high half is adjusted up
	// when the low half's sign bit is set.
	addr, err := e.expr(1)
	if err != nil {
		return nil, err
	}
	lo := addr & 0xFFFF
	hi := (addr + 0x8000) >> 16
	return []isa.Word{
		word(Inst{Op: OpLUI, Rt: RegAT, Imm: uint16(hi)}),
		word(Inst{Op: op, Rt: rt, Rs: RegAT, Imm: uint16(lo)}),
	}, nil
}

// encodeDiv handles both the real two-operand div/divu and the
// three-operand pseudo (div rd, rs, rt -> div rs, rt; mflo rd).
func (e *encoder) encodeDiv() ([]isa.Word, error) {
	op := OpDIV
	if e.op == "divu" {
		op = OpDIVU
	}
	switch len(e.args) {
	case 2:
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: op, Rs: rs, Rt: rt})}, nil
	case 3:
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{
			word(Inst{Op: op, Rs: rs, Rt: rt}),
			word(Inst{Op: OpMFLO, Rd: rd}),
		}, nil
	}
	return nil, e.errf("expected 2 or 3 operands")
}

// encodePseudo handles the remaining pseudo-instructions.
func (e *encoder) encodePseudo() ([]isa.Word, error) {
	switch e.op {
	case "move":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: OpADDU, Rd: rd, Rs: rs, Rt: RegZero})}, nil
	case "not":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: OpNOR, Rd: rd, Rs: rs, Rt: RegZero})}, nil
	case "neg", "negu":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		op := OpSUB
		if e.op == "negu" {
			op = OpSUBU
		}
		return []isa.Word{word(Inst{Op: op, Rd: rd, Rs: RegZero, Rt: rt})}, nil
	case "li":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		switch {
		case fitsInt16(v):
			return []isa.Word{word(Inst{Op: OpADDIU, Rt: rt, Rs: RegZero, Imm: uint16(v)})}, nil
		case fitsUint16(v):
			return []isa.Word{word(Inst{Op: OpORI, Rt: rt, Rs: RegZero, Imm: uint16(v)})}, nil
		default:
			return []isa.Word{
				word(Inst{Op: OpLUI, Rt: rt, Imm: uint16(v >> 16)}),
				word(Inst{Op: OpORI, Rt: rt, Rs: rt, Imm: uint16(v)}),
			}, nil
		}
	case "la":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{
			word(Inst{Op: OpLUI, Rt: rt, Imm: uint16(v >> 16)}),
			word(Inst{Op: OpORI, Rt: rt, Rs: rt, Imm: uint16(v)}),
		}, nil
	case "b":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		tgt, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, e.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: OpBEQ, Imm: off})}, nil
	case "beqz", "bnez":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, e.addr)
		if err != nil {
			return nil, err
		}
		op := OpBEQ
		if e.op == "bnez" {
			op = OpBNE
		}
		return []isa.Word{word(Inst{Op: op, Rs: rs, Imm: off})}, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return e.encodeCmpBranch()
	case "mul", "rem":
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		moveOp := OpMFLO
		if e.op == "rem" {
			moveOp = OpMFHI
		}
		first := OpMULT
		if e.op == "rem" {
			first = OpDIV
		}
		return []isa.Word{
			word(Inst{Op: first, Rs: rs, Rt: rt}),
			word(Inst{Op: moveOp, Rd: rd}),
		}, nil
	case "l.d", "s.d":
		return e.encodeDoubleMem()
	}
	return nil, e.errf("unknown instruction")
}

// encodeCmpBranch expands the two-register compare-and-branch pseudos
// through $at: slt(u) $at, a, b ; bne/beq $at, $zero, target.
func (e *encoder) encodeCmpBranch() ([]isa.Word, error) {
	if err := e.nargs(3); err != nil {
		return nil, err
	}
	rs, err := e.reg(0)
	if err != nil {
		return nil, err
	}
	rt, err := e.reg(1)
	if err != nil {
		return nil, err
	}
	tgt, err := e.expr(2)
	if err != nil {
		return nil, err
	}
	// The branch is the second word of the expansion.
	off, err := e.branchOff(tgt, e.addr+4)
	if err != nil {
		return nil, err
	}
	sltOp := OpSLT
	if e.op[len(e.op)-1] == 'u' {
		sltOp = OpSLTU
	}
	var a, b uint8
	var brOp Op
	switch e.op {
	case "blt", "bltu": // rs < rt
		a, b, brOp = rs, rt, OpBNE
	case "bge", "bgeu": // !(rs < rt)
		a, b, brOp = rs, rt, OpBEQ
	case "bgt", "bgtu": // rt < rs
		a, b, brOp = rt, rs, OpBNE
	case "ble", "bleu": // !(rt < rs)
		a, b, brOp = rt, rs, OpBEQ
	}
	return []isa.Word{
		word(Inst{Op: sltOp, Rd: RegAT, Rs: a, Rt: b}),
		word(Inst{Op: brOp, Rs: RegAT, Rt: RegZero, Imm: off}),
	}, nil
}

// encodeDoubleMem expands l.d/s.d into a pair of single-word FP accesses.
// Little-endian doubles: the even register holds the low word at the
// lower address.
func (e *encoder) encodeDoubleMem() ([]isa.Word, error) {
	if err := e.nargs(2); err != nil {
		return nil, err
	}
	ft, err := e.freg(0)
	if err != nil {
		return nil, err
	}
	if !evenFPReg(ft) {
		return nil, e.errf("double-precision register %d must be even", ft)
	}
	off, base, direct, err := parseMem(e.args[1], e.eval)
	if err != nil {
		return nil, e.errf("%v", err)
	}
	if !direct {
		return nil, e.errf("symbol form not supported; load the address first")
	}
	if !fitsInt16(off) || !fitsInt16(off+4) {
		return nil, e.errf("offset %#x out of 16-bit range", off)
	}
	op := OpLWC1
	if e.op == "s.d" {
		op = OpSWC1
	}
	return []isa.Word{
		word(Inst{Op: op, Rt: ft, Rs: base, Imm: uint16(off)}),
		word(Inst{Op: op, Rt: ft + 1, Rs: base, Imm: uint16(off + 4)}),
	}, nil
}
