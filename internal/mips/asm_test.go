package mips_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"ccrp/internal/asm"
	"ccrp/internal/mips"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func textWords(p *asm.Program) []mips.Word {
	words := make([]mips.Word, 0, len(p.Text)/4)
	for i := 0; i+4 <= len(p.Text); i += 4 {
		words = append(words, mips.Word(binary.LittleEndian.Uint32(p.Text[i:])))
	}
	return words
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		add  $t0, $t1, $t2
		addiu $sp, $sp, -32
		lw   $a0, 8($sp)
		sw   $ra, 28($sp)
		sll  $t0, $t0, 2
		jr   $ra
		nop
	`)
	words := textWords(p)
	wantAsm := []string{
		"add $t0, $t1, $t2",
		"addiu $sp, $sp, -32",
		"lw $a0, 8($sp)",
		"sw $ra, 28($sp)",
		"sll $t0, $t0, 2",
		"jr $ra",
		"nop",
	}
	if len(words) != len(wantAsm) {
		t.Fatalf("got %d words, want %d", len(words), len(wantAsm))
	}
	for i, w := range words {
		if got := mips.Disassemble(w, uint32(i*4)); got != wantAsm[i] {
			t.Errorf("word %d: %q, want %q", i, got, wantAsm[i])
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		.text
loop:	addiu $t0, $t0, -1
		bne   $t0, $zero, loop
		nop
		beq   $t1, $t2, done
		nop
done:	jr $ra
		nop
	`)
	words := textWords(p)
	// bne at 0x4, target 0x0: offset = (0 - 8)/4 = -2.
	bne := mips.Decode(words[1])
	if bne.Op != mips.OpBNE || bne.SImm() != -2 {
		t.Errorf("bne encoded wrong: %+v", bne)
	}
	if got := bne.BranchTarget(4); got != 0 {
		t.Errorf("bne target = %#x", got)
	}
	beq := mips.Decode(words[3])
	if got := beq.BranchTarget(12); got != p.Symbols["done"] {
		t.Errorf("beq target = %#x, want %#x", got, p.Symbols["done"])
	}
}

func TestJumpEncoding(t *testing.T) {
	p := mustAssemble(t, `
		.text
__start:
		jal func
		nop
		j __start
		nop
func:	jr $ra
		nop
	`)
	words := textWords(p)
	jal := mips.Decode(words[0])
	if got := jal.JumpTarget(0); got != p.Symbols["func"] {
		t.Errorf("jal target = %#x, want %#x", got, p.Symbols["func"])
	}
	if p.Entry != 0 {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestLiForms(t *testing.T) {
	p := mustAssemble(t, `
		.text
		li $t0, 5        # addiu
		li $t1, -3       # addiu
		li $t2, 0xFFFF   # ori
		li $t3, 0x12345678  # lui+ori
	`)
	words := textWords(p)
	if len(words) != 5 {
		t.Fatalf("want 5 words, got %d", len(words))
	}
	if i := mips.Decode(words[0]); i.Op != mips.OpADDIU || i.SImm() != 5 {
		t.Errorf("li 5: %v", mips.Disassemble(words[0], 0))
	}
	if i := mips.Decode(words[2]); i.Op != mips.OpORI || i.ZImm() != 0xFFFF {
		t.Errorf("li 0xFFFF: %v", mips.Disassemble(words[2], 0))
	}
	if i := mips.Decode(words[3]); i.Op != mips.OpLUI || i.ZImm() != 0x1234 {
		t.Errorf("li32 hi: %v", mips.Disassemble(words[3], 0))
	}
	if i := mips.Decode(words[4]); i.Op != mips.OpORI || i.ZImm() != 0x5678 {
		t.Errorf("li32 lo: %v", mips.Disassemble(words[4], 0))
	}
}

func TestLaAndDataSymbols(t *testing.T) {
	p := mustAssemble(t, `
		.data
var:	.word 42, 43
msg:	.asciiz "hi\n"
		.text
		la $t0, var
		lw $t1, var
		lw $t2, msg+4
	`)
	if got := p.Symbols["var"]; got != asm.DataBase {
		t.Errorf("var = %#x, want %#x", got, asm.DataBase)
	}
	if got := p.Symbols["msg"]; got != asm.DataBase+8 {
		t.Errorf("msg = %#x", got)
	}
	if len(p.Data) != 8+4 {
		t.Fatalf("data len = %d", len(p.Data))
	}
	if binary.LittleEndian.Uint32(p.Data) != 42 {
		t.Errorf("data word 0 = %d", binary.LittleEndian.Uint32(p.Data))
	}
	if string(p.Data[8:11]) != "hi\n" || p.Data[11] != 0 {
		t.Errorf("string data = %q", p.Data[8:])
	}
	words := textWords(p)
	// la var: lui $t0, hi; ori $t0, $t0, lo
	lui := mips.Decode(words[0])
	ori := mips.Decode(words[1])
	if lui.Op != mips.OpLUI || uint32(lui.Imm)<<16|uint32(ori.Imm) != asm.DataBase {
		t.Errorf("la wrong: %s / %s", mips.Disassemble(words[0], 0), mips.Disassemble(words[1], 4))
	}
	// lw var: lui $at, adjhi; lw $t1, lo($at)
	lw := mips.Decode(words[3])
	if lw.Op != mips.OpLW || lw.Rs != mips.RegAT {
		t.Errorf("symbol lw wrong: %s", mips.Disassemble(words[3], 12))
	}
	hi := uint32(mips.Decode(words[2]).Imm)
	if hi<<16+uint32(int32(int16(lw.Imm))) != asm.DataBase {
		t.Errorf("symbol lw address = %#x", hi<<16+uint32(int32(int16(lw.Imm))))
	}
}

func TestHiLoAdjustment(t *testing.T) {
	// An address whose low half has the sign bit set must use an
	// adjusted %hi in the lui+lw form.
	p := mustAssemble(t, `
		.data
		.space 0x9000
var:	.word 7
		.text
		lw $t1, var
	`)
	addr := p.Symbols["var"]
	if addr&0x8000 == 0 {
		t.Fatalf("test premise: low half sign bit should be set, addr=%#x", addr)
	}
	words := textWords(p)
	hi := uint32(mips.Decode(words[0]).Imm)
	lo := int32(int16(mips.Decode(words[1]).Imm))
	if got := hi<<16 + uint32(lo); got != addr {
		t.Errorf("reconstructed address %#x, want %#x", got, addr)
	}
}

func TestCmpBranchExpansion(t *testing.T) {
	p := mustAssemble(t, `
		.text
top:	blt $a0, $a1, top
		nop
		bgeu $t0, $t1, top
		nop
	`)
	words := textWords(p)
	slt := mips.Decode(words[0])
	if slt.Op != mips.OpSLT || slt.Rd != mips.RegAT || slt.Rs != mips.RegA0 || slt.Rt != mips.RegA1 {
		t.Errorf("blt slt wrong: %s", mips.Disassemble(words[0], 0))
	}
	bne := mips.Decode(words[1])
	if bne.Op != mips.OpBNE || bne.BranchTarget(4) != 0 {
		t.Errorf("blt bne wrong: %s", mips.Disassemble(words[1], 4))
	}
	// words[2] is the delay-slot nop; bgeu expands at words[3..4].
	sltu := mips.Decode(words[3])
	if sltu.Op != mips.OpSLTU {
		t.Errorf("bgeu sltu wrong: %s", mips.Disassemble(words[3], 12))
	}
	beq := mips.Decode(words[4])
	if beq.Op != mips.OpBEQ {
		t.Errorf("bgeu beq wrong: %s", mips.Disassemble(words[4], 16))
	}
}

func TestMulDivPseudos(t *testing.T) {
	p := mustAssemble(t, `
		.text
		mul $t0, $t1, $t2
		div $t3, $t4, $t5
		rem $t6, $t7, $t8
		div $s0, $s1      # real 2-operand div
	`)
	words := textWords(p)
	if len(words) != 7 {
		t.Fatalf("want 7 words, got %d", len(words))
	}
	seq := []mips.Op{mips.OpMULT, mips.OpMFLO, mips.OpDIV, mips.OpMFLO,
		mips.OpDIV, mips.OpMFHI, mips.OpDIV}
	for i, want := range seq {
		if got := mips.Decode(words[i]).Op; got != want {
			t.Errorf("word %d op = %v, want %v", i, got, want)
		}
	}
}

func TestFPInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		lwc1 $f0, 0($a0)
		l.d  $f2, 8($a0)
		add.d $f4, $f2, $f0
		mul.s $f6, $f0, $f1
		cvt.d.w $f8, $f0
		c.lt.d $f4, $f8
		bc1t out
		nop
		mfc1 $t0, $f4
		s.d  $f4, 16($a0)
out:	jr $ra
		nop
	`)
	words := textWords(p)
	ld1 := mips.Decode(words[1])
	ld2 := mips.Decode(words[2])
	if ld1.Op != mips.OpLWC1 || ld1.Ft() != 2 || ld1.SImm() != 8 {
		t.Errorf("l.d low: %s", mips.Disassemble(words[1], 4))
	}
	if ld2.Op != mips.OpLWC1 || ld2.Ft() != 3 || ld2.SImm() != 12 {
		t.Errorf("l.d high: %s", mips.Disassemble(words[2], 8))
	}
	addd := mips.Decode(words[3])
	if addd.Op != mips.OpADDD || addd.Fd() != 4 || addd.Fs() != 2 || addd.Ft() != 0 {
		t.Errorf("add.d: %s", mips.Disassemble(words[3], 12))
	}
}

func TestOddDoubleRegisterRejected(t *testing.T) {
	if _, err := asm.Assemble("t", "l.d $f1, 0($a0)"); err == nil {
		t.Error("odd double register accepted")
	}
}

func TestEquAndAlign(t *testing.T) {
	p := mustAssemble(t, `
		.equ N, 25
		.equ SIZE, N+7
		.data
		.byte 1
		.align 2
w:		.word SIZE
		.text
		li $t0, N
	`)
	if p.Symbols["w"] != asm.DataBase+4 {
		t.Errorf("aligned word at %#x", p.Symbols["w"])
	}
	if binary.LittleEndian.Uint32(p.Data[4:]) != 32 {
		t.Errorf("SIZE = %d", binary.LittleEndian.Uint32(p.Data[4:]))
	}
	li := mips.Decode(textWords(p)[0])
	if li.SImm() != 25 {
		t.Errorf("li N = %d", li.SImm())
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined symbol", "j nowhere", "undefined symbol"},
		{"duplicate label", "a:\na:\n nop", "duplicate"},
		{"bad register", "add $t0, $q9, $t1", "unknown register"},
		{"imm range", "addiu $t0, $t0, 40000", "out of 16-bit range"},
		{"branch range", ".text\nb far\n.space 300000\nfar: nop", "out of range"},
		{"instr in data", ".data\nadd $t0, $t0, $t0", "outside .text"},
		{"unknown op", "frob $t0", "unknown instruction"},
		{"unknown directive", ".frobnicate 3", "unknown directive"},
		{"li with forward symbol", ".text\nli $t0, fwd\nfwd: nop", "use la"},
		{"bad operand count", "add $t0, $t1", "expected 3 operands"},
		{"bad string", `.ascii "unterminated`, "quoted string"},
		{"bad escape", `.ascii "\q"`, "unknown escape"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := asm.Assemble("t", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	p := mustAssemble(t, `
# full line comment
		.text    # trailing comment
		li $t0, '#'   # char literal containing hash
x:	y:	nop           # two labels one line
	`)
	if p.Symbols["x"] != p.Symbols["y"] {
		t.Error("stacked labels differ")
	}
	li := mips.Decode(textWords(p)[0])
	if li.SImm() != '#' {
		t.Errorf("char literal = %d", li.SImm())
	}
}

func TestSymbolsSorted(t *testing.T) {
	p := mustAssemble(t, `
		.text
b:	nop
a:	nop
	`)
	got := p.SymbolsSorted()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("sorted = %v", got)
	}
}

func TestEntrySymbol(t *testing.T) {
	p := mustAssemble(t, `
		.text
		nop
__start: nop
	`)
	if p.Entry != 4 {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestTextWordCount(t *testing.T) {
	p := mustAssemble(t, ".text\nnop\nnop\nnop")
	if p.TextWords() != 3 {
		t.Errorf("TextWords = %d", p.TextWords())
	}
}

// Round-trip: every word the assembler emits must disassemble to
// something the assembler accepts again (on supported forms).
func TestAssembleDisassembleAssemble(t *testing.T) {
	src := `
		.text
		addu $v0, $a0, $a1
		and $t0, $t1, $t2
		xor $s0, $s1, $s2
		sltu $t3, $t4, $t5
		srl $t6, $t7, 7
		sllv $t0, $t1, $t2
		lbu $a2, 3($gp)
		sh $a3, -2($fp)
		lui $t9, 0xBEEF
		mult $a0, $a1
		mfhi $v1
	`
	p := mustAssemble(t, src)
	var b strings.Builder
	b.WriteString(".text\n")
	for i, w := range textWords(p) {
		b.WriteString(mips.Disassemble(w, uint32(i*4)))
		b.WriteString("\n")
	}
	p2 := mustAssemble(t, b.String())
	if string(p.Text) != string(p2.Text) {
		t.Error("asm -> disasm -> asm changed the text section")
	}
}

func BenchmarkAssemble(b *testing.B) {
	code := ".text\nl0: nop\n" + strings.Repeat("addu $t0, $t1, $t2\nlw $a0, 4($sp)\nbne $t0, $zero, l0\nnop\n", 500)
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble("bench", code); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpressionArithmetic(t *testing.T) {
	p := mustAssemble(t, `
	.equ A, 6
	.equ B, 7
	.data
w1:	.word A*B          # 42
w2:	.word A+B*2        # 20: * binds tighter
w3:	.word (A+B)*2      # 26
w4:	.word A*B-2        # 40
w5:	.word 0x10*4       # 64
	.text
	nop
`)
	want := []uint32{42, 20, 26, 40, 64}
	for i, w := range want {
		got := binary.LittleEndian.Uint32(p.Data[i*4:])
		if got != w {
			t.Errorf("w%d = %d, want %d", i+1, got, w)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []string{
		".data\nw: .word 1+",
		".data\nw: .word (1+2",
		".data\nw: .word %hi(",
		".data\nw: .word 'ab'",
		".data\nw: .word 5 5",
	}
	for _, src := range cases {
		if _, err := asm.Assemble("t", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestHiLoOperators(t *testing.T) {
	p := mustAssemble(t, `
	.data
big:	.word 0
	.text
	lui $t0, %hi(0x12348765)
	ori $t0, $t0, %lo(0x12348765)
`)
	words := textWords(p)
	if got := mips.Decode(words[0]).ZImm(); got != 0x1234 {
		t.Errorf("%%hi = %#x", got)
	}
	if got := mips.Decode(words[1]).ZImm(); got != 0x8765 {
		t.Errorf("%%lo = %#x", got)
	}
}

func TestNegativeAndCharLiterals(t *testing.T) {
	p := mustAssemble(t, `
	.data
b:	.byte -1, 'A', '\n', '\\'
h:	.half -2
	.text
	nop
`)
	if p.Data[0] != 0xFF || p.Data[1] != 'A' || p.Data[2] != '\n' || p.Data[3] != '\\' {
		t.Errorf("bytes = % x", p.Data[:4])
	}
	if binary.LittleEndian.Uint16(p.Data[4:]) != 0xFFFE {
		t.Errorf("half = %#x", binary.LittleEndian.Uint16(p.Data[4:]))
	}
}

func TestFloatDoubleDirectives(t *testing.T) {
	p := mustAssemble(t, `
	.data
f:	.float 1.5
d:	.double -0.25
	.text
	nop
`)
	if got := binary.LittleEndian.Uint32(p.Data); got != 0x3FC00000 {
		t.Errorf("float bits = %#x", got)
	}
	if got := binary.LittleEndian.Uint64(p.Data[4:]); got != 0xBFD0000000000000 {
		t.Errorf("double bits = %#x", got)
	}
}

func TestSetDirectivesIgnored(t *testing.T) {
	p := mustAssemble(t, `
	.set noreorder
	.globl __start
	.ent __start
	.text
__start:
	nop
	.end __start
`)
	if p.TextWords() != 1 {
		t.Errorf("words = %d", p.TextWords())
	}
}

func TestJalrForms(t *testing.T) {
	p := mustAssemble(t, ".text\njalr $t0\njalr $t1, $t2\n")
	w := textWords(p)
	i0 := mips.Decode(w[0])
	if i0.Op != mips.OpJALR || i0.Rd != mips.RegRA || i0.Rs != mips.RegT0 {
		t.Errorf("jalr rs: %s", mips.Disassemble(w[0], 0))
	}
	i1 := mips.Decode(w[1])
	if i1.Op != mips.OpJALR || i1.Rd != 9 || i1.Rs != 10 {
		t.Errorf("jalr rd, rs: %s", mips.Disassemble(w[1], 4))
	}
}

func TestMemOperandVariants(t *testing.T) {
	p := mustAssemble(t, `
	.equ OFF, 8
	.data
arr:	.space 64
	.text
	lw $t0, ($sp)          # zero offset
	lw $t1, OFF($sp)       # equ constant offset
	lw $t2, OFF+4($sp)     # expression offset
	sw $t3, -4($fp)        # negative offset
`)
	w := textWords(p)
	if got := mips.Decode(w[0]).SImm(); got != 0 {
		t.Errorf("($sp) imm = %d", got)
	}
	if got := mips.Decode(w[1]).SImm(); got != 8 {
		t.Errorf("OFF($sp) imm = %d", got)
	}
	if got := mips.Decode(w[2]).SImm(); got != 12 {
		t.Errorf("OFF+4($sp) imm = %d", got)
	}
	if got := mips.Decode(w[3]).SImm(); got != -4 {
		t.Errorf("-4($fp) imm = %d", got)
	}
}

func TestTextPaddingDirectivesInText(t *testing.T) {
	p := mustAssemble(t, `
	.text
	nop
	.align 3
after:	nop
`)
	if p.Symbols["after"] != 8 {
		t.Errorf("after = %#x, want 8", p.Symbols["after"])
	}
	if p.TextWords() != 3 {
		t.Errorf("words = %d", p.TextWords())
	}
}

func TestPseudoOperandErrors(t *testing.T) {
	cases := []string{
		"move $t0",
		"move $t0, 5",
		"not $t0, $t1, $t2",
		"neg $t0",
		"li $t0",
		"li 5, $t0",
		"la $t0",
		"la 5, x",
		"b",
		"beqz $t0",
		"bnez $t0, $t1, x",
		"blt $t0, $t1",
		"blt $t0, 5, x",
		"mul $t0, $t1",
		"rem $t0",
		"div",
		"l.d $f2",
		"s.d $f2, 0($a0), 4",
		"jalr",
		"jalr $t0, $t1, $t2",
		"mult $t0",
		"mfhi",
		"jr",
		"lui $t0",
		"lui $t0, 0x12345",
		"j",
		"beq $t0, $t1",
		"blez $t0",
		"bc1t",
		"mfc1 $t0",
		"add.s $f0, $f1",
		"mov.s $f0",
		"c.eq.s $f0",
		"sll $t0, $t1",
		"sll $t0, $t1, 32",
		"sllv $t0, $t1",
		"andi $t0, $t1, 0x10000",
		"syscall 1 2",
	}
	for _, src := range cases {
		if _, err := asm.Assemble("t", ".text\n"+src+"\n"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestJumpRegionError(t *testing.T) {
	// Jump targets must stay in the current 256MB region.
	if _, err := asm.Assemble("t", ".text\nj 0x10000004\n"); err == nil {
		t.Error("cross-region jump accepted")
	}
	if _, err := asm.Assemble("t", ".text\nj 0x2\n"); err == nil {
		t.Error("unaligned jump accepted")
	}
}

func TestSectionOverflowChecks(t *testing.T) {
	// A .space larger than the data segment must be rejected.
	if _, err := asm.Assemble("t", ".data\n.space 0x1000000\n.text\nnop"); err == nil {
		t.Error("oversized data accepted")
	}
}
