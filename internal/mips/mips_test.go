package mips

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		num  uint8
		name string
	}{
		{0, "$zero"}, {1, "$at"}, {2, "$v0"}, {4, "$a0"}, {8, "$t0"},
		{16, "$s0"}, {24, "$t8"}, {28, "$gp"}, {29, "$sp"}, {30, "$fp"}, {31, "$ra"},
	}
	for _, c := range cases {
		if got := RegName(c.num); got != c.name {
			t.Errorf("RegName(%d) = %q, want %q", c.num, got, c.name)
		}
		n, ok := RegNumber(c.name[1:])
		if !ok || n != c.num {
			t.Errorf("RegNumber(%q) = %d,%v, want %d", c.name[1:], n, ok, c.num)
		}
	}
	if n, ok := RegNumber("29"); !ok || n != 29 {
		t.Errorf("numeric RegNumber failed: %d %v", n, ok)
	}
	if n, ok := RegNumber("s8"); !ok || n != RegFP {
		t.Errorf("RegNumber(s8) = %d,%v", n, ok)
	}
	if _, ok := RegNumber("t99"); ok {
		t.Error("RegNumber accepted bogus name")
	}
	if _, ok := RegNumber("32"); ok {
		t.Error("RegNumber accepted out-of-range number")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(1); int(op) < NumOps(); op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName accepted unknown mnemonic")
	}
}

// Known golden encodings cross-checked against the MIPS R2000 manual.
func TestDecodeGolden(t *testing.T) {
	cases := []struct {
		raw  Word
		want string
	}{
		{0x00000000, "nop"},                      // sll $zero,$zero,0
		{0x012A4020, "add $t0, $t1, $t2"},        // 000000 01001 01010 01000 00000 100000
		{0x012A4022, "sub $t0, $t1, $t2"},        // funct 0x22
		{0x8D280004, "lw $t0, 4($t1)"},           // 100011 01001 01000 imm=4
		{0xAD28FFFC, "sw $t0, -4($t1)"},          // 101011, imm = -4
		{0x3C081234, "lui $t0, 0x1234"},          // 001111 00000 01000
		{0x35295678, "ori $t1, $t1, 0x5678"},     // 001101
		{0x1109000F, "beq $t0, $t1, 0x00001040"}, // at pc=0x1000, off 15<<2
		{0x08000400, "j 0x00001000"},             // 000010 target 0x400
		{0x0C000400, "jal 0x00001000"},
		{0x03E00008, "jr $ra"},
		{0x0000000C, "syscall"},
		{0x00084080, "sll $t0, $t0, 2"},
		{0x00094042, "srl $t0, $t1, 1"},
		{0x012A001A, "div $t1, $t2"},
		{0x00004010, "mfhi $t0"},
		{0x00004012, "mflo $t0"},
		{0x2508FFFF, "addiu $t0, $t0, -1"},
	}
	for _, c := range cases {
		if got := Disassemble(c.raw, 0x1000); got != c.want {
			t.Errorf("Disassemble(%08x) = %q, want %q", uint32(c.raw), got, c.want)
		}
	}
}

func TestRegimmDecode(t *testing.T) {
	// bltz $t0, .-4 : opcode 0x01, rs=8, rt=0x00, imm=-2
	w := Word(0x01<<26 | 8<<21 | 0x00<<16 | 0xFFFE)
	i := Decode(w)
	if i.Op != OpBLTZ {
		t.Fatalf("op = %v", i.Op)
	}
	if got := i.BranchTarget(0x1000); got != 0x1000+4-8 {
		t.Fatalf("target = %#x", got)
	}
	w = Word(0x01<<26 | 8<<21 | 0x11<<16 | 0x0001)
	if i := Decode(w); i.Op != OpBGEZAL {
		t.Fatalf("op = %v, want bgezal", i.Op)
	}
}

func TestCop1Decode(t *testing.T) {
	cases := []struct {
		raw  Word
		want Op
	}{
		{Word(0x11<<26 | 0x00<<21 | 5<<16 | 6<<11), OpMFC1},
		{Word(0x11<<26 | 0x04<<21 | 5<<16 | 6<<11), OpMTC1},
		{Word(0x11<<26 | 0x08<<21 | 0<<16 | 0x0010), OpBC1F},
		{Word(0x11<<26 | 0x08<<21 | 1<<16 | 0x0010), OpBC1T},
		{Word(0x11<<26 | 0x10<<21 | 2<<16 | 4<<11 | 6<<6 | 0x00), OpADDS},
		{Word(0x11<<26 | 0x11<<21 | 2<<16 | 4<<11 | 6<<6 | 0x03), OpDIVD},
		{Word(0x11<<26 | 0x14<<21 | 0<<16 | 4<<11 | 6<<6 | 0x21), OpCVTDW},
		{Word(0x11<<26 | 0x11<<21 | 2<<16 | 4<<11 | 0<<6 | 0x3C), OpCLTD},
	}
	for _, c := range cases {
		if got := Decode(c.raw).Op; got != c.want {
			t.Errorf("Decode(%08x).Op = %v, want %v", uint32(c.raw), got, c.want)
		}
	}
}

func TestClassification(t *testing.T) {
	if !Decode(0x8D280004).IsLoad() {
		t.Error("lw not classified as load")
	}
	if !Decode(0xAD280004).IsStore() {
		t.Error("sw not classified as store")
	}
	if !Decode(0x1109000F).IsBranch() {
		t.Error("beq not classified as branch")
	}
	if !Decode(0x08000400).IsJump() {
		t.Error("j not classified as jump")
	}
	if !Decode(0x03E00008).HasDelaySlot() {
		t.Error("jr has no delay slot?")
	}
	if Decode(0x012A4020).IsMemOp() {
		t.Error("add classified as memory op")
	}
	if got := Decode(0x012A0018).Op.Class(); got != ClassMulDiv {
		t.Errorf("mult class = %v", got)
	}
}

func TestJumpTargetSegment(t *testing.T) {
	// Jump target keeps the high nibble of PC+4.
	i := Decode(Word(0x02<<26 | 0x0100))
	if got := i.JumpTarget(0x00400000); got != 0x00000400 {
		t.Fatalf("target = %#x", got)
	}
}

// Property: every valid op encodes and decodes back to itself with fields
// preserved (for the fields that op's format actually stores).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(rs, rt, rd, sh uint8, imm uint16, tgt uint32, opRaw uint8) bool {
		op := Op(opRaw%uint8(NumOps()-1)) + 1
		in := Inst{Op: op, Rs: rs & 31, Rt: rt & 31, Rd: rd & 31, Shamt: sh & 31,
			Imm: imm, Target: tgt & 0x03FFFFFF}
		w := Encode(in)
		out := Decode(w)
		if out.Op != op {
			return false
		}
		switch op {
		case OpJ, OpJAL:
			return out.Target == in.Target
		case OpBEQ, OpBNE:
			return out.Rs == in.Rs && out.Rt == in.Rt && out.Imm == in.Imm
		case OpADD, OpADDU, OpSUB, OpSUBU, OpAND, OpOR, OpXOR, OpNOR, OpSLT, OpSLTU:
			return out.Rs == in.Rs && out.Rt == in.Rt && out.Rd == in.Rd
		case OpSLL, OpSRL, OpSRA:
			return out.Rt == in.Rt && out.Rd == in.Rd && out.Shamt == in.Shamt
		case OpBLTZ, OpBGEZ, OpBLTZAL, OpBGEZAL:
			return out.Rs == in.Rs && out.Imm == in.Imm
		case OpLW, OpSW, OpLB, OpSB, OpLH, OpSH, OpLBU, OpLHU, OpLWL, OpLWR, OpSWL, OpSWR, OpLWC1, OpSWC1:
			return out.Rs == in.Rs && out.Rt == in.Rt && out.Imm == in.Imm
		case OpMFC1, OpMTC1:
			return out.Rt == in.Rt && out.Rd == in.Rd
		case OpADDS, OpADDD, OpSUBS, OpSUBD, OpMULS, OpMULD, OpDIVS, OpDIVD:
			return out.Rt == in.Rt && out.Rd == in.Rd && out.Shamt == in.Shamt
		case OpBC1F, OpBC1T:
			return out.Imm == in.Imm
		}
		return true // formats that ignore most fields
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics and always splits fields consistently.
func TestDecodeTotality(t *testing.T) {
	f := func(raw uint32) bool {
		i := Decode(Word(raw))
		return i.Rs == uint8(raw>>21&31) &&
			i.Rt == uint8(raw>>16&31) &&
			i.Rd == uint8(raw>>11&31) &&
			i.Imm == uint16(raw&0xFFFF) &&
			i.Target == raw&0x03FFFFFF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: disassembly is total (never panics, never empty).
func TestDisassembleTotality(t *testing.T) {
	f := func(raw uint32, pc uint32) bool {
		return Disassemble(Word(raw), pc&^3) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	words := []Word{0x012A4020, 0x8D280004, 0x1109000F, 0x3C081234, 0x0C000400}
	for i := 0; i < b.N; i++ {
		_ = Decode(words[i%len(words)])
	}
}

func BenchmarkDisassemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Disassemble(0x012A4020, 0x1000)
	}
}

// Every operation in the table must survive a full synthesize →
// disassemble → re-parse cycle at the mnemonic level.
func TestEveryOpDisassemblesToItsMnemonic(t *testing.T) {
	for op := Op(1); int(op) < NumOps(); op++ {
		in := Inst{Op: op, Rs: 3, Rt: 5, Rd: 7, Shamt: 2, Imm: 0x10, Target: 0x40}
		if op == OpSLL {
			in.Shamt = 1 // avoid the all-zero nop encoding
		}
		w := Encode(in)
		text := Disassemble(w, 0x1000)
		if text == "" || text[0] == '.' {
			t.Errorf("%v disassembles to %q", op, text)
			continue
		}
		// The mnemonic must lead the line.
		mn := text
		if i := indexByte(text, ' '); i > 0 {
			mn = text[:i]
		}
		if mn != op.String() && !(op == OpSLL && mn == "nop") {
			t.Errorf("%v renders as %q", op, mn)
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
