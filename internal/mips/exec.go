package mips

import (
	"math"

	"ccrp/internal/asm"
	"ccrp/internal/isa"
)

// Stall-model parameters, in processor cycles. The multiply/divide
// latencies are the R2000's; the FP latencies approximate the R2010 FPA.
const (
	multLatency  = 12
	divLatency   = 35
	loadUseStall = 1
	fpAddStall   = 1
	fpMulSStall  = 3
	fpMulDStall  = 4
	fpDivSStall  = 11
	fpDivDStall  = 18
	fpCvtStall   = 2
)

// NewExecutor implements isa.ExecBackend.
func (Backend) NewExecutor() isa.Executor { return &executor{lastLoad: -1} }

// executor holds the MIPS-private machine state: the HI/LO pair with its
// interlock timer, the COP1 register file and condition flag, and the
// load-delay tracking for the load-use stall model.
type executor struct {
	fpr       [32]uint32
	hi        uint32
	lo        uint32
	fpc       bool   // FP condition flag
	hiloReady uint64 // icount at which HI/LO are interlock-free
	lastLoad  int16  // register written by the previous load, -1 if none; FPR as 32+n
}

var _ isa.ExecState = (*executor)(nil)

// ReadHI, ReadLO, ReadFPR implement isa.ExecState for debuggers/tests.
func (x *executor) ReadHI() uint32         { return x.hi }
func (x *executor) ReadLO() uint32         { return x.lo }
func (x *executor) ReadFPR(r uint8) uint32 { return x.fpr[r&31] }

// Reset initialises the R2000 ABI state on a fresh machine.
func (x *executor) Reset(c isa.CPU) {
	x.lastLoad = -1
	c.SetReg(RegSP, asm.StackTop)
	c.SetReg(RegGP, asm.DataBase+0x8000)
}

// Step executes a single instruction, including its branch-delay-slot PC
// sequencing (pc, npc advance as a pair per MIPS-I).
func (x *executor) Step(c isa.CPU) error {
	raw, err := c.FetchWord(c.PC())
	if err != nil {
		return err
	}
	inst := Decode(Word(raw))
	if inst.Op == OpInvalid {
		return c.Faultf(isa.ErrInvalidOp, "word %#08x", uint32(raw))
	}
	c.CountClass(inst.Op.Class())

	// Load-use interlock: one stall cycle if this instruction sources the
	// register the previous instruction loaded.
	if x.lastLoad >= 0 && usesReg(inst, x.lastLoad) {
		c.AddStalls(loadUseStall)
	}
	x.lastLoad = -1

	pc := c.PC()
	taken := false
	var target uint32

	switch inst.Op {
	// --- integer ALU ---
	case OpADD:
		a, b := int32(c.Reg(inst.Rs)), int32(c.Reg(inst.Rt))
		s := a + b
		if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
			return c.Faultf(isa.ErrOverflow, "add")
		}
		c.SetReg(inst.Rd, uint32(s))
	case OpADDU:
		c.SetReg(inst.Rd, c.Reg(inst.Rs)+c.Reg(inst.Rt))
	case OpSUB:
		a, b := int32(c.Reg(inst.Rs)), int32(c.Reg(inst.Rt))
		s := a - b
		if (a >= 0) != (b >= 0) && (s >= 0) != (a >= 0) {
			return c.Faultf(isa.ErrOverflow, "sub")
		}
		c.SetReg(inst.Rd, uint32(s))
	case OpSUBU:
		c.SetReg(inst.Rd, c.Reg(inst.Rs)-c.Reg(inst.Rt))
	case OpAND:
		c.SetReg(inst.Rd, c.Reg(inst.Rs)&c.Reg(inst.Rt))
	case OpOR:
		c.SetReg(inst.Rd, c.Reg(inst.Rs)|c.Reg(inst.Rt))
	case OpXOR:
		c.SetReg(inst.Rd, c.Reg(inst.Rs)^c.Reg(inst.Rt))
	case OpNOR:
		c.SetReg(inst.Rd, ^(c.Reg(inst.Rs) | c.Reg(inst.Rt)))
	case OpSLT:
		c.SetReg(inst.Rd, b2u(int32(c.Reg(inst.Rs)) < int32(c.Reg(inst.Rt))))
	case OpSLTU:
		c.SetReg(inst.Rd, b2u(c.Reg(inst.Rs) < c.Reg(inst.Rt)))
	case OpADDI:
		a, b := int32(c.Reg(inst.Rs)), inst.SImm()
		s := a + b
		if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
			return c.Faultf(isa.ErrOverflow, "addi")
		}
		c.SetReg(inst.Rt, uint32(s))
	case OpADDIU:
		c.SetReg(inst.Rt, c.Reg(inst.Rs)+uint32(inst.SImm()))
	case OpSLTI:
		c.SetReg(inst.Rt, b2u(int32(c.Reg(inst.Rs)) < inst.SImm()))
	case OpSLTIU:
		c.SetReg(inst.Rt, b2u(c.Reg(inst.Rs) < uint32(inst.SImm())))
	case OpANDI:
		c.SetReg(inst.Rt, c.Reg(inst.Rs)&inst.ZImm())
	case OpORI:
		c.SetReg(inst.Rt, c.Reg(inst.Rs)|inst.ZImm())
	case OpXORI:
		c.SetReg(inst.Rt, c.Reg(inst.Rs)^inst.ZImm())
	case OpLUI:
		c.SetReg(inst.Rt, inst.ZImm()<<16)

	// --- shifts ---
	case OpSLL:
		c.SetReg(inst.Rd, c.Reg(inst.Rt)<<inst.Shamt)
	case OpSRL:
		c.SetReg(inst.Rd, c.Reg(inst.Rt)>>inst.Shamt)
	case OpSRA:
		c.SetReg(inst.Rd, uint32(int32(c.Reg(inst.Rt))>>inst.Shamt))
	case OpSLLV:
		c.SetReg(inst.Rd, c.Reg(inst.Rt)<<(c.Reg(inst.Rs)&31))
	case OpSRLV:
		c.SetReg(inst.Rd, c.Reg(inst.Rt)>>(c.Reg(inst.Rs)&31))
	case OpSRAV:
		c.SetReg(inst.Rd, uint32(int32(c.Reg(inst.Rt))>>(c.Reg(inst.Rs)&31)))

	// --- multiply / divide ---
	case OpMULT:
		p := int64(int32(c.Reg(inst.Rs))) * int64(int32(c.Reg(inst.Rt)))
		x.lo, x.hi = uint32(p), uint32(uint64(p)>>32)
		x.hiloReady = c.Icount() + multLatency
	case OpMULTU:
		p := uint64(c.Reg(inst.Rs)) * uint64(c.Reg(inst.Rt))
		x.lo, x.hi = uint32(p), uint32(p>>32)
		x.hiloReady = c.Icount() + multLatency
	case OpDIV:
		d := int32(c.Reg(inst.Rt))
		if d == 0 {
			x.lo, x.hi = 0, 0
		} else {
			n := int32(c.Reg(inst.Rs))
			x.lo, x.hi = uint32(n/d), uint32(n%d)
		}
		x.hiloReady = c.Icount() + divLatency
	case OpDIVU:
		d := c.Reg(inst.Rt)
		if d == 0 {
			x.lo, x.hi = 0, 0
		} else {
			n := c.Reg(inst.Rs)
			x.lo, x.hi = n/d, n%d
		}
		x.hiloReady = c.Icount() + divLatency
	case OpMFHI:
		x.interlockHILO(c)
		c.SetReg(inst.Rd, x.hi)
	case OpMFLO:
		x.interlockHILO(c)
		c.SetReg(inst.Rd, x.lo)
	case OpMTHI:
		x.hi = c.Reg(inst.Rs)
	case OpMTLO:
		x.lo = c.Reg(inst.Rs)

	// --- control transfer ---
	case OpJ:
		taken, target = true, inst.JumpTarget(pc)
	case OpJAL:
		c.SetReg(RegRA, pc+8)
		taken, target = true, inst.JumpTarget(pc)
	case OpJR:
		taken, target = true, c.Reg(inst.Rs)
	case OpJALR:
		c.SetReg(inst.Rd, pc+8)
		taken, target = true, c.Reg(inst.Rs)
	case OpBEQ:
		taken, target = c.Reg(inst.Rs) == c.Reg(inst.Rt), inst.BranchTarget(pc)
	case OpBNE:
		taken, target = c.Reg(inst.Rs) != c.Reg(inst.Rt), inst.BranchTarget(pc)
	case OpBLEZ:
		taken, target = int32(c.Reg(inst.Rs)) <= 0, inst.BranchTarget(pc)
	case OpBGTZ:
		taken, target = int32(c.Reg(inst.Rs)) > 0, inst.BranchTarget(pc)
	case OpBLTZ:
		taken, target = int32(c.Reg(inst.Rs)) < 0, inst.BranchTarget(pc)
	case OpBGEZ:
		taken, target = int32(c.Reg(inst.Rs)) >= 0, inst.BranchTarget(pc)
	case OpBLTZAL:
		c.SetReg(RegRA, pc+8)
		taken, target = int32(c.Reg(inst.Rs)) < 0, inst.BranchTarget(pc)
	case OpBGEZAL:
		c.SetReg(RegRA, pc+8)
		taken, target = int32(c.Reg(inst.Rs)) >= 0, inst.BranchTarget(pc)

	// --- loads ---
	case OpLW, OpLB, OpLBU, OpLH, OpLHU, OpLWL, OpLWR, OpLWC1:
		addr := c.Reg(inst.Rs) + uint32(inst.SImm())
		c.NoteLoad(addr)
		if err := x.execLoad(c, inst, addr); err != nil {
			return err
		}

	// --- stores ---
	case OpSW, OpSB, OpSH, OpSWL, OpSWR, OpSWC1:
		addr := c.Reg(inst.Rs) + uint32(inst.SImm())
		c.NoteStore(addr)
		if err := x.execStore(c, inst, addr); err != nil {
			return err
		}

	// --- system ---
	case OpSYSCALL:
		res, hasRes, err := c.Syscall(c.Reg(RegV0), c.Reg(RegA0))
		if err != nil {
			return err
		}
		if hasRes {
			c.SetReg(RegV0, res)
		}
	case OpBREAK:
		return c.Faultf(isa.ErrInvalidOp, "break executed")

	// --- COP1 ---
	case OpMFC1:
		c.SetReg(inst.Rt, x.fpr[inst.Fs()])
	case OpMTC1:
		x.fpr[inst.Fs()] = c.Reg(inst.Rt)
	case OpBC1T:
		taken, target = x.fpc, inst.BranchTarget(pc)
	case OpBC1F:
		taken, target = !x.fpc, inst.BranchTarget(pc)
	default:
		if err := x.execFP(c, inst); err != nil {
			return err
		}
	}

	npc := c.NPC()
	c.SetPC(npc)
	if taken {
		c.SetNPC(target)
	} else {
		c.SetNPC(npc + 4)
	}
	return nil
}

func (x *executor) interlockHILO(c isa.CPU) {
	if x.hiloReady > c.Icount() {
		c.AddStalls(x.hiloReady - c.Icount())
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (x *executor) execLoad(c isa.CPU, inst Inst, addr uint32) error {
	switch inst.Op {
	case OpLW:
		v, err := c.LoadWord(addr)
		if err != nil {
			return err
		}
		c.SetReg(inst.Rt, v)
		x.lastLoad = int16(inst.Rt)
	case OpLB:
		v, err := c.LoadByte(addr)
		if err != nil {
			return err
		}
		c.SetReg(inst.Rt, uint32(int32(int8(v))))
		x.lastLoad = int16(inst.Rt)
	case OpLBU:
		v, err := c.LoadByte(addr)
		if err != nil {
			return err
		}
		c.SetReg(inst.Rt, uint32(v))
		x.lastLoad = int16(inst.Rt)
	case OpLH:
		v, err := c.LoadHalf(addr)
		if err != nil {
			return err
		}
		c.SetReg(inst.Rt, uint32(int32(int16(v))))
		x.lastLoad = int16(inst.Rt)
	case OpLHU:
		v, err := c.LoadHalf(addr)
		if err != nil {
			return err
		}
		c.SetReg(inst.Rt, uint32(v))
		x.lastLoad = int16(inst.Rt)
	case OpLWL:
		// Little-endian LWL: merge bytes [addr&^3 .. addr] into the high
		// end of rt.
		w, err := c.LoadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * (3 - b)
		mask := uint32(0xFFFFFFFF) >> (8 * (b + 1)) // shift of 32 yields 0
		c.SetReg(inst.Rt, c.Reg(inst.Rt)&mask|w<<shift)
		x.lastLoad = int16(inst.Rt)
	case OpLWR:
		// Little-endian LWR: merge bytes [addr .. addr|3] into the low
		// end of rt.
		w, err := c.LoadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * b
		var mask uint32
		if b != 0 {
			mask = 0xFFFFFFFF << (8 * (4 - b))
		}
		c.SetReg(inst.Rt, c.Reg(inst.Rt)&mask|w>>shift)
		x.lastLoad = int16(inst.Rt)
	case OpLWC1:
		v, err := c.LoadWord(addr)
		if err != nil {
			return err
		}
		x.fpr[inst.Ft()] = v
		x.lastLoad = int16(inst.Ft()) + 32
	}
	return nil
}

func (x *executor) execStore(c isa.CPU, inst Inst, addr uint32) error {
	switch inst.Op {
	case OpSW:
		return c.StoreWord(addr, c.Reg(inst.Rt))
	case OpSB:
		return c.StoreByte(addr, byte(c.Reg(inst.Rt)))
	case OpSH:
		return c.StoreHalf(addr, uint16(c.Reg(inst.Rt)))
	case OpSWL:
		w, err := c.LoadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * (3 - b)
		keep := w & (uint32(0xFFFFFFFF) << (8 * (b + 1))) // shift of 32 yields 0
		return c.StoreWord(addr&^3, keep|c.Reg(inst.Rt)>>shift)
	case OpSWR:
		w, err := c.LoadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * b
		var keep uint32
		if b != 0 {
			keep = w & (0xFFFFFFFF >> (8 * (4 - b)))
		}
		return c.StoreWord(addr&^3, keep|c.Reg(inst.Rt)<<shift)
	case OpSWC1:
		return c.StoreWord(addr, x.fpr[inst.Ft()])
	}
	return nil
}

// usesReg reports whether inst reads the given register (0-31 GPR,
// 32-63 FPR) — used by the load-use interlock model.
func usesReg(inst Inst, reg int16) bool {
	if reg < 32 {
		r := uint8(reg)
		if r == 0 {
			return false
		}
		switch inst.Op {
		case OpJ, OpJAL, OpLUI, OpSYSCALL, OpBREAK,
			OpMFHI, OpMFLO, OpBC1T, OpBC1F, OpMFC1:
			return false
		case OpSLL, OpSRL, OpSRA:
			return inst.Rt == r
		case OpMTC1:
			return inst.Rt == r
		}
		if inst.Rs == r {
			return true
		}
		// rt is a source for R-format ALU, shifts, mult/div, branches
		// on two registers, and stores.
		switch inst.Op {
		case OpADD, OpADDU, OpSUB, OpSUBU, OpAND,
			OpOR, OpXOR, OpNOR, OpSLT, OpSLTU,
			OpSLLV, OpSRLV, OpSRAV, OpMULT, OpMULTU,
			OpDIV, OpDIVU, OpBEQ, OpBNE,
			OpSB, OpSH, OpSW, OpSWL, OpSWR:
			return inst.Rt == r
		}
		return false
	}
	f := uint8(reg - 32)
	switch inst.Op.Class() {
	case ClassFPU:
		switch inst.Op {
		case OpMFC1:
			return inst.Fs() == f
		case OpMTC1:
			return false
		case OpADDS, OpSUBS, OpMULS, OpDIVS,
			OpADDD, OpSUBD, OpMULD, OpDIVD:
			return inst.Fs() == f || inst.Ft() == f
		case OpCEQS, OpCLTS, OpCLES,
			OpCEQD, OpCLTD, OpCLED:
			return inst.Fs() == f || inst.Ft() == f
		default: // unary: mov/neg/abs/cvt
			return inst.Fs() == f
		}
	case ClassStore:
		return inst.Op == OpSWC1 && inst.Ft() == f
	}
	return false
}

// --- floating point ---

func (x *executor) fs(r uint8) float32 { return math.Float32frombits(x.fpr[r]) }
func (x *executor) setFS(r uint8, v float32) {
	x.fpr[r] = math.Float32bits(v)
}

func (x *executor) fd(r uint8) float64 {
	return math.Float64frombits(uint64(x.fpr[r+1])<<32 | uint64(x.fpr[r]))
}

func (x *executor) setFD(r uint8, v float64) {
	bits := math.Float64bits(v)
	x.fpr[r] = uint32(bits)
	x.fpr[r+1] = uint32(bits >> 32)
}

func (x *executor) execFP(c isa.CPU, inst Inst) error {
	fd, fs, ft := inst.Fd(), inst.Fs(), inst.Ft()
	switch inst.Op {
	case OpADDS:
		x.setFS(fd, x.fs(fs)+x.fs(ft))
		c.AddStalls(fpAddStall)
	case OpSUBS:
		x.setFS(fd, x.fs(fs)-x.fs(ft))
		c.AddStalls(fpAddStall)
	case OpMULS:
		x.setFS(fd, x.fs(fs)*x.fs(ft))
		c.AddStalls(fpMulSStall)
	case OpDIVS:
		x.setFS(fd, x.fs(fs)/x.fs(ft))
		c.AddStalls(fpDivSStall)
	case OpADDD:
		x.setFD(fd, x.fd(fs)+x.fd(ft))
		c.AddStalls(fpAddStall)
	case OpSUBD:
		x.setFD(fd, x.fd(fs)-x.fd(ft))
		c.AddStalls(fpAddStall)
	case OpMULD:
		x.setFD(fd, x.fd(fs)*x.fd(ft))
		c.AddStalls(fpMulDStall)
	case OpDIVD:
		x.setFD(fd, x.fd(fs)/x.fd(ft))
		c.AddStalls(fpDivDStall)
	case OpABSS:
		x.setFS(fd, float32(math.Abs(float64(x.fs(fs)))))
		c.AddStalls(fpAddStall)
	case OpABSD:
		x.setFD(fd, math.Abs(x.fd(fs)))
		c.AddStalls(fpAddStall)
	case OpNEGS:
		x.setFS(fd, -x.fs(fs))
		c.AddStalls(fpAddStall)
	case OpNEGD:
		x.setFD(fd, -x.fd(fs))
		c.AddStalls(fpAddStall)
	case OpMOVS:
		x.fpr[fd] = x.fpr[fs]
	case OpMOVD:
		x.fpr[fd] = x.fpr[fs]
		x.fpr[fd+1] = x.fpr[fs+1]
	case OpCVTSD:
		x.setFS(fd, float32(x.fd(fs)))
		c.AddStalls(fpCvtStall)
	case OpCVTSW:
		x.setFS(fd, float32(int32(x.fpr[fs])))
		c.AddStalls(fpCvtStall)
	case OpCVTDS:
		x.setFD(fd, float64(x.fs(fs)))
		c.AddStalls(fpCvtStall)
	case OpCVTDW:
		x.setFD(fd, float64(int32(x.fpr[fs])))
		c.AddStalls(fpCvtStall)
	case OpCVTWS:
		x.fpr[fd] = uint32(int32(x.fs(fs)))
		c.AddStalls(fpCvtStall)
	case OpCVTWD:
		x.fpr[fd] = uint32(int32(x.fd(fs)))
		c.AddStalls(fpCvtStall)
	case OpCEQS:
		x.fpc = x.fs(fs) == x.fs(ft)
		c.AddStalls(fpAddStall)
	case OpCLTS:
		x.fpc = x.fs(fs) < x.fs(ft)
		c.AddStalls(fpAddStall)
	case OpCLES:
		x.fpc = x.fs(fs) <= x.fs(ft)
		c.AddStalls(fpAddStall)
	case OpCEQD:
		x.fpc = x.fd(fs) == x.fd(ft)
		c.AddStalls(fpAddStall)
	case OpCLTD:
		x.fpc = x.fd(fs) < x.fd(ft)
		c.AddStalls(fpAddStall)
	case OpCLED:
		x.fpc = x.fd(fs) <= x.fd(ft)
		c.AddStalls(fpAddStall)
	default:
		return c.Faultf(isa.ErrInvalidOp, "op %v", inst.Op)
	}
	return nil
}
