package mips

import "ccrp/internal/isa"

// Backend implements isa.ISA for the MIPS R2000, plus the optional
// capabilities: the assembler backend (asmbackend.go), the simulator
// executor (exec.go), and the single-instruction parser / contract word
// enumerator (parse.go). It registers itself under the name "mips",
// which is also the isa package default; consumers link it in with a
// blank import.
type Backend struct{}

func init() { isa.Register(Backend{}) }

// Compile-time capability checks.
var (
	_ isa.ISA            = Backend{}
	_ isa.AsmBackend     = Backend{}
	_ isa.ExecBackend    = Backend{}
	_ isa.InstParser     = Backend{}
	_ isa.WordEnumerator = Backend{}
)

func (Backend) Name() string { return "mips" }

func (Backend) WordBytes() int { return 4 }

func (Backend) Decode(w isa.Word, pc uint32) isa.Info {
	i := Decode(Word(w))
	info := isa.Info{
		Valid:        i.Op != OpInvalid,
		Class:        i.Op.Class(),
		Mnemonic:     i.Op.String(),
		IsBranch:     i.IsBranch(),
		IsJump:       i.IsJump(),
		IsLoad:       i.IsLoad(),
		IsStore:      i.IsStore(),
		HasDelaySlot: i.HasDelaySlot(),
	}
	switch {
	case info.IsBranch:
		info.Target, info.TargetKnown = i.BranchTarget(pc), true
	case i.Op == OpJ || i.Op == OpJAL:
		info.Target, info.TargetKnown = i.JumpTarget(pc), true
	}
	return info
}

func (Backend) Disassemble(w isa.Word, pc uint32) string {
	return Disassemble(Word(w), pc)
}

func (Backend) RegName(r uint8) string { return RegName(r) }

func (Backend) FPRegName(r uint8) string { return FPRegName(r) }

func (Backend) RegNumber(name string) (uint8, bool) { return RegNumber(name) }
