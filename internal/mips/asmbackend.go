package mips

import (
	"fmt"
	"strconv"
	"strings"

	"ccrp/internal/isa"
)

// This file is the MIPS half of the two-pass assembler: instruction
// sizing (pass 1) and encoding (pass 2) behind isa.AsmBackend. The
// generic front end (internal/asm) owns parsing, labels, sections, and
// data directives, and hands statements here with an expression
// evaluator closed over its symbol table.

// InstSize returns the byte size of an instruction or pseudo-instruction
// during pass 1. Sizes must be computable without label values; li
// therefore requires a constant operand (use la for addresses). eval is
// the pass-1 evaluator, which rejects symbols.
func (Backend) InstSize(op string, args []string, eval isa.Evaluator) (int, error) {
	switch op {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs register, constant")
		}
		v, err := eval(args[1])
		if err != nil {
			return 0, fmt.Errorf("li: %v (use la for symbols)", err)
		}
		if fitsInt16(v) || fitsUint16(v) {
			return 4, nil
		}
		return 8, nil
	case "la":
		return 8, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return 8, nil
	case "mul", "rem":
		return 8, nil
	case "div", "divu":
		if len(args) == 3 {
			return 8, nil
		}
		return 4, nil
	case "l.d", "s.d":
		return 8, nil
	case "lb", "lbu", "lh", "lhu", "lw", "lwl", "lwr",
		"sb", "sh", "sw", "swl", "swr", "lwc1", "swc1", "l.s", "s.s":
		if len(args) != 2 {
			return 0, fmt.Errorf("%s needs register, address", op)
		}
		_, _, ok, err := parseMem(args[1], eval)
		if err != nil {
			// Offsets with symbols resolve in pass 2; the size only
			// depends on the operand's shape.
			ok = strings.Contains(args[1], "($")
		}
		if ok {
			return 4, nil
		}
		return 8, nil // symbol form: lui $at + access
	}
	return 4, nil
}

// EncodeInst translates one statement at address addr into machine words
// during pass 2.
func (Backend) EncodeInst(op string, args []string, addr uint32, eval isa.Evaluator) ([]isa.Word, error) {
	e := encoder{op: op, args: args, addr: addr, eval: eval}
	return e.encode()
}

type encoder struct {
	op   string
	args []string
	addr uint32
	eval isa.Evaluator
}

func (e *encoder) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", e.op, fmt.Sprintf(format, args...))
}

func (e *encoder) nargs(n int) error {
	if len(e.args) != n {
		return e.errf("expected %d operands, got %d", n, len(e.args))
	}
	return nil
}

func (e *encoder) reg(i int) (uint8, error)  { return parseReg(e.args[i]) }
func (e *encoder) freg(i int) (uint8, error) { return parseFReg(e.args[i]) }
func (e *encoder) expr(i int) (uint32, error) {
	v, err := e.eval(e.args[i])
	if err != nil {
		return 0, e.errf("%v", err)
	}
	return v, nil
}

// branchOff computes the 16-bit word offset for a branch at address base
// (the address of the branch word itself, which may be the second word
// of a pseudo expansion).
func (e *encoder) branchOff(target uint32, base uint32) (uint16, error) {
	diff := int64(target) - int64(base+4)
	if diff&3 != 0 {
		return 0, e.errf("branch target %#x not word aligned", target)
	}
	off := diff >> 2
	if off < -32768 || off > 32767 {
		return 0, e.errf("branch target %#x out of range (%d words)", target, off)
	}
	return uint16(off), nil
}

func word(i Inst) isa.Word { return isa.Word(Encode(i)) }

func (e *encoder) encode() ([]isa.Word, error) {
	op := e.op

	if ops, ok := realOp3[op]; ok { // op rd, rs, rt
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: ops, Rd: rd, Rs: rs, Rt: rt})}, nil
	}
	if ops, ok := shiftVOp[op]; ok { // op rd, rt, rs
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: ops, Rd: rd, Rt: rt, Rs: rs})}, nil
	}
	if ops, ok := shiftIOp[op]; ok { // op rd, rt, shamt
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		sh, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		if sh > 31 {
			return nil, e.errf("shift amount %d out of range", sh)
		}
		return []isa.Word{word(Inst{Op: ops, Rd: rd, Rt: rt, Shamt: uint8(sh)})}, nil
	}
	if ops, ok := immOp[op]; ok { // op rt, rs, imm
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		signed := op == "addi" || op == "addiu" || op == "slti" || op == "sltiu"
		if signed && !fitsInt16(v) || !signed && !fitsUint16(v) {
			return nil, e.errf("immediate %#x out of 16-bit range", v)
		}
		return []isa.Word{word(Inst{Op: ops, Rt: rt, Rs: rs, Imm: uint16(v)})}, nil
	}
	if ops, ok := memOp[op]; ok {
		return e.encodeMem(ops)
	}
	if ops, ok := fp3Op[op]; ok { // op fd, fs, ft
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		fd, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		ft, err := e.freg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: ops, Shamt: fd, Rd: fs, Rt: ft})}, nil
	}
	if ops, ok := fp2Op[op]; ok { // op fd, fs
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		fd, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: ops, Shamt: fd, Rd: fs})}, nil
	}
	if ops, ok := fpCmpOp[op]; ok { // op fs, ft
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		fs, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		ft, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: ops, Rd: fs, Rt: ft})}, nil
	}

	switch op {
	case "nop", "syscall":
		if err := e.nargs(0); err != nil {
			return nil, err
		}
		if op == "nop" {
			return []isa.Word{0}, nil
		}
		return []isa.Word{word(Inst{Op: OpSYSCALL})}, nil
	case "break":
		// Optional code operand (bits 25..6), which the disassembler
		// always prints.
		switch len(e.args) {
		case 0:
			return []isa.Word{word(Inst{Op: OpBREAK})}, nil
		case 1:
			code, err := e.expr(0)
			if err != nil {
				return nil, err
			}
			if code > 0xFFFFF {
				return nil, e.errf("break code %#x out of 20-bit range", code)
			}
			return []isa.Word{isa.Word(code<<6 | fnBREAK)}, nil
		}
		return nil, e.errf("expected 0 or 1 operands")
	case "mult", "multu":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		o := OpMULT
		if op == "multu" {
			o = OpMULTU
		}
		return []isa.Word{word(Inst{Op: o, Rs: rs, Rt: rt})}, nil
	case "div", "divu":
		return e.encodeDiv()
	case "mfhi", "mflo":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		o := OpMFHI
		if op == "mflo" {
			o = OpMFLO
		}
		return []isa.Word{word(Inst{Op: o, Rd: rd})}, nil
	case "mthi", "mtlo":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		o := OpMTHI
		if op == "mtlo" {
			o = OpMTLO
		}
		return []isa.Word{word(Inst{Op: o, Rs: rs})}, nil
	case "jr":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: OpJR, Rs: rs})}, nil
	case "jalr":
		rd := uint8(RegRA)
		var rs uint8
		var err error
		switch len(e.args) {
		case 1:
			rs, err = e.reg(0)
		case 2:
			if rd, err = e.reg(0); err == nil {
				rs, err = e.reg(1)
			}
		default:
			return nil, e.errf("expected 1 or 2 operands")
		}
		if err != nil {
			return nil, err
		}
		return []isa.Word{word(Inst{Op: OpJALR, Rd: rd, Rs: rs})}, nil
	case "lui":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		if !fitsUint16(v) {
			return nil, e.errf("immediate %#x out of 16-bit range", v)
		}
		return []isa.Word{word(Inst{Op: OpLUI, Rt: rt, Imm: uint16(v)})}, nil
	case "j", "jal":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		v, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		if v&3 != 0 {
			return nil, e.errf("jump target %#x not word aligned", v)
		}
		if (e.addr+4)&0xF0000000 != v&0xF0000000 {
			return nil, e.errf("jump target %#x outside current 256MB region", v)
		}
		o := OpJ
		if op == "jal" {
			o = OpJAL
		}
		return []isa.Word{word(Inst{Op: o, Target: v >> 2 & 0x03FFFFFF})}, nil
	case "beq", "bne":
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, e.addr)
		if err != nil {
			return nil, err
		}
		o := OpBEQ
		if op == "bne" {
			o = OpBNE
		}
		return []isa.Word{word(Inst{Op: o, Rs: rs, Rt: rt, Imm: off})}, nil
	case "blez", "bgtz", "bltz", "bgez", "bltzal", "bgezal":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, e.addr)
		if err != nil {
			return nil, err
		}
		o := map[string]Op{
			"blez": OpBLEZ, "bgtz": OpBGTZ, "bltz": OpBLTZ,
			"bgez": OpBGEZ, "bltzal": OpBLTZAL, "bgezal": OpBGEZAL,
		}[op]
		return []isa.Word{word(Inst{Op: o, Rs: rs, Imm: off})}, nil
	case "bc1t", "bc1f":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		tgt, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, e.addr)
		if err != nil {
			return nil, err
		}
		o := OpBC1T
		if op == "bc1f" {
			o = OpBC1F
		}
		return []isa.Word{word(Inst{Op: o, Imm: off})}, nil
	case "mfc1", "mtc1":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		o := OpMFC1
		if op == "mtc1" {
			o = OpMTC1
		}
		return []isa.Word{word(Inst{Op: o, Rt: rt, Rd: fs})}, nil
	}
	return e.encodePseudo()
}

var realOp3 = map[string]Op{
	"add": OpADD, "addu": OpADDU, "sub": OpSUB, "subu": OpSUBU,
	"and": OpAND, "or": OpOR, "xor": OpXOR, "nor": OpNOR,
	"slt": OpSLT, "sltu": OpSLTU,
}

var shiftVOp = map[string]Op{
	"sllv": OpSLLV, "srlv": OpSRLV, "srav": OpSRAV,
}

var shiftIOp = map[string]Op{
	"sll": OpSLL, "srl": OpSRL, "sra": OpSRA,
}

var immOp = map[string]Op{
	"addi": OpADDI, "addiu": OpADDIU, "slti": OpSLTI,
	"sltiu": OpSLTIU, "andi": OpANDI, "ori": OpORI, "xori": OpXORI,
}

var memOp = map[string]Op{
	"lb": OpLB, "lbu": OpLBU, "lh": OpLH, "lhu": OpLHU,
	"lw": OpLW, "lwl": OpLWL, "lwr": OpLWR,
	"sb": OpSB, "sh": OpSH, "sw": OpSW,
	"swl": OpSWL, "swr": OpSWR,
	"lwc1": OpLWC1, "swc1": OpSWC1,
	"l.s": OpLWC1, "s.s": OpSWC1,
}

var fp3Op = map[string]Op{
	"add.s": OpADDS, "add.d": OpADDD, "sub.s": OpSUBS, "sub.d": OpSUBD,
	"mul.s": OpMULS, "mul.d": OpMULD, "div.s": OpDIVS, "div.d": OpDIVD,
}

var fp2Op = map[string]Op{
	"abs.s": OpABSS, "abs.d": OpABSD, "mov.s": OpMOVS, "mov.d": OpMOVD,
	"neg.s": OpNEGS, "neg.d": OpNEGD,
	"cvt.s.d": OpCVTSD, "cvt.s.w": OpCVTSW, "cvt.d.s": OpCVTDS,
	"cvt.d.w": OpCVTDW, "cvt.w.s": OpCVTWS, "cvt.w.d": OpCVTWD,
}

var fpCmpOp = map[string]Op{
	"c.eq.s": OpCEQS, "c.eq.d": OpCEQD, "c.lt.s": OpCLTS,
	"c.lt.d": OpCLTD, "c.le.s": OpCLES, "c.le.d": OpCLED,
}

// evenFPReg checks whether an FP register number is valid for doubles.
func evenFPReg(r uint8) bool { return r%2 == 0 }

// parseReg parses a general-purpose register operand ("$t0", "$29").
func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	r, ok := RegNumber(s[1:])
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

// parseFReg parses a floating-point register operand ("$f12").
func parseFReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$f") {
		return 0, fmt.Errorf("expected FP register, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("unknown FP register %q", s)
	}
	return uint8(n), nil
}

// parseMem parses an "offset(base)" memory operand. It reports ok=false
// (with no error) when the operand has no parenthesized base register, in
// which case the caller treats it as a symbol-form pseudo access.
func parseMem(s string, eval isa.Evaluator) (off uint32, base uint8, ok bool, err error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, false, nil
	}
	inner := s[open+1 : len(s)-1]
	if !strings.HasPrefix(strings.TrimSpace(inner), "$") {
		// "(expr)" without a register is just a parenthesized expression.
		return 0, 0, false, nil
	}
	base, err = parseReg(inner)
	if err != nil {
		return 0, 0, false, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, base, true, nil
	}
	off, err = eval(offStr)
	if err != nil {
		return 0, 0, false, err
	}
	return off, base, true, nil
}

// fitsInt16 reports whether v, viewed as signed, fits in 16 bits.
func fitsInt16(v uint32) bool {
	s := int32(v)
	return s >= -32768 && s <= 32767
}

// fitsUint16 reports whether v fits in 16 unsigned bits.
func fitsUint16(v uint32) bool { return v <= 0xFFFF }
