package mips

import "fmt"

// Disassemble renders the instruction at address pc in conventional MIPS
// assembler syntax. Branch and jump targets are printed as absolute hex
// addresses computed from pc.
func Disassemble(w Word, pc uint32) string {
	i := Decode(w)
	switch i.Op {
	case OpInvalid:
		return fmt.Sprintf(".word 0x%08x", uint32(w))
	case OpSLL:
		if w == 0 {
			return "nop"
		}
		return fmt.Sprintf("sll %s, %s, %d", RegName(i.Rd), RegName(i.Rt), i.Shamt)
	case OpSRL, OpSRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rt), i.Shamt)
	case OpSLLV, OpSRLV, OpSRAV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
	case OpJR:
		return fmt.Sprintf("jr %s", RegName(i.Rs))
	case OpJALR:
		if i.Rd == RegRA {
			return fmt.Sprintf("jalr %s", RegName(i.Rs))
		}
		return fmt.Sprintf("jalr %s, %s", RegName(i.Rd), RegName(i.Rs))
	case OpSYSCALL:
		return "syscall"
	case OpBREAK:
		return fmt.Sprintf("break 0x%x", uint32(w)>>6&0xFFFFF)
	case OpMFHI, OpMFLO:
		return fmt.Sprintf("%s %s", i.Op, RegName(i.Rd))
	case OpMTHI, OpMTLO:
		return fmt.Sprintf("%s %s", i.Op, RegName(i.Rs))
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		return fmt.Sprintf("%s %s, %s", i.Op, RegName(i.Rs), RegName(i.Rt))
	case OpADD, OpADDU, OpSUB, OpSUBU, OpAND, OpOR, OpXOR, OpNOR, OpSLT, OpSLTU:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
	case OpBLTZ, OpBGEZ, OpBLTZAL, OpBGEZAL, OpBLEZ, OpBGTZ:
		return fmt.Sprintf("%s %s, 0x%08x", i.Op, RegName(i.Rs), i.BranchTarget(pc))
	case OpJ, OpJAL:
		return fmt.Sprintf("%s 0x%08x", i.Op, i.JumpTarget(pc))
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%s %s, %s, 0x%08x", i.Op, RegName(i.Rs), RegName(i.Rt), i.BranchTarget(pc))
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rt), RegName(i.Rs), i.SImm())
	case OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, RegName(i.Rt), RegName(i.Rs), i.ZImm())
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", RegName(i.Rt), i.ZImm())
	case OpLB, OpLH, OpLWL, OpLW, OpLBU, OpLHU, OpLWR, OpSB, OpSH, OpSWL, OpSW, OpSWR:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rt), i.SImm(), RegName(i.Rs))
	case OpLWC1, OpSWC1:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, FPRegName(i.Rt), i.SImm(), RegName(i.Rs))
	case OpMFC1, OpMTC1:
		return fmt.Sprintf("%s %s, %s", i.Op, RegName(i.Rt), FPRegName(i.Rd))
	case OpBC1F, OpBC1T:
		return fmt.Sprintf("%s 0x%08x", i.Op, i.BranchTarget(pc))
	case OpADDS, OpADDD, OpSUBS, OpSUBD, OpMULS, OpMULD, OpDIVS, OpDIVD:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, FPRegName(i.Fd()), FPRegName(i.Fs()), FPRegName(i.Ft()))
	case OpABSS, OpABSD, OpMOVS, OpMOVD, OpNEGS, OpNEGD,
		OpCVTSD, OpCVTSW, OpCVTDS, OpCVTDW, OpCVTWS, OpCVTWD:
		return fmt.Sprintf("%s %s, %s", i.Op, FPRegName(i.Fd()), FPRegName(i.Fs()))
	case OpCEQS, OpCEQD, OpCLTS, OpCLTD, OpCLES, OpCLED:
		return fmt.Sprintf("%s %s, %s", i.Op, FPRegName(i.Fs()), FPRegName(i.Ft()))
	}
	return fmt.Sprintf(".word 0x%08x", uint32(w))
}
