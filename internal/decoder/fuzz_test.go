package decoder

import (
	"bytes"
	"errors"
	"testing"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
)

// fuzzCode is the shared 16-bit-bounded code the fuzz targets decode
// under — the same skewed shape the huffman package fuzzes with.
func fuzzCode(tb testing.TB) *huffman.Code {
	tb.Helper()
	var h huffman.Histogram
	for i := 0; i < 256; i++ {
		h[i] = uint64(1 + (i*i)%97)
	}
	code, err := huffman.BuildBounded(&h, 16)
	if err != nil {
		tb.Fatal(err)
	}
	return code
}

// decodeOK reports whether err is one of the two legal failure classes
// for a hostile stream: a clean stream-format rejection or truncation.
// Anything else (panic is caught by the fuzz driver) fails the target.
func decodeOK(tb testing.TB, model string, err error) {
	tb.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrBadStream) || errors.Is(err, bitio.ErrShortStream) {
		return
	}
	tb.Fatalf("%s: unexpected error class: %v", model, err)
}

// seedCorpus adds a valid encoding, a truncation of it, and byte soup.
func seedCorpus(f *testing.F, code *huffman.Code) {
	sample, err := code.EncodeToBytes([]byte("decoder fuzz seed material"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sample, 26)
	f.Add(sample[:len(sample)/2], 26)
	f.Add([]byte{}, 4)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 99)
	f.Add([]byte{0x00}, 1)
}

// FuzzFSMDecode: the bit-serial model must reject malformed streams with
// ErrBadStream/ErrShortStream, never panic or run away, and must agree
// with the canonical software decoder bit for bit.
func FuzzFSMDecode(f *testing.F) {
	code := fuzzCode(f)
	fsm, err := NewFSM(code)
	if err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, code)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 2048
		out := make([]byte, n)
		r := bitio.NewReader(data)
		_, err := fsm.Decode(r, out)
		decodeOK(t, "fsm", err)

		want := make([]byte, n)
		wr := bitio.NewReader(data)
		wantErr := code.Decode(wr, want)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("fsm err=%v, canonical err=%v", err, wantErr)
		}
		if err == nil && (!bytes.Equal(out, want) || r.Pos() != wr.Pos()) {
			t.Fatal("fsm diverges from canonical decoder")
		}
	})
}

// FuzzCAMDecode: the content-addressable model under hostile input.
func FuzzCAMDecode(f *testing.F) {
	code := fuzzCode(f)
	cam := NewCAM(code)
	seedCorpus(f, code)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 2048
		out := make([]byte, n)
		r := bitio.NewReader(data)
		err := cam.Decode(r, out)
		decodeOK(t, "cam", err)

		want := make([]byte, n)
		wr := bitio.NewReader(data)
		wantErr := code.Decode(wr, want)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("cam err=%v, canonical err=%v", err, wantErr)
		}
		if err == nil && (!bytes.Equal(out, want) || r.Pos() != wr.Pos()) {
			t.Fatal("cam diverges from canonical decoder")
		}
	})
}

// FuzzROMDecode: the 64K-entry mapping-ROM model under hostile input.
func FuzzROMDecode(f *testing.F) {
	code := fuzzCode(f)
	rom := NewROM(code)
	seedCorpus(f, code)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 2048
		out := make([]byte, n)
		r := bitio.NewReader(data)
		err := rom.Decode(r, out)
		decodeOK(t, "rom", err)

		want := make([]byte, n)
		wr := bitio.NewReader(data)
		wantErr := code.Decode(wr, want)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("rom err=%v, canonical err=%v", err, wantErr)
		}
		if err == nil && (!bytes.Equal(out, want) || r.Pos() != wr.Pos()) {
			t.Fatal("rom diverges from canonical decoder")
		}
	})
}

// FuzzFastVsHardwareModels ties the tentpole together: on any input, the
// software FastDecoder and all three hardware models either all succeed
// with identical output and bit position, or all fail.
func FuzzFastVsHardwareModels(f *testing.F) {
	code := fuzzCode(f)
	fast := huffman.NewFastDecoder(code)
	fsm, err := NewFSM(code)
	if err != nil {
		f.Fatal(err)
	}
	cam := NewCAM(code)
	rom := NewROM(code)
	seedCorpus(f, code)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 2048

		fastOut := make([]byte, n)
		fastR := bitio.NewReader(data)
		fastErr := fast.Decode(fastR, fastOut)
		decodeOK(t, "fast", fastErr)

		models := []struct {
			name   string
			decode func(r *bitio.Reader, out []byte) error
		}{
			{"fsm", func(r *bitio.Reader, out []byte) error { _, err := fsm.Decode(r, out); return err }},
			{"cam", cam.Decode},
			{"rom", rom.Decode},
		}
		for _, m := range models {
			out := make([]byte, n)
			r := bitio.NewReader(data)
			err := m.decode(r, out)
			if (err == nil) != (fastErr == nil) {
				t.Fatalf("%s err=%v, fast err=%v", m.name, err, fastErr)
			}
			if err == nil && (!bytes.Equal(out, fastOut) || r.Pos() != fastR.Pos()) {
				t.Fatalf("%s diverges from FastDecoder", m.name)
			}
		}
	})
}
