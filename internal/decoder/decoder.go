// Package decoder models the hardware implementations of the CCRP's
// instruction block decoder that §3.4 of the paper sketches:
//
//   - a bit-serial finite state machine (the PLA / gate-level option the
//     authors say they intend to synthesize): one state per internal node
//     of the canonical code tree, one transition per input bit;
//   - a 256-entry content-addressable memory keyed by codeword;
//   - a 64K-entry mapping ROM indexed by the next 16 input bits.
//
// All three are behavioural models that decode real bit streams, are
// proven equivalent to the canonical software decoder by tests, and
// report the hardware cost figures (states, CAM entries, ROM bits) that
// §3.4 uses to argue the decoder is buildable.
package decoder

import (
	"errors"
	"fmt"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
)

// ErrBadStream is returned when the input does not decode under the code.
var ErrBadStream = errors.New("decoder: invalid bit stream")

// FSM is the bit-serial decoder: a table of states, each with a 0-edge
// and a 1-edge that either moves to another state or emits a symbol and
// returns to the root. It consumes one bit per step — two steps per
// processor cycle in the paper's double-edge-clocked implementation.
type FSM struct {
	// next[s][b] is the transition for bit b in state s: values >= 0 are
	// state indices; values < 0 encode an emitted symbol as -(sym+1).
	next   [][2]int32
	states int
}

// NewFSM compiles a canonical Huffman code into its decoder FSM.
func NewFSM(code *huffman.Code) (*FSM, error) {
	f := &FSM{next: [][2]int32{{unassigned, unassigned}}} // state 0 = root
	for s := 0; s < 256; s++ {
		bits, n := code.Codeword(byte(s))
		if n == 0 {
			continue
		}
		state := 0
		for i := n - 1; i >= 0; i-- {
			bit := int(bits>>uint(i)) & 1
			if i == 0 {
				if f.next[state][bit] != unassigned {
					return nil, fmt.Errorf("decoder: code is not prefix-free at symbol %#02x", s)
				}
				f.next[state][bit] = -(int32(s) + 1)
				break
			}
			t := f.next[state][bit]
			if t == unassigned {
				f.next = append(f.next, [2]int32{unassigned, unassigned})
				t = int32(len(f.next) - 1)
				f.next[state][bit] = t
			} else if t < 0 {
				return nil, fmt.Errorf("decoder: code is not prefix-free under symbol %#02x", s)
			}
			state = int(t)
		}
	}
	f.states = len(f.next)
	return f, nil
}

const unassigned = int32(0x7FFFFFFF)

// States returns the number of FSM states (internal tree nodes) — the
// PLA's state register must hold ceil(log2(States)) bits.
func (f *FSM) States() int { return f.states }

// DecodeSymbol consumes bits from r until a symbol is emitted.
func (f *FSM) DecodeSymbol(r *bitio.Reader) (byte, int, error) {
	state := 0
	steps := 0
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, steps, err
		}
		steps++
		t := f.next[state][bit]
		switch {
		case t == unassigned:
			return 0, steps, ErrBadStream
		case t < 0:
			return byte(-t - 1), steps, nil
		default:
			state = int(t)
		}
	}
}

// Decode fills out with decoded symbols, returning the total bit-steps
// consumed (the serial decoder's work, two steps per cycle).
func (f *FSM) Decode(r *bitio.Reader, out []byte) (steps int, err error) {
	for i := range out {
		b, n, err := f.DecodeSymbol(r)
		if err != nil {
			return steps, fmt.Errorf("decoder: symbol %d: %w", i, err)
		}
		steps += n
		out[i] = b
	}
	return steps, nil
}

// CAM is the 256-entry content-addressable implementation: each entry
// holds a codeword, its length, and the output byte; a probe matches the
// entry whose codeword prefixes the input window.
type CAM struct {
	entries []camEntry
	maxLen  int
}

type camEntry struct {
	bits uint64 // left-aligned in maxLen bits
	len  uint8
	sym  byte
}

// NewCAM compiles a code into its CAM form.
func NewCAM(code *huffman.Code) *CAM {
	c := &CAM{maxLen: code.MaxLen()}
	for s := 0; s < 256; s++ {
		bits, n := code.Codeword(byte(s))
		if n == 0 {
			continue
		}
		c.entries = append(c.entries, camEntry{
			bits: bits << uint(c.maxLen-n),
			len:  uint8(n),
			sym:  byte(s),
		})
	}
	return c
}

// Entries returns the number of CAM rows (≤256, as §3.4 states).
func (c *CAM) Entries() int { return len(c.entries) }

// WidthBits returns the match width each row needs.
func (c *CAM) WidthBits() int { return c.maxLen }

// DecodeSymbol probes the CAM with the next MaxLen-bit window.
func (c *CAM) DecodeSymbol(r *bitio.Reader) (byte, error) {
	window, avail := r.PeekBits(uint(c.maxLen))
	if avail == 0 {
		return 0, bitio.ErrShortStream
	}
	for _, e := range c.entries {
		if uint(e.len) > avail {
			continue
		}
		mask := ^uint64(0) << uint(c.maxLen-int(e.len))
		if window&mask == e.bits {
			if err := r.Skip(uint(e.len)); err != nil {
				return 0, err
			}
			return e.sym, nil
		}
	}
	return 0, ErrBadStream
}

// Decode fills out with decoded symbols.
func (c *CAM) Decode(r *bitio.Reader, out []byte) error {
	for i := range out {
		b, err := c.DecodeSymbol(r)
		if err != nil {
			return fmt.Errorf("decoder: symbol %d: %w", i, err)
		}
		out[i] = b
	}
	return nil
}

// ROM is the mapping-ROM implementation: a table indexed by the next
// maxLen input bits giving (symbol, codeword length) directly — the 64K
// entry option for a 16-bit bounded code.
type ROM struct {
	table  []romEntry
	maxLen int
}

type romEntry struct {
	sym byte
	len uint8 // 0 = invalid index (unreachable codespace)
}

// NewROM compiles a code into its mapping ROM. Memory is 2^MaxLen
// entries; for the paper's 16-bit bound that is the 64K x (8+5)-bit ROM
// it describes.
func NewROM(code *huffman.Code) *ROM {
	m := &ROM{maxLen: code.MaxLen()}
	m.table = make([]romEntry, 1<<uint(m.maxLen))
	for s := 0; s < 256; s++ {
		bits, n := code.Codeword(byte(s))
		if n == 0 {
			continue
		}
		base := bits << uint(m.maxLen-n)
		count := uint64(1) << uint(m.maxLen-n)
		for i := uint64(0); i < count; i++ {
			m.table[base+i] = romEntry{sym: byte(s), len: uint8(n)}
		}
	}
	return m
}

// SizeBits returns the ROM capacity in bits: 2^maxLen entries of
// (8-bit symbol + length field). For a 16-bit bounded code this is the
// paper's 64K-entry mapping ROM.
func (m *ROM) SizeBits() int {
	lenBits := 1
	for (1 << lenBits) <= m.maxLen {
		lenBits++
	}
	return len(m.table) * (8 + lenBits)
}

// DecodeSymbol looks the next window up in the ROM.
func (m *ROM) DecodeSymbol(r *bitio.Reader) (byte, error) {
	window, avail := r.PeekBits(uint(m.maxLen))
	if avail == 0 {
		return 0, bitio.ErrShortStream
	}
	e := m.table[window]
	if e.len == 0 || uint(e.len) > avail {
		return 0, ErrBadStream
	}
	if err := r.Skip(uint(e.len)); err != nil {
		return 0, err
	}
	return e.sym, nil
}

// Decode fills out with decoded symbols.
func (m *ROM) Decode(r *bitio.Reader, out []byte) error {
	for i := range out {
		b, err := m.DecodeSymbol(r)
		if err != nil {
			return fmt.Errorf("decoder: symbol %d: %w", i, err)
		}
		out[i] = b
	}
	return nil
}

// Cost summarizes the three implementations for one code — the §3.4
// buildability argument in numbers.
type Cost struct {
	FSMStates    int // PLA state count
	FSMStateBits int // state register width
	CAMEntries   int
	CAMWidthBits int
	ROMBits      int
}

// CostOf reports the hardware cost of decoding the given code.
func CostOf(code *huffman.Code) (Cost, error) {
	fsm, err := NewFSM(code)
	if err != nil {
		return Cost{}, err
	}
	cam := NewCAM(code)
	rom := NewROM(code)
	bits := 0
	for (1 << bits) < fsm.States() {
		bits++
	}
	return Cost{
		FSMStates:    fsm.States(),
		FSMStateBits: bits,
		CAMEntries:   cam.Entries(),
		CAMWidthBits: cam.WidthBits(),
		ROMBits:      rom.SizeBits(),
	}, nil
}
