package decoder

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
)

func testCode(t testing.TB) *huffman.Code {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	var h huffman.Histogram
	for s := 0; s < 256; s++ {
		h[s] = uint64(rng.Intn(5000) + 1)
	}
	h[0] = 500000 // realistic skew: zero bytes dominate machine code
	c, err := huffman.BuildBounded(&h, 16)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func encode(t testing.TB, code *huffman.Code, data []byte) []byte {
	t.Helper()
	enc, err := code.EncodeToBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// All three hardware models must decode exactly what the canonical
// software decoder decodes.
func TestImplementationsAgree(t *testing.T) {
	code := testCode(t)
	fsm, err := NewFSM(code)
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCAM(code)
	rom := NewROM(code)

	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		enc := encode(t, code, data)
		ref, err := code.DecodeBytes(enc, len(data))
		if err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := fsm.Decode(bitio.NewReader(enc), got); err != nil || !bytes.Equal(got, ref) {
			t.Logf("fsm mismatch: %v", err)
			return false
		}
		if err := cam.Decode(bitio.NewReader(enc), got); err != nil || !bytes.Equal(got, ref) {
			t.Logf("cam mismatch: %v", err)
			return false
		}
		if err := rom.Decode(bitio.NewReader(enc), got); err != nil || !bytes.Equal(got, ref) {
			t.Logf("rom mismatch: %v", err)
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFSMStepsEqualEncodedBits(t *testing.T) {
	// The serial FSM consumes exactly one step per encoded bit, which is
	// what makes the 2-bits-per-cycle refill model §3.4 describes exact.
	code := testCode(t)
	fsm, err := NewFSM(code)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("\x00\x00\x00some instruction bytes\x00\x00")
	enc := encode(t, code, data)
	wantBits, err := code.EncodedBits(data)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	steps, err := fsm.Decode(bitio.NewReader(enc), out)
	if err != nil {
		t.Fatal(err)
	}
	if steps != wantBits {
		t.Errorf("steps = %d, encoded bits = %d", steps, wantBits)
	}
}

func TestCosts(t *testing.T) {
	code := testCode(t)
	cost, err := CostOf(code)
	if err != nil {
		t.Fatal(err)
	}
	// A complete binary code tree over 256 leaves has exactly 255
	// internal nodes.
	if cost.FSMStates != 255 {
		t.Errorf("FSM states = %d, want 255", cost.FSMStates)
	}
	if cost.FSMStateBits != 8 {
		t.Errorf("state register = %d bits", cost.FSMStateBits)
	}
	if cost.CAMEntries != 256 {
		t.Errorf("CAM entries = %d (paper: a 256 entry CAM)", cost.CAMEntries)
	}
	if cost.CAMWidthBits != code.MaxLen() {
		t.Errorf("CAM width = %d", cost.CAMWidthBits)
	}
	// 2^16 entries x 13 bits for a 16-bit code.
	if code.MaxLen() == 16 && cost.ROMBits != (1<<16)*13 {
		t.Errorf("ROM bits = %d, want %d (the paper's 64K mapping ROM)", cost.ROMBits, (1<<16)*13)
	}
}

func TestSparseCode(t *testing.T) {
	// A code over few symbols: FSM/CAM/ROM must all handle unused
	// codespace and reject streams that wander into it.
	var h huffman.Histogram
	h['a'], h['b'], h['c'] = 10, 3, 1
	code, err := huffman.BuildTraditional(&h)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := NewFSM(code)
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCAM(code)
	rom := NewROM(code)
	if cam.Entries() != 3 {
		t.Errorf("CAM entries = %d", cam.Entries())
	}
	data := []byte("abacabaccba")
	enc := encode(t, code, data)
	out := make([]byte, len(data))
	if _, err := fsm.Decode(bitio.NewReader(enc), out); err != nil || !bytes.Equal(out, data) {
		t.Errorf("fsm sparse decode: %q, %v", out, err)
	}
	if err := cam.Decode(bitio.NewReader(enc), out); err != nil || !bytes.Equal(out, data) {
		t.Errorf("cam sparse decode: %q, %v", out, err)
	}
	if err := rom.Decode(bitio.NewReader(enc), out); err != nil || !bytes.Equal(out, data) {
		t.Errorf("rom sparse decode: %q, %v", out, err)
	}
}

func TestTruncatedStream(t *testing.T) {
	code := testCode(t)
	fsm, _ := NewFSM(code)
	cam := NewCAM(code)
	rom := NewROM(code)
	enc := encode(t, code, []byte("truncate me please and thank you"))
	out := make([]byte, 32)
	if _, err := fsm.Decode(bitio.NewReader(enc[:2]), out); err == nil {
		t.Error("fsm accepted truncated stream")
	}
	if err := cam.Decode(bitio.NewReader(enc[:2]), out); err == nil {
		t.Error("cam accepted truncated stream")
	}
	if err := rom.Decode(bitio.NewReader(enc[:2]), out); err == nil {
		t.Error("rom accepted truncated stream")
	}
}

func TestEmptyStream(t *testing.T) {
	code := testCode(t)
	cam := NewCAM(code)
	rom := NewROM(code)
	if _, err := cam.DecodeSymbol(bitio.NewReader(nil)); err == nil {
		t.Error("cam decoded from empty stream")
	}
	if _, err := rom.DecodeSymbol(bitio.NewReader(nil)); err == nil {
		t.Error("rom decoded from empty stream")
	}
}

func BenchmarkFSMDecode(b *testing.B) {
	code := testCode(b)
	fsm, err := NewFSM(code)
	if err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte{0, 1, 2, 0x27, 0xBD, 0, 0, 0x8C}, 4)
	enc := encode(b, code, data)
	out := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := fsm.Decode(bitio.NewReader(enc), out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkROMDecode(b *testing.B) {
	code := testCode(b)
	rom := NewROM(code)
	data := bytes.Repeat([]byte{0, 1, 2, 0x27, 0xBD, 0, 0, 0x8C}, 4)
	enc := encode(b, code, data)
	out := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := rom.Decode(bitio.NewReader(enc), out); err != nil {
			b.Fatal(err)
		}
	}
}
