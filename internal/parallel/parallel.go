// Package parallel provides a minimal bounded worker pool for fanning
// independent fixed-size work items — decompressing the lines of a
// block, expanding the pages of a paged store — across CPUs.
//
// It shares its shape with internal/sweep's engine (bounded workers
// pulling indices off an atomic counter, per-item panic confinement,
// deterministic error selection) but strips the observability and
// caching machinery: sweep orchestrates minutes-long experiment points,
// parallel fans out microsecond-scale decode work where any per-item
// overhead beyond the atomic increment would eat the win. Block-bounded
// compression makes every 32-byte line independent by construction —
// the same property the paper's refill engine exploits for hardware
// parallelism — so line decode parallelizes with no coordination
// beyond the index counter.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a work item whose function panicked. The panic is
// confined to its worker: remaining items still run, and ForEach returns
// this error instead of crashing the process.
type PanicError struct {
	Item  int    // index of the failed item
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

// Error summarizes the panic without the stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", e.Item, e.Value)
}

// ForEach runs fn(i) for every i in [0, n), fanning the calls across a
// bounded pool. workers <= 0 selects GOMAXPROCS; the pool is capped at n
// and a single-worker (or single-item) call runs inline on the caller's
// goroutine with no goroutines spawned.
//
// The returned error is the one from the lowest-numbered failing item,
// so it is deterministic regardless of scheduling: parallel workers keep
// draining remaining items after a failure (item work is bounded and
// errors are rare), while the inline path stops at the first failure —
// which is already the lowest-numbered one. Context cancellation stops
// workers from picking up further items (items already running finish),
// and ctx.Err() is returned only if no item error was recorded.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := runItem(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstI  = n
		firstE  error
		stopped atomic.Bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runItem(i, fn); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// runItem executes one item with panic confinement.
func runItem(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Item: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
