package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 300
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(nil, 5, 1, func(int) error { return nil }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestForEachLowestError: the reported error must come from the
// lowest-numbered failing item no matter how the scheduler interleaves
// workers.
func TestForEachLowestError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(context.Background(), 100, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3's", workers, err)
		}
	}
}

// TestForEachPanicConfined: a panicking item becomes a PanicError
// instead of crashing the process, and other items still run.
func TestForEachPanicConfined(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(context.Background(), 50, workers, func(i int) error {
			if i == 5 {
				panic("boom")
			}
			ran.Add(1)
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Item != 5 {
			t.Fatalf("workers=%d: err = %v, want PanicError{Item: 5}", workers, err)
		}
		if pe.Value != "boom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic value %v, stack %d bytes", workers, pe.Value, len(pe.Stack))
		}
		if workers > 1 && ran.Load() < 40 {
			t.Fatalf("workers=%d: only %d items ran after the panic", workers, ran.Load())
		}
	}
}

// TestForEachCancellation: a cancelled context stops dispatch and is
// reported when no item failed on its own.
func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 10000, 4, func(i int) error {
		if ran.Add(1) == 16 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop dispatch (%d items ran)", n)
	}
}

// TestForEachItemErrorBeatsCancel: an item error outranks ctx.Err() in
// the return value.
func TestForEachItemErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	want := errors.New("real failure")
	err := ForEach(ctx, 100, 4, func(i int) error {
		if i == 0 {
			cancel()
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the item error", err)
	}
}
