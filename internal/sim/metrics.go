package sim

import (
	"ccrp/internal/isa"
	"ccrp/internal/metrics"
)

// syscallNames maps SPIM syscall numbers to metric label values.
var syscallNames = map[uint32]string{
	SysPrintInt:    "print_int",
	SysPrintString: "print_string",
	SysReadInt:     "read_int",
	SysExit:        "exit",
	SysPrintChar:   "print_char",
	SysExit2:       "exit2",
}

// instruments are the optional per-machine observability hooks: the
// dynamic instruction mix by pipeline class and per-number syscall
// counts. A nil pointer (the default) keeps the dispatch loop free of
// them.
type instruments struct {
	class    [isa.NumClasses]*metrics.Counter // indexed by isa.Class
	syscalls map[uint32]*metrics.Counter
	other    *metrics.Counter // syscalls with numbers outside syscallNames
}

// newInstruments registers the simulator's counters on reg.
func newInstruments(reg *metrics.Registry) *instruments {
	im := &instruments{syscalls: make(map[uint32]*metrics.Counter, len(syscallNames))}
	classVec := reg.CounterVec("ccrp_sim_instructions_total",
		"dynamic instruction mix by pipeline class", "class")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		im.class[c] = classVec.With(c.String())
	}
	sysVec := reg.CounterVec("ccrp_sim_syscalls_total", "syscalls by service", "syscall")
	for num, name := range syscallNames {
		im.syscalls[num] = sysVec.With(name)
	}
	im.other = sysVec.With("other")
	return im
}

// countSyscall attributes one SYSCALL dispatch to its service counter.
func (im *instruments) countSyscall(num uint32) {
	if c, ok := im.syscalls[num]; ok {
		c.Inc()
		return
	}
	im.other.Inc()
}
