package sim

import (
	"ccrp/internal/metrics"
	"ccrp/internal/mips"
)

// classNames maps mips.Class values to metric label values.
var classNames = map[mips.Class]string{
	mips.ClassALU:    "alu",
	mips.ClassShift:  "shift",
	mips.ClassMulDiv: "muldiv",
	mips.ClassHILO:   "hilo",
	mips.ClassLoad:   "load",
	mips.ClassStore:  "store",
	mips.ClassBranch: "branch",
	mips.ClassJump:   "jump",
	mips.ClassSys:    "sys",
	mips.ClassFPU:    "fpu",
	mips.ClassFPBr:   "fpbr",
}

// syscallNames maps SPIM syscall numbers to metric label values.
var syscallNames = map[uint32]string{
	SysPrintInt:    "print_int",
	SysPrintString: "print_string",
	SysReadInt:     "read_int",
	SysExit:        "exit",
	SysPrintChar:   "print_char",
	SysExit2:       "exit2",
}

// instruments are the optional per-machine observability hooks: the
// dynamic instruction mix by pipeline class and per-number syscall
// counts. A nil pointer (the default) keeps the dispatch loop free of
// them.
type instruments struct {
	class    [16]*metrics.Counter // indexed by mips.Class
	syscalls map[uint32]*metrics.Counter
	other    *metrics.Counter // syscalls with numbers outside syscallNames
}

// newInstruments registers the simulator's counters on reg.
func newInstruments(reg *metrics.Registry) *instruments {
	im := &instruments{syscalls: make(map[uint32]*metrics.Counter, len(syscallNames))}
	classVec := reg.CounterVec("ccrp_sim_instructions_total",
		"dynamic instruction mix by pipeline class", "class")
	for class, name := range classNames {
		im.class[class] = classVec.With(name)
	}
	sysVec := reg.CounterVec("ccrp_sim_syscalls_total", "syscalls by service", "syscall")
	for num, name := range syscallNames {
		im.syscalls[num] = sysVec.With(name)
	}
	im.other = sysVec.With("other")
	return im
}

// countSyscall attributes one SYSCALL dispatch to its service counter.
func (im *instruments) countSyscall(num uint32) {
	if c, ok := im.syscalls[num]; ok {
		c.Inc()
		return
	}
	im.other.Inc()
}
