package sim

import (
	"fmt"

	"ccrp/internal/mips"
)

// SPIM-compatible syscall numbers (in $v0 at the SYSCALL instruction).
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysReadInt     = 5
	SysExit        = 10
	SysPrintChar   = 11
	SysExit2       = 17
)

// maxCString bounds print_string to keep a missing NUL from walking all
// of memory.
const maxCString = 1 << 16

func (m *Machine) syscall() error {
	if m.im != nil {
		m.im.countSyscall(m.regs[mips.RegV0])
	}
	switch m.regs[mips.RegV0] {
	case SysPrintInt:
		m.printf("%d", int32(m.regs[mips.RegA0]))
	case SysPrintString:
		s, err := m.cstring(m.regs[mips.RegA0])
		if err != nil {
			return err
		}
		m.printf("%s", s)
	case SysReadInt:
		var v int32
		if m.inputPos < len(m.cfg.Input) {
			v = m.cfg.Input[m.inputPos]
			m.inputPos++
		}
		m.regs[mips.RegV0] = uint32(v)
	case SysExit:
		m.done = true
		m.exitCode = 0
	case SysPrintChar:
		m.printf("%c", rune(m.regs[mips.RegA0]))
	case SysExit2:
		m.done = true
		m.exitCode = int32(m.regs[mips.RegA0])
	default:
		return m.faultf(ErrBadSyscall, "number %d", m.regs[mips.RegV0])
	}
	return nil
}

func (m *Machine) printf(format string, args ...any) {
	if m.cfg.Stdout != nil {
		fmt.Fprintf(m.cfg.Stdout, format, args...)
	}
}

// cstring reads the NUL-terminated string at addr.
func (m *Machine) cstring(addr uint32) (string, error) {
	var out []byte
	for i := 0; i < maxCString; i++ {
		b, err := m.loadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", m.faultf(ErrBadAddress, "unterminated string at %#x", addr)
}
