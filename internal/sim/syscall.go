package sim

import "fmt"

// SPIM-compatible syscall numbers (in the ISA's syscall-number register —
// $v0 on MIPS, a7 on RISC-V — when the syscall instruction executes).
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysReadInt     = 5
	SysExit        = 10
	SysPrintChar   = 11
	SysExit2       = 17
)

// maxCString bounds print_string to keep a missing NUL from walking all
// of memory.
const maxCString = 1 << 16

// Syscall implements the isa.CPU host-service hook: num is the service
// number, arg its argument register. hasResult reports whether result
// must be written back to the ISA's return register (read_int only).
func (m *Machine) Syscall(num, arg uint32) (result uint32, hasResult bool, err error) {
	if m.im != nil {
		m.im.countSyscall(num)
	}
	switch num {
	case SysPrintInt:
		m.printf("%d", int32(arg))
	case SysPrintString:
		s, err := m.cstring(arg)
		if err != nil {
			return 0, false, err
		}
		m.printf("%s", s)
	case SysReadInt:
		var v int32
		if m.inputPos < len(m.cfg.Input) {
			v = m.cfg.Input[m.inputPos]
			m.inputPos++
		}
		return uint32(v), true, nil
	case SysExit:
		m.Exit(0)
	case SysPrintChar:
		m.printf("%c", rune(arg))
	case SysExit2:
		m.Exit(arg)
	default:
		return 0, false, m.Faultf(ErrBadSyscall, "number %d", num)
	}
	return 0, false, nil
}

func (m *Machine) printf(format string, args ...any) {
	if m.cfg.Stdout != nil {
		fmt.Fprintf(m.cfg.Stdout, format, args...)
	}
}

// cstring reads the NUL-terminated string at addr.
func (m *Machine) cstring(addr uint32) (string, error) {
	var out []byte
	for i := 0; i < maxCString; i++ {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", m.Faultf(ErrBadAddress, "unterminated string at %#x", addr)
}
