package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ccrp/internal/asm"
	_ "ccrp/internal/mips" // register the default backend
)

// run assembles and executes src, returning result and console output.
func run(t *testing.T, src string) (*Result, string) {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var out bytes.Buffer
	m := New(p, Config{Stdout: &out, CollectTrace: true, MaxInstr: 10_000_000})
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, out.String()
}

const exitSeq = `
	li $v0, 10
	syscall
`

func TestArithmeticAndPrint(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li  $t0, 6
	li  $t1, 7
	mul $a0, $t0, $t1
	li  $v0, 1
	syscall
	li  $a0, '\n'
	li  $v0, 11
	syscall
`+exitSeq)
	if out != "42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLoopSum(t *testing.T) {
	res, out := run(t, `
	.text
__start:
	li $t0, 0      # sum
	li $t1, 1      # i
loop:
	addu $t0, $t0, $t1
	addiu $t1, $t1, 1
	blt $t1, $t2, loop   # $t2 == 0, never taken... set below
	nop
	li $t2, 101
	li $t1, 1
	li $t0, 0
loop2:
	addu $t0, $t0, $t1
	addiu $t1, $t1, 1
	blt $t1, $t2, loop2
	nop
	move $a0, $t0
	li $v0, 1
	syscall
`+exitSeq)
	if out != "5050" {
		t.Errorf("sum = %q", out)
	}
	if res.Instructions == 0 || res.Trace == nil {
		t.Error("missing trace/instructions")
	}
	if res.Instructions != uint64(len(res.Trace.Events)) {
		t.Error("trace length != instruction count")
	}
}

func TestDelaySlotSemantics(t *testing.T) {
	// The instruction after a taken branch executes (MIPS-I delay slot).
	_, out := run(t, `
	.text
__start:
	li $a0, 1
	b over
	addiu $a0, $a0, 10   # delay slot: must execute
	addiu $a0, $a0, 100  # skipped
over:
	li $v0, 1
	syscall
`+exitSeq)
	if out != "11" {
		t.Errorf("delay slot result = %q, want 11", out)
	}
}

func TestJalLinksPastDelaySlot(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	jal f
	li $a0, 5      # delay slot executes before f
	li $v0, 1      # return lands here
	syscall
`+exitSeq+`
f:	jr $ra
	addiu $a0, $a0, 1
`)
	if out != "6" {
		t.Errorf("jal/jr result = %q, want 6", out)
	}
}

func TestMemoryAndData(t *testing.T) {
	_, out := run(t, `
	.data
arr:	.word 10, 20, 30, 40
msg:	.asciiz "sum="
	.text
__start:
	la  $t0, arr
	li  $t1, 0      # sum
	li  $t2, 4      # count
loop:
	lw  $t3, 0($t0)
	nop
	addu $t1, $t1, $t3
	addiu $t0, $t0, 4
	addiu $t2, $t2, -1
	bnez $t2, loop
	nop
	la $a0, msg
	li $v0, 4
	syscall
	move $a0, $t1
	li $v0, 1
	syscall
`+exitSeq)
	if out != "sum=100" {
		t.Errorf("output = %q", out)
	}
}

func TestByteHalfAccess(t *testing.T) {
	_, out := run(t, `
	.data
b:	.byte 0xFF, 1
h:	.half 0x8000
	.text
__start:
	la $t0, b
	lb $a0, 0($t0)    # -1 sign extended
	nop
	li $v0, 1
	syscall
	lbu $a0, 0($t0)   # 255
	nop
	li $v0, 1
	syscall
	la $t1, h
	lh $a0, 0($t1)    # -32768
	nop
	li $v0, 1
	syscall
	lhu $a0, 0($t1)   # 32768
	nop
	li $v0, 1
	syscall
	sb $zero, 0($t0)
	lb $a0, 0($t0)
	nop
	li $v0, 1
	syscall
`+exitSeq)
	if out != "-1255-32768327680" {
		t.Errorf("output = %q", out)
	}
}

func TestUnalignedWordViaLwlLwr(t *testing.T) {
	_, out := run(t, `
	.data
buf:	.byte 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88
	.text
__start:
	la  $t0, buf
	# Unaligned load of the word at buf+1 (LE): expect 0x55443322.
	lwr $t1, 1($t0)
	lwl $t1, 4($t0)
	nop
	srl $a0, $t1, 16    # print high half: 0x5544 = 21828
	li $v0, 1
	syscall
	andi $a0, $t1, 0xFFFF  # low half 0x3322 = 13090
	li $v0, 1
	syscall
	# Unaligned store of 0xAABBCCDD at buf+1, then read back bytes.
	li  $t2, 0xAABBCCDD
	swr $t2, 1($t0)
	swl $t2, 4($t0)
	lbu $a0, 1($t0)   # 0xDD = 221
	nop
	li $v0, 1
	syscall
	lbu $a0, 4($t0)   # 0xAA = 170
	nop
	li $v0, 1
	syscall
	lbu $a0, 0($t0)   # untouched 0x11 = 17
	nop
	li $v0, 1
	syscall
	lbu $a0, 5($t0)   # untouched 0x66 = 102
	nop
	li $v0, 1
	syscall
`+exitSeq)
	if out != "218281309022117017102" {
		t.Errorf("output = %q", out)
	}
}

func TestMultDivAndInterlock(t *testing.T) {
	res, out := run(t, `
	.text
__start:
	li $t0, 1000003
	li $t1, 97
	divu $t0, $t1
	mfhi $a0         # 1000003 % 97
	li $v0, 1
	syscall
	li $a0, ','
	li $v0, 11
	syscall
	mflo $a0         # 1000003 / 97
	li $v0, 1
	syscall
`+exitSeq)
	if out != "30,10309" {
		t.Errorf("output = %q", out)
	}
	if res.Stalls == 0 {
		t.Error("divide interlock produced no stalls")
	}
}

func TestHILOStallAccounting(t *testing.T) {
	// mfhi immediately after mult stalls ~multLatency; spacing the
	// consumer reduces the stall.
	srcTight := `
	.text
__start:
	li $t0, 1234
	li $t1, 5678
	mult $t0, $t1
	mflo $a0
` + exitSeq
	srcSpaced := `
	.text
__start:
	li $t0, 1234
	li $t1, 5678
	mult $t0, $t1
	nop
	nop
	nop
	nop
	nop
	nop
	mflo $a0
` + exitSeq
	rt, _ := run(t, srcTight)
	rs, _ := run(t, srcSpaced)
	if rt.Stalls <= rs.Stalls {
		t.Errorf("tight stalls %d should exceed spaced stalls %d", rt.Stalls, rs.Stalls)
	}
}

func TestLoadUseStall(t *testing.T) {
	rUse, _ := run(t, `
	.data
v:	.word 7
	.text
__start:
	la $t0, v
	lw $t1, 0($t0)
	addu $t2, $t1, $t1   # uses loaded value immediately
`+exitSeq)
	rNoUse, _ := run(t, `
	.data
v:	.word 7
	.text
__start:
	la $t0, v
	lw $t1, 0($t0)
	addu $t2, $t3, $t3   # independent
`+exitSeq)
	if rUse.Stalls != rNoUse.Stalls+1 {
		t.Errorf("load-use stalls: use=%d nouse=%d", rUse.Stalls, rNoUse.Stalls)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li  $a0, 12
	jal fib
	nop
	move $a0, $v1
	li $v0, 1
	syscall
`+exitSeq+`
# fib(n) in $a0 -> $v1, clobbers $t0
fib:
	addiu $sp, $sp, -12
	sw $ra, 0($sp)
	sw $a0, 4($sp)
	li $v1, 1
	blt $a0, $t9, fibret    # $t9 == 0; never; placeholder
	nop
	li $t0, 2
	blt $a0, $t0, fibbase
	nop
	addiu $a0, $a0, -1
	jal fib
	nop
	sw $v1, 8($sp)
	lw $a0, 4($sp)
	nop
	addiu $a0, $a0, -2
	jal fib
	nop
	lw $t0, 8($sp)
	nop
	addu $v1, $v1, $t0
	b fibret
	nop
fibbase:
	li $v1, 1
fibret:
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 12
	jr $ra
	nop
`)
	if out != "233" {
		t.Errorf("fib(12) = %q, want 233", out)
	}
}

func TestFloatingPoint(t *testing.T) {
	_, out := run(t, `
	.data
a:	.double 1.5
b:	.double 2.25
c:	.float 10.0
	.text
__start:
	la $t0, a
	l.d $f0, 0($t0)
	la $t0, b
	l.d $f2, 0($t0)
	add.d $f4, $f0, $f2    # 3.75
	mul.d $f4, $f4, $f2    # 8.4375
	cvt.w.d $f6, $f4       # 8
	mfc1 $a0, $f6
	li $v0, 1
	syscall
	la $t0, c
	l.s $f8, 0($t0)
	cvt.d.s $f10, $f8
	c.lt.d $f4, $f10       # 8.4375 < 10 -> true
	bc1t yes
	nop
	li $a0, 0
	b print
	nop
yes:
	li $a0, 1
print:
	li $v0, 1
	syscall
`+exitSeq)
	if out != "81" {
		t.Errorf("fp output = %q", out)
	}
}

func TestIntToFloatConversion(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, -7
	mtc1 $t0, $f0
	cvt.d.w $f2, $f0
	neg.d $f4, $f2        # 7.0
	cvt.w.d $f6, $f4
	mfc1 $a0, $f6
	li $v0, 1
	syscall
`+exitSeq)
	if out != "7" {
		t.Errorf("output = %q", out)
	}
}

func TestExitCode(t *testing.T) {
	res, _ := run(t, `
	.text
__start:
	li $a0, 3
	li $v0, 17
	syscall
`)
	if res.ExitCode != 3 {
		t.Errorf("exit code = %d", res.ExitCode)
	}
}

func TestReadInt(t *testing.T) {
	p, err := asm.Assemble("t", `
	.text
__start:
	li $v0, 5
	syscall
	move $a0, $v0
	li $v0, 1
	syscall
	li $v0, 5
	syscall
	move $a0, $v0
	li $v0, 1
	syscall
`+exitSeq)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m := New(p, Config{Stdout: &out, Input: []int32{42}})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "420" {
		t.Errorf("read_int output = %q", out.String())
	}
}

func TestTraceFlags(t *testing.T) {
	res, _ := run(t, `
	.data
v:	.word 1
	.text
__start:
	la $t0, v
	lw $t1, 0($t0)
	sw $t1, 0($t0)
`+exitSeq)
	var loads, stores int
	for _, e := range res.Trace.Events {
		if e.IsLoad() {
			loads++
			if e.Addr != asm.DataBase {
				t.Errorf("load addr = %#x", e.Addr)
			}
		}
		if e.IsStore() {
			stores++
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d", loads, stores)
	}
	if res.Loads != 1 || res.Stores != 1 {
		t.Errorf("counters loads=%d stores=%d", res.Loads, res.Stores)
	}
}

func runErr(t *testing.T, src string, cfg Config) error {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	_, err = New(p, cfg).Run()
	if err == nil {
		t.Fatal("expected an error")
	}
	return err
}

func TestErrors(t *testing.T) {
	t.Run("infinite loop guard", func(t *testing.T) {
		err := runErr(t, ".text\n__start: b __start\nnop", Config{MaxInstr: 1000})
		if !errors.Is(err, ErrMaxInstructions) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad address", func(t *testing.T) {
		err := runErr(t, ".text\n__start: li $t0, 0xFFFFFC\nlw $t1, 8($t0)", Config{})
		if !errors.Is(err, ErrBadAddress) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unaligned word", func(t *testing.T) {
		err := runErr(t, ".text\n__start: li $t0, 1\nlw $t1, 0($t0)", Config{})
		if !errors.Is(err, ErrUnaligned) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("overflow trap", func(t *testing.T) {
		err := runErr(t, ".text\n__start: li $t0, 0x7FFFFFFF\nadd $t1, $t0, $t0", Config{})
		if !errors.Is(err, ErrOverflow) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad syscall", func(t *testing.T) {
		err := runErr(t, ".text\n__start: li $v0, 99\nsyscall", Config{})
		if !errors.Is(err, ErrBadSyscall) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("fall off text", func(t *testing.T) {
		err := runErr(t, ".text\n__start: nop", Config{})
		if !errors.Is(err, ErrBadAddress) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("break", func(t *testing.T) {
		err := runErr(t, ".text\n__start: break", Config{})
		if !errors.Is(err, ErrInvalidOp) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("jump into data", func(t *testing.T) {
		err := runErr(t, ".text\n__start: li $t0, 0x100000\njr $t0\nnop", Config{})
		if !errors.Is(err, ErrBadAddress) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestZeroRegisterImmutable(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 55
	addu $zero, $t0, $t0
	move $a0, $zero
	li $v0, 1
	syscall
`+exitSeq)
	if out != "0" {
		t.Errorf("$zero = %q", out)
	}
}

func TestDivByZeroIsDeterministic(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 5
	li $t1, 0
	div $t0, $t1
	mflo $a0
	li $v0, 1
	syscall
	mfhi $a0
	li $v0, 1
	syscall
`+exitSeq)
	if out != "00" {
		t.Errorf("div-by-zero = %q", out)
	}
}

func TestSltVariants(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, -1
	li $t1, 1
	slt $a0, $t0, $t1     # signed: -1 < 1 -> 1
	li $v0, 1
	syscall
	sltu $a0, $t0, $t1    # unsigned: 0xFFFFFFFF < 1 -> 0
	li $v0, 1
	syscall
	slti $a0, $t0, 0      # 1
	li $v0, 1
	syscall
	sltiu $a0, $t1, 2     # 1
	li $v0, 1
	syscall
`+exitSeq)
	if out != "1011" {
		t.Errorf("slt outputs = %q", out)
	}
}

func TestShiftVariants(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 0x80000000
	sra $a0, $t0, 31      # -1
	li $v0, 1
	syscall
	srl $a0, $t0, 31      # 1
	li $v0, 1
	syscall
	li $t1, 4
	li $t2, 3
	sllv $a0, $t1, $t2    # 32
	li $v0, 1
	syscall
	srav $a0, $t0, $t2    # 0xF0000000 as signed
	li $v0, 1
	syscall
`+exitSeq)
	if out != "-1132-268435456" {
		t.Errorf("shift outputs = %q", out)
	}
}

func TestPCAccessors(t *testing.T) {
	p, err := asm.Assemble("t", ".text\n__start: nop\nnop\nli $v0, 10\nsyscall")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	if m.PC() != 0 {
		t.Errorf("initial pc = %#x", m.PC())
	}
	if m.Reg(29) != asm.StackTop {
		t.Errorf("sp = %#x", m.Reg(29))
	}
	m.SetReg(5, 77)
	if m.Reg(5) != 77 {
		t.Error("SetReg/Reg failed")
	}
	m.SetReg(0, 99)
	if m.Reg(0) != 0 {
		t.Error("wrote $zero")
	}
}

func BenchmarkSimulator(b *testing.B) {
	p, err := asm.Assemble("bench", `
	.text
__start:
	li $t0, 0
	li $t1, 0
	li $t2, 100000
loop:
	addu $t1, $t1, $t0
	xor  $t3, $t1, $t0
	sll  $t4, $t3, 1
	addiu $t0, $t0, 1
	blt $t0, $t2, loop
	nop
	li $v0, 10
	syscall
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(p, Config{})
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions))
	}
}

func TestStringsHelper(t *testing.T) {
	// cstring must stop at NUL and error past memory or unterminated.
	p, err := asm.Assemble("t", `
	.data
s:	.ascii "abc"
	# no terminator before lots of nonzero data
	.space 4
	.text
__start:
	la $a0, s
	li $v0, 4
	syscall
`+exitSeq)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := New(p, Config{Stdout: &out}).Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "abc") {
		t.Errorf("output = %q", out.String())
	}
}

// Exhaustive unaligned access check: for every offset 0..3, LWR+LWL must
// load the unaligned word and SWR+SWL must store it, matching a byte-wise
// reference.
func TestUnalignedAllOffsets(t *testing.T) {
	for off := 0; off < 4; off++ {
		src := `
	.data
buf:	.byte 0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xA9
	.text
__start:
	la $t0, buf
	lwr $t1, ` + itoa(off) + `($t0)
	lwl $t1, ` + itoa(off+3) + `($t0)
	nop
	move $a0, $t1
	li $v0, 1
	syscall
	li $a0, ' '
	li $v0, 11
	syscall
	li $t2, 0x0DDC0FFE
	swr $t2, ` + itoa(off+4) + `($t0)
	swl $t2, ` + itoa(off+7) + `($t0)
	lwr $t3, ` + itoa(off+4) + `($t0)
	lwl $t3, ` + itoa(off+7) + `($t0)
	nop
	move $a0, $t3
	li $v0, 1
	syscall
` + exitSeq
		_, out := run(t, src)
		buf := []byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xA9}
		want := int32(uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		wantStr := itoa64(int64(want)) + " " + itoa64(int64(int32(0x0DDC0FFE)))
		if out != wantStr {
			t.Errorf("offset %d: out = %q, want %q", off, out, wantStr)
		}
	}
}

func itoa(v int) string { return itoa64(int64(v)) }

func itoa64(v int64) string {
	if v < 0 {
		return "-" + itoa64(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa64(v/10) + string(rune('0'+v%10))
}

func TestDivOverflowCase(t *testing.T) {
	// INT_MIN / -1 overflows; MIPS leaves HI/LO unpredictable, but the
	// simulator must stay deterministic and not crash.
	_, out := run(t, `
	.text
__start:
	li $t0, 0x80000000
	li $t1, -1
	div $t0, $t1
	mflo $a0
	li $v0, 1
	syscall
`+exitSeq)
	if out != "-2147483648" {
		t.Errorf("INT_MIN/-1 = %q (must at least be deterministic)", out)
	}
}

func TestBltzalAndBgezal(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, -5
	bltzal $t0, sub
	nop
	move $a0, $v1
	li $v0, 1
	syscall
	li $t0, 5
	bgezal $t0, sub
	nop
	move $a0, $v1
	li $v0, 1
	syscall
`+exitSeq+`
sub:
	li $v1, 7
	jr $ra
	nop
`)
	if out != "77" {
		t.Errorf("link branches = %q", out)
	}
}

func TestMthiMtlo(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 123
	mthi $t0
	li $t1, 456
	mtlo $t1
	mfhi $a0
	li $v0, 1
	syscall
	mflo $a0
	li $v0, 1
	syscall
`+exitSeq)
	if out != "123456" {
		t.Errorf("hi/lo moves = %q", out)
	}
}

func TestMultuUnsigned(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 0xFFFFFFFF
	li $t1, 2
	multu $t0, $t1
	mfhi $a0         # 1
	li $v0, 1
	syscall
	mflo $a0         # 0xFFFFFFFE as signed = -2
	li $v0, 1
	syscall
	mult $t0, $t1    # signed: -1 * 2 = -2
	mfhi $a0         # -1
	li $v0, 1
	syscall
`+exitSeq)
	if out != "1-2-1" {
		t.Errorf("multu/mult = %q", out)
	}
}

func TestFPSinglePrecision(t *testing.T) {
	_, out := run(t, `
	.data
a:	.float 2.5
b:	.float 0.5
	.text
__start:
	la $t0, a
	l.s $f0, 0($t0)
	la $t0, b
	l.s $f2, 0($t0)
	div.s $f4, $f0, $f2    # 5.0
	cvt.w.s $f6, $f4
	mfc1 $a0, $f6
	li $v0, 1
	syscall
	c.le.s $f2, $f0        # true
	bc1f no
	nop
	li $a0, 1
	b pr
	nop
no:	li $a0, 0
pr:	li $v0, 1
	syscall
	sub.s $f8, $f0, $f0    # 0.0
	abs.s $f8, $f8
	c.eq.s $f8, $f8
	bc1t yes2
	nop
	li $a0, 0
	b pr2
	nop
yes2:	li $a0, 2
pr2:	li $v0, 1
	syscall
`+exitSeq)
	if out != "512" {
		t.Errorf("single-precision = %q", out)
	}
}

func TestXoriAndNor(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 0xFF00
	xori $t1, $t0, 0x0FF0   # 0xF0F0
	move $a0, $t1
	li $v0, 1
	syscall
	nor $t2, $zero, $zero   # 0xFFFFFFFF = -1
	move $a0, $t2
	li $v0, 1
	syscall
`+exitSeq)
	if out != "61680-1" {
		t.Errorf("xori/nor = %q", out)
	}
}

func TestStoreHalfAndAlignment(t *testing.T) {
	_, out := run(t, `
	.data
buf:	.space 8
	.text
__start:
	la $t0, buf
	li $t1, 0xBEEF
	sh $t1, 2($t0)
	lhu $a0, 2($t0)
	nop
	li $v0, 1
	syscall
	lbu $a0, 2($t0)   # low byte first (LE): 0xEF = 239
	nop
	li $v0, 1
	syscall
`+exitSeq)
	if out != "48879239" {
		t.Errorf("sh/lhu = %q", out)
	}
	err := runErr(t, ".text\n__start: li $t0, 1\nsh $t1, 0($t0)", Config{})
	if !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned sh err = %v", err)
	}
	err = runErr(t, ".text\n__start: li $t0, 1\nlh $t1, 0($t0)", Config{})
	if !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned lh err = %v", err)
	}
	err = runErr(t, ".text\n__start: li $t0, 1\nsw $t1, 0($t0)", Config{})
	if !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned sw err = %v", err)
	}
}

func TestFPUnaryOps(t *testing.T) {
	_, out := run(t, `
	.data
mhalf:	.float -0.5
quarter:.double 0.25
	.text
__start:
	la $t0, mhalf
	l.s $f0, 0($t0)
	abs.s $f2, $f0        # 0.5
	neg.s $f4, $f2        # -0.5
	mov.s $f6, $f4
	add.s $f6, $f6, $f2   # 0.0
	cvt.w.s $f8, $f6
	mfc1 $a0, $f8
	li $v0, 1
	syscall
	la $t0, quarter
	l.d $f10, 0($t0)
	abs.d $f12, $f10
	neg.d $f14, $f12
	mov.d $f16, $f14
	sub.d $f16, $f16, $f14  # 0.0
	cvt.w.d $f18, $f16
	mfc1 $a0, $f18
	li $v0, 1
	syscall
	# cvt.s.w and cvt.d.s and cvt.s.d round trips
	li $t1, 9
	mtc1 $t1, $f20
	cvt.s.w $f20, $f20
	cvt.d.s $f22, $f20
	cvt.s.d $f24, $f22
	cvt.w.s $f26, $f24
	mfc1 $a0, $f26
	li $v0, 1
	syscall
	# c.eq.s and c.le.d paths
	c.eq.s $f2, $f2
	bc1t eq1
	nop
	li $a0, 0
	b p1
	nop
eq1:	li $a0, 1
p1:	li $v0, 1
	syscall
	c.le.d $f12, $f10     # 0.25 <= 0.25 -> true
	bc1f no2
	nop
	li $a0, 1
	b p2
	nop
no2:	li $a0, 0
p2:	li $v0, 1
	syscall
	div.d $f28, $f10, $f12  # 1.0
	cvt.w.d $f28, $f28
	mfc1 $a0, $f28
	li $v0, 1
	syscall
`+exitSeq)
	if out != "009111" {
		t.Errorf("fp unary = %q", out)
	}
}

func TestMovePseudosExecute(t *testing.T) {
	_, out := run(t, `
	.text
__start:
	li $t0, 21
	move $t1, $t0
	not $t2, $zero        # -1
	neg $t3, $t0          # -21
	negu $t4, $t0         # -21
	addu $a0, $t1, $t3    # 0
	li $v0, 1
	syscall
	addu $a0, $t2, $t4    # -22
	li $v0, 1
	syscall
	# unsigned compare-branch family
	li $t5, 3
	li $t6, 0xFFFFFFF0
	bleu $t5, $t6, u1
	nop
	li $a0, 0
	b u2
	nop
u1:	li $a0, 7
u2:	li $v0, 1
	syscall
	bgtu $t6, $t5, u3
	nop
	li $a0, 0
	b u4
	nop
u3:	li $a0, 8
u4:	li $v0, 1
	syscall
`+exitSeq)
	if out != "0-2278" {
		t.Errorf("pseudos = %q", out)
	}
}

func TestBaseCycles(t *testing.T) {
	res, _ := run(t, `
	.text
__start:
	li $t0, 2
	li $t1, 3
	mult $t0, $t1
	mflo $a0
`+exitSeq)
	if res.BaseCycles() != res.Instructions+res.Stalls {
		t.Errorf("BaseCycles = %d, want %d", res.BaseCycles(), res.Instructions+res.Stalls)
	}
	if res.Stalls == 0 {
		t.Error("mult/mflo produced no stall")
	}
}

func TestSteppingAPI(t *testing.T) {
	p, err := asm.Assemble("t", `
	.text
__start:
	li $t0, 1
	li $t1, 2
	mult $t0, $t1
	mflo $t2
	li $v0, 10
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{})
	if m.Done() {
		t.Fatal("done before starting")
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.Instructions() != 1 || m.PC() != 4 {
		t.Errorf("after one step: icount=%d pc=%#x", m.Instructions(), m.PC())
	}
	for !m.Done() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Reg(10) != 2 { // $t2
		t.Errorf("$t2 = %d", m.Reg(10))
	}
	if m.LO() != 2 || m.HI() != 0 {
		t.Errorf("hi/lo = %d/%d", m.HI(), m.LO())
	}
	// Step after exit is a no-op.
	before := m.Instructions()
	if err := m.Step(); err != nil || m.Instructions() != before {
		t.Error("step after exit did something")
	}
	snap := m.Snapshot()
	if snap.Instructions != before {
		t.Error("snapshot inconsistent")
	}
	if w, err := m.ReadWord(0); err != nil || w == 0 {
		t.Errorf("ReadWord(0) = %#x, %v", w, err)
	}
	if _, err := m.PeekByte(1 << 25); err == nil {
		t.Error("ReadByte out of range accepted")
	}
	if b, err := m.PeekByte(0); err != nil || b == 0 {
		t.Errorf("ReadByte(0) = %#x, %v", b, err)
	}
	if m.FPR(0) != 0 {
		t.Error("FPR(0) nonzero at start")
	}
}

func TestStepHonorsMaxInstr(t *testing.T) {
	p, err := asm.Assemble("t", ".text\n__start: b __start\nnop")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Config{MaxInstr: 5})
	var stepErr error
	for i := 0; i < 10; i++ {
		if stepErr = m.Step(); stepErr != nil {
			break
		}
	}
	if !errors.Is(stepErr, ErrMaxInstructions) {
		t.Errorf("err = %v", stepErr)
	}
}
