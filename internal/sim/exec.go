package sim

import (
	"math"

	"ccrp/internal/mips"
	"ccrp/internal/trace"
)

// step executes a single instruction.
func (m *Machine) step() error {
	if m.pc >= m.textLimit || m.pc&3 != 0 {
		return m.faultf(ErrBadAddress, "instruction fetch outside text (limit %#x)", m.textLimit)
	}
	raw, err := m.loadWord(m.pc)
	if err != nil {
		return err
	}
	inst := mips.Decode(mips.Word(raw))
	if inst.Op == mips.OpInvalid {
		return m.faultf(ErrInvalidOp, "word %#08x", raw)
	}
	if m.im != nil {
		m.im.class[inst.Op.Class()].Inc()
	}

	// Load-use interlock: one stall cycle if this instruction sources the
	// register the previous instruction loaded.
	if m.lastLoad >= 0 && m.usesReg(inst, m.lastLoad) {
		m.stalls += loadUseStall
	}
	m.lastLoad = -1

	ev := trace.Event{PC: m.pc}
	taken := false
	var target uint32

	switch inst.Op {
	// --- integer ALU ---
	case mips.OpADD:
		a, b := int32(m.regs[inst.Rs]), int32(m.regs[inst.Rt])
		s := a + b
		if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
			return m.faultf(ErrOverflow, "add")
		}
		m.SetReg(inst.Rd, uint32(s))
	case mips.OpADDU:
		m.SetReg(inst.Rd, m.regs[inst.Rs]+m.regs[inst.Rt])
	case mips.OpSUB:
		a, b := int32(m.regs[inst.Rs]), int32(m.regs[inst.Rt])
		s := a - b
		if (a >= 0) != (b >= 0) && (s >= 0) != (a >= 0) {
			return m.faultf(ErrOverflow, "sub")
		}
		m.SetReg(inst.Rd, uint32(s))
	case mips.OpSUBU:
		m.SetReg(inst.Rd, m.regs[inst.Rs]-m.regs[inst.Rt])
	case mips.OpAND:
		m.SetReg(inst.Rd, m.regs[inst.Rs]&m.regs[inst.Rt])
	case mips.OpOR:
		m.SetReg(inst.Rd, m.regs[inst.Rs]|m.regs[inst.Rt])
	case mips.OpXOR:
		m.SetReg(inst.Rd, m.regs[inst.Rs]^m.regs[inst.Rt])
	case mips.OpNOR:
		m.SetReg(inst.Rd, ^(m.regs[inst.Rs] | m.regs[inst.Rt]))
	case mips.OpSLT:
		m.SetReg(inst.Rd, b2u(int32(m.regs[inst.Rs]) < int32(m.regs[inst.Rt])))
	case mips.OpSLTU:
		m.SetReg(inst.Rd, b2u(m.regs[inst.Rs] < m.regs[inst.Rt]))
	case mips.OpADDI:
		a, b := int32(m.regs[inst.Rs]), inst.SImm()
		s := a + b
		if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
			return m.faultf(ErrOverflow, "addi")
		}
		m.SetReg(inst.Rt, uint32(s))
	case mips.OpADDIU:
		m.SetReg(inst.Rt, m.regs[inst.Rs]+uint32(inst.SImm()))
	case mips.OpSLTI:
		m.SetReg(inst.Rt, b2u(int32(m.regs[inst.Rs]) < inst.SImm()))
	case mips.OpSLTIU:
		m.SetReg(inst.Rt, b2u(m.regs[inst.Rs] < uint32(inst.SImm())))
	case mips.OpANDI:
		m.SetReg(inst.Rt, m.regs[inst.Rs]&inst.ZImm())
	case mips.OpORI:
		m.SetReg(inst.Rt, m.regs[inst.Rs]|inst.ZImm())
	case mips.OpXORI:
		m.SetReg(inst.Rt, m.regs[inst.Rs]^inst.ZImm())
	case mips.OpLUI:
		m.SetReg(inst.Rt, inst.ZImm()<<16)

	// --- shifts ---
	case mips.OpSLL:
		m.SetReg(inst.Rd, m.regs[inst.Rt]<<inst.Shamt)
	case mips.OpSRL:
		m.SetReg(inst.Rd, m.regs[inst.Rt]>>inst.Shamt)
	case mips.OpSRA:
		m.SetReg(inst.Rd, uint32(int32(m.regs[inst.Rt])>>inst.Shamt))
	case mips.OpSLLV:
		m.SetReg(inst.Rd, m.regs[inst.Rt]<<(m.regs[inst.Rs]&31))
	case mips.OpSRLV:
		m.SetReg(inst.Rd, m.regs[inst.Rt]>>(m.regs[inst.Rs]&31))
	case mips.OpSRAV:
		m.SetReg(inst.Rd, uint32(int32(m.regs[inst.Rt])>>(m.regs[inst.Rs]&31)))

	// --- multiply / divide ---
	case mips.OpMULT:
		p := int64(int32(m.regs[inst.Rs])) * int64(int32(m.regs[inst.Rt]))
		m.lo, m.hi = uint32(p), uint32(uint64(p)>>32)
		m.hiloReady = m.icount + multLatency
	case mips.OpMULTU:
		p := uint64(m.regs[inst.Rs]) * uint64(m.regs[inst.Rt])
		m.lo, m.hi = uint32(p), uint32(p>>32)
		m.hiloReady = m.icount + multLatency
	case mips.OpDIV:
		d := int32(m.regs[inst.Rt])
		if d == 0 {
			m.lo, m.hi = 0, 0
		} else {
			n := int32(m.regs[inst.Rs])
			m.lo, m.hi = uint32(n/d), uint32(n%d)
		}
		m.hiloReady = m.icount + divLatency
	case mips.OpDIVU:
		d := m.regs[inst.Rt]
		if d == 0 {
			m.lo, m.hi = 0, 0
		} else {
			n := m.regs[inst.Rs]
			m.lo, m.hi = n/d, n%d
		}
		m.hiloReady = m.icount + divLatency
	case mips.OpMFHI:
		m.interlockHILO()
		m.SetReg(inst.Rd, m.hi)
	case mips.OpMFLO:
		m.interlockHILO()
		m.SetReg(inst.Rd, m.lo)
	case mips.OpMTHI:
		m.hi = m.regs[inst.Rs]
	case mips.OpMTLO:
		m.lo = m.regs[inst.Rs]

	// --- control transfer ---
	case mips.OpJ:
		taken, target = true, inst.JumpTarget(m.pc)
	case mips.OpJAL:
		m.SetReg(mips.RegRA, m.pc+8)
		taken, target = true, inst.JumpTarget(m.pc)
	case mips.OpJR:
		taken, target = true, m.regs[inst.Rs]
	case mips.OpJALR:
		m.SetReg(inst.Rd, m.pc+8)
		taken, target = true, m.regs[inst.Rs]
	case mips.OpBEQ:
		taken, target = m.regs[inst.Rs] == m.regs[inst.Rt], inst.BranchTarget(m.pc)
	case mips.OpBNE:
		taken, target = m.regs[inst.Rs] != m.regs[inst.Rt], inst.BranchTarget(m.pc)
	case mips.OpBLEZ:
		taken, target = int32(m.regs[inst.Rs]) <= 0, inst.BranchTarget(m.pc)
	case mips.OpBGTZ:
		taken, target = int32(m.regs[inst.Rs]) > 0, inst.BranchTarget(m.pc)
	case mips.OpBLTZ:
		taken, target = int32(m.regs[inst.Rs]) < 0, inst.BranchTarget(m.pc)
	case mips.OpBGEZ:
		taken, target = int32(m.regs[inst.Rs]) >= 0, inst.BranchTarget(m.pc)
	case mips.OpBLTZAL:
		m.SetReg(mips.RegRA, m.pc+8)
		taken, target = int32(m.regs[inst.Rs]) < 0, inst.BranchTarget(m.pc)
	case mips.OpBGEZAL:
		m.SetReg(mips.RegRA, m.pc+8)
		taken, target = int32(m.regs[inst.Rs]) >= 0, inst.BranchTarget(m.pc)

	// --- loads ---
	case mips.OpLW, mips.OpLB, mips.OpLBU, mips.OpLH, mips.OpLHU,
		mips.OpLWL, mips.OpLWR, mips.OpLWC1:
		addr := m.regs[inst.Rs] + uint32(inst.SImm())
		ev.Flags |= trace.FlagLoad
		ev.Addr = addr
		m.loads++
		if err := m.execLoad(inst, addr); err != nil {
			return err
		}

	// --- stores ---
	case mips.OpSW, mips.OpSB, mips.OpSH, mips.OpSWL, mips.OpSWR, mips.OpSWC1:
		addr := m.regs[inst.Rs] + uint32(inst.SImm())
		ev.Flags |= trace.FlagStore
		ev.Addr = addr
		m.stores++
		if err := m.execStore(inst, addr); err != nil {
			return err
		}

	// --- system ---
	case mips.OpSYSCALL:
		if err := m.syscall(); err != nil {
			return err
		}
	case mips.OpBREAK:
		return m.faultf(ErrInvalidOp, "break executed")

	// --- COP1 ---
	case mips.OpMFC1:
		m.SetReg(inst.Rt, m.fpr[inst.Fs()])
	case mips.OpMTC1:
		m.fpr[inst.Fs()] = m.regs[inst.Rt]
	case mips.OpBC1T:
		taken, target = m.fpc, inst.BranchTarget(m.pc)
	case mips.OpBC1F:
		taken, target = !m.fpc, inst.BranchTarget(m.pc)
	default:
		if err := m.execFP(inst); err != nil {
			return err
		}
	}

	if m.cfg.CollectTrace {
		m.events = append(m.events, ev)
	}
	m.icount++
	m.pc, m.npc = m.npc, m.npc+4
	if taken {
		m.npc = target
	}
	return nil
}

func (m *Machine) interlockHILO() {
	if m.hiloReady > m.icount {
		m.stalls += m.hiloReady - m.icount
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) execLoad(inst mips.Inst, addr uint32) error {
	switch inst.Op {
	case mips.OpLW:
		v, err := m.loadWord(addr)
		if err != nil {
			return err
		}
		m.SetReg(inst.Rt, v)
		m.lastLoad = int16(inst.Rt)
	case mips.OpLB:
		v, err := m.loadByte(addr)
		if err != nil {
			return err
		}
		m.SetReg(inst.Rt, uint32(int32(int8(v))))
		m.lastLoad = int16(inst.Rt)
	case mips.OpLBU:
		v, err := m.loadByte(addr)
		if err != nil {
			return err
		}
		m.SetReg(inst.Rt, uint32(v))
		m.lastLoad = int16(inst.Rt)
	case mips.OpLH:
		v, err := m.loadHalf(addr)
		if err != nil {
			return err
		}
		m.SetReg(inst.Rt, uint32(int32(int16(v))))
		m.lastLoad = int16(inst.Rt)
	case mips.OpLHU:
		v, err := m.loadHalf(addr)
		if err != nil {
			return err
		}
		m.SetReg(inst.Rt, uint32(v))
		m.lastLoad = int16(inst.Rt)
	case mips.OpLWL:
		// Little-endian LWL: merge bytes [addr&^3 .. addr] into the high
		// end of rt.
		w, err := m.loadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * (3 - b)
		mask := uint32(0xFFFFFFFF) >> (8 * (b + 1)) // shift of 32 yields 0
		m.SetReg(inst.Rt, m.regs[inst.Rt]&mask|w<<shift)
		m.lastLoad = int16(inst.Rt)
	case mips.OpLWR:
		// Little-endian LWR: merge bytes [addr .. addr|3] into the low
		// end of rt.
		w, err := m.loadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * b
		var mask uint32
		if b != 0 {
			mask = 0xFFFFFFFF << (8 * (4 - b))
		}
		m.SetReg(inst.Rt, m.regs[inst.Rt]&mask|w>>shift)
		m.lastLoad = int16(inst.Rt)
	case mips.OpLWC1:
		v, err := m.loadWord(addr)
		if err != nil {
			return err
		}
		m.fpr[inst.Ft()] = v
		m.lastLoad = int16(inst.Ft()) + 32
	}
	return nil
}

func (m *Machine) execStore(inst mips.Inst, addr uint32) error {
	switch inst.Op {
	case mips.OpSW:
		return m.storeWord(addr, m.regs[inst.Rt])
	case mips.OpSB:
		return m.storeByte(addr, byte(m.regs[inst.Rt]))
	case mips.OpSH:
		return m.storeHalf(addr, uint16(m.regs[inst.Rt]))
	case mips.OpSWL:
		w, err := m.loadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * (3 - b)
		keep := w & (uint32(0xFFFFFFFF) << (8 * (b + 1))) // shift of 32 yields 0
		return m.storeWord(addr&^3, keep|m.regs[inst.Rt]>>shift)
	case mips.OpSWR:
		w, err := m.loadWord(addr &^ 3)
		if err != nil {
			return err
		}
		b := addr & 3
		shift := 8 * b
		var keep uint32
		if b != 0 {
			keep = w & (0xFFFFFFFF >> (8 * (4 - b)))
		}
		return m.storeWord(addr&^3, keep|m.regs[inst.Rt]<<shift)
	case mips.OpSWC1:
		return m.storeWord(addr, m.fpr[inst.Ft()])
	}
	return nil
}

// usesReg reports whether inst reads the given register (0-31 GPR,
// 32-63 FPR) — used by the load-use interlock model.
func (m *Machine) usesReg(inst mips.Inst, reg int16) bool {
	if reg < 32 {
		r := uint8(reg)
		if r == 0 {
			return false
		}
		switch inst.Op {
		case mips.OpJ, mips.OpJAL, mips.OpLUI, mips.OpSYSCALL, mips.OpBREAK,
			mips.OpMFHI, mips.OpMFLO, mips.OpBC1T, mips.OpBC1F, mips.OpMFC1:
			return false
		case mips.OpSLL, mips.OpSRL, mips.OpSRA:
			return inst.Rt == r
		case mips.OpMTC1:
			return inst.Rt == r
		}
		if inst.Rs == r {
			return true
		}
		// rt is a source for R-format ALU, shifts, mult/div, branches
		// on two registers, and stores.
		switch inst.Op {
		case mips.OpADD, mips.OpADDU, mips.OpSUB, mips.OpSUBU, mips.OpAND,
			mips.OpOR, mips.OpXOR, mips.OpNOR, mips.OpSLT, mips.OpSLTU,
			mips.OpSLLV, mips.OpSRLV, mips.OpSRAV, mips.OpMULT, mips.OpMULTU,
			mips.OpDIV, mips.OpDIVU, mips.OpBEQ, mips.OpBNE,
			mips.OpSB, mips.OpSH, mips.OpSW, mips.OpSWL, mips.OpSWR:
			return inst.Rt == r
		}
		return false
	}
	f := uint8(reg - 32)
	switch inst.Op.Class() {
	case mips.ClassFPU:
		switch inst.Op {
		case mips.OpMFC1:
			return inst.Fs() == f
		case mips.OpMTC1:
			return false
		case mips.OpADDS, mips.OpSUBS, mips.OpMULS, mips.OpDIVS,
			mips.OpADDD, mips.OpSUBD, mips.OpMULD, mips.OpDIVD:
			return inst.Fs() == f || inst.Ft() == f
		case mips.OpCEQS, mips.OpCLTS, mips.OpCLES,
			mips.OpCEQD, mips.OpCLTD, mips.OpCLED:
			return inst.Fs() == f || inst.Ft() == f
		default: // unary: mov/neg/abs/cvt
			return inst.Fs() == f
		}
	case mips.ClassStore:
		return inst.Op == mips.OpSWC1 && inst.Ft() == f
	}
	return false
}

// --- floating point ---

func (m *Machine) fs(r uint8) float32 { return math.Float32frombits(m.fpr[r]) }
func (m *Machine) setFS(r uint8, v float32) {
	m.fpr[r] = math.Float32bits(v)
}

func (m *Machine) fd(r uint8) float64 {
	return math.Float64frombits(uint64(m.fpr[r+1])<<32 | uint64(m.fpr[r]))
}

func (m *Machine) setFD(r uint8, v float64) {
	bits := math.Float64bits(v)
	m.fpr[r] = uint32(bits)
	m.fpr[r+1] = uint32(bits >> 32)
}

func (m *Machine) execFP(inst mips.Inst) error {
	fd, fs, ft := inst.Fd(), inst.Fs(), inst.Ft()
	switch inst.Op {
	case mips.OpADDS:
		m.setFS(fd, m.fs(fs)+m.fs(ft))
		m.stalls += fpAddStall
	case mips.OpSUBS:
		m.setFS(fd, m.fs(fs)-m.fs(ft))
		m.stalls += fpAddStall
	case mips.OpMULS:
		m.setFS(fd, m.fs(fs)*m.fs(ft))
		m.stalls += fpMulSStall
	case mips.OpDIVS:
		m.setFS(fd, m.fs(fs)/m.fs(ft))
		m.stalls += fpDivSStall
	case mips.OpADDD:
		m.setFD(fd, m.fd(fs)+m.fd(ft))
		m.stalls += fpAddStall
	case mips.OpSUBD:
		m.setFD(fd, m.fd(fs)-m.fd(ft))
		m.stalls += fpAddStall
	case mips.OpMULD:
		m.setFD(fd, m.fd(fs)*m.fd(ft))
		m.stalls += fpMulDStall
	case mips.OpDIVD:
		m.setFD(fd, m.fd(fs)/m.fd(ft))
		m.stalls += fpDivDStall
	case mips.OpABSS:
		m.setFS(fd, float32(math.Abs(float64(m.fs(fs)))))
		m.stalls += fpAddStall
	case mips.OpABSD:
		m.setFD(fd, math.Abs(m.fd(fs)))
		m.stalls += fpAddStall
	case mips.OpNEGS:
		m.setFS(fd, -m.fs(fs))
		m.stalls += fpAddStall
	case mips.OpNEGD:
		m.setFD(fd, -m.fd(fs))
		m.stalls += fpAddStall
	case mips.OpMOVS:
		m.fpr[fd] = m.fpr[fs]
	case mips.OpMOVD:
		m.fpr[fd] = m.fpr[fs]
		m.fpr[fd+1] = m.fpr[fs+1]
	case mips.OpCVTSD:
		m.setFS(fd, float32(m.fd(fs)))
		m.stalls += fpCvtStall
	case mips.OpCVTSW:
		m.setFS(fd, float32(int32(m.fpr[fs])))
		m.stalls += fpCvtStall
	case mips.OpCVTDS:
		m.setFD(fd, float64(m.fs(fs)))
		m.stalls += fpCvtStall
	case mips.OpCVTDW:
		m.setFD(fd, float64(int32(m.fpr[fs])))
		m.stalls += fpCvtStall
	case mips.OpCVTWS:
		m.fpr[fd] = uint32(int32(m.fs(fs)))
		m.stalls += fpCvtStall
	case mips.OpCVTWD:
		m.fpr[fd] = uint32(int32(m.fd(fs)))
		m.stalls += fpCvtStall
	case mips.OpCEQS:
		m.fpc = m.fs(fs) == m.fs(ft)
		m.stalls += fpAddStall
	case mips.OpCLTS:
		m.fpc = m.fs(fs) < m.fs(ft)
		m.stalls += fpAddStall
	case mips.OpCLES:
		m.fpc = m.fs(fs) <= m.fs(ft)
		m.stalls += fpAddStall
	case mips.OpCEQD:
		m.fpc = m.fd(fs) == m.fd(ft)
		m.stalls += fpAddStall
	case mips.OpCLTD:
		m.fpc = m.fd(fs) < m.fd(ft)
		m.stalls += fpAddStall
	case mips.OpCLED:
		m.fpc = m.fd(fs) <= m.fd(ft)
		m.stalls += fpAddStall
	default:
		return m.faultf(ErrInvalidOp, "op %v", inst.Op)
	}
	return nil
}
