// Package sim is a functional (architectural) simulator for MIPS R2000
// user-mode programs produced by internal/asm. It executes branch delay
// slots per MIPS-I, models HI/LO multiply/divide latency and load-use
// interlocks as pipeline stall cycles, implements a COP1 floating-point
// subset, and services SPIM-style syscalls.
//
// Its role in the reproduction is the one pixie played in the paper: it
// documents the detailed behaviour of each program and generates
// instruction address traces for the cache simulations (internal/core).
package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ccrp/internal/asm"
	"ccrp/internal/metrics"
	"ccrp/internal/mips"
	"ccrp/internal/trace"
)

// Stall-model parameters, in processor cycles. The multiply/divide
// latencies are the R2000's; the FP latencies approximate the R2010 FPA.
const (
	multLatency  = 12
	divLatency   = 35
	loadUseStall = 1
	fpAddStall   = 1
	fpMulSStall  = 3
	fpMulDStall  = 4
	fpDivSStall  = 11
	fpDivDStall  = 18
	fpCvtStall   = 2
)

// Simulation errors.
var (
	ErrMaxInstructions = errors.New("sim: instruction limit exceeded")
	ErrBadAddress      = errors.New("sim: address out of range")
	ErrUnaligned       = errors.New("sim: unaligned access")
	ErrInvalidOp       = errors.New("sim: invalid instruction")
	ErrOverflow        = errors.New("sim: arithmetic overflow trap")
	ErrBadSyscall      = errors.New("sim: unknown syscall")
)

// Config controls a simulation run.
type Config struct {
	Stdout       io.Writer // syscall console output; nil discards it
	MaxInstr     uint64    // dynamic instruction limit; 0 means 100M
	CollectTrace bool      // record a trace.Trace in the Result
	Input        []int32   // values returned by the read_int syscall, in order

	// Metrics, when set, receives the dynamic instruction mix by pipeline
	// class and per-service syscall counts. Nil (the default) keeps the
	// dispatch loop uninstrumented.
	Metrics *metrics.Registry
}

// Result summarizes a completed run.
type Result struct {
	Trace        *trace.Trace // nil unless Config.CollectTrace
	Instructions uint64
	Stalls       uint64 // pipeline stall cycles (load-use, HI/LO, FP)
	Loads        uint64
	Stores       uint64
	ExitCode     int32
}

// BaseCycles returns instructions + stalls: the execution cycles a
// perfect (always-hit) instruction memory would give. Cache refill and
// data access penalties are added by the system model on top of this.
func (r *Result) BaseCycles() uint64 { return r.Instructions + r.Stalls }

// Machine is one R2000 processor plus its 24-bit physical memory.
type Machine struct {
	cfg  Config
	mem  []byte
	regs [32]uint32
	fpr  [32]uint32
	hi   uint32
	lo   uint32
	fpc  bool // FP condition flag

	pc  uint32
	npc uint32

	icount    uint64
	stalls    uint64
	loads     uint64
	stores    uint64
	hiloReady uint64 // icount at which HI/LO are interlocked-free
	lastLoad  int16  // register written by the previous load, -1 if none
	inputPos  int
	events    []trace.Event
	exitCode  int32
	done      bool
	textLimit uint32
	im        *instruments // nil when metrics are disabled
}

// New loads prog into a fresh machine.
func New(prog *asm.Program, cfg Config) *Machine {
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = 100_000_000
	}
	m := &Machine{
		cfg:      cfg,
		mem:      make([]byte, asm.AddrSpace),
		pc:       prog.Entry,
		npc:      prog.Entry + 4,
		lastLoad: -1,
	}
	copy(m.mem[asm.TextBase:], prog.Text)
	copy(m.mem[asm.DataBase:], prog.Data)
	m.textLimit = asm.TextBase + uint32(len(prog.Text))
	m.regs[mips.RegSP] = asm.StackTop
	m.regs[mips.RegGP] = asm.DataBase + 0x8000
	if cfg.CollectTrace {
		m.events = make([]trace.Event, 0, 1<<16)
	}
	if cfg.Metrics != nil {
		m.im = newInstruments(cfg.Metrics)
	}
	return m
}

// Reg returns the value of GPR r.
func (m *Machine) Reg(r uint8) uint32 { return m.regs[r&31] }

// SetReg writes GPR r (writes to $zero are ignored).
func (m *Machine) SetReg(r uint8, v uint32) {
	if r != 0 {
		m.regs[r&31] = v
	}
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// faultf builds an execution error annotated with the faulting PC.
func (m *Machine) faultf(base error, format string, args ...any) error {
	return fmt.Errorf("%w at pc=%#08x: %s", base, m.pc, fmt.Sprintf(format, args...))
}

func (m *Machine) checkAddr(addr uint32, size uint32) error {
	if addr >= uint32(len(m.mem)) || addr+size > uint32(len(m.mem)) {
		return m.faultf(ErrBadAddress, "%#08x", addr)
	}
	return nil
}

func (m *Machine) loadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, m.faultf(ErrUnaligned, "lw %#08x", addr)
	}
	if err := m.checkAddr(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.mem[addr:]), nil
}

func (m *Machine) storeWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return m.faultf(ErrUnaligned, "sw %#08x", addr)
	}
	if err := m.checkAddr(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.mem[addr:], v)
	return nil
}

func (m *Machine) loadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, m.faultf(ErrUnaligned, "lh %#08x", addr)
	}
	if err := m.checkAddr(addr, 2); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(m.mem[addr:]), nil
}

func (m *Machine) storeHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return m.faultf(ErrUnaligned, "sh %#08x", addr)
	}
	if err := m.checkAddr(addr, 2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(m.mem[addr:], v)
	return nil
}

func (m *Machine) loadByte(addr uint32) (byte, error) {
	if err := m.checkAddr(addr, 1); err != nil {
		return 0, err
	}
	return m.mem[addr], nil
}

func (m *Machine) storeByte(addr uint32, v byte) error {
	if err := m.checkAddr(addr, 1); err != nil {
		return err
	}
	m.mem[addr] = v
	return nil
}

// Run executes until the program exits (syscall 10/17), an error occurs,
// or the instruction limit is hit.
func (m *Machine) Run() (*Result, error) {
	for !m.done {
		if m.icount >= m.cfg.MaxInstr {
			return m.result(), m.faultf(ErrMaxInstructions, "%d executed", m.icount)
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() *Result {
	r := &Result{
		Instructions: m.icount,
		Stalls:       m.stalls,
		Loads:        m.loads,
		Stores:       m.stores,
		ExitCode:     m.exitCode,
	}
	if m.cfg.CollectTrace {
		r.Trace = &trace.Trace{Events: m.events, Stalls: m.stalls}
	}
	return r
}

// Step executes exactly one instruction; it is a no-op once the program
// has exited. Drivers like the ccdb debugger use it for single-stepping.
func (m *Machine) Step() error {
	if m.done {
		return nil
	}
	if m.icount >= m.cfg.MaxInstr {
		return m.faultf(ErrMaxInstructions, "%d executed", m.icount)
	}
	return m.step()
}

// Done reports whether the program has exited.
func (m *Machine) Done() bool { return m.done }

// Instructions returns the dynamic instruction count so far.
func (m *Machine) Instructions() uint64 { return m.icount }

// Snapshot returns the current result counters without ending the run.
func (m *Machine) Snapshot() *Result { return m.result() }

// HI and LO expose the multiply/divide result registers.
func (m *Machine) HI() uint32 { return m.hi }
func (m *Machine) LO() uint32 { return m.lo }

// FPR returns the raw bits of FP register r.
func (m *Machine) FPR(r uint8) uint32 { return m.fpr[r&31] }

// ReadWord reads a word from memory without tracing (for debuggers).
func (m *Machine) ReadWord(addr uint32) (uint32, error) { return m.loadWord(addr) }

// PeekByte reads a byte from memory without tracing.
func (m *Machine) PeekByte(addr uint32) (byte, error) { return m.loadByte(addr) }
