// Package sim is a functional (architectural) simulator for user-mode
// programs produced by internal/asm. The Machine owns the generic state —
// memory, the general register file, the PC pair, counters, syscalls —
// and delegates instruction semantics to the program's isa.Executor
// backend (MIPS R2000 with delay slots, HI/LO latency, and a COP1 subset
// by default; RV32I via internal/riscv).
//
// Its role in the reproduction is the one pixie played in the paper: it
// documents the detailed behaviour of each program and generates
// instruction address traces for the cache simulations (internal/core).
package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ccrp/internal/asm"
	"ccrp/internal/isa"
	"ccrp/internal/metrics"
	"ccrp/internal/trace"
)

// Simulation errors. The fault values are shared with the ISA backends
// through internal/isa so errors.Is works on either side.
var (
	ErrMaxInstructions = errors.New("sim: instruction limit exceeded")
	ErrBadAddress      = isa.ErrBadAddress
	ErrUnaligned       = isa.ErrUnaligned
	ErrInvalidOp       = isa.ErrInvalidOp
	ErrOverflow        = isa.ErrOverflow
	ErrBadSyscall      = isa.ErrBadSyscall
)

// Config controls a simulation run.
type Config struct {
	Stdout       io.Writer // syscall console output; nil discards it
	MaxInstr     uint64    // dynamic instruction limit; 0 means 100M
	CollectTrace bool      // record a trace.Trace in the Result
	Input        []int32   // values returned by the read_int syscall, in order

	// Metrics, when set, receives the dynamic instruction mix by pipeline
	// class and per-service syscall counts. Nil (the default) keeps the
	// dispatch loop uninstrumented.
	Metrics *metrics.Registry
}

// Result summarizes a completed run.
type Result struct {
	Trace        *trace.Trace // nil unless Config.CollectTrace
	Instructions uint64
	Stalls       uint64 // pipeline stall cycles (load-use, HI/LO, FP)
	Loads        uint64
	Stores       uint64
	ExitCode     int32
}

// BaseCycles returns instructions + stalls: the execution cycles a
// perfect (always-hit) instruction memory would give. Cache refill and
// data access penalties are added by the system model on top of this.
func (r *Result) BaseCycles() uint64 { return r.Instructions + r.Stalls }

// Machine is one processor plus its 24-bit physical memory. It implements
// isa.CPU; ISA-private state (HI/LO, FP registers, interlock timers)
// lives in the executor.
type Machine struct {
	cfg  Config
	mem  []byte
	regs [32]uint32

	pc  uint32
	npc uint32

	icount    uint64
	stalls    uint64
	loads     uint64
	stores    uint64
	inputPos  int
	events    []trace.Event
	ev        trace.Event // event being built for the current instruction
	exitCode  int32
	done      bool
	textLimit uint32
	im        *instruments // nil when metrics are disabled

	exec    isa.Executor
	execErr error // deferred ISA-resolution failure, reported on first step
}

var _ isa.CPU = (*Machine)(nil)

// New loads prog into a fresh machine. The executor backend is resolved
// from prog.ISA (empty selects the default); a resolution failure is
// reported by the first Run or Step call.
func New(prog *asm.Program, cfg Config) *Machine {
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = 100_000_000
	}
	m := &Machine{
		cfg: cfg,
		mem: make([]byte, asm.AddrSpace),
		pc:  prog.Entry,
		npc: prog.Entry + 4,
	}
	copy(m.mem[asm.TextBase:], prog.Text)
	copy(m.mem[asm.DataBase:], prog.Data)
	m.textLimit = asm.TextBase + uint32(len(prog.Text))
	if cfg.CollectTrace {
		m.events = make([]trace.Event, 0, 1<<16)
	}
	if cfg.Metrics != nil {
		m.im = newInstruments(cfg.Metrics)
	}
	arch, err := isa.Lookup(prog.ISA)
	if err != nil {
		m.execErr = err
		return m
	}
	eb, ok := arch.(isa.ExecBackend)
	if !ok {
		m.execErr = fmt.Errorf("sim: ISA %q has no execution backend", arch.Name())
		return m
	}
	m.npc = prog.Entry + uint32(arch.WordBytes())
	m.exec = eb.NewExecutor()
	m.exec.Reset(m)
	return m
}

// Reg returns the value of GPR r.
func (m *Machine) Reg(r uint8) uint32 { return m.regs[r&31] }

// SetReg writes GPR r (writes to register 0 are ignored).
func (m *Machine) SetReg(r uint8, v uint32) {
	if r&31 != 0 {
		m.regs[r&31] = v
	}
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// SetPC sets the current program counter.
func (m *Machine) SetPC(pc uint32) { m.pc = pc }

// NPC returns the next fetch address (the delay-slot companion of PC).
func (m *Machine) NPC() uint32 { return m.npc }

// SetNPC sets the next fetch address.
func (m *Machine) SetNPC(pc uint32) { m.npc = pc }

// Icount returns the dynamic instruction count, not counting the
// instruction currently executing.
func (m *Machine) Icount() uint64 { return m.icount }

// AddStalls attributes n pipeline stall cycles to the run.
func (m *Machine) AddStalls(n uint64) { m.stalls += n }

// CountClass attributes the current instruction to its pipeline class.
func (m *Machine) CountClass(c isa.Class) {
	if m.im != nil {
		m.im.class[c].Inc()
	}
}

// NoteLoad records that the current instruction reads data memory at addr.
func (m *Machine) NoteLoad(addr uint32) {
	m.ev.Flags |= trace.FlagLoad
	m.ev.Addr = addr
	m.loads++
}

// NoteStore records that the current instruction writes data memory at addr.
func (m *Machine) NoteStore(addr uint32) {
	m.ev.Flags |= trace.FlagStore
	m.ev.Addr = addr
	m.stores++
}

// Exit halts the machine with the given status code.
func (m *Machine) Exit(code uint32) {
	m.done = true
	m.exitCode = int32(code)
}

// Faultf builds an execution error annotated with the faulting PC.
func (m *Machine) Faultf(base error, format string, args ...any) error {
	return fmt.Errorf("%w at pc=%#08x: %s", base, m.pc, fmt.Sprintf(format, args...))
}

// FetchWord reads the instruction word at pc, enforcing the text limit
// and word alignment.
func (m *Machine) FetchWord(pc uint32) (isa.Word, error) {
	if pc >= m.textLimit || pc&3 != 0 {
		return 0, m.Faultf(ErrBadAddress, "instruction fetch outside text (limit %#x)", m.textLimit)
	}
	w, err := m.LoadWord(pc)
	return isa.Word(w), err
}

func (m *Machine) checkAddr(addr uint32, size uint32) error {
	if addr >= uint32(len(m.mem)) || addr+size > uint32(len(m.mem)) {
		return m.Faultf(ErrBadAddress, "%#08x", addr)
	}
	return nil
}

// LoadWord reads an aligned word of data memory.
func (m *Machine) LoadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, m.Faultf(ErrUnaligned, "lw %#08x", addr)
	}
	if err := m.checkAddr(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.mem[addr:]), nil
}

// StoreWord writes an aligned word of data memory.
func (m *Machine) StoreWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return m.Faultf(ErrUnaligned, "sw %#08x", addr)
	}
	if err := m.checkAddr(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.mem[addr:], v)
	return nil
}

// LoadHalf reads an aligned halfword of data memory.
func (m *Machine) LoadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, m.Faultf(ErrUnaligned, "lh %#08x", addr)
	}
	if err := m.checkAddr(addr, 2); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(m.mem[addr:]), nil
}

// StoreHalf writes an aligned halfword of data memory.
func (m *Machine) StoreHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return m.Faultf(ErrUnaligned, "sh %#08x", addr)
	}
	if err := m.checkAddr(addr, 2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(m.mem[addr:], v)
	return nil
}

// LoadByte reads a byte of data memory.
func (m *Machine) LoadByte(addr uint32) (byte, error) {
	if err := m.checkAddr(addr, 1); err != nil {
		return 0, err
	}
	return m.mem[addr], nil
}

// StoreByte writes a byte of data memory.
func (m *Machine) StoreByte(addr uint32, v byte) error {
	if err := m.checkAddr(addr, 1); err != nil {
		return err
	}
	m.mem[addr] = v
	return nil
}

// step runs the executor for one instruction and completes the machine's
// per-instruction accounting on success.
func (m *Machine) step() error {
	if m.exec == nil {
		return m.execErr
	}
	m.ev = trace.Event{PC: m.pc}
	if err := m.exec.Step(m); err != nil {
		return err
	}
	if m.cfg.CollectTrace {
		m.events = append(m.events, m.ev)
	}
	m.icount++
	return nil
}

// Run executes until the program exits (syscall 10/17), an error occurs,
// or the instruction limit is hit.
func (m *Machine) Run() (*Result, error) {
	for !m.done {
		if m.icount >= m.cfg.MaxInstr {
			return m.result(), m.Faultf(ErrMaxInstructions, "%d executed", m.icount)
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() *Result {
	r := &Result{
		Instructions: m.icount,
		Stalls:       m.stalls,
		Loads:        m.loads,
		Stores:       m.stores,
		ExitCode:     m.exitCode,
	}
	if m.cfg.CollectTrace {
		r.Trace = &trace.Trace{Events: m.events, Stalls: m.stalls}
	}
	return r
}

// Step executes exactly one instruction; it is a no-op once the program
// has exited. Drivers like the ccdb debugger use it for single-stepping.
func (m *Machine) Step() error {
	if m.done {
		return nil
	}
	if m.icount >= m.cfg.MaxInstr {
		return m.Faultf(ErrMaxInstructions, "%d executed", m.icount)
	}
	return m.step()
}

// Done reports whether the program has exited.
func (m *Machine) Done() bool { return m.done }

// Instructions returns the dynamic instruction count so far.
func (m *Machine) Instructions() uint64 { return m.icount }

// Snapshot returns the current result counters without ending the run.
func (m *Machine) Snapshot() *Result { return m.result() }

// execState returns the executor's optional register-inspection surface.
func (m *Machine) execState() (isa.ExecState, bool) {
	s, ok := m.exec.(isa.ExecState)
	return s, ok
}

// HI and LO expose the multiply/divide result registers on backends that
// have them (zero otherwise).
func (m *Machine) HI() uint32 {
	if s, ok := m.execState(); ok {
		return s.ReadHI()
	}
	return 0
}

// LO is HI's companion accessor.
func (m *Machine) LO() uint32 {
	if s, ok := m.execState(); ok {
		return s.ReadLO()
	}
	return 0
}

// FPR returns the raw bits of FP register r (zero on backends without a
// floating-point register file).
func (m *Machine) FPR(r uint8) uint32 {
	if s, ok := m.execState(); ok {
		return s.ReadFPR(r)
	}
	return 0
}

// ReadWord reads a word from memory without tracing (for debuggers).
func (m *Machine) ReadWord(addr uint32) (uint32, error) { return m.LoadWord(addr) }

// PeekByte reads a byte from memory without tracing.
func (m *Machine) PeekByte(addr uint32) (byte, error) { return m.LoadByte(addr) }
