package lzw

import (
	"bytes"
	"testing"
)

// FuzzDecompress hardens the LZW decoder against arbitrary streams.
func FuzzDecompress(f *testing.F) {
	good, err := Compress([]byte("seed corpus for the fuzzer"), 16)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, 16)
	f.Add([]byte{}, 16)
	f.Add([]byte{0xFF, 0xFF, 0xFF}, 9)
	f.Fuzz(func(t *testing.T, data []byte, maxBits int) {
		if maxBits < 9 || maxBits > 24 {
			return
		}
		out, err := Decompress(data, maxBits)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-compress and round-trip.
		c, err := Compress(out, maxBits)
		if err != nil {
			t.Fatalf("recompression failed: %v", err)
		}
		d, err := Decompress(c, maxBits)
		if err != nil || !bytes.Equal(d, out) {
			t.Fatalf("round trip of accepted output failed: %v", err)
		}
	})
}

// FuzzRoundTrip checks Compress then Decompress is the identity.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("TOBEORNOTTOBE"))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Compress(data, 12)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Decompress(c, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(d), len(data))
		}
	})
}
