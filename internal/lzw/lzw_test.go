package lzw

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, maxBits int) {
	t.Helper()
	c, err := Compress(data, maxBits)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	d, err := Decompress(c, maxBits)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(d, data) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(d), len(data))
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		[]byte("a"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("TOBEORNOTTOBEORTOBEORNOT"),
		[]byte(strings.Repeat("the quick brown fox ", 100)),
		bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 512),
	}
	for _, data := range cases {
		roundTrip(t, data, MaxBitsDefault)
		roundTrip(t, data, 12)
	}
}

func TestKwKwKCase(t *testing.T) {
	// "abababab..." exercises the code==len(table) special case early.
	roundTrip(t, bytes.Repeat([]byte("ab"), 50), MaxBitsDefault)
	roundTrip(t, bytes.Repeat([]byte{0}, 1000), MaxBitsDefault)
}

func TestDictionaryResetPath(t *testing.T) {
	// Random data at a small maxBits fills the table and forces CLEAR.
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 200000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	roundTrip(t, data, 9) // table of 512: resets constantly
	roundTrip(t, data, 12)
}

func TestWidthGrowthBoundary(t *testing.T) {
	// Incompressible-ish data long enough to cross 512, 1024, ... entries.
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 64000)
	for i := range data {
		data[i] = byte(rng.Intn(251)) // avoid trivial repeats lining up
	}
	roundTrip(t, data, 16)
}

func TestCompressesRepetitiveProgramText(t *testing.T) {
	data := bytes.Repeat([]byte{0x27, 0xBD, 0xFF, 0xE8, 0xAF, 0xBF, 0x00, 0x14}, 4000)
	c, err := Compress(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data)/4 {
		t.Errorf("repetitive data barely compressed: %d of %d", len(c), len(data))
	}
	r, err := Ratio(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0.25 {
		t.Errorf("ratio = %.3f", r)
	}
}

func TestRatioEmpty(t *testing.T) {
	r, err := Ratio(nil, 16)
	if err != nil || r != 1 {
		t.Fatalf("Ratio(nil) = %v, %v", r, err)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := Compress([]byte("x"), 8); err == nil {
		t.Error("maxBits 8 accepted")
	}
	if _, err := Compress([]byte("x"), 25); err == nil {
		t.Error("maxBits 25 accepted")
	}
	if _, err := Decompress([]byte{0xFF}, 8); err == nil {
		t.Error("decompress maxBits 8 accepted")
	}
}

func TestCorruptStream(t *testing.T) {
	c, err := Compress([]byte("hello hello hello"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c[:len(c)-2], 16); err == nil {
		t.Error("truncated stream accepted")
	}
	// A stream starting with a wildly out-of-range code.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Decompress(bad, 16); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(data []byte, wide bool) bool {
		maxBits := 10
		if wide {
			maxBits = 16
		}
		c, err := Compress(data, maxBits)
		if err != nil {
			return false
		}
		d, err := Decompress(c, maxBits)
		if err != nil {
			return false
		}
		return bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	data := bytes.Repeat([]byte("embedded controller firmware image segment "), 1000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := bytes.Repeat([]byte("embedded controller firmware image segment "), 1000)
	c, err := Compress(data, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(c, 16); err != nil {
			b.Fatal(err)
		}
	}
}
