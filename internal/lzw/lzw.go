// Package lzw implements an LZW compressor in the style of the Unix
// compress(1) utility [Welch84]. The paper uses compress as the reference
// point for its Figure 5 comparison: it is very effective on whole program
// files, but being a beginning-to-end adaptive method it cannot be used
// for per-cache-line decompression, which is why the CCRP falls back to
// block-oriented Huffman codes.
//
// Codes begin at 9 bits and grow to maxBits (compress's default 16); a
// CLEAR code resets the dictionary when it fills, mimicking block mode.
package lzw

import (
	"errors"
	"fmt"

	"ccrp/internal/bitio"
)

const (
	clearCode = 256 // emitted to reset the dictionary
	eofCode   = 257 // emitted once at end of stream
	firstFree = 258
	minBits   = 9
)

// ErrCorrupt is returned when a compressed stream is malformed.
var ErrCorrupt = errors.New("lzw: corrupt stream")

// MaxBitsDefault matches compress(1)'s default -b 16.
const MaxBitsDefault = 16

// Compress encodes data with LZW codes growing from 9 up to maxBits bits.
func Compress(data []byte, maxBits int) ([]byte, error) {
	if maxBits < minBits || maxBits > 24 {
		return nil, fmt.Errorf("lzw: maxBits %d out of range [%d,24]", maxBits, minBits)
	}
	var w bitio.Writer
	dict := make(map[string]int, 1<<12)
	reset := func() {
		for k := range dict {
			delete(dict, k)
		}
		for i := 0; i < 256; i++ {
			dict[string([]byte{byte(i)})] = i
		}
	}
	reset()
	next := firstFree
	width := uint(minBits)
	cur := []byte{}
	emit := func(code int) {
		w.WriteBits(uint64(code), width)
	}
	for _, b := range data {
		ext := append(cur, b)
		if _, ok := dict[string(ext)]; ok {
			cur = ext
			continue
		}
		emit(dict[string(cur)])
		if next < 1<<maxBits {
			dict[string(ext)] = next
			next++
			if next > 1<<width && width < uint(maxBits) {
				width++
			}
		} else {
			emit(clearCode)
			reset()
			next = firstFree
			width = minBits
		}
		cur = cur[:0]
		cur = append(cur, b)
	}
	if len(cur) > 0 {
		emit(dict[string(cur)])
	}
	emit(eofCode)
	return w.Bytes(), nil
}

// Decompress decodes a stream produced by Compress with the same maxBits.
func Decompress(comp []byte, maxBits int) ([]byte, error) {
	if maxBits < minBits || maxBits > 24 {
		return nil, fmt.Errorf("lzw: maxBits %d out of range [%d,24]", maxBits, minBits)
	}
	r := bitio.NewReader(comp)
	table := make([][]byte, firstFree, 1<<12)
	reset := func() {
		table = table[:firstFree]
		for i := 0; i < 256; i++ {
			table[i] = []byte{byte(i)}
		}
	}
	reset()
	width := uint(minBits)
	var out []byte
	var prev []byte
	for {
		codeU, err := r.ReadBits(width)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
		}
		code := int(codeU)
		switch {
		case code == eofCode:
			return out, nil
		case code == clearCode:
			reset()
			width = minBits
			prev = nil
			continue
		case code < len(table) && table[code] != nil:
			seq := table[code]
			out = append(out, seq...)
			if prev != nil && len(table) < 1<<maxBits {
				ent := make([]byte, 0, len(prev)+1)
				ent = append(ent, prev...)
				ent = append(ent, seq[0])
				table = append(table, ent)
			}
			prev = seq
		case code == len(table) && prev != nil:
			// The KwKwK special case.
			ent := make([]byte, 0, len(prev)+1)
			ent = append(ent, prev...)
			ent = append(ent, prev[0])
			out = append(out, ent...)
			if len(table) < 1<<maxBits {
				table = append(table, ent)
			}
			prev = ent
		default:
			return nil, fmt.Errorf("%w: code %d out of range", ErrCorrupt, code)
		}
		if len(table)+1 > 1<<width && width < uint(maxBits) {
			width++
		}
	}
}

// Ratio compresses data and returns compressedSize/originalSize. It is the
// Figure 5 "Unix compress" reference column.
func Ratio(data []byte, maxBits int) (float64, error) {
	if len(data) == 0 {
		return 1, nil
	}
	c, err := Compress(data, maxBits)
	if err != nil {
		return 0, err
	}
	return float64(len(c)) / float64(len(data)), nil
}
