package clb

import (
	"testing"

	"ccrp/internal/lat"
)

func entry(base uint32) lat.Entry { return lat.Entry{Base: base} }

func TestHitMiss(t *testing.T) {
	c := New(4)
	if _, hit := c.Lookup(7); hit {
		t.Error("empty CLB hit")
	}
	c.Insert(7, entry(0x700))
	e, hit := c.Lookup(7)
	if !hit || e.Base != 0x700 {
		t.Errorf("lookup after insert: hit=%v base=%#x", hit, e.Base)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Insert(1, entry(0x100))
	c.Insert(2, entry(0x200))
	c.Lookup(1) // 1 is now most recent
	c.Insert(3, entry(0x300))
	if _, hit := c.Lookup(2); hit {
		t.Error("LRU victim 2 still present")
	}
	if _, hit := c.Lookup(1); !hit {
		t.Error("recently used 1 evicted")
	}
	if _, hit := c.Lookup(3); !hit {
		t.Error("inserted 3 missing")
	}
}

func TestFillsInvalidFirst(t *testing.T) {
	c := New(3)
	c.Insert(1, entry(1))
	c.Insert(2, entry(2))
	c.Insert(3, entry(3))
	for _, tag := range []uint32{1, 2, 3} {
		if _, hit := c.Lookup(tag); !hit {
			t.Errorf("tag %d missing after fill", tag)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.Insert(5, entry(5))
	c.Lookup(5)
	c.Reset()
	if _, hit := c.Lookup(5); hit {
		t.Error("entry survived reset")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats after reset = %+v", s)
	}
	if c.Size() != 2 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestEmptyStats(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
}

func BenchmarkLookupHit16(b *testing.B) {
	c := New(16)
	for i := uint32(0); i < 16; i++ {
		c.Insert(i, entry(i))
	}
	for i := 0; i < b.N; i++ {
		c.Lookup(uint32(i & 15))
	}
}
