package clb

import (
	"testing"

	"ccrp/internal/lat"
)

func entry(base uint32) lat.Entry { return lat.Entry{Base: base} }

func TestHitMiss(t *testing.T) {
	c := New(4)
	if _, hit := c.Lookup(7); hit {
		t.Error("empty CLB hit")
	}
	c.Insert(7, entry(0x700))
	e, hit := c.Lookup(7)
	if !hit || e.Base != 0x700 {
		t.Errorf("lookup after insert: hit=%v base=%#x", hit, e.Base)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Insert(1, entry(0x100))
	c.Insert(2, entry(0x200))
	c.Lookup(1) // 1 is now most recent
	c.Insert(3, entry(0x300))
	if _, hit := c.Lookup(2); hit {
		t.Error("LRU victim 2 still present")
	}
	if _, hit := c.Lookup(1); !hit {
		t.Error("recently used 1 evicted")
	}
	if _, hit := c.Lookup(3); !hit {
		t.Error("inserted 3 missing")
	}
}

func TestFillsInvalidFirst(t *testing.T) {
	c := New(3)
	c.Insert(1, entry(1))
	c.Insert(2, entry(2))
	c.Insert(3, entry(3))
	for _, tag := range []uint32{1, 2, 3} {
		if _, hit := c.Lookup(tag); !hit {
			t.Errorf("tag %d missing after fill", tag)
		}
	}
}

// TestInsertDuplicateTagUpdatesInPlace is the regression test for the
// duplicate-tag bug: re-inserting a resident LAT index must refresh that
// slot, not burn a second one. On the old code the second Insert filled
// a free slot with a duplicate tag, silently shrinking effective
// capacity (EvictionAge saw no free slot left) and returning the stale
// entry was load-order dependent.
func TestInsertDuplicateTagUpdatesInPlace(t *testing.T) {
	c := New(2)
	c.Insert(10, entry(0xA00))
	c.Insert(10, entry(0xB00))

	if _, full := c.EvictionAge(); full {
		t.Fatal("duplicate insert consumed a second slot: size-2 CLB reports full after one distinct tag")
	}
	e, hit := c.Lookup(10)
	if !hit {
		t.Fatal("resident tag missing after duplicate insert")
	}
	if e.Base != 0xB00 {
		t.Fatalf("lookup returned base %#x, want the updated %#x", e.Base, 0xB00)
	}

	// The freed capacity must actually hold a second distinct tag.
	c.Insert(11, entry(0xC00))
	if _, hit := c.Lookup(10); !hit {
		t.Error("tag 10 evicted from a CLB with capacity for both tags")
	}
	if _, hit := c.Lookup(11); !hit {
		t.Error("tag 11 missing after insert into the free slot")
	}
}

// TestInsertDuplicateRefreshesLRU: the in-place update must also count
// as a use, or the refreshed entry becomes the next eviction victim.
func TestInsertDuplicateRefreshesLRU(t *testing.T) {
	c := New(2)
	c.Insert(1, entry(0x100))
	c.Insert(2, entry(0x200))
	c.Insert(1, entry(0x110)) // refresh: 2 is now LRU
	c.Insert(3, entry(0x300))
	if _, hit := c.Lookup(2); hit {
		t.Error("LRU victim 2 still present after refresh of 1")
	}
	if e, hit := c.Lookup(1); !hit || e.Base != 0x110 {
		t.Errorf("refreshed entry: hit=%v base=%#x, want hit with base 0x110", hit, e.Base)
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.Insert(5, entry(5))
	c.Lookup(5)
	c.Reset()
	if _, hit := c.Lookup(5); hit {
		t.Error("entry survived reset")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats after reset = %+v", s)
	}
	if c.Size() != 2 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestEmptyStats(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
}

func BenchmarkLookupHit16(b *testing.B) {
	c := New(16)
	for i := uint32(0); i < 16; i++ {
		c.Insert(i, entry(i))
	}
	for i := 0; i < b.N; i++ {
		c.Lookup(uint32(i & 15))
	}
}
