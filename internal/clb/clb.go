// Package clb implements the Cache Line Address Lookaside Buffer: a small
// fully-associative, LRU-replaced cache of Line Address Table entries,
// structurally the TLB of the CCRP's compressed address translation (the
// CLB/LAT pair mirrors the TLB/page-table pair of a virtual memory
// system). The CLB is probed in parallel with every instruction cache
// access, so a hit adds no cycles even on a cache miss; only a CLB miss
// costs a LAT fetch from instruction memory.
package clb

import (
	"fmt"

	"ccrp/internal/lat"
)

// Stats counts CLB probe outcomes.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses / probes.
func (s Stats) MissRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Hits+s.Misses)
}

type slot struct {
	tag   uint32 // LAT entry index
	entry lat.Entry
	used  uint64 // LRU clock
	valid bool
}

// CLB is a fully-associative buffer of LAT entries.
type CLB struct {
	slots []slot
	clock uint64
	stats Stats
}

// New returns a CLB with n entries (the paper evaluates 4, 8, and 16).
func New(n int) *CLB {
	if n < 1 {
		panic(fmt.Sprintf("clb: size %d must be positive", n))
	}
	return &CLB{slots: make([]slot, n)}
}

// Size returns the number of entries.
func (c *CLB) Size() int { return len(c.slots) }

// Lookup probes for the LAT entry with the given index, updating LRU
// state and statistics.
func (c *CLB) Lookup(latIndex uint32) (lat.Entry, bool) {
	c.clock++
	for i := range c.slots {
		if c.slots[i].valid && c.slots[i].tag == latIndex {
			c.slots[i].used = c.clock
			c.stats.Hits++
			return c.slots[i].entry, true
		}
	}
	c.stats.Misses++
	return lat.Entry{}, false
}

// Insert fills the CLB with a LAT entry fetched from memory, evicting the
// least recently used slot.
func (c *CLB) Insert(latIndex uint32, e lat.Entry) {
	c.clock++
	victim := 0
	for i := range c.slots {
		if !c.slots[i].valid {
			victim = i
			break
		}
		if c.slots[i].used < c.slots[victim].used {
			victim = i
		}
	}
	c.slots[victim] = slot{tag: latIndex, entry: e, used: c.clock, valid: true}
}

// Stats returns the probe counters.
func (c *CLB) Stats() Stats { return c.stats }

// Reset invalidates all slots and clears statistics.
func (c *CLB) Reset() {
	for i := range c.slots {
		c.slots[i] = slot{}
	}
	c.clock = 0
	c.stats = Stats{}
}
