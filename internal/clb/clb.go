// Package clb implements the Cache Line Address Lookaside Buffer: a small
// fully-associative, LRU-replaced cache of Line Address Table entries,
// structurally the TLB of the CCRP's compressed address translation (the
// CLB/LAT pair mirrors the TLB/page-table pair of a virtual memory
// system). The CLB is probed in parallel with every instruction cache
// access, so a hit adds no cycles even on a cache miss; only a CLB miss
// costs a LAT fetch from instruction memory.
package clb

import (
	"fmt"

	"ccrp/internal/lat"
	"ccrp/internal/metrics"
)

// Stats counts CLB probe outcomes.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses / probes.
func (s Stats) MissRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Hits+s.Misses)
}

type slot struct {
	tag   uint32 // LAT entry index
	entry lat.Entry
	used  uint64 // LRU clock
	valid bool
}

// CLB is a fully-associative buffer of LAT entries.
type CLB struct {
	slots []slot
	clock uint64
	stats Stats
	im    *instruments // nil when metrics are disabled
}

// instruments are the optional observability hooks. Eviction age is the
// probe-clock distance since the victim was last touched — the churn
// signal that distinguishes a too-small CLB from cold-start misses.
type instruments struct {
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	evictAge  *metrics.Histogram
}

// Instrument registers this CLB's counters on reg and enables probe and
// eviction accounting. A nil registry disables instrumentation again.
func (c *CLB) Instrument(reg *metrics.Registry) {
	if reg == nil {
		c.im = nil
		return
	}
	c.im = &instruments{
		hits:      reg.Counter("ccrp_clb_hits_total", "CLB probe hits"),
		misses:    reg.Counter("ccrp_clb_misses_total", "CLB probe misses"),
		evictions: reg.Counter("ccrp_clb_evictions_total", "CLB valid-entry evictions"),
		evictAge: reg.Histogram("ccrp_clb_eviction_age_probes",
			"probes since last use of evicted CLB entries",
			metrics.ExpBuckets(1, 4, 10)),
	}
}

// New returns a CLB with n entries (the paper evaluates 4, 8, and 16).
func New(n int) *CLB {
	if n < 1 {
		panic(fmt.Sprintf("clb: size %d must be positive", n))
	}
	return &CLB{slots: make([]slot, n)}
}

// Size returns the number of entries.
func (c *CLB) Size() int { return len(c.slots) }

// Lookup probes for the LAT entry with the given index, updating LRU
// state and statistics.
func (c *CLB) Lookup(latIndex uint32) (lat.Entry, bool) {
	c.clock++
	for i := range c.slots {
		if c.slots[i].valid && c.slots[i].tag == latIndex {
			c.slots[i].used = c.clock
			c.stats.Hits++
			if c.im != nil {
				c.im.hits.Inc()
			}
			return c.slots[i].entry, true
		}
	}
	c.stats.Misses++
	if c.im != nil {
		c.im.misses.Inc()
	}
	return lat.Entry{}, false
}

// Insert fills the CLB with a LAT entry fetched from memory, evicting the
// least recently used slot. Inserting a tag that is already resident
// updates that slot in place — a second valid slot with the same tag
// would silently halve the effective capacity and skew the miss-rate
// experiments.
func (c *CLB) Insert(latIndex uint32, e lat.Entry) {
	c.clock++
	for i := range c.slots {
		if c.slots[i].valid && c.slots[i].tag == latIndex {
			c.slots[i].entry = e
			c.slots[i].used = c.clock
			return
		}
	}
	victim := 0
	for i := range c.slots {
		if !c.slots[i].valid {
			victim = i
			break
		}
		if c.slots[i].used < c.slots[victim].used {
			victim = i
		}
	}
	if c.im != nil && c.slots[victim].valid {
		c.im.evictions.Inc()
		c.im.evictAge.Observe(float64(c.clock - c.slots[victim].used))
	}
	c.slots[victim] = slot{tag: latIndex, entry: e, used: c.clock, valid: true}
}

// EvictionAge returns the probe-clock age the next Insert would evict at,
// or false if a free slot remains. Used by the core's event emission.
func (c *CLB) EvictionAge() (uint64, bool) {
	victim := 0
	for i := range c.slots {
		if !c.slots[i].valid {
			return 0, false
		}
		if c.slots[i].used < c.slots[victim].used {
			victim = i
		}
	}
	return c.clock - c.slots[victim].used, true
}

// Stats returns the probe counters.
func (c *CLB) Stats() Stats { return c.stats }

// Reset invalidates all slots and clears statistics.
func (c *CLB) Reset() {
	for i := range c.slots {
		c.slots[i] = slot{}
	}
	c.clock = 0
	c.stats = Stats{}
}
