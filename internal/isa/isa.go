// Package isa defines the instruction-set-architecture abstraction the
// rest of the reproduction is built on: word decode and classification,
// register naming, disassembly, and the optional capabilities — assembler
// backend, executor, single-instruction parser — that let the generic
// assembler (internal/asm) and simulator (internal/sim) drive any
// registered backend.
//
// The CCRP scheme itself is ISA-agnostic: it compresses opaque
// instruction bytes in 32-byte blocks. What needs the ISA is everything
// around it — assembling the corpus, simulating it for traces, and
// disassembling recovered text. Backends (internal/mips, internal/riscv)
// register themselves here at init time; consumers look them up by name
// and never import a backend directly.
package isa

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Word is one 32-bit instruction word in memory order. Backends with
// narrower encodings (RVC) expand to this width before classification.
type Word uint32

// Class groups operations by pipeline behaviour. The class set is the
// union of what the backends need; a backend that lacks a class (RISC-V
// has no HI/LO) simply never produces it.
type Class uint8

const (
	ClassALU    Class = iota // single-cycle integer
	ClassShift               // single-cycle shifts
	ClassMulDiv              // multi-cycle multiply/divide
	ClassHILO                // HI/LO moves (MIPS interlock consumers)
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional PC-relative
	ClassJump                // unconditional jump / jump-and-link / register jump
	ClassSys                 // syscall, break, fences
	ClassFPU                 // floating-point arithmetic / moves
	ClassFPBr                // floating-point condition branch
	NumClasses
)

var classNames = [NumClasses]string{
	"alu", "shift", "muldiv", "hilo", "load", "store",
	"branch", "jump", "sys", "fpu", "fpbr",
}

// String returns the metric-label name of the class.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Info is the ISA-independent view of one decoded instruction word: the
// classification and control-flow facts the simulator's stall model, the
// trace generator, and the compression layout analyses need.
type Info struct {
	Valid        bool
	Class        Class
	Mnemonic     string
	IsBranch     bool // conditional control transfer (incl. FP branches)
	IsJump       bool // unconditional control transfer
	IsLoad       bool
	IsStore      bool
	HasDelaySlot bool // the following word executes in a delay slot
	Target       uint32
	TargetKnown  bool // Target holds the static destination (PC-relative or absolute direct)
}

// ISA is one instruction set backend. Implementations are stateless and
// safe for concurrent use.
type ISA interface {
	// Name is the registry key ("mips", "riscv").
	Name() string
	// WordBytes is the instruction granularity in bytes.
	WordBytes() int
	// Decode classifies the word at address pc.
	Decode(w Word, pc uint32) Info
	// Disassemble renders the word at pc in the backend's conventional
	// assembler syntax, with control-transfer targets as absolute hex.
	Disassemble(w Word, pc uint32) string
	// RegName names general-purpose register r; out-of-range registers
	// render as "$?N"-style placeholders, never as plausible names.
	RegName(r uint8) string
	// FPRegName names floating-point register r under the same contract.
	FPRegName(r uint8) string
	// RegNumber resolves a register name (without any ISA-specific
	// sigil) to its number.
	RegNumber(name string) (uint8, bool)
}

// Evaluator resolves an assembler expression (numbers, symbols, %hi/%lo)
// to its 32-bit value. The generic front end of internal/asm provides
// it; during pass 1 symbols are unresolved and evaluate to an error.
type Evaluator func(expr string) (uint32, error)

// AsmBackend is the per-ISA half of the two-pass assembler. The generic
// front end (internal/asm) owns parsing, labels, sections, and data
// directives; the backend owns mnemonics, operand syntax, and encoding.
type AsmBackend interface {
	// InstSize returns the byte size of op during pass 1. Sizes must
	// not depend on label values; eval resolves constants only.
	InstSize(op string, args []string, eval Evaluator) (int, error)
	// EncodeInst assembles one statement at address addr during pass 2.
	EncodeInst(op string, args []string, addr uint32, eval Evaluator) ([]Word, error)
}

// InstParser is the inverse of Disassemble for a single instruction:
// parse one line of the backend's own disassembly syntax at address pc.
// Backends that implement it (and WordEnumerator) inherit the
// encode → disassemble → reassemble round-trip contract test for free.
type InstParser interface {
	ParseInst(src string, pc uint32) (Word, error)
}

// WordEnumerator yields a representative set of valid instruction words
// for contract tests: every operation, varied register and immediate
// fields.
type WordEnumerator interface {
	ContractWords() []Word
}

// Registry of ISA backends, populated by backend init functions.
var (
	regMu    sync.RWMutex
	registry = map[string]ISA{}
)

// DefaultName is the backend assumed when a program does not name one —
// the MIPS R2000 of the source paper.
const DefaultName = "mips"

// ErrUnknownISA is wrapped by Lookup failures.
var ErrUnknownISA = errors.New("isa: unknown backend")

// Register adds a backend; it panics on duplicate names (two backends
// claiming one name is a programming error, not a runtime condition).
func Register(i ISA) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[i.Name()]; dup {
		panic("isa: duplicate backend " + i.Name())
	}
	registry[i.Name()] = i
}

// Lookup finds a registered backend. An empty name selects DefaultName.
func Lookup(name string) (ISA, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if i, ok := registry[name]; ok {
		return i, nil
	}
	return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknownISA, name, namesLocked())
}

// MustLookup is Lookup for contexts where the backend is known to be
// linked in (tests, backends resolving themselves).
func MustLookup(name string) ISA {
	i, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Names lists registered backends in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
