package isa_test

import (
	"strings"
	"testing"

	"ccrp/internal/isa"
	_ "ccrp/internal/mips"  // register
	_ "ccrp/internal/riscv" // register
)

// TestRegistry checks lookup, default resolution, and the registered set.
func TestRegistry(t *testing.T) {
	names := isa.Names()
	want := map[string]bool{"mips": false, "rv32": false}
	for _, n := range names {
		if _, seen := want[n]; seen {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	def, err := isa.Lookup("")
	if err != nil || def.Name() != isa.DefaultName {
		t.Errorf("Lookup(\"\") = %v, %v; want the %s default", def, err, isa.DefaultName)
	}
	if _, err := isa.Lookup("vax"); err == nil {
		t.Error("Lookup(vax) did not fail")
	}
}

// TestDisassemblyRoundTrip is the cross-backend contract property: for
// every word a backend enumerates, encode → disassemble → reparse must
// reproduce the identical word. This pins the disassembler and the
// per-instruction parser to each other on both backends at once.
func TestDisassemblyRoundTrip(t *testing.T) {
	const pc = 0x1000 // inside any direct-jump region, room for negative offsets
	for _, name := range isa.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			arch := isa.MustLookup(name)
			enum, ok := arch.(isa.WordEnumerator)
			if !ok {
				t.Skipf("%s has no word enumerator", name)
			}
			parser, ok := arch.(isa.InstParser)
			if !ok {
				t.Fatalf("%s enumerates words but cannot parse its own disassembly", name)
			}
			words := enum.ContractWords()
			if len(words) < 20 {
				t.Fatalf("%s enumerates only %d words", name, len(words))
			}
			seen := map[isa.Word]bool{}
			for _, w := range words {
				if seen[w] {
					t.Errorf("%s: duplicate contract word %#08x", name, uint32(w))
					continue
				}
				seen[w] = true
				text := arch.Disassemble(w, pc)
				back, err := parser.ParseInst(text, pc)
				if err != nil {
					t.Errorf("%s: reparse %q (from %#08x): %v", name, text, uint32(w), err)
					continue
				}
				if back != w {
					t.Errorf("%s: %#08x -> %q -> %#08x", name, uint32(w), text, uint32(back))
				}
				// Disassembly must be stable across the round trip.
				if again := arch.Disassemble(back, pc); again != text {
					t.Errorf("%s: unstable disassembly %q vs %q", name, text, again)
				}
			}
		})
	}
}

// TestDecodeContract checks Info invariants every backend must uphold.
func TestDecodeContract(t *testing.T) {
	const pc = 0x1000
	for _, name := range isa.Names() {
		arch := isa.MustLookup(name)
		enum, ok := arch.(isa.WordEnumerator)
		if !ok {
			continue
		}
		if wb := arch.WordBytes(); wb != 4 {
			t.Errorf("%s: WordBytes = %d, want 4", name, wb)
		}
		for _, w := range enum.ContractWords() {
			info := arch.Decode(w, pc)
			if !info.Valid && uint32(w) != 0 {
				t.Errorf("%s: contract word %#08x decodes invalid", name, uint32(w))
				continue
			}
			if info.IsBranch && info.IsJump {
				t.Errorf("%s: %#08x is both branch and jump", name, uint32(w))
			}
			if info.IsLoad && info.IsStore {
				t.Errorf("%s: %#08x is both load and store", name, uint32(w))
			}
			if info.TargetKnown && !info.IsBranch && !info.IsJump {
				t.Errorf("%s: %#08x has a target but transfers no control", name, uint32(w))
			}
			if info.Valid && info.Mnemonic == "" {
				t.Errorf("%s: %#08x has no mnemonic", name, uint32(w))
			}
		}
	}
}

// TestRegNamingContract: names round-trip through RegNumber (which takes
// the name without the ISA's sigil) and out-of-range registers never
// render as plausible names.
func TestRegNamingContract(t *testing.T) {
	for _, name := range isa.Names() {
		arch := isa.MustLookup(name)
		bare := func(r uint8) string {
			return strings.TrimPrefix(arch.RegName(r), "$")
		}
		for r := uint8(0); r < 32; r++ {
			n, ok := arch.RegNumber(bare(r))
			if !ok || n != r {
				t.Errorf("%s: RegNumber(%q) = %d, %v; want %d", name, bare(r), n, ok, r)
			}
		}
		for _, r := range []uint8{32, 40, 255} {
			if _, ok := arch.RegNumber(bare(r)); ok {
				t.Errorf("%s: out-of-range register %d resolved", name, r)
			}
		}
	}
}
