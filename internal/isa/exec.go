package isa

import "errors"

// Execution faults shared by all backends. internal/sim re-exports these
// so existing callers keep matching with errors.Is.
var (
	ErrBadAddress = errors.New("sim: address out of range")
	ErrUnaligned  = errors.New("sim: unaligned access")
	ErrInvalidOp  = errors.New("sim: invalid instruction")
	ErrOverflow   = errors.New("sim: arithmetic overflow")
	ErrBadSyscall = errors.New("sim: unknown syscall")
)

// CPU is the machine state an Executor runs against. internal/sim's
// Machine implements it: memory, the general register file, the PC pair,
// counters, and host services (syscalls, trace events). ISA-private
// state — MIPS HI/LO and FP registers, interlock timers — lives inside
// the Executor, not here.
type CPU interface {
	// PC/NPC are the current and next fetch addresses. Backends without
	// delay slots keep NPC = PC + WordBytes.
	PC() uint32
	SetPC(pc uint32)
	NPC() uint32
	SetNPC(pc uint32)

	// Reg reads general register r&31; SetReg ignores writes to r0.
	Reg(r uint8) uint32
	SetReg(r uint8, v uint32)

	// FetchWord reads the instruction word at pc, enforcing text-limit
	// and alignment checks.
	FetchWord(pc uint32) (Word, error)

	// Data memory, little-endian, with bounds checks (and alignment
	// checks for word/half).
	LoadWord(addr uint32) (uint32, error)
	LoadHalf(addr uint32) (uint16, error)
	LoadByte(addr uint32) (uint8, error)
	StoreWord(addr uint32, v uint32) error
	StoreHalf(addr uint32, v uint16) error
	StoreByte(addr uint32, v uint8) error

	// Icount is the dynamic instruction count so far (the instruction
	// being executed is not yet counted); latency models key off it.
	Icount() uint64

	// Accounting hooks: stall cycles, per-class instruction counts, and
	// load/store trace flags + counters for the word just executed.
	AddStalls(n uint64)
	CountClass(c Class)
	NoteLoad(addr uint32)
	NoteStore(addr uint32)

	// Syscall performs the host-service call identified by num with
	// argument arg (SPIM numbering: 1 print_int, 4 print_string,
	// 5 read_int, 10 exit, 11 print_char, 17 exit2). hasResult reports
	// whether result should be written back to the ISA's return
	// register.
	Syscall(num, arg uint32) (result uint32, hasResult bool, err error)

	// Exit halts the machine with the given status code.
	Exit(code uint32)

	// Faultf wraps a base fault error (ErrBadAddress etc.) with
	// machine context (current PC, instruction count) for diagnostics.
	Faultf(base error, format string, args ...any) error
}

// Executor runs one backend's instruction semantics over a CPU. One
// Executor instance belongs to one machine (it may hold mutable
// ISA-private state such as HI/LO or interlock countdowns).
type Executor interface {
	// Reset initialises ABI state (stack pointer, globals pointer) on a
	// freshly constructed machine.
	Reset(c CPU)
	// Step executes the instruction at c.PC() — fetch, decode, execute,
	// advance the PC pair — and performs all accounting via c.
	Step(c CPU) error
}

// ExecBackend is implemented by ISAs that can be simulated.
type ExecBackend interface {
	NewExecutor() Executor
}

// ExecState exposes ISA-private register state for debuggers and tests.
// Executors implement the parts they have; internal/sim surfaces them
// through Machine accessors.
type ExecState interface {
	ReadHI() uint32
	ReadLO() uint32
	ReadFPR(r uint8) uint32
}
