package asm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Loadable image serialization, used by the cmd tools to pass assembled
// programs between ccasm, ccdis, ccpack, and ccsim.

const (
	imageMagic   = 0x43435250 // "CCRP"
	imageVersion = 2

	maxISANameLen = 64
)

// ErrBadImage is returned when parsing a malformed image file.
var ErrBadImage = errors.New("asm: malformed image")

// WriteImage serializes a Program. Version 2 appends the ISA backend name
// after the fixed header so ccsim/ccdis can pick the right backend without
// a flag; version-1 images (no ISA field) are still readable and default
// to MIPS.
func (p *Program) WriteImage(w io.Writer) error {
	isaName := p.ISA
	if len(isaName) > maxISANameLen {
		return fmt.Errorf("asm: ISA name %q too long", isaName)
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint32(hdr[4:], imageVersion)
	binary.LittleEndian.PutUint32(hdr[8:], p.Entry)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Text)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(isaName)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, isaName); err != nil {
		return err
	}
	if _, err := w.Write(p.Text); err != nil {
		return err
	}
	_, err := w.Write(p.Data)
	return err
}

// ReadImage deserializes a Program written by WriteImage. Symbols are not
// preserved (images are linked output).
func ReadImage(r io.Reader) (*Program, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadImage, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != 1 && version != imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImage, version)
	}
	textLen := binary.LittleEndian.Uint32(hdr[12:])
	dataLen := binary.LittleEndian.Uint32(hdr[16:])
	if textLen > AddrSpace || dataLen > AddrSpace {
		return nil, fmt.Errorf("%w: implausible section sizes", ErrBadImage)
	}
	p := &Program{
		Entry:   binary.LittleEndian.Uint32(hdr[8:]),
		Text:    make([]byte, textLen),
		Data:    make([]byte, dataLen),
		Symbols: map[string]uint32{},
	}
	if version >= 2 {
		var ext [4]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadImage, err)
		}
		isaLen := binary.LittleEndian.Uint32(ext[0:])
		if isaLen > maxISANameLen {
			return nil, fmt.Errorf("%w: implausible ISA name length %d", ErrBadImage, isaLen)
		}
		name := make([]byte, isaLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: ISA name: %v", ErrBadImage, err)
		}
		p.ISA = string(name)
	}
	if _, err := io.ReadFull(r, p.Text); err != nil {
		return nil, fmt.Errorf("%w: text: %v", ErrBadImage, err)
	}
	if _, err := io.ReadFull(r, p.Data); err != nil {
		return nil, fmt.Errorf("%w: data: %v", ErrBadImage, err)
	}
	return p, nil
}
