package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// symtab resolves symbols during pass 2; during pass 1 it is nil and any
// symbol reference is an error (used to force li operands to be constant).
type symtab map[string]uint32

// evalExpr evaluates an assembler expression: terms joined by + and -,
// where a term is a number (decimal, 0x hex, 0o octal-ish via 0 prefix is
// NOT used — leading zeros are decimal), a character literal, a symbol, or
// %hi(expr) / %lo(expr).
func evalExpr(s string, syms symtab) (uint32, error) {
	p := &exprParser{src: strings.TrimSpace(s), syms: syms}
	v, err := p.parse()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("junk after expression: %q", p.src[p.pos:])
	}
	return v, nil
}

type exprParser struct {
	src  string
	pos  int
	syms symtab
}

func (p *exprParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parse() (uint32, error) {
	v, err := p.product()
	if err != nil {
		return 0, err
	}
	for {
		p.ws()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			t, err := p.product()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.product()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

// product binds tighter than sums: term ('*' term)*.
func (p *exprParser) product() (uint32, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != '*' {
			return v, nil
		}
		p.pos++
		t, err := p.term()
		if err != nil {
			return 0, err
		}
		v *= t
	}
}

func (p *exprParser) term() (uint32, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("expected operand in %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '-':
		p.pos++
		v, err := p.term()
		return -v, err
	case c == '\'':
		return p.charLit()
	case c == '%':
		return p.hiLo()
	case c == '(':
		p.pos++
		v, err := p.parse()
		if err != nil {
			return 0, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing ')' in %q", p.src)
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9':
		return p.number()
	case isIdentStart(c):
		return p.symbol()
	}
	return 0, fmt.Errorf("unexpected %q in expression %q", c, p.src)
}

func (p *exprParser) number() (uint32, error) {
	start := p.pos
	if strings.HasPrefix(p.src[p.pos:], "0x") || strings.HasPrefix(p.src[p.pos:], "0X") {
		p.pos += 2
		for p.pos < len(p.src) && isHexDigit(p.src[p.pos]) {
			p.pos++
		}
		v, err := strconv.ParseUint(p.src[start+2:p.pos], 16, 32)
		if err != nil {
			return 0, fmt.Errorf("bad hex literal %q", p.src[start:p.pos])
		}
		return uint32(v), nil
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil || v > 0xFFFFFFFF {
		return 0, fmt.Errorf("bad decimal literal %q", p.src[start:p.pos])
	}
	return uint32(v), nil
}

func (p *exprParser) charLit() (uint32, error) {
	s := p.src[p.pos:]
	val, _, rest, err := strconv.UnquoteChar(s[1:], '\'')
	if err != nil {
		return 0, fmt.Errorf("bad character literal in %q", s)
	}
	consumed := len(s[1:]) - len(rest)
	p.pos += 1 + consumed
	if p.pos >= len(p.src) || p.src[p.pos] != '\'' {
		return 0, fmt.Errorf("unterminated character literal in %q", s)
	}
	p.pos++
	return uint32(val), nil
}

func (p *exprParser) hiLo() (uint32, error) {
	rest := p.src[p.pos:]
	var hi bool
	switch {
	case strings.HasPrefix(rest, "%hi("):
		hi = true
		p.pos += 4
	case strings.HasPrefix(rest, "%lo("):
		p.pos += 4
	default:
		return 0, fmt.Errorf("expected %%hi( or %%lo( in %q", rest)
	}
	v, err := p.parse()
	if err != nil {
		return 0, err
	}
	p.ws()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return 0, fmt.Errorf("missing ')' after %%hi/%%lo")
	}
	p.pos++
	if hi {
		return v >> 16, nil
	}
	return v & 0xFFFF, nil
}

func (p *exprParser) symbol() (uint32, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if p.syms == nil {
		return 0, fmt.Errorf("symbol %q not allowed here (constant required)", name)
	}
	v, ok := p.syms[name]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return v, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
