// Package asm implements a generic two-pass assembler front end,
// sufficient to build the embedded workload corpus from source. The front
// end owns sections, labels, data directives, expressions, and %hi/%lo
// relocations; instruction sizing and encoding are delegated to an
// isa.AsmBackend (MIPS R2000 by default, RV32I via internal/riscv), so
// pseudo-instruction sets and register syntax are per-backend.
//
// The assembler plays the role of the paper's "traditional RISC compiler
// and linker": its output is a plain RISC object image whose text section
// is then handed, unmodified, to the CCRP compression tool.
package asm

import (
	"fmt"
	"sort"
)

// Memory layout of the embedded target. The paper assumes a contiguous
// 24-bit physical address space with instructions starting at the bottom
// (the LAT is indexed by a shifted version of the block address, which
// requires contiguous instruction space).
const (
	TextBase  uint32 = 0x00000000 // instruction space, compressed in ROM
	DataBase  uint32 = 0x00100000 // read/write data
	StackTop  uint32 = 0x00FFFFF0 // initial $sp, grows down
	AddrSpace uint32 = 1 << 24    // 24-bit physical space
)

// Program is a fully linked, loadable image.
type Program struct {
	Name    string
	ISA     string // registered ISA backend name ("" means the default)
	Text    []byte // instruction bytes, words little-endian, at TextBase
	Data    []byte // initialized data at DataBase
	Entry   uint32 // initial PC (symbol __start if defined, else TextBase)
	Symbols map[string]uint32
	BSSSize uint32 // zero-initialized bytes following Data
}

// TextWords returns the number of instruction words in the text section.
func (p *Program) TextWords() int { return len(p.Text) / 4 }

// SymbolsSorted returns symbol names in address order (for listings).
func (p *Program) SymbolsSorted() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
