package asm

import "testing"

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}
