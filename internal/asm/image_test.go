package asm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestImageRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
	.data
v:	.word 1, 2, 3
	.text
	nop
__start:
	lw $t0, v
	jr $ra
	nop
`)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text, p.Text) || !bytes.Equal(got.Data, p.Data) {
		t.Error("sections changed through image round trip")
	}
	if got.Entry != p.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, p.Entry)
	}
}

func TestImageRoundTripQuick(t *testing.T) {
	f := func(text, data []byte, entry uint32) bool {
		text = append(text, make([]byte, (4-len(text)%4)%4)...)
		p := &Program{Text: text, Data: data, Entry: entry &^ 3, Symbols: map[string]uint32{}}
		var buf bytes.Buffer
		if err := p.WriteImage(&buf); err != nil {
			return false
		}
		got, err := ReadImage(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Text, p.Text) && bytes.Equal(got.Data, p.Data) && got.Entry == p.Entry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := ReadImage(bytes.NewReader(make([]byte, 20))); err == nil {
		t.Error("zero-magic image accepted")
	}
	p := mustAssemble(t, ".text\nnop\nnop")
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadImage(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated image accepted")
	}
	// Corrupt the version field.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[4] = 99
	if _, err := ReadImage(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}
