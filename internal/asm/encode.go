package asm

import (
	"fmt"
	"strings"

	"ccrp/internal/mips"
)

// instrSize returns the byte size of an instruction or pseudo-instruction
// during pass 1. Sizes must be computable without label values; li
// therefore requires a constant operand (use la for addresses).
func instrSize(st *stmt, consts symtab) (int, error) {
	switch st.op {
	case "li":
		if len(st.args) != 2 {
			return 0, errf(st.line, "li needs register, constant")
		}
		v, err := evalExpr(st.args[1], consts)
		if err != nil {
			return 0, errf(st.line, "li: %v (use la for symbols)", err)
		}
		if fitsInt16(v) || fitsUint16(v) {
			return 4, nil
		}
		return 8, nil
	case "la":
		return 8, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return 8, nil
	case "mul", "rem":
		return 8, nil
	case "div", "divu":
		if len(st.args) == 3 {
			return 8, nil
		}
		return 4, nil
	case "l.d", "s.d":
		return 8, nil
	case "lb", "lbu", "lh", "lhu", "lw", "lwl", "lwr",
		"sb", "sh", "sw", "swl", "swr", "lwc1", "swc1", "l.s", "s.s":
		if len(st.args) != 2 {
			return 0, errf(st.line, "%s needs register, address", st.op)
		}
		_, _, ok, err := parseMem(st.args[1], nil)
		if err != nil {
			// Offsets with symbols resolve in pass 2; the size only
			// depends on the operand's shape.
			ok = strings.Contains(st.args[1], "($")
		}
		if ok {
			return 4, nil
		}
		return 8, nil // symbol form: lui $at + access
	}
	return 4, nil
}

// encodeInstr translates one statement into machine words during pass 2.
func encodeInstr(st *stmt, syms symtab) ([]mips.Word, error) {
	e := encoder{st: st, syms: syms}
	words, err := e.encode()
	if err != nil {
		return nil, err
	}
	return words, nil
}

type encoder struct {
	st   *stmt
	syms symtab
}

func (e *encoder) errf(format string, args ...any) error {
	return errf(e.st.line, "%s: %s", e.st.op, fmt.Sprintf(format, args...))
}

func (e *encoder) nargs(n int) error {
	if len(e.st.args) != n {
		return e.errf("expected %d operands, got %d", n, len(e.st.args))
	}
	return nil
}

func (e *encoder) reg(i int) (uint8, error)  { return parseReg(e.st.args[i]) }
func (e *encoder) freg(i int) (uint8, error) { return parseFReg(e.st.args[i]) }
func (e *encoder) expr(i int) (uint32, error) {
	v, err := evalExpr(e.st.args[i], e.syms)
	if err != nil {
		return 0, e.errf("%v", err)
	}
	return v, nil
}

// branchOff computes the 16-bit word offset for a branch at stmt address
// base (the address of the branch word itself, which may be the second
// word of a pseudo expansion).
func (e *encoder) branchOff(target uint32, base uint32) (uint16, error) {
	diff := int64(target) - int64(base+4)
	if diff&3 != 0 {
		return 0, e.errf("branch target %#x not word aligned", target)
	}
	off := diff >> 2
	if off < -32768 || off > 32767 {
		return 0, e.errf("branch target %#x out of range (%d words)", target, off)
	}
	return uint16(off), nil
}

func word(i mips.Inst) mips.Word { return mips.Encode(i) }

func (e *encoder) encode() ([]mips.Word, error) {
	st := e.st
	op := st.op

	if ops, ok := realOp3[op]; ok { // op rd, rs, rt
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: ops, Rd: rd, Rs: rs, Rt: rt})}, nil
	}
	if ops, ok := shiftVOp[op]; ok { // op rd, rt, rs
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: ops, Rd: rd, Rt: rt, Rs: rs})}, nil
	}
	if ops, ok := shiftIOp[op]; ok { // op rd, rt, shamt
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		sh, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		if sh > 31 {
			return nil, e.errf("shift amount %d out of range", sh)
		}
		return []mips.Word{word(mips.Inst{Op: ops, Rd: rd, Rt: rt, Shamt: uint8(sh)})}, nil
	}
	if ops, ok := immOp[op]; ok { // op rt, rs, imm
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		signed := op == "addi" || op == "addiu" || op == "slti" || op == "sltiu"
		if signed && !fitsInt16(v) || !signed && !fitsUint16(v) {
			return nil, e.errf("immediate %#x out of 16-bit range", v)
		}
		return []mips.Word{word(mips.Inst{Op: ops, Rt: rt, Rs: rs, Imm: uint16(v)})}, nil
	}
	if ops, ok := memOp[op]; ok {
		return e.encodeMem(ops)
	}
	if ops, ok := fp3Op[op]; ok { // op fd, fs, ft
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		fd, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		ft, err := e.freg(2)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: ops, Shamt: fd, Rd: fs, Rt: ft})}, nil
	}
	if ops, ok := fp2Op[op]; ok { // op fd, fs
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		fd, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: ops, Shamt: fd, Rd: fs})}, nil
	}
	if ops, ok := fpCmpOp[op]; ok { // op fs, ft
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		fs, err := e.freg(0)
		if err != nil {
			return nil, err
		}
		ft, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: ops, Rd: fs, Rt: ft})}, nil
	}

	switch op {
	case "nop", "syscall", "break":
		if err := e.nargs(0); err != nil {
			return nil, err
		}
		switch op {
		case "nop":
			return []mips.Word{0}, nil
		case "syscall":
			return []mips.Word{word(mips.Inst{Op: mips.OpSYSCALL})}, nil
		default:
			return []mips.Word{word(mips.Inst{Op: mips.OpBREAK})}, nil
		}
	case "mult", "multu":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		o := mips.OpMULT
		if op == "multu" {
			o = mips.OpMULTU
		}
		return []mips.Word{word(mips.Inst{Op: o, Rs: rs, Rt: rt})}, nil
	case "div", "divu":
		return e.encodeDiv()
	case "mfhi", "mflo":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		o := mips.OpMFHI
		if op == "mflo" {
			o = mips.OpMFLO
		}
		return []mips.Word{word(mips.Inst{Op: o, Rd: rd})}, nil
	case "mthi", "mtlo":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		o := mips.OpMTHI
		if op == "mtlo" {
			o = mips.OpMTLO
		}
		return []mips.Word{word(mips.Inst{Op: o, Rs: rs})}, nil
	case "jr":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpJR, Rs: rs})}, nil
	case "jalr":
		rd := uint8(mips.RegRA)
		var rs uint8
		var err error
		switch len(st.args) {
		case 1:
			rs, err = e.reg(0)
		case 2:
			if rd, err = e.reg(0); err == nil {
				rs, err = e.reg(1)
			}
		default:
			return nil, e.errf("expected 1 or 2 operands")
		}
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpJALR, Rd: rd, Rs: rs})}, nil
	case "lui":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		if !fitsUint16(v) {
			return nil, e.errf("immediate %#x out of 16-bit range", v)
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpLUI, Rt: rt, Imm: uint16(v)})}, nil
	case "j", "jal":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		v, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		if v&3 != 0 {
			return nil, e.errf("jump target %#x not word aligned", v)
		}
		if (st.addr+4)&0xF0000000 != v&0xF0000000 {
			return nil, e.errf("jump target %#x outside current 256MB region", v)
		}
		o := mips.OpJ
		if op == "jal" {
			o = mips.OpJAL
		}
		return []mips.Word{word(mips.Inst{Op: o, Target: v >> 2 & 0x03FFFFFF})}, nil
	case "beq", "bne":
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, st.addr)
		if err != nil {
			return nil, err
		}
		o := mips.OpBEQ
		if op == "bne" {
			o = mips.OpBNE
		}
		return []mips.Word{word(mips.Inst{Op: o, Rs: rs, Rt: rt, Imm: off})}, nil
	case "blez", "bgtz", "bltz", "bgez", "bltzal", "bgezal":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, st.addr)
		if err != nil {
			return nil, err
		}
		o := map[string]mips.Op{
			"blez": mips.OpBLEZ, "bgtz": mips.OpBGTZ, "bltz": mips.OpBLTZ,
			"bgez": mips.OpBGEZ, "bltzal": mips.OpBLTZAL, "bgezal": mips.OpBGEZAL,
		}[op]
		return []mips.Word{word(mips.Inst{Op: o, Rs: rs, Imm: off})}, nil
	case "bc1t", "bc1f":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		tgt, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, st.addr)
		if err != nil {
			return nil, err
		}
		o := mips.OpBC1T
		if op == "bc1f" {
			o = mips.OpBC1F
		}
		return []mips.Word{word(mips.Inst{Op: o, Imm: off})}, nil
	case "mfc1", "mtc1":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		fs, err := e.freg(1)
		if err != nil {
			return nil, err
		}
		o := mips.OpMFC1
		if op == "mtc1" {
			o = mips.OpMTC1
		}
		return []mips.Word{word(mips.Inst{Op: o, Rt: rt, Rd: fs})}, nil
	}
	return e.encodePseudo()
}

var realOp3 = map[string]mips.Op{
	"add": mips.OpADD, "addu": mips.OpADDU, "sub": mips.OpSUB, "subu": mips.OpSUBU,
	"and": mips.OpAND, "or": mips.OpOR, "xor": mips.OpXOR, "nor": mips.OpNOR,
	"slt": mips.OpSLT, "sltu": mips.OpSLTU,
}

var shiftVOp = map[string]mips.Op{
	"sllv": mips.OpSLLV, "srlv": mips.OpSRLV, "srav": mips.OpSRAV,
}

var shiftIOp = map[string]mips.Op{
	"sll": mips.OpSLL, "srl": mips.OpSRL, "sra": mips.OpSRA,
}

var immOp = map[string]mips.Op{
	"addi": mips.OpADDI, "addiu": mips.OpADDIU, "slti": mips.OpSLTI,
	"sltiu": mips.OpSLTIU, "andi": mips.OpANDI, "ori": mips.OpORI, "xori": mips.OpXORI,
}

var memOp = map[string]mips.Op{
	"lb": mips.OpLB, "lbu": mips.OpLBU, "lh": mips.OpLH, "lhu": mips.OpLHU,
	"lw": mips.OpLW, "lwl": mips.OpLWL, "lwr": mips.OpLWR,
	"sb": mips.OpSB, "sh": mips.OpSH, "sw": mips.OpSW,
	"swl": mips.OpSWL, "swr": mips.OpSWR,
	"lwc1": mips.OpLWC1, "swc1": mips.OpSWC1,
	"l.s": mips.OpLWC1, "s.s": mips.OpSWC1,
}

var fp3Op = map[string]mips.Op{
	"add.s": mips.OpADDS, "add.d": mips.OpADDD, "sub.s": mips.OpSUBS, "sub.d": mips.OpSUBD,
	"mul.s": mips.OpMULS, "mul.d": mips.OpMULD, "div.s": mips.OpDIVS, "div.d": mips.OpDIVD,
}

var fp2Op = map[string]mips.Op{
	"abs.s": mips.OpABSS, "abs.d": mips.OpABSD, "mov.s": mips.OpMOVS, "mov.d": mips.OpMOVD,
	"neg.s": mips.OpNEGS, "neg.d": mips.OpNEGD,
	"cvt.s.d": mips.OpCVTSD, "cvt.s.w": mips.OpCVTSW, "cvt.d.s": mips.OpCVTDS,
	"cvt.d.w": mips.OpCVTDW, "cvt.w.s": mips.OpCVTWS, "cvt.w.d": mips.OpCVTWD,
}

var fpCmpOp = map[string]mips.Op{
	"c.eq.s": mips.OpCEQS, "c.eq.d": mips.OpCEQD, "c.lt.s": mips.OpCLTS,
	"c.lt.d": mips.OpCLTD, "c.le.s": mips.OpCLES, "c.le.d": mips.OpCLED,
}

// fpReg checks whether an FP register number is valid for doubles.
func evenFPReg(r uint8) bool { return r%2 == 0 }
