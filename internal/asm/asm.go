package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"ccrp/internal/isa"
)

const (
	secText = 0
	secData = 1
)

type stmt struct {
	labels  []string
	op      string // lowercase mnemonic or directive (leading '.')
	args    []string
	line    int
	section int
	addr    uint32
	size    int
}

// Assemble assembles source for the default ISA backend into a loadable
// Program. name is used only for diagnostics and Program.Name.
func Assemble(name, source string) (*Program, error) {
	return AssembleFor("", name, source)
}

// AssembleFor assembles source for the named ISA backend (empty selects
// the default). The backend must implement isa.AsmBackend; the front end
// owns sections, labels, directives, and expressions, and delegates
// instruction sizing and encoding to the backend.
func AssembleFor(isaName, name, source string) (*Program, error) {
	arch, err := isa.Lookup(isaName)
	if err != nil {
		return nil, err
	}
	be, ok := arch.(isa.AsmBackend)
	if !ok {
		return nil, fmt.Errorf("asm: ISA %q has no assembler backend", arch.Name())
	}
	stmts, err := parseSource(source)
	if err != nil {
		return nil, err
	}
	a := &assembler{
		syms: make(symtab),
		prog: &Program{Name: name, ISA: arch.Name(), Symbols: make(map[string]uint32)},
		be:   be,
		wb:   arch.WordBytes(),
	}
	if err := a.pass1(stmts); err != nil {
		return nil, err
	}
	if err := a.pass2(stmts); err != nil {
		return nil, err
	}
	a.prog.Symbols = map[string]uint32(a.syms)
	if e, ok := a.syms["__start"]; ok {
		a.prog.Entry = e
	} else {
		a.prog.Entry = TextBase
	}
	return a.prog, nil
}

type assembler struct {
	syms symtab
	prog *Program
	be   isa.AsmBackend
	wb   int
}

// symEval evaluates an operand expression against the symbol table. In
// pass 1 the table is only partially built, so forward references fail —
// which is what forces li operands to be constants or already-defined
// .equ values.
func (a *assembler) symEval(s string) (uint32, error) {
	return evalExpr(s, a.syms)
}

// parseSource splits source into statements: comments stripped, labels
// attached, operands split on top-level commas.
func parseSource(source string) ([]*stmt, error) {
	var stmts []*stmt
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		var labels []string
		for {
			i := labelEnd(line)
			if i < 0 {
				break
			}
			labels = append(labels, strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" && len(labels) == 0 {
			continue
		}
		st := &stmt{labels: labels, line: lineNo + 1}
		if line != "" {
			op := line
			rest := ""
			if i := strings.IndexAny(line, " \t"); i >= 0 {
				op, rest = line[:i], strings.TrimSpace(line[i+1:])
			}
			st.op = strings.ToLower(op)
			st.args = splitOperands(rest)
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// stripComment removes a '#' comment, respecting string and char literals.
func stripComment(line string) string {
	inStr, inChar, esc := false, false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && (inStr || inChar):
			esc = true
		case c == '"' && !inChar:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChar = !inChar
		case c == '#' && !inStr && !inChar:
			return line[:i]
		}
	}
	return line
}

// labelEnd returns the index of a leading "ident:" colon, or -1.
func labelEnd(line string) int {
	if line == "" || !isIdentStart(line[0]) {
		return -1
	}
	i := 0
	for i < len(line) && isIdentChar(line[i]) {
		i++
	}
	if i < len(line) && line[i] == ':' {
		return i
	}
	return -1
}

// splitOperands splits on commas outside quotes and parentheses.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr, inChar, esc := false, false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && (inStr || inChar):
			esc = true
		case c == '"' && !inChar:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChar = !inChar
		case inStr || inChar:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *assembler) pass1(stmts []*stmt) error {
	text, data := TextBase, DataBase
	section := secText
	for _, st := range stmts {
		st.section = section
		cur := &text
		if section == secData {
			cur = &data
		}
		for _, l := range st.labels {
			if _, dup := a.syms[l]; dup {
				return errf(st.line, "duplicate symbol %q", l)
			}
			a.syms[l] = *cur
		}
		if st.op == "" {
			continue
		}
		if strings.HasPrefix(st.op, ".") {
			adv, newSec, err := a.directiveSize(st, section, *cur)
			if err != nil {
				return err
			}
			if newSec != section {
				section = newSec
				st.section = newSec
				continue
			}
			// Labels on a directive line bind before the directive's data.
			st.addr = *cur
			st.size = adv
			*cur += uint32(adv)
			continue
		}
		if section != secText {
			return errf(st.line, "instruction %q outside .text", st.op)
		}
		size, err := a.be.InstSize(st.op, st.args, a.symEval)
		if err != nil {
			return errf(st.line, "%v", err)
		}
		st.addr = *cur
		st.size = size
		*cur += uint32(size)
	}
	if text > DataBase {
		return errf(0, "text section too large: ends at %#x, data begins at %#x", text, DataBase)
	}
	if data > StackTop {
		return errf(0, "data section too large: ends at %#x", data)
	}
	return nil
}

func (a *assembler) pass2(stmts []*stmt) error {
	for _, st := range stmts {
		if st.op == "" {
			continue
		}
		if strings.HasPrefix(st.op, ".") {
			if err := a.emitDirective(st); err != nil {
				return err
			}
			continue
		}
		words, err := a.be.EncodeInst(st.op, st.args, st.addr, a.symEval)
		if err != nil {
			return errf(st.line, "%v", err)
		}
		if len(words)*a.wb != st.size {
			return errf(st.line, "internal: %q sized %d bytes in pass 1 but emitted %d",
				st.op, st.size, len(words)*a.wb)
		}
		for _, w := range words {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(w))
			a.prog.Text = append(a.prog.Text, b[:a.wb]...)
		}
	}
	return nil
}

// directiveSize computes a directive's byte size during pass 1 (and
// handles .equ / section switches, which take effect immediately).
func (a *assembler) directiveSize(st *stmt, section int, addr uint32) (size, newSection int, err error) {
	switch st.op {
	case ".text":
		return 0, secText, nil
	case ".data":
		return 0, secData, nil
	case ".globl", ".global", ".ent", ".end", ".set", ".file", ".frame":
		return 0, section, nil
	case ".equ":
		if len(st.args) != 2 {
			return 0, section, errf(st.line, ".equ needs name, value")
		}
		v, err := evalExpr(st.args[1], a.syms)
		if err != nil {
			return 0, section, errf(st.line, ".equ %s: %v", st.args[0], err)
		}
		name := strings.TrimSpace(st.args[0])
		if _, dup := a.syms[name]; dup {
			return 0, section, errf(st.line, "duplicate symbol %q", name)
		}
		a.syms[name] = v
		return 0, section, nil
	case ".align":
		if len(st.args) != 1 {
			return 0, section, errf(st.line, ".align needs one argument")
		}
		n, err := strconv.Atoi(st.args[0])
		if err != nil || n < 0 || n > 16 {
			return 0, section, errf(st.line, "bad .align %q", st.args[0])
		}
		al := uint32(1) << n
		pad := int((al - addr%al) % al)
		return pad, section, nil
	case ".space":
		if len(st.args) != 1 {
			return 0, section, errf(st.line, ".space needs one argument")
		}
		n, err := evalExpr(st.args[0], a.syms)
		if err != nil {
			return 0, section, errf(st.line, ".space: %v", err)
		}
		return int(n), section, nil
	case ".byte":
		return len(st.args), section, nil
	case ".half":
		return 2 * len(st.args), section, nil
	case ".word":
		return 4 * len(st.args), section, nil
	case ".float":
		return 4 * len(st.args), section, nil
	case ".double":
		return 8 * len(st.args), section, nil
	case ".ascii", ".asciiz":
		total := 0
		for _, arg := range st.args {
			s, err := unquote(arg)
			if err != nil {
				return 0, section, errf(st.line, "%v", err)
			}
			total += len(s)
			if st.op == ".asciiz" {
				total++
			}
		}
		return total, section, nil
	}
	return 0, section, errf(st.line, "unknown directive %q", st.op)
}

// emitDirective appends a data-bearing directive's bytes during pass 2.
func (a *assembler) emitDirective(st *stmt) error {
	var out []byte
	emitInt := func(width int) error {
		for _, arg := range st.args {
			v, err := evalExpr(arg, a.syms)
			if err != nil {
				return errf(st.line, "%s: %v", st.op, err)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], v)
			out = append(out, b[:width]...)
		}
		return nil
	}
	switch st.op {
	case ".text", ".data", ".globl", ".global", ".ent", ".end", ".set",
		".file", ".frame", ".equ":
		return nil
	case ".align", ".space":
		out = make([]byte, st.size)
	case ".byte":
		if err := emitInt(1); err != nil {
			return err
		}
	case ".half":
		if err := emitInt(2); err != nil {
			return err
		}
	case ".word":
		if err := emitInt(4); err != nil {
			return err
		}
	case ".float":
		for _, arg := range st.args {
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 32)
			if err != nil {
				return errf(st.line, ".float: %v", err)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(f)))
			out = append(out, b[:]...)
		}
	case ".double":
		for _, arg := range st.args {
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return errf(st.line, ".double: %v", err)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			out = append(out, b[:]...)
		}
	case ".ascii", ".asciiz":
		for _, arg := range st.args {
			s, err := unquote(arg)
			if err != nil {
				return errf(st.line, "%v", err)
			}
			out = append(out, s...)
			if st.op == ".asciiz" {
				out = append(out, 0)
			}
		}
	default:
		return errf(st.line, "unknown directive %q", st.op)
	}
	if len(out) != st.size {
		return errf(st.line, "internal: directive %s sized %d, emitted %d", st.op, st.size, len(out))
	}
	if st.section == secText {
		a.prog.Text = append(a.prog.Text, out...)
	} else {
		a.prog.Data = append(a.prog.Data, out...)
	}
	return nil
}

// unquote interprets a double-quoted string literal with Go-style escapes.
func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c in %q", body[i], s)
		}
	}
	return b.String(), nil
}
