package asm

import (
	"ccrp/internal/mips"
)

// encodeMem handles loads and stores, in both the direct "rt, off(base)"
// form and the symbol form "rt, sym(+off)", which expands through $at.
func (e *encoder) encodeMem(op mips.Op) ([]mips.Word, error) {
	if err := e.nargs(2); err != nil {
		return nil, err
	}
	isFP := op == mips.OpLWC1 || op == mips.OpSWC1
	var rt uint8
	var err error
	if isFP {
		rt, err = e.freg(0)
	} else {
		rt, err = e.reg(0)
	}
	if err != nil {
		return nil, err
	}
	off, base, direct, err := parseMem(e.st.args[1], e.syms)
	if err != nil {
		return nil, e.errf("%v", err)
	}
	if direct {
		if !fitsInt16(off) {
			return nil, e.errf("offset %#x out of 16-bit range", off)
		}
		return []mips.Word{word(mips.Inst{Op: op, Rt: rt, Rs: base, Imm: uint16(off)})}, nil
	}
	// Symbol form: lui $at, adjusted-hi(addr); op rt, lo(addr)($at).
	// The load offset is sign-extended, so the high half is adjusted up
	// when the low half's sign bit is set.
	addr, err := e.expr(1)
	if err != nil {
		return nil, err
	}
	lo := addr & 0xFFFF
	hi := (addr + 0x8000) >> 16
	return []mips.Word{
		word(mips.Inst{Op: mips.OpLUI, Rt: mips.RegAT, Imm: uint16(hi)}),
		word(mips.Inst{Op: op, Rt: rt, Rs: mips.RegAT, Imm: uint16(lo)}),
	}, nil
}

// encodeDiv handles both the real two-operand div/divu and the
// three-operand pseudo (div rd, rs, rt -> div rs, rt; mflo rd).
func (e *encoder) encodeDiv() ([]mips.Word, error) {
	op := mips.OpDIV
	if e.st.op == "divu" {
		op = mips.OpDIVU
	}
	switch len(e.st.args) {
	case 2:
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: op, Rs: rs, Rt: rt})}, nil
	case 3:
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []mips.Word{
			word(mips.Inst{Op: op, Rs: rs, Rt: rt}),
			word(mips.Inst{Op: mips.OpMFLO, Rd: rd}),
		}, nil
	}
	return nil, e.errf("expected 2 or 3 operands")
}

// encodePseudo handles the remaining pseudo-instructions.
func (e *encoder) encodePseudo() ([]mips.Word, error) {
	st := e.st
	switch st.op {
	case "move":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpADDU, Rd: rd, Rs: rs, Rt: mips.RegZero})}, nil
	case "not":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpNOR, Rd: rd, Rs: rs, Rt: mips.RegZero})}, nil
	case "neg", "negu":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		op := mips.OpSUB
		if st.op == "negu" {
			op = mips.OpSUBU
		}
		return []mips.Word{word(mips.Inst{Op: op, Rd: rd, Rs: mips.RegZero, Rt: rt})}, nil
	case "li":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		switch {
		case fitsInt16(v):
			return []mips.Word{word(mips.Inst{Op: mips.OpADDIU, Rt: rt, Rs: mips.RegZero, Imm: uint16(v)})}, nil
		case fitsUint16(v):
			return []mips.Word{word(mips.Inst{Op: mips.OpORI, Rt: rt, Rs: mips.RegZero, Imm: uint16(v)})}, nil
		default:
			return []mips.Word{
				word(mips.Inst{Op: mips.OpLUI, Rt: rt, Imm: uint16(v >> 16)}),
				word(mips.Inst{Op: mips.OpORI, Rt: rt, Rs: rt, Imm: uint16(v)}),
			}, nil
		}
	case "la":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rt, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		return []mips.Word{
			word(mips.Inst{Op: mips.OpLUI, Rt: rt, Imm: uint16(v >> 16)}),
			word(mips.Inst{Op: mips.OpORI, Rt: rt, Rs: rt, Imm: uint16(v)}),
		}, nil
	case "b":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		tgt, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, st.addr)
		if err != nil {
			return nil, err
		}
		return []mips.Word{word(mips.Inst{Op: mips.OpBEQ, Imm: off})}, nil
	case "beqz", "bnez":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(tgt, st.addr)
		if err != nil {
			return nil, err
		}
		op := mips.OpBEQ
		if st.op == "bnez" {
			op = mips.OpBNE
		}
		return []mips.Word{word(mips.Inst{Op: op, Rs: rs, Imm: off})}, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return e.encodeCmpBranch()
	case "mul", "rem":
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		moveOp := mips.OpMFLO
		if st.op == "rem" {
			moveOp = mips.OpMFHI
		}
		first := mips.OpMULT
		if st.op == "rem" {
			first = mips.OpDIV
		}
		return []mips.Word{
			word(mips.Inst{Op: first, Rs: rs, Rt: rt}),
			word(mips.Inst{Op: moveOp, Rd: rd}),
		}, nil
	case "l.d", "s.d":
		return e.encodeDoubleMem()
	}
	return nil, e.errf("unknown instruction")
}

// encodeCmpBranch expands the two-register compare-and-branch pseudos
// through $at: slt(u) $at, a, b ; bne/beq $at, $zero, target.
func (e *encoder) encodeCmpBranch() ([]mips.Word, error) {
	if err := e.nargs(3); err != nil {
		return nil, err
	}
	rs, err := e.reg(0)
	if err != nil {
		return nil, err
	}
	rt, err := e.reg(1)
	if err != nil {
		return nil, err
	}
	tgt, err := e.expr(2)
	if err != nil {
		return nil, err
	}
	// The branch is the second word of the expansion.
	off, err := e.branchOff(tgt, e.st.addr+4)
	if err != nil {
		return nil, err
	}
	sltOp := mips.OpSLT
	if e.st.op[len(e.st.op)-1] == 'u' {
		sltOp = mips.OpSLTU
	}
	var a, b uint8
	var brOp mips.Op
	switch e.st.op {
	case "blt", "bltu": // rs < rt
		a, b, brOp = rs, rt, mips.OpBNE
	case "bge", "bgeu": // !(rs < rt)
		a, b, brOp = rs, rt, mips.OpBEQ
	case "bgt", "bgtu": // rt < rs
		a, b, brOp = rt, rs, mips.OpBNE
	case "ble", "bleu": // !(rt < rs)
		a, b, brOp = rt, rs, mips.OpBEQ
	}
	return []mips.Word{
		word(mips.Inst{Op: sltOp, Rd: mips.RegAT, Rs: a, Rt: b}),
		word(mips.Inst{Op: brOp, Rs: mips.RegAT, Rt: mips.RegZero, Imm: off}),
	}, nil
}

// encodeDoubleMem expands l.d/s.d into a pair of single-word FP accesses.
// Little-endian doubles: the even register holds the low word at the
// lower address.
func (e *encoder) encodeDoubleMem() ([]mips.Word, error) {
	if err := e.nargs(2); err != nil {
		return nil, err
	}
	ft, err := e.freg(0)
	if err != nil {
		return nil, err
	}
	if !evenFPReg(ft) {
		return nil, e.errf("double-precision register %d must be even", ft)
	}
	off, base, direct, err := parseMem(e.st.args[1], e.syms)
	if err != nil {
		return nil, e.errf("%v", err)
	}
	if !direct {
		return nil, e.errf("symbol form not supported; load the address first")
	}
	if !fitsInt16(off) || !fitsInt16(off+4) {
		return nil, e.errf("offset %#x out of 16-bit range", off)
	}
	op := mips.OpLWC1
	if e.st.op == "s.d" {
		op = mips.OpSWC1
	}
	return []mips.Word{
		word(mips.Inst{Op: op, Rt: ft, Rs: base, Imm: uint16(off)}),
		word(mips.Inst{Op: op, Rt: ft + 1, Rs: base, Imm: uint16(off + 4)}),
	}, nil
}
