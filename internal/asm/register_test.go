package asm_test

// The front-end tests assemble against the default backend; linking it
// into the test binary registers it. The package proper stays free of
// concrete ISA imports.
import _ "ccrp/internal/mips"
