package asm

import (
	"bytes"
	"testing"
)

// FuzzAssemble: the assembler must never panic on arbitrary source, and
// anything it accepts must produce a word-aligned text section.
func FuzzAssemble(f *testing.F) {
	f.Add(".text\nnop\n")
	f.Add(".data\nv: .word 1, 2\n.text\nlw $t0, v\n")
	f.Add("label without colon\n")
	f.Add(".equ X, 5*5\n.text\nli $t0, X\n")
	f.Add("\t.ascii \"unterminated\n")
	f.Add(".text\nb far\nnop\nfar: jr $ra\nnop\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if len(p.Text)%4 != 0 {
			t.Fatalf("accepted program has unaligned text: %d bytes", len(p.Text))
		}
		var buf bytes.Buffer
		if err := p.WriteImage(&buf); err != nil {
			t.Fatalf("accepted program fails serialization: %v", err)
		}
		if _, err := ReadImage(&buf); err != nil {
			t.Fatalf("serialized program fails reload: %v", err)
		}
	})
}

// FuzzReadImage hardens the image parser.
func FuzzReadImage(f *testing.F) {
	p := &Program{Text: []byte{0, 0, 0, 0}, Data: []byte{1}, Symbols: map[string]uint32{}}
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadImage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteImage(&out); err != nil {
			t.Fatalf("accepted image fails re-serialization: %v", err)
		}
	})
}
