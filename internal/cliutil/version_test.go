package cliutil

import (
	"flag"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() returned an empty string")
	}
	// Test binaries always carry build info; at minimum the go version
	// or the devel marker must be present.
	if !strings.Contains(v, "go") && !strings.Contains(v, "devel") {
		t.Errorf("Version() = %q, want a go version or devel marker", v)
	}
}

func TestRegisterVersionFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	v := RegisterVersionFlag(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !*v {
		t.Error("-version flag did not parse to true")
	}
	// HandleVersionFlag must be a no-op when the flag is unset or nil.
	off := false
	HandleVersionFlag("test", &off)
	HandleVersionFlag("test", nil)
}
