// Package cliutil holds the selection and loading helpers shared by the
// ccsim, cctrace, and ccpack commands: memory-model, workload, and
// program/trace resolution, Huffman code-set construction, and the
// observability flag block (-metrics/-events/-sample/-cpuprofile/
// -memprofile) wired identically across the CLIs.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccrp/internal/asm"
	"ccrp/internal/experiments"
	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/metrics"
	"ccrp/internal/trace"
	"ccrp/internal/tracing"
	"ccrp/internal/workload"
)

// MemoryModel resolves a -mem flag value.
func MemoryModel(name string) (memory.Model, error) {
	mem, ok := memory.ByName(name)
	if !ok {
		var names []string
		for _, m := range memory.Models() {
			names = append(names, fmt.Sprintf("%q", m.Name()))
		}
		return nil, fmt.Errorf("unknown memory model %q (have %s)", name, strings.Join(names, ", "))
	}
	return mem, nil
}

// ResolveWorkload resolves a -workload flag value.
func ResolveWorkload(name string) (*workload.Workload, error) {
	if w, ok := workload.ByName(name); ok {
		return w, nil
	}
	if w, ok := workload.RISCVByName(name); ok {
		return w, nil
	}
	rv := make([]string, 0, len(workload.RISCV()))
	for _, w := range workload.RISCV() {
		rv = append(rv, w.Name)
	}
	return nil, fmt.Errorf("unknown workload %q (have %v and %v)", name, workload.Names(), rv)
}

// LoadProgram reads an assembly source (.s/.asm, assembled on the spot)
// or a binary program image from path.
func LoadProgram(path string) (*asm.Program, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return asm.Assemble(path, string(raw))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return asm.ReadImage(f)
}

// LoadTrace reads a serialized instruction trace from path.
func LoadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// Codes builds the Huffman code candidate set: the preselected bounded
// corpus code, plus — when ownText is non-nil — a bounded code trained on
// that program's own bytes (ccpack -own). Both come out of the sweep
// artifact cache, so repeated calls train nothing twice.
func Codes(ownText []byte) ([]*huffman.Code, error) {
	presel, err := experiments.PreselectedCode()
	if err != nil {
		return nil, err
	}
	codes := []*huffman.Code{presel}
	if ownText != nil {
		own, err := experiments.OwnCode(ownText)
		if err != nil {
			return nil, err
		}
		codes = append(codes, own)
	}
	return codes, nil
}

// ObsFlags is the observability flag block shared by the CLIs. Register
// it after the command's own flags and before flag.Parse.
type ObsFlags struct {
	Metrics    *string
	Events     *string
	Sample     *uint64
	Spans      *string
	CPUProfile *string
	MemProfile *string
}

// RegisterObsFlags installs the shared observability flags on fs
// (flag.CommandLine for the default set).
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		Metrics: fs.String("metrics", "",
			fmt.Sprintf("export metrics on stdout: %s", strings.Join(metrics.Formats(), ", "))),
		Events:     fs.String("events", "", "write the structured JSONL event stream to this file"),
		Sample:     fs.Uint64("sample", 64, "emit every Nth fetch event (structural events are never sampled)"),
		Spans:      fs.String("spans", "", "write per-stage tracing spans as JSONL to this file (analyze with ccrp-spans)"),
		CPUProfile: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		MemProfile: fs.String("memprofile", "", "write a pprof heap profile at exit to this file"),
	}
}

// Obs is the live observability state for one command run.
type Obs struct {
	Registry *metrics.Registry // nil unless -metrics was given
	Sink     metrics.EventSink // nil unless -events was given
	Tracer   *tracing.Tracer   // nil unless -spans was given
	format   string
	memPath  string
	stopCPU  func() error
}

// Begin validates the flags, starts the CPU profile, and opens the event
// sink. Call Finish (usually deferred through a named error) at exit.
func (f *ObsFlags) Begin() (*Obs, error) {
	o := &Obs{format: *f.Metrics, memPath: *f.MemProfile}
	if o.format != "" {
		valid := false
		for _, known := range metrics.Formats() {
			valid = valid || known == o.format
		}
		if !valid {
			return nil, fmt.Errorf("unknown -metrics format %q (have %s)",
				o.format, strings.Join(metrics.Formats(), ", "))
		}
		o.Registry = metrics.New()
	}
	if *f.Events != "" {
		ef, err := os.Create(*f.Events)
		if err != nil {
			return nil, err
		}
		o.Sink = &metrics.SampledSink{Inner: metrics.NewJSONLSink(ef), Every: *f.Sample}
	}
	if *f.Spans != "" {
		tf, err := os.Create(*f.Spans)
		if err != nil {
			return nil, err
		}
		// The sink owns tf: its Close flushes and closes the file.
		o.Tracer = tracing.New(tracing.Config{Sink: tracing.NewJSONLSink(tf)})
	}
	if *f.CPUProfile != "" {
		stop, err := StartCPUProfile(*f.CPUProfile)
		if err != nil {
			return nil, err
		}
		o.stopCPU = stop
	}
	return o, nil
}

// Finish closes the event sink, writes the profiles, and exports the
// metrics registry to stdout in the selected format.
func (o *Obs) Finish() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.Sink != nil {
		keep(o.Sink.Close())
	}
	if o.Tracer != nil {
		keep(o.Tracer.Close())
	}
	if o.stopCPU != nil {
		keep(o.stopCPU())
	}
	if o.memPath != "" {
		keep(WriteHeapProfile(o.memPath))
	}
	if o.Registry != nil {
		keep(o.Registry.WriteFormat(os.Stdout, o.format))
	}
	return first
}
