package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

// Version returns the tool version string: the module version when the
// binary was built from a tagged module, plus the VCS revision (and a
// dirty marker) when build metadata is stamped. Development builds with
// no metadata report "devel".
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		return fmt.Sprintf("%s (%s, %s)", v, rev, info.GoVersion)
	}
	return fmt.Sprintf("%s (%s)", v, info.GoVersion)
}

// RegisterVersionFlag installs the shared -version flag on fs. Call
// HandleVersionFlag right after flag parsing.
func RegisterVersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print the tool version and exit")
}

// HandleVersionFlag prints "<tool> <version>" and exits 0 when the
// -version flag was given; otherwise it is a no-op.
func HandleVersionFlag(tool string, v *bool) {
	if v == nil || !*v {
		return
	}
	fmt.Printf("%s %s\n", tool, Version())
	os.Exit(0)
}
