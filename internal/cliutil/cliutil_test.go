package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccrp/internal/asm"
	"ccrp/internal/trace"
	"ccrp/internal/tracing"
)

const tinySource = `
	.text
	addiu $t0, $zero, 5
	jr    $ra
	nop
`

func TestLoadProgramAssembly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.s")
	if err := os.WriteFile(path, []byte(tinySource), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.TextWords() != 3 {
		t.Errorf("assembled %d words, want 3", p.TextWords())
	}
}

func TestLoadProgramBadAssembly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(path, []byte(".text\n\tfrobnicate $t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProgram(path); err == nil {
		t.Error("bad assembly must error")
	}
}

func TestLoadProgramImageRoundTrip(t *testing.T) {
	src, err := asm.Assemble("tiny", tinySource)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteImage(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Text, src.Text) || p.Entry != src.Entry {
		t.Error("image round trip lost program content")
	}
}

func TestLoadProgramMissing(t *testing.T) {
	if _, err := LoadProgram(filepath.Join(t.TempDir(), "nope.s")); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadTrace(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		{PC: 0x1000},
		{PC: 0x1004, Addr: 0x8000, Flags: trace.FlagLoad},
	}}
	path := filepath.Join(t.TempDir(), "run.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instructions() != 2 || got.DataAccesses() != 1 {
		t.Errorf("trace = %d insns / %d accesses, want 2/1", got.Instructions(), got.DataAccesses())
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Error("missing trace must error")
	}
}

func TestResolveWorkload(t *testing.T) {
	w, err := ResolveWorkload("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "xlisp" {
		t.Errorf("resolved %q", w.Name)
	}
	if _, err := ResolveWorkload("doom"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown workload err = %v", err)
	}
}

func TestMemoryModel(t *testing.T) {
	m, err := MemoryModel("EPROM")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "EPROM" {
		t.Errorf("resolved %q", m.Name())
	}
	if _, err := MemoryModel("core-rope"); err == nil ||
		!strings.Contains(err.Error(), "unknown memory model") {
		t.Errorf("unknown model err = %v", err)
	}
}

func TestCodes(t *testing.T) {
	base, err := Codes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Fatalf("Codes(nil) = %d codes, want the preselected code only", len(base))
	}
	src, err := asm.Assemble("tiny", tinySource)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Codes(src.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 {
		t.Fatalf("Codes(text) = %d codes, want preselected + own", len(both))
	}
	if both[0] != base[0] {
		t.Error("preselected code not shared through the artifact cache")
	}
}

func TestObsFlagsWiring(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-metrics", "json", "-sample", "7"}); err != nil {
		t.Fatal(err)
	}
	if *f.Metrics != "json" || *f.Sample != 7 || *f.Events != "" {
		t.Errorf("flag block wired wrong: %+v", f)
	}
}

func TestObsBeginRejectsBadFormat(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-metrics", "xml"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Begin(); err == nil ||
		!strings.Contains(err.Error(), "unknown -metrics format") {
		t.Errorf("Begin() err = %v, want format error", err)
	}
}

func TestObsBeginFinish(t *testing.T) {
	events := filepath.Join(t.TempDir(), "ev.jsonl")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-events", events, "-sample", "1"}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if o.Registry != nil {
		t.Error("registry allocated without -metrics")
	}
	if o.Sink == nil {
		t.Fatal("no event sink despite -events")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(events); err != nil {
		t.Errorf("event file missing: %v", err)
	}
}

// TestObsSpansFinish pins the -spans lifecycle: Finish flushes the span
// sink exactly once (the sink owns the file; a second close used to make
// every -spans run exit non-zero with "file already closed") and the
// file holds the emitted records.
func TestObsSpansFinish(t *testing.T) {
	spans := filepath.Join(t.TempDir(), "sp.jsonl")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-spans", spans}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil {
		t.Fatal("no tracer despite -spans")
	}
	o.Tracer.Start("sweep_point").End()
	if err := o.Finish(); err != nil {
		t.Fatalf("Finish() = %v, want nil", err)
	}
	sf, err := os.Open(spans)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	recs, err := tracing.ReadRecords(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Stage != "sweep_point" {
		t.Errorf("span file holds %+v, want one sweep_point record", recs)
	}
}
