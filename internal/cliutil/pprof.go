package cliutil

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a runtime/pprof CPU profile writing to path and
// returns the function that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the profile reflects live heap
	return pprof.WriteHeapProfile(f)
}
