package core

import (
	"errors"
	"fmt"

	"ccrp/internal/cache"
	"ccrp/internal/clb"
	"ccrp/internal/huffman"
	"ccrp/internal/lat"
	"ccrp/internal/memory"
	"ccrp/internal/metrics"
	"ccrp/internal/trace"
)

// Config describes one simulated system configuration (paper §3/§4.1).
type Config struct {
	CacheBytes  int          // i-cache size, 256..4096 in the paper
	CacheWays   int          // associativity; 0/1 = the paper's direct-mapped
	CLBEntries  int          // 4, 8, or 16
	Mem         memory.Model // instruction memory timing
	DecodeRate  int          // decoder bytes/cycle; 0 = the paper's 2
	Codes       []*huffman.Code
	Codec       LineCodec // alternative per-line scheme (see Options.Codec)
	WordAligned bool

	// DataAccessCycles is the cost of one data access to its random DRAM
	// (4 cycles in the paper). With DataCache set, §4.2.4's analytical
	// model applies instead: hits are free and only the DCacheMissRate
	// fraction of accesses pays DataAccessCycles. Without DataCache every
	// access pays full cost (the paper's base configuration).
	DataAccessCycles uint64
	DataCache        bool
	DCacheMissRate   float64

	// OverlapCycles lets the processor pipeline continue for up to this
	// many cycles into each line refill (the paper's §5 "allow the
	// processor to continue during memory delays" extension; 0 = the
	// paper's blocking model).
	OverlapCycles uint64

	// ROM, when set, is a prebuilt compressed image of the same program
	// text, and Compare uses it instead of building its own (the Codes,
	// Codec, and WordAligned fields are then ignored — the ROM already
	// embeds them). A built ROM is read-only during simulation, so one
	// ROM may be shared by concurrent Compare calls; the sweep engine's
	// artifact cache relies on this to compress each program once per
	// coding configuration instead of once per sweep point.
	ROM *ROM

	// CLBProbeEveryFetch updates CLB recency on every instruction fetch,
	// exactly as the paper's hardware does ("during each instruction
	// fetch, the CLB is searched"); the default probes only on cache
	// misses. The policies differ only in LRU state — a difference
	// visible only when the CLB is too small for the working set.
	CLBProbeEveryFetch bool

	// Metrics, when set, receives per-set cache miss counters, CLB churn,
	// refill-cycle and line-size histograms, the per-line fetch heatmap,
	// and derived gauges. Nil (the default) disables all instrumentation.
	Metrics *metrics.Registry
	// Events, when set, receives the structured event stream (fetch,
	// icache_miss, clb_*, lat_fetch, refill_start/refill_end). Wrap in a
	// metrics.SampledSink to thin the per-instruction fetch events.
	Events metrics.EventSink
}

// withDefaults fills unset fields with the paper's base parameters.
func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 1024
	}
	if c.CacheWays == 0 {
		c.CacheWays = 1
	}
	if c.CLBEntries == 0 {
		c.CLBEntries = 16
	}
	if c.Mem == nil {
		c.Mem = memory.BurstEPROM{}
	}
	if c.DataAccessCycles == 0 {
		c.DataAccessCycles = 4
	}
	if !c.DataCache {
		c.DCacheMissRate = 1.0
	}
	return c
}

// Stats accumulates one system's execution costs over a trace.
type Stats struct {
	Cycles       uint64 `json:"cycles"`        // total execution cycles
	BaseCycles   uint64 `json:"base_cycles"`   // instructions + pipeline stalls
	RefillCycles uint64 `json:"refill_cycles"` // i-cache refill cycles (incl. CLB refills)
	DataCycles   uint64 `json:"data_cycles"`   // data memory cycles
	Accesses     uint64 `json:"accesses"`      // instruction fetches
	Misses       uint64 `json:"misses"`        // i-cache misses
	CLBMisses    uint64 `json:"clb_misses"`    // CCRP only
	TrafficBytes uint64 `json:"traffic_bytes"` // instruction bytes moved from main memory
}

// MissRate returns the instruction cache miss rate.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Comparison is the outcome of running one trace through the standard
// and CCRP systems.
type Comparison struct {
	Standard Stats
	CCRP     Stats
	ROM      *ROM
}

// RelativePerformance follows the paper's tables: CCRP execution time
// over standard execution time. Values below 1.0 mean the compressed
// system is faster.
func (c *Comparison) RelativePerformance() float64 {
	if c.Standard.Cycles == 0 {
		return 1
	}
	return float64(c.CCRP.Cycles) / float64(c.Standard.Cycles)
}

// TrafficRatio is CCRP instruction memory traffic over standard traffic.
func (c *Comparison) TrafficRatio() float64 {
	if c.Standard.TrafficBytes == 0 {
		return 1
	}
	return float64(c.CCRP.TrafficBytes) / float64(c.Standard.TrafficBytes)
}

// MissRate is the shared instruction cache miss rate (identical for both
// systems: in-cache code is identical, so hit/miss sequences coincide).
func (c *Comparison) MissRate() float64 { return c.Standard.MissRate() }

// ErrEmptyTrace is returned for traces with no instruction events.
var ErrEmptyTrace = errors.New("core: empty trace")

// Compare runs the trace through both systems over the given program text.
//
// Both processors share the same cache geometry, so one cache pass drives
// both cycle models; they differ only in what a miss costs. The CLB is
// consulted on instruction cache misses; the paper's hardware probes it
// every fetch so a hit is free, which is what charging CLB penalties only
// on misses models.
func Compare(tr *trace.Trace, text []byte, cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	if tr == nil || len(tr.Events) == 0 {
		return nil, ErrEmptyTrace
	}
	rom := cfg.ROM
	if rom == nil {
		var err error
		rom, err = BuildROM(text, Options{Codes: cfg.Codes, Codec: cfg.Codec, WordAligned: cfg.WordAligned})
		if err != nil {
			return nil, err
		}
	}
	ic, err := cache.NewAssoc(cfg.CacheBytes, LineSize, cfg.CacheWays)
	if err != nil {
		return nil, err
	}
	buf := clb.New(cfg.CLBEntries)
	engine := RefillEngine{Mem: cfg.Mem, Rate: cfg.DecodeRate}
	post := cfg.Mem.PostBurstCycles()

	cmp := &Comparison{ROM: rom}
	std, ccrp := &cmp.Standard, &cmp.CCRP

	base := uint64(tr.Instructions()) + tr.Stalls
	std.BaseCycles, ccrp.BaseCycles = base, base

	stdLineRefill := engine.RawLineCycles(LineSize) + post
	stdLineRefill -= min64(cfg.OverlapCycles, stdLineRefill)
	latFetch := engine.LATFetchCycles() + post

	var pr *probe // nil keeps the loop's event sites to one pointer test
	if cfg.Metrics != nil || cfg.Events != nil {
		pr = newProbe(cfg.Metrics, cfg.Events, rom, ic, buf, engine.rate())
	}

	var dataAccesses uint64
	for i, ev := range tr.Events {
		seq := uint64(i)
		if ev.IsMemOp() {
			dataAccesses++
		}
		latIdx := ev.PC / lat.GroupSpan
		pr.fetch(seq, ev.PC)
		if ic.Access(ev.PC) {
			if cfg.CLBProbeEveryFetch {
				// Hardware probes in parallel with the cache; a hit only
				// refreshes recency, a miss costs nothing until the
				// cache also misses.
				buf.Lookup(latIdx)
			}
			continue
		}
		// Miss: identical for both systems; refill costs differ.
		std.RefillCycles += stdLineRefill
		std.TrafficBytes += LineSize

		li, err := rom.LineIndex(ev.PC)
		if err != nil {
			return nil, fmt.Errorf("core: trace fetch %#x outside program text: %w", ev.PC, err)
		}
		_, hit := buf.Lookup(latIdx)
		pr.miss(seq, ev.PC, ic.Set(ev.PC), hit)
		if !hit {
			ccrp.CLBMisses++
			ccrp.RefillCycles += latFetch
			ccrp.TrafficBytes += lat.EntryBytes
			pr.latFetch(seq, ev.PC, latFetch, lat.EntryBytes)
			buf.Insert(latIdx, rom.Table.Entries[latIdx])
		}
		refill := engine.LineCycles(rom, li) + post
		if cfg.OverlapCycles > 0 {
			if cfg.OverlapCycles >= refill {
				refill = 0
			} else {
				refill -= cfg.OverlapCycles
			}
		}
		ccrp.RefillCycles += refill
		ccrp.TrafficBytes += LineTrafficBytes(rom, li)
		pr.refill(seq, ev.PC, li, rom.Lines[li].Raw, len(rom.Lines[li].Stored), refill)
	}
	pr.finish()

	cs := ic.Stats()
	std.Accesses, ccrp.Accesses = cs.Accesses, cs.Accesses
	std.Misses, ccrp.Misses = cs.Misses, cs.Misses

	dataCost := uint64(float64(dataAccesses) * float64(cfg.DataAccessCycles) * cfg.DCacheMissRate)
	std.DataCycles, ccrp.DataCycles = dataCost, dataCost

	std.Cycles = std.BaseCycles + std.RefillCycles + std.DataCycles
	ccrp.Cycles = ccrp.BaseCycles + ccrp.RefillCycles + ccrp.DataCycles
	return cmp, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
