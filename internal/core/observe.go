package core

import (
	"strconv"

	"ccrp/internal/cache"
	"ccrp/internal/clb"
	"ccrp/internal/metrics"
)

// probe carries the optional observability state of one Compare run: the
// registered instruments and the structured-event sink. A nil *probe is
// the disabled state; every method no-ops so the simulation loop pays one
// pointer test per event site.
type probe struct {
	sink metrics.EventSink // nil when events are off

	refillHist *metrics.Histogram // CCRP refill cycles per i-cache miss
	storedHist *metrics.Histogram // static stored-bytes distribution over ROM lines
	lineFetch  []*metrics.Counter // fetch-frequency heatmap keyed by line index
	latFetches *metrics.Counter
	rawRefills *metrics.Counter
	decBytes   uint64 // decoder output bytes over compressed refills
	decCycles  uint64 // decoder busy cycles over compressed refills
	util       *metrics.Gauge
	clbRatio   *metrics.Gauge
	rate       uint64
	clb        *clb.CLB
}

// newProbe registers the core instruments and wires the cache and CLB
// hooks. Either reg or sink may be nil.
func newProbe(reg *metrics.Registry, sink metrics.EventSink, rom *ROM, ic *cache.Cache, buf *clb.CLB, rate int) *probe {
	p := &probe{sink: sink, clb: buf, rate: uint64(rate)}
	if reg != nil {
		ic.Instrument(reg)
		buf.Instrument(reg)
		p.refillHist = reg.Histogram("ccrp_refill_cycles",
			"CCRP line refill cycles per instruction cache miss",
			metrics.LinearBuckets(4, 4, 16))
		p.storedHist = reg.Histogram("ccrp_line_stored_bytes",
			"stored (compressed) bytes per ROM line",
			metrics.LinearBuckets(4, 4, 8))
		p.latFetches = reg.Counter("ccrp_lat_fetches_total",
			"LAT entries fetched from instruction memory on CLB misses")
		p.rawRefills = reg.Counter("ccrp_raw_refills_total",
			"refills served from raw (bypass) lines")
		p.util = reg.Gauge("ccrp_decoder_utilization",
			"decoder output bytes per available decode-byte slot during compressed refills")
		p.clbRatio = reg.Gauge("ccrp_clb_hit_ratio", "CLB probe hit ratio")

		vec := reg.CounterVec("ccrp_line_fetches_total",
			"instruction fetches by ROM line index", "line")
		p.lineFetch = make([]*metrics.Counter, len(rom.Lines))
		for i := range rom.Lines {
			p.lineFetch[i] = vec.With(strconv.Itoa(i))
			p.storedHist.Observe(float64(len(rom.Lines[i].Stored)))
		}
	}
	return p
}

// fetch records one instruction fetch.
func (p *probe) fetch(seq uint64, pc uint32) {
	if p == nil {
		return
	}
	li := int(pc / LineSize)
	if p.lineFetch != nil && li < len(p.lineFetch) {
		p.lineFetch[li].Inc()
	}
	if p.sink != nil {
		p.sink.Emit(metrics.Event{Type: metrics.EvFetch, Seq: seq, PC: pc, Line: li, Set: -1})
	}
}

// miss records an instruction cache miss and the CLB probe outcome that
// follows it.
func (p *probe) miss(seq uint64, pc uint32, set int, clbHit bool) {
	if p == nil || p.sink == nil {
		return
	}
	li := int(pc / LineSize)
	p.sink.Emit(metrics.Event{Type: metrics.EvICacheMiss, Seq: seq, PC: pc, Line: li, Set: set})
	typ := metrics.EvCLBMiss
	if clbHit {
		typ = metrics.EvCLBHit
	}
	p.sink.Emit(metrics.Event{Type: typ, Seq: seq, PC: pc, Line: li, Set: -1})
}

// latFetch records a CLB miss being serviced: the possible eviction, then
// the LAT entry read.
func (p *probe) latFetch(seq uint64, pc uint32, cycles uint64, entryBytes int) {
	if p == nil {
		return
	}
	p.latFetches.Inc()
	if p.sink != nil {
		if age, full := p.clb.EvictionAge(); full {
			p.sink.Emit(metrics.Event{Type: metrics.EvCLBEvict, Seq: seq, PC: pc, Line: -1, Set: -1, Age: age})
		}
		p.sink.Emit(metrics.Event{
			Type: metrics.EvLATFetch, Seq: seq, PC: pc, Line: -1, Set: -1,
			Cycles: cycles, Bytes: entryBytes,
		})
	}
}

// refill records one line refill: its stored size, cycle cost, and the
// decoder throughput sample when the line was compressed.
func (p *probe) refill(seq uint64, pc uint32, line int, raw bool, storedBytes int, cycles uint64) {
	if p == nil {
		return
	}
	p.refillHist.Observe(float64(cycles))
	if raw {
		p.rawRefills.Inc()
	} else if cycles > 0 {
		p.decBytes += LineSize
		p.decCycles += cycles
	}
	if p.sink != nil {
		p.sink.Emit(metrics.Event{Type: metrics.EvRefillStart, Seq: seq, PC: pc, Line: line, Set: -1, Bytes: storedBytes})
		p.sink.Emit(metrics.Event{Type: metrics.EvRefillEnd, Seq: seq, PC: pc, Line: line, Set: -1, Cycles: cycles})
	}
}

// finish computes the derived gauges once the trace has been consumed.
func (p *probe) finish() {
	if p == nil {
		return
	}
	if p.decCycles > 0 && p.rate > 0 {
		p.util.Set(float64(p.decBytes) / float64(p.decCycles*p.rate))
	}
	s := p.clb.Stats()
	if s.Hits+s.Misses > 0 {
		p.clbRatio.Set(1 - s.MissRate())
	}
}
