package core

import (
	"ccrp/internal/memory"
)

// DecodeBytesPerCycle is the paper's decoder rate: one byte decoded on
// each clock edge, two per processor cycle.
const DecodeBytesPerCycle = 2

// RefillEngine models the cache refill datapath: compressed words stream
// in from instruction memory while the Huffman decoder drains them at
// Rate bytes per cycle (the paper's decoder does 2, one per clock edge),
// stalling whenever the bits for the next output byte have not arrived.
type RefillEngine struct {
	Mem  memory.Model
	Rate int // decoded bytes per cycle; 0 means DecodeBytesPerCycle
}

func (e RefillEngine) rate() int {
	if e.Rate <= 0 {
		return DecodeBytesPerCycle
	}
	return e.Rate
}

// RawLineCycles is the refill time of an uncompressed (bypass) block,
// identical to a standard processor's line refill: a burst of
// lineBytes/4 words.
func (e RefillEngine) RawLineCycles(lineBytes int) uint64 {
	return e.Mem.BurstCycles(lineBytes / 4)
}

// CompressedLineCycles is the refill time of a compressed block.
// bitLens[k] is the encoded length of output byte k; storedBytes is the
// block's stored size (word-rounded when the image is word aligned).
//
// The model works in decode ticks of 1/Rate cycle: output byte k
// completes one tick after both (a) the previous byte and (b) the memory
// word containing bit position cum(k) have arrived. At the paper's 2
// bytes/cycle the minimum for a 32-byte line is therefore 16 cycles plus
// the first word's access time, as in §3.4.
func (e RefillEngine) CompressedLineCycles(bitLens []int, storedBytes int) uint64 {
	rate := uint64(e.rate())
	words := (storedBytes + 3) / 4
	cum := 0
	var t uint64 // ticks of 1/rate cycle
	for _, n := range bitLens {
		cum += n
		wordIdx := (cum - 1) / 32
		if wordIdx >= words {
			wordIdx = words - 1 // padding bits live in the last stored word
		}
		avail := rate * e.Mem.WordArrival(wordIdx)
		if avail > t {
			t = avail
		}
		t++ // the decode tick itself
	}
	return (t + rate - 1) / rate
}

// LineCycles dispatches on the block kind and returns the refill time of
// ROM line i, excluding CLB effects and post-burst recovery.
func (e RefillEngine) LineCycles(r *ROM, i int) uint64 {
	l := r.Lines[i]
	if l.Raw {
		return e.RawLineCycles(len(l.Stored))
	}
	return e.CompressedLineCycles(r.bitLengths(i), len(l.Stored))
}

// LATFetchCycles is the CLB refill penalty: reading one 8-byte LAT entry
// (a two-word sequential access) plus one cycle in the CLB's address
// computation unit.
func (e RefillEngine) LATFetchCycles() uint64 {
	return e.Mem.BurstCycles(2) + 1
}

// LineTrafficBytes returns the bus traffic a CCRP refill of line i causes:
// whole words, since the bus performs word accesses even for byte-aligned
// blocks (§4.1).
func LineTrafficBytes(r *ROM, i int) uint64 {
	return uint64((len(r.Lines[i].Stored) + 3) / 4 * 4)
}
