package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/trace"
)

// riscLikeText builds a deterministic pseudo-program whose byte histogram
// is skewed like real R2000 code (many zero bytes, clustered opcodes).
func riscLikeText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	for len(out) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // ALU op with small fields
			out = append(out, byte(rng.Intn(32)), byte(rng.Intn(64)), byte(rng.Intn(16)), 0x00)
		case 4, 5, 6: // load/store with small offset
			out = append(out, byte(rng.Intn(128)), 0x00, byte(0xBD+rng.Intn(2)), byte(0x8C+rng.Intn(4)))
		case 7, 8: // branch
			out = append(out, byte(rng.Intn(16)), 0x00, byte(0x40+rng.Intn(8)), 0x10)
		default: // lui / constants
			out = append(out, byte(rng.Intn(256)), byte(rng.Intn(4)), byte(rng.Intn(8)), 0x3C)
		}
	}
	return out[:n]
}

func testCode(t testing.TB, data []byte) *huffman.Code {
	t.Helper()
	c, err := huffman.BuildBounded(huffman.HistogramOf(data).Smooth(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildROMAndVerify(t *testing.T) {
	text := riscLikeText(4096, 1)
	code := testCode(t, text)
	rom, err := BuildROM(text, Options{Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rom.Lines) != 4096/32 {
		t.Fatalf("lines = %d", len(rom.Lines))
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
	if rom.Ratio() >= 1.0 {
		t.Errorf("risc-like text did not compress: ratio = %.3f", rom.Ratio())
	}
	if rom.CompressedSize() != rom.BlocksSize()+rom.TableSize() {
		t.Error("size accounting inconsistent")
	}
	// LAT overhead is 3.125% of original.
	if got := float64(rom.TableSize()) / float64(rom.OriginalSize); got != 0.03125 {
		t.Errorf("LAT overhead = %v", got)
	}
}

func TestPaddingShortText(t *testing.T) {
	text := riscLikeText(100, 2) // not a multiple of 32
	rom, err := BuildROM(text, Options{Codes: []*huffman.Code{testCode(t, text)}})
	if err != nil {
		t.Fatal(err)
	}
	if rom.OriginalSize != 128 || len(rom.Lines) != 4 {
		t.Fatalf("padded to %d bytes, %d lines", rom.OriginalSize, len(rom.Lines))
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRawFallback(t *testing.T) {
	// A code trained on a completely different distribution makes the
	// data incompressible, forcing the bypass path.
	skew := bytes.Repeat([]byte{0}, 4096)
	code := testCode(t, skew) // ~1 bit for 0x00, long codes for the rest
	hostile := make([]byte, 1024)
	rng := rand.New(rand.NewSource(3))
	for i := range hostile {
		hostile[i] = byte(1 + rng.Intn(255))
	}
	rom, err := BuildROM(hostile, Options{Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	if rom.RawLines() != len(rom.Lines) {
		t.Errorf("raw lines = %d of %d", rom.RawLines(), len(rom.Lines))
	}
	// No encoded block may ever exceed its original size (§2.2).
	for i, l := range rom.Lines {
		if len(l.Stored) > LineSize {
			t.Errorf("line %d stored %d bytes", i, len(l.Stored))
		}
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
	if rom.Ratio() > 1.0+0.04 { // raw blocks + 3.125% LAT
		t.Errorf("worst-case ratio = %.4f", rom.Ratio())
	}
}

func TestWordAlignment(t *testing.T) {
	text := riscLikeText(2048, 4)
	code := testCode(t, text)
	byteROM, err := BuildROM(text, Options{Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	wordROM, err := BuildROM(text, Options{Codes: []*huffman.Code{code}, WordAligned: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range wordROM.Lines {
		if len(l.Stored)%4 != 0 {
			t.Errorf("word-aligned line %d has %d bytes", i, len(l.Stored))
		}
	}
	if wordROM.BlocksSize() < byteROM.BlocksSize() {
		t.Error("word alignment cannot shrink the image")
	}
	if err := wordROM.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCodeSelection(t *testing.T) {
	// Two halves with very different statistics; two specialized codes.
	a := riscLikeText(1024, 5)
	b := bytes.Repeat([]byte{0xAA, 0xBB, 0xCC, 0xDD}, 256)
	text := append(append([]byte{}, a...), b...)
	codeA := testCode(t, a)
	codeB := testCode(t, b)
	single, err := BuildROM(text, Options{Codes: []*huffman.Code{codeA}})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildROM(text, Options{Codes: []*huffman.Code{codeA, codeB}})
	if err != nil {
		t.Fatal(err)
	}
	if multi.TagBits() != len(multi.Lines) {
		t.Errorf("tag bits = %d, want 1 per line", multi.TagBits())
	}
	if single.TagBits() != 0 {
		t.Error("single-code image has tag overhead")
	}
	if multi.BlocksSize() >= single.BlocksSize() {
		t.Errorf("multi-code blocks %d not smaller than single %d",
			multi.BlocksSize(), single.BlocksSize())
	}
	if err := multi.Verify(); err != nil {
		t.Fatal(err)
	}
	usedB := false
	for _, l := range multi.Lines {
		if l.CodeIdx == 1 {
			usedB = true
		}
	}
	if !usedB {
		t.Error("second code never selected")
	}
}

func TestBuildROMErrors(t *testing.T) {
	if _, err := BuildROM([]byte{1, 2, 3}, Options{}); !errors.Is(err, ErrNoCodes) {
		t.Errorf("err = %v", err)
	}
	text := riscLikeText(64, 6)
	rom, err := BuildROM(text, Options{Codes: []*huffman.Code{testCode(t, text)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rom.LineIndex(uint32(rom.OriginalSize)); err == nil {
		t.Error("LineIndex past end accepted")
	}
	if _, err := rom.DecompressLine(-1); err == nil {
		t.Error("DecompressLine(-1) accepted")
	}
	if _, err := rom.DecompressLine(len(rom.Lines)); err == nil {
		t.Error("DecompressLine past end accepted")
	}
}

// Property: BuildROM + DecompressLine is the identity for arbitrary text
// under a smoothed code.
func TestROMRoundTripQuick(t *testing.T) {
	code := testCode(t, riscLikeText(8192, 7))
	f := func(text []byte) bool {
		if len(text) == 0 {
			return true
		}
		rom, err := BuildROM(text, Options{Codes: []*huffman.Code{code}})
		if err != nil {
			return false
		}
		return rom.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- refill engine ---

func TestRawRefillMatchesStandard(t *testing.T) {
	for _, m := range memory.Models() {
		e := RefillEngine{Mem: m}
		if got, want := e.RawLineCycles(32), m.BurstCycles(8); got != want {
			t.Errorf("%s raw refill = %d, want %d", m.Name(), got, want)
		}
	}
}

func TestCompressedRefillMinimum(t *testing.T) {
	// With bits arriving faster than the decoder drains them, the refill
	// takes exactly 16 cycles + first-word access time (§3.4).
	bitLens := make([]int, 32)
	for i := range bitLens {
		bitLens[i] = 4 // 128 bits = 16 stored bytes
	}
	e := RefillEngine{Mem: memory.BurstEPROM{}}
	if got := e.CompressedLineCycles(bitLens, 16); got != 16+3 {
		t.Errorf("burst EPROM compressed refill = %d, want 19", got)
	}
	d := RefillEngine{Mem: memory.SCDRAM{}}
	if got := d.CompressedLineCycles(bitLens, 16); got != 16+4 {
		t.Errorf("DRAM compressed refill = %d, want 20", got)
	}
}

func TestCompressedRefillBeatsStandardOnEPROM(t *testing.T) {
	// On slow EPROM, fetching fewer bytes dominates: a 16-byte block
	// refills faster than the 24-cycle standard refill.
	bitLens := make([]int, 32)
	for i := range bitLens {
		bitLens[i] = 4
	}
	e := RefillEngine{Mem: memory.EPROM{}}
	comp := e.CompressedLineCycles(bitLens, 16)
	if std := e.RawLineCycles(32); comp >= std {
		t.Errorf("EPROM compressed refill %d not faster than standard %d", comp, std)
	}
}

func TestCompressedRefillStallsOnSlowMemory(t *testing.T) {
	// A barely-compressed block on EPROM is fetch-bound, slower than the
	// decode minimum.
	bitLens := make([]int, 32)
	for i := range bitLens {
		bitLens[i] = 7 // 224 bits = 28 bytes, 7 words
	}
	e := RefillEngine{Mem: memory.EPROM{}}
	got := e.CompressedLineCycles(bitLens, 28)
	if got <= 16+3 {
		t.Errorf("fetch-bound refill = %d, expected > 19", got)
	}
	if last := (memory.EPROM{}).WordArrival(6); got < last {
		t.Errorf("refill %d finished before last word at %d", got, last)
	}
}

func TestRefillMonotoneInSize(t *testing.T) {
	e := RefillEngine{Mem: memory.EPROM{}}
	prev := uint64(0)
	for bytes := 4; bytes <= 28; bytes += 4 {
		bitLens := make([]int, 32)
		for i := range bitLens {
			bitLens[i] = bytes * 8 / 32
		}
		got := e.CompressedLineCycles(bitLens, bytes)
		if got < prev {
			t.Errorf("refill(%dB) = %d < refill(%dB) = %d", bytes, got, bytes-4, prev)
		}
		prev = got
	}
}

func TestLATFetchCycles(t *testing.T) {
	cases := []struct {
		mem  memory.Model
		want uint64
	}{
		{memory.EPROM{}, 6 + 1},
		{memory.BurstEPROM{}, 4 + 1},
		{memory.SCDRAM{}, 5 + 1},
	}
	for _, c := range cases {
		if got := (RefillEngine{Mem: c.mem}).LATFetchCycles(); got != c.want {
			t.Errorf("%s LAT fetch = %d, want %d", c.mem.Name(), got, c.want)
		}
	}
}

// --- system comparison ---

// syntheticTrace walks the first n bytes of text in a loop, marking every
// fourth instruction as a load.
func syntheticTrace(textBytes, loopBytes, iterations int) *trace.Trace {
	tr := &trace.Trace{}
	if loopBytes > textBytes {
		loopBytes = textBytes
	}
	for it := 0; it < iterations; it++ {
		for pc := 0; pc < loopBytes; pc += 4 {
			e := trace.Event{PC: uint32(pc)}
			if pc/4%4 == 3 {
				e.Flags = trace.FlagLoad
				e.Addr = 0x100000
			}
			tr.Events = append(tr.Events, e)
		}
	}
	return tr
}

func compareWith(t *testing.T, cfg Config, loopBytes int) *Comparison {
	t.Helper()
	text := riscLikeText(8192, 42)
	if cfg.Codes == nil {
		cfg.Codes = []*huffman.Code{testCode(t, text)}
	}
	tr := syntheticTrace(len(text), loopBytes, 50)
	cmp, err := Compare(tr, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}

func TestCompareBasicInvariants(t *testing.T) {
	cmp := compareWith(t, Config{CacheBytes: 1024, Mem: memory.BurstEPROM{}}, 4096)
	if cmp.Standard.Misses == 0 {
		t.Fatal("no misses; test premise broken")
	}
	if cmp.Standard.Misses != cmp.CCRP.Misses {
		t.Error("miss counts differ between systems")
	}
	if cmp.TrafficRatio() >= 1.0 {
		t.Errorf("traffic ratio = %.3f, want < 1 (paper §4.3: reduced in all cases)", cmp.TrafficRatio())
	}
	if cmp.CCRP.CLBMisses == 0 || cmp.CCRP.CLBMisses > cmp.CCRP.Misses {
		t.Errorf("CLB misses = %d of %d cache misses", cmp.CCRP.CLBMisses, cmp.CCRP.Misses)
	}
	if cmp.MissRate() <= 0 || cmp.MissRate() > 1 {
		t.Errorf("miss rate = %v", cmp.MissRate())
	}
	if cmp.Standard.Cycles <= cmp.Standard.BaseCycles {
		t.Error("standard cycles missing refill costs")
	}
}

func TestEPROMFavorsCompression(t *testing.T) {
	eprom := compareWith(t, Config{CacheBytes: 256, Mem: memory.EPROM{}}, 4096)
	burst := compareWith(t, Config{CacheBytes: 256, Mem: memory.BurstEPROM{}}, 4096)
	if eprom.RelativePerformance() >= burst.RelativePerformance() {
		t.Errorf("EPROM relperf %.3f should beat burst %.3f",
			eprom.RelativePerformance(), burst.RelativePerformance())
	}
	if eprom.RelativePerformance() >= 1.0 {
		t.Errorf("EPROM relperf = %.3f, expected < 1 (compression wins on slow memory)",
			eprom.RelativePerformance())
	}
	if burst.RelativePerformance() <= 1.0 {
		t.Errorf("burst relperf = %.3f, expected > 1 (decode-bound)", burst.RelativePerformance())
	}
}

func TestLargerCacheReducesImpact(t *testing.T) {
	small := compareWith(t, Config{CacheBytes: 256, Mem: memory.BurstEPROM{}}, 2048)
	large := compareWith(t, Config{CacheBytes: 4096, Mem: memory.BurstEPROM{}}, 2048)
	if large.MissRate() >= small.MissRate() {
		t.Errorf("miss rate did not fall with cache size: %.4f vs %.4f",
			large.MissRate(), small.MissRate())
	}
	// With a fitting cache the two systems converge.
	devSmall := small.RelativePerformance() - 1
	devLarge := large.RelativePerformance() - 1
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	if abs(devLarge) > abs(devSmall) {
		t.Errorf("relperf deviation grew with cache size: %.4f vs %.4f", devLarge, devSmall)
	}
}

func TestDCacheMissRateScalesImpact(t *testing.T) {
	// More data cycles dilute the instruction-side difference (§4.2.4).
	noD := compareWith(t, Config{CacheBytes: 1024, Mem: memory.EPROM{}, DataCache: true, DCacheMissRate: 0.001}, 4096)
	fullD := compareWith(t, Config{CacheBytes: 1024, Mem: memory.EPROM{}, DataCache: true, DCacheMissRate: 1.0}, 4096)
	devNoD := 1 - noD.RelativePerformance()
	devFull := 1 - fullD.RelativePerformance()
	if devNoD <= devFull {
		t.Errorf("without d-cache misses the CCRP effect should be larger: %.4f vs %.4f",
			devNoD, devFull)
	}
}

func TestCLBSizeEffect(t *testing.T) {
	big := compareWith(t, Config{CacheBytes: 256, Mem: memory.EPROM{}, CLBEntries: 16}, 8192)
	small := compareWith(t, Config{CacheBytes: 256, Mem: memory.EPROM{}, CLBEntries: 1}, 8192)
	if small.CCRP.CLBMisses < big.CCRP.CLBMisses {
		t.Errorf("smaller CLB misses less: %d vs %d", small.CCRP.CLBMisses, big.CCRP.CLBMisses)
	}
	if small.CCRP.Cycles < big.CCRP.Cycles {
		t.Error("smaller CLB produced faster system")
	}
}

func TestOverlapReducesCycles(t *testing.T) {
	block := compareWith(t, Config{CacheBytes: 256, Mem: memory.BurstEPROM{}}, 4096)
	overlap := compareWith(t, Config{CacheBytes: 256, Mem: memory.BurstEPROM{}, OverlapCycles: 4}, 4096)
	if overlap.CCRP.Cycles >= block.CCRP.Cycles {
		t.Error("overlap did not reduce CCRP cycles")
	}
	if overlap.Standard.Cycles >= block.Standard.Cycles {
		t.Error("overlap did not reduce standard cycles")
	}
}

func TestCompareErrors(t *testing.T) {
	text := riscLikeText(256, 9)
	code := testCode(t, text)
	if _, err := Compare(&trace.Trace{}, text, Config{Codes: []*huffman.Code{code}}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty trace err = %v", err)
	}
	tr := &trace.Trace{Events: []trace.Event{{PC: 0x10000}}}
	if _, err := Compare(tr, text, Config{Codes: []*huffman.Code{code}}); err == nil {
		t.Error("out-of-text fetch accepted")
	}
	if _, err := Compare(tr, text, Config{}); !errors.Is(err, ErrNoCodes) {
		t.Errorf("missing codes err = %v", err)
	}
	if _, err := Compare(tr, text, Config{Codes: []*huffman.Code{code}, CacheBytes: 300}); err == nil {
		t.Error("bad cache geometry accepted")
	}
}

func BenchmarkBuildROM(b *testing.B) {
	text := riscLikeText(65536, 10)
	code := testCode(b, text)
	opts := Options{Codes: []*huffman.Code{code}}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildROM(text, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	text := riscLikeText(8192, 11)
	code := testCode(b, text)
	tr := syntheticTrace(len(text), 4096, 20)
	cfg := Config{CacheBytes: 1024, Mem: memory.BurstEPROM{}, Codes: []*huffman.Code{code}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(tr, text, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeRateEffect(t *testing.T) {
	bitLens := make([]int, 32)
	for i := range bitLens {
		bitLens[i] = 6 // 192 bits = 24 stored bytes
	}
	// On burst memory a faster decoder shortens the decode-bound refill.
	var prev uint64
	for i, rate := range []int{1, 2, 4, 8} {
		e := RefillEngine{Mem: memory.BurstEPROM{}, Rate: rate}
		got := e.CompressedLineCycles(bitLens, 24)
		if i > 0 && got > prev {
			t.Errorf("rate %d refill %d exceeds slower rate's %d", rate, got, prev)
		}
		prev = got
	}
	// Rate 2 default must equal the explicit value.
	d := RefillEngine{Mem: memory.BurstEPROM{}}
	e := RefillEngine{Mem: memory.BurstEPROM{}, Rate: 2}
	if d.CompressedLineCycles(bitLens, 24) != e.CompressedLineCycles(bitLens, 24) {
		t.Error("default rate differs from explicit 2")
	}
	// A rate-1 decoder needs at least 32 cycles for 32 bytes.
	one := RefillEngine{Mem: memory.BurstEPROM{}, Rate: 1}
	if got := one.CompressedLineCycles(bitLens, 24); got < 32 {
		t.Errorf("rate-1 refill = %d, want >= 32", got)
	}
}

func TestAssociativityHelpsConflictHeavyTrace(t *testing.T) {
	text := riscLikeText(8192, 77)
	code := testCode(t, text)
	// Ping-pong between two conflicting regions.
	tr := &trace.Trace{}
	for i := 0; i < 2000; i++ {
		tr.Events = append(tr.Events,
			trace.Event{PC: uint32(i%8) * 4},
			trace.Event{PC: 4096 + uint32(i%8)*4})
	}
	dm, err := Compare(tr, text, Config{CacheBytes: 1024, Mem: memory.EPROM{}, Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	tw, err := Compare(tr, text, Config{CacheBytes: 1024, CacheWays: 2, Mem: memory.EPROM{}, Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	if tw.Standard.Misses >= dm.Standard.Misses {
		t.Errorf("2-way misses %d not below direct-mapped %d", tw.Standard.Misses, dm.Standard.Misses)
	}
}

func TestCLBProbePolicy(t *testing.T) {
	text := riscLikeText(8192, 88)
	code := testCode(t, text)
	// Alternate between two regions so a tiny CLB is recency-sensitive.
	tr := &trace.Trace{}
	for i := 0; i < 3000; i++ {
		tr.Events = append(tr.Events,
			trace.Event{PC: uint32(i%64) * 4},      // group 0
			trace.Event{PC: 4096 + uint32(i%64)*4}, // far group
			trace.Event{PC: uint32(i%64)*4 + 256},  // group 1
		)
	}
	base := Config{CacheBytes: 256, CLBEntries: 2, Mem: memory.EPROM{}, Codes: []*huffman.Code{code}}
	onMiss, err := Compare(tr, text, base)
	if err != nil {
		t.Fatal(err)
	}
	every := base
	every.CLBProbeEveryFetch = true
	onFetch, err := Compare(tr, text, every)
	if err != nil {
		t.Fatal(err)
	}
	// Identical cache behaviour; only CLB state policy differs.
	if onMiss.CCRP.Misses != onFetch.CCRP.Misses {
		t.Fatal("cache misses changed with CLB policy")
	}
	if onFetch.CCRP.CLBMisses > onMiss.CCRP.CLBMisses {
		t.Errorf("probe-every-fetch worsened CLB misses: %d > %d",
			onFetch.CCRP.CLBMisses, onMiss.CCRP.CLBMisses)
	}
}

// A minimal codec that doubles as a test of the LineCodec plug point:
// XOR with a constant plus a 2-byte header (so it always "compresses" to
// 30 bytes when the line has at least 4 trailing zero... actually it
// stores 24 bytes by dropping the last 8 if they are zero).
type testCodec struct{}

func (testCodec) Name() string { return "test" }
func (testCodec) EncodedBits(line []byte) (int, error) {
	n := len(line)
	for n > 0 && line[n-1] == 0 {
		n--
	}
	return (n + 1) * 8, nil
}
func (testCodec) EncodeLine(line []byte) ([]byte, error) {
	n := len(line)
	for n > 0 && line[n-1] == 0 {
		n--
	}
	out := append([]byte{byte(n)}, line[:n]...)
	return out, nil
}
func (testCodec) DecodeLine(comp []byte, n int) ([]byte, error) {
	if len(comp) == 0 {
		return nil, errors.New("empty")
	}
	k := int(comp[0])
	if k+1 > len(comp) || k > n {
		return nil, errors.New("corrupt")
	}
	out := make([]byte, n)
	copy(out, comp[1:1+k])
	return out, nil
}
func (testCodec) BitLengths(line []byte) ([]int, error) {
	lens := make([]int, len(line))
	n := len(line)
	for n > 0 && line[n-1] == 0 {
		n--
	}
	for i := 0; i < n; i++ {
		lens[i] = 8
	}
	if n < len(line) {
		lens[n] = 8 // the header byte, charged to the first zero
	} else if n > 0 {
		lens[0] += 8
	}
	return lens, nil
}

func TestCodecPlugPoint(t *testing.T) {
	// Lines with zero tails compress under the test codec; others go raw.
	text := make([]byte, 256)
	for i := 0; i < 64; i++ {
		text[i] = byte(i + 1) // line 0-1: dense, but still has... fill all
	}
	for i := 64; i < 96; i++ {
		text[i] = byte(i) // line 2 dense
	}
	// lines 3..7 left zero -> compress very well
	rom, err := BuildROM(text, Options{Codec: testCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
	if rom.Ratio() >= 1 {
		t.Errorf("codec image did not compress: %.3f", rom.Ratio())
	}
	// Codec images must refuse serialization.
	var buf bytes.Buffer
	if err := rom.WriteFile(&buf); err == nil {
		t.Error("codec ROM serialized")
	}
	// And must run through the system simulator.
	tr := &trace.Trace{}
	for i := 0; i < 1000; i++ {
		tr.Events = append(tr.Events, trace.Event{PC: uint32(i%64) * 4})
	}
	cmp, err := Compare(tr, text, Config{CacheBytes: 256, Mem: memory.EPROM{}, Codec: testCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CCRP.Cycles == 0 {
		t.Error("codec comparison produced no cycles")
	}
}
