// Package core implements the Compressed Code RISC Processor (CCRP) of
// Wolfe & Chanin (MICRO 1992): the host-side ROM compression tool, the
// cycle-level code-expanding cache refill engine, and the trace-driven
// system simulator that compares a standard R2000-style processor with a
// CCRP built around the same core.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
	"ccrp/internal/lat"
)

// LineSize is the instruction cache line / compression block size.
const LineSize = lat.LineSize

// Options configures ROM compression.
type Options struct {
	// Codes are the candidate Huffman codes. With one code this is the
	// paper's base scheme (typically the Preselected Bounded Huffman
	// code); with several, each block picks its smallest encoding and a
	// per-block tag selects the code at refill time (§2.2's multi-code
	// extension). Raw storage is always available as the bypass case.
	Codes []*huffman.Code
	// Codec, when set, replaces Codes with an alternative per-line
	// compression scheme (e.g. the CodePack-style coder); raw bypass and
	// LAT handling are unchanged. Codec images cannot be serialized with
	// WriteFile (their tables live in the codec, not the ROM format).
	Codec LineCodec
	// WordAligned rounds each stored block up to a 4-byte boundary,
	// simplifying the fetch hardware at a small compression cost
	// (Figure 1's fully-aligned layout; byte-aligned is the default).
	WordAligned bool
	// Decoder selects the software decode implementation used when
	// expanding stored blocks (DecompressLine, Verify). The zero value
	// is DecoderMulti — the multi-symbol table-driven path.
	Decoder DecoderKind
}

// DecoderKind selects between the software decode implementations, all
// proven byte-identical by differential tests.
type DecoderKind int

const (
	// DecoderMulti decodes through huffman.MultiDecoder's multi-symbol
	// tables with word-at-a-time bit refill — the fastest path and the
	// default.
	DecoderMulti DecoderKind = iota
	// DecoderFast decodes through huffman.FastDecoder's one-symbol
	// chunked lookup tables — the software twin of the paper's §3.4
	// mapping ROM.
	DecoderFast
	// DecoderCanonical decodes bit-serially through the canonical
	// tables — the software twin of the paper's FSM/shift-register option.
	DecoderCanonical
)

// decoderNames maps each DecoderKind to its flag spelling; ParseDecoder
// and flag help enumerate it so the valid set lives in one place.
var decoderNames = [...]string{
	DecoderMulti:     "multi",
	DecoderFast:      "fast",
	DecoderCanonical: "canonical",
}

// DecoderChoices returns the valid -decoder flag values, default first.
func DecoderChoices() []string {
	out := make([]string, len(decoderNames))
	copy(out, decoderNames[:])
	return out
}

// String returns the flag spelling of k.
func (k DecoderKind) String() string {
	if k >= 0 && int(k) < len(decoderNames) {
		return decoderNames[k]
	}
	return "multi"
}

// ParseDecoder maps a flag value to a DecoderKind; the empty string
// selects the default. Unknown names are rejected with the valid set in
// the error.
func ParseDecoder(s string) (DecoderKind, error) {
	if s == "" {
		return DecoderMulti, nil
	}
	for k, name := range decoderNames {
		if s == name {
			return DecoderKind(k), nil
		}
	}
	return 0, fmt.Errorf("core: unknown decoder %q (want %s)", s, strings.Join(decoderNames[:], ", "))
}

// decodeLine expands stored into out using the code and configured
// decoder kind; the single switch point between the software paths.
func decodeLine(code *huffman.Code, kind DecoderKind, stored []byte, out []byte) error {
	switch kind {
	case DecoderCanonical:
		return code.Decode(bitio.NewReader(stored), out)
	case DecoderFast:
		return code.Fast().DecodeInto(out, stored)
	default:
		return code.Multi().DecodeInto(out, stored)
	}
}

// Line is one compressed (or raw) instruction block.
type Line struct {
	Orig    []byte // the 32 original instruction bytes
	Stored  []byte // bytes as stored in instruction memory
	Raw     bool   // stored uncompressed (decoder bypass)
	CodeIdx int    // index into Options.Codes, -1 when raw
}

// ROM is a compressed program image: the packed blocks followed by the
// Line Address Table, as laid out in embedded instruction memory.
type ROM struct {
	Lines        []Line
	Table        *lat.Table
	Blocks       []byte // packed block region (starts at address 0)
	OriginalSize int    // padded text size
	opts         Options
}

// ErrNoCodes is returned when Options.Codes is empty.
var ErrNoCodes = errors.New("core: at least one Huffman code is required")

// BuildROM compresses an R2000 text image line by line.
func BuildROM(text []byte, opts Options) (*ROM, error) {
	if len(opts.Codes) == 0 && opts.Codec == nil {
		return nil, ErrNoCodes
	}
	padded := make([]byte, (len(text)+LineSize-1)/LineSize*LineSize)
	copy(padded, text)

	rom := &ROM{OriginalSize: len(padded), opts: opts}
	var blockLens []int
	for off := 0; off < len(padded); off += LineSize {
		orig := padded[off : off+LineSize]
		line, err := compressLine(orig, opts)
		if err != nil {
			return nil, fmt.Errorf("core: line at %#x: %w", off, err)
		}
		rom.Lines = append(rom.Lines, line)
		rom.Blocks = append(rom.Blocks, line.Stored...)
		blockLens = append(blockLens, len(line.Stored))
	}
	table, err := lat.Build(blockLens, 0)
	if err != nil {
		return nil, err
	}
	rom.Table = table
	return rom, nil
}

// compressLine encodes one block with every candidate code and keeps the
// smallest result, falling back to raw storage when nothing shrinks it
// below the line size.
func compressLine(orig []byte, opts Options) (Line, error) {
	best := Line{Orig: orig, Stored: orig, Raw: true, CodeIdx: -1}
	if opts.Codec != nil {
		bits, err := opts.Codec.EncodedBits(orig)
		if err != nil {
			return Line{}, err
		}
		n := (bits + 7) / 8
		if opts.WordAligned {
			n = (n + 3) / 4 * 4
		}
		if n >= LineSize {
			return best, nil
		}
		enc, err := opts.Codec.EncodeLine(orig)
		if err != nil {
			return Line{}, err
		}
		stored := make([]byte, n)
		copy(stored, enc)
		return Line{Orig: orig, Stored: stored, Raw: false, CodeIdx: 0}, nil
	}
	for ci, code := range opts.Codes {
		bits, err := code.EncodedBits(orig)
		if err != nil {
			continue // code cannot represent some byte; try others or raw
		}
		n := (bits + 7) / 8
		if opts.WordAligned {
			n = (n + 3) / 4 * 4
		}
		if n >= LineSize || n >= len(best.Stored) && !best.Raw {
			continue
		}
		enc, err := code.EncodeToBytes(orig)
		if err != nil {
			return Line{}, err
		}
		stored := make([]byte, n)
		copy(stored, enc)
		best = Line{Orig: orig, Stored: stored, Raw: false, CodeIdx: ci}
	}
	return best, nil
}

// BlocksSize returns the packed compressed block bytes.
func (r *ROM) BlocksSize() int { return len(r.Blocks) }

// TableSize returns the LAT storage in bytes.
func (r *ROM) TableSize() int { return r.Table.Size() }

// TagBits returns the per-image cost in bits of the per-block code-select
// tags; zero for a single code (the raw flag lives in the LAT for free).
func (r *ROM) TagBits() int {
	if len(r.opts.Codes) <= 1 {
		return 0
	}
	bits := 1
	for 1<<bits < len(r.opts.Codes) {
		bits++
	}
	return bits * len(r.Lines)
}

// CompressedSize returns the total instruction memory footprint: blocks,
// LAT, and code-select tags. Code tables are accounted separately by the
// caller because preselected codes are hardwired and cost nothing.
func (r *ROM) CompressedSize() int {
	return r.BlocksSize() + r.TableSize() + (r.TagBits()+7)/8
}

// Ratio returns CompressedSize / OriginalSize.
func (r *ROM) Ratio() float64 {
	if r.OriginalSize == 0 {
		return 1
	}
	return float64(r.CompressedSize()) / float64(r.OriginalSize)
}

// LineIndex returns the block index holding program address addr.
func (r *ROM) LineIndex(addr uint32) (int, error) {
	i := int(addr / LineSize)
	if i >= len(r.Lines) {
		return 0, fmt.Errorf("core: address %#x outside program (%d lines)", addr, len(r.Lines))
	}
	return i, nil
}

// DecompressLine expands block i back to its 32 instruction bytes, the
// software twin of the refill engine's data path.
func (r *ROM) DecompressLine(i int) ([]byte, error) {
	out := make([]byte, LineSize)
	if err := r.DecompressLineInto(i, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressLineInto expands block i into dst, which must be exactly
// LineSize bytes. This is the zero-allocation form of DecompressLine:
// hot callers (the serving decompress path, Verify, page expansion) own
// the buffer, so nothing on the decode path touches the heap.
func (r *ROM) DecompressLineInto(i int, dst []byte) error {
	if i < 0 || i >= len(r.Lines) {
		return fmt.Errorf("core: line %d out of range", i)
	}
	if len(dst) != LineSize {
		return fmt.Errorf("core: line buffer is %d bytes, want %d", len(dst), LineSize)
	}
	l := r.Lines[i]
	if l.Raw {
		n := copy(dst, l.Stored)
		for j := n; j < LineSize; j++ {
			dst[j] = 0
		}
		return nil
	}
	if r.opts.Codec != nil {
		if d, ok := r.opts.Codec.(LineIntoDecoder); ok {
			if err := d.DecodeLineInto(dst, l.Stored); err != nil {
				return fmt.Errorf("core: line %d: %w", i, err)
			}
			return nil
		}
		out, err := r.opts.Codec.DecodeLine(l.Stored, LineSize)
		if err != nil {
			return fmt.Errorf("core: line %d: %w", i, err)
		}
		copy(dst, out)
		return nil
	}
	code := r.opts.Codes[l.CodeIdx]
	if err := decodeLine(code, r.opts.Decoder, l.Stored, dst); err != nil {
		return fmt.Errorf("core: line %d: %w", i, err)
	}
	return nil
}

// Verify decompresses every block and checks it against the original
// text, proving the image executes identically. It reuses one line
// buffer, so verification itself stays off the allocator's hot path
// (sweeps verify inside already-parallel workers).
func (r *ROM) Verify() error {
	buf := make([]byte, LineSize)
	for i := range r.Lines {
		if err := r.DecompressLineInto(i, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, r.Lines[i].Orig) {
			return fmt.Errorf("core: line %d decompresses incorrectly", i)
		}
	}
	return nil
}

// bitLengths returns the per-output-byte encoded bit counts for block i,
// which drive the refill engine's streaming model. Raw blocks return nil.
func (r *ROM) bitLengths(i int) []int {
	l := r.Lines[i]
	if l.Raw {
		return nil
	}
	if r.opts.Codec != nil {
		lens, err := r.opts.Codec.BitLengths(l.Orig)
		if err != nil {
			return nil
		}
		return lens
	}
	code := r.opts.Codes[l.CodeIdx]
	lens := make([]int, len(l.Orig))
	for k, b := range l.Orig {
		lens[k] = code.Len(b)
	}
	return lens
}

// RawLines counts blocks stored uncompressed.
func (r *ROM) RawLines() int {
	n := 0
	for _, l := range r.Lines {
		if l.Raw {
			n++
		}
	}
	return n
}
