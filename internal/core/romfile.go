package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ccrp/internal/bitio"
	"ccrp/internal/huffman"
	"ccrp/internal/lat"
	"ccrp/internal/parallel"
)

// ROM image file format, the artifact the host-side compression tool
// (cmd/ccpack) hands to the embedded system: the packed compressed blocks
// followed by the Line Address Table, plus the header a loader needs and
// the code tables for non-hardwired codes.

const (
	romMagic   = 0x43524F4D // "CROM"
	romVersion = 1
)

// ErrBadROMFile is returned when parsing a malformed ROM file.
var ErrBadROMFile = errors.New("core: malformed ROM file")

// WriteFile serializes the ROM image. Images built with a custom Codec
// are not serializable: their decode tables live in the codec.
func (r *ROM) WriteFile(w io.Writer) error {
	if r.opts.Codec != nil {
		return fmt.Errorf("core: cannot serialize a ROM built with codec %q", r.opts.Codec.Name())
	}
	latBytes := r.Table.Bytes()
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], romMagic)
	binary.LittleEndian.PutUint32(hdr[4:], romVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(r.OriginalSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(r.Blocks)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(latBytes)))
	flags := uint32(len(r.opts.Codes))
	if r.opts.WordAligned {
		flags |= 1 << 16
	}
	binary.LittleEndian.PutUint32(hdr[20:], flags)
	// Per-line code tags (omitted for a single code).
	var tagBytes []byte
	if len(r.opts.Codes) > 1 {
		var tw bitio.Writer
		width := uint(1)
		for 1<<width < len(r.opts.Codes) {
			width++
		}
		for _, l := range r.Lines {
			idx := l.CodeIdx
			if idx < 0 {
				idx = 0 // raw lines are flagged in the LAT; tag unused
			}
			tw.WriteBits(uint64(idx), width)
		}
		tagBytes = tw.Bytes()
	}
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(tagBytes)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, code := range r.opts.Codes {
		blob, err := code.MarshalBinary()
		if err != nil {
			return err
		}
		var sz [4]byte
		binary.LittleEndian.PutUint32(sz[:], uint32(len(blob)))
		if _, err := w.Write(sz[:]); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	if _, err := w.Write(tagBytes); err != nil {
		return err
	}
	if _, err := w.Write(r.Blocks); err != nil {
		return err
	}
	_, err := w.Write(latBytes)
	return err
}

// ReadROMFile reconstructs a ROM image, decompressing every block to
// recover the original line contents (and thereby verifying the file).
// Blocks expand through the multi-symbol table-driven decoder; use
// ReadROMFileDecoder to select another path.
func ReadROMFile(rd io.Reader) (*ROM, error) {
	return ReadROMFileDecoder(rd, DecoderMulti)
}

// ReadROMFileDecoder is ReadROMFile with an explicit decode path — the
// hook ccdis -rom uses so the CI equivalence smoke can cmp the two
// decoders' output on a real compressed image.
func ReadROMFileDecoder(rd io.Reader, kind DecoderKind) (*ROM, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadROMFile, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != romMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadROMFile)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != romVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadROMFile, v)
	}
	origSize := int(binary.LittleEndian.Uint32(hdr[8:]))
	blockLen := int(binary.LittleEndian.Uint32(hdr[12:]))
	latLen := int(binary.LittleEndian.Uint32(hdr[16:]))
	flags := binary.LittleEndian.Uint32(hdr[20:])
	tagLen := int(binary.LittleEndian.Uint32(hdr[24:]))
	nCodes := int(flags & 0xFFFF)
	if nCodes < 1 || nCodes > 16 || origSize > 1<<26 || blockLen > 1<<26 || latLen > 1<<26 {
		return nil, fmt.Errorf("%w: implausible header", ErrBadROMFile)
	}
	opts := Options{WordAligned: flags&(1<<16) != 0, Decoder: kind}
	for i := 0; i < nCodes; i++ {
		var sz [4]byte
		if _, err := io.ReadFull(rd, sz[:]); err != nil {
			return nil, fmt.Errorf("%w: code table %d: %v", ErrBadROMFile, i, err)
		}
		blob := make([]byte, binary.LittleEndian.Uint32(sz[:]))
		if _, err := io.ReadFull(rd, blob); err != nil {
			return nil, fmt.Errorf("%w: code table %d: %v", ErrBadROMFile, i, err)
		}
		code, err := huffman.UnmarshalCode(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: code table %d: %v", ErrBadROMFile, i, err)
		}
		opts.Codes = append(opts.Codes, code)
	}
	tags := make([]byte, tagLen)
	if _, err := io.ReadFull(rd, tags); err != nil {
		return nil, fmt.Errorf("%w: tags: %v", ErrBadROMFile, err)
	}
	blocks := make([]byte, blockLen)
	if _, err := io.ReadFull(rd, blocks); err != nil {
		return nil, fmt.Errorf("%w: blocks: %v", ErrBadROMFile, err)
	}
	latBytes := make([]byte, latLen)
	if _, err := io.ReadFull(rd, latBytes); err != nil {
		return nil, fmt.Errorf("%w: LAT: %v", ErrBadROMFile, err)
	}
	table, err := lat.Parse(latBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadROMFile, err)
	}
	table.Blocks = origSize / LineSize

	rom := &ROM{Table: table, Blocks: blocks, OriginalSize: origSize, opts: opts}
	tagReader := bitio.NewReader(tags)
	tagWidth := uint(1)
	for 1<<tagWidth < nCodes {
		tagWidth++
	}
	for i := 0; i < table.Blocks; i++ {
		addr, length, raw, err := table.Lookup(uint32(i * LineSize))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadROMFile, err)
		}
		if int(addr)+length > len(blocks) {
			return nil, fmt.Errorf("%w: block %d outside block region", ErrBadROMFile, i)
		}
		stored := blocks[addr : int(addr)+length]
		line := Line{Stored: stored, Raw: raw, CodeIdx: -1}
		if nCodes > 1 {
			idx, err := tagReader.ReadBits(tagWidth)
			if err != nil {
				return nil, fmt.Errorf("%w: tag %d: %v", ErrBadROMFile, i, err)
			}
			if !raw {
				line.CodeIdx = int(idx)
			}
		} else if !raw {
			line.CodeIdx = 0
		}
		if line.CodeIdx >= nCodes {
			return nil, fmt.Errorf("%w: block %d selects code %d of %d", ErrBadROMFile, i, line.CodeIdx, nCodes)
		}
		rom.Lines = append(rom.Lines, line)
	}
	// Expand every block into one contiguous text image, fanning the
	// independent lines across CPUs; each Orig aliases its slice of the
	// image, so loading a large ROM costs one allocation for the text
	// plus the line headers.
	text := make([]byte, table.Blocks*LineSize)
	err = parallel.ForEach(context.Background(), table.Blocks, 0, func(i int) error {
		return rom.DecompressLineInto(i, text[i*LineSize:(i+1)*LineSize])
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadROMFile, err)
	}
	for i := range rom.Lines {
		rom.Lines[i].Orig = text[i*LineSize : (i+1)*LineSize]
	}
	return rom, nil
}

// Text reassembles the original program text from the (decompressed)
// lines.
func (r *ROM) Text() []byte {
	var buf bytes.Buffer
	buf.Grow(r.OriginalSize)
	for i := range r.Lines {
		buf.Write(r.Lines[i].Orig)
	}
	return buf.Bytes()
}
