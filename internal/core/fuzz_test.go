package core

import (
	"bytes"
	"testing"

	"ccrp/internal/huffman"
)

// FuzzReadROMFile hardens the ROM file parser: arbitrary bytes must never
// panic, and every accepted file must verify and re-serialize.
func FuzzReadROMFile(f *testing.F) {
	// Seed with real ROM files of each flavor.
	text := riscLikeText(512, 31)
	var h huffman.Histogram
	h.Add(text)
	code, err := huffman.BuildBounded(h.Smooth(), 16)
	if err != nil {
		f.Fatal(err)
	}
	single, err := BuildROM(text, Options{Codes: []*huffman.Code{code}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := single.WriteFile(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:16])
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[40] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		rom, err := ReadROMFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rom.Verify(); err != nil {
			t.Fatalf("accepted ROM fails Verify: %v", err)
		}
		var out bytes.Buffer
		if err := rom.WriteFile(&out); err != nil {
			t.Fatalf("accepted ROM fails re-serialization: %v", err)
		}
	})
}
