package core

import (
	"bytes"
	"reflect"
	"testing"

	"ccrp/internal/huffman"
	"ccrp/internal/memory"
	"ccrp/internal/metrics"
	"ccrp/internal/trace"
)

// TestTraceSaveLoadCycleIdentical is the ccsim -savetrace/-trace
// contract: a trace serialized to disk and read back must drive Compare
// to the exact same Comparison as the live trace — same cycles, misses,
// and traffic, bit for bit.
func TestTraceSaveLoadCycleIdentical(t *testing.T) {
	text := riscLikeText(8192, 7)
	cfg := Config{
		CacheBytes: 512,
		Mem:        memory.BurstEPROM{},
		Codes:      []*huffman.Code{testCode(t, text)},
	}
	live := syntheticTrace(len(text), 4096, 50)

	var buf bytes.Buffer
	n, err := live.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stalls != live.Stalls || len(loaded.Events) != len(live.Events) {
		t.Fatalf("trace shape changed: %d events/%d stalls vs %d/%d",
			len(loaded.Events), loaded.Stalls, len(live.Events), live.Stalls)
	}

	want, err := Compare(live, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compare(loaded, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Standard, got.Standard) {
		t.Errorf("standard stats diverge:\nlive   %+v\nloaded %+v", want.Standard, got.Standard)
	}
	if !reflect.DeepEqual(want.CCRP, got.CCRP) {
		t.Errorf("CCRP stats diverge:\nlive   %+v\nloaded %+v", want.CCRP, got.CCRP)
	}
}

// countSink counts events without retaining them.
type countSink struct{ n int }

func (s *countSink) Emit(metrics.Event) { s.n++ }
func (s *countSink) Close() error       { return nil }

// TestInstrumentationDoesNotPerturb: attaching the metrics registry and
// an event sink must not change a single cycle of the Comparison, and
// the instruments must agree with the Stats the model already reports.
func TestInstrumentationDoesNotPerturb(t *testing.T) {
	text := riscLikeText(8192, 7)
	tr := syntheticTrace(len(text), 4096, 50)
	cfg := Config{
		CacheBytes: 512,
		Mem:        memory.BurstEPROM{},
		Codes:      []*huffman.Code{testCode(t, text)},
	}
	plain, err := Compare(tr, text, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	sink := &countSink{}
	cfg.Metrics, cfg.Events = reg, sink
	instr, err := Compare(tr, text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Standard, instr.Standard) || !reflect.DeepEqual(plain.CCRP, instr.CCRP) {
		t.Error("instrumented run produced different stats than the plain run")
	}
	if sink.n == 0 {
		t.Error("event sink saw no events")
	}

	if got := reg.Counter("ccrp_cache_accesses_total", "").Value(); got != instr.Standard.Accesses {
		t.Errorf("cache accesses counter = %d, want %d", got, instr.Standard.Accesses)
	}
	hits := reg.Counter("ccrp_cache_hits_total", "").Value()
	if got := instr.Standard.Accesses - hits; got != instr.Standard.Misses {
		t.Errorf("accesses-hits = %d, want %d misses", got, instr.Standard.Misses)
	}
	if got := reg.Counter("ccrp_clb_misses_total", "").Value(); got != instr.CCRP.CLBMisses {
		t.Errorf("CLB miss counter = %d, want %d", got, instr.CCRP.CLBMisses)
	}
	if got := reg.Histogram("ccrp_refill_cycles", "", nil).Count(); got != instr.CCRP.Misses {
		t.Errorf("refill histogram count = %d, want one observation per miss (%d)",
			got, instr.CCRP.Misses)
	}
}
