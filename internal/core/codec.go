package core

import (
	"ccrp/internal/huffman"
)

// LineCodec abstracts the per-line compression scheme so the same ROM
// builder, refill engine, and system simulator can run the paper's
// byte-Huffman scheme or any successor (e.g. the CodePack-style coder in
// internal/codepack). Raw-block bypass and LAT handling stay in core.
type LineCodec interface {
	// Name identifies the codec in reports.
	Name() string
	// EncodeLine compresses one cache line.
	EncodeLine(line []byte) ([]byte, error)
	// DecodeLine expands a compressed line back to n bytes.
	DecodeLine(comp []byte, n int) ([]byte, error)
	// EncodedBits returns the exact compressed size of line in bits.
	EncodedBits(line []byte) (int, error)
	// BitLengths attributes encoded bits to output bytes for the
	// streaming refill model.
	BitLengths(line []byte) ([]int, error)
}

// LineIntoDecoder is the optional zero-allocation extension of
// LineCodec: codecs that can expand a compressed line into a
// caller-supplied buffer implement it, and hot paths
// (ROM.DecompressLineInto, the serving decompress loop) type-assert for
// it, falling back to DecodeLine plus a copy. It is a separate interface
// so third-party LineCodec implementations keep compiling unchanged.
type LineIntoDecoder interface {
	// DecodeLineInto expands a compressed line into dst (len(dst) bytes)
	// without allocating.
	DecodeLineInto(dst, comp []byte) error
}

// huffmanLineCodec adapts a byte-Huffman code to the LineCodec interface.
type huffmanLineCodec struct {
	code *huffman.Code
}

// NewHuffmanCodec wraps a byte-oriented Huffman code as a LineCodec.
func NewHuffmanCodec(code *huffman.Code) LineCodec {
	return &huffmanLineCodec{code: code}
}

func (h *huffmanLineCodec) Name() string { return "byte-huffman" }

func (h *huffmanLineCodec) EncodeLine(line []byte) ([]byte, error) {
	return h.code.EncodeToBytes(line)
}

func (h *huffmanLineCodec) DecodeLine(comp []byte, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := h.code.Multi().DecodeInto(out, comp); err != nil {
		return nil, err
	}
	return out, nil
}

func (h *huffmanLineCodec) DecodeLineInto(dst, comp []byte) error {
	return h.code.Multi().DecodeInto(dst, comp)
}

func (h *huffmanLineCodec) EncodedBits(line []byte) (int, error) {
	return h.code.EncodedBits(line)
}

func (h *huffmanLineCodec) BitLengths(line []byte) ([]int, error) {
	lens := make([]int, len(line))
	for i, b := range line {
		l := h.code.Len(b)
		if l == 0 {
			return nil, huffman.ErrNoCodeword
		}
		lens[i] = l
	}
	return lens, nil
}
