package core

import (
	"bytes"
	"testing"

	"ccrp/internal/huffman"
)

func TestROMFileRoundTrip(t *testing.T) {
	text := riscLikeText(4096, 21)
	code := testCode(t, text)
	rom, err := BuildROM(text, Options{Codes: []*huffman.Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rom.WriteFile(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadROMFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OriginalSize != rom.OriginalSize || len(got.Lines) != len(rom.Lines) {
		t.Fatalf("geometry changed: %d/%d vs %d/%d",
			got.OriginalSize, len(got.Lines), rom.OriginalSize, len(rom.Lines))
	}
	if !bytes.Equal(got.Text(), rom.Text()) {
		t.Fatal("text changed through ROM file round trip")
	}
	if !bytes.Equal(got.Text()[:len(text)], text) {
		t.Fatal("reconstructed text differs from the original program")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestROMFileMultiCodeRoundTrip(t *testing.T) {
	a := riscLikeText(1024, 22)
	b := bytes.Repeat([]byte{0x12, 0x34, 0x56, 0x78}, 256)
	text := append(append([]byte{}, a...), b...)
	rom, err := BuildROM(text, Options{
		Codes:       []*huffman.Code{testCode(t, a), testCode(t, b)},
		WordAligned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rom.WriteFile(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadROMFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text()[:len(text)], text) {
		t.Fatal("multi-code round trip corrupted text")
	}
	for i := range got.Lines {
		if got.Lines[i].Raw != rom.Lines[i].Raw || got.Lines[i].CodeIdx != rom.Lines[i].CodeIdx {
			t.Fatalf("line %d metadata changed: %+v vs %+v", i, got.Lines[i], rom.Lines[i])
		}
	}
}

func TestReadROMFileRejectsGarbage(t *testing.T) {
	if _, err := ReadROMFile(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := ReadROMFile(bytes.NewReader(make([]byte, 28))); err == nil {
		t.Error("zero header accepted")
	}
	// Valid ROM truncated mid-blocks.
	text := riscLikeText(512, 23)
	rom, err := BuildROM(text, Options{Codes: []*huffman.Code{testCode(t, text)}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rom.WriteFile(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadROMFile(bytes.NewReader(buf.Bytes()[:buf.Len()-10])); err == nil {
		t.Error("truncated ROM accepted")
	}
}
