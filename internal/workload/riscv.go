package workload

import (
	"fmt"
	"strings"

	_ "ccrp/internal/riscv" // register the rv32 backend
)

// The RISC-V corpus: RV32I+M ports of representative workloads, kept in
// a separate registry from the R2000 set (the paper's corpus stays
// untouched). Their purpose is the CCRP-vs-RVC comparison: the same
// block-bounded Huffman sweep runs over this text, and the rvc
// experiment holds the resulting ratios against the native 16-bit "C"
// encoding of the identical programs.

var rvRegistry = []*Workload{
	{
		Name:        "rv-matrix",
		ISA:         "rv32",
		WantOutput:  "567848\n",
		Description: "20x20 integer matrix multiply (RV32IM)",
		buildSrc: func() string {
			return rvWrapMain(rvMatrixText, rvMatrixData,
				rvSynthFunctions("rvm", 40, 100, 0x2A, 4))
		},
	},
	{
		Name:        "rv-sieve",
		ISA:         "rv32",
		WantOutput:  "550 3989\n",
		Description: "prime sieve and divisor-sum loop (RV32IM)",
		buildSrc: func() string {
			return rvWrapMain(rvSieveText, rvSieveData,
				rvSynthFunctions("rvs", 30, 110, 0x5E, 4))
		},
	},
	{
		Name:        "rv-dispatch",
		ISA:         "rv32",
		WantOutput:  "719400\n",
		Description: "table-dispatched interpreter flavor (RV32IM, jalr heavy)",
		buildSrc: func() string {
			hot := rvSynthFunctions("rvd", 24, 40, 0xD1, 0)
			return rvWrapMain(rvDispatchText+hot,
				rvSynthDispatchTable("rvd_table", "rvd", 24),
				rvSynthFunctions("rvdc", 30, 100, 0xD2, 4))
		},
	},
}

// RISCV returns the RV32 corpus in presentation order.
func RISCV() []*Workload { return rvRegistry }

// RISCVByName finds an RV32 workload.
func RISCVByName(name string) (*Workload, bool) {
	for _, w := range rvRegistry {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// rvWrapMain composes a complete RV32 program: entry stub, core text
// (defining main), runtime, cold padding, and the data sections.
func rvWrapMain(coreText, coreData, padText string) string {
	return "\t.text\n__start:\n\tcall main\n\tli a7, 10\n\tecall\n" +
		coreText + rvRuntimeText + padText +
		"\n\t.data\n" + coreData + synthScratch
}

// rvRuntimeText mirrors the MIPS runtime's console helpers on the same
// SPIM syscall numbers (a7 = service, a0 = argument).
const rvRuntimeText = `
# --- shared runtime ---

# rv_print_int: print a0 as a signed decimal.
rv_print_int:
	li	a7, 1
	ecall
	ret

# rv_print_intnl: print a0 then a newline.
rv_print_intnl:
	li	a7, 1
	ecall
	li	a0, '\n'
	li	a7, 11
	ecall
	ret

# rv_print_char: print the character in a0.
rv_print_char:
	li	a7, 11
	ecall
	ret
`

const rvMatrixText = `
# main: C = A x B for 20x20 int matrices, then print sum(C).
main:
	addi	sp, sp, -16
	sw	ra, 12(sp)
	# fill A[i] = i%17+1, B[i] = i%13+2
	la	t0, rv_ma
	la	t1, rv_mb
	li	t2, 0
	li	t3, 400
mm_fill:
	li	t4, 17
	rem	t4, t2, t4
	addi	t4, t4, 1
	sw	t4, 0(t0)
	li	t4, 13
	rem	t4, t2, t4
	addi	t4, t4, 2
	sw	t4, 0(t1)
	addi	t0, t0, 4
	addi	t1, t1, 4
	addi	t2, t2, 1
	blt	t2, t3, mm_fill
	# triple loop
	li	s2, 0          # i
	la	s5, rv_mc
mm_i:
	li	s3, 0          # j
mm_j:
	li	s4, 0          # k
	li	s6, 0          # acc
mm_k:
	# acc += A[i*20+k] * B[k*20+j]
	li	t0, 20
	mul	t1, s2, t0
	add	t1, t1, s4
	slli	t1, t1, 2
	la	t2, rv_ma
	add	t2, t2, t1
	lw	t3, 0(t2)
	mul	t1, s4, t0
	add	t1, t1, s3
	slli	t1, t1, 2
	la	t2, rv_mb
	add	t2, t2, t1
	lw	t4, 0(t2)
	mul	t3, t3, t4
	add	s6, s6, t3
	addi	s4, s4, 1
	li	t0, 20
	blt	s4, t0, mm_k
	sw	s6, 0(s5)
	addi	s5, s5, 4
	addi	s3, s3, 1
	li	t0, 20
	blt	s3, t0, mm_j
	addi	s2, s2, 1
	li	t0, 20
	blt	s2, t0, mm_i
	# checksum
	la	t0, rv_mc
	li	t1, 0
	li	t2, 400
	li	a0, 0
mm_sum:
	lw	t3, 0(t0)
	add	a0, a0, t3
	addi	t0, t0, 4
	addi	t1, t1, 1
	blt	t1, t2, mm_sum
	call	rv_print_intnl
	lw	ra, 12(sp)
	addi	sp, sp, 16
	ret
`

const rvMatrixData = `
rv_ma:	.space 1600
rv_mb:	.space 1600
rv_mc:	.space 1600
`

const rvSieveText = `
# main: sieve primes below 4000, print count and largest.
main:
	addi	sp, sp, -16
	sw	ra, 12(sp)
	la	t0, rv_sieve
	li	t1, 0
	li	t2, 4000
sv_clear:
	sb	zero, 0(t0)
	addi	t0, t0, 1
	addi	t1, t1, 1
	blt	t1, t2, sv_clear
	li	s2, 2          # candidate
	li	s3, 0          # count
	li	s4, 0          # largest
sv_outer:
	la	t0, rv_sieve
	add	t0, t0, s2
	lb	t1, 0(t0)
	bnez	t1, sv_next
	addi	s3, s3, 1
	mv	s4, s2
	# mark multiples
	add	t2, s2, s2
sv_mark:
	li	t3, 4000
	bge	t2, t3, sv_next
	la	t0, rv_sieve
	add	t0, t0, t2
	li	t4, 1
	sb	t4, 0(t0)
	add	t2, t2, s2
	j	sv_mark
sv_next:
	addi	s2, s2, 1
	li	t3, 4000
	blt	s2, t3, sv_outer
	mv	a0, s3
	call	rv_print_int
	li	a0, ' '
	call	rv_print_char
	mv	a0, s4
	call	rv_print_intnl
	lw	ra, 12(sp)
	addi	sp, sp, 16
	ret
`

const rvSieveData = `
rv_sieve:	.space 4000
`

const rvDispatchText = `
# main: walk a 24-entry routine table 1200 times, accumulating returns.
main:
	addi	sp, sp, -16
	sw	ra, 12(sp)
	sw	s2, 8(sp)
	sw	s3, 4(sp)
	sw	s4, 0(sp)
	li	s2, 0          # trip count
	li	s3, 1200
	li	s4, 0          # accumulator
dp_loop:
	li	t0, 24
	rem	t0, s2, t0
	slli	t0, t0, 2
	la	t1, rvd_table
	add	t1, t1, t0
	lw	t1, 0(t1)
	mv	a0, s2
	jalr	ra, 0(t1)
	add	s4, s4, a0
	addi	s2, s2, 1
	blt	s2, s3, dp_loop
	mv	a0, s4
	call	rv_print_intnl
	lw	s4, 0(sp)
	lw	s3, 4(sp)
	lw	s2, 8(sp)
	lw	ra, 12(sp)
	addi	sp, sp, 16
	ret
`

// rvSynthFunctions is the RV32 analogue of synthFunctions: n
// compiled-style functions whose call graph is a DAG and whose stores
// stay inside their frames and synth_scratch. The emitted text is
// genuine RV32IM code; it exists to give the RISC-V corpus realistic
// static size and byte histograms for the compression comparison.
func rvSynthFunctions(prefix string, n, bodyOps int, seed uint64, callPct int) string {
	rng := &lcg{s: seed ^ 0x9E3779B97F4A7C15}
	var b strings.Builder
	for i := 0; i < n; i++ {
		emitRVSynthFunc(&b, rng, prefix, i, n, bodyOps, callPct)
	}
	return b.String()
}

func emitRVSynthFunc(b *strings.Builder, rng *lcg, prefix string, i, n, bodyOps, callPct int) {
	name := fmt.Sprintf("%s_fn%d", prefix, i)
	fmt.Fprintf(b, "%s:\n", name)
	b.WriteString("\taddi sp, sp, -16\n")
	b.WriteString("\tsw ra, 12(sp)\n")
	b.WriteString("\tsw s0, 8(sp)\n")
	b.WriteString("\tsw s1, 4(sp)\n")
	b.WriteString("\tla s0, synth_scratch\n")
	b.WriteString("\tmv s1, a0\n")

	temps := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6"}
	label := 0
	pending := -1 // ops until the pending forward label is placed
	var pendingName string
	for op := 0; op < bodyOps; op++ {
		if pending == 0 {
			fmt.Fprintf(b, "%s:\n", pendingName)
			pending = -1
		} else if pending > 0 {
			pending--
		}
		a := temps[rng.intn(len(temps))]
		c := temps[rng.intn(len(temps))]
		d := temps[rng.intn(len(temps))]
		roll := rng.intn(100)
		switch {
		case roll < 14:
			fmt.Fprintf(b, "\tlw %s, %d(s0)\n", a, rng.intn(64)*4)
		case roll < 22:
			fmt.Fprintf(b, "\tsw %s, %d(s0)\n", a, rng.intn(64)*4)
		case roll < 34:
			fmt.Fprintf(b, "\tadd %s, %s, %s\n", a, c, d)
		case roll < 42:
			fmt.Fprintf(b, "\taddi %s, %s, %d\n", a, c, rng.intn(512)-256)
		case roll < 50:
			fmt.Fprintf(b, "\t%s %s, %s, %s\n",
				[]string{"and", "or", "xor", "sub"}[rng.intn(4)], a, c, d)
		case roll < 58:
			fmt.Fprintf(b, "\t%s %s, %s, %d\n",
				[]string{"slli", "srli", "srai"}[rng.intn(3)], a, c, rng.intn(31)+1)
		case roll < 64:
			fmt.Fprintf(b, "\tslt %s, %s, %s\n", a, c, d)
		case roll < 70:
			fmt.Fprintf(b, "\tori %s, %s, 0x%x\n", a, c, rng.next()&0xFF)
		case roll < 78 && pending < 0 && op+4 < bodyOps:
			pendingName = fmt.Sprintf("%s_L%d", name, label)
			label++
			br := []string{"beq", "bne"}[rng.intn(2)]
			fmt.Fprintf(b, "\t%s %s, %s, %s\n", br, a, c, pendingName)
			pending = 2 + rng.intn(3)
		case roll < 78+callPct && i+1 < n:
			callee := i + 1 + rng.intn(n-i-1)
			fmt.Fprintf(b, "\tcall %s_fn%d\n", prefix, callee)
		default:
			fmt.Fprintf(b, "\tlui %s, 0x%x\n", a, rng.intn(1024)+1)
		}
	}
	if pending >= 0 {
		fmt.Fprintf(b, "%s:\n", pendingName)
	}
	b.WriteString("\tmv a0, s1\n")
	b.WriteString("\tlw ra, 12(sp)\n")
	b.WriteString("\tlw s0, 8(sp)\n")
	b.WriteString("\tlw s1, 4(sp)\n")
	b.WriteString("\taddi sp, sp, 16\n")
	b.WriteString("\tret\n")
}

// rvSynthDispatchTable emits a .data table of the n synthesized function
// addresses for jalr dispatch.
func rvSynthDispatchTable(label, prefix string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word %s_fn%d\n", prefix, i)
	}
	return b.String()
}
