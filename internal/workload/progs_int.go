package workload

// Integer workload cores. Each core defines main and is composed with the
// shared runtime and cold synthesized padding by wrapMain; the padding
// brings static code size in line with the binaries the paper measured
// while the hand-written core determines the dynamic locality.

// eightq: the classic 8-queens solution counter, in the array-based
// Wirth formulation a 1990 C compiler would emit (free-column and
// diagonal occupancy arrays, a board array, and a per-solution checksum
// walk), giving the ~400-byte recursive working set the paper's eightq
// shows (misses at 256 bytes, fits at 512).
// Paper static size: 4,020 bytes.
const eightqText = `
	.equ EQN, 8
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	# all columns and diagonals start free
	la $t0, eq_colfree
	la $t1, eq_up
	la $t2, eq_down
	li $t3, 0
	li $t4, 1
eq_init:
	addu $t5, $t1, $t3
	sb $t4, 0($t5)
	addu $t5, $t2, $t3
	sb $t4, 0($t5)
	li $t6, EQN
	bge $t3, $t6, eq_init_skip
	nop
	addu $t5, $t0, $t3
	sb $t4, 0($t5)
eq_init_skip:
	addiu $t3, $t3, 1
	li $t6, 15
	blt $t3, $t6, eq_init
	nop
	li $a0, 0
	jal eq_try
	nop
	la $t0, eq_count
	lw $a0, 0($t0)
	nop
	jal rt_print_int
	nop
	li $a0, ' '
	li $v0, 11
	syscall
	la $t0, eq_sum
	lw $a0, 0($t0)
	nop
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop

# eq_try(row): place a queen in every safe column of this row, recursing.
eq_try:
	addiu $sp, $sp, -16
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	sw $s1, 8($sp)
	move $s0, $a0           # row
	li $s1, 0               # column
eqt_col:
	la $t0, eq_colfree
	addu $t1, $t0, $s1
	lbu $t2, 0($t1)
	nop
	beqz $t2, eqt_next
	nop
	addu $t3, $s0, $s1      # up diagonal index
	la $t0, eq_up
	addu $t4, $t0, $t3
	lbu $t5, 0($t4)
	nop
	beqz $t5, eqt_next
	nop
	subu $t6, $s0, $s1      # down diagonal index
	addiu $t6, $t6, 7
	la $t0, eq_down
	addu $t7, $t0, $t6
	lbu $t5, 0($t7)
	nop
	beqz $t5, eqt_next
	nop
	# place the queen
	sb $zero, 0($t1)
	sb $zero, 0($t4)
	sb $zero, 0($t7)
	la $t0, eq_board
	addu $t2, $t0, $s0
	sb $s1, 0($t2)
	li $t5, EQN-1
	blt $s0, $t5, eqt_recurse
	nop
	# a full solution: count it and checksum the board
	la $t0, eq_count
	lw $t2, 0($t0)
	nop
	addiu $t2, $t2, 1
	sw $t2, 0($t0)
	la $t0, eq_board
	li $t2, 0
	li $t3, 0
eqt_ck:
	addu $t5, $t0, $t2
	lbu $t6, 0($t5)
	sll $t3, $t3, 1
	addu $t3, $t3, $t6
	addiu $t2, $t2, 1
	li $t6, EQN
	blt $t2, $t6, eqt_ck
	nop
	la $t0, eq_sum
	lw $t2, 0($t0)
	nop
	addu $t2, $t2, $t3
	sw $t2, 0($t0)
	b eqt_unplace
	nop
eqt_recurse:
	addiu $a0, $s0, 1
	jal eq_try
	nop
eqt_unplace:
	# recompute addresses (temporaries died across the call)
	la $t0, eq_colfree
	addu $t1, $t0, $s1
	li $t5, 1
	sb $t5, 0($t1)
	addu $t3, $s0, $s1
	la $t0, eq_up
	addu $t4, $t0, $t3
	sb $t5, 0($t4)
	subu $t6, $s0, $s1
	addiu $t6, $t6, 7
	la $t0, eq_down
	addu $t7, $t0, $t6
	sb $t5, 0($t7)
eqt_next:
	addiu $s1, $s1, 1
	li $t5, EQN
	blt $s1, $t5, eqt_col
	nop
	lw $ra, 0($sp)
	lw $s0, 4($sp)
	lw $s1, 8($sp)
	addiu $sp, $sp, 16
	jr $ra
	nop
`

const eightqData = `
eq_colfree:
	.space 8
eq_up:
	.space 15
eq_down:
	.space 15
eq_board:
	.space 8
	.align 2
eq_count:
	.word 0
eq_sum:
	.word 0
`

// lloop01: Livermore loop 1 (hydro fragment) in fixed point:
// x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]). Paper static size: 4,020 bytes.
const lloop01Text = `
	.equ LLN, 400
	.equ LLPASSES, 60
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	# init z[k] = (k*7) & 63, y[k] = (k*3) & 31
	la $t0, ll_z
	la $t1, ll_y
	li $t2, 0
ll_init:
	sll $t3, $t2, 3
	subu $t3, $t3, $t2      # k*7
	andi $t3, $t3, 63
	sw $t3, 0($t0)
	sll $t4, $t2, 1
	addu $t4, $t4, $t2      # k*3
	andi $t4, $t4, 31
	sw $t4, 0($t1)
	addiu $t0, $t0, 4
	addiu $t1, $t1, 4
	addiu $t2, $t2, 1
	li $t5, LLN+16
	blt $t2, $t5, ll_init
	nop

	li $s0, 0               # pass
ll_pass:
	li $s1, 0               # k
	la $s2, ll_x
	la $s3, ll_y
	la $s4, ll_z
ll_inner:
	sll $t0, $s1, 2
	addu $t1, $s4, $t0
	lw  $t2, 40($t1)        # z[k+10]
	lw  $t3, 44($t1)        # z[k+11]
	li  $t4, 13             # r
	mul $t2, $t2, $t4
	li  $t4, 7              # t
	mul $t3, $t3, $t4
	addu $t2, $t2, $t3
	addu $t5, $s3, $t0
	lw  $t6, 0($t5)         # y[k]
	nop
	mul $t2, $t2, $t6
	addiu $t2, $t2, 5       # q
	addu $t7, $s2, $t0
	sw  $t2, 0($t7)
	addiu $s1, $s1, 1
	li  $t4, LLN
	blt $s1, $t4, ll_inner
	nop
	addiu $s0, $s0, 1
	li  $t4, LLPASSES
	blt $s0, $t4, ll_pass
	nop

	# checksum = sum(x) mod 2^31
	li $t0, 0
	li $t1, 0
	la $t2, ll_x
ll_sum:
	lw $t3, 0($t2)
	addiu $t2, $t2, 4
	addu $t0, $t0, $t3
	addiu $t1, $t1, 1
	li $t4, LLN
	blt $t1, $t4, ll_sum
	nop
	srl $a0, $t0, 1
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

const lloop01Data = `
ll_x:
	.space 1664
ll_y:
	.space 1664
ll_z:
	.space 1664
`

// matrix25a: 25x25 integer matrix multiply with checksum.
// Paper static size: 36,766 bytes.
const matrix25aText = `
	.equ MN, 25
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	# a[i][j] = i + j ; b[i][j] = i - j + MN
	la $t0, mx_a
	la $t1, mx_b
	li $t2, 0               # i
mx_init_i:
	li $t3, 0               # j
mx_init_j:
	addu $t4, $t2, $t3
	sw $t4, 0($t0)
	subu $t4, $t2, $t3
	addiu $t4, $t4, MN
	sw $t4, 0($t1)
	addiu $t0, $t0, 4
	addiu $t1, $t1, 4
	addiu $t3, $t3, 1
	li $t5, MN
	blt $t3, $t5, mx_init_j
	nop
	addiu $t2, $t2, 1
	blt $t2, $t5, mx_init_i
	nop

	# c = a * b
	li $s0, 0               # i
mx_i:
	li $s1, 0               # j
mx_j:
	li $s2, 0               # k
	li $s3, 0               # acc
	# row base of a: mx_a + i*MN*4
	li $t0, MN*4
	mul $t1, $s0, $t0
	la $t2, mx_a
	addu $t2, $t2, $t1      # &a[i][0]
	la $t3, mx_b
	sll $t4, $s1, 2
	addu $t3, $t3, $t4      # &b[0][j]
mx_k:	# unrolled by 5 (MN = 25), as a vectorizing compiler would emit
	lw $t5, 0($t2)
	lw $t6, 0($t3)
	nop
	mul $t7, $t5, $t6
	addu $s3, $s3, $t7
	lw $t5, 4($t2)
	lw $t6, MN*4($t3)
	nop
	mul $t7, $t5, $t6
	addu $s3, $s3, $t7
	lw $t5, 8($t2)
	lw $t6, MN*8($t3)
	nop
	mul $t7, $t5, $t6
	addu $s3, $s3, $t7
	lw $t5, 12($t2)
	lw $t6, MN*12($t3)
	nop
	mul $t7, $t5, $t6
	addu $s3, $s3, $t7
	lw $t5, 16($t2)
	lw $t6, MN*16($t3)
	nop
	mul $t7, $t5, $t6
	addu $s3, $s3, $t7
	addiu $t2, $t2, 20
	addiu $t3, $t3, MN*20
	addiu $s2, $s2, 5
	li $t0, MN
	blt $s2, $t0, mx_k
	nop
	# c[i][j] = acc
	li $t0, MN*4
	mul $t1, $s0, $t0
	la $t2, mx_c
	addu $t2, $t2, $t1
	sll $t4, $s1, 2
	addu $t2, $t2, $t4
	sw $s3, 0($t2)
	addiu $s1, $s1, 1
	li $t0, MN
	blt $s1, $t0, mx_j
	nop
	addiu $s0, $s0, 1
	blt $s0, $t0, mx_i
	nop

	# checksum = sum c[i][j]
	li $t0, 0
	li $t1, 0
	la $t2, mx_c
	li $t3, MN*MN
mx_sum:
	lw $t4, 0($t2)
	addiu $t2, $t2, 4
	addu $t0, $t0, $t4
	addiu $t1, $t1, 1
	blt $t1, $t3, mx_sum
	nop
	move $a0, $t0
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

const matrix25aData = `
mx_a:
	.space 2500
mx_b:
	.space 2500
mx_c:
	.space 2500
`

// tex: text formatter inner loop — scan a paragraph buffer accumulating
// glyph widths and greedily breaking lines, as a stand-in for TeX's
// line-breaking pass. Paper static size: 53,172 bytes.
const texText = `
	.equ TEXLEN, 512
	.equ TEXPASS, 100
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	li $s0, 0               # pass
	li $s3, 0               # total lines
	li $s4, 0               # badness accumulator
tex_pass:
	la $t0, tex_buf
	li $t1, 0               # position
	li $t2, 0               # current width
tex_scan:
	lbu $t3, 0($t0)
	addiu $t0, $t0, 1
	andi $t4, $t3, 7
	addiu $t4, $t4, 1       # glyph width 1..8
	addu $t2, $t2, $t4
	li $t5, ' '
	bne $t3, $t5, tex_nospace
	nop
	# at a space: break if width exceeds the measure
	li $t6, 72
	blt $t2, $t6, tex_nospace
	nop
	addiu $s3, $s3, 1
	subu $t7, $t2, $t6      # overhang = badness
	addu $s4, $s4, $t7
	li $t2, 0
tex_nospace:
	addiu $t1, $t1, 1
	li $t6, TEXLEN
	blt $t1, $t6, tex_scan
	nop
	addiu $s0, $s0, 1
	li $t6, TEXPASS
	blt $s0, $t6, tex_pass
	nop
	move $a0, $s3
	jal rt_print_int
	nop
	li $a0, ' '
	li $v0, 11
	syscall
	move $a0, $s4
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

const texData = `
tex_buf:
	.ascii "In the beginning the Universe was created. This has made a "
	.ascii "great many people very angry and been widely regarded as a "
	.ascii "bad move. Many were increasingly of the opinion that they "
	.ascii "had all made a big mistake in coming down from the trees in "
	.ascii "the first place, and some said that even the trees had been "
	.ascii "a bad move and that no one should ever have left the oceans. "
	.ascii "And then one Thursday nearly two thousand years after one "
	.ascii "man had been nailed to a tree for saying how great it would "
	.ascii "be to be nice to people for a change...."
	.byte 0, 0, 0
`

// yacc: LR-parser flavor — drive a dense state-transition table with a
// pseudorandom token stream, counting accepts and reductions.
// Paper static size: 49,076 bytes.
const yaccText = `
	.equ YTOKENS, 30000
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	li $s0, 0               # token counter
	li $s1, 0               # state
	li $s2, 0               # accepts
	li $s3, 0               # reductions
	la $s4, yy_table
yy_loop:
	jal rt_rand
	nop
	andi $t0, $v0, 7        # token class
	sll $t1, $s1, 3         # state*8
	addu $t1, $t1, $t0
	addu $t1, $s4, $t1
	lbu $s1, 0($t1)         # next state
	nop
	bnez $s1, yy_noacc
	nop
	addiu $s2, $s2, 1       # state 0 = accept
yy_noacc:
	li $t2, 12
	blt $s1, $t2, yy_noreduce
	nop
	addiu $s3, $s3, 1       # high states reduce
	andi $s1, $s1, 3        # pop to a low state
yy_noreduce:
	addiu $s0, $s0, 1
	li $t3, YTOKENS
	blt $s0, $t3, yy_loop
	nop
	move $a0, $s2
	jal rt_print_int
	nop
	li $a0, ' '
	li $v0, 11
	syscall
	move $a0, $s3
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

// who: record filter — scan fixed-size login records, comparing name
// fields and counting matches, like who(1) over utmp.
// Paper static size: 65,940 bytes.
const whoText = `
	.equ WRECS, 300
	.equ WPASS, 20
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	# build records: 32 bytes each, first 8 bytes = name from LCG
	la $s0, who_recs
	li $s1, 0
who_init:
	li $t1, 0
who_initname:
	jal rt_rand
	nop
	andi $t2, $v0, 15
	addiu $t2, $t2, 'a'     # name chars a..p
	addu $t3, $s0, $t1
	sb $t2, 0($t3)
	addiu $t1, $t1, 1
	li $t4, 8
	blt $t1, $t4, who_initname
	nop
	sw $v0, 8($s0)          # login time field
	addiu $s0, $s0, 32
	addiu $s1, $s1, 1
	li $t4, WRECS
	blt $s1, $t4, who_init
	nop

	li $s5, 0               # match count
	li $s6, 0               # time hash
	li $s2, 0               # pass
who_pass:
	la $s0, who_recs
	li $s1, 0
who_scan:
	# compare first 4 name bytes against the pattern "gafd"-ish:
	# match when byte0 == byte2 (cheap but data dependent)
	lbu $t0, 0($s0)
	lbu $t1, 2($s0)
	nop
	bne $t0, $t1, who_nomatch
	nop
	addiu $s5, $s5, 1
	lw $t2, 8($s0)
	nop
	addu $s6, $s6, $t2
	andi $s6, $s6, 0xFFFF   # keep the hash bounded
who_nomatch:
	addiu $s0, $s0, 32
	addiu $s1, $s1, 1
	li $t4, WRECS
	blt $s1, $t4, who_scan
	nop
	addiu $s2, $s2, 1
	li $t4, WPASS
	blt $s2, $t4, who_pass
	nop
	move $a0, $s5
	jal rt_print_int
	nop
	li $a0, ' '
	li $v0, 11
	syscall
	srl $a0, $s6, 1
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

const whoData = `
who_recs:
	.space 9600
`

// pswarp: PostScript-warp flavor — fixed-point coordinate transform and
// resampling over a synthetic bitmap. Paper static size: 61,364 bytes.
const pswarpText = `
	.equ PWW, 64
	.equ PWH, 48
	.equ PWPASS, 3
main:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	# init source bitmap from the LCG
	la $s0, pw_src
	li $s1, 0
	li $t4, PWW*PWH
pw_init:
	jal rt_rand
	nop
	sb $v0, 0($s0)
	addiu $s0, $s0, 1
	addiu $s1, $s1, 1
	blt $s1, $t4, pw_init
	nop

	li $s5, 0               # accumulator
	li $s2, 0               # pass
pw_pass:
	li $s3, 0               # y
pw_y:
	li $s4, 0               # x
pw_x:
	# warped source coordinates (fixed-point style mixing)
	li $t0, 251
	mul $t1, $s4, $t0
	li $t0, 17
	mul $t2, $s3, $t0
	addu $t1, $t1, $t2
	srl $t1, $t1, 3
	andi $t1, $t1, PWW-1    # sx
	li $t0, 263
	mul $t2, $s3, $t0
	li $t0, 31
	mul $t3, $s4, $t0
	addu $t2, $t2, $t3
	srl $t2, $t2, 3
	li $t0, PWH
	divu $t2, $t0
	mfhi $t2                # sy = v % PWH
	li $t0, PWW
	mul $t3, $t2, $t0
	addu $t3, $t3, $t1
	la $t0, pw_src
	addu $t3, $t0, $t3
	lbu $t5, 0($t3)         # sample
	nop
	addu $s5, $s5, $t5
	addiu $s4, $s4, 1
	li $t0, PWW
	blt $s4, $t0, pw_x
	nop
	addiu $s3, $s3, 1
	li $t0, PWH
	blt $s3, $t0, pw_y
	nop
	addiu $s2, $s2, 1
	li $t0, PWPASS
	blt $s2, $t0, pw_pass
	nop
	move $a0, $s5
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop
`

const pswarpData = `
pw_src:
	.space 3072
`
