package workload

import (
	"fmt"
	"strings"
)

// espresso: two-level logic minimizer flavor. The defining property the
// paper observes (a working set too large and too irregular for a small
// direct-mapped cache) comes from dispatching over a large set of cube
// transformation routines in data-dependent order: 3/4 of the calls hit a
// small hot set, the rest spray across the whole table.
// Paper static size: 176,052 bytes.
const espressoDispatchN = 96

const espressoText = `
	.equ ESP_CALLS, 2500
main:
	addiu $sp, $sp, -16
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	sw $s1, 8($sp)
	sw $s2, 12($sp)
	li $s0, 0               # call counter
	li $s2, 0               # result accumulator
esp_loop:
	jal rt_rand
	nop
	andi $t0, $v0, 3
	bnez $t0, esp_hot
	nop
	# cold path: uniform over the whole routine table
	srl $t1, $v0, 4
	li $t2, 96
	divu $t1, $t2
	mfhi $t1                # index = r % 96
	b esp_call
	nop
esp_hot:
	srl $t1, $v0, 4
	andi $t1, $t1, 7        # hot set: first 8 routines
esp_call:
	la $t3, esp_table
	sll $t1, $t1, 2
	addu $t3, $t3, $t1
	lw $t4, 0($t3)
	move $a0, $s0
	jalr $t4
	nop
	addu $s2, $s2, $v0
	addiu $s0, $s0, 1
	li $t5, ESP_CALLS
	blt $s0, $t5, esp_loop
	nop
	srl $a0, $s2, 1
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	lw $s0, 4($sp)
	lw $s1, 8($sp)
	lw $s2, 12($sp)
	addiu $sp, $sp, 16
	jr $ra
	nop
`

// xlisp: list interpreter flavor — cons cells in a managed heap, with
// map/reverse/sum passes over a linked list, exercising pointer-chasing
// loads. Paper static size: 65,940 bytes.
const xlispText = `
	.equ XL_LEN, 200
	.equ XL_PASSES, 120
main:
	addiu $sp, $sp, -16
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	sw $s1, 8($sp)
	sw $s2, 12($sp)

	# Build the list (cons cells are [car, cdr] word pairs).
	li $s0, 0               # list head (0 = nil)
	li $s1, XL_LEN
xl_build:
	move $a0, $s1           # car = n .. 1
	move $a1, $s0           # cdr = old head
	jal xl_cons
	nop
	move $s0, $v0
	addiu $s1, $s1, -1
	bgtz $s1, xl_build
	nop

	li $s2, 0               # pass counter
xl_pass:
	# map: car += 1 for every cell
	move $t0, $s0
xl_map:
	beqz $t0, xl_mapdone
	nop
	lw $t1, 0($t0)
	nop
	addiu $t1, $t1, 1
	sw $t1, 0($t0)
	lw $t0, 4($t0)
	nop
	b xl_map
	nop
xl_mapdone:
	# reverse in place
	li $t2, 0               # prev
	move $t0, $s0
xl_rev:
	beqz $t0, xl_revdone
	nop
	lw $t3, 4($t0)          # next
	sw $t2, 4($t0)
	move $t2, $t0
	move $t0, $t3
	b xl_rev
	nop
xl_revdone:
	move $s0, $t2
	addiu $s2, $s2, 1
	li $t4, XL_PASSES
	blt $s2, $t4, xl_pass
	nop

	# sum the cars
	li $t5, 0
	move $t0, $s0
xl_sum:
	beqz $t0, xl_sumdone
	nop
	lw $t1, 0($t0)
	lw $t0, 4($t0)
	addu $t5, $t5, $t1
	b xl_sum
	nop
xl_sumdone:
	move $a0, $t5
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	lw $s0, 4($sp)
	lw $s1, 8($sp)
	lw $s2, 12($sp)
	addiu $sp, $sp, 16
	jr $ra
	nop

# xl_cons(car, cdr) -> cell address; bump allocation from xl_heap.
xl_cons:
	la $t8, xl_free
	lw $v0, 0($t8)
	nop
	sw $a0, 0($v0)
	sw $a1, 4($v0)
	addiu $t9, $v0, 8
	sw $t9, 0($t8)
	jr $ra
	nop
`

const xlispData = `
xl_heap:
	.space 8192
xl_free:
	.word xl_heap
`

// spim: simulator-in-the-simulator — a bytecode VM with a table-dispatched
// interpreter loop, the instruction-mix shape of SPIM itself.
// Paper static size: 147,360 bytes.
const spimHandlerN = 16

const spimText = `
	.equ SPIM_STEPS, 30000
	.equ SPIM_PROGLEN, 4096
main:
	addiu $sp, $sp, -16
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	sw $s1, 8($sp)
	sw $s2, 12($sp)

	# Generate the bytecode program.
	la $s0, vm_prog
	li $s1, 0
vm_gen:
	jal rt_rand
	nop
	andi $t0, $v0, 15
	addu $t1, $s0, $s1
	sb $t0, 0($t1)
	addiu $s1, $s1, 1
	li $t2, SPIM_PROGLEN
	blt $s1, $t2, vm_gen
	nop

	# Interpreter state: $s0 = code base, $s1 = vm pc, $s2 = step count,
	# $s5 = vm accumulator, $s6 = vm stack index (masked).
	li $s1, 0
	li $s2, 0
	li $s5, 0
	li $s6, 0
vm_loop:
	addu $t0, $s0, $s1
	lbu $t1, 0($t0)         # opcode
	la $t2, vm_table
	sll $t1, $t1, 2
	addu $t2, $t2, $t1
	lw $t3, 0($t2)
	nop
	jalr $t3
	nop
	addiu $s1, $s1, 1
	li $t4, SPIM_PROGLEN
	blt $s1, $t4, vm_nowrap
	nop
	li $s1, 0
vm_nowrap:
	addiu $s2, $s2, 1
	li $t4, SPIM_STEPS
	blt $s2, $t4, vm_loop
	nop
	move $a0, $s5
	jal rt_print_intnl
	nop
	lw $ra, 0($sp)
	lw $s0, 4($sp)
	lw $s1, 8($sp)
	lw $s2, 12($sp)
	addiu $sp, $sp, 16
	jr $ra
	nop
`

// spimHandlers builds the 16 opcode handler routines. Each does a small
// distinct piece of work on the VM state ($s5 accumulator, $s6 stack
// index, vm_stack memory), like a real interpreter's case arms.
func spimHandlers() string {
	var b strings.Builder
	for i := 0; i < spimHandlerN; i++ {
		fmt.Fprintf(&b, "vm_op%d:\n", i)
		switch i % 8 {
		case 0: // push accumulator
			b.WriteString(`	andi $t5, $s6, 63
	sll $t5, $t5, 2
	la $t6, vm_stack
	addu $t6, $t6, $t5
	sw $s5, 0($t6)
	addiu $s6, $s6, 1
`)
		case 1: // pop-add
			b.WriteString(`	addiu $s6, $s6, -1
	andi $t5, $s6, 63
	sll $t5, $t5, 2
	la $t6, vm_stack
	addu $t6, $t6, $t5
	lw $t7, 0($t6)
	nop
	addu $s5, $s5, $t7
`)
		case 2: // xor-mix
			fmt.Fprintf(&b, "	xori $s5, $s5, 0x%x\n	sll $t5, $s5, 1\n	xor $s5, $s5, $t5\n", 0x11*i+5)
		case 3: // rotate-ish
			b.WriteString(`	srl $t5, $s5, 7
	sll $t6, $s5, 25
	or $s5, $t5, $t6
`)
		case 4: // add immediate
			fmt.Fprintf(&b, "	addiu $s5, $s5, %d\n", 100+i*13)
		case 5: // store to vm memory
			b.WriteString(`	andi $t5, $s5, 252
	la $t6, vm_mem
	addu $t6, $t6, $t5
	sw $s5, 0($t6)
`)
		case 6: // load from vm memory
			b.WriteString(`	andi $t5, $s5, 252
	la $t6, vm_mem
	addu $t6, $t6, $t5
	lw $t7, 0($t6)
	nop
	addu $s5, $s5, $t7
`)
		case 7: // skip next byte
			b.WriteString("	addiu $s1, $s1, 1\n")
		}
		b.WriteString("	jr $ra\n	nop\n")
	}
	return b.String()
}

// spimTable builds the dispatch table for the 16 handlers.
func spimTable() string {
	var b strings.Builder
	b.WriteString("vm_table:\n")
	for i := 0; i < spimHandlerN; i++ {
		fmt.Fprintf(&b, "\t.word vm_op%d\n", i)
	}
	return b.String()
}

const spimData = `
vm_prog:
	.space 4096
vm_stack:
	.space 256
vm_mem:
	.space 256
`
