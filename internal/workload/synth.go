package workload

import (
	"fmt"
	"strings"
)

// lcg is a tiny deterministic generator so that workload sources are
// byte-for-byte reproducible across runs and platforms (no dependence on
// math/rand's algorithm choices).
type lcg struct{ s uint64 }

func (r *lcg) next() uint32 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return uint32(r.s >> 33)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint32(n)) }

// synthStyle biases the synthesizer's instruction mix.
type synthStyle int

const (
	styleInt   synthStyle = iota // typical integer compiled code
	styleFP                      // FP arithmetic heavy (nasa/tomcatv flavor)
	styleConst                   // addressing-constant heavy (fpppp flavor)
)

// synthFunctions emits n compiled-style MIPS functions named
// <prefix>_fn0..n-1. Functions may call strictly higher-numbered
// neighbors (so the call graph is a DAG and termination is structural),
// branch only forward within their body, and confine stores to their
// stack frame and the shared synth_scratch array. bodyOps controls the
// approximate body length in instructions.
//
// The emitted text is genuine R2000 machine code once assembled; its only
// purpose beyond being executable is to give each workload a realistic
// static size and byte histogram, standing in for the large compiled
// binaries the paper measured (see DESIGN.md's substitution table).
func synthFunctions(prefix string, n, bodyOps int, style synthStyle, seed uint64, callPct int) string {
	rng := &lcg{s: seed ^ 0x9E3779B97F4A7C15}
	var b strings.Builder
	for i := 0; i < n; i++ {
		emitSynthFunc(&b, rng, prefix, i, n, bodyOps, style, callPct)
	}
	return b.String()
}

func emitSynthFunc(b *strings.Builder, rng *lcg, prefix string, i, n, bodyOps int, style synthStyle, callPct int) {
	name := fmt.Sprintf("%s_fn%d", prefix, i)
	fmt.Fprintf(b, "%s:\n", name)
	b.WriteString("\taddiu $sp, $sp, -24\n")
	b.WriteString("\tsw $ra, 0($sp)\n")
	b.WriteString("\tsw $s0, 4($sp)\n")
	b.WriteString("\tsw $s1, 8($sp)\n")
	b.WriteString("\tla $s0, synth_scratch\n")
	b.WriteString("\tmove $s1, $a0\n")

	temps := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"}
	label := 0
	pending := -1 // ops until the pending forward label is placed
	var pendingName string
	for op := 0; op < bodyOps; op++ {
		if pending == 0 {
			fmt.Fprintf(b, "%s:\n", pendingName)
			pending = -1
		} else if pending > 0 {
			pending--
		}
		a := temps[rng.intn(len(temps))]
		c := temps[rng.intn(len(temps))]
		d := temps[rng.intn(len(temps))]
		roll := rng.intn(100)
		fpBias := 0
		if style == styleFP {
			fpBias = 35
		}
		constBias := 0
		if style == styleConst {
			constBias = 40
		}
		switch {
		case roll < constBias:
			// fpppp flavor: addressing constants with spread-out bytes.
			fmt.Fprintf(b, "\tlui %s, 0x%04x\n", a, rng.next()&0xFFFF)
			fmt.Fprintf(b, "\tori %s, %s, 0x%04x\n", a, a, rng.next()&0xFFFF)
		case roll < constBias+fpBias:
			f1 := rng.intn(8) * 2
			f2 := rng.intn(8) * 2
			f3 := rng.intn(8) * 2
			switch rng.intn(4) {
			case 0:
				fmt.Fprintf(b, "\tadd.d $f%d, $f%d, $f%d\n", f1, f2, f3)
			case 1:
				fmt.Fprintf(b, "\tmul.d $f%d, $f%d, $f%d\n", f1, f2, f3)
			case 2:
				fmt.Fprintf(b, "\tsub.d $f%d, $f%d, $f%d\n", f1, f2, f3)
			case 3:
				fmt.Fprintf(b, "\tl.d $f%d, %d($s0)\n", f1, rng.intn(30)*8)
			}
		case roll < constBias+fpBias+14:
			fmt.Fprintf(b, "\tlw %s, %d($s0)\n", a, rng.intn(64)*4)
		case roll < constBias+fpBias+22:
			fmt.Fprintf(b, "\tsw %s, %d($s0)\n", a, rng.intn(64)*4)
		case roll < constBias+fpBias+34:
			fmt.Fprintf(b, "\taddu %s, %s, %s\n", a, c, d)
		case roll < constBias+fpBias+42:
			fmt.Fprintf(b, "\taddiu %s, %s, %d\n", a, c, rng.intn(512)-256)
		case roll < constBias+fpBias+50:
			fmt.Fprintf(b, "\t%s %s, %s, %s\n",
				[]string{"and", "or", "xor", "subu"}[rng.intn(4)], a, c, d)
		case roll < constBias+fpBias+58:
			fmt.Fprintf(b, "\t%s %s, %s, %d\n",
				[]string{"sll", "srl", "sra"}[rng.intn(3)], a, c, rng.intn(31)+1)
		case roll < constBias+fpBias+64:
			fmt.Fprintf(b, "\tslt %s, %s, %s\n", a, c, d)
		case roll < constBias+fpBias+70:
			fmt.Fprintf(b, "\tori %s, %s, 0x%x\n", a, c, rng.next()&0xFF)
		case roll < constBias+fpBias+78 && pending < 0 && op+4 < bodyOps:
			// Forward conditional branch over a few instructions.
			pendingName = fmt.Sprintf("%s_L%d", fmt.Sprintf("%s_fn%d", prefix, i), label)
			label++
			br := []string{"beq", "bne"}[rng.intn(2)]
			fmt.Fprintf(b, "\t%s %s, %s, %s\n", br, a, c, pendingName)
			b.WriteString("\tnop\n")
			pending = 2 + rng.intn(3)
		case roll < constBias+fpBias+78+callPct && i+1 < n:
			// Call a strictly higher-numbered function (DAG).
			callee := i + 1 + rng.intn(n-i-1)
			fmt.Fprintf(b, "\tjal %s_fn%d\n", prefix, callee)
			b.WriteString("\tnop\n")
		default:
			fmt.Fprintf(b, "\tlui %s, 0x%x\n", a, rng.intn(1024))
		}
	}
	if pending >= 0 {
		fmt.Fprintf(b, "%s:\n", pendingName)
	}
	b.WriteString("\tmove $v0, $s1\n")
	b.WriteString("\tlw $ra, 0($sp)\n")
	b.WriteString("\tlw $s0, 4($sp)\n")
	b.WriteString("\tlw $s1, 8($sp)\n")
	b.WriteString("\taddiu $sp, $sp, 24\n")
	b.WriteString("\tjr $ra\n")
	b.WriteString("\tnop\n")
}

// synthDispatchTable emits a .data table of the addresses of the n
// synthesized functions, for indirect (jalr) dispatch loops.
func synthDispatchTable(label, prefix string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word %s_fn%d\n", prefix, i)
	}
	return b.String()
}

// synthScratch is the shared writable array all synthesized functions
// confine their stores to.
const synthScratch = `
synth_scratch:
	.space 256
`
