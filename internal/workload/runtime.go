package workload

// rtText is the shared runtime library linked into every workload:
// a deterministic LCG and console helpers built on the SPIM syscalls.
// It uses only $t8/$t9/$v0/$a0 so leaf code can call it freely.
const rtText = `
# --- shared runtime ---

# rt_rand: $v0 = next 31-bit pseudorandom value (LCG, deterministic).
rt_rand:
	la   $t8, rt_seed
	lw   $v0, 0($t8)
	lui  $t9, 0x41C6
	ori  $t9, $t9, 0x4E6D        # 1103515245
	mult $v0, $t9
	mflo $v0
	addiu $v0, $v0, 12345
	sw   $v0, 0($t8)
	srl  $v0, $v0, 1
	srl  $t9, $v0, 15       # fold high bits down: the low bits of a
	xor  $v0, $v0, $t9      # power-of-two LCG are short-period on their own
	jr   $ra
	nop

# rt_print_int: print $a0 as a signed decimal.
rt_print_int:
	li $v0, 1
	syscall
	jr $ra
	nop

# rt_print_intnl: print $a0 then a newline.
rt_print_intnl:
	li $v0, 1
	syscall
	li $a0, '\n'
	li $v0, 11
	syscall
	jr $ra
	nop
`

const rtData = `
rt_seed:
	.word 20810
`

// wrapMain composes a complete program: the entry stub, the program's
// text (which must define main), the shared runtime, synthesized cold
// padding, and all data sections.
func wrapMain(coreText, coreData, padText, padData string) string {
	return "\t.text\n__start:\n\tjal main\n\tnop\n\tli $v0, 10\n\tsyscall\n" +
		coreText + rtText + padText +
		"\n\t.data\n" + coreData + rtData + synthScratch + padData
}
