package workload

import (
	"testing"

	"ccrp/internal/isa"
	"ccrp/internal/riscv"
)

func TestRISCVWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range RISCV() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, out, err := w.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out != w.WantOutput {
				t.Errorf("output = %q, want %q", out, w.WantOutput)
			}
			if res.Instructions < 10_000 {
				t.Errorf("trace too short: %d instructions", res.Instructions)
			}
			if res.Instructions > maxWorkloadInstr {
				t.Errorf("trace too long: %d instructions", res.Instructions)
			}
		})
	}
}

func TestRISCVRegistry(t *testing.T) {
	if len(RISCV()) < 2 {
		t.Fatalf("RV32 corpus has %d programs, want >= 2", len(RISCV()))
	}
	for _, w := range RISCV() {
		if w.ISA != "rv32" {
			t.Errorf("%s: ISA = %q, want rv32", w.Name, w.ISA)
		}
	}
	if _, ok := RISCVByName("rv-matrix"); !ok {
		t.Error("RISCVByName(rv-matrix) failed")
	}
	if _, ok := RISCVByName("eightq"); ok {
		t.Error("RISCVByName accepted a MIPS workload name")
	}
}

func TestRISCVTextIsValidCode(t *testing.T) {
	arch := isa.MustLookup("rv32")
	for _, w := range RISCV() {
		p, err := w.Program()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if p.ISA != "rv32" {
			t.Fatalf("%s: program ISA = %q", w.Name, p.ISA)
		}
		for off := 0; off+4 <= len(p.Text); off += 4 {
			raw := isa.Word(uint32(p.Text[off]) | uint32(p.Text[off+1])<<8 |
				uint32(p.Text[off+2])<<16 | uint32(p.Text[off+3])<<24)
			if info := arch.Decode(raw, uint32(off)); !info.Valid {
				t.Errorf("%s: invalid instruction %#08x at %#x", w.Name, uint32(raw), off)
				break
			}
		}
	}
}

// TestRISCVTextCompressesUnderRVC pins the property the rvc experiment
// relies on: a meaningful fraction of real RV32 text has a 16-bit form.
func TestRISCVTextCompressesUnderRVC(t *testing.T) {
	for _, w := range RISCV() {
		text, err := w.Text()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		rvc := riscv.CompressedSize(text)
		if rvc >= len(text) {
			t.Errorf("%s: RVC size %d not below original %d", w.Name, rvc, len(text))
		}
		if rvc < len(text)/2 {
			t.Errorf("%s: RVC size %d below the 2-byte floor of %d bytes",
				w.Name, rvc, len(text))
		}
	}
}

func TestRISCVDeterministicBuilds(t *testing.T) {
	a := &Workload{Name: "rv-matrix-copy", ISA: "rv32", buildSrc: func() string {
		return rvWrapMain(rvMatrixText, rvMatrixData,
			rvSynthFunctions("rvm", 40, 100, 0x2A, 4))
	}}
	w, _ := RISCVByName("rv-matrix")
	if a.Source() != w.Source() {
		t.Error("synthesized RV32 source not deterministic")
	}
}
