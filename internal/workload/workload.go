// Package workload provides the benchmark corpus of the reproduction:
// thirteen MIPS R2000 programs mirroring the paper's test set (the ten
// Figure 5 programs plus the simulation-only nasa7/nasa1/tomcatv/fpppp
// set), each assembled from source by internal/asm and executed by
// internal/sim to produce instruction traces.
//
// The hand-written core of each program reproduces the dynamic locality
// of its namesake (loop working sets, dispatch irregularity, straight-line
// block size); a deterministic synthesizer adds cold compiled-style code
// so static sizes match the binaries the paper compressed. See DESIGN.md
// for the substitution rationale.
package workload

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"ccrp/internal/asm"
	_ "ccrp/internal/mips" // the corpus is R2000 code; register its backend
	"ccrp/internal/sim"
	"ccrp/internal/trace"
)

// Workload is one corpus program.
type Workload struct {
	Name        string
	Description string
	ISA         string // ISA backend name ("" means the default MIPS)
	PaperBytes  int    // static size reported in the paper, for reference
	InFigure5   bool   // member of the ten-program Figure 5 compression set
	WantOutput  string // golden console output (checked by tests)
	FP          bool   // uses the COP1 floating-point subset

	buildSrc func() string

	once     sync.Once
	src      string
	prog     *asm.Program
	result   *sim.Result
	output   string
	buildErr error
}

// maxWorkloadInstr bounds any corpus program's dynamic length; the
// paper's traces run 10K to 1M instructions.
const maxWorkloadInstr = 4_000_000

func pad(prefix string, n, bodyOps int, style synthStyle, seed uint64) string {
	return synthFunctions(prefix, n, bodyOps, style, seed, 4)
}

// yaccTable generates the parser's dense 16x8 transition table.
func yaccTable() string {
	var b strings.Builder
	b.WriteString("yy_table:\n")
	for i := 0; i < 128; i += 8 {
		b.WriteString("\t.byte ")
		for j := 0; j < 8; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", ((i+j)*5+3)&15)
		}
		b.WriteString("\n")
	}
	return b.String()
}

var registry = []*Workload{
	{
		Name:        "eightq",
		WantOutput:  "92 82110\n",
		Description: "8-queens solution counter (array-based backtracking)",
		PaperBytes:  4020,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(eightqText, eightqData, pad("eq8", 5, 100, styleInt, 0xE1), "")
		},
	},
	{
		Name:        "lloop01",
		WantOutput:  "2003708\n",
		Description: "Livermore loop 1 (hydro fragment), fixed point",
		PaperBytes:  4020,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(lloop01Text, lloop01Data, pad("ll1", 6, 100, styleInt, 0x11), "")
		},
	},
	{
		Name:        "matrix25a",
		WantOutput:  "10187500\n",
		Description: "25x25 integer matrix multiply",
		PaperBytes:  36766,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(matrix25aText, matrix25aData, pad("mx", 60, 120, styleInt, 0x25), "")
		},
	},
	{
		Name:        "tex",
		WantOutput:  "2400 25500\n",
		Description: "text formatter line-breaking inner loop",
		PaperBytes:  53172,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(texText, texData, pad("tex", 88, 118, styleInt, 0x7E), "")
		},
	},
	{
		Name:        "pswarp",
		WantOutput:  "1185777\n",
		Description: "fixed-point image warp and resample",
		PaperBytes:  61364,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(pswarpText, pswarpData, pad("pw", 100, 120, styleFP, 0x9A), "")
		},
	},
	{
		Name:        "yacc",
		WantOutput:  "1820 7625\n",
		Description: "LR parser table walker over a token stream",
		PaperBytes:  49076,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(yaccText, yaccTable(), pad("yy", 80, 120, styleInt, 0x3C), "")
		},
	},
	{
		Name:        "who",
		WantOutput:  "440 30550\n",
		Description: "login-record scanner and filter",
		PaperBytes:  65940,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(whoText, whoData, pad("who", 108, 120, styleInt, 0x40), "")
		},
	},
	{
		Name:        "xlisp",
		WantOutput:  "44100\n",
		Description: "lisp interpreter kernel: cons cells, map/reverse/sum",
		PaperBytes:  65940,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(xlispText, xlispData, pad("xl", 108, 120, styleInt, 0x55), "")
		},
	},
	{
		Name:        "espresso",
		WantOutput:  "1561875\n",
		Description: "logic minimizer flavor: data-driven dispatch over a large routine table",
		PaperBytes:  176052,
		InFigure5:   true,
		buildSrc: func() string {
			hot := synthFunctions("esp", espressoDispatchN, 42, styleInt, 0xE5, 2)
			cold := pad("espc", 248, 120, styleInt, 0xE6)
			return wrapMain(espressoText+hot, "", cold,
				synthDispatchTable("esp_table", "esp", espressoDispatchN))
		},
	},
	{
		Name:        "spim",
		WantOutput:  "1675177549\n",
		Description: "bytecode VM with table-dispatched interpreter loop",
		PaperBytes:  147360,
		InFigure5:   true,
		buildSrc: func() string {
			return wrapMain(spimText+spimHandlers(), spimData+spimTable(),
				pad("sp", 240, 120, styleFP, 0x51), "")
		},
	},
	{
		Name:        "nasa7",
		WantOutput:  "8746\n",
		Description: "seven double-precision numeric kernels",
		FP:          true,
		buildSrc: func() string {
			return wrapMain(nasa7Source(), nasa7Data, pad("na", 145, 120, styleFP, 0xA7), "")
		},
	},
	{
		Name:        "nasa1",
		WantOutput:  "122581\n",
		Description: "double-precision 1D smoothing kernel",
		FP:          true,
		buildSrc: func() string {
			return wrapMain(nasa1Text, nasa1Data, pad("n1", 40, 120, styleFP, 0xA1), "")
		},
	},
	{
		Name:        "tomcatv",
		WantOutput:  "1218816\n",
		Description: "mesh relaxation over a 24x24 double grid",
		FP:          true,
		buildSrc: func() string {
			return wrapMain(tomcatvText, tomcatvData, pad("tc", 50, 120, styleFP, 0x7C), "")
		},
	},
	{
		Name:        "fpppp",
		WantOutput:  "770977204\n",
		Description: "one ~1.7KB straight-line FP block, constant heavy",
		FP:          true,
		buildSrc: func() string {
			body := synthStraightLine("fp_body", 330, 0xFB)
			return wrapMain(fpppppLoop+body, "", pad("fpc", 60, 120, styleConst, 0xFC), "")
		},
	},
}

// All returns every workload in presentation order.
func All() []*Workload { return registry }

// Figure5Set returns the ten programs of the paper's Figure 5, in the
// paper's order.
func Figure5Set() []*Workload {
	order := []string{"tex", "pswarp", "yacc", "who", "eightq",
		"matrix25a", "lloop01", "xlisp", "espresso", "spim"}
	out := make([]*Workload, 0, len(order))
	for _, n := range order {
		w, ok := ByName(n)
		if !ok {
			panic("workload: Figure 5 set inconsistent: " + n)
		}
		out = append(out, w)
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (*Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// Names lists all workload names.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// build assembles and executes the workload exactly once.
func (w *Workload) build() {
	w.once.Do(func() {
		w.src = w.buildSrc()
		prog, err := asm.AssembleFor(w.ISA, w.Name, w.src)
		if err != nil {
			w.buildErr = fmt.Errorf("workload %s: %w", w.Name, err)
			return
		}
		w.prog = prog
		var out bytes.Buffer
		m := sim.New(prog, sim.Config{
			Stdout:       &out,
			CollectTrace: true,
			MaxInstr:     maxWorkloadInstr,
		})
		res, err := m.Run()
		if err != nil {
			w.buildErr = fmt.Errorf("workload %s: %w", w.Name, err)
			return
		}
		w.result = res
		w.output = out.String()
	})
}

// Source returns the composed assembly source.
func (w *Workload) Source() string {
	w.build()
	return w.src
}

// Program returns the assembled image.
func (w *Workload) Program() (*asm.Program, error) {
	w.build()
	return w.prog, w.buildErr
}

// Run returns the cached simulation result (with trace) and console output.
func (w *Workload) Run() (*sim.Result, string, error) {
	w.build()
	return w.result, w.output, w.buildErr
}

// Trace returns the cached instruction trace.
func (w *Workload) Trace() (*trace.Trace, error) {
	res, _, err := w.Run()
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// Text returns the program's text section (the bytes the CCRP compresses).
func (w *Workload) Text() ([]byte, error) {
	p, err := w.Program()
	if err != nil {
		return nil, err
	}
	return p.Text, nil
}

// StaticBytes returns the text section size.
func (w *Workload) StaticBytes() (int, error) {
	t, err := w.Text()
	if err != nil {
		return 0, err
	}
	return len(t), nil
}
