package workload

import (
	"strings"
	"testing"

	"ccrp/internal/asm"
	"ccrp/internal/isa"
	_ "ccrp/internal/mips" // register the default backend
)

func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, out, err := w.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out != w.WantOutput {
				t.Errorf("output = %q, want %q", out, w.WantOutput)
			}
			// The paper's traces run 10K to 1M dynamic instructions;
			// ours stay in the same regime (espresso somewhat above,
			// like the real espresso).
			if res.Instructions < 10_000 {
				t.Errorf("trace too short: %d instructions", res.Instructions)
			}
			if res.Instructions > maxWorkloadInstr {
				t.Errorf("trace too long: %d instructions", res.Instructions)
			}
			if res.Trace == nil || len(res.Trace.Events) != int(res.Instructions) {
				t.Error("trace missing or inconsistent")
			}
		})
	}
}

func TestStaticSizesTrackPaper(t *testing.T) {
	for _, w := range All() {
		if w.PaperBytes == 0 {
			continue
		}
		got, err := w.StaticBytes()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		lo, hi := w.PaperBytes*7/10, w.PaperBytes*13/10
		if got < lo || got > hi {
			t.Errorf("%s: static size %d outside 70%%-130%% of paper's %d",
				w.Name, got, w.PaperBytes)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 14 {
		t.Errorf("registry has %d workloads", len(All()))
	}
	f5 := Figure5Set()
	if len(f5) != 10 {
		t.Fatalf("Figure 5 set has %d programs", len(f5))
	}
	for _, w := range f5 {
		if !w.InFigure5 {
			t.Errorf("%s in Figure5Set but not flagged", w.Name)
		}
	}
	if _, ok := ByName("eightq"); !ok {
		t.Error("ByName(eightq) failed")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("ByName accepted unknown name")
	}
	if len(Names()) != len(All()) {
		t.Error("Names inconsistent")
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate workload name %s", n)
		}
		seen[n] = true
	}
}

func TestDeterministicBuilds(t *testing.T) {
	// Two fresh instances must produce identical sources and text.
	a := &Workload{Name: "fpppp-copy", buildSrc: func() string {
		body := synthStraightLine("fp_body", 330, 0xFB)
		return wrapMain(fpppppLoop+body, "", pad("fpc", 60, 120, styleConst, 0xFC), "")
	}}
	w, _ := ByName("fpppp")
	if a.Source() != w.Source() {
		t.Error("synthesized source not deterministic")
	}
}

func TestTracesStayInText(t *testing.T) {
	for _, w := range All() {
		tr, err := w.Trace()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		text, _ := w.Text()
		limit := uint32(len(text))
		for _, e := range tr.Events {
			if e.PC >= limit {
				t.Errorf("%s: fetch at %#x outside text (%d bytes)", w.Name, e.PC, limit)
				break
			}
		}
	}
}

func TestTextIsValidCode(t *testing.T) {
	// Every word of every text section must decode to a valid
	// instruction (the corpus is genuine R2000 code, which is what makes
	// its byte histogram meaningful for Figure 5).
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		arch, err := isa.Lookup(p.ISA)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		words := 0
		for off := 0; off+4 <= len(p.Text); off += 4 {
			raw := isa.Word(uint32(p.Text[off]) | uint32(p.Text[off+1])<<8 |
				uint32(p.Text[off+2])<<16 | uint32(p.Text[off+3])<<24)
			if info := arch.Decode(raw, uint32(off)); !info.Valid && raw != 0 {
				t.Errorf("%s: invalid instruction %#08x at %#x", w.Name, uint32(raw), off)
				break
			}
			words++
		}
		if words == 0 {
			t.Errorf("%s: empty text", w.Name)
		}
	}
}

func TestFPFlagAccuracy(t *testing.T) {
	for _, w := range All() {
		src := w.Source()
		usesFP := strings.Contains(src, "add.d") || strings.Contains(src, "l.d") ||
			strings.Contains(src, "mul.d") || strings.Contains(src, "cvt")
		if w.FP && !usesFP {
			t.Errorf("%s flagged FP but no FP code found", w.Name)
		}
	}
}

func TestStackDiscipline(t *testing.T) {
	// After a full run the stack pointer must be back at the top: every
	// function's prologue and epilogue balance.
	for _, w := range All() {
		p, err := w.Program()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if p.Entry != 0 {
			t.Errorf("%s: entry %#x, want 0 (__start first)", w.Name, p.Entry)
		}
		if uint32(len(p.Text)) >= asm.DataBase {
			t.Errorf("%s: text overruns data base", w.Name)
		}
	}
}

func BenchmarkBuildCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := &Workload{Name: "bench", buildSrc: func() string {
			return wrapMain(eightqText, eightqData, pad("eq8", 5, 100, styleInt, 0xE1), "")
		}}
		if _, err := w.Program(); err != nil {
			b.Fatal(err)
		}
	}
}
