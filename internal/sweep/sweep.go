// Package sweep is the parallel experiment runner behind the benchmark
// harness: it fans the points of a parameter sweep out across a bounded
// worker pool with deterministic result ordering (results are merged by
// point index, never by arrival), per-point panic recovery, cancellation
// via context.Context, and safe observability propagation — each worker
// gets a private metrics registry that is merged into the engine's target
// registry once the pool has quiesced, so the single-threaded instruments
// in internal/metrics never see concurrent writers.
//
// The package also provides a content-addressed artifact cache with
// single-flight deduplication (cache.go), so expensive trained artifacts
// — Huffman codes, CodePack dictionaries, compressed ROM images — are
// built once per unique (coder, corpus, configuration) triple no matter
// how many sweep points or concurrent workers need them.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ccrp/internal/metrics"
	"ccrp/internal/tracing"
)

// Engine configures a worker pool for sweep execution. The zero value
// (and a nil *Engine) runs points sequentially with no observability,
// preserving the pre-engine behavior of the experiment harness.
type Engine struct {
	// Workers bounds the number of concurrent points. Zero or negative
	// selects runtime.NumCPU(); 1 runs the sweep sequentially on the
	// calling goroutine.
	Workers int

	// Registry, when set, receives the merged instrumentation of the
	// whole sweep: each worker records into a private registry and the
	// engine folds them into Registry (in worker order) after the pool
	// has quiesced. Counters, counter vectors, and histograms therefore
	// accumulate exactly as a sequential run would; gauges keep the
	// last-merged worker's value, which for per-run summary gauges is
	// one representative point rather than a defined "last" point.
	Registry *metrics.Registry

	// Sink, when set, receives the structured event stream of every
	// point. With more than one worker the engine serializes Emit calls
	// through a metrics.SyncSink; events from different points then
	// interleave in arrival order, which is not deterministic.
	Sink metrics.EventSink

	// Tracer, when set, roots one sweep_point span per point; points see
	// it through Obs.Span and hang their train/build/run child stages off
	// it. The tracer's span sink is already concurrency-safe, so workers
	// share it directly.
	Tracer *tracing.Tracer
}

// workerCount resolves the pool size for an n-point sweep.
func (e *Engine) workerCount(n int) int {
	w := 1
	if e != nil {
		w = e.Workers
		if w <= 0 {
			w = runtime.NumCPU()
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError reports a sweep point whose function panicked. The panic is
// confined to that point: the rest of the sweep still runs, and the
// engine returns this error instead of crashing the process.
type PanicError struct {
	Point int    // index of the failed point
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

// Error summarizes the panic without the stack; use Unwrap-style field
// access for the full trace.
func (e *PanicError) Error() string {
	return fmt.Sprintf("point %d panicked: %v", e.Point, e.Value)
}

// Stage names for the spans a sweep emits: the per-point root and the
// child stages experiment points conventionally hang off it. They mirror
// the server's request stages so ccrp-spans reads both streams with one
// vocabulary.
const (
	StagePoint = "sweep_point" // root span of one sweep point
	StageTrain = "train"       // coder/code training
	StageBuild = "build"       // ROM compression
	StageRun   = "run"         // simulator execution
)

// Obs is the observability bundle handed to each sweep point: a
// per-worker registry (nil when the engine has no Registry), the engine's
// shared, serialized event sink (nil when the engine has no Sink), and
// the point's root span (nil when the engine has no Tracer). Points pass
// the first two through to core.Config and hang stage children off Span.
type Obs struct {
	Registry *metrics.Registry
	Sink     metrics.EventSink
	Span     *tracing.Span
}

// Map runs fn for every index in [0, n) across the engine's worker pool
// and returns the results in index order, regardless of completion order.
//
// Every point runs exactly once unless ctx is cancelled (points not yet
// started are skipped; points in flight finish). A point that returns an
// error or panics does not stop the other points; after the sweep, Map
// returns the full result slice together with the failure of the
// lowest-indexed failed point (so the reported error is deterministic
// under any worker count). A ctx cancellation is reported as ctx.Err()
// when no point failed first.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int, obs Obs) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	workers := e.workerCount(n)

	sink := e.sink()
	if sink != nil && workers > 1 {
		sink = metrics.NewSyncSink(sink)
	}

	regs := make([]*metrics.Registry, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		if e != nil && e.Registry != nil {
			regs[wi] = metrics.New()
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sp := e.tracer().Start(StagePoint)
				sp.SetAttrInt("point", int64(i))
				obs := Obs{Registry: regs[wi], Sink: sink, Span: sp}
				results[i], errs[i] = runPoint(ctx, i, obs, fn)
				if errs[i] != nil {
					sp.SetError(errs[i])
				}
				sp.End()
			}
		}(wi)
	}
	wg.Wait()

	for _, reg := range regs {
		if reg != nil {
			e.Registry.Merge(reg)
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: point %d of %d: %w", i, n, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// runPoint executes one point with panic confinement.
func runPoint[T any](ctx context.Context, i int, obs Obs, fn func(ctx context.Context, i int, obs Obs) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Point: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, obs)
}

// sink returns the engine's event sink, nil-safe.
func (e *Engine) sink() metrics.EventSink {
	if e == nil {
		return nil
	}
	return e.Sink
}

// tracer returns the engine's tracer, nil-safe.
func (e *Engine) tracer() *tracing.Tracer {
	if e == nil {
		return nil
	}
	return e.Tracer
}
