package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// Cache is a content-addressed artifact cache with single-flight
// deduplication: the first caller of a key builds the artifact while
// concurrent callers of the same key block until that one build finishes,
// so a trained coder is never trained twice even when many sweep workers
// request it at once. Both values and errors are cached — the build
// functions here are deterministic in their key, so a failure is as
// permanent as a success.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Len reports the number of cached keys (settled or in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do returns the cached artifact for key, building it with build on first
// use. A panic inside build is converted into a cached *PanicError so
// that waiting callers are released rather than deadlocked.
func (c *Cache) do(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("sweep: building %q: %w",
					key, &PanicError{Value: r})
			}
			close(e.done)
		}()
		e.val, e.err = build()
	}()
	return e.val, e.err
}

// Get returns the cached artifact of type T for key, building and caching
// it on first use. Requesting one key with two different types is a
// programming error and is reported as one.
func Get[T any](c *Cache, key string, build func() (T, error)) (T, error) {
	v, err := c.do(key, func() (any, error) { return build() })
	if err != nil {
		var zero T
		return zero, err
	}
	out, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("sweep: cache key %q holds %T, not %T", key, v, zero)
	}
	return out, nil
}

// Key derives a cache key from its parts. Byte slices are content-
// addressed (SHA-256), so a key built over a training corpus changes
// exactly when the corpus bytes change; strings, booleans, and numbers
// are embedded verbatim. Parts are joined unambiguously, so
// Key("a", "b") and Key("ab") differ.
func Key(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator: cannot appear in %v of the types below
		}
		switch v := p.(type) {
		case []byte:
			b.WriteString(HashBytes(v))
		case string:
			fmt.Fprintf(&b, "%q", v)
		default:
			fmt.Fprintf(&b, "%v", v)
		}
	}
	return b.String()
}

// HashBytes returns the hex SHA-256 of b, the content address used by Key
// for byte-slice parts.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
