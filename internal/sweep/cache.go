package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Cache is a content-addressed artifact cache with single-flight
// deduplication: the first caller of a key builds the artifact while
// concurrent callers of the same key block until that one build finishes,
// so a trained coder is never trained twice even when many sweep workers
// request it at once.
//
// Values are cached unconditionally. Errors are cached only when they
// are deterministic in the key — a build that fails because its input is
// malformed will fail identically forever, so the failure is as
// permanent as a success. Transient failures (a cancelled context, an
// expired deadline, or anything wrapped with Transient) are delivered to
// the waiters of the failed flight but NOT cached: the next caller of
// the key retries the build instead of inheriting a poisoned entry.
//
// With SetStore, the cache gains a durable second level: GetStored
// consults the store before building and writes freshly built artifacts
// through, so artifacts survive process restarts.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	store Store         // nil: memory-only
	obs   StoreObserver // nil: unobserved
}

type cacheEntry struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// StoreObserver receives store-traffic notifications from GetStored.
// Implementations must be safe for concurrent use; every method may be
// called from any goroutine that is building an artifact.
type StoreObserver interface {
	StoreHit(key string)                // artifact served from disk
	StoreMiss(key string)               // absent from disk; build ran
	StoreWrite(key string)              // freshly built artifact persisted
	StoreCorrupt(key string, err error) // stored artifact rejected; rebuilt
}

// SetStore attaches a durable store (and an optional traffic observer)
// to the cache. Call before the cache is shared; the fields are read
// without synchronization on the build path.
func (c *Cache) SetStore(s Store, obs StoreObserver) {
	c.store = s
	c.obs = obs
}

// Store returns the attached store, nil when memory-only.
func (c *Cache) Store() Store { return c.store }

// Len reports the number of cached keys (settled or in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do returns the cached artifact for key, building it with build on first
// use. A panic inside build is converted into a cached *PanicError so
// that waiting callers are released rather than deadlocked.
func (c *Cache) do(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("sweep: building %q: %w",
					key, &PanicError{Value: r})
			}
			if e.err != nil && IsTransient(e.err) {
				// Deliver the failure to this flight's waiters but do not
				// cache it: a cancelled or deadline-expired build says
				// nothing about the key, and caching it would poison the
				// key for the process lifetime.
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
			}
			close(e.done)
		}()
		e.val, e.err = build()
	}()
	return e.val, e.err
}

// Seed inserts a prebuilt artifact for key, as if a build had just
// completed successfully. An existing entry (settled or in flight) wins:
// seeding never clobbers live state. Warm start uses this to register
// store-loaded artifacts so later Gets hit memory without a disk read.
func (c *Cache) Seed(key string, val any) {
	e := &cacheEntry{done: make(chan struct{}), val: val}
	close(e.done)
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = e
	}
	c.mu.Unlock()
}

// transientError marks a failure as retryable for caching purposes.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the cache will not memoize it: the next caller
// of the same key retries the build. Use it for failures caused by the
// environment (disk full, out of workers) rather than by the key's
// content. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is a retryable build failure: a
// context cancellation or deadline expiry anywhere in the chain, or an
// explicit Transient wrapper.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *transientError
	return errors.As(err, &te) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Get returns the cached artifact of type T for key, building and caching
// it on first use. Requesting one key with two different types is a
// programming error and is reported as one.
func Get[T any](c *Cache, key string, build func() (T, error)) (T, error) {
	v, err := c.do(key, func() (any, error) { return build() })
	if err != nil {
		var zero T
		return zero, err
	}
	out, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("sweep: cache key %q holds %T, not %T", key, v, zero)
	}
	return out, nil
}

// Codec serializes one artifact type for the durable store. Name is the
// artifact class recorded in every stored header — warm start filters on
// it, and GetStored rejects a stored artifact whose class does not match
// the codec asking for it (a key collision across types would otherwise
// decode garbage).
type Codec[T any] struct {
	Name   string
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// GetStored is Get with durable write-through: on a memory miss it
// consults the cache's store before building, and persists a freshly
// built artifact after. A stored artifact that fails verification or
// decoding is rejected and rebuilt — corruption is never served — and a
// failed persist never fails the build (the artifact is good; only its
// durability is lost). Without an attached store this is exactly Get.
func GetStored[T any](c *Cache, key string, codec Codec[T], build func() (T, error)) (T, error) {
	if c.store == nil {
		return Get(c, key, build)
	}
	return Get(c, key, func() (T, error) {
		if v, ok := loadStored(c, key, codec); ok {
			return v, nil
		}
		v, err := build()
		if err != nil {
			return v, err
		}
		if blob, err := codec.Encode(v); err == nil {
			if err := c.store.Save(key, codec.Name, blob); err == nil && c.obs != nil {
				c.obs.StoreWrite(key)
			}
		}
		return v, nil
	})
}

// loadStored attempts to serve key from the store, classifying the
// outcome for the observer.
func loadStored[T any](c *Cache, key string, codec Codec[T]) (T, bool) {
	var zero T
	class, blob, err := c.store.Load(key)
	switch {
	case err == nil:
	case errors.Is(err, ErrNotInStore):
		if c.obs != nil {
			c.obs.StoreMiss(key)
		}
		return zero, false
	default:
		// Corrupt or unreadable: rebuild rather than trust the bytes.
		if c.obs != nil {
			c.obs.StoreCorrupt(key, err)
		}
		return zero, false
	}
	if class != codec.Name {
		if c.obs != nil {
			c.obs.StoreCorrupt(key, fmt.Errorf("sweep: artifact class %q, codec wants %q", class, codec.Name))
		}
		return zero, false
	}
	v, err := codec.Decode(blob)
	if err != nil {
		if c.obs != nil {
			c.obs.StoreCorrupt(key, fmt.Errorf("sweep: decoding stored artifact: %w", err))
		}
		return zero, false
	}
	if c.obs != nil {
		c.obs.StoreHit(key)
	}
	return v, true
}

// Key derives a cache key from its parts. Byte slices are content-
// addressed (SHA-256), so a key built over a training corpus changes
// exactly when the corpus bytes change; strings, booleans, and numbers
// are embedded verbatim. Parts are joined unambiguously, so
// Key("a", "b") and Key("ab") differ.
func Key(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(0x1f) // unit separator: cannot appear in %v of the types below
		}
		switch v := p.(type) {
		case []byte:
			b.WriteString(HashBytes(v))
		case string:
			fmt.Fprintf(&b, "%q", v)
		default:
			fmt.Fprintf(&b, "%v", v)
		}
	}
	return b.String()
}

// HashBytes returns the hex SHA-256 of b, the content address used by Key
// for byte-slice parts.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
