package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Store is a durable artifact store keyed by the same content-addressed
// strings as the in-memory Cache. It is the service analogue of the
// paper's ROM: the expensive offline products — trained coders,
// compressed images — outlive the process that built them, so a daemon
// restart warm-starts from disk instead of retraining every coder.
//
// Implementations must be safe for concurrent use. Load distinguishes
// three outcomes: the artifact (nil error), ErrNotInStore (absent —
// build and Save), and *CorruptError (present but failing verification —
// the caller must rebuild rather than trust the bytes).
type Store interface {
	// Load returns the artifact class and payload stored under key.
	Load(key string) (class string, blob []byte, err error)
	// Save durably stores blob under key, atomically replacing any
	// previous artifact for the key.
	Save(key, class string, blob []byte) error
	// List enumerates the stored artifacts (for warm start).
	List() ([]Artifact, error)
}

// Artifact describes one stored entry without its payload.
type Artifact struct {
	Key   string // the cache key the artifact was stored under
	Class string // the codec name that produced the payload
	// Size is the payload length in bytes and ModTime the artifact
	// file's last write, when the store can report them cheaply (the
	// disk store reads both from the header and the directory entry);
	// zero values otherwise.
	Size    int
	ModTime time.Time
}

// ErrNotInStore reports a key with no stored artifact.
var ErrNotInStore = errors.New("sweep: artifact not in store")

// CorruptError reports a stored artifact that failed verification:
// truncation, a content-hash mismatch, a header that does not parse, or
// an artifact filed under the wrong key. Callers treat it exactly like
// a miss — rebuild and overwrite — but it is counted separately so
// operators can tell disk rot from cold caches.
type CorruptError struct {
	Path   string // offending file
	Reason string // what failed to verify
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("sweep: corrupt artifact %s: %s", e.Path, e.Reason)
}

// DiskStore is the file-per-artifact Store: every artifact lives under
// Root as <sha256(key)>.art — the same digest the server already uses as
// the coder id, so a coder's file name is its public id. Files are
// written to a temporary name and renamed into place, so readers never
// observe a partial artifact, and a crash mid-write leaves at worst a
// stale .tmp file that the next Save of the key replaces.
//
// On-disk format: one JSON header line carrying the key, class, payload
// length, and payload SHA-256, followed by the raw payload bytes. Load
// verifies all four — a truncated or bit-flipped artifact is reported as
// *CorruptError, never returned as data. The header embeds the full key
// (not just its hash) so a file misfiled under the wrong name is also
// caught, in the spirit of code attestation: the name, the key, and the
// content must agree before a byte is served.
type DiskStore struct {
	root string
}

// artifactExt names artifact files; anything else under Root is ignored.
const artifactExt = ".art"

// artifactHeader is the JSON first line of every artifact file.
type artifactHeader struct {
	V      int    `json:"v"`
	Key    string `json:"key"`
	Class  string `json:"class"`
	Len    int    `json:"len"`
	SHA256 string `json:"sha256"`
}

const artifactVersion = 1

// OpenDiskStore opens (creating if needed) a disk store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty store root")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: store root: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

// Root returns the store's root directory.
func (d *DiskStore) Root() string { return d.root }

// path maps a cache key to its artifact file.
func (d *DiskStore) path(key string) string {
	return filepath.Join(d.root, HashBytes([]byte(key))+artifactExt)
}

// Load reads and verifies the artifact stored under key.
func (d *DiskStore) Load(key string) (string, []byte, error) {
	path := d.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil, ErrNotInStore
		}
		return "", nil, fmt.Errorf("sweep: store read: %w", err)
	}
	hdr, blob, err := parseArtifact(path, raw)
	if err != nil {
		return "", nil, err
	}
	if hdr.Key != key {
		return "", nil, &CorruptError{Path: path, Reason: "artifact filed under a different key"}
	}
	return hdr.Class, blob, nil
}

// parseHeader splits off and parses the JSON header line.
func parseHeader(path string, raw []byte) (artifactHeader, []byte, error) {
	var hdr artifactHeader
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return hdr, nil, &CorruptError{Path: path, Reason: "missing header line"}
	}
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		return hdr, nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unparseable header: %v", err)}
	}
	if hdr.V != artifactVersion {
		return hdr, nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported version %d", hdr.V)}
	}
	return hdr, raw[nl+1:], nil
}

// parseArtifact splits and verifies header + payload.
func parseArtifact(path string, raw []byte) (artifactHeader, []byte, error) {
	hdr, blob, err := parseHeader(path, raw)
	if err != nil {
		return hdr, nil, err
	}
	if len(blob) != hdr.Len {
		return hdr, nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("payload is %d bytes, header says %d", len(blob), hdr.Len)}
	}
	if sum := HashBytes(blob); sum != hdr.SHA256 {
		return hdr, nil, &CorruptError{Path: path, Reason: "payload hash mismatch"}
	}
	return hdr, blob, nil
}

// Save atomically writes blob under key: the bytes land in a temporary
// file in the same directory and are renamed over the final name, so a
// concurrent Load sees either the old artifact or the new one, never a
// prefix.
func (d *DiskStore) Save(key, class string, blob []byte) error {
	hdr, err := json.Marshal(artifactHeader{
		V: artifactVersion, Key: key, Class: class,
		Len: len(blob), SHA256: HashBytes(blob),
	})
	if err != nil {
		return fmt.Errorf("sweep: store write: %w", err)
	}
	final := d.path(key)
	tmp, err := os.CreateTemp(d.root, filepath.Base(final)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: store write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(append(hdr, '\n'), blob...)); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: store write: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("sweep: store write: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("sweep: store write: %w", err)
	}
	return nil
}

// List enumerates the store by reading every artifact header. Payloads
// are NOT verified here — that is Load's job, so warm start counts (and
// skips) corruption explicitly rather than silently missing entries. A
// file whose header does not even parse, or whose name does not match
// its embedded key's digest, cannot be attributed to any key and is
// ignored; stray temp files and foreign files likewise.
func (d *DiskStore) List() ([]Artifact, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("sweep: store list: %w", err)
	}
	var arts []Artifact
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, artifactExt) {
			continue
		}
		path := filepath.Join(d.root, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		hdr, _, err := parseHeader(path, raw)
		if err != nil {
			continue
		}
		if HashBytes([]byte(hdr.Key))+artifactExt != name {
			continue
		}
		art := Artifact{Key: hdr.Key, Class: hdr.Class, Size: hdr.Len}
		if info, err := ent.Info(); err == nil {
			art.ModTime = info.ModTime()
		}
		arts = append(arts, art)
	}
	return arts, nil
}
