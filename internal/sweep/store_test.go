package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// testObserver counts store traffic for assertions.
type testObserver struct {
	hits, misses, writes, corrupt atomic.Int64
}

func (o *testObserver) StoreHit(string)            { o.hits.Add(1) }
func (o *testObserver) StoreMiss(string)           { o.misses.Add(1) }
func (o *testObserver) StoreWrite(string)          { o.writes.Add(1) }
func (o *testObserver) StoreCorrupt(string, error) { o.corrupt.Add(1) }

var bytesCodec = Codec[[]byte]{
	Name:   "bytes",
	Encode: func(b []byte) ([]byte, error) { return b, nil },
	Decode: func(b []byte) ([]byte, error) { return b, nil },
}

func TestDiskStoreRoundTrip(t *testing.T) {
	st, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("coder", "huffman", 16)
	if _, _, err := st.Load(key); !errors.Is(err, ErrNotInStore) {
		t.Fatalf("Load of absent key: %v, want ErrNotInStore", err)
	}
	blob := []byte("trained coder bytes")
	if err := st.Save(key, "coder", blob); err != nil {
		t.Fatal(err)
	}
	class, got, err := st.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if class != "coder" || string(got) != string(blob) {
		t.Fatalf("Load = (%q, %q), want (coder, %q)", class, got, blob)
	}

	// Overwrite is atomic and replaces the payload.
	if err := st.Save(key, "coder", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, got, _ := st.Load(key); string(got) != "v2" {
		t.Fatalf("after overwrite Load = %q, want v2", got)
	}

	arts, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Key != key || arts[0].Class != "coder" {
		t.Fatalf("List = %+v, want one coder artifact for the key", arts)
	}

	// No stray temp files survive a successful Save.
	entries, _ := os.ReadDir(st.Root())
	for _, e := range entries {
		if filepath.Ext(e.Name()) != artifactExt {
			t.Errorf("stray file in store: %s", e.Name())
		}
	}
}

// TestDiskStoreCorruption: every damage mode is rejected as
// *CorruptError, and GetStored rebuilds (and re-persists) rather than
// serving the damaged bytes.
func TestDiskStoreCorruption(t *testing.T) {
	key := Key("coder", "huffman", 16)
	payload := []byte("the artifact payload, long enough to truncate meaningfully")

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated file", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped payload byte", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong key in header", func(t *testing.T, path string) {
			// Simulate a misfiled artifact: content stored under another
			// key copied onto this key's file name.
			other, err := OpenDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			otherKey := Key("coder", "bounded", 8)
			if err := other.Save(otherKey, "coder", payload); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(other.path(otherKey))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := OpenDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Save(key, "coder", payload); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, st.path(key))

			var ce *CorruptError
			if _, _, err := st.Load(key); !errors.As(err, &ce) {
				t.Fatalf("Load of damaged artifact: %v, want *CorruptError", err)
			}

			// GetStored: rejected -> rebuilt -> corrupt counted -> written back.
			c := NewCache()
			obs := &testObserver{}
			c.SetStore(st, obs)
			builds := 0
			got, err := GetStored(c, key, bytesCodec, func() ([]byte, error) {
				builds++
				return payload, nil
			})
			if err != nil || string(got) != string(payload) {
				t.Fatalf("GetStored = (%q, %v), want rebuilt payload", got, err)
			}
			if builds != 1 {
				t.Errorf("build ran %d times, want 1 (rebuild)", builds)
			}
			if n := obs.corrupt.Load(); n != 1 {
				t.Errorf("corrupt count = %d, want 1", n)
			}
			if n := obs.writes.Load(); n != 1 {
				t.Errorf("write count = %d, want 1 (write-through after rebuild)", n)
			}
			// The rebuild repaired the store: a cold cache now hits disk.
			c2 := NewCache()
			obs2 := &testObserver{}
			c2.SetStore(st, obs2)
			if _, err := GetStored(c2, key, bytesCodec, func() ([]byte, error) {
				t.Fatal("build ran despite a repaired store")
				return nil, nil
			}); err != nil {
				t.Fatal(err)
			}
			if obs2.hits.Load() != 1 {
				t.Errorf("repaired store did not serve a hit")
			}
		})
	}
}

// TestGetStoredWriteThrough: miss -> build -> persist -> later cold
// cache hits disk without building.
func TestGetStoredWriteThrough(t *testing.T) {
	st, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("rom", "id", true)
	c := NewCache()
	obs := &testObserver{}
	c.SetStore(st, obs)

	builds := 0
	build := func() ([]byte, error) { builds++; return []byte("artifact"), nil }
	if _, err := GetStored(c, key, bytesCodec, build); err != nil {
		t.Fatal(err)
	}
	// Second call through the same cache: memory hit, no store traffic.
	if _, err := GetStored(c, key, bytesCodec, build); err != nil {
		t.Fatal(err)
	}
	if builds != 1 || obs.misses.Load() != 1 || obs.writes.Load() != 1 {
		t.Fatalf("builds=%d misses=%d writes=%d, want 1/1/1",
			builds, obs.misses.Load(), obs.writes.Load())
	}

	// Fresh process (new cache, same store): served from disk.
	c2 := NewCache()
	obs2 := &testObserver{}
	c2.SetStore(st, obs2)
	got, err := GetStored(c2, key, bytesCodec, func() ([]byte, error) {
		t.Fatal("warm store must not rebuild")
		return nil, nil
	})
	if err != nil || string(got) != "artifact" {
		t.Fatalf("warm GetStored = (%q, %v)", got, err)
	}
	if obs2.hits.Load() != 1 {
		t.Errorf("hit count = %d, want 1", obs2.hits.Load())
	}
}

// TestGetStoredClassMismatch: a key collision across artifact types is
// treated as corruption, not decoded as the wrong type.
func TestGetStoredClassMismatch(t *testing.T) {
	st, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("shared")
	if err := st.Save(key, "other-class", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	obs := &testObserver{}
	c.SetStore(st, obs)
	builds := 0
	if _, err := GetStored(c, key, bytesCodec, func() ([]byte, error) {
		builds++
		return []byte("rebuilt"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if builds != 1 || obs.corrupt.Load() != 1 {
		t.Fatalf("builds=%d corrupt=%d, want 1/1", builds, obs.corrupt.Load())
	}
}

// TestCacheTransientErrorsRetry: a cancelled/deadline/Transient build
// failure is delivered to its waiters but not memoized — the next caller
// rebuilds. Deterministic failures stay cached.
func TestCacheTransientErrorsRetry(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"context.Canceled", context.Canceled},
		{"wrapped deadline", fmt.Errorf("store write: %w", context.DeadlineExceeded)},
		{"explicit Transient", Transient(errors.New("disk full"))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache()
			builds := 0
			_, err := Get(c, "k", func() (int, error) { builds++; return 0, tc.err })
			if !errors.Is(err, tc.err) && err.Error() != tc.err.Error() {
				t.Fatalf("first Get = %v, want %v", err, tc.err)
			}
			v, err := Get(c, "k", func() (int, error) { builds++; return 7, nil })
			if err != nil || v != 7 {
				t.Fatalf("retry Get = (%d, %v), want (7, nil)", v, err)
			}
			if builds != 2 {
				t.Fatalf("build ran %d times, want 2 (transient failure retried)", builds)
			}
		})
	}

	t.Run("deterministic error stays cached", func(t *testing.T) {
		c := NewCache()
		builds := 0
		permanent := errors.New("malformed corpus")
		for i := 0; i < 3; i++ {
			if _, err := Get(c, "k", func() (int, error) { builds++; return 0, permanent }); !errors.Is(err, permanent) {
				t.Fatalf("Get = %v, want the cached permanent error", err)
			}
		}
		if builds != 1 {
			t.Fatalf("build ran %d times, want 1 (permanent failure cached)", builds)
		}
	})
}

// TestCacheSeed: seeding registers an artifact without a build, and
// never clobbers an existing entry.
func TestCacheSeed(t *testing.T) {
	c := NewCache()
	c.Seed("k", 42)
	v, err := Get(c, "k", func() (int, error) {
		t.Fatal("build ran despite a seeded entry")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Get after Seed = (%d, %v), want (42, nil)", v, err)
	}
	c.Seed("k", 99) // existing entry wins
	if v, _ := Get(c, "k", func() (int, error) { return 0, nil }); v != 42 {
		t.Fatalf("Seed clobbered a live entry: got %d, want 42", v)
	}
}

// TestGetStoredSaveFailureIsNotFatal: a store that cannot persist does
// not fail the build — durability is lost, the artifact is not.
func TestGetStoredSaveFailureIsNotFatal(t *testing.T) {
	c := NewCache()
	c.SetStore(failingStore{}, nil)
	v, err := GetStored(c, "k", bytesCodec, func() ([]byte, error) {
		return []byte("built"), nil
	})
	if err != nil || string(v) != "built" {
		t.Fatalf("GetStored with failing store = (%q, %v), want (built, nil)", v, err)
	}
}

// failingStore errors on every operation.
type failingStore struct{}

func (failingStore) Load(string) (string, []byte, error) { return "", nil, ErrNotInStore }
func (failingStore) Save(string, string, []byte) error   { return errors.New("disk full") }
func (failingStore) List() ([]Artifact, error)           { return nil, errors.New("unlistable") }
