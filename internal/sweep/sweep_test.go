package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ccrp/internal/metrics"
)

// TestMapOrdersResultsByIndex: results come back in index order even when
// completion order is reversed.
func TestMapOrdersResultsByIndex(t *testing.T) {
	e := &Engine{Workers: 8}
	n := 16
	out, err := Map(context.Background(), e, n, func(_ context.Context, i int, _ Obs) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond) // later indices finish first
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapSequentialFallback: a nil engine and -j 1 run on the calling
// goroutine count's worth of workers and still produce ordered output.
func TestMapSequentialFallback(t *testing.T) {
	for _, e := range []*Engine{nil, {Workers: 1}} {
		out, err := Map(context.Background(), e, 5, func(_ context.Context, i int, _ Obs) (int, error) {
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i {
				t.Errorf("out[%d] = %d", i, v)
			}
		}
	}
}

// TestMapBoundsConcurrency: no more than Workers points run at once.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), &Engine{Workers: workers}, 24,
		func(_ context.Context, i int, _ Obs) (int, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapPanicConfined: a panicking point becomes that point's error;
// every other point still runs.
func TestMapPanicConfined(t *testing.T) {
	var ran atomic.Int64
	n := 10
	out, err := Map(context.Background(), &Engine{Workers: 4}, n,
		func(_ context.Context, i int, _ Obs) (int, error) {
			if i == 3 {
				panic("boom")
			}
			ran.Add(1)
			return i, nil
		})
	if err == nil {
		t.Fatal("want panic error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Point != 3 || fmt.Sprint(pe.Value) != "boom" {
		t.Fatalf("err = %v, want PanicError{Point: 3, Value: boom}", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if got := ran.Load(); got != int64(n-1) {
		t.Errorf("%d points ran, want %d (panic must not kill the sweep)", got, n-1)
	}
	if out[4] != 4 {
		t.Errorf("out[4] = %d, want 4", out[4])
	}
}

// TestMapReportsLowestIndexError: with several failed points the reported
// error is the lowest-indexed one, making the error deterministic under
// any worker count.
func TestMapReportsLowestIndexError(t *testing.T) {
	wantErr := errors.New("bad point")
	_, err := Map(context.Background(), &Engine{Workers: 8}, 12,
		func(_ context.Context, i int, _ Obs) (int, error) {
			if i == 7 || i == 2 || i == 11 {
				return 0, fmt.Errorf("%w %d", wantErr, i)
			}
			return i, nil
		})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	want := "sweep: point 2 of 12"
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("err = %q, want prefix %q", got, want)
	}
}

// TestMapCancellation: cancelling the context stops unstarted points and
// surfaces ctx.Err.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	n := 100
	_, err := Map(ctx, &Engine{Workers: 2}, n,
		func(ctx context.Context, i int, _ Obs) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s >= int64(n) {
		t.Errorf("all %d points started despite cancellation", s)
	}
}

// TestMapMergesWorkerRegistries: counters recorded by per-worker
// registries merge into the engine registry with sequential totals.
func TestMapMergesWorkerRegistries(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := metrics.New()
		e := &Engine{Workers: workers, Registry: reg}
		n := 37
		_, err := Map(context.Background(), e, n,
			func(_ context.Context, i int, obs Obs) (int, error) {
				if obs.Registry == nil {
					t.Error("point got no per-worker registry")
				}
				if obs.Registry == reg {
					t.Error("point got the shared target registry (data race)")
				}
				obs.Registry.Counter("points_total", "").Inc()
				obs.Registry.Counter("weight_total", "").Add(uint64(i))
				obs.Registry.Histogram("h", "", []float64{10, 100}).Observe(float64(i))
				obs.Registry.CounterVec("by_mod", "", "m").WithInt(i % 3).Inc()
				return i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("points_total", "").Value(); got != uint64(n) {
			t.Errorf("workers=%d: points_total = %d, want %d", workers, got, n)
		}
		if got := reg.Counter("weight_total", "").Value(); got != uint64(n*(n-1)/2) {
			t.Errorf("workers=%d: weight_total = %d, want %d", workers, got, n*(n-1)/2)
		}
		if got := reg.Histogram("h", "", []float64{10, 100}).Count(); got != uint64(n) {
			t.Errorf("workers=%d: histogram count = %d, want %d", workers, got, n)
		}
		vec := reg.CounterVec("by_mod", "", "m")
		var sum uint64
		for m := 0; m < 3; m++ {
			sum += vec.WithInt(m).Value()
		}
		if sum != uint64(n) {
			t.Errorf("workers=%d: vec sum = %d, want %d", workers, sum, n)
		}
	}
}

// countingSink counts Emit calls; not concurrency-safe on purpose, so the
// race detector verifies the engine serializes it.
type countingSink struct {
	events int
	closed bool
}

func (s *countingSink) Emit(metrics.Event) { s.events++ }
func (s *countingSink) Close() error       { s.closed = true; return nil }

// TestMapSerializesSink: a single-threaded sink shared by many workers
// receives every event (run under -race to prove serialization).
func TestMapSerializesSink(t *testing.T) {
	sink := &countingSink{}
	n := 50
	_, err := Map(context.Background(), &Engine{Workers: 8, Sink: sink}, n,
		func(_ context.Context, i int, obs Obs) (int, error) {
			if obs.Sink == nil {
				t.Error("point got no sink")
			}
			obs.Sink.Emit(metrics.Event{Type: "test", Seq: uint64(i)})
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sink.events != n {
		t.Errorf("sink saw %d events, want %d", sink.events, n)
	}
	if sink.closed {
		t.Error("engine closed the caller's sink")
	}
}

// TestWorkerCount pins the pool-size resolution rules.
func TestWorkerCount(t *testing.T) {
	if got := (*Engine)(nil).workerCount(10); got != 1 {
		t.Errorf("nil engine workers = %d, want 1", got)
	}
	if got := (&Engine{}).workerCount(1000); got != runtime.NumCPU() {
		t.Errorf("default workers = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := (&Engine{Workers: 64}).workerCount(3); got != 3 {
		t.Errorf("workers capped = %d, want 3", got)
	}
}

// TestMapEmpty: a zero-point sweep returns immediately.
func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), &Engine{Workers: 4}, 0,
		func(_ context.Context, i int, _ Obs) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}
