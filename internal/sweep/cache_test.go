package sweep

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlight: many concurrent requests for one key run the
// build exactly once and all observe the same artifact.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var builds atomic.Int64
	var wg sync.WaitGroup
	results := make([]*int, 64)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Get(c, "the-key", func() (*int, error) {
				builds.Add(1)
				n := 42
				return &n, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Errorf("build ran %d times, want 1", b)
	}
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatal("callers observed different artifact instances")
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d keys, want 1", c.Len())
	}
}

// TestCacheDistinctKeys: different keys build independently.
func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache()
	var builds atomic.Int64
	for _, key := range []string{"a", "b", "a", "b"} {
		if _, err := Get(c, key, func() (string, error) {
			builds.Add(1)
			return key, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b := builds.Load(); b != 2 {
		t.Errorf("builds = %d, want 2", b)
	}
}

// TestCacheCachesErrors: a failed build is as cached as a successful one
// — deterministic builders fail deterministically.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	wantErr := errors.New("train failed")
	var builds atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := Get(c, "k", func() (int, error) {
			builds.Add(1)
			return 0, wantErr
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("err = %v", err)
		}
	}
	if b := builds.Load(); b != 1 {
		t.Errorf("failing build ran %d times, want 1", b)
	}
}

// TestCacheBuildPanic: a panicking build releases waiters with an error
// instead of deadlocking them, and the panic is identifiable.
func TestCacheBuildPanic(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = Get(c, "k", func() (int, error) { panic("corrupt corpus") })
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		var pe *PanicError
		if err == nil || !errors.As(err, &pe) {
			t.Fatalf("caller %d: err = %v, want PanicError", g, err)
		}
	}
}

// TestCacheTypeMismatch: one key requested at two types is an error, not
// a silent corruption.
func TestCacheTypeMismatch(t *testing.T) {
	c := NewCache()
	if _, err := Get(c, "k", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(c, "k", func() (string, error) { return "", nil }); err == nil ||
		!strings.Contains(err.Error(), "holds int, not string") {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

// TestKeyContentAddressing pins the Key contract: byte content decides
// equality, part boundaries are unambiguous, and every part matters.
func TestKeyContentAddressing(t *testing.T) {
	a1 := []byte("corpus bytes")
	a2 := append([]byte(nil), a1...)
	if Key("rom", a1) != Key("rom", a2) {
		t.Error("identical content produced different keys")
	}
	if Key("rom", a1) == Key("rom", []byte("corpus bytes!")) {
		t.Error("different content produced one key")
	}
	if Key("ab") == Key("a", "b") {
		t.Error("part boundaries are ambiguous")
	}
	if Key("huffman", 16, a1) == Key("huffman", 8, a1) {
		t.Error("config part ignored")
	}
	if Key("x", true) == Key("x", false) {
		t.Error("bool part ignored")
	}
}
