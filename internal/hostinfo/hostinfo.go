// Package hostinfo collects the host execution environment — Go
// toolchain, CPU topology, and (where readable) the CPU model — so that
// benchmark trajectory documents and service health reports carry enough
// metadata to be compared across machines.
package hostinfo

import (
	"bufio"
	"os"
	"runtime"
	"strings"
	"sync"
)

// Info describes the host a measurement ran on. All fields are
// best-effort: CPUModel is empty when the platform offers no readable
// source (non-Linux, restricted /proc).
type Info struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Collect gathers the host description. The result is computed once per
// process: every field is stable for the process lifetime except
// GOMAXPROCS, which is re-read on each call so runtime adjustments show
// up in later reports.
func Collect() Info {
	once.Do(func() {
		cached = Info{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			CPUModel:  cpuModel(),
		}
	})
	info := cached
	info.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return info
}

// cpuModel reads the CPU model string where the platform exposes one.
func cpuModel() string {
	if runtime.GOOS != "linux" {
		return ""
	}
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// x86 names the model "model name"; several arm64 kernels only
		// provide "Hardware" or per-CPU "CPU part" lines — take the
		// first human-readable one we find.
		for _, key := range []string{"model name", "Hardware"} {
			if rest, ok := strings.CutPrefix(line, key); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
		}
	}
	return ""
}
