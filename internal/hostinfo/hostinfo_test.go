package hostinfo

import (
	"runtime"
	"testing"
)

func TestCollect(t *testing.T) {
	info := Collect()
	if info.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.GOOS != runtime.GOOS || info.GOARCH != runtime.GOARCH {
		t.Errorf("GOOS/GOARCH = %s/%s, want %s/%s", info.GOOS, info.GOARCH, runtime.GOOS, runtime.GOARCH)
	}
	if info.NumCPU < 1 {
		t.Errorf("NumCPU = %d, want >= 1", info.NumCPU)
	}
	if info.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d, want >= 1", info.GOMAXPROCS)
	}
}

func TestCollectStable(t *testing.T) {
	a, b := Collect(), Collect()
	if a != b {
		t.Errorf("Collect not stable: %+v vs %+v", a, b)
	}
}
