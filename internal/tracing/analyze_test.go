package tracing

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// synthetic trace set: two requests and one orphan, with known stage
// durations so every aggregate is checkable by hand.
func analyzerFixture(t *testing.T) []Record {
	t.Helper()
	var buf bytes.Buffer
	tr := New(Config{Sink: NewJSONLSink(&buf)})
	mk := func(rootDur time.Duration, stages map[string]time.Duration) {
		root := tr.Start("request")
		for stage, d := range stages {
			c := root.Child(stage)
			c.start = c.start.Add(-d)
			c.End()
		}
		root.start = root.start.Add(-rootDur)
		root.End()
	}
	mk(100*time.Millisecond, map[string]time.Duration{
		"decode_body": 10 * time.Millisecond,
		"compress":    85 * time.Millisecond,
	})
	mk(50*time.Millisecond, map[string]time.Duration{
		"decode_body": 5 * time.Millisecond,
		"compress":    40 * time.Millisecond,
	})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAnalyzeStageAttribution(t *testing.T) {
	recs := analyzerFixture(t)
	a := Analyze(recs, 1)
	if a.Spans != 6 || a.Traces != 2 || a.Roots != 2 {
		t.Fatalf("spans/traces/roots = %d/%d/%d, want 6/2/2", a.Spans, a.Traces, a.Roots)
	}
	byStage := map[string]StageStat{}
	for _, s := range a.Stages {
		byStage[s.Stage] = s
	}
	cmp := byStage["compress"]
	if cmp.Count != 2 {
		t.Fatalf("compress count = %d, want 2", cmp.Count)
	}
	if cmp.TotalMS < 124 || cmp.TotalMS > 126 {
		t.Errorf("compress total = %g ms, want ~125", cmp.TotalMS)
	}
	// Leaf spans: self == total; critical path passes through compress in
	// both traces, so crit ≈ total too.
	if math.Abs(cmp.SelfMS-cmp.TotalMS) > 0.01 {
		t.Errorf("compress self = %g, total = %g; leaves must match", cmp.SelfMS, cmp.TotalMS)
	}
	if math.Abs(cmp.CritMS-cmp.TotalMS) > 0.01 {
		t.Errorf("compress crit = %g, want ~%g", cmp.CritMS, cmp.TotalMS)
	}
	// The request root's self time is root minus children: ~5ms both
	// times. decode_body never sits on the critical path (compress is
	// always longer).
	if dec := byStage["decode_body"]; dec.CritMS != 0 {
		t.Errorf("decode_body crit = %g, want 0", dec.CritMS)
	}
	req := byStage["request"]
	if req.SelfMS < 8 || req.SelfMS > 12 {
		t.Errorf("request self = %g ms, want ~10", req.SelfMS)
	}
	// Stages sort descending by critical-path ownership: compress first.
	if a.Stages[0].Stage != "compress" {
		t.Errorf("stage order = %q first, want compress", a.Stages[0].Stage)
	}

	// Coverage: (95/100 + 45/50) / 2 = 0.925.
	if a.Coverage.Roots != 2 {
		t.Fatalf("coverage roots = %d, want 2", a.Coverage.Roots)
	}
	if math.Abs(a.Coverage.MeanFrac-0.925) > 0.01 {
		t.Errorf("coverage mean = %g, want ~0.925", a.Coverage.MeanFrac)
	}

	if len(a.Slowest) != 1 || a.Slowest[0].DurMS < 99 {
		t.Fatalf("slowest = %+v, want the 100ms trace", a.Slowest)
	}
	if a.Slowest[0].Stages[0].Stage != "compress" {
		t.Errorf("slowest breakdown leads with %q, want compress", a.Slowest[0].Stages[0].Stage)
	}
}

func TestAnalyzeOrphansBecomeRoots(t *testing.T) {
	recs := []Record{
		{Trace: "t1", Span: "a", Parent: "missing", Stage: "compress", DurNS: int64(time.Millisecond)},
	}
	a := Analyze(recs, 0)
	if a.Roots != 1 {
		t.Fatalf("orphan roots = %d, want 1", a.Roots)
	}
	if a.Stages[0].Stage != "compress" || a.Stages[0].CritMS == 0 {
		t.Error("orphan span lost its attribution")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 5)
	if a.Spans != 0 || len(a.Stages) != 0 || len(a.Slowest) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}
