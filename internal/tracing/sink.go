package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Record is the flat JSONL export shape of one finished span. Parent is
// empty on root spans; durations and start times are nanoseconds so
// microsecond-scale stages (coder-cache hits, line-cache probes) still
// attribute correctly.
type Record struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Stage   string         `json:"stage"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Err     string         `json:"err,omitempty"`
}

// DurMS returns the span duration in milliseconds.
func (r Record) DurMS() float64 { return float64(r.DurNS) / 1e6 }

// SpanSink consumes finished spans. Implementations must be safe for
// concurrent Emit calls: unlike the single-threaded simulators behind
// metrics.EventSink, spans end on whatever request goroutine ran the
// stage.
type SpanSink interface {
	Emit(rec Record)
	Close() error
}

// JSONLSink writes one JSON object per span through a buffer, the span
// twin of metrics.JSONLSink with the serialization of metrics.SyncSink
// built in (request goroutines emit concurrently by design).
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a buffered, mutex-serialized JSONL encoder. If
// w is also an io.Closer (a file), Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the record; the first write error sticks and is returned by
// Close.
func (s *JSONLSink) Emit(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Close flushes the buffer and closes the underlying writer if it is a
// Closer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		cerr := s.c.Close()
		if s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	return s.err
}

// ReadRecords parses a span JSONL stream (ccrp-spans' input). Blank lines
// are skipped; a malformed line fails with its line number so truncated
// files point at the damage.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("tracing: span record on line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
