// Package tracing is the request-scoped attribution layer of the stack:
// spans with a 128-bit trace id, a stage name, and a wall-clock duration,
// propagated through context.Context and exported as JSONL records in the
// style of internal/metrics' event sinks.
//
// The design mirrors the paper's experimental method one level up: where
// internal/metrics decomposes a simulated run into per-fetch event sums
// (CLB hits, LAT fetches, refill cycles), tracing decomposes a *served
// request* into per-stage wall-time sums — decode the body, resolve or
// train the coder, compress or decompress the blocks, queue for and run
// the simulator, encode the response — so an end-to-end p95 can be
// attributed to the stage that owns it.
//
// Disabled tracing is free by construction, exactly like a nil
// metrics.Registry: a nil *Tracer starts nil spans, and every method of a
// nil *Span is an allocation-free no-op (verified by
// TestDisabledSpansAllocFree), so instrumented paths never branch on an
// enable flag. The package depends only on the standard library.
package tracing

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 128-bit identifier shared by every span of one request
// or sweep point. The zero value is invalid and never generated.
type TraceID [16]byte

// NewTraceID returns a random trace id.
func NewTraceID() TraceID {
	var id TraceID
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * i))
		id[8+i] = byte(lo >> (8 * i))
	}
	if id.IsZero() {
		id[0] = 1 // one chance in 2^128; keep the zero value invalid anyway
	}
	return id
}

// IsZero reports whether the id is the invalid zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		if err == nil {
			err = hex.ErrLength
		}
		return TraceID{}, err
	}
	copy(id[:], b)
	return id, nil
}

// SpanID identifies one span within a process run.
type SpanID uint64

// String renders the id as 16 hex digits; the zero id (no parent) renders
// empty, which the JSON export omits.
func (id SpanID) String() string {
	if id == 0 {
		return ""
	}
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(id) >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// Config tunes a Tracer. The zero value enables tail capture with default
// bounds and no span export.
type Config struct {
	// Sink receives one Record per finished span. nil disables export;
	// tail capture still runs.
	Sink SpanSink
	// TailSlow bounds how many of the slowest root spans keep their full
	// span trees in memory. 0 selects 16; negative disables.
	TailSlow int
	// TailErrored bounds how many recent errored root spans keep their
	// trees. 0 selects 16; negative disables.
	TailErrored int
}

// Tracer starts spans and owns their export. A nil *Tracer is the
// disabled state: Start returns a nil span and nothing allocates.
type Tracer struct {
	sink SpanSink
	tail *tail
	ids  atomic.Uint64 // span-id counter; seeded randomly per tracer
}

// New builds a Tracer. Tail capture is always on (bounded by the config)
// so the slowest and errored requests keep full span trees even when no
// sink is attached.
func New(cfg Config) *Tracer {
	t := &Tracer{sink: cfg.Sink, tail: newTail(cfg.TailSlow, cfg.TailErrored)}
	// Random base keeps span ids from colliding across restarts in
	// concatenated JSONL files; the low bits stay a counter for cheap
	// uniqueness within the run.
	t.ids.Store(rand.Uint64() << 20)
	return t
}

// Close flushes and closes the sink, if any.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}

// nextSpanID hands out process-unique span ids.
func (t *Tracer) nextSpanID() SpanID { return SpanID(t.ids.Add(1)) }

// Start begins a new trace rooted at a span named stage. Returns nil on a
// nil tracer.
func (t *Tracer) Start(stage string) *Span {
	return t.StartTrace(NewTraceID(), stage)
}

// StartTrace begins a new trace with a caller-chosen id (the server picks
// the id before starting the span so the response header and access log
// can carry it even when tracing is disabled).
func (t *Tracer) StartTrace(id TraceID, stage string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		trace:  id,
		id:     t.nextSpanID(),
		stage:  stage,
		start:  time.Now(),
	}
}

// attrKind discriminates attribute values without boxing them.
type attrKind uint8

const (
	attrStr attrKind = iota
	attrInt
	attrFloat
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Value returns the attribute value as the JSON-facing any.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	default:
		return a.s
	}
}

// Span is one named stage of a trace. Spans form a tree: Child spans hang
// off their parent until the root ends, which is what lets tail capture
// retain whole trees. All methods are allocation-free no-ops on a nil
// receiver.
type Span struct {
	tracer *Tracer
	trace  TraceID
	parent SpanID
	id     SpanID
	stage  string
	start  time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	errMsg   string
	attrs    []Attr
	children []*Span
}

// TraceID returns the span's trace id; the zero id on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// Stage returns the span's stage name; empty on a nil span.
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// Child starts a sub-span named stage. Returns nil on a nil receiver, so
// instrumentation chains through disabled tracing for free.
func (s *Span) Child(stage string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		trace:  s.trace,
		parent: s.id,
		id:     s.tracer.nextSpanID(),
		stage:  stage,
		start:  time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span with a string value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: value})
	s.mu.Unlock()
}

// SetAttrFloat annotates the span with a float value.
func (s *Span) SetAttrFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: value})
	s.mu.Unlock()
}

// SetError marks the span (and so its trace, for tail capture) failed.
// A nil error or receiver is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End stamps the duration, emits the span's Record to the sink, and — for
// root spans — offers the finished tree to tail capture. Double End is a
// no-op, so deferred Ends compose with early explicit ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()

	if s.tracer.sink != nil {
		s.tracer.sink.Emit(s.record())
	}
	if s.parent == 0 {
		s.tracer.tail.offer(s)
	}
}

// record snapshots the span as its flat export shape.
func (s *Span) record() Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := Record{
		Trace:   s.trace.String(),
		Span:    s.id.String(),
		Parent:  s.parent.String(),
		Stage:   s.stage,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(s.dur),
		Err:     s.errMsg,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value()
		}
	}
	return rec
}

// errored reports whether the span or any descendant recorded an error.
func (s *Span) errored() bool {
	s.mu.Lock()
	failed := s.errMsg != ""
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if failed {
		return true
	}
	for _, c := range kids {
		if c.errored() {
			return true
		}
	}
	return false
}

// duration returns the recorded duration (zero until End).
func (s *Span) duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// tree snapshots the span and its descendants as nested records.
func (s *Span) tree() *TreeNode {
	n := &TreeNode{Record: s.record()}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.tree())
	}
	return n
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying s. A nil span returns ctx unchanged,
// so disabled tracing adds no context allocation.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when ctx carries none —
// and every method on that nil span no-ops, so callers never check.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
