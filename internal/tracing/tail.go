package tracing

import (
	"sort"
	"sync"
	"time"
)

// Default tail-capture bounds: how many slowest and errored root-span
// trees a tracer retains in memory.
const (
	DefaultTailSlow    = 16
	DefaultTailErrored = 16
)

// TreeNode is one span with its children, the nested shape tail capture
// retains and /debug/traces serves.
type TreeNode struct {
	Record
	Children []*TreeNode `json:"children,omitempty"`
}

// TailSnapshot is the exported state of tail capture: the slowest root
// trees (descending by duration) and the most recent errored ones.
type TailSnapshot struct {
	Slow    []*TreeNode `json:"slow"`
	Errored []*TreeNode `json:"errored"`
}

// tail retains full span trees for the slowest N and the most recently
// errored root spans. It is the always-on part of the tracer: even with
// no sink attached, the operator can ask "what did the worst requests
// spend their time on" after the fact.
type tail struct {
	mu      sync.Mutex
	slowCap int
	errCap  int
	slow    []*TreeNode // kept sorted descending by DurNS
	errored []*TreeNode // ring of the most recent errored roots
}

// newTail builds tail capture with the configured bounds (0 selects the
// defaults, negative disables that side).
func newTail(slowCap, errCap int) *tail {
	if slowCap == 0 {
		slowCap = DefaultTailSlow
	}
	if errCap == 0 {
		errCap = DefaultTailErrored
	}
	if slowCap < 0 {
		slowCap = 0
	}
	if errCap < 0 {
		errCap = 0
	}
	return &tail{slowCap: slowCap, errCap: errCap}
}

// offer considers a finished root span for retention. The tree is
// snapshotted once and shared between the slow and errored sides (both
// are read-only after capture).
func (t *tail) offer(root *Span) {
	if t == nil || (t.slowCap == 0 && t.errCap == 0) {
		return
	}
	failed := root.errored()
	dur := root.duration()

	t.mu.Lock()
	wantSlow := t.slowCap > 0 &&
		(len(t.slow) < t.slowCap || dur > time.Duration(t.slow[len(t.slow)-1].DurNS))
	wantErr := t.errCap > 0 && failed
	t.mu.Unlock()
	if !wantSlow && !wantErr {
		return
	}

	// Snapshot outside the lock: tree walking takes span locks and its
	// cost should not serialize other roots ending.
	tree := root.tree()

	t.mu.Lock()
	defer t.mu.Unlock()
	if wantSlow {
		i := sort.Search(len(t.slow), func(i int) bool { return t.slow[i].DurNS < tree.DurNS })
		t.slow = append(t.slow, nil)
		copy(t.slow[i+1:], t.slow[i:])
		t.slow[i] = tree
		if len(t.slow) > t.slowCap {
			t.slow = t.slow[:t.slowCap]
		}
	}
	if wantErr {
		t.errored = append(t.errored, tree)
		if len(t.errored) > t.errCap {
			t.errored = t.errored[1:]
		}
	}
}

// TailSnapshot returns the retained trees. Safe on a nil tracer (empty
// snapshot), and the returned trees are immutable shared state — callers
// must not modify them.
func (t *Tracer) TailSnapshot() TailSnapshot {
	snap := TailSnapshot{Slow: []*TreeNode{}, Errored: []*TreeNode{}}
	if t == nil || t.tail == nil {
		return snap
	}
	t.tail.mu.Lock()
	defer t.tail.mu.Unlock()
	snap.Slow = append(snap.Slow, t.tail.slow...)
	snap.Errored = append(snap.Errored, t.tail.errored...)
	return snap
}
