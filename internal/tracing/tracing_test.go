package tracing

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledSpansAllocFree is the contract the instrumented request
// paths rely on: a nil tracer starts nil spans whose methods neither
// allocate nor panic, mirroring metrics.TestDisabledInstrumentsAllocFree.
func TestDisabledSpansAllocFree(t *testing.T) {
	var tr *Tracer // disabled
	ctx := context.Background()
	if sp := tr.Start("request"); sp != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("request")
		child := sp.Child("stage")
		child.SetAttr("k", "v")
		child.SetAttrInt("n", 7)
		child.SetAttrFloat("f", 1.5)
		child.SetError(errDisabled)
		child.End()
		sp.End()
		if ContextWith(ctx, sp) != ctx {
			t.Fatal("nil span must not wrap the context")
		}
		FromContext(ctx).Child("again").End()
	}); n != 0 {
		t.Errorf("disabled spans allocated %v times per run, want 0", n)
	}
	if tr.TailSnapshot().Slow == nil {
		t.Error("nil tracer snapshot must be empty, not nil slices")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
}

var errDisabled = errors.New("boom")

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("trace id %q is not 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want original", s, back, err)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Error("ParseTraceID must reject non-hex input")
	}
	if NewTraceID() == id {
		t.Error("consecutive trace ids collided")
	}
}

func TestSpanTreeEmission(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(Config{Sink: sink})

	root := tr.Start("request")
	root.SetAttr("route", "/v1/compress")
	dec := root.Child("decode_body")
	dec.SetAttrInt("bytes", 128)
	dec.End()
	cmp := root.Child("compress")
	cmp.SetError(errors.New("bad line"))
	cmp.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("emitted %d records, want 3", len(recs))
	}
	// Children emit before the root (End order), roots last.
	byStage := map[string]Record{}
	for _, r := range recs {
		byStage[r.Stage] = r
		if r.Trace != root.TraceID().String() {
			t.Errorf("span %q trace = %q, want %q", r.Stage, r.Trace, root.TraceID())
		}
	}
	rr := byStage["request"]
	if rr.Parent != "" {
		t.Errorf("root has parent %q", rr.Parent)
	}
	if rr.Attrs["route"] != "/v1/compress" {
		t.Errorf("root attrs = %v", rr.Attrs)
	}
	if byStage["decode_body"].Parent != rr.Span {
		t.Errorf("child parent = %q, want root %q", byStage["decode_body"].Parent, rr.Span)
	}
	// JSON numbers decode as float64.
	if v, ok := byStage["decode_body"].Attrs["bytes"].(float64); !ok || v != 128 {
		t.Errorf("int attr = %v", byStage["decode_body"].Attrs["bytes"])
	}
	if byStage["compress"].Err != "bad line" {
		t.Errorf("errored span Err = %q", byStage["compress"].Err)
	}
	if rr.DurNS < byStage["decode_body"].DurNS {
		t.Error("root duration shorter than its child")
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Sink: NewJSONLSink(&buf)})
	sp := tr.Start("request")
	sp.End()
	sp.End()
	tr.Close()
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("double End emitted %d records, want 1", len(recs))
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{})
	sp := tr.Start("request")
	ctx := ContextWith(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	child := FromContext(ctx).Child("stage")
	if child.TraceID() != sp.TraceID() {
		t.Error("child did not inherit the trace id")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context must yield a nil span")
	}
	//lint:ignore SA1012 nil-tolerance is part of the API contract
	if FromContext(nil) != nil {
		t.Error("nil context must yield a nil span")
	}
}

// TestTailCapture: the slowest N roots and every errored root keep full
// trees, bounded, sorted, and available with no sink attached.
func TestTailCapture(t *testing.T) {
	tr := New(Config{TailSlow: 2, TailErrored: 2})
	mkRoot := func(d time.Duration, fail bool) {
		sp := tr.Start("request")
		child := sp.Child("stage")
		if fail {
			child.SetError(errors.New("kaboom"))
		}
		child.End()
		// Backdate the start instead of sleeping so the test is fast and
		// exact about ordering.
		sp.start = sp.start.Add(-d)
		sp.End()
	}
	mkRoot(10*time.Millisecond, false)
	mkRoot(30*time.Millisecond, false)
	mkRoot(20*time.Millisecond, false)
	mkRoot(1*time.Millisecond, true)
	mkRoot(2*time.Millisecond, true)
	mkRoot(3*time.Millisecond, true)

	snap := tr.TailSnapshot()
	if len(snap.Slow) != 2 {
		t.Fatalf("retained %d slow trees, want 2", len(snap.Slow))
	}
	if snap.Slow[0].DurNS < snap.Slow[1].DurNS {
		t.Error("slow trees not sorted descending")
	}
	if snap.Slow[0].DurNS < int64(30*time.Millisecond) {
		t.Errorf("slowest retained = %d ns, want the 30ms root", snap.Slow[0].DurNS)
	}
	if len(snap.Slow[0].Children) != 1 || snap.Slow[0].Children[0].Stage != "stage" {
		t.Error("tail capture dropped the span tree")
	}
	if len(snap.Errored) != 2 {
		t.Fatalf("retained %d errored trees, want 2 (bounded ring)", len(snap.Errored))
	}
	if snap.Errored[0].Children[0].Err != "kaboom" {
		t.Error("errored tree lost its error")
	}
}

// TestConcurrentSpanSink hammers one tracer and sink from many goroutines
// (run under -race in CI): full trees per goroutine, shared JSONL sink,
// concurrent tail capture.
func TestConcurrentSpanSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Sink: NewJSONLSink(&buf)})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("request")
				sp.SetAttrInt("worker", int64(w))
				c1 := sp.Child("decode_body")
				c1.End()
				c2 := sp.Child("compress")
				if i%7 == 0 {
					c2.SetError(fmt.Errorf("worker %d op %d", w, i))
				}
				c2.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := workers * perWorker * 3; len(recs) != want {
		t.Fatalf("emitted %d records, want %d", len(recs), want)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Span] {
			t.Fatalf("duplicate span id %q", r.Span)
		}
		seen[r.Span] = true
	}
	snap := tr.TailSnapshot()
	if len(snap.Slow) != DefaultTailSlow {
		t.Errorf("tail retained %d slow trees, want %d", len(snap.Slow), DefaultTailSlow)
	}
	if len(snap.Errored) != DefaultTailErrored {
		t.Errorf("tail retained %d errored trees, want %d", len(snap.Errored), DefaultTailErrored)
	}
}

func TestReadRecordsRejectsGarbage(t *testing.T) {
	_, err := ReadRecords(strings.NewReader("{\"trace\":\"a\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse failure", err)
	}
}
