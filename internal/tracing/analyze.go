package tracing

import (
	"sort"
)

// StageStat aggregates every span of one stage name across an analyzed
// record set.
type StageStat struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	// Duration percentiles and extrema, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// TotalMS sums every span's duration; SelfMS subtracts child time, so
	// stages that merely contain other stages do not double-count.
	TotalMS float64 `json:"total_ms"`
	SelfMS  float64 `json:"self_ms"`
	// CritMS is this stage's self time summed along each trace's critical
	// path (root to leaf, always descending into the longest child); the
	// column answers "which stage owns the end-to-end time".
	CritMS float64 `json:"crit_ms"`
	Errors int     `json:"errors"`
}

// SlowTrace summarizes one of the slowest root spans for outlier
// correlation against client-side latency reports.
type SlowTrace struct {
	Trace  string       `json:"trace"`
	Stage  string       `json:"stage"`
	DurMS  float64      `json:"dur_ms"`
	Err    string       `json:"err,omitempty"`
	Stages []StageShare `json:"stages,omitempty"` // direct children, largest first
}

// StageShare is one direct child's contribution to a slow trace.
type StageShare struct {
	Stage string  `json:"stage"`
	DurMS float64 `json:"dur_ms"`
}

// Coverage reports how much of the root spans' time the instrumented
// stages account for: the mean and minimum ratio of direct-child time to
// root time over every root that has children. A mean near 1.0 means the
// stage decomposition explains the end-to-end latency; a low value names
// uninstrumented time.
type Coverage struct {
	Roots    int     `json:"roots"`
	MeanFrac float64 `json:"mean_frac"`
	MinFrac  float64 `json:"min_frac"`
}

// Analysis is ccrp-spans' aggregation of a span record set.
type Analysis struct {
	Spans    int         `json:"spans"`
	Traces   int         `json:"traces"`
	Roots    int         `json:"roots"`
	Stages   []StageStat `json:"stages"` // descending by critical-path time
	Coverage Coverage    `json:"coverage"`
	Slowest  []SlowTrace `json:"slowest,omitempty"`
}

// node is one span during tree reconstruction.
type node struct {
	rec      Record
	children []*node
}

// Analyze reconstructs span trees from flat records and aggregates
// per-stage latency, self-time, critical-path attribution, coverage, and
// the topN slowest traces. Orphan spans (parent never seen — a truncated
// file, or a child that outlived its root) are treated as roots of their
// own subtree so their time is still attributed.
func Analyze(recs []Record, topN int) *Analysis {
	a := &Analysis{Spans: len(recs)}
	byID := make(map[string]*node, len(recs))
	traces := make(map[string]bool)
	nodes := make([]*node, 0, len(recs))
	for _, r := range recs {
		n := &node{rec: r}
		// Span-id collisions across concatenated files would corrupt the
		// tree; last record wins, matching JSONL append order.
		byID[r.Span] = n
		nodes = append(nodes, n)
		traces[r.Trace] = true
	}
	a.Traces = len(traces)

	var roots []*node
	for _, n := range nodes {
		if p, ok := byID[n.rec.Parent]; ok && n.rec.Parent != "" && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	a.Roots = len(roots)

	stats := make(map[string]*stageAgg)
	agg := func(stage string) *stageAgg {
		s, ok := stats[stage]
		if !ok {
			s = &stageAgg{}
			stats[stage] = s
		}
		return s
	}
	for _, n := range nodes {
		s := agg(n.rec.Stage)
		s.durs = append(s.durs, n.rec.DurNS)
		s.self += selfNS(n)
		if n.rec.Err != "" {
			s.errors++
		}
	}

	// Critical path: from each root, descend into the longest child,
	// crediting each visited span's self time to its stage.
	for _, r := range roots {
		n := r
		for {
			agg(n.rec.Stage).crit += selfNS(n)
			next := longestChild(n)
			if next == nil {
				break
			}
			n = next
		}
	}

	// Coverage over roots with children.
	minFrac, sumFrac := 0.0, 0.0
	covered := 0
	for _, r := range roots {
		if len(r.children) == 0 || r.rec.DurNS <= 0 {
			continue
		}
		var child int64
		for _, c := range r.children {
			child += c.rec.DurNS
		}
		frac := float64(child) / float64(r.rec.DurNS)
		if covered == 0 || frac < minFrac {
			minFrac = frac
		}
		sumFrac += frac
		covered++
	}
	a.Coverage.Roots = covered
	if covered > 0 {
		a.Coverage.MeanFrac = sumFrac / float64(covered)
		a.Coverage.MinFrac = minFrac
	}

	for stage, s := range stats {
		sort.Slice(s.durs, func(i, j int) bool { return s.durs[i] < s.durs[j] })
		var total int64
		for _, d := range s.durs {
			total += d
		}
		a.Stages = append(a.Stages, StageStat{
			Stage:   stage,
			Count:   len(s.durs),
			P50MS:   pctMS(s.durs, 0.50),
			P95MS:   pctMS(s.durs, 0.95),
			P99MS:   pctMS(s.durs, 0.99),
			MaxMS:   float64(s.durs[len(s.durs)-1]) / 1e6,
			TotalMS: float64(total) / 1e6,
			SelfMS:  float64(s.self) / 1e6,
			CritMS:  float64(s.crit) / 1e6,
			Errors:  s.errors,
		})
	}
	sort.Slice(a.Stages, func(i, j int) bool {
		if a.Stages[i].CritMS != a.Stages[j].CritMS {
			return a.Stages[i].CritMS > a.Stages[j].CritMS
		}
		return a.Stages[i].Stage < a.Stages[j].Stage
	})

	if topN > 0 {
		sort.Slice(roots, func(i, j int) bool { return roots[i].rec.DurNS > roots[j].rec.DurNS })
		for _, r := range roots[:min(topN, len(roots))] {
			st := SlowTrace{
				Trace: r.rec.Trace,
				Stage: r.rec.Stage,
				DurMS: r.rec.DurMS(),
				Err:   r.rec.Err,
			}
			kids := append([]*node(nil), r.children...)
			sort.Slice(kids, func(i, j int) bool { return kids[i].rec.DurNS > kids[j].rec.DurNS })
			for _, c := range kids {
				st.Stages = append(st.Stages, StageShare{Stage: c.rec.Stage, DurMS: c.rec.DurMS()})
			}
			a.Slowest = append(a.Slowest, st)
		}
	}
	return a
}

// stageAgg accumulates one stage during analysis.
type stageAgg struct {
	durs   []int64
	self   int64
	crit   int64
	errors int
}

// selfNS is a span's duration minus its direct children's, floored at
// zero (clock skew between goroutines can make child sums exceed the
// parent by nanoseconds).
func selfNS(n *node) int64 {
	self := n.rec.DurNS
	for _, c := range n.children {
		self -= c.rec.DurNS
	}
	if self < 0 {
		self = 0
	}
	return self
}

// longestChild picks the critical-path successor.
func longestChild(n *node) *node {
	var best *node
	for _, c := range n.children {
		if best == nil || c.rec.DurNS > best.rec.DurNS {
			best = c
		}
	}
	return best
}

// pctMS reads the p-th percentile of ascending nanosecond durations, in
// milliseconds (nearest-rank on the sorted slice, matching ccrp-load).
func pctMS(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e6
}
